package seacma

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

var (
	e2eOnce sync.Once
	e2eRes  *Result
	e2eExp  *Experiment
	e2eErr  error
)

func quickRun(t *testing.T) (*Experiment, *Result) {
	t.Helper()
	e2eOnce.Do(func() {
		e2eExp = NewExperiment(QuickExperimentConfig())
		e2eRes, e2eErr = e2eExp.Run()
	})
	if e2eErr != nil {
		t.Fatalf("quick run: %v", e2eErr)
	}
	return e2eExp, e2eRes
}

func TestSeedsFromSpecsAreEleven(t *testing.T) {
	exp, _ := quickRun(t)
	seeds := SeedsFromSpecs(exp.World)
	if len(seeds) != 11 {
		t.Fatalf("seeds = %d, the paper starts from 11", len(seeds))
	}
	if SeedSpecCount() != 11 {
		t.Fatalf("SeedSpecCount = %d", SeedSpecCount())
	}
	for _, s := range seeds {
		if s.Name == "" || s.SearchSnippet == "" || len(s.Patterns) == 0 {
			t.Fatalf("incomplete seed %+v", s)
		}
	}
}

func TestEndToEndProducesAllStages(t *testing.T) {
	_, res := quickRun(t)
	if len(res.PublisherHosts) == 0 || len(res.Sessions) == 0 {
		t.Fatal("crawl stage empty")
	}
	if res.Discovery == nil || len(res.Discovery.Campaigns()) == 0 {
		t.Fatal("no campaigns discovered")
	}
	if len(res.Attributions) == 0 {
		t.Fatal("no attributions")
	}
	if res.Milking == nil || len(res.Milking.Domains) == 0 {
		t.Fatal("milking empty")
	}
}

func TestTablesRender(t *testing.T) {
	_, res := quickRun(t)
	t1 := res.Table1()
	if len(t1) == 0 {
		t.Fatal("Table 1 empty")
	}
	if s := FormatTable1(t1); !strings.Contains(s, "GSB") {
		t.Fatal("Table 1 text broken")
	}
	t2 := res.Table2(20)
	if len(t2) == 0 || t2[0].Count == 0 {
		t.Fatal("Table 2 empty")
	}
	t3 := res.Table3()
	if len(t3) == 0 {
		t.Fatal("Table 3 empty")
	}
	if s := FormatTable3(t3); !strings.Contains(s, "Ad network") {
		t.Fatal("Table 3 text broken")
	}
	t4 := res.Table4()
	if len(t4) == 0 {
		t.Fatal("Table 4 empty")
	}
	if s := FormatTable4(t4); !strings.Contains(s, "GSB-final") {
		t.Fatal("Table 4 text broken")
	}
}

func TestSkipMilking(t *testing.T) {
	cfg := QuickExperimentConfig()
	cfg.World.Seed = 77
	cfg.SkipMilking = true
	cfg.MaxPublishers = 40
	exp := NewExperiment(cfg)
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Milking != nil {
		t.Fatal("milking ran despite SkipMilking")
	}
	if res.Table4() != nil {
		t.Fatal("Table4 should be nil without milking")
	}
	if res.Discovery == nil {
		t.Fatal("discovery missing")
	}
}

func TestDiscoverNewNetworksViaFacade(t *testing.T) {
	_, res := quickRun(t)
	found := res.DiscoverNewNetworks(3)
	tokens := map[string]bool{}
	for _, d := range found {
		tokens[d.PathToken] = true
	}
	for _, want := range []string{"eroa", "ylx", "adctr"} {
		if !tokens[want] {
			t.Errorf("network token %q not discovered (have %v)", want, tokens)
		}
	}
}

func TestIsSEConsistency(t *testing.T) {
	_, res := quickRun(t)
	seen := 0
	for _, a := range res.Attributions {
		if res.IsSE(a.Ref) {
			seen++
			// SE landings' e2LDs are SE domains.
			l := res.Sessions[a.Ref.Session].Landings[a.Ref.Landing]
			if !res.IsSEDomain(l.E2LD) {
				t.Fatalf("SE landing %s not an SE domain", l.E2LD)
			}
		}
	}
	if seen == 0 {
		t.Fatal("no SE attributions")
	}
	if res.SEAttackCount() < seen {
		t.Fatalf("SEAttackCount %d < observed %d", res.SEAttackCount(), seen)
	}
}

func TestMilkingShape(t *testing.T) {
	_, res := quickRun(t)
	m := res.Milking
	if m.Sessions == 0 || m.Sources == 0 {
		t.Fatal("degenerate milking")
	}
	// The tracking property the paper leans on: milked domains are
	// overwhelmingly never-before-seen (fresh rotation output).
	crawlDomains := map[string]bool{}
	for _, s := range res.Sessions {
		for _, l := range s.Landings {
			crawlDomains[l.E2LD] = true
		}
	}
	fresh := 0
	for _, d := range m.Domains {
		if !crawlDomains[d.Host] {
			fresh++
		}
	}
	if frac := float64(fresh) / float64(len(m.Domains)); frac < 0.8 {
		t.Fatalf("only %.0f%% of milked domains are new", frac*100)
	}
}

func TestGSBLagShape(t *testing.T) {
	_, res := quickRun(t)
	// With the quick window lags are bounded by the polling horizon; at
	// minimum they must be non-negative and under the window.
	window := e2eExp.Cfg.Milker.Duration + e2eExp.Cfg.Milker.GSBExtra
	for _, lag := range res.Milking.GSBLags() {
		if lag < 0 || lag > window+24*time.Hour {
			t.Fatalf("implausible lag %v", lag)
		}
	}
}

func TestCategoryTaxonomy(t *testing.T) {
	if len(core.AllSECategories) != 6 {
		t.Fatal("taxonomy drifted")
	}
	names := map[string]bool{}
	for _, c := range core.AllSECategories {
		names[c.DisplayName()] = true
	}
	for _, want := range []string{"Fake Software", "Registration", "Lottery/Gift", "Chrome Notifications", "Scareware", "Technical Support"} {
		if !names[want] {
			t.Fatalf("missing display name %q", want)
		}
	}
}

func TestDeterministicExperiments(t *testing.T) {
	cfg := QuickExperimentConfig()
	cfg.World.Seed = 99
	cfg.SkipMilking = true
	cfg.MaxPublishers = 20
	a, err := NewExperiment(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExperiment(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.PublisherHosts) != len(b.PublisherHosts) {
		t.Fatal("publisher pools differ across identical seeds")
	}
}

func TestExportDataset(t *testing.T) {
	_, res := quickRun(t)
	dir := t.TempDir()
	sum, err := res.ExportDataset(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Campaigns == 0 || sum.Domains == 0 || sum.SessionLogs == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	// At least some campaigns should still be reachable for screenshots
	// (ephemeral ones may be gone by now).
	if sum.Screenshots == 0 {
		t.Fatal("no exemplar screenshots captured")
	}
}

func TestMeasureEnrichment(t *testing.T) {
	_, res := quickRun(t)
	out := res.MeasureEnrichment(30*time.Minute, 12*time.Hour, 10)
	if out.Visits == 0 {
		t.Fatal("no victim traffic replayed")
	}
	if out.EnrichedRate() < out.GSBRate() {
		t.Fatal("enrichment reduced protection")
	}
	// The paper's defensive thesis: the milking feed protects the large
	// majority of visits the lagging blacklist misses.
	if out.EnrichedRate() < 0.5 {
		t.Fatalf("enriched rate only %.2f", out.EnrichedRate())
	}
	if out.GSBRate() > 0.3 {
		t.Fatalf("baseline GSB rate implausibly high: %.2f", out.GSBRate())
	}
	// Without milking the measurement degrades gracefully.
	empty := &Result{RunResult: &core.RunResult{}, exp: e2eExp}
	if got := empty.MeasureEnrichment(0, 0, 0); got.Visits != 0 {
		t.Fatal("enrichment without milking produced traffic")
	}
}

func TestScamPhoneBlacklistHarvested(t *testing.T) {
	_, res := quickRun(t)
	bl := res.ScamPhoneBlacklist()
	if bl == nil {
		t.Fatal("no phone blacklist")
	}
	if bl.Len() == 0 {
		t.Fatal("no scam phone numbers harvested during milking")
	}
	for _, e := range bl.Entries() {
		if len(e.Number) != len("+1-800-555-0123") {
			t.Fatalf("malformed number %q", e.Number)
		}
		if len(e.Sources) == 0 {
			t.Fatalf("number %s without sources", e.Number)
		}
	}
	// Tech-support clusters also carry the numbers in their triage
	// signals.
	found := false
	for _, c := range res.Discovery.Campaigns() {
		if c.Category == core.CatTechSupport && len(c.Signals.ScamPhones) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no tech-support cluster with harvested phones")
	}
}

func TestParkedClustersAutoFiltered(t *testing.T) {
	_, res := quickRun(t)
	// Every benign cluster whose pages are parked placeholders must have
	// a high mean parking score, and no SE cluster should.
	for _, c := range res.Discovery.Campaigns() {
		if c.Signals.MeanParkedScore() >= 0.6 {
			t.Errorf("SE cluster %d (%s) has parked score %.2f", c.ID, c.Category, c.Signals.MeanParkedScore())
		}
	}
}
