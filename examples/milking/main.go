// Command milking reproduces the paper's Figures 3 and 4 on a live
// synthetic campaign: it reaches one SE attack through a publisher's ad,
// prints the reconstructed backtracking graph (publisher → ad network →
// TDS → attack page), extracts the milkable upstream URL, then milks it
// over virtual days to show the rotating attack domains behind the same
// stable URL pattern — and how slowly the blacklist reacts.
//
//	go run ./examples/milking
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/btgraph"
	"repro/internal/crawler"
	"repro/internal/urlx"
	"repro/internal/webtx"
)

func main() {
	log.SetFlags(0)
	cfg := seacma.QuickExperimentConfig()
	exp := seacma.NewExperiment(cfg)
	w := exp.World

	// Crawl publishers until one click lands on an SE attack page.
	farm := crawler.New(w.Internet, w.Clock, crawler.Config{Workers: 2, FetchCost: time.Second})
	var session *crawler.Session
	var landing crawler.Landing
	for _, p := range w.Publishers {
		s := farm.RunSession(crawler.Task{Host: p.Host, ClientIP: webtx.IPResidential}, webtx.UAChromeMac)
		for _, l := range s.Landings {
			if w.Truth.CampaignOfAttackDomain(l.URL.Host) != "" {
				session, landing = s, l
				break
			}
		}
		if session != nil {
			break
		}
	}
	if session == nil {
		log.Println("no SE landing found; try another seed")
		os.Exit(1)
	}

	fmt.Println("=== Figure 3: backtracking graph of one SE attack ===")
	g := btgraph.FromEvents(session.Events)
	fmt.Print(g.Render(landing.URL.String()))

	cands, err := g.MilkingCandidates(landing.URL.String())
	if err != nil || len(cands) == 0 {
		log.Println("no milking candidate:", err)
		os.Exit(1)
	}
	upstream := cands[0]
	fmt.Printf("\nmilkable upstream URL: %s\n", upstream)

	// Milk the upstream every 15 virtual minutes for 2 virtual days.
	fmt.Println("\n=== Figure 4: milking the upstream URL ===")
	seen := map[string]bool{}
	deadline := w.Clock.Now().Add(48 * time.Hour)
	for w.Clock.Now().Before(deadline) {
		resp, err := w.Internet.RoundTrip(&webtx.Request{
			URL: urlx.MustParse(upstream), UserAgent: webtx.UAChromeMac,
			ClientIP: webtx.IPResidential, Time: w.Clock.Now(),
		})
		if err == nil && resp.Redirect() {
			u := urlx.MustParse(resp.Location)
			if !seen[u.Host] {
				seen[u.Host] = true
				listed := w.GSB.Lookup(u.Host, w.Clock.Now())
				elapsed := 48*time.Hour - deadline.Sub(w.Clock.Now())
				fmt.Printf("  t+%6s  %-28s path=%s  GSB=%v\n",
					elapsed.Round(time.Minute), u.Host, u.Path, listed)
			}
		}
		w.Clock.Advance(15 * time.Minute)
	}
	fmt.Printf("\n%d distinct attack domains behind one upstream URL in 2 days\n", len(seen))

	// How the blacklist catches up months later.
	later := w.Clock.Now().Add(60 * 24 * time.Hour)
	w.Clock.AdvanceTo(later)
	caught := 0
	for h := range seen {
		if w.GSB.Lookup(h, later) {
			caught++
		}
	}
	fmt.Printf("two months later, GSB lists %d/%d of them (%.0f%%)\n",
		caught, len(seen), 100*float64(caught)/float64(len(seen)))
}
