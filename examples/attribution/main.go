// Command attribution demonstrates the paper's ad-attribution and
// network-discovery loop (Sections 3.6 and 4.4): crawl, attribute each
// landing page to a seed ad network via invariant patterns, list the
// "Unknown" remainder, then analyse the unknown logs to derive the new
// networks' invariants and expand the publisher pool by re-searching.
//
//	go run ./examples/attribution
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	cfg := seacma.QuickExperimentConfig()
	cfg.SkipMilking = true
	exp := seacma.NewExperiment(cfg)

	res, err := exp.Run()
	if err != nil {
		log.Println("pipeline failed:", err)
		os.Exit(1)
	}

	fmt.Println("=== Table 3: SE attacks from each ad network ===")
	fmt.Print(seacma.FormatTable3(res.Table3()))

	unknown := 0
	for _, a := range res.Attributions {
		if a.Network == "Unknown" {
			unknown++
		}
	}
	fmt.Printf("\n%d landing pages reached through unknown ad networks\n", unknown)
	fmt.Println("analysing their backtracking graphs and publisher snippets ...")

	discovered := res.DiscoverNewNetworks(3)
	if len(discovered) == 0 {
		fmt.Println("nothing discovered (unknown volume too low at this scale)")
		return
	}
	newPubs := map[string]bool{}
	for _, d := range discovered {
		fmt.Printf("\nnew ad network candidate:\n")
		fmt.Printf("  URL invariant:     first path segment %q (seen in %d unknown chains)\n", d.PathToken, d.Support)
		fmt.Printf("  source invariant:  \"let %s =\"\n", d.SnippetVar)
		fmt.Printf("  attribution rules: %d patterns ready for the seed list\n", len(d.Patterns))
		fmt.Printf("  publisher search:  %d sites embed the snippet\n", len(d.Publishers))
		for _, p := range d.Publishers {
			newPubs[p] = true
		}
	}
	already := map[string]bool{}
	for _, h := range res.PublisherHosts {
		already[h] = true
	}
	fresh := 0
	for p := range newPubs {
		if !already[p] {
			fresh++
		}
	}
	fmt.Printf("\nfeeding back into the pipeline: %d previously uncrawled publishers (paper: 8,981)\n", fresh)
}
