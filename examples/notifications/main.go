// Command notifications walks through the Chrome-notifications SE
// campaign category the paper highlights as an evolution of SEACMA ads
// (Section 4.3, item 5): the crawler reaches a lure page that asks for
// push-notification permission, the instrumented browser records the
// permission request, triage classifies the cluster, and the blacklist
// never catches the domains (Table 1 reports 0% GSB coverage for the
// category).
//
// The example also renders the campaign's screenshot gallery (Figures
// 5/6 style) to PNG files under ./out.
//
//	go run ./examples/notifications
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/browser"
	"repro/internal/phash"
	"repro/internal/rng"
	"repro/internal/secamp"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

func main() {
	log.SetFlags(0)
	clock := vclock.New()
	internet := webtx.NewInternet()
	src := rng.New(2026)

	camp := secamp.New("notif-demo", secamp.Notifications, 0,
		secamp.Config{RotationPeriod: 2 * time.Hour, Slots: 2, TTLFactor: 3, TDSCount: 1},
		clock, src, nil)
	camp.Install(internet)

	b := browser.New(internet, clock, browser.Options{
		UserAgent: webtx.UAChromeMac, ClientIP: webtx.IPResidential,
		Stealth: true, BypassDialogs: true,
	})
	tab, err := b.Visit(camp.EntryURL())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("landing page:", tab.URL.String())
	fmt.Println("title:       ", tab.Doc.Title)

	// The lure fires a permission request on load; clicking "Allow"
	// re-triggers it. The instrumented browser traces both.
	if allow := tab.Doc.Root.Find("allow"); allow != nil {
		if _, err := b.ClickElement(tab, allow); err != nil {
			log.Fatal(err)
		}
	}
	requests := 0
	for _, e := range b.Events() {
		if e.Kind == browser.EvAPICall && e.API.Name == "notification.request" {
			requests++
		}
	}
	fmt.Printf("notification permission requests traced: %d\n", requests)

	// Rotate the campaign and render the gallery: the same lure on fresh
	// domains, hashes within the clustering radius.
	if err := os.MkdirAll("out", 0o755); err != nil {
		log.Fatal(err)
	}
	var base phash.Hash
	for i := 0; i < 3; i++ {
		tab, err := b.Visit(camp.EntryURL())
		if err != nil {
			log.Fatal(err)
		}
		img, err := b.Screenshot(tab)
		if err != nil {
			log.Fatal(err)
		}
		h := phash.DHash(img)
		if i == 0 {
			base = h
		}
		name := filepath.Join("out", fmt.Sprintf("notification-lure-%d.png", i))
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := img.EncodePNG(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("  %s  host=%-24s dhash=%s  distance-to-first=%d bits\n",
			name, tab.URL.Host, h, phash.Distance(base, h))
		clock.Advance(5 * time.Hour) // force a rotation
	}
	fmt.Println("\nsame campaign, rotating domains, near-identical perceptual hashes —")
	fmt.Println("exactly the signature the clustering stage keys on.")
}
