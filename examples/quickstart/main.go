// Command quickstart runs the whole SEACMA pipeline end to end on a
// small synthetic web and prints what it found: the discovered SE
// campaigns, the paper's Table 1 and Table 3, and the milking summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	start := time.Now()

	cfg := seacma.QuickExperimentConfig()
	cfg.Obs = obs.New() // instrument the run: per-stage spans + counters
	exp := seacma.NewExperiment(cfg)

	fmt.Printf("synthetic web: %d publishers, %d ad networks, %d SE campaigns\n",
		len(exp.World.Publishers), len(exp.World.Networks), len(exp.World.Campaigns))
	fmt.Println("running pipeline: reverse seeds -> crawl -> cluster -> triage -> attribute -> milk ...")

	res, err := exp.Run()
	if err != nil {
		log.Println("pipeline failed:", err)
		os.Exit(1)
	}

	fmt.Printf("\ncrawled %d publishers with %d sessions in %v wall time\n",
		len(res.PublisherHosts), len(res.Sessions), time.Since(start).Round(time.Millisecond))
	fmt.Printf("clusters: %d total -> %d SE campaigns + %d benign (paper: 130 -> 108 + 22)\n\n",
		len(res.Discovery.Clusters), len(res.Discovery.Campaigns()), len(res.Discovery.BenignClusters()))

	fmt.Println("=== Table 1: SE ad campaign statistics ===")
	fmt.Print(seacma.FormatTable1(res.Table1()))

	fmt.Println("\n=== Table 3: SE attacks per ad network ===")
	fmt.Print(seacma.FormatTable3(res.Table3()))

	if res.Milking != nil {
		fmt.Printf("\nmilking: %d sources, %d sessions, %d fresh attack domains, %d binaries\n",
			res.Milking.Sources, res.Milking.Sessions, len(res.Milking.Domains), len(res.Milking.Files))
		fmt.Println("\n=== Table 4: tracking SEACMA campaigns ===")
		fmt.Print(seacma.FormatTable4(res.Table4()))
	}

	fmt.Println("\n=== Section 4.4: networks discovered from Unknown attacks ===")
	for _, d := range res.DiscoverNewNetworks(3) {
		fmt.Printf("  URL token %q, snippet var %q, support %d, +%d new publishers\n",
			d.PathToken, d.SnippetVar, d.Support, len(d.Publishers))
	}

	// The metrics snapshot: where the run spent its time (wall and
	// virtual) and what each stage did. The per-virtual-hour milking
	// series is elided here; seacma-milk -metrics exports it in full.
	fmt.Println("\n=== Observability: pipeline metrics snapshot ===")
	for _, line := range strings.Split(cfg.Obs.Text(), "\n") {
		if strings.Contains(line, "_hourly{") {
			continue
		}
		fmt.Println(line)
	}
}
