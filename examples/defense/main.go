// Command defense turns the pipeline's outputs into the defences the
// paper argues for (Sections 1, 4.3 and 6): a fast URL blacklist fed by
// milking, a scam phone-number blacklist, and the released dataset
// artefacts — and quantifies the protection gained over Google Safe
// Browsing alone.
//
//	go run ./examples/defense
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	cfg := seacma.QuickExperimentConfig()
	exp := seacma.NewExperiment(cfg)
	fmt.Println("running the discovery + milking pipeline ...")
	res, err := exp.Run()
	if err != nil {
		log.Println("pipeline failed:", err)
		os.Exit(1)
	}
	fmt.Printf("milked %d fresh attack domains from %d sources\n\n",
		len(res.Milking.Domains), res.Milking.Sources)

	// 1. URL blacklist enrichment (Sections 1/6).
	out := res.MeasureEnrichment(30*time.Minute, 12*time.Hour, 15)
	fmt.Println("=== URL blacklist enrichment ===")
	fmt.Printf("victim visits replayed:        %d\n", out.Visits)
	fmt.Printf("blocked by GSB alone:          %.1f%%\n", 100*out.GSBRate())
	fmt.Printf("blocked with the milking feed: %.1f%% (30-minute propagation)\n", 100*out.EnrichedRate())
	fmt.Printf("visits saved by the feed:      %d\n\n", out.FeedOnlySaves)

	// 2. Scam phone blacklist (Section 4.3).
	fmt.Println("=== Scam phone-number blacklist ===")
	bl := res.ScamPhoneBlacklist()
	for _, e := range bl.Entries() {
		fmt.Printf("  %s  first seen %s, %d sightings across %d attack domains\n",
			e.Number, e.FirstSeen.Format("2006-01-02 15:04"), e.Sightings, len(e.Sources))
	}
	fmt.Printf("%d numbers harvested in real time during milking\n\n", bl.Len())

	// 3. Dataset release (Section 4).
	dir := "seacma-dataset"
	sum, err := res.ExportDataset(dir, 10)
	if err != nil {
		log.Println("export failed:", err)
		os.Exit(1)
	}
	fmt.Println("=== Released dataset ===")
	fmt.Printf("wrote %s/: %d campaigns, %d session logs, %d screenshots,\n",
		dir, sum.Campaigns, sum.SessionLogs, sum.Screenshots)
	fmt.Printf("%d milked domains, %d binaries, %d scam phone numbers\n",
		sum.Domains, sum.Files, sum.Phones)
}
