package seacma_test

import (
	"bytes"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
)

// reportBytes runs the full pipeline with the given worker count on the
// milking and discovery stages and returns the serialized report. The
// crawl farm is pinned to one worker: crawling advances the shared
// virtual clock per fetch, so its session ordering is inherently
// worker-count dependent — the determinism guarantee under test covers
// the stages the batch-tick engine and the neighbourhood index
// parallelize.
func reportBytes(t *testing.T, workers int) []byte {
	t.Helper()
	return reportBytesCfg(t, workers, false, false)
}

// reportBytesCfg additionally allows forcing the parse-per-run script
// path and the inline (plane-cache-free) hash kernel, for the
// cache-on/cache-off invariance contracts.
func reportBytesCfg(t *testing.T, workers int, disableScriptCache, disableNoisePlanes bool) []byte {
	t.Helper()
	return reportBytesMode(t, workers, disableScriptCache, disableNoisePlanes, false)
}

// reportBytesMode additionally selects the execution schedule: streaming
// coordinator (the default) or the legacy phased path.
func reportBytesMode(t *testing.T, workers int, disableScriptCache, disableNoisePlanes, disableStreaming bool) []byte {
	t.Helper()
	cfg := seacma.QuickExperimentConfig()
	cfg.DisableStreaming = disableStreaming
	cfg.Crawler.Workers = 1
	cfg.Milker.Workers = workers
	cfg.Discovery.Workers = workers
	// Shrink the tracking horizon: determinism does not get stronger
	// with more virtual days, only slower.
	cfg.Milker.Duration = 6 * time.Hour
	cfg.Milker.GSBExtra = 6 * time.Hour
	cfg.Milker.FinalLookupAfter = 24 * time.Hour
	cfg.Milker.MaxSources = 40

	exp := seacma.NewExperiment(cfg)
	if disableScriptCache {
		exp.Pipeline.Cfg.Scripts = nil
		exp.Pipeline.Cfg.DisableScriptCache = true
	}
	if disableNoisePlanes {
		exp.Pipeline.Cfg.DisableNoisePlanes = true
		exp.Pipeline.Cfg.Capture.DisableNoisePlanes()
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	patterns := core.PatternSetFromSeeds(exp.Pipeline.Cfg.Seeds)
	rep := core.BuildReport(res.RunResult, patterns, exp.World.GSB, exp.World.Webcat, exp.World.Clock.Now())
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("workers=%d: serialize: %v", workers, err)
	}
	return buf.Bytes()
}

// reportBytesLockstep forces the milking scheduler back into strict
// lock-step (probe wave and commit of each batch strictly alternate,
// no tick coalescing, no probe/commit overlap) — the A/B reference for
// the pipelined scheduler's equivalence contract.
func reportBytesLockstep(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := seacma.QuickExperimentConfig()
	cfg.Crawler.Workers = 1
	cfg.Milker.Workers = workers
	cfg.Discovery.Workers = workers
	cfg.Milker.Duration = 6 * time.Hour
	cfg.Milker.GSBExtra = 6 * time.Hour
	cfg.Milker.FinalLookupAfter = 24 * time.Hour
	cfg.Milker.MaxSources = 40
	cfg.Milker.DisablePipeline = true

	exp := seacma.NewExperiment(cfg)
	res, err := exp.Run()
	if err != nil {
		t.Fatalf("lockstep workers=%d: %v", workers, err)
	}
	patterns := core.PatternSetFromSeeds(exp.Pipeline.Cfg.Seeds)
	rep := core.BuildReport(res.RunResult, patterns, exp.World.GSB, exp.World.Webcat, exp.World.Clock.Now())
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("lockstep workers=%d: serialize: %v", workers, err)
	}
	return buf.Bytes()
}

// assertSameReport fails with the first divergent byte and its context
// when two serialized reports differ.
func assertSameReport(t *testing.T, labelA, labelB string, a, b []byte) {
	t.Helper()
	if bytes.Equal(a, b) {
		return
	}
	sa, sb := string(a), string(b)
	i := 0
	for i < len(sa) && i < len(sb) && sa[i] == sb[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	t.Fatalf("report diverges at byte %d:\n  %s: ...%s\n  %s: ...%s",
		i, labelA, sa[lo:min(i+80, len(sa))], labelB, sb[lo:min(i+80, len(sb))])
}

// TestReportDeterministicAcrossWorkerCounts is the parallelism
// contract: the same seed must produce a byte-identical report whether
// same-tick milking sessions and clustering neighbourhoods are computed
// by one worker or eight.
func TestReportDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	serial := reportBytes(t, 1)
	parallel := reportBytes(t, 8)
	if !bytes.Equal(serial, parallel) {
		a, b := string(serial), string(parallel)
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("report diverges at byte %d:\n  workers=1: ...%s\n  workers=8: ...%s",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
	if len(serial) == 0 {
		t.Fatal("empty report")
	}
}

// TestReportDeterministicAcrossOddWorkerCounts extends the contract to
// worker counts that do not divide typical batch sizes evenly: W3 and
// W5 leave ragged tails on the probe fan-out, which is exactly where an
// off-by-one in the pipelined scheduler's group replay would surface.
func TestReportDeterministicAcrossOddWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	base := reportBytes(t, 1)
	if len(base) == 0 {
		t.Fatal("empty report")
	}
	for _, w := range []int{3, 5} {
		assertSameReport(t, "workers=1", "workers="+string(rune('0'+w)), base, reportBytes(t, w))
	}
}

// TestReportDeterministicPipelinedVsLockstep is the scheduler
// equivalence contract: overlapping batch N+1's probes with batch N's
// commits (and coalescing consecutive milking ticks into one fan-out
// group) must be observationally identical to the strict lock-step
// schedule — same report, byte for byte, at the same worker count.
func TestReportDeterministicPipelinedVsLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	pipelined := reportBytes(t, 4)
	lockstep := reportBytesLockstep(t, 4)
	assertSameReport(t, "pipelined", "lockstep", pipelined, lockstep)
	if len(pipelined) == 0 {
		t.Fatal("empty report")
	}
}

// TestReportDeterministicWithScriptCacheOnOff is the behaviour-invariance
// contract of the compile-once program cache at the system level: the
// end-to-end report must be byte-identical whether ad scripts run as
// shared cached Programs or are re-parsed for every execution.
func TestReportDeterministicWithScriptCacheOnOff(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	cached := reportBytesCfg(t, 4, false, false)
	uncached := reportBytesCfg(t, 4, true, false)
	if !bytes.Equal(cached, uncached) {
		a, b := string(cached), string(uncached)
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("report diverges at byte %d:\n  cached:   ...%s\n  uncached: ...%s",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
	if len(cached) == 0 {
		t.Fatal("empty report")
	}
}

// TestReportDeterministicWithNoisePlanesOnOff is the same invariance
// contract for the noise-plane cache behind the fused hash kernel: the
// end-to-end report must be byte-identical whether capture noise comes
// from cached delta planes or the inline xorshift stream — and it must
// hold across worker counts at the same time (planes off at 1 worker vs
// planes on at 8), so kernel selection can never interact with
// scheduling.
func TestReportDeterministicWithNoisePlanesOnOff(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	planes := reportBytesCfg(t, 4, false, false)
	inline := reportBytesCfg(t, 4, false, true)
	crossed := reportBytesCfg(t, 1, false, true)
	for name, other := range map[string][]byte{"inline-4w": inline, "inline-1w": crossed} {
		if !bytes.Equal(planes, other) {
			a, b := string(planes), string(other)
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("report diverges from %s at byte %d:\n  planes: ...%s\n  %s: ...%s",
				name, i, a[lo:min(i+80, len(a))], name, b[lo:min(i+80, len(b))])
		}
	}
	if len(planes) == 0 {
		t.Fatal("empty report")
	}
}

// TestReportDeterministicIncrementalVsBatch proves the incremental
// campaign store path (the default) and the legacy from-scratch batch
// clustering serialize byte-identical reports, at 1 and 4 workers.
func TestReportDeterministicIncrementalVsBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	bytesFor := func(workers int, disableIncremental bool) []byte {
		cfg := seacma.QuickExperimentConfig()
		cfg.Crawler.Workers = 1
		cfg.Milker.Workers = workers
		cfg.Discovery.Workers = workers
		cfg.Milker.Duration = 6 * time.Hour
		cfg.Milker.GSBExtra = 6 * time.Hour
		cfg.Milker.FinalLookupAfter = 24 * time.Hour
		cfg.Milker.MaxSources = 40
		cfg.DisableIncremental = disableIncremental
		exp := seacma.NewExperiment(cfg)
		res, err := exp.Run()
		if err != nil {
			t.Fatalf("workers=%d incremental=%v: %v", workers, !disableIncremental, err)
		}
		if disableIncremental {
			if res.Discovery.Store != nil {
				t.Fatalf("legacy path attached a store")
			}
		} else if res.Discovery.Store == nil {
			t.Fatalf("incremental path did not attach a store")
		}
		patterns := core.PatternSetFromSeeds(exp.Pipeline.Cfg.Seeds)
		rep := core.BuildReport(res.RunResult, patterns, exp.World.GSB, exp.World.Webcat, exp.World.Clock.Now())
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		return buf.Bytes()
	}
	incr := bytesFor(1, false)
	for name, other := range map[string][]byte{
		"batch-1w":       bytesFor(1, true),
		"batch-4w":       bytesFor(4, true),
		"incremental-4w": bytesFor(4, false),
	} {
		if !bytes.Equal(incr, other) {
			t.Fatalf("report bytes diverge between incremental-1w and %s", name)
		}
	}
	if len(incr) == 0 {
		t.Fatal("empty report")
	}
}

// TestReportDeterministicStreamingVsPhased is the streaming
// coordinator's equivalence contract: overlapping crawl, discovery and
// attribution behind the session stream must serialize the exact same
// report bytes as the five-barrier phased schedule — at 1, 4 and 8
// workers, and with the script/noise-plane caches both on and off.
func TestReportDeterministicStreamingVsPhased(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	baseline := reportBytesMode(t, 1, false, false, true)
	if len(baseline) == 0 {
		t.Fatal("empty report")
	}
	for name, b := range map[string][]byte{
		"streaming-1w":         reportBytesMode(t, 1, false, false, false),
		"streaming-4w":         reportBytesMode(t, 4, false, false, false),
		"streaming-8w":         reportBytesMode(t, 8, false, false, false),
		"phased-4w":            reportBytesMode(t, 4, false, false, true),
		"phased-8w":            reportBytesMode(t, 8, false, false, true),
		"streaming-4w-nocache": reportBytesMode(t, 4, true, true, false),
		"phased-4w-nocache":    reportBytesMode(t, 4, true, true, true),
	} {
		assertSameReport(t, "phased-1w", name, baseline, b)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
