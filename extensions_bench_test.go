package seacma

// Benches for the future-work extensions (DESIGN.md §5 does not list
// them as paper artefacts; they quantify the paper's defensive-use
// claims).

import (
	"testing"
	"time"

	"repro/internal/dom"
	"repro/internal/parking"
	"repro/internal/phonebl"
	"repro/internal/rng"
	"repro/internal/secamp"
)

// BenchmarkExtension_BlacklistEnrichment measures the protection gained
// by feeding the milking harvest into a fast blacklist, versus GSB alone
// (Sections 1/6: "existing URL blacklists can be enriched").
func BenchmarkExtension_BlacklistEnrichment(b *testing.B) {
	_, res := getBenchRun(b)
	var out EnrichmentOutcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = res.MeasureEnrichment(30*time.Minute, 12*time.Hour, 20)
	}
	b.StopTimer()
	b.ReportMetric(100*out.GSBRate(), "gsb-protection-pct")
	b.ReportMetric(100*out.EnrichedRate(), "enriched-protection-pct")
	b.ReportMetric(float64(out.FeedOnlySaves), "visits-saved-by-feed")
}

// BenchmarkExtension_ParkingDetector measures the automated
// parked-domain classifier (the paper's future-work filter) on a
// balanced corpus of parked, SE, and advertiser pages, reporting
// accuracy.
func BenchmarkExtension_ParkingDetector(b *testing.B) {
	src := rng.New(42)
	type sample struct {
		doc    *dom.Document
		parked bool
	}
	var docs []sample
	for i := 0; i < 12; i++ {
		f := secamp.NewBenignFamily("p", secamp.BenignParked, 2, src.Split(string(rune('a'+i))))
		docs = append(docs, sample{f.DocForTest(0), true})
	}
	for i, cat := range secamp.AllCategories {
		tmpl := secamp.NewTemplate(cat, i, src)
		docs = append(docs, sample{tmpl.BuildDoc("http://x.club/l", 3), false})
	}
	for i := 0; i < 6; i++ {
		a := secamp.NewAdvertiser("a", src.Split(string(rune('A'+i))))
		docs = append(docs, sample{a.DocForTest(), false})
	}
	det := parking.NewDetector()
	correct := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		correct = 0
		for _, s := range docs {
			got, _ := det.Classify(s.doc)
			if got == s.parked {
				correct++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(100*float64(correct)/float64(len(docs)), "accuracy-pct")
}

// BenchmarkExtension_PhoneHarvest measures scam-phone extraction over
// the milking run and reports how many distinct numbers the blacklist
// accumulated.
func BenchmarkExtension_PhoneHarvest(b *testing.B) {
	_, res := getBenchRun(b)
	text := "URGENT! Call Microsoft support at +1-833-555-0147 or 1 (877) 555-0101 now."
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = len(phonebl.Extract(text))
	}
	b.StopTimer()
	if n != 2 {
		b.Fatalf("extraction broken: %d", n)
	}
	if bl := res.ScamPhoneBlacklist(); bl != nil {
		b.ReportMetric(float64(bl.Len()), "scam-numbers-harvested")
	}
}

// BenchmarkExtension_DatasetExport measures exporting the release
// artefacts (campaign index, logs, inventories).
func BenchmarkExtension_DatasetExport(b *testing.B) {
	_, res := getBenchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		sum, err := res.ExportDataset(dir, 25)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(sum.Campaigns), "campaigns-exported")
			b.ReportMetric(float64(sum.Domains), "domains-exported")
		}
	}
}
