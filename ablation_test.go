package seacma

// Ablation benches for the design decisions called out in DESIGN.md §4.
// Each toggles one choice and reports what the paper's configuration
// buys. Ablations run on the tiny world so the whole suite stays fast;
// the reported metrics are comparative, not absolute.

import (
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/phash"
	"repro/internal/webtx"
	"repro/internal/worldgen"
)

// ablationCrawl runs a tiny-world crawl with the given crawler config and
// returns the world and sessions.
func ablationCrawl(b *testing.B, seed int64, mut func(*crawler.Config)) (*worldgen.World, []*crawler.Session) {
	b.Helper()
	cfg := QuickExperimentConfig()
	cfg.World.Seed = seed
	if mut != nil {
		mut(&cfg.Crawler)
	}
	exp := NewExperiment(cfg)
	hosts, byHost := exp.Pipeline.Reverse()
	if len(hosts) == 0 {
		b.Fatal("no publishers")
	}
	return exp.World, exp.Pipeline.Crawl(byHost)
}

// truthLabels returns per-observation ground-truth labels (campaign id,
// benign family id, or the domain itself) for purity scoring.
func truthLabels(w *worldgen.World, obs []core.Observation) []string {
	labels := make([]string, len(obs))
	for i, o := range obs {
		switch {
		case w.Truth.CampaignOfAttackDomain(o.E2LD) != "":
			labels[i] = w.Truth.CampaignOfAttackDomain(o.E2LD)
		case w.Truth.FamilyOfDomain(o.E2LD) != "":
			labels[i] = w.Truth.FamilyOfDomain(o.E2LD)
		default:
			labels[i] = "other/" + o.E2LD
		}
	}
	return labels
}

// BenchmarkAblation_D1_DomainFilter compares the paper's θc
// distinct-domain filter with filtering on raw cluster size: benign
// advertiser clusters (one domain, many impressions) survive the naive
// filter and pollute the campaign set.
func BenchmarkAblation_D1_DomainFilter(b *testing.B) {
	_, sessions := ablationCrawl(b, 11, nil)
	obs := core.CollectObservations(sessions)
	hashes := make([]phash.Hash, len(obs))
	for i, o := range obs {
		hashes[i] = o.Hash
	}
	var paperSurvivors, naiveSurvivors int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.DBSCANHashes(hashes, cluster.PaperParams)
		if err != nil {
			b.Fatal(err)
		}
		paperSurvivors, naiveSurvivors = 0, 0
		for _, members := range res.Clusters() {
			domains := map[string]bool{}
			refs := 0
			for _, m := range members {
				domains[obs[m].E2LD] = true
				refs += len(obs[m].Refs)
			}
			if len(domains) >= 5 {
				paperSurvivors++
			}
			if refs >= 5 { // naive: total observation volume
				naiveSurvivors++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(paperSurvivors), "clusters-theta-c")
	b.ReportMetric(float64(naiveSurvivors), "clusters-naive-count")
}

// BenchmarkAblation_D2_HashWidth compares 128-bit dhash clustering with a
// 64-bit (horizontal-only) variant: fewer bits mean more inter-template
// collisions and lower purity.
func BenchmarkAblation_D2_HashWidth(b *testing.B) {
	w, sessions := ablationCrawl(b, 12, nil)
	obs := core.CollectObservations(sessions)
	truth := truthLabels(w, obs)
	full := make([]phash.Hash, len(obs))
	half := make([]phash.Hash, len(obs))
	for i, o := range obs {
		full[i] = o.Hash
		half[i] = phash.Hash{Hi: o.Hash.Hi, Lo: o.Hash.Hi} // duplicate Hi: only 64 informative bits
	}
	var purityFull, purityHalf float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf, err := cluster.DBSCANHashes(full, cluster.PaperParams)
		if err != nil {
			b.Fatal(err)
		}
		rh, err := cluster.DBSCANHashes(half, cluster.PaperParams)
		if err != nil {
			b.Fatal(err)
		}
		purityFull, _ = cluster.Purity(rf.Labels, truth)
		purityHalf, _ = cluster.Purity(rh.Labels, truth)
	}
	b.StopTimer()
	b.ReportMetric(purityFull, "purity-128bit")
	b.ReportMetric(purityHalf, "purity-64bit")
}

// BenchmarkAblation_D3_EpsSweep sweeps DBSCAN eps around the paper's 0.1
// and reports cluster counts and purity at each point.
func BenchmarkAblation_D3_EpsSweep(b *testing.B) {
	w, sessions := ablationCrawl(b, 13, nil)
	obs := core.CollectObservations(sessions)
	truth := truthLabels(w, obs)
	hashes := make([]phash.Hash, len(obs))
	for i, o := range obs {
		hashes[i] = o.Hash
	}
	epses := []float64{0.05, 0.10, 0.20, 0.30}
	type point struct {
		clusters int
		purity   float64
	}
	results := make([]point, len(epses))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, eps := range epses {
			res, err := cluster.DBSCANHashes(hashes, cluster.Params{Eps: eps, MinPts: 3})
			if err != nil {
				b.Fatal(err)
			}
			p, _ := cluster.Purity(res.Labels, truth)
			results[j] = point{res.NumClusters, p}
		}
	}
	b.StopTimer()
	for j, eps := range epses {
		b.ReportMetric(float64(results[j].clusters), fmt2("clusters-eps", eps))
		b.ReportMetric(results[j].purity, fmt2("purity-eps", eps))
	}
}

func fmt2(prefix string, eps float64) string {
	return prefix + "-" + [4]string{"005", "010", "020", "030"}[epsIndex(eps)]
}

func epsIndex(eps float64) int {
	switch {
	case eps < 0.07:
		return 0
	case eps < 0.15:
		return 1
	case eps < 0.25:
		return 2
	default:
		return 3
	}
}

// BenchmarkAblation_D4_MilkableVerification compares milking-candidate
// counts before and after the screenshot-match verification pass.
func BenchmarkAblation_D4_MilkableVerification(b *testing.B) {
	cfg := QuickExperimentConfig()
	cfg.World.Seed = 14
	exp := NewExperiment(cfg)
	_, byHost := exp.Pipeline.Reverse()
	sessions := exp.Pipeline.Crawl(byHost)
	disc, err := exp.Pipeline.Discover(sessions)
	if err != nil {
		b.Fatal(err)
	}
	// The paper set milking up after the crawl completed; in that gap
	// ephemeral campaigns retire, and their upstream URLs are exactly
	// what verification weeds out.
	exp.World.Clock.Advance(6 * 24 * time.Hour)
	var cands, verified []core.MilkSource
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands = core.ExtractMilkingSources(sessions, disc)
		milker := core.NewMilker(exp.World.Internet, exp.World.Clock, exp.World.GSB, exp.World.VT, core.MilkerConfig{})
		verified = milker.VerifySources(cands)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(cands)), "candidates")
	b.ReportMetric(float64(len(verified)), "verified")
}

// BenchmarkAblation_D5_AntiCloaking toggles the two browser
// instrumentations (webdriver stealth patch; dialog bypass) and reports
// the SE landing yield under each configuration.
func BenchmarkAblation_D5_AntiCloaking(b *testing.B) {
	run := func(seed int64, mut func(*crawler.Config)) int {
		w, sessions := ablationCrawl(b, seed, mut)
		se := 0
		for _, s := range sessions {
			for _, l := range s.Landings {
				if w.Truth.CampaignOfAttackDomain(l.URL.Host) != "" && !l.Blocked {
					se++
				}
			}
		}
		return se
	}
	var full, noStealth, noBypass int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = run(15, nil)
		noStealth = run(15, func(c *crawler.Config) { c.DisableStealth = true })
		noBypass = run(15, func(c *crawler.Config) { c.DisableDialogBypass = true })
	}
	b.StopTimer()
	b.ReportMetric(float64(full), "se-yield-full")
	b.ReportMetric(float64(noStealth), "se-yield-no-stealth")
	b.ReportMetric(float64(noBypass), "se-yield-no-dialog-bypass")
	if noStealth >= full {
		b.Log("warning: stealth ablation did not reduce yield at this scale")
	}
}

// BenchmarkAblation_D6_UserAgentDiversity crawls with a single UA versus
// the paper's four and reports how many SE categories each discovers
// (Fake Lottery is mobile-only; IE/Edge pull Windows-targeted software).
func BenchmarkAblation_D6_UserAgentDiversity(b *testing.B) {
	countCategories := func(seed int64, uas []webtx.UserAgent) int {
		cfg := QuickExperimentConfig()
		cfg.World.Seed = seed
		cfg.Crawler.UserAgents = uas
		exp := NewExperiment(cfg)
		_, byHost := exp.Pipeline.Reverse()
		sessions := exp.Pipeline.Crawl(byHost)
		disc, err := exp.Pipeline.Discover(sessions)
		if err != nil {
			b.Fatal(err)
		}
		cats := map[core.Category]bool{}
		for _, c := range disc.Campaigns() {
			cats[c.Category] = true
		}
		return len(cats)
	}
	var all, single int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all = countCategories(16, webtx.AllUserAgents)
		single = countCategories(16, []webtx.UserAgent{webtx.UAChromeMac})
	}
	b.StopTimer()
	b.ReportMetric(float64(all), "categories-4ua")
	b.ReportMetric(float64(single), "categories-1ua")
	if single >= all {
		b.Log("warning: UA ablation did not reduce category coverage at this scale")
	}
}

// BenchmarkAblation_RepeatVisits quantifies the Section 5 limitation:
// "Because of the dynamicity of online advertisements, one might need to
// crawl the same publisher site multiple times, before encountering a
// SEACMA ad." The paper visits each publisher once per UA; this bench
// repeats visits and reports how many ground-truth campaigns the crawl
// observes at each visit budget.
func BenchmarkAblation_RepeatVisits(b *testing.B) {
	coverage := func(visits int) int {
		cfg := QuickExperimentConfig()
		cfg.World.Seed = 17
		// A deliberately shallow crawl (one click, one ad per session)
		// mirrors the paper's scalability trade-off, making the marginal
		// value of revisits visible.
		cfg.Crawler.MaxClickTargets = 1
		cfg.Crawler.RepeatClicks = 1
		cfg.Crawler.MaxAdsPerSession = 1
		cfg.Crawler.UserAgents = []webtx.UserAgent{webtx.UAChromeMac}
		exp := NewExperiment(cfg)
		_, byHost := exp.Pipeline.Reverse()
		var hosts []string
		for h := range byHost {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		var tasks []crawler.Task
		for v := 0; v < visits; v++ {
			for _, h := range hosts {
				tasks = append(tasks, crawler.Task{Host: h, ClientIP: webtx.IPResidential})
			}
		}
		farm := crawler.New(exp.World.Internet, exp.World.Clock, cfg.Crawler)
		sessions := farm.CrawlAll(tasks)
		campaigns := map[string]bool{}
		for _, s := range sessions {
			for _, l := range s.Landings {
				if id := exp.World.Truth.CampaignOfAttackDomain(l.URL.Host); id != "" {
					campaigns[id] = true
				}
			}
		}
		return len(campaigns)
	}
	var v1, v2, v4 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v1 = coverage(1)
		v2 = coverage(2)
		v4 = coverage(4)
	}
	b.StopTimer()
	b.ReportMetric(float64(v1), "campaigns-1-visit")
	b.ReportMetric(float64(v2), "campaigns-2-visits")
	b.ReportMetric(float64(v4), "campaigns-4-visits")
	if v4 < v1 {
		b.Fatal("coverage decreased with more visits")
	}
}
