# Tier-1 developer flow. `make check` is what CI runs: build + vet +
# full test suite, then the race detector over the packages with real
# concurrency (the obs hot path, the crawler farm, the core pipeline).

GO ?= go

.PHONY: all build vet test test-race serve-smoke check bench-obs bench-baseline bench-check profile-milk profile-serve

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-bearing packages: internal/obs (lock-free counters,
# span list), internal/crawler (worker farm), internal/core (pipeline +
# batched milking engine + persistent milking pool), internal/cluster
# (parallel neighbourhood precompute), internal/vclock (batch-tick API),
# the capture fast path shared across worker pools (internal/imaging
# buffer pools, internal/screenshot capture cache, internal/phash fused
# hashing), the script fast path (internal/adscript program cache +
# decode memo, internal/browser per-tab interpreter reuse), the service
# job engine (internal/serve store + worker pool + HTTP handlers), the
# sharded blacklist (internal/gsb concurrent observe/lookup under the
# pipelined poller), the incremental campaign store (internal/campstore
# concurrent appenders/readers against one mutex-guarded store), plus
# the root package (worker-count determinism contract on the serialized
# report).
test-race:
	$(GO) test -race ./internal/obs/... ./internal/crawler/... ./internal/core/... \
		./internal/cluster/... ./internal/vclock/... ./internal/gsb/... \
		./internal/imaging/... ./internal/screenshot/... ./internal/phash/... \
		./internal/adscript/... ./internal/browser/... ./internal/serve/... \
		./internal/campstore/... .

# Service-mode smoke test (also part of plain `make test`): boot the
# real seacma-serve daemon on a random port, submit the example job
# spec (examples/serve/job.json) over HTTP, poll it to completion, and
# byte-compare the served report against the one-shot pipeline run,
# then drain and check for goroutine leaks.
serve-smoke:
	$(GO) test -run 'TestServeSmoke' -v ./cmd/seacma-serve/

check: build vet test test-race

# Overhead guard: the uninstrumented (nil-registry) hot path.
bench-obs:
	$(GO) test -bench 'BenchmarkObs_' -run XXX ./internal/obs/

# The perf contract benches: end-to-end pipeline (Figure 2), the milking
# stage per worker count, cluster triage (which reports the
# distance-calls metric of the multi-index), the capture fast path
# (cold miss vs memoized hit, with allocs/op), and the script fast path
# (parse-per-run vs cached program on a reused interpreter), the
# incremental campaign store (append / merge / full-rebuild, each
# reporting its distance-calls), and the concurrent store surface
# (AppendBatch scaling across 1/4/8 writers plus a read-heavy mix
# against the lock-free snapshots).
# -benchtime 1x keeps a baseline run under a minute; these are
# regression sentinels, not statistically tight measurements.
BENCH_PATTERN = BenchmarkFigure2_PipelineEndToEnd$$|BenchmarkPipelineE2E_|BenchmarkMilking_W|BenchmarkScalars_ClusterTriage|BenchmarkCapturePath_|BenchmarkScriptPath_|BenchmarkIncrementalCluster_|BenchmarkStoreAppend_W|BenchmarkStoreMixed_
# The hashing/rng kernel sentinels run at a higher benchtime: they are
# microseconds-to-milliseconds each, so 1x would mostly measure timer
# noise. BenchmarkRngSplit_ lives in internal/rng, hence the extra dir.
KERNEL_BENCH_PATTERN = BenchmarkHashKernel_|BenchmarkRngSplit_
BENCH_BASELINE = BENCH_pipeline.json

# Record the current cost of the contract benches into $(BENCH_BASELINE).
# The GOMAXPROCS suffix is stripped from the names so baselines compare
# across machines; -benchmem pairs (B/op, allocs/op) and custom metrics
# (milked-domains, distance-calls, cache-hit-pct, ...) ride along as
# extra keys.
bench-baseline:
	$(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchtime 1x -benchmem . | tee BENCH_pipeline.txt
	$(GO) test -run XXX -bench '$(KERNEL_BENCH_PATTERN)' -benchtime 100x -benchmem . ./internal/rng/ | tee -a BENCH_pipeline.txt
	awk 'BEGIN { print "{"; first = 1 } \
	     /^Benchmark/ { \
	       name = $$1; sub(/-[0-9]+$$/, "", name); \
	       extra = ""; \
	       for (i = 5; i < NF; i += 2) extra = extra sprintf(", \"%s\": %s", $$(i+1), $$i); \
	       if (!first) printf ",\n"; first = 0; \
	       printf "  \"%s\": {\"ns_per_op\": %s%s}", name, $$3, extra \
	     } \
	     END { print "\n}" }' BENCH_pipeline.txt > $(BENCH_BASELINE)
	@rm -f BENCH_pipeline.txt
	@echo "wrote $(BENCH_BASELINE)"

# Re-run the end-to-end pipeline bench and fail if it regressed more
# than 20% against the recorded baseline, then check the milking
# stage's parallel efficiency: on a multi-core host the pipelined
# scheduler must make W8 at least 2x faster than W1. The efficiency
# guard is skipped on hosts with fewer than 4 CPUs — probes cannot
# overlap commits without cores to run them on, so the ratio is
# meaningless there.
bench-check:
	@test -f $(BENCH_BASELINE) || { echo "no $(BENCH_BASELINE); run make bench-baseline first"; exit 1; }
	$(GO) test -run XXX -bench 'BenchmarkFigure2_PipelineEndToEnd$$' -benchtime 1x . | tee BENCH_check.txt
	@base=$$(sed -n 's/.*"BenchmarkFigure2_PipelineEndToEnd": {"ns_per_op": \([0-9.]*\).*/\1/p' $(BENCH_BASELINE)); \
	now=$$(awk '$$1 ~ /^BenchmarkFigure2_PipelineEndToEnd(-[0-9]+)?$$/ { print $$3 }' BENCH_check.txt); \
	rm -f BENCH_check.txt; \
	if [ -z "$$base" ] || [ -z "$$now" ]; then echo "could not extract ns/op (base=$$base now=$$now)"; exit 1; fi; \
	awk -v base="$$base" -v now="$$now" 'BEGIN { \
	  limit = base * 1.2; \
	  printf "e2e baseline %s ns/op, current %s ns/op, limit %.0f ns/op\n", base, now, limit; \
	  exit (now + 0 > limit) ? 1 : 0 }' \
	  || { echo "FAIL: end-to-end pipeline bench regressed >20%"; exit 1; }
	@cpus=$$(nproc 2>/dev/null || echo 1); \
	if [ "$$cpus" -lt 4 ]; then \
	  echo "SKIP: parallel-efficiency guard needs >=4 CPUs (have $$cpus)"; \
	else \
	  $(GO) test -run XXX -bench 'BenchmarkMilking_W[18]$$' -benchtime 1x . | tee BENCH_milk.txt; \
	  w1=$$(awk '$$1 ~ /^BenchmarkMilking_W1(-[0-9]+)?$$/ { print $$3 }' BENCH_milk.txt); \
	  w8=$$(awk '$$1 ~ /^BenchmarkMilking_W8(-[0-9]+)?$$/ { print $$3 }' BENCH_milk.txt); \
	  rm -f BENCH_milk.txt; \
	  if [ -z "$$w1" ] || [ -z "$$w8" ]; then echo "could not extract milking ns/op (w1=$$w1 w8=$$w8)"; exit 1; fi; \
	  awk -v w1="$$w1" -v w8="$$w8" 'BEGIN { \
	    ratio = w1 / w8; \
	    printf "milking W1 %s ns/op, W8 %s ns/op, speedup %.2fx (need >=2x)\n", w1, w8, ratio; \
	    exit (ratio < 2.0) ? 1 : 0 }' \
	    || { echo "FAIL: Milking_W8 not >=2x faster than W1 — pipelined scheduler lost its parallel efficiency"; exit 1; }; \
	fi
	@cpus=$$(nproc 2>/dev/null || echo 1); \
	if [ "$$cpus" -lt 4 ]; then \
	  echo "SKIP: store append scaling guard needs >=4 CPUs (have $$cpus)"; \
	else \
	  $(GO) test -run XXX -bench 'BenchmarkStoreAppend_W[18]$$' -benchtime 1x . | tee BENCH_store.txt; \
	  w1=$$(awk '$$1 ~ /^BenchmarkStoreAppend_W1(-[0-9]+)?$$/ { print $$3 }' BENCH_store.txt); \
	  w8=$$(awk '$$1 ~ /^BenchmarkStoreAppend_W8(-[0-9]+)?$$/ { print $$3 }' BENCH_store.txt); \
	  rm -f BENCH_store.txt; \
	  if [ -z "$$w1" ] || [ -z "$$w8" ]; then echo "could not extract store ns/op (w1=$$w1 w8=$$w8)"; exit 1; fi; \
	  awk -v w1="$$w1" -v w8="$$w8" 'BEGIN { \
	    ratio = w1 / w8; \
	    printf "store append W1 %s ns/op, W8 %s ns/op, speedup %.2fx (need >=2x)\n", w1, w8, ratio; \
	    exit (ratio < 2.0) ? 1 : 0 }' \
	    || { echo "FAIL: StoreAppend_W8 not >=2x faster than W1 — band-sharded index lost its write scaling"; exit 1; }; \
	fi
	@$(GO) test -run XXX -bench 'BenchmarkPipelineE2E_(Phased|Streaming)$$' -benchtime 3x . | tee BENCH_stream.txt; \
	ph=$$(awk '$$1 ~ /^BenchmarkPipelineE2E_Phased(-[0-9]+)?$$/ { print $$3 }' BENCH_stream.txt); \
	st=$$(awk '$$1 ~ /^BenchmarkPipelineE2E_Streaming(-[0-9]+)?$$/ { print $$3 }' BENCH_stream.txt); \
	rm -f BENCH_stream.txt; \
	if [ -z "$$ph" ] || [ -z "$$st" ]; then echo "could not extract e2e schedule ns/op (phased=$$ph streaming=$$st)"; exit 1; fi; \
	awk -v ph="$$ph" -v st="$$st" 'BEGIN { \
	  printf "pipeline phased %s ns/op, streaming %s ns/op\n", ph, st; \
	  exit (st + 0 > ph * 1.05) ? 1 : 0 }' \
	  || { echo "FAIL: streaming pipeline slower than phased — the coordinator must never cost wall-clock"; exit 1; }; \
	cpus=$$(nproc 2>/dev/null || echo 1); \
	if [ "$$cpus" -lt 4 ]; then \
	  echo "SKIP: streaming-overlap speedup guard needs >=4 CPUs (have $$cpus)"; \
	else \
	  awk -v ph="$$ph" -v st="$$st" 'BEGIN { \
	    printf "streaming speedup %.2fx (need >=1.15x on a multi-core host)\n", ph / st; \
	    exit (st + 0 > ph * 0.85) ? 1 : 0 }' \
	    || { echo "FAIL: streaming pipeline <15% faster than phased — stage overlap lost its parallel win"; exit 1; }; \
	fi
	@$(GO) test -run XXX -bench 'BenchmarkIncrementalCluster_(Append|FullRebuild)$$' -benchtime 1x . | tee BENCH_incr.txt; \
	app=$$(awk '$$1 ~ /^BenchmarkIncrementalCluster_Append(-[0-9]+)?$$/ { for (i = 2; i < NF; i++) if ($$(i+1) == "distance-calls") print $$i }' BENCH_incr.txt); \
	reb=$$(awk '$$1 ~ /^BenchmarkIncrementalCluster_FullRebuild(-[0-9]+)?$$/ { for (i = 2; i < NF; i++) if ($$(i+1) == "distance-calls") print $$i }' BENCH_incr.txt); \
	rm -f BENCH_incr.txt; \
	if [ -z "$$app" ] || [ -z "$$reb" ]; then echo "could not extract distance-calls (append=$$app rebuild=$$reb)"; exit 1; fi; \
	awk -v app="$$app" -v reb="$$reb" 'BEGIN { \
	  printf "incremental append %s distance calls/tranche vs full rebuild %s (limit: 20%% of rebuild)\n", app, reb; \
	  exit (app + 0 > reb * 0.2) ? 1 : 0 }' \
	  || { echo "FAIL: incremental append pays >20% of a full rebuild's distance calls"; exit 1; }
	@echo "bench-check OK"

# Profile the milking stage (the pipeline's hot loop) and print where
# the time and allocations go, so the next perf PR starts from evidence
# instead of guessing. Leaves milk_cpu.prof / milk_mem.prof behind for
# interactive pprof sessions.
profile-milk:
	$(GO) test -run XXX -bench 'BenchmarkMilking_W1$$' -benchtime 1x \
		-cpuprofile milk_cpu.prof -memprofile milk_mem.prof .
	@echo "=== cpu top-10 ==="
	$(GO) tool pprof -top -nodecount=10 repro.test milk_cpu.prof
	@echo "=== alloc_space top-10 ==="
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space repro.test milk_mem.prof
	@echo "=== alloc_objects top-10 (alloc-site breakdown by count) ==="
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_objects repro.test milk_mem.prof

# Profile the daemon's concurrent ingest path under the canned load
# (TestServeIngestLoad: 4 writers batching appends against one world
# store while snapshot readers ride along) and print where goroutines
# contend. Mutex shows lock hold-time by owner; block shows wait time
# at acquisition sites — together they locate the next lock to shard.
# Profiles land under the ignored prof/ directory for interactive pprof
# sessions; the compiled test binary is removed once the reports print.
profile-serve:
	@mkdir -p prof
	$(GO) test -run 'TestServeIngestLoad$$' -count 5 \
		-mutexprofile prof/serve_mutex.prof -blockprofile prof/serve_block.prof \
		-o prof/serve.test ./internal/serve/
	@echo "=== mutex contention top-10 ==="
	$(GO) tool pprof -top -nodecount=10 prof/serve.test prof/serve_mutex.prof
	@echo "=== block top-10 ==="
	$(GO) tool pprof -top -nodecount=10 prof/serve.test prof/serve_block.prof
	@rm -f prof/serve.test
