# Tier-1 developer flow. `make check` is what CI runs: build + vet +
# full test suite, then the race detector over the packages with real
# concurrency (the obs hot path, the crawler farm, the core pipeline).

GO ?= go

.PHONY: all build vet test test-race check bench-obs

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-bearing packages: internal/obs (lock-free counters,
# span list), internal/crawler (worker farm), internal/core (pipeline +
# milker). Documented as tier-1 alongside `go build && go test`.
test-race:
	$(GO) test -race ./internal/obs/... ./internal/crawler/... ./internal/core/...

check: build vet test test-race

# Overhead guard: the uninstrumented (nil-registry) hot path.
bench-obs:
	$(GO) test -bench 'BenchmarkObs_' -run XXX ./internal/obs/
