package seacma

// Extensions beyond the paper's evaluation, implementing its future-work
// and defensive-application pointers:
//
//   - dataset export (Section 4: the released logs + screenshots),
//   - blacklist enrichment measurement (Sections 1/6: using the milking
//     feed as a live defence and quantifying the protection gained over
//     GSB alone),
//   - scam-phone blacklist access (Section 4.3).

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/devtools"
	"repro/internal/enrich"
	"repro/internal/imaging"
	"repro/internal/phonebl"
	"repro/internal/urlx"
	"repro/internal/webtx"
)

// ExportDataset writes the run's release artefacts (campaign index,
// SE-session browser logs, milking inventories, scam-phone blacklist,
// and one exemplar screenshot per still-reachable campaign) under dir.
// maxSessions bounds the number of per-session log files (0 = all).
func (r *Result) ExportDataset(dir string, maxSessions int) (dataset.Summary, error) {
	return dataset.Export(dir, r.Sessions, r.Discovery, r.Milking, dataset.Options{
		MaxSessions: maxSessions,
		Screenshots: r.campaignScreenshot,
	})
}

// campaignScreenshot re-visits one of a campaign's verified milking
// sources and captures the current landing page.
func (r *Result) campaignScreenshot(campaignID int) (*imaging.Image, bool) {
	for _, src := range r.Sources {
		if src.CampaignID != campaignID {
			continue
		}
		client := devtools.NewClient(r.exp.World.Internet, r.exp.World.Clock, devtools.ClientConfig{
			UserAgent: src.UA, ClientIP: src.ClientIP,
			StealthPatch: true, DialogBypass: true,
			ViewportScale: 2,
		})
		tab, err := client.Navigate(src.URL)
		if err != nil || tab.Status != webtx.StatusOK || tab.Doc == nil {
			continue
		}
		srcURL, err := urlx.Parse(src.URL)
		if err != nil || tab.URL.Host == srcURL.Host {
			continue
		}
		img, err := client.CaptureScreenshot(tab)
		if err != nil {
			continue
		}
		return img, true
	}
	return nil, false
}

// EnrichmentOutcome re-exports the enrichment replay result.
type EnrichmentOutcome = enrich.Outcome

// MeasureEnrichment quantifies the protection gained by feeding the
// milker's harvest into a blacklist with the given propagation delay,
// against synthetic victim traffic over each milked domain's exposure
// window. exposure is how long victims keep reaching a harvested domain
// (0 = 12h, a typical throw-away-domain lifetime).
func (r *Result) MeasureEnrichment(propagationDelay, exposure time.Duration, visitsPerDomain float64) EnrichmentOutcome {
	if r.Milking == nil {
		return EnrichmentOutcome{}
	}
	if exposure <= 0 {
		exposure = 12 * time.Hour
	}
	feed := enrich.NewFeed(propagationDelay)
	windows := make([]enrich.DomainWindow, 0, len(r.Milking.Domains))
	for _, d := range r.Milking.Domains {
		feed.Publish(d.Host, d.FirstSeen)
		windows = append(windows, enrich.DomainWindow{
			Domain: d.Host,
			From:   d.FirstSeen,
			To:     d.FirstSeen.Add(exposure),
		})
	}
	return enrich.Replay(windows, r.exp.World.GSB, feed, enrich.TrafficModel{
		VisitsPerDomain: visitsPerDomain,
		Seed:            r.exp.Cfg.World.Seed,
	})
}

// ScamPhoneBlacklist returns the phone blacklist harvested during
// milking (nil without milking).
func (r *Result) ScamPhoneBlacklist() *phonebl.Blacklist {
	if r.Milking == nil {
		return nil
	}
	return r.Milking.Phones
}
