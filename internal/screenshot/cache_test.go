package screenshot

import (
	"sync"
	"testing"

	"repro/internal/dom"
	"repro/internal/obs"
	"repro/internal/phash"
)

// testDoc builds a small deterministic document whose content varies
// with variant.
func testDoc(variant uint64) *dom.Document {
	root := &dom.Element{Tag: "body", W: 1200, H: 900}
	root.Style.Background = 0xF0F0F0
	for i := 0; i < 6; i++ {
		v := variant*7 + uint64(i)
		child := &dom.Element{
			Tag:  "div",
			X:    int(v%11) * 40,
			Y:    int(v%7) * 90,
			W:    320,
			H:    140,
			Text: "block",
		}
		child.Style.Background = int(0x102030 + v*0x111)
		child.Style.Ink = 0x202020
		child.Style.ZIndex = int(v % 3)
		child.Style.TextSeed = v | 1
		root.Children = append(root.Children, child)
	}
	return &dom.Document{Root: root}
}

func TestCacheHashMatchesNaiveAndHits(t *testing.T) {
	reg := obs.New()
	c := NewCache(0, reg)
	opts := Options{Width: 256, Height: 192, NoiseAmp: 2, NoiseSeed: 17}
	doc := testDoc(1)

	want := phash.DHash(Render(doc, opts))
	if got := c.Hash(doc, opts); got != want {
		t.Fatalf("cold Hash = %v, want naive %v", got, want)
	}
	// Rebuilt document with identical content must hit by content address.
	if got := c.Hash(testDoc(1), opts); got != want {
		t.Fatalf("warm Hash = %v, want %v", got, want)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if v := reg.Snapshot().Counters["capture_cache_hits_total"]; v != 1 {
		t.Fatalf("obs hit counter = %d, want 1", v)
	}

	// Different content, viewport, or seed must all miss.
	c.Hash(testDoc(2), opts)
	c.Hash(doc, Options{Width: 128, Height: 96, NoiseAmp: 2, NoiseSeed: 17})
	c.Hash(doc, Options{Width: 256, Height: 192, NoiseAmp: 2, NoiseSeed: 18})
	if _, misses, _ = c.Stats(); misses != 4 {
		t.Fatalf("misses = %d, want 4", misses)
	}
}

func TestCacheImageMatchesNaiveAndIsACopy(t *testing.T) {
	c := NewCache(0, nil)
	opts := Options{Width: 200, Height: 150, NoiseAmp: 2, NoiseSeed: 5}
	doc := testDoc(3)

	want := Render(doc, opts)
	got := c.Image(doc, opts)
	if got.W != want.W || got.H != want.H {
		t.Fatalf("size %dx%d, want %dx%d", got.W, got.H, want.W, want.H)
	}
	for i := range want.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("pixel byte %d differs from naive render", i)
		}
	}

	// Mutating the returned copy must not poison the cache.
	got.Pix[0] ^= 0xFF
	again := c.Image(doc, opts)
	if again.Pix[0] != want.Pix[0] {
		t.Fatalf("cache returned aliased pixels")
	}

	// Image also memoizes the hash behind the same key.
	before, _, _ := c.Stats()
	if h := c.Hash(doc, opts); h != phash.DHash(want) {
		t.Fatalf("Hash after Image = %v, want %v", h, phash.DHash(want))
	}
	after, _, _ := c.Stats()
	if after != before+1 {
		t.Fatalf("Hash after Image missed the cache")
	}
}

func TestCacheNilReceiver(t *testing.T) {
	var c *Cache
	opts := Options{Width: 64, Height: 48, NoiseAmp: 2, NoiseSeed: 9}
	doc := testDoc(4)
	if got, want := c.Hash(doc, opts), phash.DHash(Render(doc, opts)); got != want {
		t.Fatalf("nil cache Hash = %v, want %v", got, want)
	}
	img := c.Image(doc, opts)
	if img == nil || img.W != 64 {
		t.Fatalf("nil cache Image broken")
	}
	if h, m, e := c.Stats(); h != 0 || m != 0 || e != 0 {
		t.Fatalf("nil cache stats = %d/%d/%d", h, m, e)
	}
}

func TestCacheNilDocument(t *testing.T) {
	c := NewCache(0, nil)
	opts := Options{Width: 32, Height: 24, NoiseAmp: 2, NoiseSeed: 3}
	want := phash.DHash(Render(nil, opts))
	if got := c.Hash(nil, opts); got != want {
		t.Fatalf("nil doc Hash = %v, want %v", got, want)
	}
	if got := c.Hash(nil, opts); got != want {
		t.Fatalf("nil doc warm Hash = %v, want %v", got, want)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(4, nil)
	opts := Options{Width: 32, Height: 24, NoiseAmp: 1}
	for v := uint64(0); v < 10; v++ {
		c.Hash(testDoc(v), opts)
	}
	if n := len(c.hashes); n > 4 {
		t.Fatalf("cache holds %d entries, bound is 4", n)
	}
	_, _, evictions := c.Stats()
	if evictions < 6 {
		t.Fatalf("evictions = %d, want >= 6", evictions)
	}
	// Evicted entries still produce correct (recomputed) results.
	want := phash.DHash(Render(testDoc(0), opts))
	if got := c.Hash(testDoc(0), opts); got != want {
		t.Fatalf("post-eviction Hash = %v, want %v", got, want)
	}
}

// TestCacheConcurrentDeterministic exercises the shared-across-workers
// contract under the race detector: many goroutines hitting overlapping
// keys must all observe exactly the naive result.
func TestCacheConcurrentDeterministic(t *testing.T) {
	c := NewCache(0, obs.New())
	opts := Options{Width: 160, Height: 120, NoiseAmp: 2, NoiseSeed: 11}
	const variants = 4
	want := make([]phash.Hash, variants)
	for v := 0; v < variants; v++ {
		want[v] = phash.DHash(Render(testDoc(uint64(v)), opts))
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				v := (g + i) % variants
				if got := c.Hash(testDoc(uint64(v)), opts); got != want[v] {
					errs <- "hash mismatch under concurrency"
					return
				}
				if i%6 == 0 {
					img := c.Image(testDoc(uint64(v)), opts)
					if phash.DHash(img) != want[v] {
						errs <- "image mismatch under concurrency"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := DocFingerprint(testDoc(1))
	if base != DocFingerprint(testDoc(1)) {
		t.Fatalf("fingerprint not deterministic")
	}
	if base == DocFingerprint(testDoc(2)) {
		t.Fatalf("distinct docs share a fingerprint")
	}
	mut := testDoc(1)
	mut.Root.Children[0].Text = "blocks"
	if base == DocFingerprint(mut) {
		t.Fatalf("text change not reflected in fingerprint")
	}
	mut2 := testDoc(1)
	mut2.Root.Children[0].Style.ZIndex++
	if base == DocFingerprint(mut2) {
		t.Fatalf("z-index change not reflected in fingerprint")
	}
	if (DocFingerprint(nil) != Fingerprint{}) {
		t.Fatalf("nil doc fingerprint not zero")
	}
}
