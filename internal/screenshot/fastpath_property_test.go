package screenshot

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/phash"
)

// xorshift is the test-local PRNG; deterministic so failures replay.
type xorshift uint64

func (s *xorshift) next() uint64 {
	x := uint64(*s) | 1
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift(x)
	return x
}

func (s *xorshift) intn(n int) int { return int(s.next() % uint64(n)) }

// randomDoc generates a document tree with randomized depth, geometry,
// styles (including transparent and border-drawing elements) and text,
// covering every branch renderPaints takes.
func randomDoc(rng *xorshift) *dom.Document {
	tags := []string{"div", "button", "iframe", "p", "h1", "img", "span"}
	root := &dom.Element{Tag: "body", W: 400 + rng.intn(1600), H: 300 + rng.intn(1200)}
	root.Style.Background = rng.intn(1 << 24)

	var build func(parent *dom.Element, depth int)
	build = func(parent *dom.Element, depth int) {
		n := rng.intn(5)
		for i := 0; i < n; i++ {
			el := &dom.Element{
				Tag: tags[rng.intn(len(tags))],
				X:   rng.intn(root.W),
				Y:   rng.intn(root.H),
				W:   rng.intn(root.W / 2),
				H:   rng.intn(root.H / 2),
			}
			el.Style.Background = rng.intn(1<<24+1) - 1 // includes -1 (no fill)
			el.Style.Ink = rng.intn(1<<24+1) - 1
			el.Style.ZIndex = rng.intn(5) - 2
			el.Style.Transparent = rng.intn(8) == 0
			if rng.intn(2) == 0 {
				el.Style.TextSeed = rng.next()
			}
			if rng.intn(3) == 0 {
				el.Text = []string{"", "win", "download now", "continue"}[rng.intn(4)]
			}
			parent.Children = append(parent.Children, el)
			if depth < 3 && rng.intn(3) == 0 {
				build(el, depth+1)
			}
		}
	}
	build(root, 0)
	return &dom.Document{Root: root}
}

// TestFastPathPropertyBitIdentical is the fast path's end-to-end
// contract: across randomized documents, viewports, noise amplitudes
// and seeds, the fused + cached capture path (cold miss, warm hit, and
// the uncached CaptureHash) returns hashes bit-identical to
// phash.DHash(Render(...)), and Cache.Image returns pixels
// byte-identical to Render. The naive Render path is retained exactly
// as the reference this test compares against.
func TestFastPathPropertyBitIdentical(t *testing.T) {
	rng := xorshift(0x5eacfa57)
	cache := NewCache(0, nil)
	viewports := [][2]int{{1024, 768}, {360, 640}, {256, 192}, {97, 61}, {16, 12}, {7, 5}}

	trials := 60
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		doc := randomDoc(&rng)
		vp := viewports[rng.intn(len(viewports))]
		opts := Options{
			Width:     vp[0],
			Height:    vp[1],
			NoiseAmp:  rng.intn(4), // includes 0 (no noise) and the amp==2 fast path
			NoiseSeed: rng.next(),
		}

		ref := Render(doc, opts)
		want := phash.DHash(ref)

		if got := CaptureHash(doc, opts); got != want {
			t.Fatalf("trial %d (vp=%dx%d amp=%d): CaptureHash %v != naive %v",
				trial, vp[0], vp[1], opts.NoiseAmp, got, want)
		}
		if got := cache.Hash(doc, opts); got != want {
			t.Fatalf("trial %d: cold cache.Hash %v != naive %v", trial, got, want)
		}
		if got := cache.Hash(doc, opts); got != want {
			t.Fatalf("trial %d: warm cache.Hash %v != naive %v", trial, got, want)
		}

		img := cache.Image(doc, opts)
		if img.W != ref.W || img.H != ref.H {
			t.Fatalf("trial %d: image size %dx%d, want %dx%d", trial, img.W, img.H, ref.W, ref.H)
		}
		for i := range ref.Pix {
			if img.Pix[i] != ref.Pix[i] {
				t.Fatalf("trial %d: cache.Image pixel byte %d differs from Render", trial, i)
			}
		}
	}

	hits, misses, _ := cache.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("property run exercised no cache traffic (hits=%d misses=%d)", hits, misses)
	}
}
