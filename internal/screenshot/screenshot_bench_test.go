package screenshot

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/secamp"
)

func BenchmarkRenderFullPage(b *testing.B) {
	tmpl := secamp.NewTemplate(secamp.FakeSoftware, 0, rng.New(1))
	doc := tmpl.BuildDoc("http://x.club/l", 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(doc, Options{})
	}
}

func BenchmarkRenderQuarterScale(b *testing.B) {
	tmpl := secamp.NewTemplate(secamp.TechSupport, 0, rng.New(2))
	doc := tmpl.BuildDoc("http://x.club/l", 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(doc, Options{Width: 256, Height: 192, NoiseAmp: 2, NoiseSeed: uint64(i)})
	}
}
