package screenshot

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/imaging"
	"repro/internal/phash"
)

func colorPage(bg int) *dom.Document {
	root := dom.NewElement("body")
	root.W, root.H = 200, 150
	root.Style.Background = bg
	box := dom.NewElement("div")
	box.X, box.Y, box.W, box.H = 40, 30, 100, 80
	box.Style.Background = 0xffffff
	root.Append(box)
	return &dom.Document{Root: root}
}

func TestRenderDefaultViewport(t *testing.T) {
	img := Render(colorPage(0x2050b0), Options{})
	if img.W != DefaultWidth || img.H != DefaultHeight {
		t.Fatalf("size = %dx%d", img.W, img.H)
	}
}

func TestRenderNilDoc(t *testing.T) {
	img := Render(nil, Options{Width: 10, Height: 10})
	if img.At(5, 5) != imaging.RGB(255, 255, 255) {
		t.Fatal("nil doc should render white")
	}
}

func TestRenderPaintsBackgroundAndBox(t *testing.T) {
	img := Render(colorPage(0xff0000), Options{Width: 200, Height: 150})
	if got := img.At(5, 5); got != imaging.RGB(255, 0, 0) {
		t.Fatalf("background = %+v", got)
	}
	if got := img.At(90, 70); got != imaging.RGB(255, 255, 255) {
		t.Fatalf("box interior = %+v", got)
	}
}

func TestTransparentElementsInvisible(t *testing.T) {
	doc := colorPage(0x00ff00)
	overlay := dom.NewElement("div")
	overlay.W, overlay.H = 200, 150
	overlay.Style.Transparent = true
	overlay.Style.ZIndex = 9999
	overlay.Style.Background = 0x000000
	doc.Root.Append(overlay)
	img := Render(doc, Options{Width: 200, Height: 150})
	if got := img.At(5, 5); got != imaging.RGB(0, 255, 0) {
		t.Fatalf("transparent overlay painted: %+v", got)
	}
}

func TestZIndexPaintOrder(t *testing.T) {
	root := dom.NewElement("body")
	root.W, root.H = 100, 100
	under := dom.NewElement("div")
	under.W, under.H = 100, 100
	under.Style.Background = 0x0000ff
	under.Style.ZIndex = 5
	over := dom.NewElement("div")
	over.W, over.H = 100, 100
	over.Style.Background = 0xff0000
	over.Style.ZIndex = 1
	// Document order: over first, under second — but z-index must win.
	root.Append(over, under)
	img := Render(&dom.Document{Root: root}, Options{Width: 100, Height: 100})
	if got := img.At(50, 50); got != imaging.RGB(0, 0, 255) {
		t.Fatalf("top pixel = %+v", got)
	}
}

func TestSameDocStableHash(t *testing.T) {
	a := Render(colorPage(0x123456), Options{Width: 256, Height: 192})
	b := Render(colorPage(0x123456), Options{Width: 256, Height: 192})
	if phash.DHash(a) != phash.DHash(b) {
		t.Fatal("same doc renders to different hashes")
	}
}

func TestNoiseKeepsHashClose(t *testing.T) {
	doc := colorPage(0x446688)
	a := Render(doc, Options{Width: 256, Height: 192, NoiseAmp: 3, NoiseSeed: 1})
	b := Render(doc, Options{Width: 256, Height: 192, NoiseAmp: 3, NoiseSeed: 999})
	if d := phash.Distance(phash.DHash(a), phash.DHash(b)); d > 12 {
		t.Fatalf("noise moved hash %d bits", d)
	}
}

func TestTextRendering(t *testing.T) {
	root := dom.NewElement("body")
	root.W, root.H = 200, 100
	root.Style.Background = 0xffffff
	p := dom.NewElement("p")
	p.X, p.Y, p.W, p.H = 10, 10, 180, 80
	p.Style.Ink = 0x000000
	p.Style.TextSeed = 7
	root.Append(p)
	img := Render(&dom.Document{Root: root}, Options{Width: 200, Height: 100})
	// Some ink must be present.
	dark := 0
	for y := 0; y < 100; y++ {
		for x := 0; x < 200; x++ {
			if img.At(x, y).R < 100 {
				dark++
			}
		}
	}
	if dark == 0 {
		t.Fatal("text block rendered no ink")
	}
}
