package screenshot

import "repro/internal/dom"

// Fingerprint is a 128-bit content address of everything Render reads
// from a document: element tags, box geometry, visual style, text
// seeds, in paint-input (document) order. Two documents with equal
// fingerprints render identically at every viewport and noise seed, so
// the capture cache can key renders and hashes on it.
type Fingerprint struct{ A, B uint64 }

// fingerprint hash constants: FNV-1a for the first lane, a
// golden-ratio multiplicative mix for the second. Two independent
// 64-bit lanes push accidental collisions below any realistic corpus
// size (the pipeline sees ~10^5 distinct documents; the birthday bound
// at 128 bits is negligible).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	mixMult   = 0x9E3779B97F4A7C15
)

// DocFingerprint computes the render-relevant content address of doc.
// A nil document (or one without a root) maps to the zero fingerprint,
// matching Render's blank-canvas behaviour. Sealed documents (shared
// immutable pages the attack side serves to every session) memoize the
// walk on the document, so repeat captures of the same page skip the
// tree traversal entirely.
func DocFingerprint(doc *dom.Document) Fingerprint {
	if doc == nil || doc.Root == nil {
		return Fingerprint{}
	}
	a, b := doc.MemoFingerprint(func() (uint64, uint64) {
		fp := docFingerprint(doc)
		return fp.A, fp.B
	})
	return Fingerprint{A: a, B: b}
}

func docFingerprint(doc *dom.Document) Fingerprint {
	fp := Fingerprint{A: fnvOffset, B: 0x243F6A8885A308D3}
	doc.Root.Walk(func(el *dom.Element) bool {
		fp.words(
			uint64(len(el.Tag)),
			uint64(int64(el.X)), uint64(int64(el.Y)),
			uint64(int64(el.W)), uint64(int64(el.H)),
			uint64(int64(el.Style.Background)),
			uint64(int64(el.Style.Ink)),
			uint64(int64(el.Style.ZIndex)),
			boolWord(el.Style.Transparent),
			el.Style.TextSeed,
		)
		fp.str(el.Tag)
		fp.str(el.Text)
		return true
	})
	return fp
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (fp *Fingerprint) words(vs ...uint64) {
	for _, v := range vs {
		fp.A = (fp.A ^ v) * fnvPrime
		fp.B = (fp.B + v) * mixMult
		fp.B ^= fp.B >> 29
	}
}

func (fp *Fingerprint) str(s string) {
	for i := 0; i < len(s); i++ {
		fp.A = (fp.A ^ uint64(s[i])) * fnvPrime
	}
	// Length-delimit so concatenation ambiguity cannot alias, and fold
	// the first lane's state into the second to keep them correlated
	// with the string content without a second byte loop.
	fp.A = (fp.A ^ uint64(len(s))) * fnvPrime
	fp.B = (fp.B + fp.A) * mixMult
	fp.B ^= fp.B >> 31
}
