package screenshot

import (
	"sync"
	"sync/atomic"

	"repro/internal/dom"
	"repro/internal/imaging"
	"repro/internal/obs"
	"repro/internal/phash"
	"repro/internal/rng"
)

// Default capacity bounds of a capture cache. Hash entries are ~50
// bytes, so the default hash budget is a few megabytes; paint lists
// and retained images are heavier and get smaller bounds.
const (
	DefaultCacheEntries = 1 << 16
	defaultPaintEntries = 4096
	defaultImageEntries = 128
)

// captureKey content-addresses one capture: what the page looks like
// (fingerprint), at which raster size, under which noise stream.
type captureKey struct {
	fp   Fingerprint
	w, h int32
	amp  int32
	seed uint64
}

func keyFor(fp Fingerprint, opts Options) captureKey {
	return captureKey{fp: fp, w: int32(opts.Width), h: int32(opts.Height), amp: int32(opts.NoiseAmp), seed: opts.NoiseSeed}
}

// Cache is the pipeline's capture memo: a bounded, content-addressed
// map from (document fingerprint x viewport x noise seed) to the
// perceptual hash of the rendered screenshot — and, behind the same
// key, to the rendered pixels for the few callers that need them. It
// also memoizes the z-sorted paint list per document fingerprint, so
// cache misses skip the DOM walk + sort when any content-identical
// document was rendered before.
//
// Results are byte-identical to the naive Render + Noise + DHash
// sequence (the fused fast path is bit-exact, see the property tests),
// so sharing one cache across worker pools cannot perturb any
// deterministic pipeline output — a hit returns exactly what a fresh
// computation would. Safe for concurrent use. A nil *Cache is valid
// and computes every capture through the uncached fused path.
type Cache struct {
	mu     sync.Mutex
	hashes map[captureKey]phash.Hash
	hashQ  fifo[captureKey]
	images map[captureKey]*imaging.Image
	imageQ fifo[captureKey]
	paints map[Fingerprint][]paint
	paintQ fifo[Fingerprint]

	// noise is the shared noise-plane cache behind the fused hash
	// kernel; nil (after DisableNoisePlanes) keeps every capture on the
	// inline kernel. Reads are taken under mu alongside the first hash
	// lookup, so disabling is safe at any point.
	noise *imaging.NoiseCache

	maxHashes, maxImages, maxPaints int

	hits, misses, evictions atomic.Int64

	// Pre-resolved obs handles; all nil (no-op) without a registry.
	obsHits, obsMisses, obsEvictions             *obs.Counter
	obsEntries, obsPoolInUse                     *obs.Gauge
	obsPoolPeak                                  *obs.Gauge
	obsPoolGets, obsPoolReuses                   *obs.Gauge
	obsPlaneHits, obsPlaneMisses, obsPlaneEvicts *obs.Counter
	obsPlaneBytes, obsPlaneBytesPeak             *obs.Gauge
	obsPlaneEntries                              *obs.Gauge
	obsRngMemoHits                               *obs.Counter

	// Last-exported cumulative values, so the monotonic counters above
	// receive deltas (the plane cache and rng memo report totals).
	expPlaneHits, expPlaneMisses, expPlaneEvicts atomic.Int64
	expRngMemoHits                               atomic.Int64
}

// fifo is a slice-backed queue with amortised O(1) pops.
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) pop() (T, bool) {
	var zero T
	if q.head >= len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head > 64 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			var z T
			q.items[i] = z
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

// NewCache builds a capture cache bounded to maxEntries memoized
// hashes (<= 0 selects DefaultCacheEntries). reg, when non-nil,
// receives hit/miss/eviction counters and raster-pool gauges under the
// capture_ prefix.
func NewCache(maxEntries int, reg *obs.Registry) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	maxPaints := defaultPaintEntries
	if maxPaints > maxEntries {
		maxPaints = maxEntries
	}
	maxImages := defaultImageEntries
	if maxImages > maxEntries {
		maxImages = maxEntries
	}
	return &Cache{
		hashes:    map[captureKey]phash.Hash{},
		images:    map[captureKey]*imaging.Image{},
		paints:    map[Fingerprint][]paint{},
		noise:     imaging.NewNoiseCache(0),
		maxHashes: maxEntries,
		maxImages: maxImages,
		maxPaints: maxPaints,

		obsHits:           reg.Counter("capture_cache_hits_total"),
		obsMisses:         reg.Counter("capture_cache_misses_total"),
		obsEvictions:      reg.Counter("capture_cache_evictions_total"),
		obsEntries:        reg.Gauge("capture_cache_entries"),
		obsPoolInUse:      reg.Gauge("capture_pool_in_use_bytes"),
		obsPoolPeak:       reg.Gauge("capture_pool_peak_bytes"),
		obsPoolGets:       reg.Gauge("capture_pool_gets"),
		obsPoolReuses:     reg.Gauge("capture_pool_reuses"),
		obsPlaneHits:      reg.Counter("noise_plane_hits_total"),
		obsPlaneMisses:    reg.Counter("noise_plane_misses_total"),
		obsPlaneEvicts:    reg.Counter("noise_plane_evictions_total"),
		obsPlaneBytes:     reg.Gauge("noise_plane_bytes"),
		obsPlaneBytesPeak: reg.Gauge("noise_plane_bytes_peak"),
		obsPlaneEntries:   reg.Gauge("noise_plane_entries"),
		obsRngMemoHits:    reg.Counter("rng_seed_memo_hits_total"),
	}
}

// DisableNoisePlanes drops the noise-plane cache, pinning every capture
// to the inline fused kernel. Used by the determinism suite to A/B the
// plane path against the inline path; results are bit-identical either
// way.
func (c *Cache) DisableNoisePlanes() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.noise = nil
	c.mu.Unlock()
}

// NoisePlanes exposes the cache's plane store (nil when disabled).
func (c *Cache) NoisePlanes() *imaging.NoiseCache {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.noise
}

// Stats reports cumulative cache traffic (hash and image lookups
// combined). Usable without an obs registry.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// CaptureHash renders and hashes a document through the fused fast
// path without memoization: pooled raster, cached-free paint list,
// noise applied during luminance conversion. Bit-identical to
// phash.DHash(Render(doc, opts)).
func CaptureHash(doc *dom.Document, opts Options) phash.Hash {
	opts = normalizeFor(doc, opts)
	img := imaging.NewPooled(opts.Width, opts.Height)
	if doc != nil && doc.Root != nil {
		renderPaints(img, doc, paintList(doc))
	}
	h := phash.DHashNoisy(img, opts.NoiseAmp, opts.NoiseSeed)
	img.Release()
	return h
}

// normalizeFor resolves options the way Render effectively does:
// Render returns the blank canvas before its noise pass when the
// document is empty, so empty documents are noise-free (and all alias
// to one cache key regardless of seed).
func normalizeFor(doc *dom.Document, opts Options) Options {
	opts = opts.normalize()
	if doc == nil || doc.Root == nil {
		opts.NoiseAmp = 0
		opts.NoiseSeed = 0
	}
	return opts
}

// Hash returns the perceptual hash of the document's capture,
// memoized by content address. Concurrent misses on the same key may
// compute the (identical) result twice; the cache converges on one
// entry either way.
func (c *Cache) Hash(doc *dom.Document, opts Options) phash.Hash {
	if c == nil {
		return CaptureHash(doc, opts)
	}
	opts = normalizeFor(doc, opts)
	fp := DocFingerprint(doc)
	key := keyFor(fp, opts)

	c.mu.Lock()
	if h, ok := c.hashes[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		c.obsHits.Inc()
		return h
	}
	paints, havePaints := c.paints[fp]
	nc := c.noise
	c.mu.Unlock()

	c.misses.Add(1)
	c.obsMisses.Inc()
	if !havePaints && doc != nil && doc.Root != nil {
		paints = paintList(doc)
	}
	img := imaging.NewPooled(opts.Width, opts.Height)
	if doc != nil && doc.Root != nil {
		renderPaints(img, doc, paints)
	}
	h := phash.DHashNoisyCached(img, opts.NoiseAmp, opts.NoiseSeed, nc)
	img.Release()

	c.mu.Lock()
	c.storeHash(key, h)
	if !havePaints && paints != nil {
		c.storePaints(fp, paints)
	}
	c.mu.Unlock()
	c.exportKernelStats()
	return h
}

// Image returns the rendered (noisy) capture, memoized behind the same
// content address as Hash. The returned image is the caller's own copy.
func (c *Cache) Image(doc *dom.Document, opts Options) *imaging.Image {
	if c == nil {
		return Render(doc, opts)
	}
	opts = normalizeFor(doc, opts)
	fp := DocFingerprint(doc)
	key := keyFor(fp, opts)

	c.mu.Lock()
	if img, ok := c.images[key]; ok {
		out := img.Clone()
		c.mu.Unlock()
		c.hits.Add(1)
		c.obsHits.Inc()
		return out
	}
	paints, havePaints := c.paints[fp]
	nc := c.noise
	c.mu.Unlock()

	c.misses.Add(1)
	c.obsMisses.Inc()
	if !havePaints && doc != nil && doc.Root != nil {
		paints = paintList(doc)
	}
	img := imaging.New(opts.Width, opts.Height)
	if doc != nil && doc.Root != nil {
		renderPaints(img, doc, paints)
	}
	if opts.NoiseAmp > 0 {
		img.NoiseCached(opts.NoiseAmp, opts.NoiseSeed, nc)
	}

	c.mu.Lock()
	c.storeImage(key, img)
	// The hash of this capture comes for free downstream; memoize it
	// too so a later Hash call on the same key hits.
	if _, ok := c.hashes[key]; !ok {
		c.storeHash(key, phash.DHash(img))
	}
	if !havePaints && paints != nil {
		c.storePaints(fp, paints)
	}
	out := img.Clone()
	c.mu.Unlock()
	c.exportKernelStats()
	return out
}

// storeHash/storeImage/storePaints insert under c.mu, evicting FIFO
// when a bound is exceeded.
func (c *Cache) storeHash(key captureKey, h phash.Hash) {
	if _, ok := c.hashes[key]; !ok {
		c.hashQ.push(key)
	}
	c.hashes[key] = h
	for len(c.hashes) > c.maxHashes {
		old, ok := c.hashQ.pop()
		if !ok {
			break
		}
		if _, present := c.hashes[old]; present {
			delete(c.hashes, old)
			c.evictions.Add(1)
			c.obsEvictions.Inc()
		}
	}
	c.obsEntries.Set(int64(len(c.hashes)))
}

func (c *Cache) storeImage(key captureKey, img *imaging.Image) {
	if _, ok := c.images[key]; !ok {
		c.imageQ.push(key)
	}
	c.images[key] = img
	for len(c.images) > c.maxImages {
		old, ok := c.imageQ.pop()
		if !ok {
			break
		}
		if _, present := c.images[old]; present {
			delete(c.images, old)
			c.evictions.Add(1)
			c.obsEvictions.Inc()
		}
	}
}

func (c *Cache) storePaints(fp Fingerprint, paints []paint) {
	if _, ok := c.paints[fp]; !ok {
		c.paintQ.push(fp)
	}
	c.paints[fp] = paints
	for len(c.paints) > c.maxPaints {
		old, ok := c.paintQ.pop()
		if !ok {
			break
		}
		delete(c.paints, old)
	}
}

// exportKernelStats publishes the fast-path gauges and counters that
// back the capture kernel: imaging buffer pools, the noise-plane cache
// (delta-fed counters plus byte-size gauges with a high-watermark) and
// the rng seed memo. Called on misses (the only operations that touch
// any of them).
func (c *Cache) exportKernelStats() {
	if c.obsPoolInUse == nil && c.obsPoolPeak == nil {
		return
	}
	gets, reuses, inUse := imaging.PoolStats()
	c.obsPoolInUse.Set(inUse)
	c.obsPoolPeak.SetMax(inUse)
	c.obsPoolGets.Set(gets)
	c.obsPoolReuses.Set(reuses)

	hits, misses, evicts, _ := c.NoisePlanes().Stats()
	c.obsPlaneHits.Add(hits - c.expPlaneHits.Swap(hits))
	c.obsPlaneMisses.Add(misses - c.expPlaneMisses.Swap(misses))
	c.obsPlaneEvicts.Add(evicts - c.expPlaneEvicts.Swap(evicts))
	c.obsPlaneBytes.Set(c.NoisePlanes().Bytes())
	c.obsPlaneBytesPeak.SetMax(c.NoisePlanes().BytesPeak())
	c.obsPlaneEntries.Set(int64(c.NoisePlanes().Entries()))

	memoHits, _, _, _ := rng.MemoStats()
	c.obsRngMemoHits.Add(memoHits - c.expRngMemoHits.Swap(memoHits))
}
