// Package screenshot rasterises DOM trees into images — the simulator's
// stand-in for the browser screenshots the paper's crawler captures at
// every click (Section 3.2) and perceptually hashes for campaign
// discovery (Section 3.3).
//
// Rendering is intentionally simple: element boxes are painted in
// z-order with their background fills, borders and deterministic text
// blocks. What matters for the pipeline is the invariant the real system
// relies on: pages built from the same visual template produce
// near-identical pixels (small dhash distance) while different templates
// differ strongly.
package screenshot

import (
	"sort"

	"repro/internal/dom"
	"repro/internal/imaging"
)

// Options control rendering.
type Options struct {
	// Width and Height of the viewport; zero values default to 1024x768.
	Width, Height int
	// NoiseAmp adds deterministic per-seed pixel noise, modelling dynamic
	// page content (counters, timestamps). Zero disables.
	NoiseAmp int
	// NoiseSeed selects the noise pattern (vary per capture).
	NoiseSeed uint64
}

// DefaultViewport is the desktop viewport used when Options are zero.
const (
	DefaultWidth  = 1024
	DefaultHeight = 768
)

// normalize resolves zero viewport dimensions to the defaults.
func (o Options) normalize() Options {
	if o.Width <= 0 {
		o.Width = DefaultWidth
	}
	if o.Height <= 0 {
		o.Height = DefaultHeight
	}
	return o
}

// Render paints the document into a fresh image. This is the naive
// reference path: it allocates its own canvas, re-derives the paint
// list, and mutates the pixels with the noise pass. The capture fast
// path (Cache) produces byte-identical output from pooled buffers and
// memoized paint lists.
func Render(doc *dom.Document, opts Options) *imaging.Image {
	opts = opts.normalize()
	img := imaging.New(opts.Width, opts.Height)
	if doc == nil || doc.Root == nil {
		return img
	}
	renderPaints(img, doc, paintList(doc))
	if opts.NoiseAmp > 0 {
		img.Noise(opts.NoiseAmp, opts.NoiseSeed)
	}
	return img
}

// paint is one z-ordered entry of a document's paint list.
type paint struct {
	el    *dom.Element
	order int
}

// paintList collects the document's paintable elements in stable
// z-order (document order breaks ties). The list depends only on the
// document content, never on the viewport, so the capture cache keeps
// it per document fingerprint and Render stops re-walking and
// re-sorting the DOM for every capture of an unchanged doc.
func paintList(doc *dom.Document) []paint {
	var paints []paint
	order := 0
	doc.Root.Walk(func(el *dom.Element) bool {
		paints = append(paints, paint{el, order})
		order++
		return true
	})
	sort.SliceStable(paints, func(i, j int) bool {
		if paints[i].el.Style.ZIndex != paints[j].el.Style.ZIndex {
			return paints[i].el.Style.ZIndex < paints[j].el.Style.ZIndex
		}
		return paints[i].order < paints[j].order
	})
	return paints
}

// renderPaints paints a prepared paint list onto the canvas. The
// capture is a scaled view of the document: element geometry is mapped
// from document coordinates onto the target canvas, as a real browser
// screenshot scales the rendered page rather than cropping its
// top-left corner.
func renderPaints(img *imaging.Image, doc *dom.Document, paints []paint) {
	w, h := img.W, img.H
	docW, docH := doc.Root.W, doc.Root.H
	if docW <= 0 {
		docW = w
	}
	if docH <= 0 {
		docH = h
	}
	sx := float64(w) / float64(docW)
	sy := float64(h) / float64(docH)
	scaleX := func(v int) int { return int(float64(v) * sx) }
	scaleY := func(v int) int { return int(float64(v) * sy) }

	for _, p := range paints {
		el := p.el
		if el.Style.Transparent || el.W <= 0 || el.H <= 0 {
			continue
		}
		x, y := scaleX(el.X), scaleY(el.Y)
		ew, eh := scaleX(el.W), scaleY(el.H)
		if ew < 1 {
			ew = 1
		}
		if eh < 1 {
			eh = 1
		}
		if el.Style.Background >= 0 {
			img.FillRect(x, y, ew, eh, rgb(el.Style.Background))
			// A subtle border keeps adjacent same-color boxes visually
			// distinct, as real boxes have edges.
			if el.Tag == "div" || el.Tag == "button" || el.Tag == "iframe" {
				img.Border(x, y, ew, eh, 1, darken(el.Style.Background))
			}
		}
		if el.Text != "" || el.Tag == "p" || el.Tag == "h1" {
			ink := el.Style.Ink
			if ink < 0 {
				ink = 0x202020
			}
			seed := el.Style.TextSeed
			if seed == 0 {
				seed = hashString(el.Text) | 1
			}
			pad := 2
			img.TextBlock(x+pad, y+pad, ew-2*pad, eh-2*pad, rgb(ink), seed)
		}
	}
}

func rgb(v int) imaging.Color {
	return imaging.RGB(byte(v>>16), byte(v>>8), byte(v))
}

func darken(v int) imaging.Color {
	r, g, b := (v>>16)&0xff, (v>>8)&0xff, v&0xff
	return imaging.RGB(byte(r*2/3), byte(g*2/3), byte(b*2/3))
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
