package browser

import (
	"strings"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/dom"
	"repro/internal/rng"
	"repro/internal/secamp"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

// testWorld builds a minimal publisher + ad network + campaign triangle.
type testWorld struct {
	internet *webtx.Internet
	clock    *vclock.Clock
	net      *adnet.Network
	camp     *secamp.Campaign
	pubHost  string
}

func newTestWorld(t *testing.T, spec adnet.Spec) *testWorld {
	t.Helper()
	src := rng.New(1234)
	w := &testWorld{internet: webtx.NewInternet(), clock: vclock.New(), pubHost: "pub-site.com"}
	w.net = adnet.New(spec, src)
	w.net.Install(w.internet)
	w.camp = secamp.New("camp-A", secamp.FakeSoftware, 0,
		secamp.Config{RotationPeriod: time.Hour, Slots: 1, TTLFactor: 3, TDSCount: 1},
		w.clock, src, nil)
	w.camp.Install(w.internet)
	w.net.AddCampaign(w.camp)
	adv := secamp.NewAdvertiser("adv-A", src)
	adv.Install(w.internet)
	w.net.AddAdvertiser(adv)

	// Publisher page with a banner image and the network's snippet.
	snippet := w.net.SnippetCode(adnet.ZoneFor(w.pubHost))
	w.internet.Register(w.pubHost, webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		root := dom.NewElement("body")
		root.W, root.H = 1024, 768
		root.Style.Background = 0xf0f0f0
		banner := dom.NewElement("img").SetAttr("id", "banner")
		banner.X, banner.Y, banner.W, banner.H = 100, 100, 728, 90
		banner.Style.Background = 0x88aa88
		root.Append(banner)
		doc := &dom.Document{URL: "http://" + w.pubHost + "/", Title: "pub", Root: root,
			Scripts: []dom.ScriptRef{{Code: snippet}}}
		return webtx.DocumentPage(doc)
	}))
	return w
}

func defaultOpts() Options {
	return Options{
		UserAgent: webtx.UAChromeMac, ClientIP: webtx.IPResidential,
		Stealth: true, BypassDialogs: true,
	}
}

func TestVisitLoadsDocument(t *testing.T) {
	w := newTestWorld(t, adnet.SeedSpecs()[2]) // PopCash
	b := New(w.internet, w.clock, defaultOpts())
	tab, err := b.Visit("http://pub-site.com/")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Status != webtx.StatusOK || tab.Doc == nil {
		t.Fatalf("tab = %+v", tab)
	}
	// Snippet executed: overlay injected, script fetch logged.
	foundFetch := false
	for _, e := range b.Events() {
		if e.Kind == EvScriptFetch && strings.Contains(e.To, "/serve.js") {
			foundFetch = true
		}
	}
	if !foundFetch {
		t.Fatal("ad script fetch not logged")
	}
	overlayFound := false
	tab.Doc.Root.Walk(func(el *dom.Element) bool {
		if el.Style.Transparent && el.Area() > 0 {
			overlayFound = true
		}
		return true
	})
	if !overlayFound {
		t.Fatal("transparent overlay not injected")
	}
}

func TestClickOpensPopupThroughAdChain(t *testing.T) {
	w := newTestWorld(t, adnet.SeedSpecs()[2]) // PopCash, no webdriver check
	b := New(w.internet, w.clock, defaultOpts())
	tab, err := b.Visit("http://pub-site.com/")
	if err != nil {
		t.Fatal(err)
	}
	// Click anywhere: the overlay handler fires.
	res, err := b.ClickAt(tab, 500, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OpenedTabs) != 1 {
		t.Fatalf("opened %d tabs", len(res.OpenedTabs))
	}
	popup := res.OpenedTabs[0]
	if popup.Status != webtx.StatusOK || popup.Doc == nil {
		t.Fatalf("popup = status %d", popup.Status)
	}
	// The popup went through the click-tracker redirect; its final URL is
	// a third-party page (advertiser or SE attack).
	if popup.URL.Host == w.pubHost {
		t.Fatal("popup stayed on publisher")
	}
	// The redirect hop through the click domain must be in the log.
	sawClickHop := false
	for _, e := range b.Events() {
		if e.Kind == EvNavigation && e.Cause == CauseRedirect && strings.Contains(e.From, "-c/go") {
			sawClickHop = true
		}
	}
	if !sawClickHop {
		t.Fatal("click-tracker redirect hop not logged")
	}
}

func TestWebdriverCloaking(t *testing.T) {
	spec := adnet.SeedSpecs()[3] // Propeller: checks webdriver
	run := func(stealth bool) int {
		w := newTestWorld(t, spec)
		opts := defaultOpts()
		opts.Stealth = stealth
		opts.ClientIP = webtx.IPResidential
		b := New(w.internet, w.clock, opts)
		tab, err := b.Visit("http://pub-site.com/")
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.ClickAt(tab, 500, 400)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.OpenedTabs)
	}
	if got := run(false); got != 0 {
		t.Fatalf("unstealthy browser got %d popups from webdriver-checking network", got)
	}
	if got := run(true); got == 0 {
		t.Fatal("stealthy browser got no ads")
	}
}

func TestPageLockBypass(t *testing.T) {
	// A tech-support page locks with alerts and onbeforeunload.
	internet := webtx.NewInternet()
	clock := vclock.New()
	src := rng.New(5)
	camp := secamp.New("ts", secamp.TechSupport, 0,
		secamp.Config{RotationPeriod: time.Hour, Slots: 1, TTLFactor: 3, TDSCount: 1},
		clock, src, nil)
	camp.Install(internet)

	// With bypass: page loads, screenshot works, navigation away works.
	b := New(internet, clock, defaultOpts())
	tab, err := b.Visit(camp.EntryURL())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Blocked() {
		t.Fatal("tab wedged despite bypass")
	}
	if _, err := b.Screenshot(tab); err != nil {
		t.Fatalf("screenshot: %v", err)
	}
	bypasses := 0
	for _, e := range b.Events() {
		if e.Kind == EvDialogBypass {
			bypasses++
		}
	}
	if bypasses < 3 { // three alert() calls in the lock loop
		t.Fatalf("only %d dialog bypasses logged", bypasses)
	}

	// Without bypass: the tab wedges on the first alert.
	opts := defaultOpts()
	opts.BypassDialogs = false
	b2 := New(internet, clock, opts)
	tab2, err := b2.Visit(camp.EntryURL())
	if err != nil {
		t.Fatal(err)
	}
	if !tab2.Blocked() {
		t.Fatal("locking page did not wedge unbypassed tab")
	}
	if _, err := b2.Screenshot(tab2); err != ErrTabBlocked {
		t.Fatalf("screenshot on wedged tab: %v", err)
	}
	if _, err := b2.ClickAt(tab2, 10, 10); err != ErrTabBlocked {
		t.Fatalf("click on wedged tab: %v", err)
	}
}

func TestDownloadFlow(t *testing.T) {
	internet := webtx.NewInternet()
	clock := vclock.New()
	src := rng.New(6)
	camp := secamp.New("fs", secamp.FakeSoftware, 0,
		secamp.Config{RotationPeriod: time.Hour, Slots: 1, TTLFactor: 3, TDSCount: 1},
		clock, src, nil)
	camp.Install(internet)
	b := New(internet, clock, defaultOpts())
	tab, err := b.Visit(camp.EntryURL())
	if err != nil {
		t.Fatal(err)
	}
	install := tab.Doc.Root.Find("install")
	if install == nil {
		t.Fatal("no install button")
	}
	if _, err := b.ClickElement(tab, install); err != nil {
		t.Fatal(err)
	}
	if len(tab.Downloads) != 1 {
		t.Fatalf("downloads = %d", len(tab.Downloads))
	}
	dl := tab.Downloads[0]
	if dl.CampaignID != "fs" || dl.SHA256 == "" {
		t.Fatalf("download = %+v", dl)
	}
	found := false
	for _, e := range b.Events() {
		if e.Kind == EvDownload && e.Download == dl {
			found = true
		}
	}
	if !found {
		t.Fatal("download not in event log")
	}
}

func TestRedirectChainRecorded(t *testing.T) {
	internet := webtx.NewInternet()
	clock := vclock.New()
	internet.Register("a.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		return webtx.RedirectTo("http://b.com/x")
	}))
	internet.Register("b.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		return webtx.RedirectTo("http://c.com/y")
	}))
	internet.Register("c.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		root := dom.NewElement("body")
		return webtx.DocumentPage(&dom.Document{Root: root})
	}))
	b := New(internet, clock, defaultOpts())
	tab, err := b.Visit("http://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if tab.URL.Host != "c.com" {
		t.Fatalf("final URL = %s", tab.URL.String())
	}
	var hops []string
	for _, e := range b.Events() {
		if e.Kind == EvNavigation && e.Cause == CauseRedirect {
			hops = append(hops, e.From+" -> "+e.To)
		}
	}
	if len(hops) != 2 {
		t.Fatalf("hops = %v", hops)
	}
}

func TestRedirectLoopBounded(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("loop.com", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		return webtx.RedirectTo("http://loop.com" + req.URL.Path + "x")
	}))
	b := New(internet, vclock.New(), defaultOpts())
	tab, err := b.Visit("http://loop.com/")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Status != 0 {
		t.Fatalf("status = %d", tab.Status)
	}
	sawLimit := false
	for _, e := range b.Events() {
		if e.Kind == EvError && strings.Contains(e.Detail, "redirect limit") {
			sawLimit = true
		}
	}
	if !sawLimit {
		t.Fatal("redirect limit not reported")
	}
}

func TestNXDomainLogged(t *testing.T) {
	b := New(webtx.NewInternet(), vclock.New(), defaultOpts())
	tab, err := b.Visit("http://nowhere.example/")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Status != 0 {
		t.Fatalf("status = %d", tab.Status)
	}
}

func TestMetaRefreshFollowed(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("m.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		doc := &dom.Document{Root: dom.NewElement("body"),
			MetaRefresh: &dom.MetaRefresh{DelaySeconds: 3, Target: "http://n.com/next"}}
		return webtx.DocumentPage(doc)
	}))
	internet.Register("n.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		return webtx.DocumentPage(&dom.Document{Root: dom.NewElement("body"), Title: "target"})
	}))
	b := New(internet, vclock.New(), defaultOpts())
	tab, err := b.Visit("http://m.com/")
	if err != nil {
		t.Fatal(err)
	}
	if tab.URL.Host != "n.com" {
		t.Fatalf("meta refresh not followed: %s", tab.URL.String())
	}
	saw := false
	for _, e := range b.Events() {
		if e.Kind == EvNavigation && e.Cause == CauseMetaRefresh {
			saw = true
		}
	}
	if !saw {
		t.Fatal("meta refresh cause not logged")
	}
}

func TestJSNavigationCauses(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("js.com", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		if req.URL.Path == "/" {
			doc := &dom.Document{Root: dom.NewElement("body"),
				Scripts: []dom.ScriptRef{{Code: `history.pushState("/deep");`}}}
			return webtx.DocumentPage(doc)
		}
		return webtx.DocumentPage(&dom.Document{Root: dom.NewElement("body"), Title: "deep"})
	}))
	b := New(internet, vclock.New(), defaultOpts())
	tab, err := b.Visit("http://js.com/")
	if err != nil {
		t.Fatal(err)
	}
	if tab.URL.Path != "/deep" {
		t.Fatalf("pushState not applied: %s", tab.URL.String())
	}
	saw := false
	for _, e := range b.Events() {
		if e.Kind == EvNavigation && e.Cause == CausePushState {
			saw = true
		}
	}
	if !saw {
		t.Fatal("pushState cause not logged")
	}
}

func TestSetTimeoutRuns(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("t.com", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		if req.URL.Path == "/" {
			doc := &dom.Document{Root: dom.NewElement("body"),
				Scripts: []dom.ScriptRef{{Code: `window.setTimeout(function() { location.assign("/later"); }, 500);`}}}
			return webtx.DocumentPage(doc)
		}
		return webtx.DocumentPage(&dom.Document{Root: dom.NewElement("body")})
	}))
	b := New(internet, vclock.New(), defaultOpts())
	tab, err := b.Visit("http://t.com/")
	if err != nil {
		t.Fatal(err)
	}
	if tab.URL.Path != "/later" {
		t.Fatalf("timeout navigation missing: %s", tab.URL.String())
	}
}

func TestPopupLimitEnforced(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("spam.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		code := `
			let i = 0;
			while (i < 50) { window.open("http://spam.com/p"); i = i + 1; }
		`
		return webtx.DocumentPage(&dom.Document{Root: dom.NewElement("body"),
			Scripts: []dom.ScriptRef{{Code: code}}})
	}))
	opts := defaultOpts()
	opts.MaxTabs = 4
	b := New(internet, vclock.New(), opts)
	if _, err := b.Visit("http://spam.com/"); err != nil {
		t.Fatal(err)
	}
	if len(b.Tabs()) > 4 {
		t.Fatalf("tabs = %d", len(b.Tabs()))
	}
}

func TestAdblockFilterBlocksScript(t *testing.T) {
	w := newTestWorld(t, adnet.SeedSpecs()[2])
	opts := defaultOpts()
	opts.BlockFilter = func(u urlx.URL) bool {
		return strings.Contains(u.Path, "/serve.js")
	}
	b := New(w.internet, w.clock, opts)
	tab, err := b.Visit("http://pub-site.com/")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ClickAt(tab, 500, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OpenedTabs) != 0 {
		t.Fatal("blocked network still delivered ads")
	}
	sawBlock := false
	for _, e := range b.Events() {
		if e.Kind == EvBlocked {
			sawBlock = true
		}
	}
	if !sawBlock {
		t.Fatal("block event missing")
	}
}

func TestScreenshotDeviceEmulation(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("p.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		// Size-less document: the device viewport applies.
		return webtx.DocumentPage(&dom.Document{Root: dom.NewElement("body")})
	}))
	internet.Register("q.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		root := dom.NewElement("body")
		root.W, root.H = 1024, 768
		return webtx.DocumentPage(&dom.Document{Root: root})
	}))
	opts := defaultOpts()
	opts.UserAgent = webtx.UAChromeAndroid
	opts.DeviceEmulation = true
	b := New(internet, vclock.New(), opts)
	tab, err := b.Visit("http://p.com/")
	if err != nil {
		t.Fatal(err)
	}
	img, err := b.Screenshot(tab)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != webtx.UAChromeAndroid.ScreenW || img.H != webtx.UAChromeAndroid.ScreenH {
		t.Fatalf("size-less screenshot = %dx%d", img.W, img.H)
	}
	// Sized documents are captured whole and scaled, independent of the
	// device profile: perceptual clustering aligns captures across UAs.
	tab2, err := b.Visit("http://q.com/")
	if err != nil {
		t.Fatal(err)
	}
	img2, err := b.Screenshot(tab2)
	if err != nil {
		t.Fatal(err)
	}
	if img2.W != 1024 || img2.H != 768 {
		t.Fatalf("sized screenshot = %dx%d", img2.W, img2.H)
	}
}

func TestAPICallsTraced(t *testing.T) {
	w := newTestWorld(t, adnet.SeedSpecs()[2])
	b := New(w.internet, w.clock, defaultOpts())
	tab, err := b.Visit("http://pub-site.com/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ClickAt(tab, 500, 400); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range b.Events() {
		if e.Kind == EvAPICall {
			names[e.API.Name] = true
		}
	}
	for _, want := range []string{"dec", "document.loadScript", "document.addOverlay", "window.addEventListener", "window.open"} {
		if !names[want] {
			t.Errorf("API call %q not traced (have %v)", want, names)
		}
	}
}

func TestFetchCostAdvancesClock(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("p.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		return webtx.DocumentPage(&dom.Document{Root: dom.NewElement("body")})
	}))
	clock := vclock.New()
	opts := defaultOpts()
	opts.FetchCost = 2 * time.Second
	b := New(internet, clock, opts)
	if _, err := b.Visit("http://p.com/"); err != nil {
		t.Fatal(err)
	}
	if clock.Since(vclock.Epoch) < 2*time.Second {
		t.Fatal("fetch cost not applied")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvNavigation; k <= EvError; k++ {
		if strings.HasPrefix(k.String(), "EventKind(") {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if EventKind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
