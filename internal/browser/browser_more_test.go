package browser

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

// Additional edge-path coverage for the browser runtime.

func TestOptionsAccessor(t *testing.T) {
	opts := defaultOpts()
	opts.MaxTabs = 3
	b := New(webtx.NewInternet(), vclock.New(), opts)
	if got := b.Options(); got.MaxTabs != 3 || !got.Stealth {
		t.Fatalf("Options = %+v", got)
	}
}

func TestOnBeforeUnloadBypassOnNavigation(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("lock.com", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		if req.URL.Path == "/away" {
			return webtx.DocumentPage(&dom.Document{Root: dom.NewElement("body"), Title: "away"})
		}
		doc := &dom.Document{Root: dom.NewElement("body"),
			Scripts: []dom.ScriptRef{{Code: `window.onbeforeunload(function() { return "stay!"; });`}}}
		return webtx.DocumentPage(doc)
	}))

	// With bypass: navigation away succeeds and logs the bypass.
	b := New(internet, vclock.New(), defaultOpts())
	tab, err := b.Visit("http://lock.com/")
	if err != nil {
		t.Fatal(err)
	}
	b.navigate(tab, tab.URL.WithPath("/away"), "", CauseUserNavigate)
	if tab.URL.Path != "/away" {
		t.Fatalf("navigation blocked: %s", tab.URL.String())
	}
	saw := false
	for _, e := range b.Events() {
		if e.Kind == EvDialogBypass && e.Detail == "onbeforeunload" {
			saw = true
		}
	}
	if !saw {
		t.Fatal("bypass not logged")
	}

	// Without bypass: the tab wedges on leaving.
	opts := defaultOpts()
	opts.BypassDialogs = false
	b2 := New(internet, vclock.New(), opts)
	tab2, err := b2.Visit("http://lock.com/")
	if err != nil {
		t.Fatal(err)
	}
	b2.navigate(tab2, tab2.URL.WithPath("/away"), "", CauseUserNavigate)
	if !tab2.Blocked() {
		t.Fatal("tab not wedged by onbeforeunload without bypass")
	}
	if tab2.URL.Path == "/away" {
		t.Fatal("navigation proceeded despite wedge")
	}
}

func TestExternalScriptFailures(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("p.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		doc := &dom.Document{Root: dom.NewElement("body"), Scripts: []dom.ScriptRef{
			{Src: "http://dead.example/x.js"}, // NXDOMAIN
			{Src: "http://p.com/missing.js"},  // 404
			{Src: "http://p.com/bad.js"},      // syntax error
			{Src: "://broken"},                // unresolvable
		}}
		return webtx.DocumentPage(doc)
	}))
	// Re-register p.com with script endpoints via a wrapper host.
	internet.Register("p.com", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		switch req.URL.Path {
		case "/bad.js":
			return webtx.Script(`let = broken;`)
		case "/missing.js":
			return webtx.NotFound()
		default:
			doc := &dom.Document{Root: dom.NewElement("body"), Scripts: []dom.ScriptRef{
				{Src: "http://dead.example/x.js"},
				{Src: "http://p.com/missing.js"},
				{Src: "http://p.com/bad.js"},
				{Src: "://broken"},
				{Code: `let ok = 1;`},
			}}
			return webtx.DocumentPage(doc)
		}
	}))
	b := New(internet, vclock.New(), defaultOpts())
	tab, err := b.Visit("http://p.com/")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Status != webtx.StatusOK {
		t.Fatal("page load failed")
	}
	errs := 0
	for _, e := range b.Events() {
		if e.Kind == EvError {
			errs++
		}
	}
	if errs < 4 {
		t.Fatalf("only %d errors logged for 4 failing scripts", errs)
	}
}

func TestInlineScriptErrorLogged(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("p.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		doc := &dom.Document{Root: dom.NewElement("body"),
			Scripts: []dom.ScriptRef{{Code: `undefinedCall();`}}}
		return webtx.DocumentPage(doc)
	}))
	b := New(internet, vclock.New(), defaultOpts())
	if _, err := b.Visit("http://p.com/"); err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, e := range b.Events() {
		if e.Kind == EvError && strings.Contains(e.Detail, "inline script") {
			saw = true
		}
	}
	if !saw {
		t.Fatal("inline script error not logged")
	}
}

func TestJSNavigationAndDownloadErrorPaths(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("p.com", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		doc := &dom.Document{Root: dom.NewElement("body"), Scripts: []dom.ScriptRef{{Code: `
			document.download("http://nowhere.example/file.bin");
			document.download("/not-a-download");
			location.assign("://bad");
		`}}}
		return webtx.DocumentPage(doc)
	}))
	b := New(internet, vclock.New(), defaultOpts())
	tab, err := b.Visit("http://p.com/")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Downloads) != 0 {
		t.Fatal("phantom downloads recorded")
	}
	errs := 0
	for _, e := range b.Events() {
		if e.Kind == EvError {
			errs++
		}
	}
	if errs < 3 {
		t.Fatalf("errors = %d, want >= 3", errs)
	}
}

func TestPopupBadURLLogged(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("p.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		doc := &dom.Document{Root: dom.NewElement("body"),
			Scripts: []dom.ScriptRef{{Code: `window.open("://nope");`}}}
		return webtx.DocumentPage(doc)
	}))
	b := New(internet, vclock.New(), defaultOpts())
	if _, err := b.Visit("http://p.com/"); err != nil {
		t.Fatal(err)
	}
	if len(b.Tabs()) != 1 {
		t.Fatal("bad popup opened a tab")
	}
}

func TestConfirmDialogBypassed(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("p.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		doc := &dom.Document{Root: dom.NewElement("body"),
			Scripts: []dom.ScriptRef{{Code: `let ok = window.confirm("leave?");`}}}
		return webtx.DocumentPage(doc)
	}))
	b := New(internet, vclock.New(), defaultOpts())
	if _, err := b.Visit("http://p.com/"); err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, e := range b.Events() {
		if e.Kind == EvDialogBypass && e.Detail == "confirm" {
			saw = true
		}
	}
	if !saw {
		t.Fatal("confirm bypass not logged")
	}
}

func TestClickOnEmptyTabErrors(t *testing.T) {
	b := New(webtx.NewInternet(), vclock.New(), defaultOpts())
	tab, err := b.Visit("http://nosuch.example/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ClickAt(tab, 1, 1); err == nil {
		t.Fatal("click on empty tab succeeded")
	}
	if _, err := b.Screenshot(tab); err == nil {
		t.Fatal("screenshot of empty tab succeeded")
	}
}

func TestVisitBadURL(t *testing.T) {
	b := New(webtx.NewInternet(), vclock.New(), defaultOpts())
	if _, err := b.Visit("not a url"); err == nil {
		t.Fatal("bad URL accepted")
	}
}

func TestOverlayIdempotent(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("p.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		root := dom.NewElement("body")
		root.W, root.H = 100, 100
		doc := &dom.Document{Root: root, Scripts: []dom.ScriptRef{{Code: `
			document.addOverlay("ovl", 10);
			document.addOverlay("ovl", 10);
		`}}}
		return webtx.DocumentPage(doc)
	}))
	b := New(internet, vclock.New(), defaultOpts())
	tab, err := b.Visit("http://p.com/")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	tab.Doc.Root.Walk(func(el *dom.Element) bool {
		if el.ID() == "ovl" {
			count++
		}
		return true
	})
	if count != 1 {
		t.Fatalf("overlay count = %d", count)
	}
}

func TestReferrerSuppression(t *testing.T) {
	internet := webtx.NewInternet()
	var lastReferrer string
	internet.Register("a.com", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		doc := &dom.Document{Root: dom.NewElement("body"),
			Scripts: []dom.ScriptRef{{Code: `window.open("http://b.com/t");`}}}
		resp := webtx.DocumentPage(doc)
		resp.ReferrerPolicy = "no-referrer"
		return resp
	}))
	internet.Register("b.com", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		lastReferrer = req.Referrer
		return webtx.DocumentPage(&dom.Document{Root: dom.NewElement("body")})
	}))
	b := New(internet, vclock.New(), defaultOpts())
	if _, err := b.Visit("http://a.com/"); err != nil {
		t.Fatal(err)
	}
	if lastReferrer != "" {
		t.Fatalf("referrer leaked: %q", lastReferrer)
	}
}
