package browser

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/dom"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

// eventSummaries projects the log onto its behaviour-defining fields.
func eventSummaries(events []Event) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = fmt.Sprintf("%s|%s|%s|%s|%s|%s", e.Kind, e.From, e.To, e.Cause, e.Detail, e.Time.Format(time.RFC3339))
	}
	return out
}

// TestResetSessionReusesTab: after ResetSession the next Visit must hand
// back the recycled tab (interpreter and host env retained) with all
// per-session state cleared.
func TestResetSessionReusesTab(t *testing.T) {
	w := newTestWorld(t, adnet.SeedSpecs()[2])
	b := New(w.internet, w.clock, defaultOpts())
	tab1, err := b.Visit("http://pub-site.com/")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events()) == 0 {
		t.Fatal("first session produced no events")
	}
	b.ResetSession()
	if len(b.Events()) != 0 || len(b.Tabs()) != 0 {
		t.Fatalf("session state survived reset: %d events, %d tabs", len(b.Events()), len(b.Tabs()))
	}
	tab2, err := b.Visit("http://pub-site.com/")
	if err != nil {
		t.Fatal(err)
	}
	if tab2 != tab1 {
		t.Fatal("second session did not recycle the spare tab")
	}
	if tab2.ID != 0 || tab2.Status != webtx.StatusOK || tab2.Doc == nil {
		t.Fatalf("recycled tab state: %+v", tab2)
	}
}

// TestResetEquivalence: a browser reused via Reset must produce the
// byte-identical event log a fresh browser produces for the same
// session — the contract the milker's client pool depends on.
func TestResetEquivalence(t *testing.T) {
	w := newTestWorld(t, adnet.SeedSpecs()[2])

	fresh := New(w.internet, w.clock, defaultOpts())
	if _, err := fresh.Visit("http://pub-site.com/"); err != nil {
		t.Fatal(err)
	}
	want := eventSummaries(fresh.Events())

	reused := New(w.internet, w.clock, defaultOpts())
	for round := 0; round < 3; round++ {
		reused.Reset(defaultOpts())
		if _, err := reused.Visit("http://pub-site.com/"); err != nil {
			t.Fatal(err)
		}
		got := eventSummaries(reused.Events())
		if len(got) != len(want) {
			t.Fatalf("round %d: %d events, want %d\ngot %v\nwant %v", round, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d event %d:\n  got  %s\n  want %s", round, i, got[i], want[i])
			}
		}
	}
}

// TestPinTime: a pinned session must stamp every event and request with
// the pinned instant regardless of the live clock, and unpinning must
// return to clock time.
func TestPinTime(t *testing.T) {
	internet := webtx.NewInternet()
	clock := vclock.New()
	var reqTime time.Time
	internet.Register("pin.test", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		reqTime = req.Time
		return webtx.HTMLPage("<html></html>")
	}))

	b := New(internet, clock, defaultOpts())
	pin := vclock.Epoch.Add(5 * time.Hour)
	b.PinTime(pin)
	if _, err := b.Visit("http://pin.test/"); err != nil {
		t.Fatal(err)
	}
	if !reqTime.Equal(pin) {
		t.Fatalf("request time %v, want pinned %v", reqTime, pin)
	}
	for _, e := range b.Events() {
		if !e.Time.Equal(pin) {
			t.Fatalf("event %v stamped %v, want pinned %v", e.Kind, e.Time, pin)
		}
	}
	b.PinTime(time.Time{})
	if _, err := b.Visit("http://pin.test/"); err != nil {
		t.Fatal(err)
	}
	if !reqTime.Equal(clock.Now()) {
		t.Fatalf("unpinned request time %v, want clock %v", reqTime, clock.Now())
	}
}

// TestHostEnvRestoredAcrossLoads: a page script that clobbers a host
// object field must not poison the next page load in the same tab — the
// cached env restores its pristine fields per install. Page A clobbers
// window.alert and meta-refreshes (same tab, same interpreter) to page
// B, whose alert call must still reach the host dialog handler.
func TestHostEnvRestoredAcrossLoads(t *testing.T) {
	internet := webtx.NewInternet()
	clock := vclock.New()
	page := func(title string, script string, refresh *dom.MetaRefresh) *webtx.Response {
		root := dom.NewElement("body")
		root.W, root.H = 800, 600
		doc := &dom.Document{Title: title, Root: root,
			Scripts: []dom.ScriptRef{{Code: script}}, MetaRefresh: refresh}
		return webtx.DocumentPage(doc)
	}
	internet.Register("site-a.test", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		return page("a", `window.alert = "clobbered";`,
			&dom.MetaRefresh{DelaySeconds: 1, Target: "http://site-b.test/"})
	}))
	internet.Register("site-b.test", webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		return page("b", `window.alert("hello");`, nil)
	}))

	b := New(internet, clock, defaultOpts())
	tab, err := b.Visit("http://site-a.test/")
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.URL.Host; got != "site-b.test" {
		t.Fatalf("meta refresh did not land on site-b: %s", got)
	}
	bypass := false
	for _, e := range b.Events() {
		if e.Kind == EvError {
			t.Fatalf("script error after env restore: %+v", e)
		}
		if e.Kind == EvDialogBypass && e.Detail == "alert" {
			bypass = true
		}
	}
	if !bypass {
		t.Fatal("page B's alert never reached the host handler — clobbered field leaked across loads")
	}
}
