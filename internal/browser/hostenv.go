package browser

import (
	"errors"
	"time"

	"repro/internal/adscript"
	"repro/internal/dom"
	"repro/internal/urlx"
)

// hostEnv is a tab's built host-API surface, cached across page loads.
// The host-function closures capture the tab and interpreter pointers,
// so the cache is valid exactly as long as the tab keeps the same
// interpreter (navigate abandons a mid-flight interpreter, which
// invalidates it). Scripts can write through to host objects
// (window.foo = 1, or clobbering a method), so each install restores
// every object's field map from the pristine base snapshot before
// re-setting the per-load dynamic values.
type hostEnv struct {
	in   *adscript.Interp
	objs map[string]*adscript.Object          // global name -> object
	base map[string]map[string]adscript.Value // global name -> pristine fields
}

// installHostEnv exposes the page's script environment: window, document,
// navigator, history, notification and screen objects whose methods are
// host functions traced by the interpreter. The shape mirrors the browser
// APIs the paper lists as ad-delivery mechanisms (Section 3.4): window
// .open, location navigations, history.pushState/replaceState,
// addEventListener, setTimeout, plus the page-locking APIs of Section 3.2.
// The objects are built once per (tab, interpreter) and reused: repeat
// installs restore fields from the base snapshot instead of
// reconstructing ~30 host-function closures per page load.
func (b *Browser) installHostEnv(tab *Tab) {
	if tab.env == nil || tab.env.in != tab.interp {
		tab.env = b.buildHostEnv(tab)
	}
	env := tab.env
	for name, obj := range env.objs {
		fields := obj.Fields
		clear(fields)
		for k, v := range env.base[name] {
			fields[k] = v
		}
	}
	// Per-load / per-options dynamic values.
	env.objs["location"].Set("href", tab.URL.String())
	env.objs["document"].Set("title", tab.Doc.Title)
	env.objs["navigator"].Set("userAgent", b.opts.UserAgent.Header)
	// DevTools automation exposes webdriver=true; the paper's patched
	// build removes the flag. Stealth reproduces the patch.
	env.objs["navigator"].Set("webdriver", !b.opts.Stealth)
	w, h := float64(1024), float64(768)
	if b.opts.DeviceEmulation {
		w, h = float64(b.opts.UserAgent.ScreenW), float64(b.opts.UserAgent.ScreenH)
	}
	env.objs["screen"].Set("width", w).Set("height", h)

	g := tab.interp.Globals
	for name, obj := range env.objs {
		g.Define(name, obj)
	}
}

// buildHostEnv constructs the host objects and snapshots their pristine
// fields. Dynamic values (location.href, document.title, navigator.*,
// screen.*) are set by installHostEnv after every restore, so the
// snapshot only needs the invariant parts.
func (b *Browser) buildHostEnv(tab *Tab) *hostEnv {
	in := tab.interp

	hf := func(name string, fn func(args []adscript.Value) (adscript.Value, error)) *adscript.HostFunc {
		return &adscript.HostFunc{Name: name, Fn: fn}
	}
	str := func(args []adscript.Value, i int) (string, bool) {
		if i >= len(args) {
			return "", false
		}
		s, ok := args[i].(string)
		return s, ok
	}

	// --- window ---
	win := adscript.NewObject()
	win.Set("open", hf("window.open", func(args []adscript.Value) (adscript.Value, error) {
		target, ok := str(args, 0)
		if !ok {
			return nil, errors.New("want url string")
		}
		b.openPopup(tab, target)
		return nil, nil
	}))
	win.Set("addEventListener", hf("window.addEventListener", func(args []adscript.Value) (adscript.Value, error) {
		ev, ok := str(args, 0)
		if !ok || len(args) < 2 {
			return nil, errors.New("want (event, fn)")
		}
		tab.listeners["window"] = append(tab.listeners["window"],
			listenerEntry{event: ev, fn: args[1], scriptURL: in.ScriptURL})
		return nil, nil
	}))
	win.Set("setTimeout", hf("window.setTimeout", func(args []adscript.Value) (adscript.Value, error) {
		if len(args) < 1 {
			return nil, errors.New("want (fn, ms)")
		}
		delay := time.Duration(0)
		if len(args) > 1 {
			if ms, ok := args[1].(float64); ok {
				delay = time.Duration(ms) * time.Millisecond
			}
		}
		tab.timeouts = append(tab.timeouts, timeoutEntry{fn: args[0], delay: delay, scriptURL: in.ScriptURL})
		return float64(len(tab.timeouts)), nil
	}))
	win.Set("alert", hf("window.alert", func(args []adscript.Value) (adscript.Value, error) {
		b.handleDialog(tab, "alert")
		return nil, nil
	}))
	win.Set("confirm", hf("window.confirm", func(args []adscript.Value) (adscript.Value, error) {
		b.handleDialog(tab, "confirm")
		return true, nil
	}))
	win.Set("onbeforeunload", hf("window.onbeforeunload", func(args []adscript.Value) (adscript.Value, error) {
		if len(args) < 1 {
			return nil, errors.New("want handler fn")
		}
		tab.beforeUnload = append(tab.beforeUnload, args[0])
		return nil, nil
	}))

	location := adscript.NewObject()
	location.Set("assign", hf("location.assign", func(args []adscript.Value) (adscript.Value, error) {
		target, ok := str(args, 0)
		if !ok {
			return nil, errors.New("want url string")
		}
		b.jsNavigate(tab, target, CauseLocation)
		return nil, nil
	}))
	location.Set("replace", hf("location.replace", func(args []adscript.Value) (adscript.Value, error) {
		target, ok := str(args, 0)
		if !ok {
			return nil, errors.New("want url string")
		}
		b.jsNavigate(tab, target, CauseLocation)
		return nil, nil
	}))
	win.Set("location", location)

	// --- document ---
	docObj := adscript.NewObject()
	docObj.Set("referrer", "")
	docObj.Set("loadScript", hf("document.loadScript", func(args []adscript.Value) (adscript.Value, error) {
		src, ok := str(args, 0)
		if !ok {
			return nil, errors.New("want url string")
		}
		b.runExternalScript(tab, tab.URL, src)
		return nil, nil
	}))
	docObj.Set("addOverlay", hf("document.addOverlay", func(args []adscript.Value) (adscript.Value, error) {
		id, ok := str(args, 0)
		if !ok {
			return nil, errors.New("want (id, zindex)")
		}
		z := 99999
		if len(args) > 1 {
			if zf, ok := args[1].(float64); ok {
				z = int(zf)
			}
		}
		if tab.Doc.Root.Find(id) == nil {
			ovl := dom.NewElement("div").SetAttr("id", id)
			ovl.W, ovl.H = tab.Doc.Root.W, tab.Doc.Root.H
			if ovl.W == 0 {
				ovl.W, ovl.H = 1024, 768
			}
			ovl.Style.Transparent = true
			ovl.Style.ZIndex = z
			tab.Doc.Root.Append(ovl)
		}
		return id, nil
	}))
	docObj.Set("listen", hf("document.listen", func(args []adscript.Value) (adscript.Value, error) {
		id, ok1 := str(args, 0)
		ev, ok2 := str(args, 1)
		if !ok1 || !ok2 || len(args) < 3 {
			return nil, errors.New("want (id, event, fn)")
		}
		tab.listeners[id] = append(tab.listeners[id],
			listenerEntry{event: ev, fn: args[2], scriptURL: in.ScriptURL})
		return nil, nil
	}))
	docObj.Set("download", hf("document.download", func(args []adscript.Value) (adscript.Value, error) {
		target, ok := str(args, 0)
		if !ok {
			return nil, errors.New("want url string")
		}
		b.jsDownload(tab, target)
		return nil, nil
	}))

	// --- navigator (userAgent/webdriver set per install) ---
	nav := adscript.NewObject()

	// --- history ---
	hist := adscript.NewObject()
	hist.Set("pushState", hf("history.pushState", func(args []adscript.Value) (adscript.Value, error) {
		target, ok := str(args, 0)
		if !ok {
			return nil, errors.New("want url string")
		}
		b.jsNavigate(tab, target, CausePushState)
		return nil, nil
	}))
	hist.Set("replaceState", hf("history.replaceState", func(args []adscript.Value) (adscript.Value, error) {
		target, ok := str(args, 0)
		if !ok {
			return nil, errors.New("want url string")
		}
		b.jsNavigate(tab, target, CausePushState)
		return nil, nil
	}))

	// --- notification (the Chrome push-notification lure surface) ---
	notif := adscript.NewObject()
	notif.Set("request", hf("notification.request", func(args []adscript.Value) (adscript.Value, error) {
		// The crawler records the permission request but never grants it.
		return "default", nil
	}))

	// --- screen (dimensions set per install from device emulation) ---
	scr := adscript.NewObject()

	env := &hostEnv{
		in: in,
		objs: map[string]*adscript.Object{
			"window": win, "location": location, "document": docObj,
			"navigator": nav, "history": hist, "notification": notif,
			"screen": scr,
		},
		base: map[string]map[string]adscript.Value{},
	}
	for name, obj := range env.objs {
		snap := make(map[string]adscript.Value, len(obj.Fields))
		for k, v := range obj.Fields {
			snap[k] = v
		}
		env.base[name] = snap
	}
	return env
}

// handleDialog implements the modal-dialog instrumentation: bypassed
// dialogs are logged and dismissed; without the bypass the tab wedges
// (repeated alerts are the paper's page-locking tactic).
func (b *Browser) handleDialog(tab *Tab, kind string) {
	if b.opts.BypassDialogs {
		b.logEvent(Event{Kind: EvDialogBypass, Tab: tab.ID, From: tab.URL.String(), Detail: kind})
		return
	}
	tab.blocked = true
	b.logEvent(Event{Kind: EvError, Tab: tab.ID, From: tab.URL.String(), Detail: "tab wedged by " + kind})
}

// openPopup opens target in a new tab (window.open), honouring MaxTabs.
func (b *Browser) openPopup(opener *Tab, target string) {
	u, err := opener.URL.Resolve(target)
	if err != nil {
		b.logEvent(Event{Kind: EvError, Tab: opener.ID, To: target, Detail: "bad popup url: " + err.Error()})
		return
	}
	if len(b.tabs) >= b.opts.MaxTabs {
		b.logEvent(Event{Kind: EvError, Tab: opener.ID, To: u.String(), Detail: "popup suppressed: tab limit"})
		return
	}
	// The popup is attributed to the script whose handler opened it (not
	// merely the page), so backtracking graphs thread through the right
	// ad network even on pages stacking several networks' scripts.
	from := opener.URL.String()
	if opener.interp != nil && opener.interp.ScriptURL != "" {
		from = opener.interp.ScriptURL
	}
	b.logEvent(Event{Kind: EvPopup, Tab: opener.ID, From: from, To: u.String(), Cause: CauseWindowOpen})
	tab := b.newTab()
	ref := opener.URL.String()
	if opener.suppressRef {
		ref = ""
	}
	b.navigateWithReferrer(tab, u, ref, CauseWindowOpen)
}

func (b *Browser) navigateWithReferrer(tab *Tab, u urlx.URL, referrer, cause string) {
	b.navigate(tab, u, referrer, cause)
}

// jsNavigate handles location.assign / history.pushState navigations.
func (b *Browser) jsNavigate(tab *Tab, target, cause string) {
	u, err := tab.URL.Resolve(target)
	if err != nil {
		b.logEvent(Event{Kind: EvError, Tab: tab.ID, To: target, Detail: "bad js navigation: " + err.Error()})
		return
	}
	ref := tab.URL.String()
	if tab.suppressRef {
		ref = ""
	}
	b.navigate(tab, u, ref, cause)
}

// jsDownload fetches a download URL triggered from script.
func (b *Browser) jsDownload(tab *Tab, target string) {
	u, err := tab.URL.Resolve(target)
	if err != nil {
		b.logEvent(Event{Kind: EvError, Tab: tab.ID, To: target, Detail: "bad download url: " + err.Error()})
		return
	}
	resp, err := b.fetch(u, tab.URL.String())
	if err != nil {
		b.logEvent(Event{Kind: EvError, Tab: tab.ID, To: u.String(), Detail: err.Error()})
		return
	}
	if resp.Download == nil {
		b.logEvent(Event{Kind: EvError, Tab: tab.ID, To: u.String(), Detail: "no file at download url"})
		return
	}
	tab.Downloads = append(tab.Downloads, resp.Download)
	b.logEvent(Event{Kind: EvDownload, Tab: tab.ID, From: tab.URL.String(), To: u.String(), Download: resp.Download})
}
