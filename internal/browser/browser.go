// Package browser implements the instrumented headless browser at the
// core of the paper's crawler (Section 3.2): a multi-tab navigation
// engine over the synthetic web that
//
//   - follows HTTP redirect chains hop by hop, recording each;
//   - executes page scripts in an adscript VM whose every host-API call
//     is traced (the JSgraph-style "deep code instrumentation");
//   - supports popups (window.open), JS navigations (location.assign,
//     history.pushState), meta refresh, and script-driven DOM injection
//     (transparent overlay ads);
//   - bypasses page-locking tactics — JS modal dialogs and
//     onbeforeunload handlers — exactly as the paper patched Chromium to
//     do; without the bypass a locking page wedges the tab;
//   - emulates the four paper UA profiles including mobile device
//     metrics, and hides the automation flag (navigator.webdriver) when
//     driven through the stealth DevTools client.
//
// The byproduct of a browsing session is the event log consumed by
// internal/btgraph to rebuild ad-loading chains.
package browser

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/adscript"
	"repro/internal/dom"
	"repro/internal/imaging"
	"repro/internal/phash"
	"repro/internal/screenshot"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

// EventKind classifies browser log events.
type EventKind int

const (
	// EvNavigation is any URL change of a tab (initial load, redirect
	// hop, JS navigation, meta refresh).
	EvNavigation EventKind = iota
	// EvScriptFetch is an external script load.
	EvScriptFetch
	// EvAPICall is one traced host-API invocation.
	EvAPICall
	// EvPopup is a window.open that produced a new tab.
	EvPopup
	// EvDownload is a completed file download.
	EvDownload
	// EvDialogBypass records a neutralised page-locking attempt.
	EvDialogBypass
	// EvBlocked records a fetch suppressed by the ad-block filter.
	EvBlocked
	// EvError records a failed fetch (NXDOMAIN, HTTP error).
	EvError
)

var evNames = map[EventKind]string{
	EvNavigation: "navigation", EvScriptFetch: "script-fetch", EvAPICall: "api-call",
	EvPopup: "popup", EvDownload: "download", EvDialogBypass: "dialog-bypass",
	EvBlocked: "blocked", EvError: "error",
}

func (k EventKind) String() string {
	if s, ok := evNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Navigation causes recorded on EvNavigation events; btgraph keys its
// edges on these.
const (
	CauseInitial      = "initial"
	CauseRedirect     = "http-redirect"
	CauseMetaRefresh  = "meta-refresh"
	CauseWindowOpen   = "window.open"
	CauseLocation     = "location.assign"
	CausePushState    = "history.pushState"
	CauseScriptSrc    = "script-src"
	CauseUserNavigate = "user"
)

// Event is one entry of the browser's instrumentation log.
type Event struct {
	Kind     EventKind
	Tab      int
	Time     time.Time
	From     string // URL context the event originated from
	To       string // target URL where applicable
	Cause    string
	API      adscript.APICall
	Download *webtx.Download
	Detail   string
}

// Options configure a browsing session.
type Options struct {
	UserAgent webtx.UserAgent
	ClientIP  webtx.IPClass
	// Stealth hides the automation flag: navigator.webdriver reads false.
	// This is the paper's source-level DevTools patch; without it, ad
	// networks that check the flag withhold their ads.
	Stealth bool
	// BypassDialogs neutralises alert/confirm/onbeforeunload page locks.
	// Without it a locking page wedges the tab.
	BypassDialogs bool
	// BlockFilter, when non-nil, suppresses any fetch it matches
	// (ad-blocker simulation).
	BlockFilter func(u urlx.URL) bool
	// DeviceEmulation sizes the viewport from the UA profile (Chrome
	// DevTools device mode).
	DeviceEmulation bool
	// MaxRedirects bounds a single navigation's redirect chain.
	MaxRedirects int
	// MaxTabs bounds popup fan-out per session.
	MaxTabs int
	// FetchCost is the virtual time a fetch consumes (session pacing).
	FetchCost time.Duration
	// ViewportScale divides the screenshot resolution by the given factor
	// (1 = native). Perceptual hashing is resolution-invariant, so large
	// experiments capture at reduced scale to save rendering time.
	ViewportScale int
	// Capture, when non-nil, is the shared content-addressed capture
	// cache ScreenshotHash consults before rendering. Output is
	// byte-identical with or without it; nil disables memoization (the
	// fused fast path is still used).
	Capture *screenshot.Cache
	// Scripts, when non-nil, is the shared compile-once program cache
	// consulted before parsing any page script. Execution is trace-
	// identical with or without it; nil parses per run.
	Scripts *adscript.ProgramCache
}

func (o *Options) fillDefaults() {
	if o.UserAgent.Name == "" {
		o.UserAgent = webtx.UAChromeMac
	}
	if o.MaxRedirects == 0 {
		o.MaxRedirects = 10
	}
	if o.MaxTabs == 0 {
		o.MaxTabs = 8
	}
}

// Browser is one browsing session. Not safe for concurrent use; the
// crawler farm gives each worker its own Browser.
type Browser struct {
	internet *webtx.Internet
	clock    *vclock.Clock
	opts     Options
	tabs     []*Tab
	events   []Event
	// pinned, when non-zero, is the session-visible time: every request
	// timestamp, log event, and capture seed reads it instead of the live
	// clock. The pipelined milker pins each probe to its tick instant so
	// overlapped execution observes exactly the time a lock-step run
	// would (the clock may already have advanced past the tick).
	pinned time.Time
	// spare is one tab retained across ResetSession for reuse: its
	// interpreter, listener map, and host environment survive, cutting
	// the per-session allocation churn of single-tab probe sessions.
	spare *Tab
}

// Tab is one open page.
type Tab struct {
	ID  int
	URL urlx.URL
	Doc *dom.Document
	// Status is the final HTTP status of the last navigation (0 on
	// resolution failure).
	Status    int
	Downloads []*webtx.Download

	browser      *Browser
	interp       *adscript.Interp
	env          *hostEnv // cached host-API objects, rebuilt when interp changes
	listeners    map[string][]listenerEntry
	beforeUnload []adscript.Value
	timeouts     []timeoutEntry
	blocked      bool // wedged by an unbypassed page lock
	suppressRef  bool
}

type listenerEntry struct {
	event string
	fn    adscript.Value
	// scriptURL is the script that registered the listener; handler
	// execution is attributed to it (the JSgraph-style provenance that
	// makes ad attribution work even for co-installed ad networks).
	scriptURL string
}

type timeoutEntry struct {
	fn        adscript.Value
	delay     time.Duration
	scriptURL string
}

// ErrTabBlocked is returned when an unbypassed page lock wedges a tab.
var ErrTabBlocked = errors.New("browser: tab blocked by page-locking dialog")

// New opens a browser session on the given internet and clock.
func New(internet *webtx.Internet, clock *vclock.Clock, opts Options) *Browser {
	opts.fillDefaults()
	return &Browser{internet: internet, clock: clock, opts: opts}
}

// Options returns the session options (read-only view).
func (b *Browser) Options() Options { return b.opts }

// Tabs returns the open tabs in creation order.
func (b *Browser) Tabs() []*Tab { return b.tabs }

// Events returns the instrumentation log.
func (b *Browser) Events() []Event { return b.events }

// PinTime fixes the session-visible time at t: fetches, event
// timestamps, and capture noise seeds all read t until the pin changes.
// A zero t unpins, returning the session to the live virtual clock.
// Pinning lets a scheduler run this session concurrently with clock
// advancement while it behaves exactly as if it ran at t.
func (b *Browser) PinTime(t time.Time) { b.pinned = t }

// now is the session-visible time: the pin when set, else the clock.
func (b *Browser) now() time.Time {
	if !b.pinned.IsZero() {
		return b.pinned
	}
	return b.clock.Now()
}

// ResetSession clears per-session state — tabs, the event log, any time
// pin — so the Browser can serve a fresh session without reallocating.
// One healthy tab (not wedged, interpreter idle) is retained and handed
// back by the next Visit, preserving its interpreter and host
// environment across sessions.
func (b *Browser) ResetSession() {
	b.events = b.events[:0]
	b.pinned = time.Time{}
	for _, t := range b.tabs {
		if !t.blocked && (t.interp == nil || !t.interp.Active()) {
			b.spare = t
			break
		}
	}
	for i := range b.tabs {
		b.tabs[i] = nil
	}
	b.tabs = b.tabs[:0]
}

// Reset re-arms the browser for a new session under new options,
// reusing buffers, tab, and interpreter state where safe. Equivalent to
// a fresh New apart from allocation churn.
func (b *Browser) Reset(opts Options) {
	opts.fillDefaults()
	b.opts = opts
	b.ResetSession()
}

func (b *Browser) logEvent(e Event) {
	e.Time = b.now()
	b.events = append(b.events, e)
}

// Visit opens the URL in a fresh tab and returns it.
func (b *Browser) Visit(rawURL string) (*Tab, error) {
	u, err := urlx.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	tab := b.newTab()
	b.navigate(tab, u, "", CauseInitial)
	return tab, nil
}

func (b *Browser) newTab() *Tab {
	if s := b.spare; s != nil {
		b.spare = nil
		s.resetForReuse(len(b.tabs))
		b.tabs = append(b.tabs, s)
		return s
	}
	tab := &Tab{ID: len(b.tabs), browser: b, listeners: map[string][]listenerEntry{}}
	b.tabs = append(b.tabs, tab)
	return tab
}

// resetForReuse returns a recycled tab to its just-opened state. The
// interpreter and cached host environment are kept (runPageScripts
// resets interpreter globals per load); Downloads is dropped rather
// than truncated because callers may hold the previous slice.
func (t *Tab) resetForReuse(id int) {
	t.ID = id
	t.URL = urlx.URL{}
	t.Doc = nil
	t.Status = 0
	t.Downloads = nil
	clear(t.listeners)
	t.beforeUnload = nil
	t.timeouts = nil
	t.blocked = false
	t.suppressRef = false
}

// navigate drives the full load pipeline for one tab.
func (b *Browser) navigate(tab *Tab, u urlx.URL, referrer, cause string) {
	if tab.blocked {
		return
	}
	if !b.leaveCurrentPage(tab) {
		return // page lock wedged the tab
	}
	from := ""
	if !tab.URL.IsZero() {
		from = tab.URL.String()
	}
	b.logEvent(Event{Kind: EvNavigation, Tab: tab.ID, From: from, To: u.String(), Cause: cause})

	// Reset page state. The tab's interpreter is reused across page
	// loads — unless a script is mid-flight on it (a handler calling
	// location.assign lands here): resetting the environment under the
	// still-running handler would pull its globals away, so the old
	// interpreter is abandoned to finish on its own environment.
	tab.Doc = nil
	if tab.interp != nil && tab.interp.Active() {
		tab.interp = nil
	}
	// Clear in place: handler slices already pulled out of the map (the
	// click dispatcher snapshots before calling) stay valid, and the map
	// storage is reused across the session's page loads.
	clear(tab.listeners)
	tab.beforeUnload = nil
	tab.timeouts = nil
	tab.suppressRef = false

	for hop := 0; ; hop++ {
		if hop > b.opts.MaxRedirects {
			b.logEvent(Event{Kind: EvError, Tab: tab.ID, To: u.String(), Detail: "redirect limit exceeded"})
			tab.Status = 0
			return
		}
		if b.opts.BlockFilter != nil && b.opts.BlockFilter(u) {
			b.logEvent(Event{Kind: EvBlocked, Tab: tab.ID, To: u.String(), Detail: "ad-block filter"})
			tab.Status = 0
			return
		}
		resp, err := b.fetch(u, referrer)
		if err != nil {
			b.logEvent(Event{Kind: EvError, Tab: tab.ID, To: u.String(), Detail: err.Error()})
			tab.Status = 0
			return
		}
		if resp.Redirect() {
			next, err := u.Resolve(resp.Location)
			if err != nil {
				b.logEvent(Event{Kind: EvError, Tab: tab.ID, To: resp.Location, Detail: err.Error()})
				tab.Status = resp.Status
				return
			}
			b.logEvent(Event{Kind: EvNavigation, Tab: tab.ID, From: u.String(), To: next.String(), Cause: CauseRedirect})
			referrer = u.String()
			u = next
			continue
		}
		tab.URL = u
		tab.Status = resp.Status
		if resp.Download != nil {
			tab.Downloads = append(tab.Downloads, resp.Download)
			b.logEvent(Event{Kind: EvDownload, Tab: tab.ID, From: u.String(), Download: resp.Download})
			return
		}
		if resp.ReferrerPolicy == "no-referrer" {
			tab.suppressRef = true
		}
		if resp.Doc != nil {
			tab.Doc = resp.Doc
			b.runPageScripts(tab)
			// Meta refresh after scripts, as a short-delay navigation.
			if mr := resp.Doc.MetaRefresh; mr != nil && mr.DelaySeconds <= 30 {
				target, err := u.Resolve(mr.Target)
				if err == nil {
					b.navigate(tab, target, u.String(), CauseMetaRefresh)
				}
			}
		}
		return
	}
}

// leaveCurrentPage runs page-lock checks before navigating away; returns
// false when the tab is wedged.
func (b *Browser) leaveCurrentPage(tab *Tab) bool {
	if len(tab.beforeUnload) == 0 {
		return true
	}
	if b.opts.BypassDialogs {
		b.logEvent(Event{Kind: EvDialogBypass, Tab: tab.ID, From: tab.URL.String(), Detail: "onbeforeunload"})
		tab.beforeUnload = nil
		return true
	}
	tab.blocked = true
	b.logEvent(Event{Kind: EvError, Tab: tab.ID, From: tab.URL.String(), Detail: "tab wedged by onbeforeunload"})
	return false
}

func (b *Browser) fetch(u urlx.URL, referrer string) (*webtx.Response, error) {
	if b.opts.FetchCost > 0 {
		b.clock.Advance(b.opts.FetchCost)
	}
	return b.internet.RoundTrip(&webtx.Request{
		URL:       u,
		Referrer:  referrer,
		UserAgent: b.opts.UserAgent,
		ClientIP:  b.opts.ClientIP,
		Time:      b.now(),
	})
}

// runPageScripts executes the document's scripts and then any queued
// timers.
func (b *Browser) runPageScripts(tab *Tab) {
	if tab.interp == nil {
		tab.interp = adscript.NewInterp()
		tab.interp.SetTracer(adscript.TracerFunc(func(c adscript.APICall) {
			b.logEvent(Event{Kind: EvAPICall, Tab: tab.ID, From: tab.URL.String(), API: c})
		}))
	} else {
		tab.interp.Reset()
	}
	b.installHostEnv(tab)
	pageURL := tab.URL
	for _, ref := range tab.Doc.Scripts {
		if tab.blocked || tab.Doc == nil {
			return
		}
		if ref.Src != "" {
			b.runExternalScript(tab, pageURL, ref.Src)
			continue
		}
		tab.interp.ScriptURL = pageURL.String()
		tab.interp.ResetBudget()
		if err := tab.interp.RunCached(b.opts.Scripts, ref.Code); err != nil {
			b.logEvent(Event{Kind: EvError, Tab: tab.ID, From: pageURL.String(), Detail: "inline script: " + err.Error()})
		}
	}
	b.runTimeouts(tab)
}

func (b *Browser) runExternalScript(tab *Tab, pageURL urlx.URL, src string) {
	u, err := pageURL.Resolve(src)
	if err != nil {
		b.logEvent(Event{Kind: EvError, Tab: tab.ID, From: pageURL.String(), Detail: "bad script src: " + err.Error()})
		return
	}
	if b.opts.BlockFilter != nil && b.opts.BlockFilter(u) {
		b.logEvent(Event{Kind: EvBlocked, Tab: tab.ID, From: pageURL.String(), To: u.String(), Detail: "ad-block filter"})
		return
	}
	b.logEvent(Event{Kind: EvScriptFetch, Tab: tab.ID, From: pageURL.String(), To: u.String(), Cause: CauseScriptSrc})
	resp, err := b.fetch(u, pageURL.String())
	if err != nil || resp.Status != webtx.StatusOK {
		detail := "script fetch failed"
		if err != nil {
			detail = err.Error()
		}
		b.logEvent(Event{Kind: EvError, Tab: tab.ID, To: u.String(), Detail: detail})
		return
	}
	prev := tab.interp.ScriptURL
	tab.interp.ScriptURL = u.String()
	tab.interp.ResetBudget()
	if err := tab.interp.RunCached(b.opts.Scripts, resp.Body); err != nil {
		b.logEvent(Event{Kind: EvError, Tab: tab.ID, From: u.String(), Detail: "script: " + err.Error()})
	}
	tab.interp.ScriptURL = prev
}

// runTimeouts drains queued setTimeout callbacks (virtual time: timers
// fire immediately after the main script, in delay order, like the
// paper's crawler letting short timers run before interacting).
func (b *Browser) runTimeouts(tab *Tab) {
	for len(tab.timeouts) > 0 {
		// Stable order: queue order (delays in the simulator are
		// informational).
		next := tab.timeouts[0]
		tab.timeouts = tab.timeouts[1:]
		if tab.blocked {
			return
		}
		tab.interp.ScriptURL = next.scriptURL
		tab.interp.ResetBudget()
		if _, err := tab.interp.Call(next.fn); err != nil {
			b.logEvent(Event{Kind: EvError, Tab: tab.ID, From: tab.URL.String(), Detail: "timeout: " + err.Error()})
		}
	}
}

// ClickResult describes what a synthetic click triggered.
type ClickResult struct {
	// Target is the element that received the click (nil if none).
	Target *dom.Element
	// OpenedTabs are tabs created by the click's handlers.
	OpenedTabs []*Tab
	// Navigated reports whether the clicked tab changed URL.
	Navigated bool
}

// ClickAt dispatches a click (or tap) at page coordinates. Handlers run
// for the hit element (by id) and for page-wide window listeners — the
// transparent-ad pattern.
func (b *Browser) ClickAt(tab *Tab, x, y int) (ClickResult, error) {
	if tab.blocked {
		return ClickResult{}, ErrTabBlocked
	}
	if tab.Doc == nil {
		return ClickResult{}, errors.New("browser: no document loaded")
	}
	before := tab.URL
	tabsBefore := len(b.tabs)
	res := ClickResult{Target: tab.Doc.HitTest(x, y)}

	var fns []listenerEntry
	if res.Target != nil {
		if id := res.Target.ID(); id != "" {
			for _, l := range tab.listeners[id] {
				if l.event == "click" {
					fns = append(fns, l)
				}
			}
		}
	}
	for _, l := range tab.listeners["window"] {
		if l.event == "click" {
			fns = append(fns, l)
		}
	}
	for _, l := range fns {
		if tab.blocked {
			break
		}
		tab.interp.ScriptURL = l.scriptURL
		tab.interp.ResetBudget()
		if _, err := tab.interp.Call(l.fn); err != nil {
			b.logEvent(Event{Kind: EvError, Tab: tab.ID, From: tab.URL.String(), Detail: "click handler: " + err.Error()})
		}
	}
	b.runTimeouts(tab)

	for _, t := range b.tabs[tabsBefore:] {
		res.OpenedTabs = append(res.OpenedTabs, t)
	}
	res.Navigated = tab.URL != before
	return res, nil
}

// ClickElement clicks the centre of an element.
func (b *Browser) ClickElement(tab *Tab, el *dom.Element) (ClickResult, error) {
	x, y := el.Center()
	return b.ClickAt(tab, x, y)
}

// Screenshot rasterises the tab with the session's viewport. Wedged tabs
// cannot be captured — the reason the paper had to bypass dialog locks.
func (b *Browser) Screenshot(tab *Tab) (*imaging.Image, error) {
	opts, err := b.captureOpts(tab)
	if err != nil {
		return nil, err
	}
	if c := b.opts.Capture; c != nil {
		return c.Image(tab.Doc, opts), nil
	}
	return screenshot.Render(tab.Doc, opts), nil
}

// ScreenshotHash returns the perceptual hash of the tab's capture
// without handing pixels to the caller — the fast path for the crawler
// and milker, which only ever hash. The result is bit-identical to
// phash.DHash of the Screenshot image; with a Capture cache configured,
// repeat captures of content-identical pages are memoized.
func (b *Browser) ScreenshotHash(tab *Tab) (phash.Hash, error) {
	opts, err := b.captureOpts(tab)
	if err != nil {
		return phash.Hash{}, err
	}
	if c := b.opts.Capture; c != nil {
		return c.Hash(tab.Doc, opts), nil
	}
	return screenshot.CaptureHash(tab.Doc, opts), nil
}

// captureOpts resolves the tab's capture geometry and noise stream.
func (b *Browser) captureOpts(tab *Tab) (screenshot.Options, error) {
	if tab.blocked {
		return screenshot.Options{}, ErrTabBlocked
	}
	if tab.Doc == nil {
		return screenshot.Options{}, errors.New("browser: no document loaded")
	}
	// Capture the full document when it declares its size (screenshots of
	// the same template must align across device profiles for perceptual
	// clustering); fall back to the viewport for size-less documents.
	w, h := tab.Doc.Root.W, tab.Doc.Root.H
	if w <= 0 || h <= 0 {
		w, h = screenshot.DefaultWidth, screenshot.DefaultHeight
		if b.opts.DeviceEmulation {
			w, h = b.opts.UserAgent.ScreenW, b.opts.UserAgent.ScreenH
		}
	}
	if s := b.opts.ViewportScale; s > 1 {
		w, h = w/s, h/s
	}
	return screenshot.Options{
		Width: w, Height: h,
		NoiseAmp:  2,
		NoiseSeed: hashURL(tab.URL.String()) ^ uint64(b.now().UnixNano()/int64(time.Hour)),
	}, nil
}

// Blocked reports whether the tab is wedged by a page lock.
func (t *Tab) Blocked() bool { return t.blocked }

func hashURL(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
