// Package webtx implements the synthetic internet the SEACMA pipeline
// crawls: a registry of named hosts serving content to requests, with
// HTTP-like redirect semantics, referrer propagation rules, client IP
// classes, and a global request log.
//
// The real system crawls the live web; this substrate preserves the
// properties the pipeline depends on — URL-addressed resources, 3xx
// redirect chains, referrer suppression, IP-dependent cloaking (the paper
// found Propeller and Clickadu only serve SE ads to residential IP space),
// and user-agent-dependent content — without any real network traffic.
package webtx

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dom"
	"repro/internal/obs"
	"repro/internal/urlx"
)

// IPClass models where a client request originates from. Low-tier ad
// networks cloak on this (Section 3.2 "Implementation Challenges").
type IPClass int

const (
	// IPResidential is a home broadband address.
	IPResidential IPClass = iota
	// IPInstitutional is a university or enterprise address.
	IPInstitutional
	// IPDatacenter covers cloud ranges such as AWS.
	IPDatacenter
	// IPTorExit is a Tor exit node.
	IPTorExit
)

var ipClassNames = map[IPClass]string{
	IPResidential:   "residential",
	IPInstitutional: "institutional",
	IPDatacenter:    "datacenter",
	IPTorExit:       "tor-exit",
}

func (c IPClass) String() string {
	if s, ok := ipClassNames[c]; ok {
		return s
	}
	return fmt.Sprintf("IPClass(%d)", int(c))
}

// UserAgent describes the browser/OS combination a crawler masquerades
// as. The paper simulates four combinations (Section 3.2).
type UserAgent struct {
	Name    string // short identifier, e.g. "chrome-mac"
	Browser string // "chrome", "ie", "edge"
	OS      string // "macos", "android", "windows"
	Mobile  bool
	Header  string // full User-Agent string sent with requests
	ScreenW int
	ScreenH int
}

// The four browser/OS combinations from Section 3.2.
var (
	UAChromeMac = UserAgent{
		Name: "chrome66-macos", Browser: "chrome", OS: "macos",
		Header:  "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_4) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/66.0.3359.117 Safari/537.36",
		ScreenW: 1440, ScreenH: 900,
	}
	UAChromeAndroid = UserAgent{
		Name: "chrome65-android", Browser: "chrome", OS: "android", Mobile: true,
		Header:  "Mozilla/5.0 (Linux; Android 8.0.0; Pixel 2) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/65.0.3325.109 Mobile Safari/537.36",
		ScreenW: 411, ScreenH: 731,
	}
	UAIE10Win = UserAgent{
		Name: "ie10-windows", Browser: "ie", OS: "windows",
		Header:  "Mozilla/5.0 (compatible; MSIE 10.0; Windows NT 6.2; Trident/6.0)",
		ScreenW: 1366, ScreenH: 768,
	}
	UAEdge12Win = UserAgent{
		Name: "edge12-windows", Browser: "edge", OS: "windows",
		Header:  "Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/42.0.2311.135 Safari/537.36 Edge/12.10240",
		ScreenW: 1366, ScreenH: 768,
	}
)

// AllUserAgents lists the crawl UA rotation in the order the paper
// enumerates them.
var AllUserAgents = []UserAgent{UAChromeMac, UAChromeAndroid, UAIE10Win, UAEdge12Win}

// Request is one resource fetch.
type Request struct {
	URL       urlx.URL
	Referrer  string // empty when suppressed or absent
	UserAgent UserAgent
	ClientIP  IPClass
	Time      time.Time
}

// Status codes used by the simulator.
const (
	StatusOK              = 200
	StatusMovedPermanent  = 301
	StatusFound           = 302
	StatusSeeOther        = 303
	StatusTempRedirect    = 307
	StatusNotFound        = 404
	StatusGone            = 410
	StatusServiceUnavail  = 503
	ContentTypeHTML       = "text/html"
	ContentTypeJavaScript = "application/javascript"
	ContentTypeBinary     = "application/octet-stream"
)

// Response is the server's answer to a Request.
type Response struct {
	Status      int
	ContentType string
	// Location is the redirect target for 3xx responses.
	Location string
	// Body is the response payload: an HTML document source, a script
	// source, or (for downloads) opaque bytes rendered as a string.
	Body string
	// Doc is the structured form of an HTML body. The browser renders and
	// executes Doc; Body carries the serialized source that search
	// indexing and invariant-pattern matching operate on.
	Doc *dom.Document
	// Download, when non-nil, marks the response as a file download.
	Download *Download
	// ReferrerPolicy, when "no-referrer", instructs the browser to
	// suppress the Referer header on subsequent navigations from this
	// document (used by ad networks to hide their role, Section 3.4).
	ReferrerPolicy string
}

// Download describes a served file (the SE campaigns' polymorphic
// binaries, Section 4.5).
type Download struct {
	Filename string
	SHA256   string // content hash minted by the campaign generator
	Size     int
	Format   string // "pe", "dmg", "apk", "crx"
	// CampaignID ties the file back to the generating campaign (ground
	// truth; never consumed by the pipeline itself).
	CampaignID string
}

// Redirect reports whether the response is a redirect.
func (r *Response) Redirect() bool {
	return r.Status >= 300 && r.Status < 400 && r.Location != ""
}

// Handler serves requests for one or more hosts.
type Handler interface {
	Serve(req *Request) *Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *Request) *Response

// Serve implements Handler.
func (f HandlerFunc) Serve(req *Request) *Response { return f(req) }

// NotFound is a canned 404 response.
func NotFound() *Response {
	return &Response{Status: StatusNotFound, ContentType: ContentTypeHTML, Body: "<html>not found</html>"}
}

// Gone is a canned 410 response, used by expired throw-away domains.
func Gone() *Response {
	return &Response{Status: StatusGone, ContentType: ContentTypeHTML, Body: "<html>gone</html>"}
}

// RedirectTo builds a 302 response.
func RedirectTo(target string) *Response {
	return &Response{Status: StatusFound, Location: target}
}

// HTMLPage builds a 200 text/html response.
func HTMLPage(body string) *Response {
	return &Response{Status: StatusOK, ContentType: ContentTypeHTML, Body: body}
}

// DocumentPage builds a 200 text/html response from a structured
// document, serializing it for the source-matching consumers.
func DocumentPage(doc *dom.Document) *Response {
	return &Response{Status: StatusOK, ContentType: ContentTypeHTML, Doc: doc, Body: doc.Serialize()}
}

// Script builds a 200 JavaScript response.
func Script(body string) *Response {
	return &Response{Status: StatusOK, ContentType: ContentTypeJavaScript, Body: body}
}

// ErrNXDomain is returned when no host matches a request URL.
type ErrNXDomain struct{ Host string }

func (e ErrNXDomain) Error() string { return "webtx: NXDOMAIN " + e.Host }

// LogEntry records one completed exchange, for the ethics cost accounting
// (Section 6) and debugging.
type LogEntry struct {
	Request  Request
	Status   int
	Redirect string
}

// Internet is the synthetic network: a host registry plus a request log.
// It is safe for concurrent use by the crawler farm's workers.
type Internet struct {
	mu      sync.RWMutex
	hosts   map[string]Handler
	log     []LogEntry
	logging bool
	// reqByIP are pre-resolved per-IP-class request counters (nil when
	// observability is off, which costs one nil check per request).
	reqByIP  [4]*obs.Counter
	nxdomain *obs.Counter
}

// NewInternet returns an empty internet with request logging enabled.
func NewInternet() *Internet {
	return &Internet{hosts: map[string]Handler{}, logging: true}
}

// Register binds a handler to a hostname, replacing any previous binding.
func (in *Internet) Register(host string, h Handler) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hosts[host] = h
}

// Unregister removes a hostname (domain expired / taken down).
func (in *Internet) Unregister(host string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.hosts, host)
}

// Registered reports whether a hostname resolves.
func (in *Internet) Registered(host string) bool {
	in.mu.RLock()
	defer in.mu.RUnlock()
	_, ok := in.hosts[host]
	return ok
}

// HostCount returns the number of registered hosts.
func (in *Internet) HostCount() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.hosts)
}

// SetObs binds the internet to a metrics registry: every served request
// counts under webtx_requests_total labeled by client IP class, and
// unresolvable hosts under webtx_nxdomain_total. Call during setup; a
// nil registry (the default) keeps the fast path uninstrumented.
func (in *Internet) SetObs(reg *obs.Registry) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, c := range []IPClass{IPResidential, IPInstitutional, IPDatacenter, IPTorExit} {
		in.reqByIP[c] = reg.Counter("webtx_requests_total", "ip="+c.String())
	}
	in.nxdomain = reg.Counter("webtx_nxdomain_total")
}

// SetLogging toggles the request log (large experiments disable it and
// rely on component-level accounting).
func (in *Internet) SetLogging(on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.logging = on
}

// RoundTrip resolves and serves a single request. It does not follow
// redirects; the browser does, so each hop is observable.
func (in *Internet) RoundTrip(req *Request) (*Response, error) {
	in.mu.RLock()
	h, ok := in.hosts[req.URL.Host]
	var reqCtr, nxCtr *obs.Counter
	if c := int(req.ClientIP); c >= 0 && c < len(in.reqByIP) {
		reqCtr = in.reqByIP[c]
	}
	nxCtr = in.nxdomain
	in.mu.RUnlock()
	reqCtr.Inc()
	if !ok {
		nxCtr.Inc()
		return nil, ErrNXDomain{Host: req.URL.Host}
	}
	resp := h.Serve(req)
	if resp == nil {
		resp = NotFound()
	}
	in.mu.Lock()
	if in.logging {
		in.log = append(in.log, LogEntry{Request: *req, Status: resp.Status, Redirect: resp.Location})
	}
	in.mu.Unlock()
	return resp, nil
}

// Log returns a copy of the request log.
func (in *Internet) Log() []LogEntry {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]LogEntry, len(in.log))
	copy(out, in.log)
	return out
}

// ResetLog clears the request log.
func (in *Internet) ResetLog() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.log = nil
}
