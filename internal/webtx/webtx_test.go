package webtx

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/urlx"
	"repro/internal/vclock"
)

func req(raw string) *Request {
	return &Request{URL: urlx.MustParse(raw), UserAgent: UAChromeMac, ClientIP: IPInstitutional, Time: vclock.Epoch}
}

func TestRoundTripNXDomain(t *testing.T) {
	in := NewInternet()
	_, err := in.RoundTrip(req("http://nosuch.com/"))
	var nx ErrNXDomain
	if !errors.As(err, &nx) || nx.Host != "nosuch.com" {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterServeUnregister(t *testing.T) {
	in := NewInternet()
	in.Register("a.com", HandlerFunc(func(r *Request) *Response {
		return HTMLPage("<html>hi " + r.URL.Path + "</html>")
	}))
	if !in.Registered("a.com") || in.HostCount() != 1 {
		t.Fatal("registration not visible")
	}
	resp, err := in.RoundTrip(req("http://a.com/page"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || resp.Body != "<html>hi /page</html>" {
		t.Fatalf("resp = %+v", resp)
	}
	in.Unregister("a.com")
	if _, err := in.RoundTrip(req("http://a.com/")); err == nil {
		t.Fatal("unregistered host still resolves")
	}
}

func TestNilResponseBecomes404(t *testing.T) {
	in := NewInternet()
	in.Register("a.com", HandlerFunc(func(*Request) *Response { return nil }))
	resp, err := in.RoundTrip(req("http://a.com/"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusNotFound {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestRedirectHelpers(t *testing.T) {
	r := RedirectTo("http://b.com/x")
	if !r.Redirect() || r.Location != "http://b.com/x" {
		t.Fatalf("redirect = %+v", r)
	}
	if HTMLPage("x").Redirect() {
		t.Fatal("200 reported as redirect")
	}
	if Gone().Status != StatusGone {
		t.Fatal("Gone status wrong")
	}
	if Script("s").ContentType != ContentTypeJavaScript {
		t.Fatal("Script content type wrong")
	}
}

func TestRequestLog(t *testing.T) {
	in := NewInternet()
	in.Register("a.com", HandlerFunc(func(*Request) *Response { return HTMLPage("x") }))
	in.Register("b.com", HandlerFunc(func(*Request) *Response { return RedirectTo("http://a.com/") }))
	if _, err := in.RoundTrip(req("http://a.com/1")); err != nil {
		t.Fatal(err)
	}
	if _, err := in.RoundTrip(req("http://b.com/2")); err != nil {
		t.Fatal(err)
	}
	log := in.Log()
	if len(log) != 2 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[1].Redirect != "http://a.com/" || log[1].Status != StatusFound {
		t.Fatalf("log[1] = %+v", log[1])
	}
	in.ResetLog()
	if len(in.Log()) != 0 {
		t.Fatal("ResetLog did not clear")
	}
	in.SetLogging(false)
	if _, err := in.RoundTrip(req("http://a.com/3")); err != nil {
		t.Fatal(err)
	}
	if len(in.Log()) != 0 {
		t.Fatal("logging still on after SetLogging(false)")
	}
}

func TestConcurrentAccess(t *testing.T) {
	in := NewInternet()
	in.Register("a.com", HandlerFunc(func(*Request) *Response { return HTMLPage("x") }))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := in.RoundTrip(req("http://a.com/")); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(in.Log()); got != 1600 {
		t.Fatalf("log entries = %d", got)
	}
}

func TestIPClassString(t *testing.T) {
	if IPResidential.String() != "residential" || IPTorExit.String() != "tor-exit" {
		t.Fatal("IPClass names wrong")
	}
	if IPClass(99).String() == "" {
		t.Fatal("unknown class has empty name")
	}
}

func TestUserAgentsDistinct(t *testing.T) {
	if len(AllUserAgents) != 4 {
		t.Fatalf("want the paper's 4 UAs, got %d", len(AllUserAgents))
	}
	seen := map[string]bool{}
	for _, ua := range AllUserAgents {
		if ua.Name == "" || ua.Header == "" || ua.ScreenW == 0 {
			t.Fatalf("incomplete UA %+v", ua)
		}
		if seen[ua.Name] {
			t.Fatalf("duplicate UA %q", ua.Name)
		}
		seen[ua.Name] = true
	}
	if !UAChromeAndroid.Mobile {
		t.Fatal("android UA not mobile")
	}
	if UAChromeMac.Mobile {
		t.Fatal("mac UA marked mobile")
	}
}
