package obs

import (
	"sync"
	"time"
)

// StageTracker accounts for wall-clock overlap between pipeline stages.
// The span log records each stage's own window, but once the streaming
// coordinator runs stages concurrently the spans alone cannot show how
// much of the run was actually overlapped; the tracker publishes that
// directly:
//
//   - pipeline_stage_overlap_ns_total — wall nanoseconds during which
//     two or more distinct stages were active at once
//   - stage_active — the number of currently active distinct stages
//
// Enter/Exit are re-entrant per stage: N concurrent workers of one
// stage count as one active stage until the last Exit.
type StageTracker struct {
	overlap *Counter
	active  *Gauge

	mu   sync.Mutex
	refs map[string]int
	nact int       // distinct stages with refs > 0
	last time.Time // instant of the previous transition
}

// StageTracker returns a tracker publishing into the registry. Returns
// nil on a nil Registry; a nil tracker is a no-op.
func (r *Registry) StageTracker() *StageTracker {
	if r == nil {
		return nil
	}
	return &StageTracker{
		overlap: r.Counter("pipeline_stage_overlap_ns_total"),
		active:  r.Gauge("stage_active"),
		refs:    map[string]int{},
	}
}

// Enter marks stage active. Safe on a nil tracker.
func (t *StageTracker) Enter(stage string) { t.transition(stage, 1) }

// Exit undoes one Enter of stage. Safe on a nil tracker.
func (t *StageTracker) Exit(stage string) { t.transition(stage, -1) }

func (t *StageTracker) transition(stage string, delta int) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	// The interval since the previous transition had a constant active
	// count; attribute it to overlap if two or more stages ran through it.
	if t.nact >= 2 {
		t.overlap.Add(now.Sub(t.last).Nanoseconds())
	}
	t.last = now
	before := t.refs[stage]
	after := before + delta
	if after < 0 {
		after = 0
	}
	t.refs[stage] = after
	switch {
	case before == 0 && after > 0:
		t.nact++
	case before > 0 && after == 0:
		t.nact--
	}
	t.active.Set(int64(t.nact))
	t.mu.Unlock()
}
