package obs

import "time"

// Span is one in-flight timed region. Obtain via Registry.StartSpan and
// finish with End; the record lands in the registry's span log. Spans
// are cheap but not hot-path-free (End appends under a mutex); use them
// for stage-level regions — per-stage pipeline phases, per-run setup —
// not per-request work (use a Histogram for that).
type Span struct {
	reg       *Registry
	name      string
	wallStart time.Time
	virtStart time.Time
	hasVirt   bool
	done      bool
}

// SpanRecord is one completed span as it appears in snapshots. Virtual
// fields are present only when the registry was bound to a virtual
// clock via SetVirtualNow.
type SpanRecord struct {
	Name      string    `json:"name"`
	WallStart time.Time `json:"wall_start"`
	// WallNS is the wall-clock duration in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// VirtualStart/VirtualNS describe the same region in virtual time.
	VirtualStart *time.Time `json:"virtual_start,omitempty"`
	VirtualNS    int64      `json:"virtual_ns,omitempty"`
}

// Wall returns the wall-clock duration.
func (s SpanRecord) Wall() time.Duration { return time.Duration(s.WallNS) }

// Virtual returns the virtual-time duration (0 when no virtual clock
// was bound).
func (s SpanRecord) Virtual() time.Duration { return time.Duration(s.VirtualNS) }

// StartSpan opens a named span. Returns nil on a nil Registry; End on a
// nil Span is a no-op, so callers need no guard:
//
//	sp := reg.StartSpan("crawl")
//	defer sp.End()
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	sp := &Span{reg: r, name: name, wallStart: time.Now()}
	if v, ok := r.virtualNow(); ok {
		sp.virtStart, sp.hasVirt = v, true
	}
	return sp
}

// End closes the span and records it. Calling End twice records once.
// Safe on a nil Span.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	rec := SpanRecord{
		Name:      s.name,
		WallStart: s.wallStart,
		WallNS:    int64(time.Since(s.wallStart)),
	}
	if s.hasVirt {
		start := s.virtStart
		rec.VirtualStart = &start
		if v, ok := s.reg.virtualNow(); ok {
			rec.VirtualNS = int64(v.Sub(s.virtStart))
		}
	}
	s.reg.spanMu.Lock()
	s.reg.spans = append(s.reg.spans, rec)
	s.reg.spanMu.Unlock()
}

// Spans returns a copy of the completed-span log, in completion order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// Timed runs fn inside a span. Convenience for straight-line stages.
func (r *Registry) Timed(name string, fn func()) {
	sp := r.StartSpan(name)
	fn()
	sp.End()
}
