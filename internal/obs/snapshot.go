package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// BucketCount is one occupied histogram bucket: Count samples were <=
// Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the exported state of one histogram. Only
// occupied buckets are listed.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average sample (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// sample (0 <= q <= 1) — a log-scale approximation good to a factor of
// two, which is what fixed buckets buy.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen int64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen > rank {
			return b.Le
		}
	}
	return h.Buckets[len(h.Buckets)-1].Le
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for b := 0; b < histBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			out.Buckets = append(out.Buckets, BucketCount{Le: bucketUpper(b), Count: n})
		}
	}
	return out
}

// Snapshot is a point-in-time export of a registry: all metrics by
// canonical key plus the completed-span log.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	VirtualNow *time.Time                   `json:"virtual_now,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
}

// Snapshot exports the registry's current state. Returns an empty
// snapshot on a nil Registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{TakenAt: time.Now()}
	}
	snap := Snapshot{
		TakenAt:    time.Now(),
		Counters:   r.counterValues(),
		Gauges:     r.gaugeValues(),
		Histograms: r.histValues(),
		Spans:      r.Spans(),
	}
	if v, ok := r.virtualNow(); ok {
		snap.VirtualNow = &v
	}
	return snap
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Text renders the snapshot as aligned, sorted plain text.
func (r *Registry) Text() string { return r.Snapshot().Text() }

// Text renders the snapshot as aligned, sorted plain text: spans first
// (completion order, both time domains), then counters, gauges and
// histogram summaries.
func (s Snapshot) Text() string {
	var b strings.Builder
	if len(s.Spans) > 0 {
		b.WriteString("== spans ==\n")
		w := 0
		for _, sp := range s.Spans {
			if len(sp.Name) > w {
				w = len(sp.Name)
			}
		}
		for _, sp := range s.Spans {
			fmt.Fprintf(&b, "%-*s  wall %-12s", w, sp.Name, sp.Wall().Round(time.Microsecond))
			if sp.VirtualStart != nil {
				fmt.Fprintf(&b, "  virtual %s", sp.Virtual())
			}
			b.WriteByte('\n')
		}
	}
	writeKV := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(&b, "== %s ==\n", title)
		keys := sortedKeys(m)
		w := 0
		for _, k := range keys {
			if len(k) > w {
				w = len(k)
			}
		}
		for _, k := range keys {
			fmt.Fprintf(&b, "%-*s  %d\n", w, k, m[k])
		}
	}
	writeKV("counters", s.Counters)
	writeKV("gauges", s.Gauges)
	if len(s.Histograms) > 0 {
		b.WriteString("== histograms ==\n")
		keys := sortedKeys(s.Histograms)
		w := 0
		for _, k := range keys {
			if len(k) > w {
				w = len(k)
			}
		}
		for _, k := range keys {
			h := s.Histograms[k]
			fmt.Fprintf(&b, "%-*s  count %-8d mean %-10.1f p50<=%-8d p99<=%d\n",
				w, k, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
		}
	}
	return b.String()
}

// CounterValue returns one counter's value by name and labels (0 when
// absent or on a nil Registry). Snapshot-oriented helper for tests and
// report code; hot paths should hold the *Counter instead.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	key := Key(name, labels...)
	s := r.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counters[key].Value()
}

// SumCounters returns the sum of every counter whose key starts with
// prefix — e.g. SumCounters("crawler_sessions_total") adds up all
// per-worker label variants.
func (r *Registry) SumCounters(prefix string) int64 {
	if r == nil {
		return 0
	}
	var total int64
	for k, v := range r.counterValues() {
		if strings.HasPrefix(k, prefix) {
			total += v
		}
	}
	return total
}

// sortedSpanNames is a test helper surface: distinct span names, sorted.
func (s Snapshot) SpanNames() []string {
	seen := map[string]bool{}
	for _, sp := range s.Spans {
		seen[sp.Name] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
