package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(3)
	sp := r.StartSpan("s")
	if sp != nil {
		t.Fatalf("nil registry returned non-nil span")
	}
	sp.End()
	r.Timed("t", func() {})
	r.SetVirtualNow(time.Now)
	if got := r.CounterValue("x"); got != 0 {
		t.Fatalf("nil CounterValue = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("reqs", "ip=residential")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	// Same name+labels resolves to the same handle.
	if r.Counter("reqs", "ip=residential") != c {
		t.Fatalf("re-resolve returned a different counter")
	}
	// Different labels are distinct series.
	r.Counter("reqs", "ip=datacenter").Add(10)
	if got := r.CounterValue("reqs", "ip=residential"); got != 4 {
		t.Fatalf("CounterValue = %d, want 4", got)
	}
	if got := r.SumCounters("reqs"); got != 14 {
		t.Fatalf("SumCounters = %d, want 14", got)
	}

	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := New()
	g := r.Gauge("peak_bytes")
	for _, v := range []int64{4, 9, 2, 9, 7} {
		g.SetMax(v)
	}
	if g.Value() != 9 {
		t.Fatalf("high watermark = %d, want 9", g.Value())
	}
	var nilG *Gauge
	nilG.SetMax(42) // must not panic
}

func TestKey(t *testing.T) {
	if got := Key("a"); got != "a" {
		t.Fatalf("Key = %q", got)
	}
	if got := Key("a", "x=1", "y=2"); got != "a{x=1,y=2}" {
		t.Fatalf("Key = %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	if bucketUpper(0) != 0 || bucketUpper(1) != 1 || bucketUpper(3) != 7 {
		t.Fatalf("bucketUpper wrong: %d %d %d", bucketUpper(0), bucketUpper(1), bucketUpper(3))
	}

	h := New().Histogram("lat")
	for _, v := range []int64{0, 1, 3, 3, 100} {
		h.Observe(v)
	}
	snap := h.snapshot()
	if snap.Count != 5 || snap.Sum != 107 {
		t.Fatalf("count/sum = %d/%d", snap.Count, snap.Sum)
	}
	// Buckets: {0}:1, {1}:1, [2,3]:2, [64,127]:1
	want := []BucketCount{{0, 1}, {1, 1}, {3, 2}, {127, 1}}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", snap.Buckets)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, snap.Buckets[i], b)
		}
	}
	if q := snap.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := snap.Quantile(0.99); q != 127 {
		t.Fatalf("p99 = %d, want 127", q)
	}
	if m := snap.Mean(); m != 107.0/5 {
		t.Fatalf("mean = %v", m)
	}
}

func TestSpanWallAndVirtualTime(t *testing.T) {
	r := New()
	// A fake virtual clock the test advances by hand.
	virt := time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	r.SetVirtualNow(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return virt
	})

	sp := r.StartSpan("milk")
	mu.Lock()
	virt = virt.Add(14 * 24 * time.Hour)
	mu.Unlock()
	sp.End()
	sp.End() // double End records once

	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	rec := spans[0]
	if rec.Name != "milk" {
		t.Fatalf("name = %q", rec.Name)
	}
	if rec.Virtual() != 14*24*time.Hour {
		t.Fatalf("virtual = %v, want 336h", rec.Virtual())
	}
	if rec.WallNS < 0 {
		t.Fatalf("negative wall duration %d", rec.WallNS)
	}
	if rec.VirtualStart == nil {
		t.Fatalf("virtual start missing")
	}
}

func TestSpanWithoutVirtualClock(t *testing.T) {
	r := New()
	r.Timed("stage", func() { time.Sleep(time.Millisecond) })
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].VirtualStart != nil || spans[0].VirtualNS != 0 {
		t.Fatalf("unexpected virtual fields: %+v", spans[0])
	}
	if spans[0].Wall() < time.Millisecond {
		t.Fatalf("wall = %v, want >= 1ms", spans[0].Wall())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.SetVirtualNow(func() time.Time { return time.Date(2019, 3, 2, 0, 0, 0, 0, time.UTC) })
	r.Counter("crawler_sessions_total", "worker=0").Add(12)
	r.Gauge("pool").Set(8)
	r.Histogram("lat_us").Observe(250)
	r.Timed("crawl", func() {})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if snap.Counters["crawler_sessions_total{worker=0}"] != 12 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Gauges["pool"] != 8 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if snap.Histograms["lat_us"].Count != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	if got := snap.SpanNames(); len(got) != 1 || got[0] != "crawl" {
		t.Fatalf("span names = %v", got)
	}
	if snap.VirtualNow == nil {
		t.Fatalf("virtual_now missing")
	}
}

func TestTextSnapshot(t *testing.T) {
	r := New()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(9)
	r.Timed("stage1", func() {})
	text := r.Text()
	for _, want := range []string{"== spans ==", "stage1", "== counters ==", "a_total", "b_total", "== gauges ==", "== histograms ==", "h  count 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
	// Counters come out sorted.
	if strings.Index(text, "a_total") > strings.Index(text, "b_total") {
		t.Fatalf("counters not sorted:\n%s", text)
	}
}

// TestConcurrentUse exercises every path under the race detector:
// handle resolution, atomic updates, span logging and snapshotting all
// running in parallel.
func TestConcurrentUse(t *testing.T) {
	r := New()
	r.SetVirtualNow(time.Now)
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels := []string{"worker=" + string(rune('a'+w))}
			for i := 0; i < iters; i++ {
				r.Counter("ops_total", labels...).Inc()
				r.Counter("shared_total").Inc()
				r.Gauge("depth").Set(int64(i))
				r.Histogram("lat").Observe(int64(i % 100))
				if i%100 == 0 {
					r.Timed("tick", func() {})
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("shared_total"); got != workers*iters {
		t.Fatalf("shared_total = %d, want %d", got, workers*iters)
	}
	if got := r.SumCounters("ops_total"); got != workers*iters {
		t.Fatalf("ops_total sum = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat").Count(); got != workers*iters {
		t.Fatalf("histogram count = %d", got)
	}
}
