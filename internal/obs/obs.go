// Package obs is the pipeline-wide observability subsystem: labeled
// atomic counters, gauges and log-scale histograms, span tracing in both
// wall-clock and virtual time, and a registry that exports JSON and
// aligned-text snapshots.
//
// The package is dependency-free (standard library only) so every layer
// of the repository — webtx at the bottom, cmd at the top — can import
// it. Instrumentation is opt-in and pay-for-what-you-use:
//
//   - A nil *Registry is the no-op default. Every method on a nil
//     Registry, Counter, Gauge, Histogram or Span is safe and does
//     nothing, so uninstrumented callers pay exactly one nil check.
//   - The hot path (Counter.Add, Gauge.Set, Histogram.Observe) is
//     lock-free: one atomic add on a handle the caller resolved once.
//   - Handle resolution (Registry.Counter et al.) goes through sharded
//     maps, so even resolve-per-call instrumentation scales across
//     GOMAXPROCS (see BenchmarkObs_CounterContention).
//
// Virtual time: the SEACMA milking experiment runs 14 virtual days on a
// vclock in seconds of wall time. Bind the registry to the experiment
// clock with SetVirtualNow and every span records both durations, so a
// run can be profiled in either domain.
package obs

import (
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// numShards spreads handle resolution across independently locked maps.
// 64 shards keep contention negligible at any realistic GOMAXPROCS.
const numShards = 64

// Counter is a monotonically increasing labeled counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil Counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil Counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a labeled value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil Gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. Safe on a nil Gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value,
// leaving it untouched otherwise — a lock-free high-watermark for
// peak tracking (e.g. peak pooled bytes). Safe on a nil Gauge.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed log-scale bucket count: bucket b holds the
// values whose bit length is b, i.e. bucket 0 holds {0} and bucket b>0
// holds [2^(b-1), 2^b). Values are clamped to >= 0.
const histBuckets = 65

// Histogram is a fixed-bucket log-scale histogram of int64 samples.
// Observe is one atomic add per bucket plus count and sum, lock-free.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 0
	for u := uint64(v); u != 0; u >>= 1 {
		b++
	}
	return b
}

// bucketUpper returns the inclusive upper bound of bucket b.
func bucketUpper(b int) int64 {
	if b == 0 {
		return 0
	}
	if b >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<uint(b) - 1
}

// Observe records one sample. Safe on a nil Histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration sample in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Microseconds())
}

// Count returns the number of samples (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of samples (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// shard is one independently locked slice of the metric namespace.
type shard struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Registry owns a metric namespace and the span log. The zero value is
// not usable; use New. A nil *Registry is the supported no-op default:
// every method returns immediately (handles come back nil and are
// themselves no-ops).
type Registry struct {
	shards [numShards]shard

	confMu sync.RWMutex
	vnow   func() time.Time // virtual clock source; nil = no virtual domain

	spanMu sync.Mutex
	spans  []SpanRecord
}

// New returns an empty registry.
func New() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].counters = map[string]*Counter{}
		r.shards[i].gauges = map[string]*Gauge{}
		r.shards[i].hists = map[string]*Histogram{}
	}
	return r
}

// SetVirtualNow binds the registry to a virtual clock (typically
// vclock.Clock.Now). Spans started afterwards record virtual durations
// alongside wall durations. Call during setup, before instrumented code
// runs.
func (r *Registry) SetVirtualNow(fn func() time.Time) {
	if r == nil {
		return
	}
	r.confMu.Lock()
	r.vnow = fn
	r.confMu.Unlock()
}

func (r *Registry) virtualNow() (time.Time, bool) {
	r.confMu.RLock()
	fn := r.vnow
	r.confMu.RUnlock()
	if fn == nil {
		return time.Time{}, false
	}
	return fn(), true
}

// Key builds the canonical metric key for a name and "k=v" label pairs:
// name alone, or name{l1,l2,...} with labels in the given order.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 2 + 16*len(labels))
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) shardOf(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &r.shards[h.Sum32()%numShards]
}

// Counter returns (creating if needed) the counter for name and labels.
// Returns nil on a nil Registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := Key(name, labels...)
	s := r.shardOf(key)
	s.mu.RLock()
	c, ok := s.counters[key]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok = s.counters[key]; ok {
		return c
	}
	c = &Counter{}
	s.counters[key] = c
	return c
}

// Gauge returns (creating if needed) the gauge for name and labels.
// Returns nil on a nil Registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := Key(name, labels...)
	s := r.shardOf(key)
	s.mu.RLock()
	g, ok := s.gauges[key]
	s.mu.RUnlock()
	if ok {
		return g
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok = s.gauges[key]; ok {
		return g
	}
	g = &Gauge{}
	s.gauges[key] = g
	return g
}

// Histogram returns (creating if needed) the histogram for name and
// labels. Returns nil on a nil Registry.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := Key(name, labels...)
	s := r.shardOf(key)
	s.mu.RLock()
	h, ok := s.hists[key]
	s.mu.RUnlock()
	if ok {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok = s.hists[key]; ok {
		return h
	}
	h = &Histogram{}
	s.hists[key] = h
	return h
}

// counterValues snapshots all counters as key -> value.
func (r *Registry) counterValues() map[string]int64 {
	out := map[string]int64{}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for k, c := range s.counters {
			out[k] = c.Value()
		}
		s.mu.RUnlock()
	}
	return out
}

func (r *Registry) gaugeValues() map[string]int64 {
	out := map[string]int64{}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for k, g := range s.gauges {
			out[k] = g.Value()
		}
		s.mu.RUnlock()
	}
	return out
}

func (r *Registry) histValues() map[string]HistogramSnapshot {
	out := map[string]HistogramSnapshot{}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for k, h := range s.hists {
			out[k] = h.snapshot()
		}
		s.mu.RUnlock()
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
