package obs

import (
	"strconv"
	"sync/atomic"
	"testing"
)

// BenchmarkObs_CounterContention proves the hot path scales across
// GOMAXPROCS: every goroutine hammers the same counter handle, which is
// a single atomic add.
func BenchmarkObs_CounterContention(b *testing.B) {
	r := New()
	c := r.Counter("contended_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Value(), b.N)
	}
}

// BenchmarkObs_CounterResolveContention is the worst-case pattern:
// resolving the handle by name on every increment, stressing the
// sharded read path.
func BenchmarkObs_CounterResolveContention(b *testing.B) {
	r := New()
	// Pre-populate distinct per-goroutine series plus one shared one.
	for i := 0; i < 16; i++ {
		r.Counter("ops_total", "worker="+strconv.Itoa(i))
	}
	var gid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		label := "worker=" + strconv.Itoa(int(gid.Add(1))%16)
		for pb.Next() {
			r.Counter("ops_total", label).Inc()
		}
	})
}

// BenchmarkObs_NilRegistry measures the uninstrumented cost: one nil
// check per call site.
func BenchmarkObs_NilRegistry(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObs_HistogramObserve measures the lock-free histogram path.
func BenchmarkObs_HistogramObserve(b *testing.B) {
	h := New().Histogram("lat")
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			h.Observe(i)
			i++
		}
	})
}
