package sessionio

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/webtx"
	"repro/internal/worldgen"
)

var (
	once     sync.Once
	sessions []*crawler.Session
)

func crawlOnce(t *testing.T) []*crawler.Session {
	t.Helper()
	once.Do(func() {
		w := worldgen.Build(worldgen.TinyConfig())
		farm := crawler.New(w.Internet, w.Clock, crawler.Config{Workers: 4, FetchCost: time.Second})
		var tasks []crawler.Task
		for _, p := range w.Publishers[:40] {
			tasks = append(tasks, crawler.Task{Host: p.Host, ClientIP: webtx.IPResidential})
		}
		sessions = farm.CrawlAll(tasks)
	})
	return sessions
}

func TestRoundTripLossless(t *testing.T) {
	in := crawlOnce(t)
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("sessions %d -> %d", len(in), len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Publisher != b.Publisher || a.UserAgent.Name != b.UserAgent.Name ||
			a.ClientIP != b.ClientIP || a.PublisherOK != b.PublisherOK {
			t.Fatalf("session %d header mismatch", i)
		}
		if len(a.Landings) != len(b.Landings) {
			t.Fatalf("session %d landings %d -> %d", i, len(a.Landings), len(b.Landings))
		}
		for j := range a.Landings {
			la, lb := a.Landings[j], b.Landings[j]
			if la.URL.String() != lb.URL.String() || la.E2LD != lb.E2LD ||
				la.Hash != lb.Hash || la.Hashed != lb.Hashed ||
				la.Behaviour != lb.Behaviour || la.Title != lb.Title ||
				la.ParkedScore != lb.ParkedScore || len(la.Downloads) != len(lb.Downloads) {
				t.Fatalf("session %d landing %d mismatch:\n%+v\nvs\n%+v", i, j, la, lb)
			}
			for k := range la.Downloads {
				if *la.Downloads[k] != *lb.Downloads[k] {
					t.Fatalf("download mismatch")
				}
			}
		}
		if len(a.Events) != len(b.Events) {
			t.Fatalf("session %d events %d -> %d", i, len(a.Events), len(b.Events))
		}
		for j := range a.Events {
			ea, eb := a.Events[j], b.Events[j]
			if ea.Kind != eb.Kind || ea.Tab != eb.Tab || ea.From != eb.From ||
				ea.To != eb.To || ea.Cause != eb.Cause || ea.Detail != eb.Detail ||
				!ea.Time.Equal(eb.Time) {
				t.Fatalf("session %d event %d mismatch:\n%+v\nvs\n%+v", i, j, ea, eb)
			}
			if ea.API.Name != eb.API.Name || ea.API.ScriptURL != eb.API.ScriptURL {
				t.Fatalf("API call mismatch: %+v vs %+v", ea.API, eb.API)
			}
		}
	}
}

func TestOfflineAnalysisEquivalence(t *testing.T) {
	// The whole point: discovery over reloaded sessions gives the same
	// clusters as over live ones.
	in := crawlOnce(t)
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := core.Discover(in, core.PaperDiscoveryParams)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := core.Discover(reloaded, core.PaperDiscoveryParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Clusters) != len(d2.Clusters) {
		t.Fatalf("clusters %d vs %d", len(d1.Clusters), len(d2.Clusters))
	}
	for i := range d1.Clusters {
		if d1.Clusters[i].Category != d2.Clusters[i].Category ||
			len(d1.Clusters[i].Domains) != len(d2.Clusters[i].Domains) {
			t.Fatalf("cluster %d differs", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json\n",
		`{"format":"other","version":1,"sessions":0}` + "\n",
		`{"format":"seacma-sessions","version":99,"sessions":0}` + "\n",
		`{"format":"seacma-sessions","version":1,"sessions":2}` + "\n" + `{"publisher":"x"}` + "\n",
		`{"format":"seacma-sessions","version":1,"sessions":1}` + "\nnot json\n",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read accepted %q", c[:min(len(c), 40)])
		}
	}
}

func TestReadRejectsBadHashAndURL(t *testing.T) {
	head := `{"format":"seacma-sessions","version":1,"sessions":1}` + "\n"
	badHash := head + `{"publisher":"p","landings":[{"url":"http://a.com/","hashed":true,"dhash":"zz"}]}` + "\n"
	if _, err := Read(strings.NewReader(badHash)); err == nil {
		t.Fatal("bad hash accepted")
	}
	badURL := head + `{"publisher":"p","landings":[{"url":"::bad::","hashed":false}]}` + "\n"
	if _, err := Read(strings.NewReader(badURL)); err == nil {
		t.Fatal("bad URL accepted")
	}
}

func TestNilSessionTolerated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []*crawler.Session{nil}); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] == nil {
		t.Fatal("nil session not normalised")
	}
}

func TestUnknownUANamePreserved(t *testing.T) {
	var buf bytes.Buffer
	s := &crawler.Session{Publisher: "p.com", UserAgent: webtx.UserAgent{Name: "custom-ua"}}
	if err := Write(&buf, []*crawler.Session{s}); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].UserAgent.Name != "custom-ua" {
		t.Fatalf("ua = %q", out[0].UserAgent.Name)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
