// Package sessionio persists crawl sessions to JSON-lines files and
// loads them back, enabling the paper's crawl-once / analyse-many
// workflow: the crawler farm offloads "all the milking data, including
// screenshots, logs and downloaded files, to a file server" (Section
// 4.2), and discovery, attribution and milking-candidate extraction all
// run offline over the stored logs.
//
// The format is one JSON object per line; the first line is a header
// with a format version. Everything the pipeline consumes downstream of
// the crawl — landings with perceptual hashes and behaviour signals,
// plus the full browser event log — round-trips losslessly.
package sessionio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/adscript"
	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/phash"
	"repro/internal/urlx"
	"repro/internal/webtx"
)

// FormatVersion identifies the on-disk layout.
const FormatVersion = 1

type header struct {
	Format   string `json:"format"`
	Version  int    `json:"version"`
	Sessions int    `json:"sessions"`
}

type sessionRec struct {
	Publisher   string       `json:"publisher"`
	UserAgent   string       `json:"ua"`
	ClientIP    int          `json:"ip"`
	PublisherOK bool         `json:"ok"`
	Landings    []landingRec `json:"landings,omitempty"`
	Events      []eventRec   `json:"events,omitempty"`
}

type landingRec struct {
	URL         string        `json:"url"`
	E2LD        string        `json:"e2ld"`
	Status      int           `json:"status"`
	Hash        string        `json:"dhash,omitempty"`
	Hashed      bool          `json:"hashed"`
	Mobile      bool          `json:"mobile,omitempty"`
	Blocked     bool          `json:"blocked,omitempty"`
	Title       string        `json:"title,omitempty"`
	ParkedScore float64       `json:"parked,omitempty"`
	Downloads   []downloadRec `json:"downloads,omitempty"`
	Behaviour   behaviourRec  `json:"behaviour"`
}

type downloadRec struct {
	Filename   string `json:"filename"`
	SHA256     string `json:"sha256"`
	Size       int    `json:"size"`
	Format     string `json:"format"`
	CampaignID string `json:"campaign_id,omitempty"`
}

type behaviourRec struct {
	Alerts              int  `json:"alerts,omitempty"`
	BeforeUnload        bool `json:"before_unload,omitempty"`
	NotificationRequest bool `json:"notification,omitempty"`
	OpenedSignup        bool `json:"signup,omitempty"`
	Downloaded          bool `json:"downloaded,omitempty"`
}

type eventRec struct {
	Kind   int       `json:"k"`
	Tab    int       `json:"t"`
	Time   time.Time `json:"at"`
	From   string    `json:"f,omitempty"`
	To     string    `json:"to,omitempty"`
	Cause  string    `json:"c,omitempty"`
	API    string    `json:"api,omitempty"`
	Args   []string  `json:"args,omitempty"`
	Line   int       `json:"line,omitempty"`
	Script string    `json:"script,omitempty"`
	Detail string    `json:"d,omitempty"`
	// Download payload for EvDownload events.
	DL *downloadRec `json:"dl,omitempty"`
}

// Write streams sessions to w.
func Write(w io.Writer, sessions []*crawler.Session) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Format: "seacma-sessions", Version: FormatVersion, Sessions: len(sessions)}); err != nil {
		return fmt.Errorf("sessionio: header: %w", err)
	}
	for i, s := range sessions {
		if s == nil {
			s = &crawler.Session{}
		}
		if err := enc.Encode(toRec(s)); err != nil {
			return fmt.Errorf("sessionio: session %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read loads sessions written by Write.
func Read(r io.Reader) ([]*crawler.Session, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sessionio: empty input")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("sessionio: header: %w", err)
	}
	if h.Format != "seacma-sessions" {
		return nil, fmt.Errorf("sessionio: not a session file (format %q)", h.Format)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("sessionio: unsupported version %d", h.Version)
	}
	var out []*crawler.Session
	line := 1
	for sc.Scan() {
		line++
		var rec sessionRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("sessionio: line %d: %w", line, err)
		}
		s, err := fromRec(rec)
		if err != nil {
			return nil, fmt.Errorf("sessionio: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sessionio: %w", err)
	}
	if h.Sessions != len(out) {
		return nil, fmt.Errorf("sessionio: header says %d sessions, read %d", h.Sessions, len(out))
	}
	return out, nil
}

func toRec(s *crawler.Session) sessionRec {
	rec := sessionRec{
		Publisher:   s.Publisher,
		UserAgent:   s.UserAgent.Name,
		ClientIP:    int(s.ClientIP),
		PublisherOK: s.PublisherOK,
	}
	for _, l := range s.Landings {
		lr := landingRec{
			URL: l.URL.String(), E2LD: l.E2LD, Status: l.Status,
			Hashed: l.Hashed, Mobile: l.Mobile, Blocked: l.Blocked,
			Title: l.Title, ParkedScore: l.ParkedScore,
			Behaviour: behaviourRec{
				Alerts:              l.Behaviour.Alerts,
				BeforeUnload:        l.Behaviour.BeforeUnload,
				NotificationRequest: l.Behaviour.NotificationRequest,
				OpenedSignup:        l.Behaviour.OpenedSignup,
				Downloaded:          l.Behaviour.Downloaded,
			},
		}
		if l.URL.IsZero() {
			lr.URL = ""
		}
		if l.Hashed {
			lr.Hash = l.Hash.String()
		}
		for _, d := range l.Downloads {
			lr.Downloads = append(lr.Downloads, downloadRec{
				Filename: d.Filename, SHA256: d.SHA256, Size: d.Size,
				Format: d.Format, CampaignID: d.CampaignID,
			})
		}
		rec.Landings = append(rec.Landings, lr)
	}
	for _, e := range s.Events {
		er := eventRec{
			Kind: int(e.Kind), Tab: e.Tab, Time: e.Time,
			From: e.From, To: e.To, Cause: e.Cause, Detail: e.Detail,
		}
		if e.Kind == browser.EvAPICall {
			er.API = e.API.Name
			er.Args = e.API.Args
			er.Line = e.API.Line
			er.Script = e.API.ScriptURL
		}
		if e.Download != nil {
			er.DL = &downloadRec{
				Filename: e.Download.Filename, SHA256: e.Download.SHA256,
				Size: e.Download.Size, Format: e.Download.Format,
				CampaignID: e.Download.CampaignID,
			}
		}
		rec.Events = append(rec.Events, er)
	}
	return rec
}

func fromRec(rec sessionRec) (*crawler.Session, error) {
	s := &crawler.Session{
		Publisher:   rec.Publisher,
		UserAgent:   uaByName(rec.UserAgent),
		ClientIP:    webtx.IPClass(rec.ClientIP),
		PublisherOK: rec.PublisherOK,
	}
	for _, lr := range rec.Landings {
		l := crawler.Landing{
			E2LD: lr.E2LD, Status: lr.Status, Hashed: lr.Hashed,
			Mobile: lr.Mobile, Blocked: lr.Blocked, Title: lr.Title,
			ParkedScore: lr.ParkedScore,
			Behaviour: crawler.Behaviour{
				Alerts:              lr.Behaviour.Alerts,
				BeforeUnload:        lr.Behaviour.BeforeUnload,
				NotificationRequest: lr.Behaviour.NotificationRequest,
				OpenedSignup:        lr.Behaviour.OpenedSignup,
				Downloaded:          lr.Behaviour.Downloaded,
			},
		}
		if lr.URL != "" {
			u, err := urlx.Parse(lr.URL)
			if err != nil {
				return nil, fmt.Errorf("landing url: %w", err)
			}
			l.URL = u
		}
		if lr.Hashed {
			h, err := phash.ParseHash(lr.Hash)
			if err != nil {
				return nil, fmt.Errorf("landing hash: %w", err)
			}
			l.Hash = h
		}
		for _, dr := range lr.Downloads {
			l.Downloads = append(l.Downloads, &webtx.Download{
				Filename: dr.Filename, SHA256: dr.SHA256, Size: dr.Size,
				Format: dr.Format, CampaignID: dr.CampaignID,
			})
		}
		s.Landings = append(s.Landings, l)
	}
	for _, er := range rec.Events {
		e := browser.Event{
			Kind: browser.EventKind(er.Kind), Tab: er.Tab, Time: er.Time,
			From: er.From, To: er.To, Cause: er.Cause, Detail: er.Detail,
		}
		if er.API != "" {
			e.API = adscript.APICall{Name: er.API, Args: er.Args, Line: er.Line, ScriptURL: er.Script}
		}
		if er.DL != nil {
			e.Download = &webtx.Download{
				Filename: er.DL.Filename, SHA256: er.DL.SHA256, Size: er.DL.Size,
				Format: er.DL.Format, CampaignID: er.DL.CampaignID,
			}
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}

func uaByName(name string) webtx.UserAgent {
	for _, ua := range webtx.AllUserAgents {
		if ua.Name == name {
			return ua
		}
	}
	return webtx.UserAgent{Name: name}
}
