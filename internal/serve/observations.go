package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/campstore"
	"repro/internal/phash"
)

// ObservationRequest is the POST /v1/observations body: one external
// sighting of a screenshot hash on an e2LD, appended to a world's
// incremental campaign store. The target world is addressed either by
// its key ("world-1-tiny") or by the spec fields that derive it.
type ObservationRequest struct {
	World         string   `json:"world,omitempty"`
	Seed          int64    `json:"seed,omitempty"`
	Tiny          bool     `json:"tiny,omitempty"`
	MaxPublishers int      `json:"max_publishers,omitempty"`
	Networks      []string `json:"networks,omitempty"`

	// Hash is the 128-bit perceptual hash, 32 hex digits.
	Hash string `json:"hash"`
	// E2LD is the effective second-level domain the hash was seen on.
	E2LD string `json:"e2ld"`
	// Tick is the observation's virtual timestamp (optional; part of
	// the dedup identity).
	Tick time.Time `json:"tick"`
	// Source tags the event origin: "milk" or "api" (default "api").
	// "crawl" is reserved for the pipeline's own discovery stream.
	Source string `json:"source,omitempty"`
}

// worldKey resolves the request's target world.
func (o ObservationRequest) worldKey() string {
	if o.World != "" {
		return o.World
	}
	return WorldKey(JobSpec{
		Seed:          o.Seed,
		Tiny:          o.Tiny,
		MaxPublishers: o.MaxPublishers,
		Networks:      o.Networks,
	})
}

// ObservationRecord is one logged event as the read API returns it.
type ObservationRecord struct {
	Seq    uint64    `json:"seq"`
	Hash   string    `json:"hash"`
	E2LD   string    `json:"e2ld"`
	Tick   time.Time `json:"tick"`
	Source string    `json:"source"`
}

// appendResponse is the POST /v1/observations reply.
type appendResponse struct {
	World     string `json:"world"`
	Seq       uint64 `json:"seq"`
	Duplicate bool   `json:"duplicate"`
	NewPoint  bool   `json:"new_point"`
	NewHash   bool   `json:"new_hash"`
	// DistanceCalls is the number of full Hamming verifications the
	// append performed against the pigeonhole index (0 for known
	// hashes and duplicates).
	DistanceCalls int64 `json:"distance_calls"`
}

// toEvent validates one observation request and converts it to a
// store event. The returned message is a ready-to-serve 400 body when
// non-empty.
func (o ObservationRequest) toEvent() (campstore.Event, string) {
	h, err := phash.ParseHash(o.Hash)
	if err != nil {
		return campstore.Event{}, "bad observation hash: " + err.Error()
	}
	if o.E2LD == "" {
		return campstore.Event{}, "observation needs an e2ld"
	}
	switch o.Source {
	case "", campstore.SourceAPI, campstore.SourceMilk:
	case campstore.SourceCrawl:
		return campstore.Event{}, `source "crawl" is reserved for the pipeline's discovery stream`
	default:
		return campstore.Event{}, "unknown observation source " + strconv.Quote(o.Source)
	}
	return campstore.Event{Hash: h, E2LD: o.E2LD, Tick: o.Tick, Source: o.Source}, ""
}

// batchAppendResponse is the POST /v1/observations reply for a JSON
// array body: one result per submitted observation, in input order.
type batchAppendResponse struct {
	World   string           `json:"world"`
	Results []appendedResult `json:"results"`
}

// appendedResult is one event's outcome inside a batch append.
type appendedResult struct {
	Seq           uint64 `json:"seq"`
	Duplicate     bool   `json:"duplicate"`
	NewPoint      bool   `json:"new_point"`
	NewHash       bool   `json:"new_hash"`
	DistanceCalls int64  `json:"distance_calls"`
}

func (s *Server) handleAppendObservation(w http.ResponseWriter, r *http.Request) {
	if s.owner == nil {
		writeError(w, http.StatusServiceUnavailable, "observation log requires the built-in pipeline runner")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad observation: "+err.Error())
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 {
		writeError(w, http.StatusBadRequest, "bad observation: empty body")
		return
	}

	// A JSON array body is a batch append: all entries must address the
	// same world, validation failures reject the whole batch before
	// anything is appended, and the reply carries per-event results.
	// A JSON object body is the original single-observation form.
	if trimmed[0] == '[' {
		var reqs []ObservationRequest
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&reqs); err != nil {
			writeError(w, http.StatusBadRequest, "bad observation batch: "+err.Error())
			return
		}
		if len(reqs) == 0 {
			writeError(w, http.StatusBadRequest, "observation batch is empty")
			return
		}
		world := reqs[0].worldKey()
		events := make([]campstore.Event, len(reqs))
		for i, req := range reqs {
			if req.worldKey() != world {
				writeError(w, http.StatusBadRequest, fmt.Sprintf(
					"observation %d addresses world %q, batch started with %q", i, req.worldKey(), world))
				return
			}
			ev, msg := req.toEvent()
			if msg != "" {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("observation %d: %s", i, msg))
				return
			}
			events[i] = ev
		}
		st := s.owner.world(world, true)
		br, err := st.AppendBatch(events)
		if err != nil {
			// Validation ran above, so the only batch failure is a
			// poisoned store (the oracle caught a divergence).
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp := batchAppendResponse{World: world, Results: make([]appendedResult, len(br.Results))}
		for i, res := range br.Results {
			resp.Results[i] = appendedResult{
				Seq:           res.Seq,
				Duplicate:     res.Duplicate,
				NewPoint:      res.NewPoint,
				NewHash:       res.NewHash,
				DistanceCalls: res.DistanceCalls,
			}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Single-object form.
	var req ObservationRequest
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad observation: "+err.Error())
		return
	}
	ev, msg := req.toEvent()
	if msg != "" {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	world := req.worldKey()
	st := s.owner.world(world, true)
	res, err := st.Append(ev)
	if err != nil {
		// The only append failure past validation is a poisoned store
		// (the batch oracle caught an incremental divergence).
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, appendResponse{
		World:         world,
		Seq:           res.Seq,
		Duplicate:     res.Duplicate,
		NewPoint:      res.NewPoint,
		NewHash:       res.NewHash,
		DistanceCalls: res.DistanceCalls,
	})
}

// worldInfo summarizes one world store in the GET /v1/observations
// index (no ?world= given).
type worldInfo struct {
	World         string `json:"world"`
	Observations  int    `json:"observations"`
	Points        int    `json:"points"`
	LiveClusters  int    `json:"live_clusters"`
	Merges        int64  `json:"merges"`
	OracleRuns    int64  `json:"oracle_runs"`
	DistanceCalls int64  `json:"distance_calls"`
}

func (s *Server) handleListObservations(w http.ResponseWriter, r *http.Request) {
	if s.owner == nil {
		writeError(w, http.StatusServiceUnavailable, "observation log requires the built-in pipeline runner")
		return
	}
	q := r.URL.Query()
	world := q.Get("world")
	if world == "" {
		worlds := []worldInfo{}
		for _, k := range s.owner.Worlds() {
			st := s.owner.world(k, false)
			if st == nil {
				continue
			}
			stats := st.Stats()
			worlds = append(worlds, worldInfo{
				World:         k,
				Observations:  stats.Events,
				Points:        stats.Points,
				LiveClusters:  stats.LiveClusters,
				Merges:        stats.Merges,
				OracleRuns:    stats.OracleRuns,
				DistanceCalls: stats.Index.DistanceCalls,
			})
		}
		writeJSON(w, http.StatusOK, map[string]any{"worlds": worlds})
		return
	}
	st := s.owner.world(world, false)
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown world "+strconv.Quote(world))
		return
	}
	after, err := queryUint(q.Get("after"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad after: "+err.Error())
		return
	}
	limit, err := queryUint(q.Get("limit"), 100)
	if err != nil || limit == 0 || limit > 1000 {
		writeError(w, http.StatusBadRequest, "limit must be in [1,1000]")
		return
	}
	events := st.Events(after, int(limit))
	records := make([]ObservationRecord, 0, len(events))
	for _, ev := range events {
		records = append(records, ObservationRecord{
			Seq:    ev.Seq,
			Hash:   ev.Hash.String(),
			E2LD:   ev.E2LD,
			Tick:   ev.Tick,
			Source: ev.Source,
		})
	}
	body := map[string]any{
		"world":        world,
		"total":        st.EventCount(),
		"observations": records,
	}
	if n := len(records); n > 0 && records[n-1].Seq < uint64(st.EventCount()) {
		body["next_after"] = records[n-1].Seq
	}
	writeJSON(w, http.StatusOK, body)
}

// queryUint parses an optional unsigned query parameter.
func queryUint(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseUint(s, 10, 63)
}
