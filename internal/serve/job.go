package serve

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// JobSpec is the request body of POST /v1/jobs: everything that
// identifies one pipeline run. The zero value is a valid spec (default
// world, seed 1); the spec is echoed back in job views so a client can
// always reconstruct what a job computed.
type JobSpec struct {
	// Seed is the world seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Tiny selects the smoke-scale world (seconds per job) instead of
	// the 1/8-scale default.
	Tiny bool `json:"tiny,omitempty"`
	// Workers parallelizes the milking and discovery stages (their
	// output is byte-identical for any value; 0 = per-stage defaults).
	// The crawl farm always runs one worker — see SpecExperimentConfig.
	Workers int `json:"workers,omitempty"`
	// Days overrides the milking horizon in virtual days (0 = config
	// default: 14 full-scale, 2 tiny).
	Days int `json:"days,omitempty"`
	// MaxSources bounds the milking sources (default 300, matching the
	// one-shot seacma-report CLI).
	MaxSources int `json:"max_sources,omitempty"`
	// SkipMilking stops after discovery and attribution.
	SkipMilking bool `json:"skip_milking,omitempty"`
	// MaxPublishers bounds the crawl pool (0 = all).
	MaxPublishers int `json:"max_publishers,omitempty"`
	// Networks restricts the analyst seed list to the named ad networks
	// (empty = all seed networks). Unknown names fail the job.
	Networks []string `json:"networks,omitempty"`
}

// Validate rejects specs whose values are out of range before a job is
// created, so bad submissions fail with 400 instead of a failed job.
func (s JobSpec) Validate() error {
	if s.Seed < 0 {
		return fmt.Errorf("seed must be >= 0 (got %d)", s.Seed)
	}
	if s.Workers < 0 || s.Workers > 64 {
		return fmt.Errorf("workers must be in [0,64] (got %d)", s.Workers)
	}
	if s.Days < 0 || s.Days > 60 {
		return fmt.Errorf("days must be in [0,60] (got %d)", s.Days)
	}
	if s.MaxSources < 0 {
		return fmt.Errorf("max_sources must be >= 0 (got %d)", s.MaxSources)
	}
	if s.MaxPublishers < 0 {
		return fmt.Errorf("max_publishers must be >= 0 (got %d)", s.MaxPublishers)
	}
	for _, n := range s.Networks {
		if n == "" {
			return fmt.Errorf("networks must not contain empty names")
		}
	}
	return nil
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Finished reports whether the state is terminal.
func (s JobState) Finished() bool { return s == StateDone || s == StateFailed }

// PhaseMark records one pipeline stage transition of a running job. The
// names match the obs span names (reverse, crawl, discover, attribute,
// milk), so progress and the span log correlate.
type PhaseMark struct {
	Name      string    `json:"name"`
	StartedAt time.Time `json:"started_at"`
}

// JobEvent is one progress notification of a running job: a phase
// transition (Sessions == 0) or a per-session crawl commit tick from
// the streaming coordinator. It is both what Runners report and what
// the /v1/jobs/{id}/events SSE stream serializes.
type JobEvent struct {
	Phase string `json:"phase"`
	// Sessions/Total count crawl session slots committed in task order;
	// both are zero on pure phase transitions.
	Sessions int `json:"sessions,omitempty"`
	Total    int `json:"total,omitempty"`
}

// CampaignSummary is the queryable record of one discovered SE
// campaign. Job-scoped summaries (built from a finished job's
// discovery result) carry JobID and a "<job id>/<id>" key; live
// summaries (projected from a world's incremental campaign store)
// carry World, a "<world>/<id>" key, and the live-view extent fields.
type CampaignSummary struct {
	// Key is the global campaign address: "<job id>/<campaign id>" for
	// job-scoped records, "<world key>/<campaign id>" for live ones.
	Key        string   `json:"key"`
	JobID      string   `json:"job_id,omitempty"`
	World      string   `json:"world,omitempty"`
	ID         int      `json:"id"`
	Category   string   `json:"category"`
	Attacks    int      `json:"attacks"`
	Domains    []string `json:"domains"`
	RepHash    string   `json:"rep_hash"`
	ScamPhones []string `json:"scam_phones,omitempty"`
	// Observations counts the logged events supporting the campaign's
	// live cluster; Merged is set when two registered campaigns now
	// share one live cluster. Both are live-view only.
	Observations int  `json:"observations,omitempty"`
	Merged       bool `json:"merged,omitempty"`
}

// ClusterSummary is the queryable record of one cluster, SE or benign.
type ClusterSummary struct {
	Key             string  `json:"key"`
	JobID           string  `json:"job_id"`
	ID              int     `json:"id"`
	SE              bool    `json:"se"`
	Category        string  `json:"category,omitempty"`
	Pages           int     `json:"pages"`
	Domains         int     `json:"domains"`
	MeanParkedScore float64 `json:"mean_parked_score"`
}

// JobResult is everything a completed job retains for the query
// endpoints. The full RunResult (sessions, events, rasters) is
// deliberately dropped once these are built, so a long-lived daemon's
// memory is bounded by report size, not crawl size.
type JobResult struct {
	Report core.Report
	// ReportJSON is the report serialized exactly as the one-shot CLIs
	// write it; the /report endpoint returns these bytes verbatim so
	// the byte-identity contract survives any future handler changes.
	ReportJSON []byte
	Campaigns  []CampaignSummary
	Clusters   []ClusterSummary
}

// Job is one submitted pipeline run. All fields are guarded by the
// owning Store's mutex; handlers read through View snapshots.
type Job struct {
	ID   string
	Spec JobSpec

	state     JobState
	phase     string
	phases    []PhaseMark
	sessions  int // crawl session slots committed so far
	total     int // crawl session slots overall (streaming runs only)
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancelled bool
	cancel    func()
	result    *JobResult

	// subs are the live progress subscribers (SSE handlers). Events are
	// sent non-blocking — a slow consumer loses intermediate ticks, never
	// the terminal close. Channels are closed exactly once, when the job
	// reaches a terminal state.
	subs    map[int]chan JobEvent
	nextSub int
}

// notify fans an event out to subscribers; caller holds the store mutex.
func (j *Job) notify(ev JobEvent) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// closeSubs releases every subscriber on terminal state; caller holds
// the store mutex.
func (j *Job) closeSubs() {
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// JobView is the JSON projection of a Job at one instant.
type JobView struct {
	ID     string      `json:"id"`
	State  JobState    `json:"state"`
	Spec   JobSpec     `json:"spec"`
	Phase  string      `json:"phase,omitempty"`
	Phases []PhaseMark `json:"phases,omitempty"`
	// Sessions/SessionsTotal expose streaming crawl progress: committed
	// session slots out of the crawl total (zero until the crawl begins).
	Sessions      int        `json:"sessions,omitempty"`
	SessionsTotal int        `json:"sessions_total,omitempty"`
	Error         string     `json:"error,omitempty"`
	SubmittedAt   time.Time  `json:"submitted_at"`
	StartedAt     *time.Time `json:"started_at,omitempty"`
	FinishedAt    *time.Time `json:"finished_at,omitempty"`
	Campaigns     int        `json:"campaigns,omitempty"`
	Clusters      int        `json:"clusters,omitempty"`
	ReportURL     string     `json:"report_url,omitempty"`
}

// view snapshots the job; caller holds the store mutex.
func (j *Job) view() JobView {
	v := JobView{
		ID:            j.ID,
		State:         j.state,
		Spec:          j.Spec,
		Phase:         j.phase,
		Phases:        append([]PhaseMark(nil), j.phases...),
		Sessions:      j.sessions,
		SessionsTotal: j.total,
		Error:         j.err,
		SubmittedAt:   j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.result != nil {
		v.Campaigns = len(j.result.Campaigns)
		v.Clusters = len(j.result.Clusters)
		v.ReportURL = "/v1/jobs/" + j.ID + "/report"
	}
	return v
}
