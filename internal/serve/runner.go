package serve

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/adscript"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/screenshot"
)

// PipelineOwner is the daemon's long-lived pipeline context: the obs
// registry and the two content-addressed caches shared by every job.
// Sharing is safe because both caches are proven behaviour-invariant
// (reports are byte-identical with them on, off, or shared) and
// concurrency-safe (they already back the crawl and milking pools).
type PipelineOwner struct {
	Obs     *obs.Registry
	Capture *screenshot.Cache
	Scripts *adscript.ProgramCache
}

// NewPipelineOwner builds the shared context, binding both caches to
// the daemon registry so capture_*/script_* metrics aggregate across
// jobs at /metrics.
func NewPipelineOwner(reg *obs.Registry) *PipelineOwner {
	return &PipelineOwner{
		Obs:     reg,
		Capture: screenshot.NewCache(0, reg),
		Scripts: adscript.NewProgramCache(0, reg),
	}
}

// SpecExperimentConfig maps a job spec onto the experiment
// configuration, mirroring the seacma-report CLI flag mapping so a
// job's report is byte-identical to `seacma-report -seed N [-tiny]
// -workers 1 -json`. The crawl farm is pinned to one worker — crawl
// session order is the only scheduling-dependent stage, so pinning it
// makes a job's identity (spec → report bytes) hold at every Workers
// value; milking and discovery parallelize freely under their
// byte-identical-output contract.
func SpecExperimentConfig(spec JobSpec) seacma.ExperimentConfig {
	cfg := seacma.DefaultExperimentConfig()
	if spec.Tiny {
		cfg = seacma.QuickExperimentConfig()
	}
	cfg.World.Seed = spec.Seed
	if cfg.World.Seed <= 0 {
		cfg.World.Seed = 1
	}
	cfg.Milker.MaxSources = 300
	if spec.MaxSources > 0 {
		cfg.Milker.MaxSources = spec.MaxSources
	}
	if spec.Days > 0 {
		cfg.Milker.Duration = time.Duration(spec.Days) * 24 * time.Hour
	}
	cfg.SkipMilking = spec.SkipMilking
	cfg.MaxPublishers = spec.MaxPublishers
	cfg.Crawler.Workers = 1
	if spec.Workers > 0 {
		cfg.Milker.Workers = spec.Workers
		cfg.Discovery.Workers = spec.Workers
	}
	return cfg
}

// Run executes one job against the shared pipeline context. It is the
// store's production Runner.
func (o *PipelineOwner) Run(ctx context.Context, spec JobSpec, onPhase func(string)) (*JobResult, error) {
	cfg := SpecExperimentConfig(spec)
	cfg.Obs = o.Obs
	cfg.Capture = o.Capture
	cfg.Scripts = o.Scripts
	exp := seacma.NewExperiment(cfg)
	if len(spec.Networks) > 0 {
		kept, err := filterSeeds(exp.Pipeline.Cfg.Seeds, spec.Networks)
		if err != nil {
			return nil, err
		}
		exp.Pipeline.Cfg.Seeds = kept
	}
	res, err := exp.RunPhased(ctx, onPhase)
	if err != nil {
		return nil, err
	}
	return buildJobResult(res)
}

// filterSeeds keeps only the named seed networks, failing on unknown
// names so a typo surfaces as a failed job with a clear reason.
func filterSeeds(seeds []core.SeedNetwork, names []string) ([]core.SeedNetwork, error) {
	byName := make(map[string]core.SeedNetwork, len(seeds))
	for _, s := range seeds {
		byName[s.Name] = s
	}
	var kept []core.SeedNetwork
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown seed network %q", n)
		}
		kept = append(kept, s)
	}
	return kept, nil
}

// buildJobResult projects a finished run onto what the query endpoints
// retain: the serialized report plus campaign/cluster summaries. The
// heavyweight RunResult (sessions, events) is released afterwards.
func buildJobResult(res *seacma.Result) (*JobResult, error) {
	rep := res.Report()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("serialize report: %w", err)
	}
	out := &JobResult{Report: rep, ReportJSON: buf.Bytes()}
	disc := res.Discovery
	for _, c := range disc.Campaigns() {
		out.Campaigns = append(out.Campaigns, CampaignSummary{
			ID:         c.ID,
			Category:   string(c.Category),
			Attacks:    c.AttackCount(disc.Observations),
			Domains:    append([]string(nil), c.Domains...),
			RepHash:    c.Rep.String(),
			ScamPhones: append([]string(nil), c.Signals.ScamPhones...),
		})
	}
	for _, c := range disc.Clusters {
		out.Clusters = append(out.Clusters, ClusterSummary{
			ID:              c.ID,
			SE:              c.Category != core.CatBenign,
			Category:        string(c.Category),
			Pages:           c.Signals.Pages,
			Domains:         len(c.Domains),
			MeanParkedScore: c.Signals.MeanParkedScore(),
		})
	}
	return out, nil
}

// stampKeys fills the job-scoped keys once the job ID is known.
func (r *JobResult) stampKeys(jobID string) {
	for i := range r.Campaigns {
		r.Campaigns[i].JobID = jobID
		r.Campaigns[i].Key = fmt.Sprintf("%s/%d", jobID, r.Campaigns[i].ID)
	}
	for i := range r.Clusters {
		r.Clusters[i].JobID = jobID
		r.Clusters[i].Key = fmt.Sprintf("%s/%d", jobID, r.Clusters[i].ID)
	}
}
