package serve

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/adscript"
	"repro/internal/campstore"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/screenshot"
)

// PipelineOwner is the daemon's long-lived pipeline context: the obs
// registry, the two content-addressed caches shared by every job, and
// one incremental campaign store per world. Sharing the caches is safe
// because both are proven behaviour-invariant (reports are
// byte-identical with them on, off, or shared) and concurrency-safe;
// sharing a world's campaign store is safe because discovery verifies
// the store's crawl view against the run's own observation stream and
// falls back to batch clustering on any mismatch.
type PipelineOwner struct {
	Obs     *obs.Registry
	Capture *screenshot.Cache
	Scripts *adscript.ProgramCache
	// OracleEvery is forwarded to every world store: run the full batch
	// recompute oracle after every N non-duplicate events (0 = never).
	OracleEvery int

	mu     sync.Mutex
	stores map[string]*campstore.Store
}

// NewPipelineOwner builds the shared context, binding both caches to
// the daemon registry so capture_*/script_* metrics aggregate across
// jobs at /metrics.
func NewPipelineOwner(reg *obs.Registry) *PipelineOwner {
	return &PipelineOwner{
		Obs:     reg,
		Capture: screenshot.NewCache(0, reg),
		Scripts: adscript.NewProgramCache(0, reg),
		stores:  map[string]*campstore.Store{},
	}
}

// WorldKey fingerprints the part of a job spec that determines the
// crawl observation stream: seed, world scale, publisher cap and seed
// network filter. Milking knobs (days, max_sources, skip_milking) are
// deliberately excluded — they only change which milk events extend
// the live view, so runs that differ only in them share one store and
// one absorbed clustering state.
func WorldKey(spec JobSpec) string {
	seed := spec.Seed
	if seed <= 0 {
		seed = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "world-%d", seed)
	if spec.Tiny {
		b.WriteString("-tiny")
	}
	if spec.MaxPublishers > 0 {
		fmt.Fprintf(&b, "-p%d", spec.MaxPublishers)
	}
	for _, n := range spec.Networks {
		b.WriteString("-n:")
		b.WriteString(n)
	}
	return b.String()
}

// StoreFor returns the campaign store of the spec's world, creating it
// on first use.
func (o *PipelineOwner) StoreFor(spec JobSpec) *campstore.Store {
	return o.world(WorldKey(spec), true)
}

func (o *PipelineOwner) world(key string, create bool) *campstore.Store {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.stores[key]
	if st == nil && create {
		st = campstore.New(campstore.Config{Obs: o.Obs, OracleEvery: o.OracleEvery})
		o.stores[key] = st
	}
	return st
}

// Worlds lists the known world keys, sorted.
func (o *PipelineOwner) Worlds() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	keys := make([]string, 0, len(o.stores))
	for k := range o.stores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LiveCampaigns projects the registered campaigns of one world (or,
// with world == "", of every world in key order) onto the live
// incremental state.
func (o *PipelineOwner) LiveCampaigns(world string) []CampaignSummary {
	keys := []string{world}
	if world == "" {
		keys = o.Worlds()
	}
	var out []CampaignSummary
	for _, k := range keys {
		st := o.world(k, false)
		if st == nil {
			continue
		}
		out = append(out, LiveCampaignSummaries(k, st)...)
	}
	return out
}

// LiveCampaignSummaries projects one store's live campaign views onto
// the API summary shape. Keys are world-scoped ("<world>/<id>") since
// live state outlives any single job.
func LiveCampaignSummaries(world string, st *campstore.Store) []CampaignSummary {
	var out []CampaignSummary
	for _, cv := range st.LiveCampaigns() {
		out = append(out, CampaignSummary{
			Key:          fmt.Sprintf("%s/%d", world, cv.ID),
			World:        world,
			ID:           cv.ID,
			Category:     cv.Category,
			Attacks:      cv.Attacks,
			Domains:      cv.Domains,
			RepHash:      cv.RepHash.String(),
			ScamPhones:   cv.ScamPhones,
			Observations: cv.Observations,
			Merged:       cv.Merged,
		})
	}
	return out
}

// SpecExperimentConfig maps a job spec onto the experiment
// configuration, mirroring the seacma-report CLI flag mapping so a
// job's report is byte-identical to `seacma-report -seed N [-tiny]
// -workers 1 -json`. The crawl farm is pinned to one worker — crawl
// session order is the only scheduling-dependent stage, so pinning it
// makes a job's identity (spec → report bytes) hold at every Workers
// value; milking and discovery parallelize freely under their
// byte-identical-output contract.
func SpecExperimentConfig(spec JobSpec) seacma.ExperimentConfig {
	cfg := seacma.DefaultExperimentConfig()
	if spec.Tiny {
		cfg = seacma.QuickExperimentConfig()
	}
	cfg.World.Seed = spec.Seed
	if cfg.World.Seed <= 0 {
		cfg.World.Seed = 1
	}
	cfg.Milker.MaxSources = 300
	if spec.MaxSources > 0 {
		cfg.Milker.MaxSources = spec.MaxSources
	}
	if spec.Days > 0 {
		cfg.Milker.Duration = time.Duration(spec.Days) * 24 * time.Hour
	}
	cfg.SkipMilking = spec.SkipMilking
	cfg.MaxPublishers = spec.MaxPublishers
	cfg.Crawler.Workers = 1
	if spec.Workers > 0 {
		cfg.Milker.Workers = spec.Workers
		cfg.Discovery.Workers = spec.Workers
	}
	return cfg
}

// Run executes one job against the shared pipeline context. It is the
// store's production Runner. Jobs run through the streaming pipeline,
// so onEvent carries per-session crawl progress alongside the phase
// transitions (the report stays byte-identical to the phased path).
func (o *PipelineOwner) Run(ctx context.Context, spec JobSpec, onEvent func(JobEvent)) (*JobResult, error) {
	cfg := SpecExperimentConfig(spec)
	cfg.Obs = o.Obs
	cfg.Capture = o.Capture
	cfg.Scripts = o.Scripts
	cfg.Campaigns = o.StoreFor(spec)
	exp := seacma.NewExperiment(cfg)
	if len(spec.Networks) > 0 {
		kept, err := filterSeeds(exp.Pipeline.Cfg.Seeds, spec.Networks)
		if err != nil {
			return nil, err
		}
		exp.Pipeline.Cfg.Seeds = kept
	}
	var onProgress func(seacma.ProgressEvent)
	if onEvent != nil {
		onProgress = func(ev seacma.ProgressEvent) {
			onEvent(JobEvent{Phase: ev.Phase, Sessions: ev.Committed, Total: ev.Total})
		}
	}
	res, err := exp.RunStream(ctx, onProgress)
	if err != nil {
		return nil, err
	}
	return buildJobResult(res)
}

// filterSeeds keeps only the named seed networks, failing on unknown
// names so a typo surfaces as a failed job with a clear reason.
func filterSeeds(seeds []core.SeedNetwork, names []string) ([]core.SeedNetwork, error) {
	byName := make(map[string]core.SeedNetwork, len(seeds))
	for _, s := range seeds {
		byName[s.Name] = s
	}
	var kept []core.SeedNetwork
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown seed network %q", n)
		}
		kept = append(kept, s)
	}
	return kept, nil
}

// buildJobResult projects a finished run onto what the query endpoints
// retain: the serialized report plus campaign/cluster summaries. The
// heavyweight RunResult (sessions, events) is released afterwards.
func buildJobResult(res *seacma.Result) (*JobResult, error) {
	rep := res.Report()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("serialize report: %w", err)
	}
	out := &JobResult{Report: rep, ReportJSON: buf.Bytes()}
	disc := res.Discovery
	for _, c := range disc.Campaigns() {
		out.Campaigns = append(out.Campaigns, CampaignSummary{
			ID:         c.ID,
			Category:   string(c.Category),
			Attacks:    c.AttackCount(disc.Observations),
			Domains:    append([]string(nil), c.Domains...),
			RepHash:    c.Rep.String(),
			ScamPhones: append([]string(nil), c.Signals.ScamPhones...),
		})
	}
	for _, c := range disc.Clusters {
		out.Clusters = append(out.Clusters, ClusterSummary{
			ID:              c.ID,
			SE:              c.Category != core.CatBenign,
			Category:        string(c.Category),
			Pages:           c.Signals.Pages,
			Domains:         len(c.Domains),
			MeanParkedScore: c.Signals.MeanParkedScore(),
		})
	}
	return out, nil
}

// stampKeys fills the job-scoped keys once the job ID is known.
func (r *JobResult) stampKeys(jobID string) {
	for i := range r.Campaigns {
		r.Campaigns[i].JobID = jobID
		r.Campaigns[i].Key = fmt.Sprintf("%s/%d", jobID, r.Campaigns[i].ID)
	}
	for i := range r.Clusters {
		r.Clusters[i].JobID = jobID
		r.Clusters[i].Key = fmt.Sprintf("%s/%d", jobID, r.Clusters[i].ID)
	}
}
