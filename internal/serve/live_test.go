package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/campstore"
	"repro/internal/obs"
	"repro/internal/phash"
)

// encodeCampaignsBody serializes a campaign list exactly as the
// /v1/campaigns handler does, so tests can byte-compare responses
// against locally computed projections.
func encodeCampaignsBody(t *testing.T, list []CampaignSummary) []byte {
	t.Helper()
	if list == nil {
		list = []CampaignSummary{}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"campaigns": list}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLiveCampaignsMatchOneShot is the service-mode contract of the
// incremental campaign store: after the same event stream — a full
// pipeline job, then extra observations over the API — the daemon's
// GET /v1/campaigns (served from the live incremental state, never a
// batch recompute) is byte-identical to the projection computed from a
// one-shot CLI-equivalent run's private store fed the same appends.
func TestLiveCampaignsMatchOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs")
	}
	spec := JobSpec{Tiny: true, Seed: 1, Days: 1, MaxSources: 40}
	world := WorldKey(spec)

	// One-shot reference: the run owns a private incremental store.
	exp := seacma.NewExperiment(SpecExperimentConfig(spec))
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := res.Discovery.Store
	if ref == nil {
		t.Fatal("one-shot run did not attach an incremental store")
	}

	// Daemon: same spec as an HTTP job against the real runner.
	srv, ts, _ := newTestServer(t, nil)
	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"tiny":true,"seed":1,"days":1,"max_sources":40}`)
	if code != 202 {
		t.Fatalf("submit = %d %s", code, body)
	}
	v := decodeView(t, body)
	waitState(t, srv.Store(), v.ID, StateDone)

	compare := func(stage string) {
		t.Helper()
		code, got := do(t, "GET", ts.URL+"/v1/campaigns", "")
		if code != 200 {
			t.Fatalf("%s: campaigns = %d %s", stage, code, got)
		}
		want := encodeCampaignsBody(t, LiveCampaignSummaries(world, ref))
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: live /v1/campaigns diverges from one-shot projection:\n service:  %s\n one-shot: %s", stage, got, want)
		}
		if !bytes.Contains(got, []byte(`"key": "`+world+`/`)) {
			t.Fatalf("%s: live campaigns missing world-scoped keys: %s", stage, got)
		}
	}
	compare("after job")

	// Extend the stream over the API: a 1-bit neighbour of a campaign
	// representative on a fresh domain joins that campaign's cluster.
	reps := LiveCampaignSummaries(world, ref)
	if len(reps) == 0 {
		t.Fatal("no live campaigns after a completed job")
	}
	h, err := phash.ParseHash(reps[0].RepHash)
	if err != nil {
		t.Fatal(err)
	}
	tick := time.Unix(1700000000, 0).UTC()
	ev := campstore.Event{Hash: h.FlipBits(0), E2LD: "api-sighting.example", Tick: tick, Source: campstore.SourceAPI}

	req := fmt.Sprintf(`{"world":%q,"hash":%q,"e2ld":%q,"tick":%q}`,
		world, ev.Hash.String(), ev.E2LD, tick.Format(time.RFC3339Nano))
	code, body = do(t, "POST", ts.URL+"/v1/observations", req)
	if code != 200 {
		t.Fatalf("append observation = %d %s", code, body)
	}
	var ar appendResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.World != world || ar.Duplicate || !ar.NewPoint {
		t.Fatalf("append response = %+v", ar)
	}
	if _, err := ref.Append(ev); err != nil {
		t.Fatal(err)
	}
	compare("after API append")

	// The appended domain must now appear in the live projection.
	if code, got := do(t, "GET", ts.URL+"/v1/campaigns", ""); code != 200 || !bytes.Contains(got, []byte("api-sighting.example")) {
		t.Fatalf("appended domain missing from live campaigns: %d %s", code, got)
	}
}

// TestObservationsEndpoints covers the append/read API without running
// any job: validation failures, dedup, pagination, and the world index.
func TestObservationsEndpoints(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1, Obs: obs.New(), OracleEvery: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer drainStore(t, srv.Store())

	post := func(body string) (int, []byte) {
		t.Helper()
		return do(t, "POST", ts.URL+"/v1/observations", body)
	}
	base := phash.Hash{Hi: 0xfeed, Lo: 0xbeef}

	// Validation: bad hash, missing e2ld, reserved and unknown sources.
	for name, body := range map[string]string{
		"bad hash":       `{"hash":"zz","e2ld":"a.example"}`,
		"missing e2ld":   fmt.Sprintf(`{"hash":%q}`, base.String()),
		"crawl source":   fmt.Sprintf(`{"hash":%q,"e2ld":"a.example","source":"crawl"}`, base.String()),
		"unknown source": fmt.Sprintf(`{"hash":%q,"e2ld":"a.example","source":"wat"}`, base.String()),
		"unknown field":  fmt.Sprintf(`{"hash":%q,"e2ld":"a.example","nope":1}`, base.String()),
	} {
		if code, b := post(body); code != 400 {
			t.Fatalf("%s = %d %s", name, code, b)
		}
	}

	// Appends address a world by spec fields; repeats dedup.
	tick := time.Unix(1700000000, 0).UTC()
	appendOne := func(h phash.Hash, e2ld string) appendResponse {
		t.Helper()
		code, b := post(fmt.Sprintf(`{"seed":7,"tiny":true,"hash":%q,"e2ld":%q,"tick":%q}`,
			h.String(), e2ld, tick.Format(time.RFC3339Nano)))
		if code != 200 {
			t.Fatalf("append = %d %s", code, b)
		}
		var ar appendResponse
		if err := json.Unmarshal(b, &ar); err != nil {
			t.Fatal(err)
		}
		return ar
	}
	for i := 0; i < 6; i++ {
		ar := appendOne(base.FlipBits(i%3), fmt.Sprintf("d%d.example", i%3))
		if ar.World != "world-7-tiny" {
			t.Fatalf("append world = %q", ar.World)
		}
		if dup := i >= 3; ar.Duplicate != dup {
			t.Fatalf("append %d duplicate = %v", i, ar.Duplicate)
		}
	}

	// Paginated read: 2 + 1 with a next_after cursor only on page one.
	code, b := do(t, "GET", ts.URL+"/v1/observations?world=world-7-tiny&limit=2", "")
	if code != 200 || !strings.Contains(string(b), `"next_after": 2`) {
		t.Fatalf("page one = %d %s", code, b)
	}
	code, b = do(t, "GET", ts.URL+"/v1/observations?world=world-7-tiny&after=2&limit=2", "")
	if code != 200 || strings.Contains(string(b), "next_after") {
		t.Fatalf("page two = %d %s", code, b)
	}
	var page struct {
		World        string              `json:"world"`
		Total        int                 `json:"total"`
		Observations []ObservationRecord `json:"observations"`
	}
	if err := json.Unmarshal(b, &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 3 || len(page.Observations) != 1 || page.Observations[0].Seq != 3 {
		t.Fatalf("page two = %+v", page)
	}
	if got := page.Observations[0]; got.Source != campstore.SourceAPI || !got.Tick.Equal(tick) {
		t.Fatalf("record = %+v", got)
	}

	// World index lists the store; unknown worlds and bad cursors fail.
	code, b = do(t, "GET", ts.URL+"/v1/observations", "")
	if code != 200 || !strings.Contains(string(b), `"world-7-tiny"`) || !strings.Contains(string(b), `"observations": 3`) {
		t.Fatalf("world index = %d %s", code, b)
	}
	if code, _ = do(t, "GET", ts.URL+"/v1/observations?world=nope", ""); code != 404 {
		t.Fatalf("unknown world = %d", code)
	}
	if code, _ = do(t, "GET", ts.URL+"/v1/observations?world=world-7-tiny&limit=9999", ""); code != 400 {
		t.Fatalf("bad limit = %d", code)
	}
}

// TestObservationsRequireOwner verifies both endpoints refuse when a
// stub runner replaced the pipeline owner.
func TestObservationsRequireOwner(t *testing.T) {
	_, ts, _ := newTestServer(t, instantRunner)
	if code, _ := do(t, "POST", ts.URL+"/v1/observations", `{"hash":"0","e2ld":"a"}`); code != 503 {
		t.Fatalf("append without owner = %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/v1/observations", ""); code != 503 {
		t.Fatalf("read without owner = %d", code)
	}
}
