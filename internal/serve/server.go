package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// Server is the HTTP front-end over a job Store.
type Server struct {
	cfg       Config
	store     *Store
	owner     *PipelineOwner // nil when a stub Runner was injected
	mux       *http.ServeMux
	startedAt time.Time
}

// New builds a Server (and its Store). With a nil cfg.Runner the real
// pipeline runner is used, owning one shared capture cache, program
// cache, obs registry and the per-world incremental campaign stores
// for the daemon's lifetime.
func New(cfg Config) *Server {
	runner := cfg.Runner
	var owner *PipelineOwner
	if runner == nil {
		owner = NewPipelineOwner(cfg.Obs)
		owner.OracleEvery = cfg.OracleEvery
		runner = owner.Run
	}
	s := &Server{
		cfg:       cfg,
		store:     NewStore(cfg.Workers, cfg.QueueCap, runner, cfg.Obs),
		owner:     owner,
		mux:       http.NewServeMux(),
		startedAt: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("POST /v1/observations", s.handleAppendObservation)
	s.mux.HandleFunc("GET /v1/observations", s.handleListObservations)
	s.mux.HandleFunc("GET /v1/campaigns/{job}/{id}", s.handleCampaign)
	s.mux.HandleFunc("GET /v1/clusters", s.handleClusters)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the API root, ready for http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the job engine (the daemon uses it for drain).
func (s *Server) Store() *Store { return s.store }

// Shutdown drains the store: intake refused with 503, queued and
// running jobs complete (cancelled if ctx expires first).
func (s *Server) Shutdown(ctx context.Context) error {
	return s.store.Drain(ctx)
}

// writeJSON writes v as indented JSON with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

// storeError maps store errors onto HTTP statuses.
func storeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	view, err := s.store.Submit(spec)
	if err != nil {
		storeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.List()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	view, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		storeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.store.Cancel(r.PathValue("id"))
	if err != nil {
		storeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	report, state, err := s.store.Report(r.PathValue("id"))
	if err != nil {
		storeError(w, err)
		return
	}
	if report == nil {
		// The job exists but has no report: not finished yet (409 with
		// a Retry-After hint) or failed (410 — it never will).
		if state == StateFailed {
			writeError(w, http.StatusGone, "job failed; no report")
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job is "+string(state)+"; report not ready")
		return
	}
	// The stored bytes are written verbatim: they are the one-shot CLI
	// serialization, and the byte-identity contract covers them.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(report)
}

// handleJobEvents streams a job's progress as Server-Sent Events. The
// stream opens with a replay — one "phase" event per recorded phase
// mark, plus a "progress" event if crawl commits have been counted —
// then forwards live JobEvents ("phase" on transitions, "progress" on
// per-session crawl ticks) until the job reaches a terminal state,
// which is delivered as a closing "done" event carrying the final job
// view. A finished job replays and closes immediately, so the event
// sequence a late subscriber sees is a prefix-compressed version of
// what a live one saw.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	view, events, unsub, err := s.store.Subscribe(r.PathValue("id"))
	if err != nil {
		storeError(w, err)
		return
	}
	defer unsub()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out immediately: a subscriber to a job with no
		// recorded progress yet would otherwise block on a buffered
		// response while this handler blocks on the event channel.
		flusher.Flush()
	}
	send := func(event string, v any) {
		data, _ := json.Marshal(v)
		_, _ = w.Write([]byte("event: " + event + "\ndata: " + string(data) + "\n\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Replay: the phases already recorded, then current crawl progress.
	for _, pm := range view.Phases {
		send("phase", JobEvent{Phase: pm.Name})
	}
	if view.SessionsTotal > 0 {
		send("progress", JobEvent{Phase: "crawl", Sessions: view.Sessions, Total: view.SessionsTotal})
	}

	for {
		select {
		case ev, ok := <-events:
			if !ok {
				final, err := s.store.Get(view.ID)
				if err == nil {
					send("done", final)
				}
				return
			}
			if ev.Total > 0 {
				send("progress", ev)
			} else {
				send("phase", ev)
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleCampaigns serves the live incremental view by default: the
// registered campaigns of every world store, projected onto the
// clustering state all appended observations (crawl, milk, API) have
// grown so far. ?job= addresses one finished job's discovery-time
// summaries instead; with a stub runner (no pipeline owner) only the
// job-scoped view exists.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var list []CampaignSummary
	if job := q.Get("job"); job != "" || s.owner == nil {
		list = s.store.Campaigns(job)
	} else {
		list = s.owner.LiveCampaigns(q.Get("world"))
	}
	if list == nil {
		list = []CampaignSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": list})
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "campaign id must be an integer")
		return
	}
	c, err := s.store.Campaign(r.PathValue("job"), id)
	if err != nil {
		storeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, c)
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	list := s.store.Clusters(r.URL.Query().Get("job"))
	if list == nil {
		list = []ClusterSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"clusters": list})
}

// versionInfo is the /v1/version body.
type versionInfo struct {
	Service   string `json:"service"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Revision  string `json:"revision,omitempty"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	v := versionInfo{
		Service:   "seacma-serve",
		Version:   s.cfg.Version,
		GoVersion: runtime.Version(),
	}
	if v.Version == "" {
		v.Version = "dev"
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		v.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				v.Revision = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		writeError(w, http.StatusNotFound, "metrics disabled (no registry)")
		return
	}
	if strings.EqualFold(r.URL.Query().Get("format"), "text") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.cfg.Obs.Text()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.cfg.Obs.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.store.Draining() {
		// Draining reads as unhealthy so load balancers stop routing
		// new work here while in-flight jobs finish.
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"jobs_inflight":  s.store.Inflight(),
		"uptime_seconds": int64(time.Since(s.startedAt).Seconds()),
	})
}
