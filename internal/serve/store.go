package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Runner executes one job: build the world, run the pipeline under ctx,
// and return the retained result. onEvent is invoked as each pipeline
// stage begins and on every per-session crawl commit (never
// concurrently for one job).
type Runner func(ctx context.Context, spec JobSpec, onEvent func(JobEvent)) (*JobResult, error)

// Store errors, mapped onto HTTP statuses by the server.
var (
	// ErrNotFound: no job with that ID (404).
	ErrNotFound = errors.New("job not found")
	// ErrDraining: the store no longer accepts submissions (503).
	ErrDraining = errors.New("store is draining")
	// ErrQueueFull: the bounded queue is at capacity (503).
	ErrQueueFull = errors.New("job queue is full")
	// ErrFinished: the job already reached a terminal state (409).
	ErrFinished = errors.New("job already finished")
)

// Store is the async job engine: a registry of jobs plus a bounded
// worker pool that executes them. All job-state transitions happen
// under one mutex; the pipeline work itself runs outside it.
type Store struct {
	runner Runner

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for stable listings
	nextID   int
	draining bool
	running  int

	metSubmitted *obs.Counter // serve_jobs_submitted_total
	metCompleted *obs.Counter // serve_jobs_completed_total
	metFailed    *obs.Counter // serve_jobs_failed_total
	metInflight  *obs.Gauge   // serve_jobs_inflight (queued + running)
}

// NewStore starts a store with the given worker-pool size and queue
// bound (defaults 2 and 16). The registry may be nil.
func NewStore(workers, queueCap int, runner Runner, reg *obs.Registry) *Store {
	if workers <= 0 {
		workers = 2
	}
	if queueCap <= 0 {
		queueCap = 16
	}
	s := &Store{
		runner:       runner,
		queue:        make(chan *Job, queueCap),
		jobs:         map[string]*Job{},
		metSubmitted: reg.Counter("serve_jobs_submitted_total"),
		metCompleted: reg.Counter("serve_jobs_completed_total"),
		metFailed:    reg.Counter("serve_jobs_failed_total"),
		metInflight:  reg.Gauge("serve_jobs_inflight"),
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s
}

// Submit validates the spec, registers a queued job and hands it to the
// worker pool. The queue send happens under the mutex, so the capacity
// check cannot race with other submitters.
func (s *Store) Submit(spec JobSpec) (JobView, error) {
	if err := spec.Validate(); err != nil {
		return JobView{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobView{}, ErrDraining
	}
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
	}
	select {
	case s.queue <- job:
	default:
		s.nextID--
		return JobView{}, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.metSubmitted.Inc()
	s.metInflight.Add(1)
	return job.view(), nil
}

// runJob executes one dequeued job on a pool worker.
func (s *Store) runJob(job *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s.mu.Lock()
	if job.cancelled {
		// Cancelled while queued: Cancel already marked it failed;
		// nothing to run.
		s.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	s.running++
	s.mu.Unlock()

	onEvent := func(ev JobEvent) {
		s.mu.Lock()
		if job.phase != ev.Phase {
			job.phase = ev.Phase
			job.phases = append(job.phases, PhaseMark{Name: ev.Phase, StartedAt: time.Now()})
		}
		if ev.Total > 0 {
			job.sessions = ev.Sessions
			job.total = ev.Total
		}
		job.notify(ev)
		s.mu.Unlock()
	}
	result, err := s.runner(ctx, job.Spec, onEvent)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.metInflight.Add(-1)
	job.cancel = nil
	job.phase = ""
	job.finished = time.Now()
	defer job.closeSubs()
	switch {
	case err != nil:
		job.state = StateFailed
		if ctx.Err() != nil {
			job.err = "cancelled: " + err.Error()
		} else {
			job.err = err.Error()
		}
		s.metFailed.Inc()
	case result == nil:
		job.state = StateFailed
		job.err = "runner returned no result"
		s.metFailed.Inc()
	default:
		job.state = StateDone
		result.stampKeys(job.ID)
		job.result = result
		s.metCompleted.Inc()
	}
}

// Get returns a snapshot of one job.
func (s *Store) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return job.view(), nil
}

// List returns snapshots of every job in submission order.
func (s *Store) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Report returns the serialized report of a completed job. ErrNotFound
// for unknown IDs; ErrFinished-family semantics are up to the caller —
// a nil slice with nil error means the job exists but has no report
// yet (still queued/running) or failed.
func (s *Store) Report(id string) ([]byte, JobState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, "", ErrNotFound
	}
	if job.result == nil {
		return nil, job.state, nil
	}
	return job.result.ReportJSON, job.state, nil
}

// Subscribe attaches a progress listener to a job, returning a snapshot
// taken at subscription time, the event channel, and an unsubscribe
// function. The channel closes when the job reaches a terminal state;
// for an already-finished job it is returned closed, so consumers see
// the same "drain then re-snapshot" shape either way. Events are
// delivered best-effort: a consumer slower than its 64-event buffer
// loses intermediate ticks, never the close.
func (s *Store) Subscribe(id string) (JobView, <-chan JobEvent, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobView{}, nil, nil, ErrNotFound
	}
	ch := make(chan JobEvent, 64)
	if job.state.Finished() {
		close(ch)
		return job.view(), ch, func() {}, nil
	}
	if job.subs == nil {
		job.subs = map[int]chan JobEvent{}
	}
	job.nextSub++
	key := job.nextSub
	job.subs[key] = ch
	unsub := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, live := job.subs[key]; live {
			delete(job.subs, key)
			close(ch)
		}
	}
	return job.view(), ch, unsub, nil
}

// Cancel stops a job: a queued job is marked failed immediately (the
// pool skips it), a running job has its context cancelled and fails
// once the pipeline observes it. Finished jobs return ErrFinished.
func (s *Store) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	switch job.state {
	case StateQueued:
		job.cancelled = true
		job.state = StateFailed
		job.err = "cancelled before start"
		job.finished = time.Now()
		job.closeSubs()
		s.metFailed.Inc()
		s.metInflight.Add(-1)
	case StateRunning:
		if !job.cancelled {
			job.cancelled = true
			job.cancel()
		}
	default:
		return JobView{}, ErrFinished
	}
	return job.view(), nil
}

// CancelAll cancels every queued and running job (forced shutdown).
func (s *Store) CancelAll() {
	for _, v := range s.List() {
		if !v.State.Finished() {
			_, _ = s.Cancel(v.ID)
		}
	}
}

// Campaigns returns every campaign discovered by completed jobs, in job
// submission order. jobID filters to one job ("" = all).
func (s *Store) Campaigns(jobID string) []CampaignSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []CampaignSummary
	for _, id := range s.order {
		if jobID != "" && id != jobID {
			continue
		}
		if res := s.jobs[id].result; res != nil {
			out = append(out, res.Campaigns...)
		}
	}
	return out
}

// Campaign resolves one campaign by its "<job>/<id>" key.
func (s *Store) Campaign(jobID string, campaignID int) (CampaignSummary, error) {
	for _, c := range s.Campaigns(jobID) {
		if c.ID == campaignID {
			return c, nil
		}
	}
	return CampaignSummary{}, ErrNotFound
}

// Clusters returns every cluster (SE and benign) of completed jobs.
func (s *Store) Clusters(jobID string) []ClusterSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ClusterSummary
	for _, id := range s.order {
		if jobID != "" && id != jobID {
			continue
		}
		if res := s.jobs[id].result; res != nil {
			out = append(out, res.Clusters...)
		}
	}
	return out
}

// Inflight returns the number of jobs not yet in a terminal state.
func (s *Store) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, job := range s.jobs {
		if !job.state.Finished() {
			n++
		}
	}
	return n
}

// Draining reports whether the store has stopped accepting submissions.
func (s *Store) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops intake and waits for the pool to run the queue dry:
// queued and running jobs complete normally. If ctx expires first,
// every unfinished job is cancelled and Drain keeps waiting (the
// pipeline observes cancellation within one virtual tick), returning
// ctx.Err() to record that the drain was forced. Idempotent.
func (s *Store) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.CancelAll()
		<-done
		return ctx.Err()
	}
}
