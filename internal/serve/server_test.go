package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestServer wires a Server around the given runner with a fresh
// registry and registers cleanup that drains the pool.
func newTestServer(t *testing.T, runner Runner) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	srv := New(Config{Workers: 2, QueueCap: 8, Obs: reg, Runner: runner, Version: "test"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainStore(t, srv.Store())
	})
	return srv, ts, reg
}

// do issues a request and returns status + body.
func do(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func decodeView(t *testing.T, b []byte) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("decode job view: %v (%s)", err, b)
	}
	return v
}

func TestAPISubmitAndQuery(t *testing.T) {
	srv, ts, _ := newTestServer(t, instantRunner)

	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"seed": 5, "tiny": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	v := decodeView(t, body)
	if v.ID == "" || v.Spec.Seed != 5 || !v.Spec.Tiny {
		t.Fatalf("submit view = %+v", v)
	}
	waitState(t, srv.Store(), v.ID, StateDone)

	code, body = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID, "")
	if code != http.StatusOK {
		t.Fatalf("get job status %d", code)
	}
	got := decodeView(t, body)
	if got.State != StateDone || got.Campaigns != 1 {
		t.Fatalf("job view = %+v", got)
	}

	code, body = do(t, "GET", ts.URL+"/v1/jobs", "")
	if code != http.StatusOK || !strings.Contains(string(body), v.ID) {
		t.Fatalf("list status %d: %s", code, body)
	}

	code, body = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID+"/report", "")
	if code != http.StatusOK || string(body) != `{"report":"seed-5"}` {
		t.Fatalf("report = %d %q", code, body)
	}

	code, body = do(t, "GET", ts.URL+"/v1/campaigns", "")
	if code != http.StatusOK || !strings.Contains(string(body), v.ID+"/0") {
		t.Fatalf("campaigns = %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/v1/campaigns/"+v.ID+"/0", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"tech_support"`) {
		t.Fatalf("campaign by key = %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/v1/clusters?job="+v.ID, "")
	if code != http.StatusOK || !strings.Contains(string(body), `"se": true`) {
		t.Fatalf("clusters = %d %s", code, body)
	}
}

func TestAPIErrorPaths(t *testing.T) {
	srv, ts, _ := newTestServer(t, instantRunner)

	// Malformed JSON → 400 with a JSON error body.
	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"seed": `)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "bad job spec") {
		t.Fatalf("bad JSON = %d %s", code, body)
	}
	// Unknown fields → 400 (catches client typos like "max_source").
	code, body = do(t, "POST", ts.URL+"/v1/jobs", `{"max_source": 10}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "max_source") {
		t.Fatalf("unknown field = %d %s", code, body)
	}
	// Out-of-range spec → 400 via Validate.
	code, body = do(t, "POST", ts.URL+"/v1/jobs", `{"workers": 100}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "workers") {
		t.Fatalf("invalid spec = %d %s", code, body)
	}
	// Unknown job → 404 everywhere.
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/report", "/v1/campaigns/job-999999/0"} {
		if code, _ := do(t, "GET", ts.URL+path, ""); code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, code)
		}
	}
	if code, _ := do(t, "POST", ts.URL+"/v1/jobs/job-999999/cancel", ""); code != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", code)
	}
	// Non-integer campaign ID → 400.
	if code, _ := do(t, "GET", ts.URL+"/v1/campaigns/job-000001/zero", ""); code != http.StatusBadRequest {
		t.Fatalf("bad campaign id = %d, want 400", code)
	}

	// Cancelling a finished job → 409.
	code, body = do(t, "POST", ts.URL+"/v1/jobs", `{}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	v := decodeView(t, body)
	waitState(t, srv.Store(), v.ID, StateDone)
	if code, _ = do(t, "POST", ts.URL+"/v1/jobs/"+v.ID+"/cancel", ""); code != http.StatusConflict {
		t.Fatalf("cancel finished = %d, want 409", code)
	}
}

func TestAPIReportLifecycle(t *testing.T) {
	br := newBlockingRunner()
	srv, ts, _ := newTestServer(t, br.run)

	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"seed": 3}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	v := decodeView(t, body)
	<-br.started
	waitState(t, srv.Store(), v.ID, StateRunning)

	// Running job: report not ready → 409 + Retry-After.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"/report", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("running report = %d (Retry-After %q)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Cancel over the API: DELETE is an alias for POST .../cancel.
	code, body = do(t, "DELETE", ts.URL+"/v1/jobs/"+v.ID, "")
	if code != http.StatusOK {
		t.Fatalf("DELETE cancel = %d %s", code, body)
	}
	failed := waitState(t, srv.Store(), v.ID, StateFailed)
	if !strings.HasPrefix(failed.Error, "cancelled:") {
		t.Fatalf("cancelled job error = %q", failed.Error)
	}
	// Failed job: report is gone for good → 410.
	if code, _ = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID+"/report", ""); code != http.StatusGone {
		t.Fatalf("failed report = %d, want 410", code)
	}
}

func TestAPIVersionMetricsHealth(t *testing.T) {
	_, ts, _ := newTestServer(t, instantRunner)

	code, body := do(t, "GET", ts.URL+"/v1/version", "")
	if code != http.StatusOK {
		t.Fatalf("version = %d", code)
	}
	var vi struct {
		Service   string `json:"service"`
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(body, &vi); err != nil {
		t.Fatal(err)
	}
	if vi.Service != "seacma-serve" || vi.Version != "test" || !strings.HasPrefix(vi.GoVersion, "go") {
		t.Fatalf("version info = %+v", vi)
	}

	if _, body = do(t, "POST", ts.URL+"/v1/jobs", `{}`); len(body) == 0 {
		t.Fatal("submit returned empty body")
	}
	code, body = do(t, "GET", ts.URL+"/metrics", "")
	if code != http.StatusOK || !strings.Contains(string(body), "serve_jobs_submitted_total") {
		t.Fatalf("metrics JSON = %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/metrics?format=text", "")
	if code != http.StatusOK || !strings.Contains(string(body), "serve_jobs_submitted_total") {
		t.Fatalf("metrics text = %d %s", code, body)
	}

	code, body = do(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", code, body)
	}
}

// eventRunner emits a scripted streaming-progress sequence (the phase
// transitions plus three crawl commit ticks) once released, so SSE
// tests control exactly when events flow.
type eventRunner struct {
	started chan struct{}
	release chan struct{}
}

func (e *eventRunner) run(ctx context.Context, spec JobSpec, onEvent func(JobEvent)) (*JobResult, error) {
	e.started <- struct{}{}
	select {
	case <-e.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	onEvent(JobEvent{Phase: "reverse"})
	onEvent(JobEvent{Phase: "crawl"})
	for i := 1; i <= 3; i++ {
		onEvent(JobEvent{Phase: "crawl", Sessions: i, Total: 3})
	}
	for _, ph := range []string{"discover", "attribute", "milk"} {
		onEvent(JobEvent{Phase: ph})
	}
	return fakeResult(fmt.Sprintf("seed-%d", spec.Seed)), nil
}

type sseEvent struct {
	name string
	data string
}

// readSSE drains a text/event-stream body until EOF (the handler closes
// the stream after its "done" event).
func readSSE(t *testing.T, rd io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(rd)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE stream: %v", err)
	}
	return out
}

// summarizeSSE compresses a decoded event stream into comparable
// "name:detail" strings.
func summarizeSSE(t *testing.T, evs []sseEvent) []string {
	t.Helper()
	var out []string
	for _, e := range evs {
		switch e.name {
		case "phase", "progress":
			var ev JobEvent
			if err := json.Unmarshal([]byte(e.data), &ev); err != nil {
				t.Fatalf("decode %s event %q: %v", e.name, e.data, err)
			}
			if e.name == "phase" {
				out = append(out, "phase:"+ev.Phase)
			} else {
				out = append(out, fmt.Sprintf("progress:%d/%d", ev.Sessions, ev.Total))
			}
		case "done":
			var v JobView
			if err := json.Unmarshal([]byte(e.data), &v); err != nil {
				t.Fatalf("decode done event %q: %v", e.data, err)
			}
			out = append(out, "done:"+string(v.State))
		default:
			t.Fatalf("unexpected SSE event %q (%s)", e.name, e.data)
		}
	}
	return out
}

// TestAPIJobEventsSSE covers the /v1/jobs/{id}/events stream end to
// end: a live subscriber opened before any progress sees every phase
// transition, every per-session crawl tick and the closing done event
// in runner order; a late subscriber to the finished job gets the
// prefix-compressed replay (phase marks, final crawl progress, done).
func TestAPIJobEventsSSE(t *testing.T) {
	er := &eventRunner{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv, ts, _ := newTestServer(t, er.run)

	if code, _ := do(t, "GET", ts.URL+"/v1/jobs/job-999999/events", ""); code != http.StatusNotFound {
		t.Fatalf("events for unknown job = %d, want 404", code)
	}

	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"seed": 7}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	v := decodeView(t, body)
	<-er.started

	// Live stream: subscribe while the job is parked, then release it.
	// The subscription is registered before response headers are written,
	// so once Get returns no event can be missed.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("events = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	close(er.release)
	live := summarizeSSE(t, readSSE(t, resp.Body))
	resp.Body.Close()
	wantLive := []string{
		"phase:reverse", "phase:crawl",
		"progress:1/3", "progress:2/3", "progress:3/3",
		"phase:discover", "phase:attribute", "phase:milk",
		"done:done",
	}
	if fmt.Sprint(live) != fmt.Sprint(wantLive) {
		t.Fatalf("live event sequence:\n got %v\nwant %v", live, wantLive)
	}

	// Replay: a finished job's stream is the recorded phase marks, the
	// final crawl progress, and an immediate done.
	waitState(t, srv.Store(), v.ID, StateDone)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay := summarizeSSE(t, readSSE(t, resp.Body))
	resp.Body.Close()
	wantReplay := []string{
		"phase:reverse", "phase:crawl", "phase:discover", "phase:attribute", "phase:milk",
		"progress:3/3",
		"done:done",
	}
	if fmt.Sprint(replay) != fmt.Sprint(wantReplay) {
		t.Fatalf("replay event sequence:\n got %v\nwant %v", replay, wantReplay)
	}

	// The job view carries the streaming progress fields too.
	final, err := srv.Store().Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Sessions != 3 || final.SessionsTotal != 3 {
		t.Fatalf("final view progress = %d/%d, want 3/3", final.Sessions, final.SessionsTotal)
	}
}

func TestAPIMetricsDisabled(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1, Runner: instantRunner})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer drainStore(t, srv.Store())
	if code, _ := do(t, "GET", ts.URL+"/metrics", ""); code != http.StatusNotFound {
		t.Fatalf("metrics without registry = %d, want 404", code)
	}
}

// TestAPIShutdown covers the graceful-shutdown contract at the HTTP
// layer: during and after drain, submissions get 503 and healthz turns
// unhealthy, while polling and reports keep working.
func TestAPIShutdown(t *testing.T) {
	br := newBlockingRunner()
	reg := obs.New()
	srv := New(Config{Workers: 1, QueueCap: 4, Obs: reg, Runner: br.run})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"seed": 1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	v := decodeView(t, body)
	<-br.started

	waitState(t, srv.Store(), v.ID, StateRunning)
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Store().Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	if code, _ = do(t, "POST", ts.URL+"/v1/jobs", `{"seed": 2}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", code)
	}
	code, body = do(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz during drain = %d %s", code, body)
	}
	// Polling still works mid-drain.
	if code, _ = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID, ""); code != http.StatusOK {
		t.Fatalf("poll during drain = %d", code)
	}

	close(br.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After a graceful drain the in-flight job completed and its report
	// is still queryable.
	if v, _ := srv.Store().Get(v.ID); v.State != StateDone {
		t.Fatalf("job after drain = %q, want done", v.State)
	}
	if code, _ = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID+"/report", ""); code != http.StatusOK {
		t.Fatalf("report after drain = %d", code)
	}
}
