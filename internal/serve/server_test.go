package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestServer wires a Server around the given runner with a fresh
// registry and registers cleanup that drains the pool.
func newTestServer(t *testing.T, runner Runner) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	srv := New(Config{Workers: 2, QueueCap: 8, Obs: reg, Runner: runner, Version: "test"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainStore(t, srv.Store())
	})
	return srv, ts, reg
}

// do issues a request and returns status + body.
func do(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func decodeView(t *testing.T, b []byte) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("decode job view: %v (%s)", err, b)
	}
	return v
}

func TestAPISubmitAndQuery(t *testing.T) {
	srv, ts, _ := newTestServer(t, instantRunner)

	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"seed": 5, "tiny": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	v := decodeView(t, body)
	if v.ID == "" || v.Spec.Seed != 5 || !v.Spec.Tiny {
		t.Fatalf("submit view = %+v", v)
	}
	waitState(t, srv.Store(), v.ID, StateDone)

	code, body = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID, "")
	if code != http.StatusOK {
		t.Fatalf("get job status %d", code)
	}
	got := decodeView(t, body)
	if got.State != StateDone || got.Campaigns != 1 {
		t.Fatalf("job view = %+v", got)
	}

	code, body = do(t, "GET", ts.URL+"/v1/jobs", "")
	if code != http.StatusOK || !strings.Contains(string(body), v.ID) {
		t.Fatalf("list status %d: %s", code, body)
	}

	code, body = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID+"/report", "")
	if code != http.StatusOK || string(body) != `{"report":"seed-5"}` {
		t.Fatalf("report = %d %q", code, body)
	}

	code, body = do(t, "GET", ts.URL+"/v1/campaigns", "")
	if code != http.StatusOK || !strings.Contains(string(body), v.ID+"/0") {
		t.Fatalf("campaigns = %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/v1/campaigns/"+v.ID+"/0", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"tech_support"`) {
		t.Fatalf("campaign by key = %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/v1/clusters?job="+v.ID, "")
	if code != http.StatusOK || !strings.Contains(string(body), `"se": true`) {
		t.Fatalf("clusters = %d %s", code, body)
	}
}

func TestAPIErrorPaths(t *testing.T) {
	srv, ts, _ := newTestServer(t, instantRunner)

	// Malformed JSON → 400 with a JSON error body.
	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"seed": `)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "bad job spec") {
		t.Fatalf("bad JSON = %d %s", code, body)
	}
	// Unknown fields → 400 (catches client typos like "max_source").
	code, body = do(t, "POST", ts.URL+"/v1/jobs", `{"max_source": 10}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "max_source") {
		t.Fatalf("unknown field = %d %s", code, body)
	}
	// Out-of-range spec → 400 via Validate.
	code, body = do(t, "POST", ts.URL+"/v1/jobs", `{"workers": 100}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "workers") {
		t.Fatalf("invalid spec = %d %s", code, body)
	}
	// Unknown job → 404 everywhere.
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/report", "/v1/campaigns/job-999999/0"} {
		if code, _ := do(t, "GET", ts.URL+path, ""); code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, code)
		}
	}
	if code, _ := do(t, "POST", ts.URL+"/v1/jobs/job-999999/cancel", ""); code != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", code)
	}
	// Non-integer campaign ID → 400.
	if code, _ := do(t, "GET", ts.URL+"/v1/campaigns/job-000001/zero", ""); code != http.StatusBadRequest {
		t.Fatalf("bad campaign id = %d, want 400", code)
	}

	// Cancelling a finished job → 409.
	code, body = do(t, "POST", ts.URL+"/v1/jobs", `{}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	v := decodeView(t, body)
	waitState(t, srv.Store(), v.ID, StateDone)
	if code, _ = do(t, "POST", ts.URL+"/v1/jobs/"+v.ID+"/cancel", ""); code != http.StatusConflict {
		t.Fatalf("cancel finished = %d, want 409", code)
	}
}

func TestAPIReportLifecycle(t *testing.T) {
	br := newBlockingRunner()
	srv, ts, _ := newTestServer(t, br.run)

	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"seed": 3}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	v := decodeView(t, body)
	<-br.started
	waitState(t, srv.Store(), v.ID, StateRunning)

	// Running job: report not ready → 409 + Retry-After.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"/report", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("running report = %d (Retry-After %q)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Cancel over the API: DELETE is an alias for POST .../cancel.
	code, body = do(t, "DELETE", ts.URL+"/v1/jobs/"+v.ID, "")
	if code != http.StatusOK {
		t.Fatalf("DELETE cancel = %d %s", code, body)
	}
	failed := waitState(t, srv.Store(), v.ID, StateFailed)
	if !strings.HasPrefix(failed.Error, "cancelled:") {
		t.Fatalf("cancelled job error = %q", failed.Error)
	}
	// Failed job: report is gone for good → 410.
	if code, _ = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID+"/report", ""); code != http.StatusGone {
		t.Fatalf("failed report = %d, want 410", code)
	}
}

func TestAPIVersionMetricsHealth(t *testing.T) {
	_, ts, _ := newTestServer(t, instantRunner)

	code, body := do(t, "GET", ts.URL+"/v1/version", "")
	if code != http.StatusOK {
		t.Fatalf("version = %d", code)
	}
	var vi struct {
		Service   string `json:"service"`
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(body, &vi); err != nil {
		t.Fatal(err)
	}
	if vi.Service != "seacma-serve" || vi.Version != "test" || !strings.HasPrefix(vi.GoVersion, "go") {
		t.Fatalf("version info = %+v", vi)
	}

	if _, body = do(t, "POST", ts.URL+"/v1/jobs", `{}`); len(body) == 0 {
		t.Fatal("submit returned empty body")
	}
	code, body = do(t, "GET", ts.URL+"/metrics", "")
	if code != http.StatusOK || !strings.Contains(string(body), "serve_jobs_submitted_total") {
		t.Fatalf("metrics JSON = %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/metrics?format=text", "")
	if code != http.StatusOK || !strings.Contains(string(body), "serve_jobs_submitted_total") {
		t.Fatalf("metrics text = %d %s", code, body)
	}

	code, body = do(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", code, body)
	}
}

func TestAPIMetricsDisabled(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1, Runner: instantRunner})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer drainStore(t, srv.Store())
	if code, _ := do(t, "GET", ts.URL+"/metrics", ""); code != http.StatusNotFound {
		t.Fatalf("metrics without registry = %d, want 404", code)
	}
}

// TestAPIShutdown covers the graceful-shutdown contract at the HTTP
// layer: during and after drain, submissions get 503 and healthz turns
// unhealthy, while polling and reports keep working.
func TestAPIShutdown(t *testing.T) {
	br := newBlockingRunner()
	reg := obs.New()
	srv := New(Config{Workers: 1, QueueCap: 4, Obs: reg, Runner: br.run})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := do(t, "POST", ts.URL+"/v1/jobs", `{"seed": 1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	v := decodeView(t, body)
	<-br.started

	waitState(t, srv.Store(), v.ID, StateRunning)
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Store().Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	if code, _ = do(t, "POST", ts.URL+"/v1/jobs", `{"seed": 2}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", code)
	}
	code, body = do(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz during drain = %d %s", code, body)
	}
	// Polling still works mid-drain.
	if code, _ = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID, ""); code != http.StatusOK {
		t.Fatalf("poll during drain = %d", code)
	}

	close(br.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After a graceful drain the in-flight job completed and its report
	// is still queryable.
	if v, _ := srv.Store().Get(v.ID); v.State != StateDone {
		t.Fatalf("job after drain = %q, want done", v.State)
	}
	if code, _ = do(t, "GET", ts.URL+"/v1/jobs/"+v.ID+"/report", ""); code != http.StatusOK {
		t.Fatalf("report after drain = %d", code)
	}
}
