package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// fakeResult builds a minimal JobResult so stub runners can exercise the
// done path and the query endpoints.
func fakeResult(tag string) *JobResult {
	return &JobResult{
		Report:     core.Report{},
		ReportJSON: []byte(`{"report":"` + tag + `"}`),
		Campaigns: []CampaignSummary{
			{ID: 0, Category: "tech_support", Attacks: 3, Domains: []string{tag + ".example"}},
		},
		Clusters: []ClusterSummary{
			{ID: 0, SE: true, Category: "tech_support", Pages: 5, Domains: 1},
			{ID: 1, SE: false, Pages: 2, Domains: 2},
		},
	}
}

// instantRunner completes immediately with a fake result.
func instantRunner(ctx context.Context, spec JobSpec, onEvent func(JobEvent)) (*JobResult, error) {
	if onEvent != nil {
		for _, ph := range []string{"reverse", "crawl", "discover", "attribute", "milk"} {
			onEvent(JobEvent{Phase: ph})
		}
	}
	return fakeResult(fmt.Sprintf("seed-%d", spec.Seed)), nil
}

// blockingRunner parks jobs until released (or cancelled), so tests can
// observe queued/running states deterministically.
type blockingRunner struct {
	started chan string   // receives job seeds as they begin running
	release chan struct{} // close to let every parked job finish
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan string, 64), release: make(chan struct{})}
}

func (b *blockingRunner) run(ctx context.Context, spec JobSpec, onEvent func(JobEvent)) (*JobResult, error) {
	b.started <- fmt.Sprintf("seed-%d", spec.Seed)
	select {
	case <-b.release:
		return fakeResult(fmt.Sprintf("seed-%d", spec.Seed)), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Store, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State == want {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, _ := s.Get(id)
	t.Fatalf("job %s stuck in %q, want %q", id, v.State, want)
	return JobView{}
}

// drainStore shuts the pool down and fails the test on leaked workers.
func drainStore(t *testing.T, s *Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestStoreLifecycle(t *testing.T) {
	reg := obs.New()
	s := NewStore(2, 16, instantRunner, reg)
	v, err := s.Submit(JobSpec{Seed: 7, Tiny: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "job-000001" || v.State != StateQueued {
		t.Fatalf("submit view = %q/%q", v.ID, v.State)
	}
	done := waitState(t, s, v.ID, StateDone)
	if done.Campaigns != 1 || done.Clusters != 2 {
		t.Fatalf("done counts = %d campaigns, %d clusters", done.Campaigns, done.Clusters)
	}
	if done.ReportURL != "/v1/jobs/job-000001/report" {
		t.Fatalf("report url = %q", done.ReportURL)
	}
	if len(done.Phases) != 5 || done.Phases[0].Name != "reverse" || done.Phases[4].Name != "milk" {
		t.Fatalf("phase marks = %+v", done.Phases)
	}
	if done.Phase != "" {
		t.Fatalf("finished job still shows active phase %q", done.Phase)
	}

	rep, state, err := s.Report(v.ID)
	if err != nil || state != StateDone || string(rep) != `{"report":"seed-7"}` {
		t.Fatalf("report = %q/%q/%v", rep, state, err)
	}
	camps := s.Campaigns("")
	if len(camps) != 1 || camps[0].Key != "job-000001/0" || camps[0].JobID != "job-000001" {
		t.Fatalf("campaigns = %+v", camps)
	}
	if got := len(s.Clusters(v.ID)); got != 2 {
		t.Fatalf("clusters = %d", got)
	}
	if got := len(s.Clusters("job-999999")); got != 0 {
		t.Fatalf("clusters for unknown job = %d", got)
	}
	if _, err := s.Campaign("job-000001", 42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing campaign err = %v", err)
	}

	if got := reg.CounterValue("serve_jobs_submitted_total"); got != 1 {
		t.Fatalf("submitted counter = %d", got)
	}
	if got := reg.CounterValue("serve_jobs_completed_total"); got != 1 {
		t.Fatalf("completed counter = %d", got)
	}
	if got := reg.Gauge("serve_jobs_inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge = %d", got)
	}
	drainStore(t, s)
}

func TestStoreValidation(t *testing.T) {
	s := NewStore(1, 4, instantRunner, nil)
	defer drainStore(t, s)
	bad := []JobSpec{
		{Seed: -1},
		{Workers: -2},
		{Workers: 65},
		{Days: 61},
		{MaxSources: -1},
		{MaxPublishers: -3},
		{Networks: []string{"ok", ""}},
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v must be rejected", spec)
		}
	}
	if _, err := s.Get("job-000001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rejected specs must not create jobs: %v", err)
	}
}

func TestStoreQueueFull(t *testing.T) {
	br := newBlockingRunner()
	s := NewStore(1, 2, br.run, nil)
	// One running + two queued fills worker and queue. Wait for the
	// worker to dequeue job 1 before filling the queue, so the channel
	// slot it occupied is known-free.
	ids := make([]string, 0, 3)
	v, err := s.Submit(JobSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, v.ID)
	<-br.started // the worker holds job 1; the queue is empty
	for i := 1; i < 3; i++ {
		v, err := s.Submit(JobSpec{Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	if _, err := s.Submit(JobSpec{Seed: 9}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	// The rejected submission must not burn an ID.
	v, err = s.Submit(JobSpec{Seed: 4})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("still-full submit err = %v (view %+v)", err, v)
	}
	close(br.release)
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}
	v, err = s.Submit(JobSpec{Seed: 4})
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	if v.ID != "job-000004" {
		t.Fatalf("rejected submissions leaked IDs: next = %q", v.ID)
	}
	waitState(t, s, v.ID, StateDone)
	drainStore(t, s)
}

func TestStoreCancelRunning(t *testing.T) {
	br := newBlockingRunner()
	reg := obs.New()
	s := NewStore(1, 4, br.run, reg)
	v, err := s.Submit(JobSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-br.started
	waitState(t, s, v.ID, StateRunning)
	if _, err := s.Cancel(v.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	failed := waitState(t, s, v.ID, StateFailed)
	if failed.Error == "" || failed.Error[:10] != "cancelled:" {
		t.Fatalf("cancelled job error = %q, want cancelled: prefix", failed.Error)
	}
	if _, err := s.Cancel(v.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("re-cancel err = %v, want ErrFinished", err)
	}
	if got := reg.CounterValue("serve_jobs_failed_total"); got != 1 {
		t.Fatalf("failed counter = %d", got)
	}
	if rep, state, err := s.Report(v.ID); err != nil || rep != nil || state != StateFailed {
		t.Fatalf("failed job report = %q/%q/%v", rep, state, err)
	}
	drainStore(t, s)
}

func TestStoreCancelQueued(t *testing.T) {
	br := newBlockingRunner()
	reg := obs.New()
	s := NewStore(1, 4, br.run, reg)
	first, _ := s.Submit(JobSpec{Seed: 1})
	<-br.started // worker is parked on job 1
	queued, _ := s.Submit(JobSpec{Seed: 2})
	v, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateFailed || v.Error != "cancelled before start" {
		t.Fatalf("cancelled-queued view = %q/%q", v.State, v.Error)
	}
	close(br.release)
	waitState(t, s, first.ID, StateDone)
	// The worker must skip the cancelled job without re-running it or
	// double-decrementing the inflight gauge.
	if got := reg.Gauge("serve_jobs_inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after skip", got)
	}
	drainStore(t, s)
}

func TestStoreRunnerErrors(t *testing.T) {
	calls := 0
	runner := func(ctx context.Context, spec JobSpec, onEvent func(JobEvent)) (*JobResult, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("synthetic failure")
		}
		return nil, nil // buggy runner: no result, no error
	}
	s := NewStore(1, 4, runner, nil)
	a, _ := s.Submit(JobSpec{})
	v := waitState(t, s, a.ID, StateFailed)
	if v.Error != "synthetic failure" {
		t.Fatalf("error = %q", v.Error)
	}
	b, _ := s.Submit(JobSpec{})
	v = waitState(t, s, b.ID, StateFailed)
	if v.Error != "runner returned no result" {
		t.Fatalf("nil-result error = %q", v.Error)
	}
	drainStore(t, s)
}

// TestStoreConcurrency floods a 2-worker pool with 12 jobs and checks
// that at most two run at once, everything finishes, and the listing
// stays in submission order. Run under -race this also exercises the
// submit/poll/view paths for data races.
func TestStoreConcurrency(t *testing.T) {
	const jobs = 12
	var mu sync.Mutex
	running, maxRunning := 0, 0
	runner := func(ctx context.Context, spec JobSpec, onEvent func(JobEvent)) (*JobResult, error) {
		mu.Lock()
		running++
		if running > maxRunning {
			maxRunning = running
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		running--
		mu.Unlock()
		return fakeResult(fmt.Sprintf("seed-%d", spec.Seed)), nil
	}
	reg := obs.New()
	s := NewStore(2, jobs, runner, reg)

	var wg sync.WaitGroup
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.Submit(JobSpec{Seed: int64(i + 1)})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = v.ID
			// Hammer the read paths while workers churn.
			for j := 0; j < 20; j++ {
				_, _ = s.Get(v.ID)
				_ = s.List()
				_ = s.Inflight()
			}
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id != "" {
			waitState(t, s, id, StateDone)
		}
	}
	if maxRunning > 2 {
		t.Fatalf("pool of 2 ran %d jobs concurrently", maxRunning)
	}
	list := s.List()
	if len(list) != jobs {
		t.Fatalf("listed %d jobs, want %d", len(list), jobs)
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("listing out of submission order: %q before %q", list[i-1].ID, list[i].ID)
		}
	}
	if got := reg.CounterValue("serve_jobs_completed_total"); got != jobs {
		t.Fatalf("completed counter = %d, want %d", got, jobs)
	}
	drainStore(t, s)
}

func TestStoreDrain(t *testing.T) {
	br := newBlockingRunner()
	s := NewStore(2, 8, br.run, nil)
	a, _ := s.Submit(JobSpec{Seed: 1})
	b, _ := s.Submit(JobSpec{Seed: 2})
	<-br.started
	<-br.started

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	// Drain must flip intake off before the pool empties.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("store never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(JobSpec{Seed: 3}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining err = %v, want ErrDraining", err)
	}
	close(br.release) // in-flight jobs complete normally
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		if v, _ := s.Get(id); v.State != StateDone {
			t.Fatalf("job %s = %q after graceful drain, want done", id, v.State)
		}
	}
	// Idempotent: a second drain returns immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("re-drain: %v", err)
	}
}

func TestStoreDrainForced(t *testing.T) {
	br := newBlockingRunner()
	s := NewStore(1, 8, br.run, nil)
	running, _ := s.Submit(JobSpec{Seed: 1})
	<-br.started
	queued, _ := s.Submit(JobSpec{Seed: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err = %v, want DeadlineExceeded", err)
	}
	// Both jobs were cancelled: the running one through its context, the
	// queued one before it started.
	v := waitState(t, s, running.ID, StateFailed)
	if v.Error[:10] != "cancelled:" {
		t.Fatalf("running job error = %q", v.Error)
	}
	v = waitState(t, s, queued.ID, StateFailed)
	if v.Error != "cancelled before start" {
		t.Fatalf("queued job error = %q", v.Error)
	}
}

// TestStoreNoGoroutineLeaks verifies a full submit/run/cancel/drain
// cycle leaves no pool or pipeline goroutines behind.
func TestStoreNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	br := newBlockingRunner()
	s := NewStore(4, 8, br.run, obs.New())
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(JobSpec{Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		<-br.started
	}
	close(br.release)
	drainStore(t, s)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
}
