package serve

import (
	"bytes"
	"context"
	"testing"

	"repro"
	"repro/internal/obs"
)

// TestJobReportMatchesOneShot is the service-mode determinism contract:
// for the same spec, a job's report (the bytes /v1/jobs/{id}/report
// serves) is byte-identical to the one-shot library/CLI run — at one
// worker AND at eight, and regardless of cache warmth from earlier jobs
// on the same daemon.
func TestJobReportMatchesOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs")
	}
	base := JobSpec{Tiny: true, Seed: 1, Days: 1, MaxSources: 40}

	// One-shot reference: cold caches, no sharing.
	exp := seacma.NewExperiment(SpecExperimentConfig(base))
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.Report().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	// One owner for both jobs: the second run hits caches warmed by the
	// first, which must not change a single byte.
	owner := NewPipelineOwner(obs.New())
	for _, workers := range []int{1, 8} {
		spec := base
		spec.Workers = workers
		jr, err := owner.Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(jr.ReportJSON, want.Bytes()) {
			t.Errorf("workers=%d: job report diverges from one-shot (%d vs %d bytes)",
				workers, len(jr.ReportJSON), want.Len())
		}
		if len(jr.Campaigns) == 0 {
			t.Errorf("workers=%d: no campaign summaries", workers)
		}
	}
}

// TestRunnerCancellation submits the real pipeline with an
// already-cancelled context and verifies it aborts with a context error
// instead of completing.
func TestRunnerCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	owner := NewPipelineOwner(obs.New())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := owner.Run(ctx, JobSpec{Tiny: true, Seed: 1, Days: 1, MaxSources: 40}, nil); err == nil {
		t.Fatal("cancelled run must not succeed")
	}
}

// TestRunnerUnknownNetwork verifies a typoed network name fails fast.
func TestRunnerUnknownNetwork(t *testing.T) {
	owner := NewPipelineOwner(obs.New())
	_, err := owner.Run(context.Background(), JobSpec{Tiny: true, Networks: []string{"no-such-net"}}, nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("no-such-net")) {
		t.Fatalf("unknown network err = %v", err)
	}
}
