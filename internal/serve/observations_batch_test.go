package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campstore"
	"repro/internal/obs"
	"repro/internal/phash"
)

// TestObservationsBatchAppend covers the JSON-array form of POST
// /v1/observations: per-event results in input order, whole-batch
// validation (nothing appended on a bad entry), same-world addressing,
// and interop with the single-object form.
func TestObservationsBatchAppend(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1, Obs: obs.New()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer drainStore(t, srv.Store())

	post := func(body string) (int, []byte) {
		t.Helper()
		return do(t, "POST", ts.URL+"/v1/observations", body)
	}
	base := phash.Hash{Hi: 0xabcd, Lo: 0x1234}
	tick := time.Unix(1700000000, 0).UTC()
	entry := func(h phash.Hash, e2ld string) string {
		return fmt.Sprintf(`{"seed":9,"tiny":true,"hash":%q,"e2ld":%q,"tick":%q}`,
			h.String(), e2ld, tick.Format(time.RFC3339Nano))
	}

	// A batch with an internal duplicate: per-event results must track
	// input order, and the duplicate resolves to the first copy's seq.
	code, b := post("[" + strings.Join([]string{
		entry(base, "a.example"),
		entry(base.FlipBits(0), "b.example"),
		entry(base, "a.example"), // duplicate of the first
	}, ",") + "]")
	if code != 200 {
		t.Fatalf("batch append = %d %s", code, b)
	}
	var br batchAppendResponse
	if err := json.Unmarshal(b, &br); err != nil {
		t.Fatal(err)
	}
	if br.World != "world-9-tiny" || len(br.Results) != 3 {
		t.Fatalf("batch response = %+v", br)
	}
	if br.Results[0].Seq != 1 || br.Results[0].Duplicate || !br.Results[0].NewPoint || !br.Results[0].NewHash {
		t.Fatalf("result 0 = %+v", br.Results[0])
	}
	if br.Results[1].Seq != 2 || br.Results[1].Duplicate || !br.Results[1].NewHash {
		t.Fatalf("result 1 = %+v", br.Results[1])
	}
	if br.Results[2].Seq != 1 || !br.Results[2].Duplicate {
		t.Fatalf("result 2 = %+v", br.Results[2])
	}

	// Replaying one of them through the single-object form is a
	// duplicate of the same log: both forms share the store.
	code, b = post(entry(base.FlipBits(0), "b.example"))
	if code != 200 {
		t.Fatalf("single append = %d %s", code, b)
	}
	var ar appendResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Duplicate || ar.Seq != 2 {
		t.Fatalf("single after batch = %+v", ar)
	}

	// Whole-batch validation: a bad entry rejects the batch before
	// anything is appended, and mixed worlds are refused.
	count := func() int {
		code, b := do(t, "GET", ts.URL+"/v1/observations?world=world-9-tiny&limit=1000", "")
		if code != 200 {
			t.Fatalf("read = %d %s", code, b)
		}
		var page struct {
			Total int `json:"total"`
		}
		if err := json.Unmarshal(b, &page); err != nil {
			t.Fatal(err)
		}
		return page.Total
	}
	before := count()
	for name, body := range map[string]string{
		"empty batch":   `[]`,
		"bad hash":      `[` + entry(base.FlipBits(1), "c.example") + `,{"seed":9,"tiny":true,"hash":"zz","e2ld":"d.example"}]`,
		"crawl source":  fmt.Sprintf(`[{"seed":9,"tiny":true,"hash":%q,"e2ld":"e.example","source":"crawl"}]`, base.String()),
		"mixed worlds":  `[` + entry(base.FlipBits(2), "f.example") + `,` + strings.Replace(entry(base.FlipBits(3), "g.example"), `"seed":9`, `"seed":8`, 1) + `]`,
		"unknown field": `[{"seed":9,"tiny":true,"hash":"00","e2ld":"h.example","nope":1}]`,
	} {
		if code, b := post(body); code != 400 {
			t.Fatalf("%s = %d %s", name, code, b)
		}
	}
	if after := count(); after != before {
		t.Fatalf("rejected batches appended events: %d -> %d", before, after)
	}
}

// TestConcurrentObservationIngest fires several HTTP batch appenders at
// one world while readers poll /v1/observations and /v1/campaigns, then
// checks dedup collapsed the shared stream and the store still matches
// the batch-recompute oracle. Run under -race by make test-race.
func TestConcurrentObservationIngest(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1, Obs: obs.New()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer drainStore(t, srv.Store())

	base := phash.Hash{Hi: 1 << 30, Lo: 1 << 50}
	tick := time.Unix(1700000000, 0).UTC()
	var entries []string
	for c := 0; c < 3; c++ {
		for i := 0; i < 20; i++ {
			h := base.FlipBits(40*c, 40*c+1+i%10)
			entries = append(entries, fmt.Sprintf(`{"world":"load","hash":%q,"e2ld":"c%dd%d.example","tick":%q}`,
				h.String(), c, i%5, tick.Add(time.Duration(i)*time.Second).Format(time.RFC3339Nano)))
		}
	}

	stop := make(chan struct{})
	var readWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				do(t, "GET", ts.URL+"/v1/observations?world=load&limit=50", "")
				do(t, "GET", ts.URL+"/v1/campaigns", "")
			}
		}()
	}

	const appenders = 4
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(shift int) {
			defer wg.Done()
			// Shifted batches of 8 over the same shared entry set, so
			// concurrent tranches collide on dedup and hash claims.
			for off := 0; off < len(entries); off += 8 {
				end := off + 8
				if end > len(entries) {
					end = len(entries)
				}
				batch := make([]string, 0, end-off)
				for i := off; i < end; i++ {
					batch = append(batch, entries[(i+shift)%len(entries)])
				}
				code, b := do(t, "POST", ts.URL+"/v1/observations", "["+strings.Join(batch, ",")+"]")
				if code != 200 {
					t.Errorf("batch append = %d %s", code, b)
					return
				}
			}
		}(a * 13)
	}
	wg.Wait()
	close(stop)
	readWG.Wait()

	st := srv.owner.world("load", false)
	if st == nil {
		t.Fatal("world store missing after ingest")
	}
	if got, want := st.EventCount(), len(entries); got != want {
		t.Fatalf("EventCount = %d, want %d (dedup across concurrent batches)", got, want)
	}
	if err := st.RunOracle(); err != nil {
		t.Fatalf("oracle after concurrent HTTP ingest: %v", err)
	}
}

// TestServeIngestLoad is the canned ingest load `make profile-serve`
// records mutex/block profiles of: sustained concurrent batch appends
// plus snapshot reads against one daemon store. It doubles as a
// correctness check (oracle at the end), so it also runs in plain go
// test.
func TestServeIngestLoad(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1, Obs: obs.New()})
	defer drainStore(t, srv.Store())
	owner := srv.owner
	st := owner.world("profile", true)

	base := phash.Hash{Hi: 0x5a5a, Lo: 0xa5a5}
	tick := time.Unix(1700000000, 0).UTC()
	const (
		writers = 4
		rounds  = 40
		batch   = 12
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				events := make([]campstore.Event, batch)
				for i := range events {
					// Half the stream is shared across writers (dedup +
					// claim contention), half is writer-private growth.
					c := (r*batch + i) % 7
					h := base.FlipBits(18*c%phash.Bits, (18*c+1+i%9)%phash.Bits)
					dom := fmt.Sprintf("c%dd%d.example", c, i%4)
					if i%2 == 1 {
						h = h.FlipBits((w * 29) % phash.Bits)
						dom = fmt.Sprintf("w%d-%s", w, dom)
					}
					events[i] = campstore.Event{Hash: h, E2LD: dom,
						Tick: tick.Add(time.Duration(r) * time.Minute)}
				}
				if _, err := st.AppendBatch(events); err != nil {
					t.Errorf("load append: %v", err)
					return
				}
				st.Events(uint64(r*batch/2), 64)
				st.LiveLabels()
				st.Stats()
			}
		}(w)
	}
	wg.Wait()
	if err := st.RunOracle(); err != nil {
		t.Fatalf("oracle after ingest load: %v", err)
	}
	if st.EventCount() == 0 || st.Points() == 0 {
		t.Fatal("load produced no events")
	}
}
