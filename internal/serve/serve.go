// Package serve turns the one-shot SEACMA pipeline into a long-running
// campaign-intelligence service: an async job engine plus an HTTP/JSON
// API.
//
// The daemon owns one pipeline context for its whole lifetime — a
// shared content-addressed capture cache, a shared compile-once
// ad-script program cache, and one obs registry — and runs every
// submitted analysis as an addressable, cancellable job on a bounded
// worker pool:
//
//	POST /v1/jobs                submit a job spec, get a job ID
//	GET  /v1/jobs                list jobs
//	GET  /v1/jobs/{id}           phase-level progress / state
//	POST /v1/jobs/{id}/cancel    cancel a queued or running job
//	GET  /v1/jobs/{id}/report    the run's report JSON (byte-identical
//	                             to the one-shot CLI output)
//	GET  /v1/campaigns[/{job}/{id}]  discovered SE campaigns
//	GET  /v1/clusters            all clusters (SE and benign)
//	GET  /v1/version             build information
//	GET  /metrics                obs registry snapshot (JSON or text)
//	GET  /healthz                liveness / drain state
//
// Determinism is preserved end to end: a job's report JSON is
// byte-identical to the one-shot seacma-report run on the same seed and
// configuration, for any worker count, because the job runner pins the
// crawl farm to one worker and only parallelizes the stages whose
// output is proven byte-identical across counts.
package serve

import "repro/internal/obs"

// Config assembles a Server.
type Config struct {
	// Workers is the job worker-pool size (default 2): how many
	// submitted jobs run concurrently.
	Workers int
	// QueueCap bounds the number of queued-but-not-running jobs
	// (default 16); submissions beyond it are refused with 503.
	QueueCap int
	// Obs is the daemon's registry, shared by every job and exported at
	// /metrics. Nil disables instrumentation (the API still works).
	Obs *obs.Registry
	// Runner executes one job. Nil selects the real pipeline runner
	// (NewPipelineOwner(Obs).Run), which also owns the per-world
	// incremental campaign stores behind /v1/observations and the live
	// /v1/campaigns view; tests inject stubs (and lose those routes).
	Runner Runner
	// OracleEvery forwards to every world campaign store: run the full
	// batch-recompute clustering oracle after every N non-duplicate
	// observations, failing the append on divergence (0 = never).
	OracleEvery int
	// Version is reported by /v1/version (default "dev").
	Version string
}
