package core

import (
	"sync"
	"testing"

	"repro/internal/crawler"
	"repro/internal/obs"
	"repro/internal/phash"
)

// Regression: SEAttackCount used to dereference r.Discovery without the
// nil guard IsSE/IsSEDomain have, panicking on a discovery-less run.
func TestSEAttackCountNilDiscovery(t *testing.T) {
	r := &RunResult{}
	if got := r.SEAttackCount(); got != 0 {
		t.Fatalf("SEAttackCount with nil Discovery = %d, want 0", got)
	}
	// The sibling accessors stay nil-safe too.
	if r.IsSE(LandingRef{}) {
		t.Fatalf("IsSE with nil Discovery = true")
	}
	if r.IsSEDomain("example.com") {
		t.Fatalf("IsSEDomain with nil Discovery = true")
	}
}

func testDiscovery() *DiscoveryResult {
	obs := []Observation{
		{Hash: phash.Hash{Hi: 1}, E2LD: "a.com", Refs: []LandingRef{{0, 0}}},
		{Hash: phash.Hash{Hi: 1}, E2LD: "b.com", Refs: []LandingRef{{0, 1}, {1, 0}}},
	}
	return &DiscoveryResult{
		Observations: obs,
		Clusters: []*DiscoveredCampaign{{
			ID: 0, Rep: phash.Hash{Hi: 1}, Members: []int{0, 1},
			Domains: []string{"a.com", "b.com"}, Category: CatFakeSoftware,
		}},
	}
}

// The lazy IsSE/IsSEDomain caches must be safe under concurrent
// readers (run with -race to exercise).
func TestRunResultConcurrentQueries(t *testing.T) {
	r := &RunResult{Discovery: testDiscovery()}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !r.IsSE(LandingRef{Session: 0, Landing: 0}) {
					t.Error("IsSE = false for campaign member")
					return
				}
				if !r.IsSEDomain("a.com") {
					t.Error("IsSEDomain(a.com) = false")
					return
				}
				if r.IsSEDomain("benign.com") {
					t.Error("IsSEDomain(benign.com) = true")
					return
				}
				if got := r.SEAttackCount(); got != 3 {
					t.Errorf("SEAttackCount = %d, want 3", got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Discover reports its work into the registry: observations, DBSCAN
// distance calls, cluster and θc-filter counts.
func TestDiscoverReportsMetrics(t *testing.T) {
	mkLanding := func(h phash.Hash, e2ld string) crawler.Landing {
		return crawler.Landing{Hash: h, Hashed: true, E2LD: e2ld}
	}
	// One visually identical template on 5 domains (passes θc=3 below)
	// plus two noise pages ≥ 64 Hamming bits from everything else (eps
	// is 12 bits).
	tpl := phash.Hash{}
	noise1 := phash.Hash{Hi: ^uint64(0)}
	noise2 := phash.Hash{Lo: ^uint64(0)}
	sessions := []*crawler.Session{{
		Landings: []crawler.Landing{
			mkLanding(tpl, "a.com"), mkLanding(tpl, "b.com"), mkLanding(tpl, "c.com"),
			mkLanding(tpl, "d.com"), mkLanding(tpl, "e.com"),
			mkLanding(noise1, "x.com"), mkLanding(noise2, "y.com"),
		},
	}}
	reg := obs.New()
	res, err := Discover(sessions, DiscoveryParams{
		Cluster:    PaperDiscoveryParams.Cluster,
		MinDomains: 3,
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(res.Clusters))
	}
	if got := reg.CounterValue("discovery_observations_total"); got != 7 {
		t.Fatalf("observations counter = %d, want 7", got)
	}
	if got := reg.CounterValue("discovery_distance_calls_total"); got == 0 {
		t.Fatalf("distance calls counter = 0, want > 0")
	}
	if got := reg.CounterValue("discovery_clusters_kept_total"); got != 1 {
		t.Fatalf("clusters kept counter = %d, want 1", got)
	}
	if got := reg.CounterValue("discovery_noise_points_total"); got != 2 {
		t.Fatalf("noise counter = %d, want 2", got)
	}
}
