// Package core implements the paper's contribution: the SEACMA
// discovery-and-tracking pipeline of Figure 2.
//
//	seed ad networks ① → publisher websites ② → crawler farm ③ →
//	screenshots/perceptual hashes ④ → clustering ⑤ → campaign tracking
//	(milking) ⑥ → ad attribution & new-network discovery ⑦
//
// The pipeline only consumes the measurement-side interfaces of the
// synthetic web (transport, search engine, GSB lookups, VT submissions)
// — never the simulator's ground truth, which lives in worldgen and is
// used exclusively by the evaluation code to score pipeline output.
package core

import (
	"fmt"
	"sort"

	"repro/internal/urlx"
	"repro/internal/webtx"
)

// Category is the pipeline's SE-attack taxonomy — the Table 1 rows. The
// values double as GSB category keys.
type Category string

const (
	CatFakeSoftware  Category = "fake-software"
	CatRegistration  Category = "registration"
	CatLottery       Category = "lottery"
	CatNotifications Category = "chrome-notifications"
	CatScareware     Category = "scareware"
	CatTechSupport   Category = "tech-support"
	// CatBenign marks clusters triaged as non-SEACMA.
	CatBenign Category = "benign"
	// CatUnknownSE marks clusters that look like SE attacks but match no
	// known category signature.
	CatUnknownSE Category = "unknown-se"
)

// AllSECategories lists the SE categories in Table 1 row order.
var AllSECategories = []Category{
	CatFakeSoftware, CatRegistration, CatLottery,
	CatNotifications, CatScareware, CatTechSupport,
}

// DisplayName returns the Table 1 row label.
func (c Category) DisplayName() string {
	switch c {
	case CatFakeSoftware:
		return "Fake Software"
	case CatRegistration:
		return "Registration"
	case CatLottery:
		return "Lottery/Gift"
	case CatNotifications:
		return "Chrome Notifications"
	case CatScareware:
		return "Scareware"
	case CatTechSupport:
		return "Technical Support"
	case CatBenign:
		return "Benign"
	case CatUnknownSE:
		return "Unknown SE"
	default:
		return string(c)
	}
}

// SeedNetwork is one entry of the analyst-curated seed list: the network
// name and its invariant features (Section 3.1). In the paper these are
// derived manually in ~15 minutes per network; here the analyst knowledge
// is captured as data.
type SeedNetwork struct {
	Name string
	// Patterns are the invariant URL/source features.
	Patterns []urlx.Pattern
	// SearchSnippet reverses the network into publisher lists.
	SearchSnippet string
	// ResidentialRequired marks networks known (from pilot experiments)
	// to cloak from non-residential IP space.
	ResidentialRequired bool
}

// PublisherGroup is a crawl partition: the paper crawled
// Propeller/Clickadu publishers from residential lines and the rest from
// the institutional network (Section 4.1).
type PublisherGroup struct {
	Hosts    []string
	ClientIP webtx.IPClass
}

// GroupPublishers splits a publisher -> networks mapping into the
// institutional and residential crawl groups.
func GroupPublishers(byHost map[string][]string, seeds []SeedNetwork) (institutional, residential PublisherGroup) {
	needRes := map[string]bool{}
	for _, s := range seeds {
		if s.ResidentialRequired {
			needRes[s.Name] = true
		}
	}
	institutional.ClientIP = webtx.IPInstitutional
	residential.ClientIP = webtx.IPResidential
	for host, nets := range byHost {
		res := false
		for _, n := range nets {
			if needRes[n] {
				res = true
				break
			}
		}
		if res {
			residential.Hosts = append(residential.Hosts, host)
		} else {
			institutional.Hosts = append(institutional.Hosts, host)
		}
	}
	sort.Strings(institutional.Hosts)
	sort.Strings(residential.Hosts)
	return
}

// Errorf wraps pipeline errors with a stable prefix.
func Errorf(format string, args ...any) error {
	return fmt.Errorf("seacma: "+format, args...)
}
