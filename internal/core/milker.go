package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adscript"
	"repro/internal/browser"
	"repro/internal/btgraph"
	"repro/internal/crawler"
	"repro/internal/devtools"
	"repro/internal/gsb"
	"repro/internal/obs"
	"repro/internal/phash"
	"repro/internal/phonebl"
	"repro/internal/screenshot"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/vtsim"
	"repro/internal/webtx"
)

// MilkSource is one (upstream URL, user agent) milking pair — the
// paper's 505 milking sources (Section 4.2).
type MilkSource struct {
	URL      string
	UA       webtx.UserAgent
	ClientIP webtx.IPClass
	// CampaignID indexes the discovered campaign the source tracks.
	CampaignID int
	// Category is the campaign's triaged category.
	Category Category
	// RepHash is the campaign's representative screenshot hash, used to
	// verify that milked pages still belong to the campaign.
	RepHash phash.Hash
}

// ExtractMilkingSources walks every SE cluster's backtracking graphs and
// collects candidate (upstream URL, UA) pairs (Section 3.5): the first
// off-domain URLs upstream of each attack page.
func ExtractMilkingSources(sessions []*crawler.Session, disc *DiscoveryResult) []MilkSource {
	graphs := map[int]*btgraph.Graph{}
	graphFor := func(si int) *btgraph.Graph {
		if g, ok := graphs[si]; ok {
			return g
		}
		g := btgraph.FromEvents(sessions[si].Events)
		graphs[si] = g
		return g
	}
	seen := map[string]bool{}
	var out []MilkSource
	for _, c := range disc.Campaigns() {
		for _, m := range c.Members {
			obs := disc.Observations[m]
			for _, ref := range obs.Refs {
				s := sessions[ref.Session]
				l := s.Landings[ref.Landing]
				g := graphFor(ref.Session)
				cands, err := g.MilkingCandidates(l.URL.String())
				if err != nil {
					continue
				}
				for _, cand := range cands {
					key := cand + "|" + s.UserAgent.Name
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, MilkSource{
						URL:        cand,
						UA:         s.UserAgent,
						ClientIP:   s.ClientIP,
						CampaignID: c.ID,
						Category:   c.Category,
						RepHash:    c.Rep,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].URL != out[j].URL {
			return out[i].URL < out[j].URL
		}
		return out[i].UA.Name < out[j].UA.Name
	})
	return out
}

// MilkerConfig tunes the tracking experiment (Sections 3.5 and 4.2).
type MilkerConfig struct {
	// MilkInterval is the per-source revisit period (paper: 15 minutes).
	MilkInterval time.Duration
	// GSBInterval is the blacklist polling period (paper: 30 minutes).
	GSBInterval time.Duration
	// Duration is the milking horizon (paper: 14 days).
	Duration time.Duration
	// GSBExtra extends blacklist polling past the milking horizon
	// (paper: 12 more days).
	GSBExtra time.Duration
	// FinalLookupAfter schedules the last blacklist sweep (paper: 2
	// months after milking ended).
	FinalLookupAfter time.Duration
	// VerifyBits is the maximum dhash distance for a milked page to count
	// as the same campaign (the clustering eps expressed in bits).
	VerifyBits int
	// ViewportScale reduces screenshot resolution.
	ViewportScale int
	// MaxSources bounds the number of sources (0 = no bound).
	MaxSources int
	// Workers is the number of concurrent milking sessions per virtual
	// tick (default 8). Sessions due at the same virtual instant fan out
	// across the pool for the order-independent half of the work
	// (navigation, rendering, hashing) and are committed serially in
	// source order, so every result is byte-identical for any value.
	Workers int
	// Obs receives milking metrics (milk requests, new domains, GSB
	// polls, VT submissions — totals plus per-virtual-hour series).
	// Nil = no-op.
	Obs *obs.Registry
	// Capture is the shared content-addressed capture cache consulted by
	// probe screenshots. Milking revisits the same sources every
	// MilkInterval while noise seeds rotate hourly, so most probe
	// captures are repeats; verify hashes are byte-identical with or
	// without the cache. Nil disables memoization.
	Capture *screenshot.Cache
	// Scripts is the shared compile-once program cache: milking runs the
	// same campaign scripts hundreds of thousands of times, so parsing
	// each source once dominates. API-call traces are byte-identical with
	// or without it. Nil parses per script run.
	Scripts *adscript.ProgramCache
}

// PaperMilkerConfig is the published setup.
func PaperMilkerConfig() MilkerConfig {
	return MilkerConfig{
		MilkInterval:     15 * time.Minute,
		GSBInterval:      30 * time.Minute,
		Duration:         14 * 24 * time.Hour,
		GSBExtra:         12 * 24 * time.Hour,
		FinalLookupAfter: 60 * 24 * time.Hour,
		VerifyBits:       12,
		ViewportScale:    4,
		Workers:          8,
	}
}

func (c *MilkerConfig) fillDefaults() {
	p := PaperMilkerConfig()
	if c.MilkInterval == 0 {
		c.MilkInterval = p.MilkInterval
	}
	if c.GSBInterval == 0 {
		c.GSBInterval = p.GSBInterval
	}
	if c.Duration == 0 {
		c.Duration = p.Duration
	}
	if c.GSBExtra == 0 {
		c.GSBExtra = p.GSBExtra
	}
	if c.FinalLookupAfter == 0 {
		c.FinalLookupAfter = p.FinalLookupAfter
	}
	if c.VerifyBits == 0 {
		c.VerifyBits = p.VerifyBits
	}
	if c.ViewportScale == 0 {
		c.ViewportScale = p.ViewportScale
	}
	if c.Workers == 0 {
		c.Workers = p.Workers
	}
}

// MilkedDomain is one never-before-seen attack domain harvested by
// milking.
type MilkedDomain struct {
	Host       string
	Category   Category
	CampaignID int
	FirstSeen  time.Time
	// GSBInit reports whether the domain was already blacklisted when
	// milking first reached it.
	GSBInit bool
	// GSBListedAt is when polling first saw the domain listed (zero if
	// never during polling).
	GSBListedAt time.Time
	// GSBFinal reports the final-lookup verdict.
	GSBFinal bool
}

// MilkedFile is one binary collected during milking.
type MilkedFile struct {
	SHA256     string
	Category   Category
	CampaignID int
	Known      bool // previously known to the scan service
	Initial    vtsim.Report
	Final      vtsim.Report
}

// MilkingResult aggregates a tracking run.
type MilkingResult struct {
	Sources       int
	Sessions      int
	VerifiedMatch int // sessions whose screenshot matched the campaign
	Domains       []MilkedDomain
	Files         []MilkedFile
	// Phones is the scam-phone-number blacklist harvested in real time
	// from tech-support landing pages (Section 4.3's defensive output).
	Phones *phonebl.Blacklist
	// Start/End bound the milking window.
	Start, End time.Time
}

// GSBLags returns the birth→listing lags observed by polling.
func (r *MilkingResult) GSBLags() []time.Duration {
	var out []time.Duration
	for _, d := range r.Domains {
		if !d.GSBListedAt.IsZero() {
			out = append(out, d.GSBListedAt.Sub(d.FirstSeen))
		}
	}
	return out
}

// MeanGSBLag returns the mean polling-observed lag (0 when none).
func (r *MilkingResult) MeanGSBLag() time.Duration {
	lags := r.GSBLags()
	if len(lags) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range lags {
		sum += l
	}
	return sum / time.Duration(len(lags))
}

// Milker runs the tracking experiment.
type Milker struct {
	internet *webtx.Internet
	clock    *vclock.Clock
	gsb      *gsb.Blacklist
	vt       *vtsim.Service
	cfg      MilkerConfig
	met      milkMetrics
	// start anchors the per-virtual-hour metric series; set by Run.
	start time.Time

	// The probe worker pool is persistent: started lazily on the first
	// multi-worker fan-out and fed over jobs until Close. Spawning
	// goroutines per batch was pure churn — a 14-day milking run issues
	// ~1300 batches, and on small batches the spawn cost outweighed the
	// work, making W8 slower than W1.
	poolOnce  sync.Once
	closeOnce sync.Once
	jobs      chan milkJob
}

// milkJob is one probe batch broadcast to the persistent pool: every
// participating worker pulls indices from the shared counter and writes
// results positionally, so batch order never depends on scheduling.
// Broadcasting the batch (one channel send per worker) instead of
// enqueueing per probe keeps each worker running probes back to back —
// per-probe handoffs interleave every worker's in-flight session state,
// which on few-core hosts costs more in cache misses and GC scanning
// than the probes themselves.
type milkJob struct {
	idxs    []int
	sources []MilkSource
	seen    map[string]bool
	out     []milkProbe
	next    *atomic.Int64
	wg      *sync.WaitGroup
}

// milkMetrics are the milker's pre-resolved handles; all nil when
// cfg.Obs is nil.
type milkMetrics struct {
	milks      *obs.Counter // milker_milks_total: milk requests issued
	newDomains *obs.Counter // milker_new_domains_total
	gsbPolls   *obs.Counter // milker_gsb_polls_total: blacklist lookups
	vtSubmits  *obs.Counter // milker_vt_submissions_total
	verified   *obs.Counter // milker_verified_match_total
}

// NewMilker builds a Milker.
func NewMilker(internet *webtx.Internet, clock *vclock.Clock, bl *gsb.Blacklist, vt *vtsim.Service, cfg MilkerConfig) *Milker {
	cfg.fillDefaults()
	return &Milker{internet: internet, clock: clock, gsb: bl, vt: vt, cfg: cfg, met: milkMetrics{
		milks:      cfg.Obs.Counter("milker_milks_total"),
		newDomains: cfg.Obs.Counter("milker_new_domains_total"),
		gsbPolls:   cfg.Obs.Counter("milker_gsb_polls_total"),
		vtSubmits:  cfg.Obs.Counter("milker_vt_submissions_total"),
		verified:   cfg.Obs.Counter("milker_verified_match_total"),
	}}
}

// hourly returns the per-virtual-hour series counter for name: the same
// metric labeled with the whole virtual hours elapsed since milking
// began, so a 14-day run exports its throughput evolution. Returns nil
// (no-op) when observability is off.
func (m *Milker) hourly(name string, now time.Time) *obs.Counter {
	if m.cfg.Obs == nil {
		return nil
	}
	vh := int(now.Sub(m.start) / time.Hour)
	if vh < 0 {
		vh = 0
	}
	return m.cfg.Obs.Counter(name, fmt.Sprintf("vhour=%03d", vh))
}

// VerifySources runs the pilot check of Section 4.2: each candidate is
// visited once — across the worker pool — and kept only if it leads to
// a page whose screenshot matches its campaign. Candidates are filtered
// in input order with the MaxSources cap applied to the ordered result,
// so the kept set is independent of the worker count.
func (m *Milker) VerifySources(cands []MilkSource) []MilkSource {
	m.cfg.Obs.Counter("milker_verify_visits_total").Add(int64(len(cands)))
	idxs := make([]int, len(cands))
	for i := range idxs {
		idxs[i] = i
	}
	probes := m.fanOut(idxs, cands, nil)
	var out []MilkSource
	for i, p := range probes {
		if m.cfg.MaxSources > 0 && len(out) >= m.cfg.MaxSources {
			break
		}
		if p.ok && p.hashed && phash.Distance(p.hash, cands[i].RepHash) <= m.cfg.VerifyBits {
			out = append(out, cands[i])
		}
	}
	return out
}

// milkProbe is the parallel half of one milking session: navigation,
// rendering and hashing — work whose outcome depends only on the source
// and the (frozen, same-tick) virtual clock, never on sibling sessions.
type milkProbe struct {
	ok     bool // navigation landed on an off-source OK page
	host   string
	client *devtools.Client
	tab    *browser.Tab
	hash   phash.Hash
	hashed bool // screenshot hash computed (host unseen at probe time)
}

// probe loads a milking source. seen (read-only during a probe wave; nil
// to always hash) skips screenshot work for hosts already discovered
// before this tick — the dominant case in steady-state milking.
func (m *Milker) probe(src MilkSource, seen map[string]bool) milkProbe {
	var p milkProbe
	client := devtools.NewClient(m.internet, m.clock, devtools.ClientConfig{
		UserAgent: src.UA, ClientIP: src.ClientIP,
		StealthPatch: true, DialogBypass: true,
		DeviceEmulation: src.UA.Mobile,
		ViewportScale:   m.cfg.ViewportScale,
		Capture:         m.cfg.Capture,
		Scripts:         m.cfg.Scripts,
	})
	tab, err := client.Navigate(src.URL)
	if err != nil || tab.Status != webtx.StatusOK || tab.Doc == nil {
		return p
	}
	srcURL, err := urlx.Parse(src.URL)
	if err != nil || tab.URL.Host == srcURL.Host {
		return p
	}
	p.ok, p.host, p.client, p.tab = true, tab.URL.Host, client, tab
	if seen == nil || !seen[p.host] {
		if h, err := client.Browser().ScreenshotHash(tab); err == nil {
			p.hash, p.hashed = h, true
		}
	}
	return p
}

// fanOut probes the sources at the given indices across the worker
// pool, returning results positionally. Probes perform only
// order-independent work, so which worker handles which probe cannot
// influence any result; per-worker session counts are exported as
// milker_sessions_total{worker=N}.
func (m *Milker) fanOut(idxs []int, sources []MilkSource, seen map[string]bool) []milkProbe {
	out := make([]milkProbe, len(idxs))
	if m.cfg.Workers <= 1 || len(idxs) <= 1 {
		ctr := m.cfg.Obs.Counter("milker_sessions_total", "worker=0")
		for k, si := range idxs {
			out[k] = m.probe(sources[si], seen)
			ctr.Inc()
		}
		return out
	}
	m.startPool()
	workers := m.cfg.Workers
	if workers > len(idxs) {
		workers = len(idxs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	job := milkJob{idxs: idxs, sources: sources, seen: seen, out: out, next: &next, wg: &wg}
	for w := 0; w < workers; w++ {
		m.jobs <- job
	}
	wg.Wait()
	return out
}

// startPool launches the persistent probe workers on first use.
func (m *Milker) startPool() {
	m.poolOnce.Do(func() {
		workers := m.cfg.Workers
		m.jobs = make(chan milkJob, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				ctr := m.cfg.Obs.Counter("milker_sessions_total", "worker="+strconv.Itoa(w))
				for j := range m.jobs {
					for {
						k := int(j.next.Add(1)) - 1
						if k >= len(j.idxs) {
							break
						}
						j.out[k] = m.probe(j.sources[j.idxs[k]], j.seen)
						ctr.Inc()
					}
					j.wg.Done()
				}
			}(w)
		}
	})
}

// Close shuts the probe worker pool down. Idempotent; safe on a Milker
// whose pool never started. Further fan-outs after Close would panic,
// so call it only once milking is finished.
func (m *Milker) Close() {
	m.closeOnce.Do(func() {
		if m.jobs != nil {
			close(m.jobs)
		}
	})
}

// commit is the serial half of one milking session. Callers invoke it in
// ascending source order for each tick, which fixes first-discovery of
// seenHosts, GSB lag bookkeeping, download sequencing and result-slice
// order — everything the probe phase deliberately leaves untouched.
func (m *Milker) commit(src MilkSource, p milkProbe, now time.Time, res *MilkingResult, seenHosts map[string]bool, unlisted *[]int) {
	res.Sessions++
	if !p.ok {
		return
	}
	if seenHosts[p.host] {
		return
	}
	seenHosts[p.host] = true

	// Never-before-seen domain: verify it still shows the campaign's
	// attack, then record and blacklist-check it.
	if !p.hashed || phash.Distance(p.hash, src.RepHash) > m.cfg.VerifyBits {
		return
	}
	m.met.newDomains.Inc()
	m.hourly("milker_new_domains_hourly", now).Inc()
	m.met.gsbPolls.Inc()
	d := MilkedDomain{
		Host: p.host, Category: src.Category, CampaignID: src.CampaignID,
		FirstSeen: now,
		GSBInit:   m.gsb.Lookup(p.host, now),
	}
	if d.GSBInit {
		d.GSBListedAt = now
	}

	// Harvest scam phone numbers from the fresh page (tech support).
	if res.Phones != nil && p.tab.Doc != nil {
		res.Phones.HarvestText(p.tab.Doc.Serialize(), p.host, now)
	}

	// Interact for downloads (fake software / scareware).
	interactForDownloads(p.client, p.tab)
	for _, dl := range p.tab.Downloads {
		f := MilkedFile{
			SHA256: dl.SHA256, Category: src.Category, CampaignID: src.CampaignID,
			Known: m.vt.Known(dl.SHA256),
		}
		f.Initial = m.vt.Submit(dl.SHA256, dl.CampaignID, now)
		m.met.vtSubmits.Inc()
		m.hourly("milker_vt_submissions_hourly", now).Inc()
		res.Files = append(res.Files, f)
	}

	m.met.verified.Inc()
	res.VerifiedMatch++
	if d.GSBListedAt.IsZero() {
		*unlisted = append(*unlisted, len(res.Domains))
	}
	res.Domains = append(res.Domains, d)
}

func interactForDownloads(client *devtools.Client, tab *browser.Tab) {
	if tab.Doc == nil {
		return
	}
	if el := tab.Doc.Root.Find("install"); el != nil {
		_, _ = client.ClickElement(tab, el)
	}
}

// Run executes the full tracking experiment on the virtual clock:
// milking every MilkInterval for Duration, GSB polling every GSBInterval
// until Duration+GSBExtra, and a final lookup at
// Duration+FinalLookupAfter (files are rescanned then too).
//
// Sessions due at the same virtual instant are probed concurrently by
// cfg.Workers workers and committed serially in source order, so the
// result is identical for every worker count.
func (m *Milker) Run(sources []MilkSource) (*MilkingResult, error) {
	return m.RunContext(context.Background(), sources)
}

// RunContext is Run with cancellation. Cancellation is observed at
// virtual-tick granularity: once ctx is done every recurring timer
// declines to re-arm, the pending probe batch is dropped, the final
// sweep is skipped, and ctx.Err() is returned with the partial result.
// For a never-cancelled context the behaviour (and the result bytes)
// are identical to Run — the ctx checks sit outside the probe/commit
// work and cannot reorder it.
func (m *Milker) RunContext(ctx context.Context, sources []MilkSource) (*MilkingResult, error) {
	if m.cfg.MaxSources > 0 && len(sources) > m.cfg.MaxSources {
		sources = sources[:m.cfg.MaxSources]
	}
	m.start = m.clock.Now()
	res := &MilkingResult{Sources: len(sources), Start: m.start, Phones: phonebl.NewBlacklist()}
	if len(sources) == 0 {
		return res, Errorf("milker: no sources")
	}
	seenHosts := map[string]bool{}
	// unlisted indexes the res.Domains entries still awaiting a positive
	// blacklist verdict, so each poll touches only those instead of
	// rescanning every domain ever milked (the old O(domains × ticks)
	// loop re-examined listed domains forever).
	var unlisted []int
	horizon := m.clock.Now().Add(m.cfg.Duration)
	gsbHorizon := horizon.Add(m.cfg.GSBExtra)

	// Timer callbacks only enqueue; the batch runner below fans the
	// enqueued sources out once every same-instant callback has run.
	var pending []int
	for i := range sources {
		i := i
		if err := m.clock.Every(m.cfg.MilkInterval, horizon, func(now time.Time) bool {
			if ctx.Err() != nil {
				return false
			}
			m.met.milks.Inc()
			m.hourly("milker_milks_hourly", now).Inc()
			pending = append(pending, i)
			return true
		}); err != nil {
			return nil, Errorf("milker: schedule: %v", err)
		}
	}
	// Blacklist polling: every GSBInterval, look up every yet-unlisted
	// domain. Runs inline in the callback pass — before any same-instant
	// milking commits — exactly as the serial scheduler ordered it.
	if err := m.clock.Every(m.cfg.GSBInterval, gsbHorizon, func(now time.Time) bool {
		if ctx.Err() != nil {
			return false
		}
		hourlyPolls := m.hourly("milker_gsb_polls_hourly", now)
		w := 0
		for _, di := range unlisted {
			d := &res.Domains[di]
			m.met.gsbPolls.Inc()
			hourlyPolls.Inc()
			if m.gsb.Lookup(d.Host, now) {
				d.GSBListedAt = now
			} else {
				unlisted[w] = di
				w++
			}
		}
		unlisted = unlisted[:w]
		return true
	}); err != nil {
		return nil, Errorf("milker: gsb schedule: %v", err)
	}

	runBatch := func(now time.Time, batch []func(now time.Time)) {
		for _, fn := range batch {
			fn(now)
		}
		if ctx.Err() != nil {
			pending = pending[:0]
			return
		}
		if len(pending) == 0 {
			return
		}
		due := pending
		pending = pending[:0]
		// Same-instant callbacks fire in scheduling order, which is
		// already ascending source order; the sort makes the commit
		// order contract explicit rather than inherited.
		sort.Ints(due)
		probes := m.fanOut(due, sources, seenHosts)
		for k, si := range due {
			m.commit(sources[si], probes[k], now, res, seenHosts, &unlisted)
		}
	}
	m.clock.AdvanceToBatched(gsbHorizon.Add(time.Minute), runBatch)
	res.End = horizon
	if err := ctx.Err(); err != nil {
		return res, Errorf("milker: cancelled: %v", err)
	}

	// Final sweep two months after milking ended.
	finalAt := horizon.Add(m.cfg.FinalLookupAfter)
	m.clock.AdvanceTo(finalAt)
	for i := range res.Domains {
		d := &res.Domains[i]
		m.met.gsbPolls.Inc()
		d.GSBFinal = m.gsb.Lookup(d.Host, finalAt)
		// GSBListedAt is left zero for final-lookup-only detections: the
		// exact listing time between polls is unknown, so they are
		// excluded from lag statistics.
	}
	for i := range res.Files {
		f := &res.Files[i]
		if rep, err := m.vt.Rescan(f.SHA256, finalAt); err == nil {
			f.Final = rep
		}
	}
	return res, nil
}
