package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adscript"
	"repro/internal/browser"
	"repro/internal/btgraph"
	"repro/internal/campstore"
	"repro/internal/crawler"
	"repro/internal/devtools"
	"repro/internal/gsb"
	"repro/internal/obs"
	"repro/internal/phash"
	"repro/internal/phonebl"
	"repro/internal/screenshot"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/vtsim"
	"repro/internal/webtx"
)

// MilkSource is one (upstream URL, user agent) milking pair — the
// paper's 505 milking sources (Section 4.2).
type MilkSource struct {
	URL      string
	UA       webtx.UserAgent
	ClientIP webtx.IPClass
	// CampaignID indexes the discovered campaign the source tracks.
	CampaignID int
	// Category is the campaign's triaged category.
	Category Category
	// RepHash is the campaign's representative screenshot hash, used to
	// verify that milked pages still belong to the campaign.
	RepHash phash.Hash
}

// ExtractMilkingSources walks every SE cluster's backtracking graphs and
// collects candidate (upstream URL, UA) pairs (Section 3.5): the first
// off-domain URLs upstream of each attack page.
func ExtractMilkingSources(sessions []*crawler.Session, disc *DiscoveryResult) []MilkSource {
	return extractMilkingSources(sessions, disc, nil)
}

// extractMilkingSources is ExtractMilkingSources with an optional
// prebuilt backtracking-graph cache keyed by session index. The
// streaming coordinator passes the graphs it already built for
// attribution, so extraction pays no FromEvents rebuilds; missing
// entries are built (and memoized) on demand.
func extractMilkingSources(sessions []*crawler.Session, disc *DiscoveryResult, graphs map[int]*btgraph.Graph) []MilkSource {
	if graphs == nil {
		graphs = map[int]*btgraph.Graph{}
	}
	graphFor := func(si int) *btgraph.Graph {
		if g, ok := graphs[si]; ok {
			return g
		}
		g := btgraph.FromEvents(sessions[si].Events)
		graphs[si] = g
		return g
	}
	seen := map[string]bool{}
	var out []MilkSource
	for _, c := range disc.Campaigns() {
		for _, m := range c.Members {
			obs := disc.Observations[m]
			for _, ref := range obs.Refs {
				s := sessions[ref.Session]
				l := s.Landings[ref.Landing]
				g := graphFor(ref.Session)
				cands, err := g.MilkingCandidates(l.URL.String())
				if err != nil {
					continue
				}
				for _, cand := range cands {
					key := cand + "|" + s.UserAgent.Name
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, MilkSource{
						URL:        cand,
						UA:         s.UserAgent,
						ClientIP:   s.ClientIP,
						CampaignID: c.ID,
						Category:   c.Category,
						RepHash:    c.Rep,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].URL != out[j].URL {
			return out[i].URL < out[j].URL
		}
		return out[i].UA.Name < out[j].UA.Name
	})
	return out
}

// MilkerConfig tunes the tracking experiment (Sections 3.5 and 4.2).
type MilkerConfig struct {
	// MilkInterval is the per-source revisit period (paper: 15 minutes).
	MilkInterval time.Duration
	// GSBInterval is the blacklist polling period (paper: 30 minutes).
	GSBInterval time.Duration
	// Duration is the milking horizon (paper: 14 days).
	Duration time.Duration
	// GSBExtra extends blacklist polling past the milking horizon
	// (paper: 12 more days).
	GSBExtra time.Duration
	// FinalLookupAfter schedules the last blacklist sweep (paper: 2
	// months after milking ended).
	FinalLookupAfter time.Duration
	// VerifyBits is the maximum dhash distance for a milked page to count
	// as the same campaign (the clustering eps expressed in bits).
	VerifyBits int
	// ViewportScale reduces screenshot resolution.
	ViewportScale int
	// MaxSources bounds the number of sources (0 = no bound).
	MaxSources int
	// Workers is the number of concurrent milking sessions per virtual
	// tick (default 8). Sessions due at the same virtual instant fan out
	// across the pool for the order-independent half of the work
	// (navigation, rendering, hashing) and are committed serially in
	// source order, so every result is byte-identical for any value.
	Workers int
	// Obs receives milking metrics (milk requests, new domains, GSB
	// polls, VT submissions — totals plus per-virtual-hour series).
	// Nil = no-op.
	Obs *obs.Registry
	// Capture is the shared content-addressed capture cache consulted by
	// probe screenshots. Milking revisits the same sources every
	// MilkInterval while noise seeds rotate hourly, so most probe
	// captures are repeats; verify hashes are byte-identical with or
	// without the cache. Nil disables memoization.
	Capture *screenshot.Cache
	// Scripts is the shared compile-once program cache: milking runs the
	// same campaign scripts hundreds of thousands of times, so parsing
	// each source once dominates. API-call traces are byte-identical with
	// or without it. Nil parses per script run.
	Scripts *adscript.ProgramCache
	// DisablePipeline forces the lock-step scheduler: each virtual tick
	// is probed and committed synchronously before the clock moves, with
	// no probe/commit overlap and no multi-tick coalescing. The
	// pipelined scheduler is report-identical by construction (see
	// DESIGN.md); the knob exists for A/B verification and as an escape
	// hatch.
	DisablePipeline bool
	// Campaigns, when non-nil, receives every verified milked sighting
	// as an incremental observation event (hash, e2LD, virtual tick,
	// source "milk"). Events are appended by the single committer in
	// commit order, so the event log's sequence numbers are
	// deterministic; the store dedups on the full tuple, so repeat runs
	// over a shared store append nothing new. Milking results are
	// unaffected by the store.
	Campaigns *campstore.Store
}

// PaperMilkerConfig is the published setup.
func PaperMilkerConfig() MilkerConfig {
	return MilkerConfig{
		MilkInterval:     15 * time.Minute,
		GSBInterval:      30 * time.Minute,
		Duration:         14 * 24 * time.Hour,
		GSBExtra:         12 * 24 * time.Hour,
		FinalLookupAfter: 60 * 24 * time.Hour,
		VerifyBits:       12,
		ViewportScale:    4,
		Workers:          8,
	}
}

func (c *MilkerConfig) fillDefaults() {
	p := PaperMilkerConfig()
	if c.MilkInterval == 0 {
		c.MilkInterval = p.MilkInterval
	}
	if c.GSBInterval == 0 {
		c.GSBInterval = p.GSBInterval
	}
	if c.Duration == 0 {
		c.Duration = p.Duration
	}
	if c.GSBExtra == 0 {
		c.GSBExtra = p.GSBExtra
	}
	if c.FinalLookupAfter == 0 {
		c.FinalLookupAfter = p.FinalLookupAfter
	}
	if c.VerifyBits == 0 {
		c.VerifyBits = p.VerifyBits
	}
	if c.ViewportScale == 0 {
		c.ViewportScale = p.ViewportScale
	}
	if c.Workers == 0 {
		c.Workers = p.Workers
	}
	// More probe workers than CPUs is pure oversubscription: probes are
	// compute-bound (render + hash), so extra workers only add scheduler
	// churn — BENCH_pipeline.json measured W4 8% slower than W1 on a
	// 1-vCPU host. Reports are byte-identical at any worker count, so
	// capping is free.
	if max := runtime.GOMAXPROCS(0); c.Workers > max {
		c.Workers = max
	}
}

// MilkedDomain is one never-before-seen attack domain harvested by
// milking.
type MilkedDomain struct {
	Host       string
	Category   Category
	CampaignID int
	FirstSeen  time.Time
	// GSBInit reports whether the domain was already blacklisted when
	// milking first reached it.
	GSBInit bool
	// GSBListedAt is when polling first saw the domain listed (zero if
	// never during polling).
	GSBListedAt time.Time
	// GSBFinal reports the final-lookup verdict.
	GSBFinal bool
}

// MilkedFile is one binary collected during milking.
type MilkedFile struct {
	SHA256     string
	Category   Category
	CampaignID int
	Known      bool // previously known to the scan service
	Initial    vtsim.Report
	Final      vtsim.Report
}

// MilkingResult aggregates a tracking run.
type MilkingResult struct {
	Sources       int
	Sessions      int
	VerifiedMatch int // sessions whose screenshot matched the campaign
	Domains       []MilkedDomain
	Files         []MilkedFile
	// Phones is the scam-phone-number blacklist harvested in real time
	// from tech-support landing pages (Section 4.3's defensive output).
	Phones *phonebl.Blacklist
	// Start/End bound the milking window.
	Start, End time.Time
}

// GSBLags returns the birth→listing lags observed by polling.
func (r *MilkingResult) GSBLags() []time.Duration {
	var out []time.Duration
	for _, d := range r.Domains {
		if !d.GSBListedAt.IsZero() {
			out = append(out, d.GSBListedAt.Sub(d.FirstSeen))
		}
	}
	return out
}

// MeanGSBLag returns the mean polling-observed lag (0 when none).
func (r *MilkingResult) MeanGSBLag() time.Duration {
	lags := r.GSBLags()
	if len(lags) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range lags {
		sum += l
	}
	return sum / time.Duration(len(lags))
}

// Milker runs the tracking experiment.
type Milker struct {
	internet *webtx.Internet
	clock    *vclock.Clock
	gsb      *gsb.Blacklist
	vt       *vtsim.Service
	cfg      MilkerConfig
	met      milkMetrics
	// start anchors the per-virtual-hour metric series; set by Run.
	start time.Time

	// The probe worker pool is persistent: started lazily on the first
	// multi-worker fan-out and fed over jobs until Close. Spawning
	// goroutines per batch was pure churn — a 14-day milking run issues
	// ~1300 batches, and on small batches the spawn cost outweighed the
	// work, making W8 slower than W1.
	poolOnce   sync.Once
	closeOnce  sync.Once
	jobs       chan milkJob
	workerCtrs []*obs.Counter // milker_sessions_total{worker=N}

	// Client pool: probe sessions reset-and-reuse devtools clients (and
	// their browsers, tabs, interpreters, and host environments) instead
	// of constructing them per probe — the probe path's dominant
	// allocation source. Guarded by clientMu because probes on different
	// workers acquire and release concurrently.
	clientMu sync.Mutex
	clients  []*devtools.Client

	// Pipelined-commit state. At most one commit group is in flight:
	// flush waits for the previous group to drain before dispatching the
	// next, so global commit order equals lock-step order. commitWG is
	// Add/Wait'ed only on the scheduler goroutine.
	commitWG     sync.WaitGroup
	commitBusy   atomic.Bool
	commitFinish atomic.Int64 // wall nanos when the last group drained
	pollBuf      []bool       // reusable verdict buffer for poll fan-out
}

// milkJob is one work batch broadcast to the persistent pool: every
// participating worker pulls indices from the shared counter and runs
// the batch closure, which writes results positionally, so batch
// outcome never depends on scheduling. Broadcasting the batch (one
// channel send per worker) instead of enqueueing per item keeps each
// worker running items back to back — per-item handoffs interleave
// every worker's in-flight state, which on few-core hosts costs more in
// cache misses and GC scanning than the work itself.
type milkJob struct {
	n    int
	run  func(k int)
	ctrs []*obs.Counter // per-worker progress counters; nil = uncounted
	next *atomic.Int64
	wg   *sync.WaitGroup
}

// milkMetrics are the milker's pre-resolved handles; all nil when
// cfg.Obs is nil.
type milkMetrics struct {
	milks      *obs.Counter // milker_milks_total: milk requests issued
	newDomains *obs.Counter // milker_new_domains_total
	gsbPolls   *obs.Counter // milker_gsb_polls_total: blacklist lookups
	vtSubmits  *obs.Counter // milker_vt_submissions_total
	verified   *obs.Counter // milker_verified_match_total
	// Pipeline health (wall-clock): how long the scheduler stalled
	// waiting for commits to drain, how long the committer sat idle
	// waiting for the next probed group, and the high-watermark pipeline
	// depth (2 = probe/commit overlap actually occurred).
	probeStall  *obs.Counter // milker_probe_stall_ns_total
	commitStall *obs.Counter // milker_commit_stall_ns_total
	depth       *obs.Gauge   // milker_pipeline_depth
}

// NewMilker builds a Milker.
func NewMilker(internet *webtx.Internet, clock *vclock.Clock, bl *gsb.Blacklist, vt *vtsim.Service, cfg MilkerConfig) *Milker {
	cfg.fillDefaults()
	m := &Milker{internet: internet, clock: clock, gsb: bl, vt: vt, cfg: cfg, met: milkMetrics{
		milks:       cfg.Obs.Counter("milker_milks_total"),
		newDomains:  cfg.Obs.Counter("milker_new_domains_total"),
		gsbPolls:    cfg.Obs.Counter("milker_gsb_polls_total"),
		vtSubmits:   cfg.Obs.Counter("milker_vt_submissions_total"),
		verified:    cfg.Obs.Counter("milker_verified_match_total"),
		probeStall:  cfg.Obs.Counter("milker_probe_stall_ns_total"),
		commitStall: cfg.Obs.Counter("milker_commit_stall_ns_total"),
		depth:       cfg.Obs.Gauge("milker_pipeline_depth"),
	}}
	m.workerCtrs = make([]*obs.Counter, m.cfg.Workers)
	for w := range m.workerCtrs {
		m.workerCtrs[w] = cfg.Obs.Counter("milker_sessions_total", "worker="+strconv.Itoa(w))
	}
	return m
}

// hourly returns the per-virtual-hour series counter for name: the same
// metric labeled with the whole virtual hours elapsed since milking
// began, so a 14-day run exports its throughput evolution. Returns nil
// (no-op) when observability is off.
func (m *Milker) hourly(name string, now time.Time) *obs.Counter {
	if m.cfg.Obs == nil {
		return nil
	}
	vh := int(now.Sub(m.start) / time.Hour)
	if vh < 0 {
		vh = 0
	}
	return m.cfg.Obs.Counter(name, fmt.Sprintf("vhour=%03d", vh))
}

// VerifySources runs the pilot check of Section 4.2: each candidate is
// visited once — across the worker pool — and kept only if it leads to
// a page whose screenshot matches its campaign. Candidates are filtered
// in input order with the MaxSources cap applied to the ordered result,
// so the kept set is independent of the worker count.
func (m *Milker) VerifySources(cands []MilkSource) []MilkSource {
	m.cfg.Obs.Counter("milker_verify_visits_total").Add(int64(len(cands)))
	probes := make([]milkProbe, len(cands))
	m.runParallel(len(cands), m.workerCtrs, func(k int) {
		probes[k] = m.probe(cands[k], nil, time.Time{})
	})
	var out []MilkSource
	for i, p := range probes {
		if p.client != nil {
			m.releaseClient(p.client)
		}
		if m.cfg.MaxSources > 0 && len(out) >= m.cfg.MaxSources {
			continue // cap reached; keep draining retained clients
		}
		if p.ok && p.hashed && phash.Distance(p.hash, cands[i].RepHash) <= m.cfg.VerifyBits {
			out = append(out, cands[i])
		}
	}
	return out
}

// seenSet is the set of attack hosts already committed. Probes consult
// it concurrently (a stale read only costs a redundant screenshot hash;
// the committer re-checks authoritatively), the single committer writes
// it.
type seenSet struct {
	mu sync.RWMutex
	m  map[string]bool
}

func newSeenSet() *seenSet { return &seenSet{m: map[string]bool{}} }

func (s *seenSet) has(h string) bool {
	if s == nil {
		return false
	}
	s.mu.RLock()
	v := s.m[h]
	s.mu.RUnlock()
	return v
}

func (s *seenSet) add(h string) {
	s.mu.Lock()
	s.m[h] = true
	s.mu.Unlock()
}

// milkProbe is the parallel half of one milking session: navigation,
// rendering and hashing — work whose outcome depends only on the source
// and the probe's pinned virtual instant, never on sibling sessions.
type milkProbe struct {
	ok     bool // navigation landed on an off-source OK page
	host   string
	client *devtools.Client
	tab    *browser.Tab
	hash   phash.Hash
	hashed bool // screenshot hash computed (host unseen at probe time)
}

// clientConfig is the automation profile for one source's sessions.
func (m *Milker) clientConfig(src MilkSource) devtools.ClientConfig {
	return devtools.ClientConfig{
		UserAgent: src.UA, ClientIP: src.ClientIP,
		StealthPatch: true, DialogBypass: true,
		DeviceEmulation: src.UA.Mobile,
		ViewportScale:   m.cfg.ViewportScale,
		Capture:         m.cfg.Capture,
		Scripts:         m.cfg.Scripts,
	}
}

// acquireClient hands out a pooled client re-armed for cfg, building a
// fresh one only when the pool is dry.
func (m *Milker) acquireClient(cfg devtools.ClientConfig) *devtools.Client {
	m.clientMu.Lock()
	var c *devtools.Client
	if n := len(m.clients); n > 0 {
		c = m.clients[n-1]
		m.clients[n-1] = nil
		m.clients = m.clients[:n-1]
	}
	m.clientMu.Unlock()
	if c == nil {
		return devtools.NewClient(m.internet, m.clock, cfg)
	}
	c.Reset(cfg)
	return c
}

func (m *Milker) releaseClient(c *devtools.Client) {
	m.clientMu.Lock()
	m.clients = append(m.clients, c)
	m.clientMu.Unlock()
}

// probe loads a milking source at the pinned virtual instant (zero =
// live clock). seen (nil to always hash) skips screenshot work for
// hosts already discovered — the dominant case in steady-state milking.
// The session client comes from the pool; it is released here unless
// the probe hit a verified-fresh page, in which case it rides along in
// p.client/p.tab for the commit phase (phone harvest, download clicks),
// whose owner releases it.
func (m *Milker) probe(src MilkSource, seen *seenSet, pinAt time.Time) milkProbe {
	var p milkProbe
	client := m.acquireClient(m.clientConfig(src))
	client.PinTime(pinAt)
	defer func() {
		if p.client == nil {
			m.releaseClient(client)
		}
	}()
	tab, err := client.Navigate(src.URL)
	if err != nil || tab.Status != webtx.StatusOK || tab.Doc == nil {
		return p
	}
	srcURL, err := urlx.Parse(src.URL)
	if err != nil || tab.URL.Host == srcURL.Host {
		return p
	}
	p.ok, p.host = true, tab.URL.Host
	if !seen.has(p.host) {
		if h, err := client.Browser().ScreenshotHash(tab); err == nil {
			p.hash, p.hashed = h, true
		}
	}
	if p.hashed && phash.Distance(p.hash, src.RepHash) <= m.cfg.VerifyBits {
		p.client, p.tab = client, tab
	}
	return p
}

// runParallel fans run(0..n-1) out across the worker pool, or runs
// serially for one worker / one item. ctrs, when non-nil, receives one
// increment per item on the executing worker's counter (the serial path
// counts as worker 0). Batch closures must perform only
// order-independent work: which worker handles which item can never
// influence a result.
func (m *Milker) runParallel(n int, ctrs []*obs.Counter, run func(k int)) {
	if n == 0 {
		return
	}
	if m.cfg.Workers <= 1 || n <= 1 {
		for k := 0; k < n; k++ {
			run(k)
			if ctrs != nil {
				ctrs[0].Inc()
			}
		}
		return
	}
	m.startPool()
	workers := m.cfg.Workers
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	job := milkJob{n: n, run: run, ctrs: ctrs, next: &next, wg: &wg}
	for w := 0; w < workers; w++ {
		m.jobs <- job
	}
	wg.Wait()
}

// startPool launches the persistent workers on first use.
func (m *Milker) startPool() {
	m.poolOnce.Do(func() {
		workers := m.cfg.Workers
		m.jobs = make(chan milkJob, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				for j := range m.jobs {
					for {
						k := int(j.next.Add(1)) - 1
						if k >= j.n {
							break
						}
						j.run(k)
						if j.ctrs != nil {
							j.ctrs[w].Inc()
						}
					}
					j.wg.Done()
				}
			}(w)
		}
	})
}

// Close shuts the probe worker pool down. Idempotent; safe on a Milker
// whose pool never started. Further fan-outs after Close would panic,
// so call it only once milking is finished.
func (m *Milker) Close() {
	m.closeOnce.Do(func() {
		if m.jobs != nil {
			close(m.jobs)
		}
	})
}

// commit is the serial half of one milking session. The single
// committer invokes it in (tick, source) order, which fixes
// first-discovery of seen hosts, GSB lag bookkeeping, download
// sequencing and result-slice order — everything the probe phase
// deliberately leaves untouched. A client retained by the probe is
// returned to the pool here on every path.
func (m *Milker) commit(src MilkSource, p milkProbe, now time.Time, res *MilkingResult, seen *seenSet, unlisted *[]int, milkEvents *[]campstore.Event) {
	if p.client != nil {
		defer m.releaseClient(p.client)
	}
	res.Sessions++
	if !p.ok {
		return
	}
	if seen.has(p.host) {
		return
	}
	seen.add(p.host)

	// Never-before-seen domain: verify it still shows the campaign's
	// attack, then record and blacklist-check it.
	if !p.hashed || phash.Distance(p.hash, src.RepHash) > m.cfg.VerifyBits {
		return
	}
	m.met.newDomains.Inc()
	m.hourly("milker_new_domains_hourly", now).Inc()
	if m.cfg.Campaigns != nil {
		// Commit order is the lock-step (tick, source) order, so the
		// event log grows deterministically; events are buffered here
		// and flushed as one AppendBatch per commit group (the store's
		// batched ingest path), still from the single committer.
		*milkEvents = append(*milkEvents, campstore.Event{
			Hash: p.hash, E2LD: urlx.E2LD(p.host), Tick: now, Source: campstore.SourceMilk,
		})
	}
	m.met.gsbPolls.Inc()
	d := MilkedDomain{
		Host: p.host, Category: src.Category, CampaignID: src.CampaignID,
		FirstSeen: now,
		GSBInit:   m.gsb.Lookup(p.host, now),
	}
	if d.GSBInit {
		d.GSBListedAt = now
	}

	// Harvest scam phone numbers from the fresh page (tech support).
	if res.Phones != nil && p.tab.Doc != nil {
		res.Phones.HarvestText(p.tab.Doc.Serialize(), p.host, now)
	}

	// Interact for downloads (fake software / scareware).
	interactForDownloads(p.client, p.tab)
	for _, dl := range p.tab.Downloads {
		f := MilkedFile{
			SHA256: dl.SHA256, Category: src.Category, CampaignID: src.CampaignID,
			Known: m.vt.Known(dl.SHA256),
		}
		f.Initial = m.vt.Submit(dl.SHA256, dl.CampaignID, now)
		m.met.vtSubmits.Inc()
		m.hourly("milker_vt_submissions_hourly", now).Inc()
		res.Files = append(res.Files, f)
	}

	m.met.verified.Inc()
	res.VerifiedMatch++
	if d.GSBListedAt.IsZero() {
		*unlisted = append(*unlisted, len(res.Domains))
	}
	res.Domains = append(res.Domains, d)
}

func interactForDownloads(client *devtools.Client, tab *browser.Tab) {
	if tab.Doc == nil {
		return
	}
	if el := tab.Doc.Root.Find("install"); el != nil {
		_, _ = client.ClickElement(tab, el)
	}
}

// milkTick is one virtual milking instant and the sources due at it.
type milkTick struct {
	now time.Time
	due []int
}

// probeReq flattens one (tick, source) pair for the worker pool.
type probeReq struct {
	si int
	at time.Time
}

// milkGroup is one coalesced run of consecutive milking ticks: the unit
// the pipelined scheduler probes as a whole and commits as a whole. Two
// groups ping-pong through the scheduler — one accumulating/probing
// while the other commits — so group storage is allocated once per run.
type milkGroup struct {
	ticks  []milkTick
	reqs   []probeReq
	probes []milkProbe
}

func (g *milkGroup) addDue(now time.Time, si int) {
	if n := len(g.ticks); n == 0 || !g.ticks[n-1].now.Equal(now) {
		if n < cap(g.ticks) {
			// Revive a prior tick slot to reuse its due slice.
			g.ticks = g.ticks[:n+1]
			g.ticks[n].now = now
			g.ticks[n].due = g.ticks[n].due[:0]
		} else {
			g.ticks = append(g.ticks, milkTick{now: now})
		}
	}
	t := &g.ticks[len(g.ticks)-1]
	t.due = append(t.due, si)
}

func (g *milkGroup) reset() { g.ticks = g.ticks[:0] }

// buildReqs flattens the group's ticks into the positional worklist the
// pool consumes, and sizes the probe output to match. Same-instant
// timer callbacks fire in scheduling order, which is already ascending
// source order; the sort makes the commit-order contract explicit
// rather than inherited.
func (g *milkGroup) buildReqs() {
	g.reqs = g.reqs[:0]
	for i := range g.ticks {
		t := &g.ticks[i]
		sort.Ints(t.due)
		for _, si := range t.due {
			g.reqs = append(g.reqs, probeReq{si: si, at: t.now})
		}
	}
	if cap(g.probes) < len(g.reqs) {
		g.probes = make([]milkProbe, len(g.reqs))
	} else {
		g.probes = g.probes[:len(g.reqs)]
		for i := range g.probes {
			g.probes[i] = milkProbe{}
		}
	}
}

// waitInflight blocks until the in-flight commit group (if any) has
// fully drained. Scheduler goroutine only.
func (m *Milker) waitInflight() { m.commitWG.Wait() }

// pollUnlisted looks up every yet-unlisted domain at now and compacts
// the unlisted index. The lookups are pure reads of the sharded
// blacklist, so with enough of them pending they fan out across the
// worker pool; the verdict merge stays serial in domain order either
// way, so the bookkeeping is schedule-independent.
func (m *Milker) pollUnlisted(unlisted *[]int, res *MilkingResult, now time.Time) {
	ul := *unlisted
	hourlyPolls := m.hourly("milker_gsb_polls_hourly", now)
	const pollFanoutMin = 64
	var verdicts []bool
	if m.cfg.Workers > 1 && len(ul) >= pollFanoutMin {
		if cap(m.pollBuf) < len(ul) {
			m.pollBuf = make([]bool, len(ul))
		}
		verdicts = m.pollBuf[:len(ul)]
		m.runParallel(len(ul), nil, func(k int) {
			verdicts[k] = m.gsb.Lookup(res.Domains[ul[k]].Host, now)
		})
	}
	w := 0
	for k, di := range ul {
		d := &res.Domains[di]
		m.met.gsbPolls.Inc()
		hourlyPolls.Inc()
		listed := false
		if verdicts != nil {
			listed = verdicts[k]
		} else {
			listed = m.gsb.Lookup(d.Host, now)
		}
		if listed {
			d.GSBListedAt = now
		} else {
			ul[w] = di
			w++
		}
	}
	*unlisted = ul[:w]
}

// Run executes the full tracking experiment on the virtual clock:
// milking every MilkInterval for Duration, GSB polling every GSBInterval
// until Duration+GSBExtra, and a final lookup at
// Duration+FinalLookupAfter (files are rescanned then too).
//
// The scheduler is pipelined: sources due in one coalesced group of
// ticks are probed across cfg.Workers workers while the previous
// group's sessions commit serially in (tick, source) order, and every
// probe is pinned to its tick's virtual instant. The lookahead gate —
// groups never extend across a blacklist-poll instant, and a poll waits
// for in-flight commits to drain — keeps every cross-batch dependency
// lock-step, so the result is byte-identical for every worker count and
// with the pipeline disabled (see DESIGN.md).
func (m *Milker) Run(sources []MilkSource) (*MilkingResult, error) {
	return m.RunContext(context.Background(), sources)
}

// RunContext is Run with cancellation. Cancellation is observed at
// group granularity: once ctx is done every recurring timer declines to
// re-arm, pending (un-probed) ticks are dropped whole, the final sweep
// is skipped, and ctx.Err() is returned with the partial result. A
// group that already started committing always finishes committing —
// the partial result never contains a partially-committed batch. For a
// never-cancelled context the behaviour (and the result bytes) are
// identical to Run — the ctx checks sit outside the probe/commit work
// and cannot reorder it.
func (m *Milker) RunContext(ctx context.Context, sources []MilkSource) (*MilkingResult, error) {
	if m.cfg.MaxSources > 0 && len(sources) > m.cfg.MaxSources {
		sources = sources[:m.cfg.MaxSources]
	}
	m.start = m.clock.Now()
	res := &MilkingResult{Sources: len(sources), Start: m.start, Phones: phonebl.NewBlacklist()}
	if len(sources) == 0 {
		return res, Errorf("milker: no sources")
	}
	seen := newSeenSet()
	// unlisted indexes the res.Domains entries still awaiting a positive
	// blacklist verdict, so each poll touches only those instead of
	// rescanning every domain ever milked.
	var unlisted []int
	horizon := m.clock.Now().Add(m.cfg.Duration)
	gsbHorizon := horizon.Add(m.cfg.GSBExtra)

	// Two groups ping-pong: cur accumulates due ticks (timer callbacks
	// only record; flush fans out), spare is whichever buffer the last
	// dispatched commit no longer needs.
	var bufs [2]milkGroup
	cur, spare := &bufs[0], &bufs[1]

	for i := range sources {
		i := i
		if err := m.clock.Every(m.cfg.MilkInterval, horizon, func(now time.Time) bool {
			if ctx.Err() != nil {
				return false
			}
			m.met.milks.Inc()
			m.hourly("milker_milks_hourly", now).Inc()
			cur.addDue(now, i)
			return true
		}); err != nil {
			return nil, Errorf("milker: schedule: %v", err)
		}
	}
	// Blacklist polling: every GSBInterval, look up every yet-unlisted
	// domain. The poll reads domains the committer writes, so it first
	// drains the in-flight commit group — the poll side of the lookahead
	// gate (the flush side never coalesces ticks across a poll instant,
	// so everything due before this instant has already been dispatched).
	if err := m.clock.Every(m.cfg.GSBInterval, gsbHorizon, func(now time.Time) bool {
		if ctx.Err() != nil {
			return false
		}
		m.waitInflight()
		m.pollUnlisted(&unlisted, res, now)
		return true
	}); err != nil {
		return nil, Errorf("milker: gsb schedule: %v", err)
	}

	pollAligned := func(at time.Time) bool {
		d := at.Sub(m.start)
		return d > 0 && d%m.cfg.GSBInterval == 0 && !at.After(gsbHorizon)
	}
	// maxCoalescedTicks bounds how many milking instants fuse into one
	// group: enough to amortize fan-out overhead on small worker pools,
	// small enough to keep probe/commit overlap fine-grained.
	const maxCoalescedTicks = 4
	coalesce := func(next time.Time) bool {
		if m.cfg.DisablePipeline {
			return false
		}
		return !pollAligned(next) && len(cur.ticks) < maxCoalescedTicks
	}

	// commitGroup replays the group serially in (tick, source) order —
	// the exact order the lock-step scheduler commits in — then flushes
	// the group's verified milk events to the campaign store as one
	// batched append. milkEvents is only ever touched by the single
	// committer (commitWG serializes the handoff between the inline and
	// background paths).
	var milkEvents []campstore.Event
	commitGroup := func(g *milkGroup) {
		k := 0
		for i := range g.ticks {
			t := &g.ticks[i]
			for _, si := range t.due {
				m.commit(sources[si], g.probes[k], t.now, res, seen, &unlisted, &milkEvents)
				k++
			}
		}
		if m.cfg.Campaigns != nil && len(milkEvents) > 0 {
			_, _ = m.cfg.Campaigns.AppendBatch(milkEvents)
			milkEvents = milkEvents[:0]
		}
	}

	flush := func() {
		g := cur
		if ctx.Err() != nil {
			// Drop the whole un-probed group: cancellation never emits a
			// partially-committed batch.
			g.reset()
			return
		}
		if len(g.ticks) == 0 {
			return
		}
		g.buildReqs()
		if m.commitBusy.Load() {
			m.met.depth.SetMax(2)
		} else {
			m.met.depth.SetMax(1)
		}
		// Probe phase: fans out across the pool while the previous
		// group's commits may still be draining — the pipeline overlap.
		// Probes read only state commits never change within a group
		// window (stale seen reads are re-checked at commit).
		probes, reqs := g.probes, g.reqs
		m.runParallel(len(reqs), m.workerCtrs, func(k int) {
			probes[k] = m.probe(sources[reqs[k].si], seen, reqs[k].at)
		})
		// Commit-side of the lookahead gate: at most one group commits
		// at a time, so commit order equals lock-step order.
		waitStart := time.Now()
		m.waitInflight()
		if d := time.Since(waitStart); d > 0 {
			m.met.probeStall.Add(int64(d))
		}
		if m.cfg.DisablePipeline {
			commitGroup(g)
			g.reset()
			return
		}
		// The drained buffer becomes the next accumulator; g belongs to
		// the committer until the next wait.
		cur = spare
		spare = g
		cur.reset()
		if last := m.commitFinish.Load(); last != 0 {
			if idle := time.Now().UnixNano() - last; idle > 0 {
				m.met.commitStall.Add(idle)
			}
		}
		m.commitBusy.Store(true)
		m.commitWG.Add(1)
		go func() {
			commitGroup(g)
			m.commitFinish.Store(time.Now().UnixNano())
			m.commitBusy.Store(false)
			m.commitWG.Done()
		}()
	}

	m.clock.AdvanceToCoalesced(gsbHorizon.Add(time.Minute), coalesce, flush)
	m.waitInflight()
	res.End = horizon
	if err := ctx.Err(); err != nil {
		return res, Errorf("milker: cancelled: %v", err)
	}

	// Final sweep two months after milking ended.
	finalAt := horizon.Add(m.cfg.FinalLookupAfter)
	m.clock.AdvanceTo(finalAt)
	for i := range res.Domains {
		d := &res.Domains[i]
		m.met.gsbPolls.Inc()
		d.GSBFinal = m.gsb.Lookup(d.Host, finalAt)
		// GSBListedAt is left zero for final-lookup-only detections: the
		// exact listing time between polls is unknown, so they are
		// excluded from lag statistics.
	}
	for i := range res.Files {
		f := &res.Files[i]
		if rep, err := m.vt.Rescan(f.SHA256, finalAt); err == nil {
			f.Final = rep
		}
	}
	return res, nil
}
