package core

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/campstore"
	"repro/internal/cluster"
	"repro/internal/crawler"
	"repro/internal/obs"
	"repro/internal/parking"
	"repro/internal/phash"
	"repro/internal/phonebl"
)

// DiscoveryParams tune campaign discovery (Section 3.3).
type DiscoveryParams struct {
	// Cluster are the DBSCAN parameters over normalised dhash Hamming
	// distance; the paper tuned eps=0.1, MinPts=3.
	Cluster cluster.Params
	// MinDomains is θc: clusters spanning fewer distinct e2LDs are
	// discarded (the paper sets 5).
	MinDomains int
	// Workers is the parallelism of the neighbourhood precompute feeding
	// DBSCAN (default 1). Any value yields identical clusters.
	Workers int
	// Obs receives discovery metrics (observations, DBSCAN distance
	// calls, index probe/candidate counts, cluster and θc-filter
	// counts). Nil = no-op.
	Obs *obs.Registry
	// Store, when non-nil, is the incremental campaign store the run's
	// observations are appended to (as crawl events) and clustered
	// through. A long-lived owner (the seacma-serve daemon) passes one
	// per world so repeat runs pay only for *new* observations; when
	// nil, Discover creates a private store, so the incremental engine
	// is the default clustering path. Labels are identical to the batch
	// path by the campstore property/oracle guarantees.
	Store *campstore.Store
	// DisableIncremental forces the legacy from-scratch batch
	// clustering (multi-index build + DBSCAN). The A/B knob for the
	// determinism suite and benches.
	DisableIncremental bool
}

// PaperDiscoveryParams are the published values.
var PaperDiscoveryParams = DiscoveryParams{Cluster: cluster.PaperParams, MinDomains: 5}

// Observation is one distinct (dhash, e2LD) pair with its supporting
// landings — the clustering unit of Section 3.3.
type Observation struct {
	Hash phash.Hash
	E2LD string
	// Sessions/Landings index back into the crawl output for triage,
	// attribution and milking.
	Refs []LandingRef
}

// LandingRef addresses one landing within the crawl output.
type LandingRef struct {
	Session int // index into the sessions slice
	Landing int // index into Session.Landings
}

// obsKey identifies one distinct (dhash, e2LD) observation.
type obsKey struct {
	h    phash.Hash
	e2ld string
}

// obsCollector accumulates the distinct (dhash, e2LD) observation
// sequence across sessions, in first-occurrence order. The streaming
// coordinator feeds it one session at a time; CollectObservations feeds
// it a whole crawl. Either way the resulting sequence is identical.
type obsCollector struct {
	index map[obsKey]int
	obs   []Observation
}

func newObsCollector() *obsCollector {
	return &obsCollector{index: map[obsKey]int{}}
}

// addSession folds one session's hashed landings in, returning the
// observations this session introduced (in order) as crawl events —
// exactly the slice of the global event sequence this session appends.
func (c *obsCollector) addSession(si int, s *crawler.Session) []campstore.Event {
	if s == nil {
		return nil
	}
	var events []campstore.Event
	for li, l := range s.Landings {
		if !l.Hashed {
			continue
		}
		k := obsKey{l.Hash, l.E2LD}
		idx, ok := c.index[k]
		if !ok {
			idx = len(c.obs)
			c.index[k] = idx
			c.obs = append(c.obs, Observation{Hash: l.Hash, E2LD: l.E2LD})
			events = append(events, campstore.Event{Hash: l.Hash, E2LD: l.E2LD, Source: campstore.SourceCrawl})
		}
		c.obs[idx].Refs = append(c.obs[idx].Refs, LandingRef{Session: si, Landing: li})
	}
	return events
}

// CollectObservations extracts the distinct (dhash, e2LD) pairs from the
// crawl. Unhashed landings (wedged tabs, direct downloads) are skipped.
func CollectObservations(sessions []*crawler.Session) []Observation {
	c := newObsCollector()
	for si, s := range sessions {
		c.addSession(si, s)
	}
	return c.obs
}

// DiscoveredCampaign is one candidate SEACMA campaign: a visually
// coherent cluster spanning at least θc distinct domains.
type DiscoveredCampaign struct {
	ID int
	// Rep is the representative hash (the first member).
	Rep phash.Hash
	// Members are indices into the observation slice.
	Members []int
	// Domains are the distinct e2LDs.
	Domains []string
	// Category is filled by Triage.
	Category Category
	// Signals summarise the triage evidence.
	Signals TriageSignals
}

// AttackCount returns the total SE-attack instances (landings) behind the
// cluster.
func (d *DiscoveredCampaign) AttackCount(obs []Observation) int {
	n := 0
	for _, m := range d.Members {
		n += len(obs[m].Refs)
	}
	return n
}

// DiscoveryResult is the output of step ⑤.
type DiscoveryResult struct {
	Observations []Observation
	// Clusters are all DBSCAN clusters spanning >= θc domains, SEACMA or
	// not (the paper's 130).
	Clusters []*DiscoveredCampaign
	// NoiseCount is the number of observations clustered as noise.
	NoiseCount int
	// FilteredClusters counts clusters dropped by the θc domain filter.
	FilteredClusters int
	// DistanceCalls is the number of Hamming verifications the
	// neighbourhood index performed during clustering. On the
	// incremental path this counts only the *new* work this run paid
	// for (zero when a shared store had already absorbed every
	// observation).
	DistanceCalls int64
	// Store is the incremental campaign store the run clustered
	// through, with the triaged campaigns registered for live
	// projection; nil when the legacy batch path ran.
	Store *campstore.Store

	// campaigns/benign cache the triage partition; Clusters is immutable
	// after Discover, and callers (reporting, milking, triage tables)
	// re-ask for the partition many times.
	campaignsOnce sync.Once
	campaigns     []*DiscoveredCampaign
	benign        []*DiscoveredCampaign
}

// partition splits Clusters by triage verdict, once.
func (r *DiscoveryResult) partition() {
	r.campaignsOnce.Do(func() {
		for _, c := range r.Clusters {
			if c.Category != CatBenign {
				r.campaigns = append(r.campaigns, c)
			} else {
				r.benign = append(r.benign, c)
			}
		}
	})
}

// Campaigns returns only the clusters triaged as SE campaigns (the
// paper's 108 of 130). The returned slice is shared; do not mutate.
func (r *DiscoveryResult) Campaigns() []*DiscoveredCampaign {
	r.partition()
	return r.campaigns
}

// BenignClusters returns the clusters triaged benign (the paper's 22).
// The returned slice is shared; do not mutate.
func (r *DiscoveryResult) BenignClusters() []*DiscoveredCampaign {
	r.partition()
	return r.benign
}

// discoverIncremental appends the observations to the store as crawl
// events and derives labels from the incremental state. It declines
// (returns false) when the store clusters under different parameters
// or its crawl view is not exactly this run's observation sequence —
// the caller then falls back to the batch path.
func discoverIncremental(st *campstore.Store, obs []Observation, params DiscoveryParams) (cluster.Result, bool) {
	if st.Params() != params.Cluster {
		return cluster.Result{}, false
	}
	events := make([]campstore.Event, len(obs))
	for i, o := range obs {
		events[i] = campstore.Event{Hash: o.Hash, E2LD: o.E2LD, Source: campstore.SourceCrawl}
	}
	br, err := st.AppendBatch(events)
	if err != nil {
		return cluster.Result{}, false
	}
	if !st.DiscoveryMatches(len(obs), func(i int) (phash.Hash, string) {
		return obs[i].Hash, obs[i].E2LD
	}) {
		return cluster.Result{}, false
	}
	labels, n := st.DiscoveryLabels()
	if len(labels) != len(obs) {
		// A concurrent writer slipped crawl events into the shared store
		// between the coherence check and the snapshot read; the labels
		// no longer describe this run's observation sequence.
		return cluster.Result{}, false
	}
	params.Obs.Counter("discovery_index_probes_total").Add(br.Probes)
	params.Obs.Counter("discovery_index_candidates_total").Add(br.Candidates)
	return cluster.Result{Labels: labels, NumClusters: n, DistanceCalls: br.DistanceCalls}, true
}

// Discover runs clustering ⑤ and the θc filter on crawl output, then
// triages each surviving cluster (Section 4.3). Clustering runs
// through the incremental campaign store by default (params.Store, or
// a private one); the legacy batch path remains as the A/B reference
// and the fallback when a shared store is unusable for this run.
func Discover(sessions []*crawler.Session, params DiscoveryParams) (*DiscoveryResult, error) {
	obs := CollectObservations(sessions)
	var res cluster.Result
	var store *campstore.Store
	if !params.DisableIncremental {
		st := params.Store
		if st == nil {
			st = campstore.New(campstore.Config{Params: params.Cluster, Obs: params.Obs})
		}
		if r, ok := discoverIncremental(st, obs, params); ok {
			res, store = r, st
		} else if params.Store != nil {
			params.Obs.Counter("discovery_incremental_fallback_total").Inc()
		}
	}
	if store == nil {
		r, err := clusterBatch(obs, params)
		if err != nil {
			return nil, err
		}
		res = r
	}
	return assembleDiscovery(sessions, obs, res, store, params)
}

// clusterBatch is the legacy from-scratch clustering path: multi-index
// build + batch DBSCAN over the full observation sequence.
func clusterBatch(obs []Observation, params DiscoveryParams) (cluster.Result, error) {
	hashes := make([]phash.Hash, len(obs))
	for i, o := range obs {
		hashes[i] = o.Hash
	}
	workers := params.Workers
	if workers < 1 {
		workers = 1
	}
	res, idx, err := cluster.ClusterHashes(hashes, params.Cluster, workers)
	if err != nil {
		return cluster.Result{}, Errorf("clustering: %v", err)
	}
	ist := idx.Stats()
	params.Obs.Counter("discovery_index_probes_total").Add(ist.Probes)
	params.Obs.Counter("discovery_index_candidates_total").Add(ist.Candidates)
	return res, nil
}

// assembleDiscovery is everything downstream of clustering: the θc
// domain filter, triage, stable ordering and campaign registration. The
// phased path and the streaming coordinator both end here, with an
// identical observation sequence and label assignment — which is what
// makes their DiscoveryResults (and report bytes) identical.
func assembleDiscovery(sessions []*crawler.Session, obs []Observation, res cluster.Result, store *campstore.Store, params DiscoveryParams) (*DiscoveryResult, error) {
	out := &DiscoveryResult{
		Observations:  obs,
		NoiseCount:    len(res.NoisePoints()),
		DistanceCalls: res.DistanceCalls,
		Store:         store,
	}
	distinct := map[phash.Hash]bool{}
	for _, o := range obs {
		distinct[o.Hash] = true
	}
	params.Obs.Counter("discovery_observations_total").Add(int64(len(obs)))
	params.Obs.Counter("discovery_distinct_hashes_total").Add(int64(len(distinct)))
	params.Obs.Counter("discovery_distance_calls_total").Add(res.DistanceCalls)
	params.Obs.Counter("discovery_noise_points_total").Add(int64(out.NoiseCount))
	params.Obs.Counter("discovery_clusters_raw_total").Add(int64(res.NumClusters))
	for id, members := range res.Clusters() {
		domains := map[string]bool{}
		for _, m := range members {
			domains[obs[m].E2LD] = true
		}
		if len(domains) < params.MinDomains {
			out.FilteredClusters++
			continue
		}
		dc := &DiscoveredCampaign{ID: id, Rep: obs[members[0]].Hash, Members: members}
		for d := range domains {
			dc.Domains = append(dc.Domains, d)
		}
		sort.Strings(dc.Domains)
		dc.Signals = gatherSignals(sessions, obs, members)
		dc.Category = classify(dc.Signals)
		out.Clusters = append(out.Clusters, dc)
	}
	// Stable ordering: by descending attack volume, then cluster id.
	// Attack counts are precomputed once — the comparator runs O(n log n)
	// times and AttackCount walks every member.
	attacks := make(map[int]int, len(out.Clusters))
	for _, c := range out.Clusters {
		attacks[c.ID] = c.AttackCount(obs)
	}
	sort.SliceStable(out.Clusters, func(i, j int) bool {
		a, b := attacks[out.Clusters[i].ID], attacks[out.Clusters[j].ID]
		if a != b {
			return a > b
		}
		return out.Clusters[i].ID < out.Clusters[j].ID
	})
	// Register the triaged SE campaigns into the store so live state
	// (milking events, /v1/campaigns) can project them forward. Keyed
	// on cluster id, so a repeat run over a shared store idempotently
	// re-registers the same campaigns.
	if store != nil {
		for _, c := range out.Campaigns() {
			err := store.RegisterCampaign(campstore.Campaign{
				ID:         c.ID,
				Category:   string(c.Category),
				RepHash:    c.Rep,
				RepE2LD:    obs[c.Members[0]].E2LD,
				Attacks:    attacks[c.ID],
				ScamPhones: c.Signals.ScamPhones,
			})
			if err != nil {
				return nil, Errorf("registering campaign %d: %v", c.ID, err)
			}
		}
	}
	params.Obs.Counter("discovery_clusters_filtered_total").Add(int64(out.FilteredClusters))
	params.Obs.Counter("discovery_clusters_kept_total").Add(int64(len(out.Clusters)))
	params.Obs.Counter("discovery_campaigns_se_total").Add(int64(len(out.Campaigns())))
	return out, nil
}

// TriageSignals aggregate the behavioural evidence of a cluster's
// landings — the automated counterpart of the paper's triage methods
// (visual inspection, interaction, source inspection).
type TriageSignals struct {
	Pages               int
	Alerts              int
	BeforeUnload        int
	NotificationRequest int
	Downloads           int
	SignupPopups        int
	MobilePages         int
	DesktopPages        int
	ParkedTitles        int
	ShortenerTitles     int
	EmptyTitles         int
	// ParkedScoreSum accumulates the parked-domain detector's per-page
	// scores; MeanParkedScore() averages them.
	ParkedScoreSum float64
	// ScamPhones are the distinct telephone numbers harvested from the
	// cluster's pages (tech-support scams monetise by phone).
	ScamPhones []string
}

// MeanParkedScore averages the parked-domain detector's score over the
// cluster's pages.
func (sg TriageSignals) MeanParkedScore() float64 {
	if sg.Pages == 0 {
		return 0
	}
	return sg.ParkedScoreSum / float64(sg.Pages)
}

func gatherSignals(sessions []*crawler.Session, obs []Observation, members []int) TriageSignals {
	var sg TriageSignals
	phones := map[string]bool{}
	for _, m := range members {
		for _, ref := range obs[m].Refs {
			l := sessions[ref.Session].Landings[ref.Landing]
			sg.Pages++
			sg.ParkedScoreSum += l.ParkedScore
			for _, p := range phonebl.Extract(l.Title) {
				if !phones[p] {
					phones[p] = true
					sg.ScamPhones = append(sg.ScamPhones, p)
				}
			}
			sg.Alerts += l.Behaviour.Alerts
			if l.Behaviour.BeforeUnload {
				sg.BeforeUnload++
			}
			if l.Behaviour.NotificationRequest {
				sg.NotificationRequest++
			}
			if l.Behaviour.Downloaded || len(l.Downloads) > 0 {
				sg.Downloads++
			}
			if l.Behaviour.OpenedSignup {
				sg.SignupPopups++
			}
			if l.Mobile {
				sg.MobilePages++
			} else {
				sg.DesktopPages++
			}
			title := strings.ToLower(l.Title)
			switch {
			case strings.Contains(title, "domain") && strings.Contains(title, "sale"):
				sg.ParkedTitles++
			case strings.Contains(title, "please wait"):
				sg.ShortenerTitles++
			case title == "":
				sg.EmptyTitles++
			}
		}
	}
	return sg
}

// classify maps triage signals to a category. Thresholds are fractions
// of the cluster's page count; a cluster with no SE signal is benign.
func classify(sg TriageSignals) Category {
	if sg.Pages == 0 {
		return CatBenign
	}
	frac := func(n int) float64 { return float64(n) / float64(sg.Pages) }
	locked := frac(sg.BeforeUnload) > 0.3 || float64(sg.Alerts)/float64(sg.Pages) > 0.5
	switch {
	case frac(sg.NotificationRequest) > 0.3:
		return CatNotifications
	case frac(sg.Downloads) > 0.15 && locked:
		return CatScareware
	case frac(sg.Downloads) > 0.15:
		return CatFakeSoftware
	case locked && frac(sg.MobilePages) <= 0.5:
		return CatTechSupport
	case frac(sg.SignupPopups) > 0.1:
		return CatRegistration
	case frac(sg.MobilePages) > 0.9 && sg.Alerts > 0:
		return CatLottery
	case sg.MeanParkedScore() >= parking.Threshold:
		// Automated parked-domain filtering (the paper's future-work
		// component): placeholder clusters never reach manual triage.
		return CatBenign
	case frac(sg.ParkedTitles) > 0.5, frac(sg.ShortenerTitles) > 0.5, frac(sg.EmptyTitles) > 0.8:
		return CatBenign
	case sg.Alerts > 0 && frac(sg.MobilePages) > 0.5:
		return CatLottery
	default:
		return CatBenign
	}
}
