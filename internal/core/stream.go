package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/btgraph"
	"repro/internal/campstore"
	"repro/internal/cluster"
	"repro/internal/crawler"
	"repro/internal/obs"
	"repro/internal/phash"
	"repro/internal/urlx"
)

// ProgressEvent is one streaming-pipeline progress notification: a
// phase transition (Committed == 0) or a per-session commit tick during
// the crawl. Phase names match the obs span names — reverse, crawl,
// discover, attribute, milk — so a progress consumer (the seacma-serve
// job engine) can correlate events with the span log.
type ProgressEvent struct {
	Phase string
	// Committed/Total count session slots committed in task order out of
	// the run's total; both are zero on pure phase transitions.
	Committed int
	Total     int
}

// StreamOptions configure a streaming run.
type StreamOptions struct {
	// SkipMilking stops after discovery and attribution.
	SkipMilking bool
	// OnProgress, when non-nil, receives phase transitions and
	// per-session commit progress. It is called from the coordinator's
	// commit goroutine, never concurrently.
	OnProgress func(ProgressEvent)
}

// RunStream executes the full pipeline through the streaming
// coordinator: crawl sessions are consumed the moment their worker
// finishes — attributed, folded into the observation sequence and
// appended to the incremental campaign store — while later sessions are
// still crawling. Per-session results are committed in task order (the
// same buffered-commit pattern as the milking scheduler), so the final
// RunResult and report JSON are byte-identical to the phased path at
// any worker count.
//
// What overlaps and what cannot: discovery appends, attribution and
// backtracking-graph construction are pure functions of each session,
// so they run under the crawl. Milking-source *verification* probes the
// synthetic web, and a TDS probe mints rotation-epoch attack domains
// into the world's ground-truth recorder — probing mid-crawl (earlier
// virtual instants, or candidates a phased run would never probe) would
// perturb the GSB timeline and the report. Verification therefore
// starts exactly at stream close, at the same virtual instant and over
// the same candidate list as the phased path, but reuses the graphs the
// stream already built, so extraction itself pays no FromEvents
// rebuilds.
func (p *Pipeline) RunStream(ctx context.Context, opts StreamOptions) (*RunResult, error) {
	emit := func(ev ProgressEvent) {
		if opts.OnProgress != nil {
			opts.OnProgress(ev)
		}
	}
	out := &RunResult{}
	emit(ProgressEvent{Phase: "reverse"})
	out.PublisherHosts, out.NetworksByHost = p.Reverse()
	if len(out.PublisherHosts) == 0 {
		return nil, Errorf("seed reversal found no publishers")
	}
	emit(ProgressEvent{Phase: "crawl"})
	sc := p.newStreamCoordinator(emit)
	if err := sc.consume(ctx, out.NetworksByHost); err != nil {
		return nil, err
	}
	out.Sessions = sc.sessions
	emit(ProgressEvent{Phase: "discover"})
	disc, err := sc.finishDiscovery()
	if err != nil {
		return nil, err
	}
	out.Discovery = disc
	emit(ProgressEvent{Phase: "attribute"})
	// The attribution work itself ran under the crawl (the stage tracker
	// accounts for the overlap); the span still appears at its canonical
	// position so span consumers see every Figure-2 stage.
	attrSpan := p.Cfg.Obs.StartSpan("attribute")
	out.Attributions = sc.attrs
	attrSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !opts.SkipMilking {
		emit(ProgressEvent{Phase: "milk"})
		sources, milking, err := p.milkContext(ctx, out.Sessions, disc, sc.graphs)
		if err != nil {
			return nil, err
		}
		out.Sources = sources
		out.Milking = milking
	}
	return out, nil
}

// sessionWork is one session's stream-side analysis, computed out of
// order by the analysis pool and committed in task order.
type sessionWork struct {
	idx   int
	s     *crawler.Session
	graph *btgraph.Graph
	attrs []Attribution
}

// streamCoordinator owns the in-flight state of one streaming run. All
// commit-side fields are written only by the commit loop (one
// goroutine), in task order.
type streamCoordinator struct {
	p        *Pipeline
	emit     func(ProgressEvent)
	tracker  *obs.StageTracker
	patterns *urlx.PatternSet

	// Discovery state, mirroring the phased Discover defaults.
	params DiscoveryParams
	store  *campstore.Store // nil: incremental off or declined up front
	// streamOK stays true while every per-session append succeeded; a
	// failed append flips it and finishDiscovery falls back to batch
	// clustering (the phased path's behaviour on AppendBatch error).
	streamOK bool
	collect  *obsCollector
	batch    campstore.BatchResult // summed over per-session appends

	total    int
	sessions []*crawler.Session
	graphs   map[int]*btgraph.Graph
	attrs    []Attribution
}

func (p *Pipeline) newStreamCoordinator(emit func(ProgressEvent)) *streamCoordinator {
	params := p.Cfg.Discovery
	if params.Cluster.MinPts == 0 {
		params = PaperDiscoveryParams
	}
	if params.Obs == nil {
		params.Obs = p.Cfg.Obs
	}
	if params.Store == nil {
		params.Store = p.Cfg.Campaigns
	}
	if p.Cfg.DisableIncremental {
		params.DisableIncremental = true
	}
	sc := &streamCoordinator{
		p:        p,
		emit:     emit,
		tracker:  p.Cfg.Obs.StageTracker(),
		patterns: PatternSetFromSeeds(p.Cfg.Seeds),
		params:   params,
		collect:  newObsCollector(),
		graphs:   map[int]*btgraph.Graph{},
	}
	if !params.DisableIncremental {
		st := params.Store
		if st == nil {
			st = campstore.New(campstore.Config{Params: params.Cluster, Obs: params.Obs})
		}
		// Mirror the phased path's up-front decline: a shared store
		// clustering under different parameters takes no appends, and the
		// run batch-clusters instead.
		if st.Params() == params.Cluster {
			sc.store = st
			sc.streamOK = true
		}
	}
	return sc
}

// consume drives the session stream to completion: an analysis pool
// builds each session's backtracking graph and attributions out of
// order, and the commit loop folds results in task order — sessions
// slice, observation sequence, store appends, attribution concat,
// per-session progress. Under cancellation the crawler feeds a
// contiguous prefix of slots, so the commit loop still drains fully and
// every committed session is complete — there are no torn commits.
func (sc *streamCoordinator) consume(ctx context.Context, byHost map[string][]string) error {
	crawlSpan := sc.p.Cfg.Obs.StartSpan("crawl")
	defer crawlSpan.End()
	sc.tracker.Enter("crawl")
	defer sc.tracker.Exit("crawl")

	farm, tasks := sc.p.crawlFarm(byHost)
	stream, total := farm.CrawlStream(ctx, tasks)
	sc.total = total
	sc.sessions = make([]*crawler.Session, total)

	workers := runtime.GOMAXPROCS(0)
	if workers > total && total > 0 {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	analyzed := make(chan sessionWork, total)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range stream {
				analyzed <- sc.analyze(ev)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(analyzed)
	}()

	pending := make(map[int]sessionWork)
	next := 0
	for w := range analyzed {
		pending[w.idx] = w
		for {
			cw, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			sc.commitSession(cw)
			next++
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// analyze runs the per-session stream-side work: backtracking graph and
// attribution. Pure per-session computation — safe out of order.
func (sc *streamCoordinator) analyze(ev crawler.SessionEvent) sessionWork {
	w := sessionWork{idx: ev.Index, s: ev.Session}
	if ev.Session == nil || len(ev.Session.Landings) == 0 {
		return w
	}
	sc.tracker.Enter("attribute")
	w.graph = btgraph.FromEvents(ev.Session.Events)
	w.attrs = attributeSession(ev.Index, ev.Session, w.graph, sc.patterns)
	sc.tracker.Exit("attribute")
	return w
}

// commitSession folds one session in, in task order.
func (sc *streamCoordinator) commitSession(w sessionWork) {
	sc.sessions[w.idx] = w.s
	if w.graph != nil {
		sc.graphs[w.idx] = w.graph
	}
	sc.attrs = append(sc.attrs, w.attrs...)
	sc.tracker.Enter("discover")
	events := sc.collect.addSession(w.idx, w.s)
	if sc.store != nil && sc.streamOK && len(events) > 0 {
		// Committing per-session event batches in task order reproduces
		// exactly the single batch the phased path appends: the store
		// log, labels and snapshots end up identical.
		br, err := sc.store.AppendBatch(events)
		if err != nil {
			sc.streamOK = false
		} else {
			sc.batch.DistanceCalls += br.DistanceCalls
			sc.batch.Probes += br.Probes
			sc.batch.Candidates += br.Candidates
		}
	}
	sc.tracker.Exit("discover")
	sc.emit(ProgressEvent{Phase: "crawl", Committed: w.idx + 1, Total: sc.total})
}

// finishDiscovery runs the θc triage tail once the stream is closed.
// The incremental labels (when the stream appends all succeeded and the
// store's crawl view matches this run's observation sequence) feed the
// same assembleDiscovery tail as the phased path; otherwise the run
// batch-clusters the accumulated observations, mirroring the phased
// fallback exactly.
func (sc *streamCoordinator) finishDiscovery() (*DiscoveryResult, error) {
	defer sc.p.Cfg.Obs.StartSpan("discover").End()
	sc.tracker.Enter("discover")
	defer sc.tracker.Exit("discover")

	obs := sc.collect.obs
	params := sc.params
	store := sc.store
	var res cluster.Result
	derived := false
	if store != nil && sc.streamOK {
		if store.DiscoveryMatches(len(obs), func(i int) (phash.Hash, string) {
			return obs[i].Hash, obs[i].E2LD
		}) {
			labels, n := store.DiscoveryLabels()
			if len(labels) == len(obs) {
				params.Obs.Counter("discovery_index_probes_total").Add(sc.batch.Probes)
				params.Obs.Counter("discovery_index_candidates_total").Add(sc.batch.Candidates)
				res = cluster.Result{Labels: labels, NumClusters: n, DistanceCalls: sc.batch.DistanceCalls}
				derived = true
			}
		}
	}
	if !derived {
		store = nil
		if !params.DisableIncremental && params.Store != nil {
			params.Obs.Counter("discovery_incremental_fallback_total").Inc()
		}
		r, err := clusterBatch(obs, params)
		if err != nil {
			return nil, err
		}
		res = r
	}
	return assembleDiscovery(sc.sessions, obs, res, store, params)
}
