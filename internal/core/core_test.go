package core_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/secamp"
	"repro/internal/webtx"
	"repro/internal/worldgen"
)

// fixture is one full tiny-world pipeline run shared by the tests in
// this package (building it is the expensive part).
type fixture struct {
	world    *worldgen.World
	pipeline *core.Pipeline
	hosts    []string
	byHost   map[string][]string
	sessions []*crawler.Session
	disc     *core.DiscoveryResult
	attrs    []core.Attribution
	sources  []core.MilkSource
	milk     *core.MilkingResult
}

var (
	fixtureOnce sync.Once
	fx          *fixture
	fxErr       error
)

func seedsFrom(w *worldgen.World) []core.SeedNetwork {
	var out []core.SeedNetwork
	for _, n := range w.Networks {
		if !n.Spec.Seed {
			continue
		}
		out = append(out, core.SeedNetwork{
			Name:                n.Name(),
			Patterns:            n.Patterns(),
			SearchSnippet:       n.SearchSnippet(),
			ResidentialRequired: n.Spec.ResidentialOnly,
		})
	}
	return out
}

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixtureOnce.Do(func() {
		w := worldgen.Build(worldgen.TinyConfig())
		cfg := core.PipelineConfig{
			Seeds:     seedsFrom(w),
			Discovery: core.PaperDiscoveryParams,
			Milker: core.MilkerConfig{
				Duration:   36 * time.Hour,
				GSBExtra:   36 * time.Hour,
				MaxSources: 40,
			},
		}
		p := core.NewPipeline(cfg, w.Internet, w.Clock, w.Search, w.GSB, w.VT, w.Webcat)
		f := &fixture{world: w, pipeline: p}
		f.hosts, f.byHost = p.Reverse()
		f.sessions = p.Crawl(f.byHost)
		disc, err := p.Discover(f.sessions)
		if err != nil {
			fxErr = err
			return
		}
		f.disc = disc
		f.attrs = p.Attribute(f.sessions)
		f.sources, f.milk, fxErr = p.Milk(f.sessions, disc)
		fx = f
	})
	if fxErr != nil {
		t.Fatalf("fixture: %v", fxErr)
	}
	return fx
}

func TestReverseSeedsFindsAllSeedPublishers(t *testing.T) {
	f := getFixture(t)
	// Every publisher carrying a seed network must be found, and none of
	// the new-network-only publishers.
	want := map[string]bool{}
	for _, h := range f.world.SeedPublisherHosts() {
		want[h] = true
	}
	if len(f.hosts) != len(want) {
		t.Fatalf("reversed %d publishers, truth %d", len(f.hosts), len(want))
	}
	for _, h := range f.hosts {
		if !want[h] {
			t.Fatalf("false positive publisher %s", h)
		}
	}
}

func TestGroupPublishersSplitsByCloakingNetworks(t *testing.T) {
	f := getFixture(t)
	inst, res := core.GroupPublishers(f.byHost, f.pipeline.Cfg.Seeds)
	if inst.ClientIP != webtx.IPInstitutional || res.ClientIP != webtx.IPResidential {
		t.Fatal("group IP classes wrong")
	}
	if len(inst.Hosts)+len(res.Hosts) != len(f.hosts) {
		t.Fatal("groups do not partition the pool")
	}
	// Every residential-group host embeds Propeller or Clickadu.
	for _, h := range res.Hosts {
		found := false
		for _, n := range f.byHost[h] {
			if n == "Propeller" || n == "Clickadu" {
				found = true
			}
		}
		if !found {
			t.Fatalf("host %s in residential group without cloaking network", h)
		}
	}
	if len(res.Hosts) == 0 {
		t.Fatal("no residential-group hosts — cloaked networks untestable")
	}
}

func TestDiscoveryFindsAllCategories(t *testing.T) {
	f := getFixture(t)
	byCat := map[core.Category]int{}
	for _, c := range f.disc.Campaigns() {
		byCat[c.Category]++
	}
	for _, cat := range core.AllSECategories {
		if byCat[cat] == 0 {
			t.Errorf("category %s not discovered", cat)
		}
	}
	if len(f.disc.BenignClusters()) == 0 {
		t.Error("no benign clusters triaged (the paper had 22)")
	}
}

func TestDiscoveryRespectsThetaC(t *testing.T) {
	f := getFixture(t)
	for _, c := range f.disc.Clusters {
		if len(c.Domains) < 5 {
			t.Fatalf("cluster %d has %d domains, below θc", c.ID, len(c.Domains))
		}
	}
}

func TestDiscoveredCampaignsMatchGroundTruth(t *testing.T) {
	f := getFixture(t)
	// Every SE cluster's attack domains must belong to exactly one ground
	// truth campaign (purity), and its triaged category must match.
	for _, c := range f.disc.Campaigns() {
		truthIDs := map[string]int{}
		for _, d := range c.Domains {
			if id := f.world.Truth.CampaignOfAttackDomain(d); id != "" {
				truthIDs[id]++
			}
		}
		if len(truthIDs) == 0 {
			t.Errorf("SE cluster %d (%s) matches no ground-truth campaign", c.ID, c.Category)
			continue
		}
		// Dominant truth campaign holds the vast majority of domains.
		best, bestN, total := "", 0, 0
		for id, n := range truthIDs {
			total += n
			if n > bestN {
				best, bestN = id, n
			}
		}
		if float64(bestN)/float64(total) < 0.9 {
			t.Errorf("cluster %d mixes campaigns: %v", c.ID, truthIDs)
		}
		truthCat, ok := f.world.Truth.CategoryOfCampaign(best)
		if !ok {
			t.Fatalf("unknown truth campaign %s", best)
		}
		if string(c.Category) != truthCat.Key() {
			t.Errorf("cluster %d triaged %s, truth %s", c.ID, c.Category, truthCat.Key())
		}
	}
}

func TestBenignClustersAreTrulyBenign(t *testing.T) {
	f := getFixture(t)
	for _, c := range f.disc.BenignClusters() {
		for _, d := range c.Domains {
			if id := f.world.Truth.CampaignOfAttackDomain(d); id != "" {
				t.Errorf("benign cluster %d contains attack domain %s (campaign %s)", c.ID, d, id)
			}
		}
	}
}

func TestAttributionAccuracy(t *testing.T) {
	f := getFixture(t)
	correct, wrong, unknownSeed, unknownNew := 0, 0, 0, 0
	for _, a := range f.attrs {
		// Ground truth: which network's domain appears in the chain?
		truthNet := ""
		for _, raw := range a.Chain {
			if u, err := parseHostOf(raw); err == nil {
				if n := f.world.Truth.NetworkOfDomain(u); n != "" {
					truthNet = n
					break
				}
			}
		}
		if truthNet == "" {
			continue // no network involvement recorded (direct links)
		}
		isSeed := isSeedNetwork(truthNet)
		switch {
		case a.Network == truthNet:
			correct++
		case a.Network == core.UnknownNetwork && !isSeed:
			unknownNew++ // correctly unknown
		case a.Network == core.UnknownNetwork && isSeed:
			unknownSeed++
		default:
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("%d misattributions", wrong)
	}
	if unknownSeed > correct/50 {
		t.Errorf("%d seed-network ads unattributed (vs %d correct)", unknownSeed, correct)
	}
	if unknownNew == 0 {
		t.Error("no unknown-network ads observed — Section 4.4 unreproducible")
	}
	if correct == 0 {
		t.Fatal("no correct attributions at all")
	}
}

func parseHostOf(raw string) (string, error) {
	u, err := parseURL(raw)
	if err != nil {
		return "", err
	}
	return u, nil
}

func parseURL(raw string) (string, error) {
	// tiny helper: extract host without importing urlx here.
	s := raw
	if i := indexOf(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := indexOf(s, "/"); i >= 0 {
		s = s[:i]
	}
	return s, nil
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func isSeedNetwork(name string) bool {
	switch name {
	case "EroAdvertising", "Yllix", "AdCenter":
		return false
	}
	return true
}

func TestMilkingSourcesVerified(t *testing.T) {
	f := getFixture(t)
	if len(f.sources) == 0 {
		t.Fatal("no verified milking sources")
	}
	// Every verified source URL must be an actual campaign TDS URL.
	tds := map[string]bool{}
	for _, c := range f.world.Campaigns {
		for _, u := range c.TDSURLs() {
			tds[u] = true
		}
	}
	for _, s := range f.sources {
		if !tds[s.URL] {
			t.Errorf("source %s is not a campaign TDS URL", s.URL)
		}
	}
}

func TestMilkingHarvestsFreshDomains(t *testing.T) {
	f := getFixture(t)
	if len(f.milk.Domains) == 0 {
		t.Fatal("milking found no domains")
	}
	if f.milk.Sessions < f.milk.Sources {
		t.Fatalf("sessions %d < sources %d", f.milk.Sessions, f.milk.Sources)
	}
	// Every milked domain is a real campaign attack domain of the right
	// category.
	for _, d := range f.milk.Domains {
		id := f.world.Truth.CampaignOfAttackDomain(d.Host)
		if id == "" {
			t.Errorf("milked domain %s unknown to ground truth", d.Host)
			continue
		}
		cat, _ := f.world.Truth.CategoryOfCampaign(id)
		if cat.Key() != string(d.Category) {
			t.Errorf("milked domain %s category %s, truth %s", d.Host, d.Category, cat.Key())
		}
	}
}

func TestMilkingGSBEvasionShape(t *testing.T) {
	f := getFixture(t)
	rows := core.Table4(f.milk)
	if len(rows) == 0 {
		t.Fatal("empty Table 4")
	}
	var total core.Table4Row
	byCat := map[core.Category]core.Table4Row{}
	for _, r := range rows {
		if r.Category == "total" {
			total = r
		} else {
			byCat[r.Category] = r
		}
	}
	// Paper shape: initial detection far below final; registration and
	// scareware evade entirely; the majority of domains evade even at
	// the final lookup.
	if total.GSBInitPct >= total.GSBFinalPct && total.GSBFinalPct > 0 {
		t.Errorf("GSB-init %.2f >= GSB-final %.2f", total.GSBInitPct, total.GSBFinalPct)
	}
	if total.GSBFinalPct > 50 {
		t.Errorf("GSB-final %.2f%% — evasion did not reproduce", total.GSBFinalPct)
	}
	for _, cat := range []core.Category{core.CatRegistration, core.CatScareware} {
		if r, ok := byCat[cat]; ok && r.GSBFinalPct > 1 {
			t.Errorf("%s GSB-final %.2f%%, paper reports ~0%%", cat, r.GSBFinalPct)
		}
	}
}

func TestMilkedFilesArePolymorphic(t *testing.T) {
	f := getFixture(t)
	if len(f.milk.Files) == 0 {
		t.Fatal("no files milked")
	}
	seen := map[string]bool{}
	known := 0
	for _, file := range f.milk.Files {
		if seen[file.SHA256] {
			t.Fatalf("duplicate milked hash %s", file.SHA256)
		}
		seen[file.SHA256] = true
		if file.Known {
			known++
		}
	}
	if frac := float64(known) / float64(len(f.milk.Files)); frac > 0.3 {
		t.Errorf("%.0f%% of milked files previously known — binaries not polymorphic enough", frac*100)
	}
	// After the final rescan most files are flagged malicious.
	mal := 0
	for _, file := range f.milk.Files {
		if file.Final.Malicious() {
			mal++
		}
	}
	if frac := float64(mal) / float64(len(f.milk.Files)); frac < 0.85 {
		t.Errorf("only %.0f%% flagged after rescan", frac*100)
	}
}

func TestNewNetworkDiscovery(t *testing.T) {
	f := getFixture(t)
	knownVars := map[string]bool{}
	for _, n := range f.world.Networks {
		if n.Spec.Seed {
			knownVars[n.Spec.InvariantVar] = true
		}
	}
	found := core.DiscoverNewNetworks(f.attrs, f.sessions, knownVars, f.world.Search, 3)
	byToken := map[string]core.DiscoveredNetwork{}
	for _, d := range found {
		byToken[d.PathToken] = d
	}
	want := map[string]string{
		"eroa":  "_eroZoneCfg",
		"ylx":   "yllixPubData",
		"adctr": "_adcSlots",
	}
	for tok, wantVar := range want {
		d, ok := byToken[tok]
		if !ok {
			t.Errorf("network token %q not discovered", tok)
			continue
		}
		if d.SnippetVar != wantVar {
			t.Errorf("token %q: snippet var %q, want %q", tok, d.SnippetVar, wantVar)
		}
		if len(d.Publishers) == 0 {
			t.Errorf("token %q: no publisher expansion", tok)
		}
	}
	if len(found) > len(want) {
		t.Errorf("spurious discoveries: %+v", found)
	}
}

func TestTable1Shape(t *testing.T) {
	f := getFixture(t)
	rows := core.Table1(f.disc, f.world.GSB, f.world.Clock.Now())
	if len(rows) < 4 {
		t.Fatalf("only %d Table 1 rows", len(rows))
	}
	byCat := map[core.Category]core.Table1Row{}
	for _, r := range rows {
		byCat[r.Category] = r
		if r.SEAttacks <= 0 || r.AttackDomains <= 0 || r.Campaigns <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	// Registration evades GSB completely (Table 1); Notifications nearly
	// so (its tiny detection probability can land one hit in a small
	// cluster, hence the loose bound at this scale).
	if r, ok := byCat[core.CatRegistration]; ok && r.GSBDomainPct > 0 {
		t.Errorf("registration GSB domain detection %.1f%%, paper reports 0%%", r.GSBDomainPct)
	}
	if r, ok := byCat[core.CatNotifications]; ok && r.GSBDomainPct > 20 {
		t.Errorf("notifications GSB domain detection %.1f%%, paper reports 0%%", r.GSBDomainPct)
	}
}

func TestTable2PublisherCategories(t *testing.T) {
	f := getFixture(t)
	rows := core.Table2(f.disc, f.sessions, f.world.Webcat, 20)
	if len(rows) == 0 {
		t.Fatal("empty Table 2")
	}
	if rows[0].Count < rows[len(rows)-1].Count {
		t.Fatal("Table 2 not sorted")
	}
	n := core.SEACMAPublisherCount(f.disc, f.sessions)
	if n == 0 {
		t.Fatal("no SEACMA publishers counted")
	}
	if n > len(f.hosts) {
		t.Fatalf("SEACMA publishers %d > crawled %d", n, len(f.hosts))
	}
}

func TestTable3Shape(t *testing.T) {
	f := getFixture(t)
	patterns := core.PatternSetFromSeeds(f.pipeline.Cfg.Seeds)
	isSE := func(ref core.LandingRef) bool {
		for _, c := range f.disc.Campaigns() {
			for _, m := range c.Members {
				for _, r := range f.disc.Observations[m].Refs {
					if r == ref {
						return true
					}
				}
			}
		}
		return false
	}
	rows := core.Table3(f.attrs, patterns, isSE)
	if len(rows) < 8 {
		t.Fatalf("only %d Table 3 rows", len(rows))
	}
	var hasUnknown bool
	for _, r := range rows {
		if r.Network == core.UnknownNetwork {
			hasUnknown = true
			if r.NetworkDomains != 0 {
				t.Error("Unknown row should have no attributed domains")
			}
		}
		if r.SEAttackPages > r.LandingPages {
			t.Errorf("row %s: SE pages exceed landings", r.Network)
		}
	}
	if !hasUnknown {
		t.Error("no Unknown row — Section 4.4 unreproducible")
	}
}

func TestAdvertiserCostEthics(t *testing.T) {
	f := getFixture(t)
	seDomains := map[string]bool{}
	for _, c := range f.disc.Campaigns() {
		for _, d := range c.Domains {
			seDomains[d] = true
		}
	}
	costs := core.EstimateAdvertiserCosts(f.sessions, func(d string) bool { return seDomains[d] }, 4.0)
	if len(costs) == 0 {
		t.Fatal("no cost rows")
	}
	worst := costs[0]
	if worst.Loads <= 0 {
		t.Fatal("degenerate worst case")
	}
	if worst.CostUSD != float64(worst.Loads)/1000*4 {
		t.Fatal("cost arithmetic wrong")
	}
	for _, c := range costs {
		if seDomains[c.Domain] {
			t.Fatalf("SE domain %s in advertiser cost table", c.Domain)
		}
	}
}

func TestFormatters(t *testing.T) {
	f := getFixture(t)
	t1 := core.FormatTable1(core.Table1(f.disc, f.world.GSB, f.world.Clock.Now()))
	if len(t1) == 0 || !contains(t1, "Category") {
		t.Fatal("Table 1 formatting broken")
	}
	t4 := core.FormatTable4(core.Table4(f.milk))
	if !contains(t4, "GSB-init") || !contains(t4, "Total") {
		t.Fatal("Table 4 formatting broken")
	}
	generic := core.FormatTable([]string{"a", "b"}, [][]string{{"1", "22"}, {"333", "4"}})
	if !contains(generic, "333") {
		t.Fatal("generic formatting broken")
	}
}

func contains(s, sub string) bool { return indexOf(s, sub) >= 0 }

func TestMeanGSBLag(t *testing.T) {
	f := getFixture(t)
	lags := f.milk.GSBLags()
	mean := f.milk.MeanGSBLag()
	if len(lags) == 0 {
		t.Skip("no in-window GSB detections at this scale")
	}
	if mean <= 0 {
		t.Fatal("non-positive mean lag")
	}
	var sum time.Duration
	for _, l := range lags {
		sum += l
	}
	if mean != sum/time.Duration(len(lags)) {
		t.Fatal("mean arithmetic wrong")
	}
}

func TestTriageSignalsPopulated(t *testing.T) {
	f := getFixture(t)
	for _, c := range f.disc.Campaigns() {
		if c.Signals.Pages == 0 {
			t.Fatalf("cluster %d has no triage pages", c.ID)
		}
		switch c.Category {
		case core.CatFakeSoftware, core.CatScareware:
			if c.Signals.Downloads == 0 {
				t.Errorf("%s cluster %d without downloads", c.Category, c.ID)
			}
		case core.CatNotifications:
			if c.Signals.NotificationRequest == 0 {
				t.Errorf("notifications cluster %d without requests", c.ID)
			}
		case core.CatTechSupport:
			if c.Signals.Alerts == 0 || c.Signals.BeforeUnload == 0 {
				t.Errorf("tech-support cluster %d without page locks", c.ID)
			}
		case core.CatLottery:
			if c.Signals.DesktopPages > 0 {
				t.Errorf("lottery cluster %d has desktop pages", c.ID)
			}
		}
	}
}

func TestSecampCategoriesAlignWithCoreCategories(t *testing.T) {
	// The two taxonomies must share keys or GSB profiles fall apart.
	for _, cat := range secamp.AllCategories {
		found := false
		for _, c := range core.AllSECategories {
			if string(c) == cat.Key() {
				found = true
			}
		}
		if !found {
			t.Errorf("secamp category %q missing from core taxonomy", cat.Key())
		}
	}
}

// TestFeedbackLoopClosesUnknownGap reproduces the paper's closing claim:
// the networks discovered from Unknown logs "could then be added to our
// initial seed list of ad networks to further expand crawling and SEACMA
// campaign coverage". Adding the discovered invariants to the pattern
// set must re-attribute (nearly) all previously Unknown ads.
func TestFeedbackLoopClosesUnknownGap(t *testing.T) {
	f := getFixture(t)
	knownVars := map[string]bool{}
	for _, n := range f.world.Networks {
		if n.Spec.Seed {
			knownVars[n.Spec.InvariantVar] = true
		}
	}
	discovered := core.DiscoverNewNetworks(f.attrs, f.sessions, knownVars, f.world.Search, 3)
	if len(discovered) == 0 {
		t.Fatal("no networks discovered")
	}

	// Extended seed list: originals + discovered invariants.
	seeds := append([]core.SeedNetwork(nil), f.pipeline.Cfg.Seeds...)
	for _, d := range discovered {
		seeds = append(seeds, core.SeedNetwork{
			Name:          "discovered-" + d.PathToken,
			Patterns:      d.Patterns,
			SearchSnippet: "let " + d.SnippetVar + " =",
		})
	}
	before, after := 0, 0
	reattrs := core.AttributeSessions(f.sessions, core.PatternSetFromSeeds(seeds))
	for _, a := range f.attrs {
		if a.Network == core.UnknownNetwork {
			before++
		}
	}
	for _, a := range reattrs {
		if a.Network == core.UnknownNetwork {
			after++
		}
	}
	if before == 0 {
		t.Fatal("fixture had no unknown ads")
	}
	if after*10 > before {
		t.Fatalf("unknown ads only dropped %d -> %d", before, after)
	}

	// And the expanded seed list reverses into more publishers.
	hostsBefore, _ := core.ReverseSeeds(f.world.Search, f.pipeline.Cfg.Seeds)
	hostsAfter, _ := core.ReverseSeeds(f.world.Search, seeds)
	if len(hostsAfter) <= len(hostsBefore) {
		t.Fatalf("publisher pool did not grow: %d -> %d", len(hostsBefore), len(hostsAfter))
	}
}

func TestJSONReportRoundTrip(t *testing.T) {
	f := getFixture(t)
	patterns := core.PatternSetFromSeeds(f.pipeline.Cfg.Seeds)
	run := &core.RunResult{
		PublisherHosts: f.hosts,
		Sessions:       f.sessions,
		Discovery:      f.disc,
		Attributions:   f.attrs,
		Milking:        f.milk,
	}
	rep := core.BuildReport(run, patterns, f.world.GSB, f.world.Webcat, f.world.Clock.Now())
	if len(rep.Table1) == 0 || len(rep.Table2) == 0 || len(rep.Table3) == 0 || len(rep.Table4) == 0 {
		t.Fatalf("incomplete report: %+v", rep.Scalars)
	}
	if rep.Scalars.SECampaigns == 0 || rep.Scalars.MilkedDomains == 0 {
		t.Fatalf("scalars missing: %+v", rep.Scalars)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.ParseReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Table1) != len(rep.Table1) || back.Scalars != rep.Scalars {
		t.Fatal("report round trip changed content")
	}
	if _, err := core.ParseReport(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage report accepted")
	}
}
