package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/crawler"
	"repro/internal/phash"
	"repro/internal/urlx"
	"repro/internal/websearch"
)

// White-box tests for the attribution internals.

func TestFirstPathSegment(t *testing.T) {
	cases := map[string]string{
		"/eroa/v3/serve.js": "eroa",
		"/":                 "",
		"/solo":             "solo",
		"/a/b/c":            "a",
	}
	for in, want := range cases {
		if got := firstPathSegment(in); got != want {
			t.Errorf("firstPathSegment(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLooksGeneric(t *testing.T) {
	for _, tok := range []string{"", "track", "dl", "signup", "index.html", "averyverylongtoken"} {
		if !looksGeneric(tok) {
			t.Errorf("%q should be generic", tok)
		}
	}
	for _, tok := range []string{"eroa", "ylx", "adctr", "pcash"} {
		if looksGeneric(tok) {
			t.Errorf("%q should not be generic", tok)
		}
	}
}

func TestSnippetVarsIn(t *testing.T) {
	src := `
		let _eroZoneCfg = { z: 5, s: "abc" };
		let _tmp = dec("00ff", 3);
		let plain = 5;
		let another = {x: 1};
		let 1bad = {};
	`
	got := snippetVarsIn(src)
	want := map[string]bool{"_eroZoneCfg": true, "another": true}
	if len(got) != len(want) {
		t.Fatalf("vars = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected var %q in %v", v, got)
		}
	}
}

func TestValidIdent(t *testing.T) {
	for _, ok := range []string{"_a", "$x", "abc9", "A_b"} {
		if !validIdent(ok) {
			t.Errorf("%q should be valid", ok)
		}
	}
	for _, bad := range []string{"", "9a", "a-b", "a b", "a."} {
		if validIdent(bad) {
			t.Errorf("%q should be invalid", bad)
		}
	}
}

func TestCommonSnippetVar(t *testing.T) {
	e := websearch.NewEngine()
	e.Index("p1.com", `let _newNet = {z:1}; let _rhblk_q = {z:2};`, 0)
	e.Index("p2.com", `let _newNet = {z:9};`, 0)
	e.Index("p3.com", `nothing here`, 0)
	known := map[string]bool{"_rhblk_q": true}
	if got := commonSnippetVar(e, []string{"p1.com", "p2.com"}, known); got != "_newNet" {
		t.Fatalf("commonSnippetVar = %q", got)
	}
	// Majority requirement: 1 of 3 publishers is not enough.
	if got := commonSnippetVar(e, []string{"p1.com", "p3.com", "p3.com"}, known); got != "" {
		t.Fatalf("minority var accepted: %q", got)
	}
	if got := commonSnippetVar(e, nil, known); got != "" {
		t.Fatalf("empty publishers yielded %q", got)
	}
}

func TestAggregateAttributionOrdering(t *testing.T) {
	attrs := []Attribution{
		{Ref: LandingRef{0, 0}, Network: "A"},
		{Ref: LandingRef{0, 1}, Network: "A"},
		{Ref: LandingRef{0, 2}, Network: "B"},
	}
	rows := AggregateAttribution(attrs, func(ref LandingRef) bool { return ref.Landing == 0 })
	if len(rows) != 2 || rows[0].Network != "A" || rows[0].LandingPages != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].SEAttackPages != 1 || rows[0].SERate != 50 {
		t.Fatalf("SE accounting wrong: %+v", rows[0])
	}
}

func TestPatternSetFromSeeds(t *testing.T) {
	seeds := []SeedNetwork{
		{Name: "N1", Patterns: []urlx.Pattern{{Kind: urlx.KindURL, PathPrefix: "/n1/"}}},
		{Name: "N2", Patterns: []urlx.Pattern{{Kind: urlx.KindSource, BodyToken: "xyz"}}},
	}
	ps := PatternSetFromSeeds(seeds)
	if got := ps.MatchURL(urlx.MustParse("http://h.com/n1/x")); got != "N1" {
		t.Fatalf("MatchURL = %q", got)
	}
	if got := ps.MatchSource("aaa xyz bbb"); got != "N2" {
		t.Fatalf("MatchSource = %q", got)
	}
}

func TestCategoryDisplayNamesComplete(t *testing.T) {
	for _, c := range append(AllSECategories, CatBenign, CatUnknownSE, Category("custom")) {
		if c.DisplayName() == "" {
			t.Fatalf("category %q has empty display name", c)
		}
	}
}

func TestErrorf(t *testing.T) {
	err := Errorf("stage %d failed", 3)
	if err.Error() != "seacma: stage 3 failed" {
		t.Fatalf("err = %v", err)
	}
}

func TestMilkerConfigDefaults(t *testing.T) {
	cfg := MilkerConfig{}
	cfg.fillDefaults()
	paper := PaperMilkerConfig()
	if cfg.MilkInterval != paper.MilkInterval || cfg.GSBInterval != paper.GSBInterval ||
		cfg.Duration != paper.Duration || cfg.VerifyBits != paper.VerifyBits {
		t.Fatalf("defaults = %+v", cfg)
	}
	// Partial overrides survive.
	cfg2 := MilkerConfig{VerifyBits: 5}
	cfg2.fillDefaults()
	if cfg2.VerifyBits != 5 || cfg2.MilkInterval != paper.MilkInterval {
		t.Fatalf("partial defaults = %+v", cfg2)
	}
}

func TestFormatTableAlignment(t *testing.T) {
	out := FormatTable([]string{"col", "x"}, [][]string{{"aaaa", "1"}, {"b", "22"}})
	lines := splitLines(out)
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All rows equal width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header/divider misaligned: %q vs %q", lines[0], lines[1])
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestDiscoverRejectsBadParams(t *testing.T) {
	_, err := Discover(nil, DiscoveryParams{Cluster: cluster.Params{Eps: -1, MinPts: 0}, MinDomains: 5})
	if err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestDiscoverEmptySessions(t *testing.T) {
	res, err := Discover(nil, PaperDiscoveryParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 || len(res.Observations) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCollectObservationsSkipsUnhashed(t *testing.T) {
	sessions := []*crawler.Session{
		nil,
		{Landings: []crawler.Landing{
			{E2LD: "a.com", Hashed: false},
			{E2LD: "b.com", Hashed: true, Hash: phash.Hash{Hi: 1}},
			{E2LD: "b.com", Hashed: true, Hash: phash.Hash{Hi: 1}}, // duplicate pair
		}},
	}
	obs := CollectObservations(sessions)
	if len(obs) != 1 {
		t.Fatalf("observations = %d", len(obs))
	}
	if len(obs[0].Refs) != 2 {
		t.Fatalf("refs = %d", len(obs[0].Refs))
	}
}

func TestTable4Empty(t *testing.T) {
	rows := Table4(&MilkingResult{})
	if len(rows) != 1 || rows[0].Category != "total" || rows[0].Domains != 0 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestAttributeSessionsSkipsNilAndEmpty(t *testing.T) {
	attrs := AttributeSessions([]*crawler.Session{nil, {}}, urlx.NewPatternSet())
	if len(attrs) != 0 {
		t.Fatalf("attrs = %d", len(attrs))
	}
}
