package core

import (
	"context"
	"sync"

	"repro/internal/adscript"
	"repro/internal/btgraph"
	"repro/internal/campstore"
	"repro/internal/crawler"
	"repro/internal/gsb"
	"repro/internal/obs"
	"repro/internal/screenshot"
	"repro/internal/vclock"
	"repro/internal/vtsim"
	"repro/internal/webcat"
	"repro/internal/websearch"
	"repro/internal/webtx"
)

// PipelineConfig assembles the full Figure 2 system.
type PipelineConfig struct {
	// Seeds is the analyst-curated seed ad-network list ①.
	Seeds []SeedNetwork
	// Crawler configures the farm ③.
	Crawler crawler.Config
	// Discovery configures clustering and the θc filter ⑤.
	Discovery DiscoveryParams
	// Milker configures campaign tracking ⑥.
	Milker MilkerConfig
	// MaxPublishers bounds the crawl (0 = all found).
	MaxPublishers int
	// Obs is the pipeline's observability registry: each Figure-2 stage
	// runs under a span and the hot layers (crawler, discovery, milker,
	// webtx) report counters into it. Nil (the default) disables all
	// instrumentation at one nil check per site.
	Obs *obs.Registry
	// Capture is the content-addressed capture cache shared by the crawl
	// and milking stages. NewPipeline creates one (bound to Obs) when
	// left nil, so a pipeline always runs with the fast path; set
	// DisableCapture to opt out for A/B benchmarking.
	Capture *screenshot.Cache
	// DisableCapture forces uncached captures even when Capture is nil.
	DisableCapture bool
	// DisableNoisePlanes drops the noise-plane cache inside the capture
	// cache, pinning the hash kernel to its inline path. Reports are
	// byte-identical either way; the knob exists so the determinism
	// suite and A/B benches can prove it.
	DisableNoisePlanes bool
	// Scripts is the compile-once program cache shared by the crawl and
	// milking stages. NewPipeline creates one (bound to Obs) when left
	// nil; set DisableScriptCache to opt out for A/B benchmarking.
	Scripts *adscript.ProgramCache
	// DisableScriptCache forces parse-per-run even when Scripts is nil.
	DisableScriptCache bool
	// Campaigns is the incremental campaign store: discovery appends
	// crawl observations and clusters through it, the milker appends
	// verified milked sightings, and a service owner queries live
	// campaign state from it. Left nil, Discover creates a run-private
	// store (reachable via DiscoveryResult.Store); a long-lived owner
	// (seacma-serve) passes one per world so repeat jobs reuse the
	// absorbed observations.
	Campaigns *campstore.Store
	// DisableIncremental pins discovery to the legacy from-scratch
	// batch clustering and detaches the milker from the store — the
	// A/B knob proving reports are byte-identical either way.
	DisableIncremental bool
	// DisableStreaming pins RunContext to the legacy phased execution
	// (five serial stages with full barriers) instead of the streaming
	// coordinator that overlaps crawl, discovery and attribution. The
	// A/B knob proving reports are byte-identical either way.
	DisableStreaming bool
}

// Pipeline is the end-to-end SEACMA system bound to one (synthetic) web.
type Pipeline struct {
	Cfg      PipelineConfig
	Internet *webtx.Internet
	Clock    *vclock.Clock
	Search   *websearch.Engine
	GSB      *gsb.Blacklist
	VT       *vtsim.Service
	Webcat   *webcat.Service
}

// RunResult is everything one full pipeline run produces.
type RunResult struct {
	// PublisherHosts is the crawl pool from reversing the seeds ②.
	PublisherHosts []string
	// NetworksByHost maps each publisher to the seed networks whose
	// invariants its page matched.
	NetworksByHost map[string][]string
	// Sessions is the crawl output ③/④.
	Sessions []*crawler.Session
	// Discovery is the clustering + triage output ⑤.
	Discovery *DiscoveryResult
	// Attributions link every landing page to an ad network ⑦.
	Attributions []Attribution
	// Sources are the verified milkable URLs ⑥.
	Sources []MilkSource
	// Milking is the tracking result ⑥ (nil if milking skipped).
	Milking *MilkingResult

	seRefOnce     sync.Once
	seRefCache    map[LandingRef]bool
	seDomainOnce  sync.Once
	seDomainCache map[string]bool
}

// IsSE reports whether a landing (by reference) belongs to a discovered
// SE campaign. Safe for concurrent use.
func (r *RunResult) IsSE(ref LandingRef) bool {
	return r.seRefs()[ref]
}

func (r *RunResult) seRefs() map[LandingRef]bool {
	r.seRefOnce.Do(func() {
		m := map[LandingRef]bool{}
		if r.Discovery != nil {
			for _, c := range r.Discovery.Campaigns() {
				for _, mi := range c.Members {
					for _, ref := range r.Discovery.Observations[mi].Refs {
						m[ref] = true
					}
				}
			}
		}
		r.seRefCache = m
	})
	return r.seRefCache
}

// IsSEDomain reports whether an e2LD belongs to a discovered SE
// campaign. Safe for concurrent use.
func (r *RunResult) IsSEDomain(e2ld string) bool {
	r.seDomainOnce.Do(func() {
		m := map[string]bool{}
		if r.Discovery != nil {
			for _, c := range r.Discovery.Campaigns() {
				for _, d := range c.Domains {
					m[d] = true
				}
			}
		}
		r.seDomainCache = m
	})
	return r.seDomainCache[e2ld]
}

// SEAttackCount returns the total SE attack instances discovered (0
// when discovery has not run).
func (r *RunResult) SEAttackCount() int {
	if r.Discovery == nil {
		return 0
	}
	n := 0
	for _, c := range r.Discovery.Campaigns() {
		n += c.AttackCount(r.Discovery.Observations)
	}
	return n
}

// NewPipeline binds a pipeline to the measurement-facing services.
func NewPipeline(cfg PipelineConfig, internet *webtx.Internet, clock *vclock.Clock,
	search *websearch.Engine, bl *gsb.Blacklist, vt *vtsim.Service, cats *webcat.Service) *Pipeline {
	if cfg.Capture == nil && !cfg.DisableCapture {
		cfg.Capture = screenshot.NewCache(0, cfg.Obs)
	}
	if cfg.DisableNoisePlanes {
		cfg.Capture.DisableNoisePlanes()
	}
	if cfg.Scripts == nil && !cfg.DisableScriptCache {
		cfg.Scripts = adscript.NewProgramCache(0, cfg.Obs)
	}
	return &Pipeline{Cfg: cfg, Internet: internet, Clock: clock, Search: search, GSB: bl, VT: vt, Webcat: cats}
}

// Reverse runs step ②.
func (p *Pipeline) Reverse() (hosts []string, byHost map[string][]string) {
	defer p.Cfg.Obs.StartSpan("reverse").End()
	return ReverseSeeds(p.Search, p.Cfg.Seeds)
}

// Crawl runs step ③ over the two IP-vantage groups.
func (p *Pipeline) Crawl(byHost map[string][]string) []*crawler.Session {
	sessions, _ := p.CrawlContext(context.Background(), byHost)
	return sessions
}

// CrawlContext is Crawl with cancellation: no new session starts after
// ctx is done, and ctx.Err() is returned with the sessions completed so
// far (unstarted slots filtered out).
func (p *Pipeline) CrawlContext(ctx context.Context, byHost map[string][]string) ([]*crawler.Session, error) {
	defer p.Cfg.Obs.StartSpan("crawl").End()
	farm, tasks := p.crawlFarm(byHost)
	sessions, err := farm.CrawlAllContext(ctx, tasks)
	if err != nil {
		kept := sessions[:0]
		for _, s := range sessions {
			if s != nil {
				kept = append(kept, s)
			}
		}
		return kept, err
	}
	return sessions, nil
}

// crawlFarm builds the deterministic (task, UA) crawl plan and the farm,
// shared by the phased and streaming paths.
func (p *Pipeline) crawlFarm(byHost map[string][]string) (*crawler.Crawler, []crawler.Task) {
	inst, res := GroupPublishers(byHost, p.Cfg.Seeds)
	var tasks []crawler.Task
	for _, h := range inst.Hosts {
		tasks = append(tasks, crawler.Task{Host: h, ClientIP: inst.ClientIP})
	}
	for _, h := range res.Hosts {
		tasks = append(tasks, crawler.Task{Host: h, ClientIP: res.ClientIP})
	}
	if p.Cfg.MaxPublishers > 0 && len(tasks) > p.Cfg.MaxPublishers {
		tasks = tasks[:p.Cfg.MaxPublishers]
	}
	ccfg := p.Cfg.Crawler
	if ccfg.Obs == nil {
		ccfg.Obs = p.Cfg.Obs
	}
	if ccfg.Capture == nil {
		ccfg.Capture = p.Cfg.Capture
	}
	if ccfg.Scripts == nil {
		ccfg.Scripts = p.Cfg.Scripts
	}
	return crawler.New(p.Internet, p.Clock, ccfg), tasks
}

// Discover runs step ⑤.
func (p *Pipeline) Discover(sessions []*crawler.Session) (*DiscoveryResult, error) {
	defer p.Cfg.Obs.StartSpan("discover").End()
	params := p.Cfg.Discovery
	if params.Cluster.MinPts == 0 {
		params = PaperDiscoveryParams
	}
	if params.Obs == nil {
		params.Obs = p.Cfg.Obs
	}
	if params.Store == nil {
		params.Store = p.Cfg.Campaigns
	}
	if p.Cfg.DisableIncremental {
		params.DisableIncremental = true
	}
	return Discover(sessions, params)
}

// Attribute runs step ⑦.
func (p *Pipeline) Attribute(sessions []*crawler.Session) []Attribution {
	defer p.Cfg.Obs.StartSpan("attribute").End()
	return AttributeSessions(sessions, PatternSetFromSeeds(p.Cfg.Seeds))
}

// Milk runs step ⑥: candidate extraction, source verification, tracking.
func (p *Pipeline) Milk(sessions []*crawler.Session, disc *DiscoveryResult) ([]MilkSource, *MilkingResult, error) {
	return p.MilkContext(context.Background(), sessions, disc)
}

// MilkContext is Milk with cancellation, observed between source
// verification and tracking and at every virtual tick of the tracking
// loop.
func (p *Pipeline) MilkContext(ctx context.Context, sessions []*crawler.Session, disc *DiscoveryResult) ([]MilkSource, *MilkingResult, error) {
	return p.milkContext(ctx, sessions, disc, nil)
}

// milkContext is MilkContext with an optional prebuilt backtracking
// graph cache from the streaming coordinator (nil on the phased path).
func (p *Pipeline) milkContext(ctx context.Context, sessions []*crawler.Session, disc *DiscoveryResult, graphs map[int]*btgraph.Graph) ([]MilkSource, *MilkingResult, error) {
	mcfg := p.Cfg.Milker
	if mcfg.Obs == nil {
		mcfg.Obs = p.Cfg.Obs
	}
	if mcfg.Campaigns == nil && disc != nil && !p.Cfg.DisableIncremental {
		// Milked sightings extend the same store discovery clustered
		// through, so live campaign state keeps tracking during milking.
		mcfg.Campaigns = disc.Store
	}
	if mcfg.Capture == nil {
		mcfg.Capture = p.Cfg.Capture
	}
	if mcfg.Scripts == nil {
		mcfg.Scripts = p.Cfg.Scripts
	}
	cands := extractMilkingSources(sessions, disc, graphs)
	milker := NewMilker(p.Internet, p.Clock, p.GSB, p.VT, mcfg)
	defer milker.Close()
	verifySpan := p.Cfg.Obs.StartSpan("verify")
	sources := milker.VerifySources(cands)
	verifySpan.End()
	if len(sources) == 0 {
		return nil, nil, Errorf("no milkable sources verified from %d candidates", len(cands))
	}
	if err := ctx.Err(); err != nil {
		return sources, nil, err
	}
	milkSpan := p.Cfg.Obs.StartSpan("milk")
	res, err := milker.RunContext(ctx, sources)
	milkSpan.End()
	return sources, res, err
}

// Run executes the full pipeline (milking included).
func (p *Pipeline) Run() (*RunResult, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the full pipeline under ctx. Cancellation is
// observed between stages and inside the two long-running loops (crawl
// session feed, milking virtual ticks); a cancelled run returns
// ctx.Err() and the partial result must be discarded.
//
// The streaming coordinator (RunStream) is the default execution; the
// DisableStreaming knob selects the legacy phased path. Both produce
// byte-identical results.
func (p *Pipeline) RunContext(ctx context.Context) (*RunResult, error) {
	if p.Cfg.DisableStreaming {
		return p.runPhasedContext(ctx)
	}
	return p.RunStream(ctx, StreamOptions{})
}

// runPhasedContext is the legacy five-serial-stage execution, kept as
// the A/B reference for the streaming coordinator.
func (p *Pipeline) runPhasedContext(ctx context.Context) (*RunResult, error) {
	out := &RunResult{}
	out.PublisherHosts, out.NetworksByHost = p.Reverse()
	if len(out.PublisherHosts) == 0 {
		return nil, Errorf("seed reversal found no publishers")
	}
	sessions, err := p.CrawlContext(ctx, out.NetworksByHost)
	if err != nil {
		return nil, err
	}
	out.Sessions = sessions
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	disc, err := p.Discover(out.Sessions)
	if err != nil {
		return nil, err
	}
	out.Discovery = disc
	out.Attributions = p.Attribute(out.Sessions)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sources, milking, err := p.MilkContext(ctx, out.Sessions, disc)
	if err != nil {
		return nil, err
	}
	out.Sources = sources
	out.Milking = milking
	return out, nil
}
