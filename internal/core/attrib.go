package core

import (
	"sort"
	"strings"

	"repro/internal/btgraph"
	"repro/internal/crawler"
	"repro/internal/urlx"
	"repro/internal/websearch"
)

// UnknownNetwork is the attribution label for ads matching no seed
// pattern (Table 3's final row).
const UnknownNetwork = "Unknown"

// Attribution is the result of attributing one landing page back to an
// ad network (Section 3.6).
type Attribution struct {
	Ref     LandingRef
	URL     string // landing URL
	Network string // seed network name or UnknownNetwork
	// Chain is the backtracking URL path (root first).
	Chain []string
}

// AttributeSessions links every landing page in the crawl to the ad
// network that delivered it, by matching each URL of the reconstructed
// ad-loading process against the seed invariant patterns.
func AttributeSessions(sessions []*crawler.Session, patterns *urlx.PatternSet) []Attribution {
	var out []Attribution
	for si, s := range sessions {
		out = append(out, attributeSession(si, s, nil, patterns)...)
	}
	return out
}

// attributeSession attributes one session's landings. Sessions are
// independent, so the streaming coordinator runs this per session as the
// crawl emits them; concatenating the results in session order yields
// exactly AttributeSessions' output. g, when non-nil, is the session's
// prebuilt backtracking graph (shared with milking-source extraction).
func attributeSession(si int, s *crawler.Session, g *btgraph.Graph, patterns *urlx.PatternSet) []Attribution {
	if s == nil || len(s.Landings) == 0 {
		return nil
	}
	if g == nil {
		g = btgraph.FromEvents(s.Events)
	}
	var out []Attribution
	for li, l := range s.Landings {
		if l.URL.IsZero() {
			continue
		}
		a := Attribution{
			Ref:     LandingRef{Session: si, Landing: li},
			URL:     l.URL.String(),
			Network: UnknownNetwork,
		}
		if path, err := g.BacktrackPath(l.URL.String()); err == nil {
			a.Chain = path
			for _, raw := range path {
				u, err := urlx.Parse(raw)
				if err != nil {
					continue
				}
				if owner := patterns.MatchURL(u); owner != "" {
					a.Network = owner
					break
				}
			}
		}
		out = append(out, a)
	}
	return out
}

// NetworkRow is one Table 3 row.
type NetworkRow struct {
	Network       string
	LandingPages  int
	SEAttackPages int
	SERate        float64 // percentage
}

// AggregateAttribution builds the Table 3 rows: landing pages and
// SE-attack pages per network. isSE reports whether a landing belongs to
// a discovered SE campaign (by its (hash, e2LD) observation).
func AggregateAttribution(attrs []Attribution, isSE func(ref LandingRef) bool) []NetworkRow {
	type agg struct{ landings, se int }
	byNet := map[string]*agg{}
	for _, a := range attrs {
		g, ok := byNet[a.Network]
		if !ok {
			g = &agg{}
			byNet[a.Network] = g
		}
		g.landings++
		if isSE(a.Ref) {
			g.se++
		}
	}
	var out []NetworkRow
	for net, g := range byNet {
		row := NetworkRow{Network: net, LandingPages: g.landings, SEAttackPages: g.se}
		if g.landings > 0 {
			row.SERate = 100 * float64(g.se) / float64(g.landings)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LandingPages != out[j].LandingPages {
			return out[i].LandingPages > out[j].LandingPages
		}
		return out[i].Network < out[j].Network
	})
	return out
}

// DiscoveredNetwork is a previously unknown ad network inferred from the
// logs of Unknown-attributed SE attacks (Section 4.4).
type DiscoveredNetwork struct {
	// PathToken is the recurring first path segment of the network's
	// serve/click URLs — its URL invariant.
	PathToken string
	// SnippetVar is the recurring snippet variable name found on the
	// publishers that delivered the unknown ads — its source invariant.
	SnippetVar string
	// Support counts how many unknown attack chains exhibited the token.
	Support int
	// Patterns are ready-to-use attribution patterns.
	Patterns []urlx.Pattern
	// Publishers are the additional publisher hosts found by re-searching
	// the snippet invariant.
	Publishers []string
}

// DiscoverNewNetworks analyses Unknown-attributed attacks: it extracts
// recurring URL path tokens from their ad-loading chains and recurring
// snippet variables from the originating publisher pages, yielding new
// seed networks. pageSource fetches a publisher page's source (the
// search engine's copy suffices).
func DiscoverNewNetworks(
	attrs []Attribution,
	sessions []*crawler.Session,
	knownVars map[string]bool,
	engine *websearch.Engine,
	minSupport int,
) []DiscoveredNetwork {
	// 1. Recurring first-path-segment tokens across unknown chains.
	tokenSupport := map[string]int{}
	tokenPublishers := map[string]map[string]bool{}
	for _, a := range attrs {
		if a.Network != UnknownNetwork {
			continue
		}
		pub := sessions[a.Ref.Session].Publisher
		landingE2LD := ""
		if lu, err := urlx.Parse(a.URL); err == nil {
			landingE2LD = urlx.E2LD(lu.Host)
		}
		seen := map[string]bool{}
		for _, raw := range a.Chain {
			u, err := urlx.Parse(raw)
			if err != nil || u.Host == pub {
				continue
			}
			// The landing page's own paths are campaign artefacts, not
			// ad-network invariants.
			if landingE2LD != "" && urlx.E2LD(u.Host) == landingE2LD {
				continue
			}
			tok := firstPathSegment(u.Path)
			if tok == "" || seen[tok] {
				continue
			}
			seen[tok] = true
			tokenSupport[tok]++
			if tokenPublishers[tok] == nil {
				tokenPublishers[tok] = map[string]bool{}
			}
			tokenPublishers[tok][pub] = true
		}
	}
	// Normalise click tokens ("xyz-c") onto their serve token ("xyz").
	merged := map[string]int{}
	mergedPubs := map[string]map[string]bool{}
	for tok, n := range tokenSupport {
		base := strings.TrimSuffix(tok, "-c")
		merged[base] += n
		if mergedPubs[base] == nil {
			mergedPubs[base] = map[string]bool{}
		}
		for p := range tokenPublishers[tok] {
			mergedPubs[base][p] = true
		}
	}

	var tokens []string
	for tok, n := range merged {
		if n >= minSupport && !looksGeneric(tok) {
			tokens = append(tokens, tok)
		}
	}
	sort.Strings(tokens)

	// 2. For each token, find the snippet variable shared by its
	// publishers' page sources.
	var out []DiscoveredNetwork
	for _, tok := range tokens {
		var pubs []string
		for p := range mergedPubs[tok] {
			pubs = append(pubs, p)
		}
		sort.Strings(pubs)
		snippetVar := commonSnippetVar(engine, pubs, knownVars)
		dn := DiscoveredNetwork{
			PathToken:  tok,
			SnippetVar: snippetVar,
			Support:    merged[tok],
			Patterns: []urlx.Pattern{
				{Name: "discovered/" + tok + "/serve-url", Kind: urlx.KindURL, PathGlob: "/" + tok + "/*/serve.js"},
				{Name: "discovered/" + tok + "/click-url", Kind: urlx.KindURL, PathPrefix: "/" + tok + "-c/"},
			},
		}
		if snippetVar != "" {
			dn.Patterns = append(dn.Patterns, urlx.Pattern{
				Name: "discovered/" + tok + "/snippet-var", Kind: urlx.KindSource,
				BodyToken: "let " + snippetVar + " =",
			})
			dn.Publishers = engine.Search("let " + snippetVar + " =")
		}
		out = append(out, dn)
	}
	return out
}

func firstPathSegment(path string) string {
	path = strings.TrimPrefix(path, "/")
	seg, _, _ := strings.Cut(path, "/")
	return seg
}

// looksGeneric filters path tokens that cannot be network invariants
// (landing paths, tracker paths shared with campaigns).
func looksGeneric(tok string) bool {
	switch {
	case tok == "", len(tok) > 12:
		return true
	case strings.Contains(tok, "."): // file names
		return true
	case tok == "track", tok == "dl", tok == "signup":
		return true
	}
	return false
}

// commonSnippetVar finds a "let <var> =" variable present on a majority
// of the publishers and absent from the known-variable set.
func commonSnippetVar(engine *websearch.Engine, pubs []string, knownVars map[string]bool) string {
	if len(pubs) == 0 {
		return ""
	}
	counts := map[string]int{}
	for _, p := range pubs {
		for _, v := range snippetVarsIn(pageSourceOf(engine, p)) {
			if !knownVars[v] {
				counts[v]++
			}
		}
	}
	best, bestN := "", 0
	var names []string
	for v := range counts {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		if counts[v] > bestN {
			best, bestN = v, counts[v]
		}
	}
	if bestN*2 < len(pubs) { // require majority support
		return ""
	}
	return best
}

// pageSourceOf retrieves the indexed source for a host by probing the
// engine with a throwaway search; the engine has no direct getter, so we
// keep a minimal accessor here. (The search engine stores exactly what
// the crawler would re-fetch.)
func pageSourceOf(engine *websearch.Engine, host string) string {
	return engine.Source(host)
}

// snippetVarsIn extracts candidate invariant variable names: the "<var>"
// of every top-level "let <var> =" whose initialiser is an object
// literal (ad snippets configure zones that way).
func snippetVarsIn(source string) []string {
	var out []string
	rest := source
	for {
		i := strings.Index(rest, "let ")
		if i < 0 {
			return out
		}
		rest = rest[i+4:]
		j := strings.IndexAny(rest, " =")
		if j <= 0 {
			continue
		}
		name := rest[:j]
		after := strings.TrimLeft(rest[j:], " ")
		after = strings.TrimPrefix(after, "=")
		after = strings.TrimLeft(after, " ")
		if strings.HasPrefix(after, "{") && validIdent(name) {
			out = append(out, name)
		}
	}
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
