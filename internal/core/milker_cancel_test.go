package core_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/worldgen"
)

// flipCtx is a context whose Err flips to Canceled permanently after a
// fixed number of Err calls — a deterministic way to cancel the milking
// loop mid-run, deep inside the tick schedule, without wall-clock
// timing.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// milkUnderCtx runs crawl → discovery → milking on a fresh tiny world
// and returns the verified sources plus the (possibly partial) milking
// result and error.
func milkUnderCtx(t *testing.T, ctx context.Context) ([]core.MilkSource, *core.MilkingResult, error) {
	t.Helper()
	w := worldgen.Build(worldgen.TinyConfig())
	p := core.NewPipeline(core.PipelineConfig{
		Seeds:     seedsFrom(w),
		Crawler:   crawler.Config{Workers: 1},
		Discovery: core.PaperDiscoveryParams,
		Milker: core.MilkerConfig{
			Duration:   6 * time.Hour,
			GSBExtra:   6 * time.Hour,
			MaxSources: 30,
			Workers:    4,
		},
	}, w.Internet, w.Clock, w.Search, w.GSB, w.VT, w.Webcat)
	_, byHost := p.Reverse()
	sessions := p.Crawl(byHost)
	disc, err := p.Discover(sessions)
	if err != nil {
		t.Fatal(err)
	}
	return p.MilkContext(ctx, sessions, disc)
}

// TestMilkingCancelNeverSplitsBatch is the pipelined scheduler's
// cancellation contract: a run cancelled mid-schedule must return a
// partial result that (a) contains only whole committed batches — every
// milking tick schedules one session per source, batches coalesce whole
// ticks, and a group that started committing always finishes, so the
// session count must be an exact multiple of the source count — and (b)
// is a prefix of the uncancelled run on every field fixed at commit
// time. A torn batch would break both.
func TestMilkingCancelNeverSplitsBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("two pipeline runs")
	}
	fullSources, full, err := milkUnderCtx(t, context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Cancel after enough Err calls to get well into the tick schedule
	// but well short of its end: with 30 sources and 24 ticks, the milk
	// timers alone make ~720 Err checks.
	ctx := &flipCtx{Context: context.Background(), after: 300}
	sources, partial, err := milkUnderCtx(t, ctx)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if partial == nil {
		t.Fatal("cancelled run returned nil result — partial result expected")
	}
	if len(sources) != len(fullSources) {
		t.Fatalf("source verification diverged: %d vs %d sources", len(sources), len(fullSources))
	}

	if partial.Sessions == 0 {
		t.Fatal("cancellation fired before any batch committed — flip threshold too low for the invariant to bite")
	}
	if partial.Sessions >= full.Sessions {
		t.Fatalf("cancellation fired too late: partial %d sessions, full %d", partial.Sessions, full.Sessions)
	}
	if partial.Sessions%len(sources) != 0 {
		t.Fatalf("partially-committed batch escaped: %d sessions is not a multiple of %d sources",
			partial.Sessions, len(sources))
	}

	// Commit order is deterministic, so the partial result's domains
	// must be a prefix of the full run's on the commit-time fields.
	// (GSBListedAt and GSBFinal legitimately differ: the full run polls
	// longer and runs the final sweep the cancelled run skips.)
	if len(partial.Domains) > len(full.Domains) {
		t.Fatalf("partial run found more domains (%d) than full run (%d)",
			len(partial.Domains), len(full.Domains))
	}
	for i, pd := range partial.Domains {
		fd := full.Domains[i]
		if pd.Host != fd.Host || pd.Category != fd.Category ||
			pd.CampaignID != fd.CampaignID || !pd.FirstSeen.Equal(fd.FirstSeen) ||
			pd.GSBInit != fd.GSBInit {
			t.Fatalf("domain %d diverges from full-run prefix:\n  partial: %+v\n  full:    %+v", i, pd, fd)
		}
	}
	if len(partial.Domains) == 0 {
		t.Fatal("no domains committed before cancellation — prefix check vacuous")
	}
}
