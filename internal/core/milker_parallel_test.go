package core_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/worldgen"
)

// milkWithWorkers runs crawl → discovery → milking on a fresh tiny
// world with the milking engine at the given worker count. The crawl is
// pinned to one worker so the milking sources are identical across
// invocations; only the stage under test varies.
func milkWithWorkers(t *testing.T, workers int) *core.MilkingResult {
	t.Helper()
	w := worldgen.Build(worldgen.TinyConfig())
	p := core.NewPipeline(core.PipelineConfig{
		Seeds:     seedsFrom(w),
		Crawler:   crawler.Config{Workers: 1},
		Discovery: core.PaperDiscoveryParams,
		Milker: core.MilkerConfig{
			Duration:   6 * time.Hour,
			GSBExtra:   6 * time.Hour,
			MaxSources: 30,
			Workers:    workers,
		},
	}, w.Internet, w.Clock, w.Search, w.GSB, w.VT, w.Webcat)
	_, byHost := p.Reverse()
	sessions := p.Crawl(byHost)
	disc, err := p.Discover(sessions)
	if err != nil {
		t.Fatal(err)
	}
	_, milk, err := p.Milk(sessions, disc)
	if err != nil {
		t.Fatal(err)
	}
	return milk
}

// TestMilkingWorkerCountInvariance is the milking engine's determinism
// contract at stage level: same-tick sessions probed by one worker or
// eight must commit the same domains, files, lags and counts. Run under
// -race this also exercises the concurrent probe wave against the
// shared world (internet, campaigns, GSB, clock).
func TestMilkingWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two pipeline runs")
	}
	serial := milkWithWorkers(t, 1)
	parallel := milkWithWorkers(t, 8)

	if serial.Sessions != parallel.Sessions || serial.Sources != parallel.Sources {
		t.Fatalf("session/source counts differ: %d/%d vs %d/%d",
			serial.Sessions, serial.Sources, parallel.Sessions, parallel.Sources)
	}
	if serial.VerifiedMatch != parallel.VerifiedMatch {
		t.Fatalf("verified counts differ: %d vs %d", serial.VerifiedMatch, parallel.VerifiedMatch)
	}
	if !reflect.DeepEqual(serial.Domains, parallel.Domains) {
		t.Fatalf("milked domains differ:\n  workers=1: %+v\n  workers=8: %+v",
			serial.Domains, parallel.Domains)
	}
	if !reflect.DeepEqual(serial.Files, parallel.Files) {
		t.Fatalf("milked files differ:\n  workers=1: %+v\n  workers=8: %+v",
			serial.Files, parallel.Files)
	}
	if len(serial.Domains) == 0 {
		t.Fatal("no domains milked — invariance vacuous")
	}
}
