package core

import (
	"sort"

	"repro/internal/urlx"
	"repro/internal/websearch"
)

// ReverseSeeds runs the paper's step ② (Section 3.1): each seed
// network's invariant snippet is queried against the source-code search
// engine, producing the publisher pool and a host -> embedding-networks
// mapping.
func ReverseSeeds(engine *websearch.Engine, seeds []SeedNetwork) (hosts []string, byHost map[string][]string) {
	byHost = map[string][]string{}
	for _, s := range seeds {
		for _, h := range engine.Search(s.SearchSnippet) {
			byHost[h] = append(byHost[h], s.Name)
		}
	}
	hosts = make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts, byHost
}

// PatternSetFromSeeds compiles the seed networks' invariants into the
// attribution pattern set (Section 3.6).
func PatternSetFromSeeds(seeds []SeedNetwork) *urlx.PatternSet {
	ps := urlx.NewPatternSet()
	for _, s := range seeds {
		ps.Add(s.Name, s.Patterns...)
	}
	return ps
}

// TopRankCounts reports how many hosts sit within each popularity-rank
// threshold (the paper: 52 publishers in the top 10,000; 4 in the top
// 1,000).
func TopRankCounts(engine *websearch.Engine, hosts []string, thresholds ...int) map[int]int {
	out := map[int]int{}
	for _, th := range thresholds {
		out[th] = 0
	}
	for _, h := range hosts {
		r := engine.Rank(h)
		if r <= 0 {
			continue
		}
		for _, th := range thresholds {
			if r <= th {
				out[th]++
			}
		}
	}
	return out
}
