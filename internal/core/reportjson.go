package core

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/gsb"
	"repro/internal/urlx"
	"repro/internal/webcat"
)

// Report is the machine-readable record of one full experiment — every
// table plus the headline scalars, in one document. It is what a
// longitudinal deployment of the system would archive per run.
type Report struct {
	GeneratedAt time.Time   `json:"generated_at"`
	Table1      []Table1Row `json:"table1"`
	Table2      []Table2Row `json:"table2"`
	Table3      []Table3Row `json:"table3"`
	Table4      []Table4Row `json:"table4,omitempty"`
	Scalars     Scalars     `json:"scalars"`
}

// Table2Row mirrors webcat.CategoryCount with JSON tags.
type Table2Row struct {
	Category string  `json:"category"`
	Count    int     `json:"count"`
	Percent  float64 `json:"percent"`
}

// Scalars are the non-tabular headline numbers of Sections 4.3-4.5.
type Scalars struct {
	PublishersCrawled int     `json:"publishers_crawled"`
	CrawlSessions     int     `json:"crawl_sessions"`
	Clusters          int     `json:"clusters"`
	SECampaigns       int     `json:"se_campaigns"`
	BenignClusters    int     `json:"benign_clusters"`
	SEAttacks         int     `json:"se_attacks"`
	SEACMAPublishers  int     `json:"seacma_publishers"`
	MilkingSources    int     `json:"milking_sources,omitempty"`
	MilkingSessions   int     `json:"milking_sessions,omitempty"`
	MilkedDomains     int     `json:"milked_domains,omitempty"`
	MilkedFiles       int     `json:"milked_files,omitempty"`
	MeanGSBLagDays    float64 `json:"mean_gsb_lag_days,omitempty"`
	ScamPhones        int     `json:"scam_phones,omitempty"`
}

// BuildReport assembles the Report for a pipeline run. bl/cats/at are
// the blacklist, categoriser and lookup time used for Tables 1/2.
func BuildReport(run *RunResult, patterns *urlx.PatternSet, bl *gsb.Blacklist, cats *webcat.Service, at time.Time) Report {
	rep := Report{
		GeneratedAt: at,
		Table1:      Table1(run.Discovery, bl, at),
		Table3:      Table3(run.Attributions, patterns, run.IsSE),
	}
	for _, r := range Table2(run.Discovery, run.Sessions, cats, 20) {
		rep.Table2 = append(rep.Table2, Table2Row{Category: r.Category, Count: r.Count, Percent: r.Percent})
	}
	rep.Scalars = Scalars{
		PublishersCrawled: len(run.PublisherHosts),
		CrawlSessions:     len(run.Sessions),
		Clusters:          len(run.Discovery.Clusters),
		SECampaigns:       len(run.Discovery.Campaigns()),
		BenignClusters:    len(run.Discovery.BenignClusters()),
		SEAttacks:         run.SEAttackCount(),
		SEACMAPublishers:  SEACMAPublisherCount(run.Discovery, run.Sessions),
	}
	if run.Milking != nil {
		rep.Table4 = Table4(run.Milking)
		rep.Scalars.MilkingSources = run.Milking.Sources
		rep.Scalars.MilkingSessions = run.Milking.Sessions
		rep.Scalars.MilkedDomains = len(run.Milking.Domains)
		rep.Scalars.MilkedFiles = len(run.Milking.Files)
		rep.Scalars.MeanGSBLagDays = run.Milking.MeanGSBLag().Hours() / 24
		if run.Milking.Phones != nil {
			rep.Scalars.ScamPhones = run.Milking.Phones.Len()
		}
	}
	return rep
}

// WriteJSON encodes the report with indentation.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseReport decodes a report written by WriteJSON.
func ParseReport(r io.Reader) (Report, error) {
	var rep Report
	err := json.NewDecoder(r).Decode(&rep)
	return rep, err
}
