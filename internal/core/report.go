package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/crawler"
	"repro/internal/gsb"
	"repro/internal/urlx"
	"repro/internal/webcat"
)

// Table1Row is one row of the paper's Table 1 (SE ad campaign
// statistics).
type Table1Row struct {
	Category       Category
	SEAttacks      int
	AttackDomains  int
	Campaigns      int
	GSBDomainPct   float64
	GSBCampaignPct float64
}

// Table1 aggregates discovery output into Table 1: per category, the
// attack instances, distinct attack domains, campaign count and GSB
// coverage at lookup time.
func Table1(disc *DiscoveryResult, bl *gsb.Blacklist, at time.Time) []Table1Row {
	type agg struct {
		attacks     int
		domains     map[string]bool
		campaigns   int
		detectedDom int
		detectedCmp int
	}
	byCat := map[Category]*agg{}
	for _, c := range disc.Campaigns() {
		cat := c.Category
		a, ok := byCat[cat]
		if !ok {
			a = &agg{domains: map[string]bool{}}
			byCat[cat] = a
		}
		a.campaigns++
		a.attacks += c.AttackCount(disc.Observations)
		anyListed := false
		for _, d := range c.Domains {
			if !a.domains[d] {
				a.domains[d] = true
				if bl.Lookup(d, at) {
					a.detectedDom++
				}
			}
			if bl.Lookup(d, at) {
				anyListed = true
			}
		}
		if anyListed {
			a.detectedCmp++
		}
	}
	var out []Table1Row
	for _, cat := range AllSECategories {
		a, ok := byCat[cat]
		if !ok {
			continue
		}
		row := Table1Row{
			Category:      cat,
			SEAttacks:     a.attacks,
			AttackDomains: len(a.domains),
			Campaigns:     a.campaigns,
		}
		if len(a.domains) > 0 {
			row.GSBDomainPct = 100 * float64(a.detectedDom) / float64(len(a.domains))
		}
		if a.campaigns > 0 {
			row.GSBCampaignPct = 100 * float64(a.detectedCmp) / float64(a.campaigns)
		}
		out = append(out, row)
	}
	// Any cluster categorised outside the six rows (unknown-se) is
	// appended at the end for completeness.
	for cat, a := range byCat {
		known := false
		for _, k := range AllSECategories {
			if cat == k {
				known = true
			}
		}
		if !known {
			out = append(out, Table1Row{Category: cat, SEAttacks: a.attacks,
				AttackDomains: len(a.domains), Campaigns: a.campaigns})
		}
	}
	return out
}

// Table2 returns the top-N categories of SEACMA-hosting publishers.
func Table2(disc *DiscoveryResult, sessions []*crawler.Session, cats *webcat.Service, topN int) []webcat.CategoryCount {
	hosts := map[string]bool{}
	for _, c := range disc.Campaigns() {
		for _, m := range c.Members {
			for _, ref := range disc.Observations[m].Refs {
				hosts[sessions[ref.Session].Publisher] = true
			}
		}
	}
	var list []string
	for h := range hosts {
		list = append(list, h)
	}
	sort.Strings(list)
	rows := cats.Aggregate(list)
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// SEACMAPublisherCount returns how many distinct publishers hosted
// SEACMA ads (the paper: 11,341 of 70,541 crawled).
func SEACMAPublisherCount(disc *DiscoveryResult, sessions []*crawler.Session) int {
	hosts := map[string]bool{}
	for _, c := range disc.Campaigns() {
		for _, m := range c.Members {
			for _, ref := range disc.Observations[m].Refs {
				hosts[sessions[ref.Session].Publisher] = true
			}
		}
	}
	return len(hosts)
}

// Table3Row is one row of Table 3 (per-network SE attack delivery).
type Table3Row struct {
	Network        string
	NetworkDomains int
	LandingPages   int
	SEAttackPages  int
	SERatePct      float64
}

// Table3 combines attribution rows with per-network domain counts
// observed in the ad-loading chains.
func Table3(attrs []Attribution, patterns *urlx.PatternSet, isSE func(ref LandingRef) bool) []Table3Row {
	netRows := AggregateAttribution(attrs, isSE)
	domains := map[string]map[string]bool{}
	for _, a := range attrs {
		for _, raw := range a.Chain {
			u, err := urlx.Parse(raw)
			if err != nil {
				continue
			}
			if owner := patterns.MatchURL(u); owner != "" {
				if domains[owner] == nil {
					domains[owner] = map[string]bool{}
				}
				domains[owner][u.Host] = true
			}
		}
	}
	var out []Table3Row
	for _, r := range netRows {
		out = append(out, Table3Row{
			Network:        r.Network,
			NetworkDomains: len(domains[r.Network]),
			LandingPages:   r.LandingPages,
			SEAttackPages:  r.SEAttackPages,
			SERatePct:      r.SERate,
		})
	}
	return out
}

// Table4Row is one row of Table 4 (milking).
type Table4Row struct {
	Category    Category
	Domains     int
	GSBInitPct  float64
	GSBFinalPct float64
}

// Table4 aggregates a milking run per category, plus the Total row last.
func Table4(res *MilkingResult) []Table4Row {
	type agg struct{ n, init, final int }
	byCat := map[Category]*agg{}
	for _, d := range res.Domains {
		a, ok := byCat[d.Category]
		if !ok {
			a = &agg{}
			byCat[d.Category] = a
		}
		a.n++
		if d.GSBInit {
			a.init++
		}
		if d.GSBFinal {
			a.final++
		}
	}
	var out []Table4Row
	total := agg{}
	for _, cat := range AllSECategories {
		a, ok := byCat[cat]
		if !ok {
			continue
		}
		out = append(out, Table4Row{
			Category: cat, Domains: a.n,
			GSBInitPct:  pct(a.init, a.n),
			GSBFinalPct: pct(a.final, a.n),
		})
		total.n += a.n
		total.init += a.init
		total.final += a.final
	}
	out = append(out, Table4Row{
		Category: "total", Domains: total.n,
		GSBInitPct:  pct(total.init, total.n),
		GSBFinalPct: pct(total.final, total.n),
	})
	return out
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// FormatTable renders rows of cells as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Category.DisplayName(),
			fmt.Sprintf("%d", r.SEAttacks),
			fmt.Sprintf("%d", r.AttackDomains),
			fmt.Sprintf("%d", r.Campaigns),
			fmt.Sprintf("%.1f%%", r.GSBDomainPct),
			fmt.Sprintf("%.1f%%", r.GSBCampaignPct),
		})
	}
	return FormatTable([]string{"Category", "# SE Attacks", "# Attack Domains", "# SE Campaigns", "GSB% domains", "GSB% campaigns"}, cells)
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Network,
			fmt.Sprintf("%d", r.NetworkDomains),
			fmt.Sprintf("%d", r.LandingPages),
			fmt.Sprintf("%d", r.SEAttackPages),
			fmt.Sprintf("%.2f%%", r.SERatePct),
		})
	}
	return FormatTable([]string{"Ad network", "# Network domains", "# Landing pages", "# SE attack pages", "% SE attack pages"}, cells)
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	var cells [][]string
	for _, r := range rows {
		name := r.Category.DisplayName()
		if r.Category == "total" {
			name = "Total"
		}
		cells = append(cells, []string{
			name,
			fmt.Sprintf("%d", r.Domains),
			fmt.Sprintf("%.2f%%", r.GSBInitPct),
			fmt.Sprintf("%.2f%%", r.GSBFinalPct),
		})
	}
	return FormatTable([]string{"Category", "# Domains", "GSB-init", "GSB-final"}, cells)
}

// AdvertiserCost implements the Section 6 ethics accounting: per
// non-SE landing domain, the number of loads and the estimated advertiser
// cost at the given CPM.
type AdvertiserCost struct {
	Domain  string
	Loads   int
	CostUSD float64
}

// EstimateAdvertiserCosts returns per-domain costs sorted by descending
// loads, the worst case first. isSE filters out SE attack landings.
func EstimateAdvertiserCosts(sessions []*crawler.Session, isSEDomain func(e2ld string) bool, cpmUSD float64) []AdvertiserCost {
	loads := map[string]int{}
	for _, s := range sessions {
		if s == nil {
			continue
		}
		for _, l := range s.Landings {
			if l.E2LD == "" || isSEDomain(l.E2LD) {
				continue
			}
			loads[l.E2LD]++
		}
	}
	var out []AdvertiserCost
	for d, n := range loads {
		out = append(out, AdvertiserCost{Domain: d, Loads: n, CostUSD: float64(n) / 1000 * cpmUSD})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Loads != out[j].Loads {
			return out[i].Loads > out[j].Loads
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}
