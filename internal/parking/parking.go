// Package parking implements the automated parked-domain detection the
// paper defers to future work (Section 4.3): 11 of its 22 benign
// clusters were parked or placeholder domains that "could be
// automatically filtered out using parking detection algorithms
// [Vissers et al., NDSS 2015]".
//
// The detector scores a landing page on structural features that
// separate registrar placeholders from both SE attacks and ordinary
// content: sale/placeholder wording, skeletal DOM, absence of scripts
// and interactive elements, and a dominant centred notice box. The
// features are adapted from the cited work to the simulator's DOM model;
// the decision surface is a transparent linear score, not a trained
// model, so the classifier is auditable in tests.
package parking

import (
	"strings"

	"repro/internal/dom"
)

// Signals are the raw features extracted from one page.
type Signals struct {
	// SaleWording: title or text advertises the domain itself.
	SaleWording bool
	// Skeletal: very few DOM elements.
	Skeletal bool
	// NoScripts: the page runs no code.
	NoScripts bool
	// NoInteraction: no buttons, forms or iframes.
	NoInteraction bool
	// CentredNotice: one dominant centred box in the upper half.
	CentredNotice bool
	// ElementCount is the raw DOM size.
	ElementCount int
}

// saleTokens are the wordings registrar placeholders use.
var saleTokens = []string{
	"domain is for sale", "buy this domain", "domain may be for sale",
	"parked", "this page is parked", "coming soon", "under construction",
}

// ExtractSignals computes the detector features for a page.
func ExtractSignals(doc *dom.Document) Signals {
	var sg Signals
	if doc == nil || doc.Root == nil {
		sg.Skeletal = true
		sg.NoScripts = true
		sg.NoInteraction = true
		return sg
	}
	title := strings.ToLower(doc.Title)
	for _, tok := range saleTokens {
		if strings.Contains(title, tok) {
			sg.SaleWording = true
			break
		}
	}
	sg.ElementCount = doc.CountElements()
	sg.Skeletal = sg.ElementCount <= 25
	sg.NoScripts = len(doc.Scripts) == 0

	interactive := 0
	var boxes []*dom.Element
	doc.Root.Walk(func(el *dom.Element) bool {
		switch el.Tag {
		case "button", "form", "input", "iframe", "img":
			interactive++
		case "div":
			if el.Area() > 0 {
				boxes = append(boxes, el)
			}
		}
		return true
	})
	sg.NoInteraction = interactive == 0

	// Centred notice: a box whose centre sits near the page centre
	// horizontally, in the upper two thirds, covering 10-60% of the page.
	pw, ph := doc.Root.W, doc.Root.H
	if pw > 0 && ph > 0 {
		for _, b := range boxes {
			cx, cy := b.Center()
			frac := float64(b.Area()) / float64(pw*ph)
			if frac >= 0.10 && frac <= 0.60 &&
				abs(cx-pw/2) < pw/6 && cy < ph*2/3 {
				sg.CentredNotice = true
				break
			}
		}
	}
	return sg
}

// Score maps signals to [0, 1]; higher means more parked-like.
func Score(sg Signals) float64 {
	s := 0.0
	if sg.SaleWording {
		s += 0.45
	}
	if sg.Skeletal {
		s += 0.15
	}
	if sg.NoScripts {
		s += 0.15
	}
	if sg.NoInteraction {
		s += 0.10
	}
	if sg.CentredNotice {
		s += 0.15
	}
	return s
}

// Threshold is the default decision boundary.
const Threshold = 0.6

// IsParked classifies a page with the default threshold.
func IsParked(doc *dom.Document) bool {
	return Score(ExtractSignals(doc)) >= Threshold
}

// Detector carries a configurable threshold (for sweep experiments).
type Detector struct{ Threshold float64 }

// NewDetector returns a detector at the default threshold.
func NewDetector() Detector { return Detector{Threshold: Threshold} }

// Classify returns the verdict and the underlying score.
func (d Detector) Classify(doc *dom.Document) (parked bool, score float64) {
	score = Score(ExtractSignals(doc))
	return score >= d.Threshold, score
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
