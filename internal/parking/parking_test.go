package parking

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/secamp"
)

func TestParkedFamilyDetected(t *testing.T) {
	src := rng.New(1)
	for i := 0; i < 6; i++ {
		f := secamp.NewBenignFamily("p", secamp.BenignParked, 3, src.Split(string(rune('a'+i))))
		doc := f.DocForTest(0)
		if !IsParked(doc) {
			sg := ExtractSignals(doc)
			t.Errorf("parked family %d not detected: %+v score=%.2f", i, sg, Score(sg))
		}
	}
}

func TestSEAttackPagesNotParked(t *testing.T) {
	src := rng.New(2)
	for i, cat := range secamp.AllCategories {
		tmpl := secamp.NewTemplate(cat, i, src)
		doc := tmpl.BuildDoc("http://x.club/l", 7)
		if IsParked(doc) {
			sg := ExtractSignals(doc)
			t.Errorf("SE page (%v) classified parked: %+v score=%.2f", cat, sg, Score(sg))
		}
	}
}

func TestAdvertiserPagesNotParked(t *testing.T) {
	src := rng.New(3)
	for i := 0; i < 10; i++ {
		a := secamp.NewAdvertiser("a", src.Split(string(rune('a'+i))))
		doc := a.DocForTest()
		if IsParked(doc) {
			sg := ExtractSignals(doc)
			t.Errorf("advertiser %d classified parked: %+v score=%.2f", i, sg, Score(sg))
		}
	}
}

func TestNilDocSignals(t *testing.T) {
	sg := ExtractSignals(nil)
	if !sg.Skeletal || !sg.NoScripts || !sg.NoInteraction {
		t.Fatalf("nil doc signals = %+v", sg)
	}
	if sg.SaleWording || sg.CentredNotice {
		t.Fatalf("nil doc has positive content signals: %+v", sg)
	}
}

func TestScoreMonotonic(t *testing.T) {
	base := Signals{}
	if Score(base) != 0 {
		t.Fatal("empty signals score nonzero")
	}
	full := Signals{SaleWording: true, Skeletal: true, NoScripts: true, NoInteraction: true, CentredNotice: true}
	if Score(full) != 1.0 {
		t.Fatalf("full signals score %.2f", Score(full))
	}
	if Score(Signals{SaleWording: true}) <= Score(Signals{Skeletal: true}) {
		t.Fatal("sale wording should dominate")
	}
}

func TestDetectorThresholdSweep(t *testing.T) {
	src := rng.New(4)
	parked := secamp.NewBenignFamily("p", secamp.BenignParked, 3, src).DocForTest(0)
	strict := Detector{Threshold: 0.99}
	if got, _ := strict.Classify(parked); got {
		t.Fatal("0.99 threshold should reject")
	}
	lax := Detector{Threshold: 0.1}
	if got, _ := lax.Classify(parked); !got {
		t.Fatal("0.1 threshold should accept")
	}
	if NewDetector().Threshold != Threshold {
		t.Fatal("default threshold drifted")
	}
}
