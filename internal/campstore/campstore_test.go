package campstore_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/campstore"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/phash"
)

// seqFlips returns the positions lo..hi inclusive.
func seqFlips(lo, hi int) []int {
	var out []int
	for p := lo; p <= hi; p++ {
		out = append(out, p)
	}
	return out
}

func randHash(rng *rand.Rand) phash.Hash {
	return phash.Hash{Hi: rng.Uint64(), Lo: rng.Uint64()}
}

// batchLabels is the ground truth: a from-scratch batch clustering of
// the given hash sequence.
func batchLabels(t *testing.T, hashes []phash.Hash, params cluster.Params) ([]int, int) {
	t.Helper()
	if len(hashes) == 0 {
		return nil, 0
	}
	res, _, err := cluster.ClusterHashes(hashes, params, 1)
	if err != nil {
		t.Fatalf("batch clustering: %v", err)
	}
	return res.Labels, res.NumClusters
}

// replayChecked appends the stream event by event, asserting after
// every single append that both views' incremental labels are
// *identical* to a batch DBSCAN over the same point sequences.
func replayChecked(t *testing.T, params cluster.Params, stream []campstore.Event) *campstore.Store {
	t.Helper()
	s := campstore.New(campstore.Config{Params: params})
	type pk struct {
		h    phash.Hash
		e2ld string
	}
	seenLive := map[pk]bool{}
	seenDisc := map[pk]bool{}
	var liveHashes, discHashes []phash.Hash
	for i, ev := range stream {
		if _, err := s.Append(ev); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		k := pk{ev.Hash, ev.E2LD}
		if !seenLive[k] {
			seenLive[k] = true
			liveHashes = append(liveHashes, ev.Hash)
		}
		if ev.Source == campstore.SourceCrawl && !seenDisc[k] {
			seenDisc[k] = true
			discHashes = append(discHashes, ev.Hash)
		}
		gotL, gotNL := s.LiveLabels()
		wantL, wantNL := batchLabels(t, liveHashes, params)
		assertLabelsEqual(t, "live", i, gotL, gotNL, wantL, wantNL)
		gotD, gotND := s.DiscoveryLabels()
		wantD, wantND := batchLabels(t, discHashes, params)
		assertLabelsEqual(t, "discovery", i, gotD, gotND, wantD, wantND)
	}
	return s
}

func assertLabelsEqual(t *testing.T, view string, prefix int, got []int, gotN int, want []int, wantN int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("prefix %d %s view: %d incremental points vs %d batch", prefix, view, len(got), len(want))
	}
	if gotN != wantN {
		t.Fatalf("prefix %d %s view: %d incremental clusters vs %d batch", prefix, view, gotN, wantN)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("prefix %d %s view: point %d labelled %d incrementally, %d by batch",
				prefix, view, i, got[i], want[i])
		}
	}
}

// mergeStream builds a stream that grows two separate clusters and then
// bridges them: base B sits 20 bits from base A (beyond eps=12), the
// bridge is 10 bits from both, and its arrival both promotes it to a
// core point and merges the two components.
func mergeStream(rng *rand.Rand) []campstore.Event {
	a := randHash(rng)
	b := a.FlipBits(seqFlips(0, 19)...)
	bridge := a.FlipBits(seqFlips(0, 9)...)
	var evs []campstore.Event
	add := func(h phash.Hash, dom string, src string) {
		evs = append(evs, campstore.Event{Hash: h, E2LD: dom, Source: src,
			Tick: time.Unix(int64(len(evs)), 0)})
	}
	for i := 0; i < 5; i++ {
		add(a.FlipBits(120+i), fmt.Sprintf("left%d.example", i), campstore.SourceCrawl)
	}
	for i := 0; i < 5; i++ {
		add(b.FlipBits(110+i), fmt.Sprintf("right%d.example", i), campstore.SourceCrawl)
	}
	// A couple of milk re-sightings (live view only) plus the bridge.
	add(a.FlipBits(120), "left0.example", campstore.SourceMilk)
	add(bridge, "bridge.example", campstore.SourceMilk)
	add(bridge, "bridge.example", campstore.SourceCrawl)
	return evs
}

// borderStream needs MinPts=4: X is within eps of one core point in
// each of two clusters but has a 3-point neighbourhood, so it stays a
// border point and batch DBSCAN gives it the *minimum* of the two
// cluster ids.
func borderStream(rng *rand.Rand) []campstore.Event {
	a := randHash(rng)
	b := a.FlipBits(seqFlips(0, 19)...) // d(a,b)=20
	x := a.FlipBits(seqFlips(0, 9)...)  // d(x,a)=10, d(x,b)=10
	var evs []campstore.Event
	add := func(h phash.Hash, dom string, src string) {
		evs = append(evs, campstore.Event{Hash: h, E2LD: dom, Source: src,
			Tick: time.Unix(int64(len(evs)), 0)})
	}
	// Satellites sit 12 bits from their base in regions far from x, so
	// they count toward the base's coreness without neighbouring x.
	add(a, "a.example", campstore.SourceCrawl)
	add(a.FlipBits(seqFlips(100, 111)...), "a1.example", campstore.SourceCrawl)
	add(a.FlipBits(seqFlips(88, 99)...), "a2.example", campstore.SourceCrawl)
	add(b, "b.example", campstore.SourceCrawl)
	add(b.FlipBits(seqFlips(100, 111)...), "b1.example", campstore.SourceCrawl)
	add(b.FlipBits(seqFlips(88, 99)...), "b2.example", campstore.SourceCrawl)
	add(x, "x.example", campstore.SourceCrawl) // N(x)={x,a,b}: border of both
	return evs
}

// clusterStream grows k clusters of dense same-neighbourhood points
// with random cross-source duplicates — the steady-state shape of the
// milking workload.
func clusterStream(rng *rand.Rand, k, perCluster int) []campstore.Event {
	var evs []campstore.Event
	for c := 0; c < k; c++ {
		base := randHash(rng)
		for i := 0; i < perCluster; i++ {
			h := base.FlipBits(rng.Intn(phash.Bits), rng.Intn(phash.Bits))
			src := campstore.SourceCrawl
			if rng.Intn(3) == 0 {
				src = campstore.SourceMilk
			}
			evs = append(evs, campstore.Event{
				Hash:   h,
				E2LD:   fmt.Sprintf("c%dd%d.example", c, rng.Intn(6)),
				Source: src,
				Tick:   time.Unix(int64(len(evs)), 0),
			})
		}
	}
	return evs
}

// TestIncrementalMatchesBatchEveryPrefix is the load-bearing property:
// after every prefix of every stream — shuffled orders included — the
// incremental labels equal batch DBSCAN labels exactly, cluster ids
// and all, for both the crawl-only and the all-sources view.
func TestIncrementalMatchesBatchEveryPrefix(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		streams := map[string][]campstore.Event{
			"merge":   mergeStream(rng),
			"cluster": clusterStream(rng, 3, 12),
		}
		for name, stream := range streams {
			for shuffle := 0; shuffle < 3; shuffle++ {
				t.Run(fmt.Sprintf("%s/seed%d/shuffle%d", name, seed, shuffle), func(t *testing.T) {
					evs := append([]campstore.Event(nil), stream...)
					if shuffle > 0 {
						rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
					}
					replayChecked(t, cluster.PaperParams, evs)
				})
			}
		}
	}
}

// TestIncrementalBorderMinID pins the border tie-break at MinPts=4: a
// border point adjacent to two clusters takes the smaller cluster id,
// in any arrival order.
func TestIncrementalBorderMinID(t *testing.T) {
	params := cluster.Params{Eps: 0.1, MinPts: 4}
	rng := rand.New(rand.NewSource(7))
	stream := borderStream(rng)
	for shuffle := 0; shuffle < 6; shuffle++ {
		t.Run(fmt.Sprintf("shuffle%d", shuffle), func(t *testing.T) {
			evs := append([]campstore.Event(nil), stream...)
			if shuffle > 0 {
				rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
			}
			replayChecked(t, params, evs)
		})
	}
}

func TestDedupSeqAndPagination(t *testing.T) {
	s := campstore.New(campstore.Config{})
	ev := campstore.Event{Hash: phash.Hash{Hi: 1}, E2LD: "a.example", Source: campstore.SourceCrawl}
	r1, err := s.Append(ev)
	if err != nil || r1.Seq != 1 || r1.Duplicate || !r1.NewPoint || !r1.NewHash {
		t.Fatalf("first append: %+v err=%v", r1, err)
	}
	r2, err := s.Append(ev)
	if err != nil || !r2.Duplicate || r2.Seq != 1 {
		t.Fatalf("duplicate append: %+v err=%v", r2, err)
	}
	// Same hash, new e2LD: new point, no new hash, zero distance calls.
	r3, _ := s.Append(campstore.Event{Hash: phash.Hash{Hi: 1}, E2LD: "b.example", Source: campstore.SourceMilk})
	if !r3.NewPoint || r3.NewHash || r3.DistanceCalls != 0 || r3.Seq != 2 {
		t.Fatalf("same-hash append: %+v", r3)
	}
	// Same tuple at a different tick is a distinct event.
	r4, _ := s.Append(campstore.Event{Hash: phash.Hash{Hi: 1}, E2LD: "a.example",
		Source: campstore.SourceCrawl, Tick: time.Unix(99, 0)})
	if r4.Duplicate || r4.Seq != 3 || r4.NewPoint {
		t.Fatalf("new-tick append: %+v", r4)
	}
	if _, err := s.Append(campstore.Event{Hash: phash.Hash{Hi: 2}}); err == nil {
		t.Fatal("empty e2LD accepted")
	}
	if n := s.EventCount(); n != 3 {
		t.Fatalf("EventCount = %d, want 3", n)
	}
	page := s.Events(0, 2)
	if len(page) != 2 || page[0].Seq != 1 || page[1].Seq != 2 {
		t.Fatalf("page 1: %+v", page)
	}
	page = s.Events(page[len(page)-1].Seq, 10)
	if len(page) != 1 || page[0].Seq != 3 || page[0].E2LD != "a.example" {
		t.Fatalf("page 2: %+v", page)
	}
	if got := s.Events(3, 10); got != nil {
		t.Fatalf("past-end page: %+v", got)
	}
}

func TestAppendBatchAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stream := clusterStream(rng, 2, 10)
	stream = append(stream, stream[0]) // one duplicate
	s := campstore.New(campstore.Config{})
	res, err := s.AppendBatch(stream)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if res.Appended != len(stream)-1 || res.Duplicates != 1 {
		t.Fatalf("batch result: %+v", res)
	}
	if res.NewPoints == 0 || res.NewHashes == 0 || res.DistanceCalls < 0 {
		t.Fatalf("batch result: %+v", res)
	}
	if res.Probes == 0 {
		t.Fatalf("expected banded probes, got %+v", res)
	}
}

func TestDiscoveryViewIgnoresMilkEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	crawl := clusterStream(rng, 2, 10)
	for i := range crawl {
		crawl[i].Source = campstore.SourceCrawl
	}
	s := campstore.New(campstore.Config{})
	if _, err := s.AppendBatch(crawl); err != nil {
		t.Fatal(err)
	}
	before, nBefore := s.DiscoveryLabels()
	// A milk flood near (and between) the crawl clusters must not move
	// discovery labels.
	milk := clusterStream(rng, 2, 15)
	for i := range milk {
		milk[i].Source = campstore.SourceMilk
		milk[i].Tick = time.Unix(int64(1000+i), 0)
	}
	if _, err := s.AppendBatch(milk); err != nil {
		t.Fatal(err)
	}
	after, nAfter := s.DiscoveryLabels()
	if nBefore != nAfter || len(before) != len(after) {
		t.Fatalf("discovery view moved: %d/%d clusters, %d/%d points",
			nBefore, nAfter, len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("discovery label %d changed %d -> %d after milk events", i, before[i], after[i])
		}
	}
	if err := s.RunOracle(); err != nil {
		t.Fatalf("oracle after milk flood: %v", err)
	}
}

func TestOracleCadenceAndMetrics(t *testing.T) {
	reg := obs.New()
	s := campstore.New(campstore.Config{OracleEvery: 10, Obs: reg})
	rng := rand.New(rand.NewSource(5))
	stream := clusterStream(rng, 2, 13) // 26 non-duplicate events
	for _, ev := range stream {
		if _, err := s.Append(ev); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if got := s.OracleRuns(); got != 2 {
		t.Fatalf("OracleRuns = %d, want 2 (after events 10 and 20)", got)
	}
	if err := s.RunOracle(); err != nil {
		t.Fatalf("manual oracle: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster_incremental_events_total"] != int64(len(stream)) {
		t.Fatalf("events counter = %d, want %d",
			snap.Counters["cluster_incremental_events_total"], len(stream))
	}
	if snap.Counters["cluster_incremental_oracle_runs_total"] != 3 {
		t.Fatalf("oracle counter = %d, want 3", snap.Counters["cluster_incremental_oracle_runs_total"])
	}
	if snap.Gauges["campstore_observations"] != int64(len(stream)) {
		t.Fatalf("observations gauge = %d, want %d",
			snap.Gauges["campstore_observations"], len(stream))
	}
}

func TestMergeBumpsMergeCounter(t *testing.T) {
	reg := obs.New()
	s := campstore.New(campstore.Config{Obs: reg})
	rng := rand.New(rand.NewSource(9))
	if _, err := s.AppendBatch(mergeStream(rng)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Merges == 0 {
		t.Fatalf("expected live-view merges, got %+v", st)
	}
	if reg.Snapshot().Counters["cluster_incremental_merges_total"] != st.Merges {
		t.Fatalf("merge counter mismatch: %+v", st)
	}
	if st.LiveClusters != 1 {
		t.Fatalf("bridge should leave one live cluster, got %d", st.LiveClusters)
	}
}

func TestLiveCampaignProjection(t *testing.T) {
	s := campstore.New(campstore.Config{})
	base := phash.Hash{Hi: 0xdeadbeef, Lo: 0xcafe}
	var first phash.Hash
	for i := 0; i < 5; i++ {
		h := base.FlipBits(120 + i)
		if i == 0 {
			first = h
		}
		if _, err := s.Append(campstore.Event{Hash: h,
			E2LD: fmt.Sprintf("dom%d.example", i), Source: campstore.SourceCrawl}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RegisterCampaign(campstore.Campaign{
		ID: 0, Category: "Techsupport", RepHash: first, RepE2LD: "dom0.example", Attacks: 5,
	}); err != nil {
		t.Fatal(err)
	}
	views := s.LiveCampaigns()
	if len(views) != 1 {
		t.Fatalf("got %d campaign views", len(views))
	}
	cv := views[0]
	if len(cv.Domains) != 5 || cv.Domains[0] != "dom0.example" || cv.Observations != 5 || cv.Merged {
		t.Fatalf("initial projection: %+v", cv)
	}
	// A milked sighting of a new domain in the same neighbourhood grows
	// the live extent without touching discovery.
	if _, err := s.Append(campstore.Event{Hash: base.FlipBits(125),
		E2LD: "milked.example", Source: campstore.SourceMilk}); err != nil {
		t.Fatal(err)
	}
	cv = s.LiveCampaigns()[0]
	if len(cv.Domains) != 6 || cv.Observations != 6 {
		t.Fatalf("after milk: %+v", cv)
	}
	if n := s.DiscoveryPoints(); n != 5 {
		t.Fatalf("milk event leaked into discovery view: %d points", n)
	}
	// Registering an unknown representative fails.
	if err := s.RegisterCampaign(campstore.Campaign{ID: 9, RepHash: phash.Hash{Hi: 1},
		RepE2LD: "nope.example"}); err == nil {
		t.Fatal("unknown representative accepted")
	}
}

func TestLiveCampaignMergeDetection(t *testing.T) {
	s := campstore.New(campstore.Config{})
	a := phash.Hash{Hi: ^uint64(0)}
	b := a.FlipBits(seqFlips(0, 19)...)
	for i := 0; i < 5; i++ {
		mustAppend(t, s, a.FlipBits(120+i), fmt.Sprintf("a%d.example", i), campstore.SourceCrawl)
		mustAppend(t, s, b.FlipBits(110+i), fmt.Sprintf("b%d.example", i), campstore.SourceCrawl)
	}
	for id, rep := range map[int]struct {
		h phash.Hash
		d string
	}{0: {a.FlipBits(120), "a0.example"}, 1: {b.FlipBits(110), "b0.example"}} {
		if err := s.RegisterCampaign(campstore.Campaign{ID: id, Category: "Lottery",
			RepHash: rep.h, RepE2LD: rep.d}); err != nil {
			t.Fatal(err)
		}
	}
	for _, cv := range s.LiveCampaigns() {
		if cv.Merged || len(cv.Domains) != 5 {
			t.Fatalf("pre-merge projection: %+v", cv)
		}
	}
	// The bridge shows up via milking: both campaigns now project onto
	// the same 11-domain live cluster and are flagged merged.
	mustAppend(t, s, a.FlipBits(seqFlips(0, 9)...), "bridge.example", campstore.SourceMilk)
	views := s.LiveCampaigns()
	if len(views) != 2 {
		t.Fatalf("got %d views", len(views))
	}
	for _, cv := range views {
		if !cv.Merged || len(cv.Domains) != 11 {
			t.Fatalf("post-merge projection: %+v", cv)
		}
	}
	if err := s.RunOracle(); err != nil {
		t.Fatal(err)
	}
}

func mustAppend(t *testing.T, s *campstore.Store, h phash.Hash, e2ld, src string) {
	t.Helper()
	if _, err := s.Append(campstore.Event{Hash: h, E2LD: e2ld, Source: src}); err != nil {
		t.Fatal(err)
	}
}
