package campstore_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/campstore"
	"repro/internal/phash"
)

// TestConcurrentAppendersAndReaders hammers one store with overlapping
// appenders (so dedup races are exercised) while readers continuously
// snapshot labels, events and campaign projections, then verifies the
// final state against the serial batch oracle. Run under -race by
// `make test-race`.
func TestConcurrentAppendersAndReaders(t *testing.T) {
	s := campstore.New(campstore.Config{})
	rng := rand.New(rand.NewSource(42))
	bases := []phash.Hash{randHash(rng), randHash(rng), randHash(rng)}

	// Build the shared workload: three clusters, with every appender
	// given a shifted copy of the same stream so most events collide.
	var stream []campstore.Event
	for c, base := range bases {
		for i := 0; i < 40; i++ {
			src := campstore.SourceCrawl
			if i%3 == 0 {
				src = campstore.SourceMilk
			}
			stream = append(stream, campstore.Event{
				Hash:   base.FlipBits(rng.Intn(phash.Bits), rng.Intn(phash.Bits)),
				E2LD:   fmt.Sprintf("c%dd%d.example", c, i%7),
				Source: src,
				Tick:   time.Unix(int64(i), 0),
			})
		}
	}

	const appenders = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.LiveLabels()
				s.DiscoveryLabels()
				s.Events(0, 16)
				s.Stats()
				s.LiveCampaigns()
			}
		}()
	}
	var appendWG sync.WaitGroup
	for a := 0; a < appenders; a++ {
		appendWG.Add(1)
		go func(shift int) {
			defer appendWG.Done()
			for i := range stream {
				ev := stream[(i+shift)%len(stream)]
				if _, err := s.Append(ev); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a * 17)
	}
	appendWG.Wait()
	close(stop)
	wg.Wait()

	// Every appender replayed the same set: dedup must have collapsed
	// them to one copy each.
	if got, want := s.EventCount(), len(stream); got != want {
		t.Fatalf("EventCount = %d, want %d (dedup across concurrent appenders)", got, want)
	}
	// The serial oracle re-clusters both views from scratch in the
	// store's own arrival order and compares labels exactly.
	if err := s.RunOracle(); err != nil {
		t.Fatalf("oracle after concurrent load: %v", err)
	}
	// A full replay afterwards is all duplicates.
	res, err := s.AppendBatch(stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 0 || res.Duplicates != len(stream) {
		t.Fatalf("replay after load: %+v", res)
	}
}

// TestConcurrentBatchAppendersMergeHeavy drives the staged AppendBatch
// path from several writers whose tranches keep bridging each other's
// clusters (so cross-tranche edge wiring, count seeding and union-find
// merges all race), while readers walk /v1/campaigns-style projections
// and Events pagination off the lock-free snapshot. The final state is
// checked against the serial batch oracle, and the test asserts the
// store leaves no goroutines behind (the probe fan-out must fully
// drain).
func TestConcurrentBatchAppendersMergeHeavy(t *testing.T) {
	before := runtime.NumGoroutine()
	s := campstore.New(campstore.Config{})
	rng := rand.New(rand.NewSource(99))

	// Per-appender private streams: appender a owns chains whose left
	// and right halves are ε-connected only through a bridge hash that
	// EVERY appender also replays (shared suffix) — so merges depend on
	// cross-appender arrivals and most bridge claims collide.
	const appenders = 4
	const chains = 3
	var shared []campstore.Event
	streams := make([][]campstore.Event, appenders)
	for a := 0; a < appenders; a++ {
		for c := 0; c < chains; c++ {
			base := randHash(rng)
			far := base.FlipBits(seqFlips(0, 19)...)   // 20 bits: separate cluster
			bridge := base.FlipBits(seqFlips(0, 9)...) // 10 bits from both
			mk := func(h phash.Hash, dom string) campstore.Event {
				return campstore.Event{Hash: h, E2LD: dom, Source: campstore.SourceCrawl,
					Tick: time.Unix(int64(a*1000+c*100), 0)}
			}
			for i := 0; i < 4; i++ {
				streams[a] = append(streams[a],
					mk(base.FlipBits(120, 100+i), fmt.Sprintf("a%dc%dl%d.example", a, c, i)),
					mk(far.FlipBits(110, 80+i), fmt.Sprintf("a%dc%dr%d.example", a, c, i)))
			}
			shared = append(shared, mk(bridge, fmt.Sprintf("a%dc%dbridge.example", a, c)))
		}
	}

	stop := make(chan struct{})
	var readWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			var lastCount, lastLabels int
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The log is append-only: the event count must never
				// regress, and a pagination walk must see contiguous
				// ascending sequence numbers.
				n := s.EventCount()
				if n < lastCount {
					t.Errorf("EventCount regressed: %d -> %d", lastCount, n)
					return
				}
				lastCount = n
				var after uint64
				for {
					page := s.Events(after, 8)
					if len(page) == 0 {
						break
					}
					for _, ev := range page {
						after++
						if ev.Seq != after {
							t.Errorf("pagination: seq %d at position %d", ev.Seq, after)
							return
						}
					}
				}
				// Published snapshots are monotone: a later read never
				// serves fewer points than an earlier one. (LiveLabels
				// and Stats are separate snapshot loads, so they may
				// legitimately disagree with each other mid-ingest.)
				labels, _ := s.LiveLabels()
				if len(labels) < lastLabels {
					t.Errorf("snapshot regressed: %d labels after seeing %d", len(labels), lastLabels)
					return
				}
				lastLabels = len(labels)
				if st := s.Stats(); st.LivePoints > st.Points {
					t.Errorf("inconsistent snapshot: %d live points, %d points", st.LivePoints, st.Points)
					return
				}
				s.LiveCampaigns()
			}
		}()
	}

	var appendWG sync.WaitGroup
	for a := 0; a < appenders; a++ {
		appendWG.Add(1)
		go func(a int) {
			defer appendWG.Done()
			work := append(append([]campstore.Event(nil), streams[a]...), shared...)
			for len(work) > 0 {
				n := 7
				if n > len(work) {
					n = len(work)
				}
				if _, err := s.AppendBatch(work[:n]); err != nil {
					t.Errorf("batch append: %v", err)
					return
				}
				work = work[n:]
			}
		}(a)
	}
	appendWG.Wait()
	close(stop)
	readWG.Wait()

	want := 0
	for a := range streams {
		want += len(streams[a])
	}
	want += len(shared) // every appender replayed it; dedup collapses
	if got := s.EventCount(); got != want {
		t.Fatalf("EventCount = %d, want %d", got, want)
	}
	if st := s.Stats(); st.Merges == 0 {
		t.Fatalf("merge-heavy workload produced no live-view merges: %+v", st)
	}
	if err := s.RunOracle(); err != nil {
		t.Fatalf("oracle after concurrent batch load: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
}
