package campstore_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/campstore"
	"repro/internal/phash"
)

// TestConcurrentAppendersAndReaders hammers one store with overlapping
// appenders (so dedup races are exercised) while readers continuously
// snapshot labels, events and campaign projections, then verifies the
// final state against the serial batch oracle. Run under -race by
// `make test-race`.
func TestConcurrentAppendersAndReaders(t *testing.T) {
	s := campstore.New(campstore.Config{})
	rng := rand.New(rand.NewSource(42))
	bases := []phash.Hash{randHash(rng), randHash(rng), randHash(rng)}

	// Build the shared workload: three clusters, with every appender
	// given a shifted copy of the same stream so most events collide.
	var stream []campstore.Event
	for c, base := range bases {
		for i := 0; i < 40; i++ {
			src := campstore.SourceCrawl
			if i%3 == 0 {
				src = campstore.SourceMilk
			}
			stream = append(stream, campstore.Event{
				Hash:   base.FlipBits(rng.Intn(phash.Bits), rng.Intn(phash.Bits)),
				E2LD:   fmt.Sprintf("c%dd%d.example", c, i%7),
				Source: src,
				Tick:   time.Unix(int64(i), 0),
			})
		}
	}

	const appenders = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.LiveLabels()
				s.DiscoveryLabels()
				s.Events(0, 16)
				s.Stats()
				s.LiveCampaigns()
			}
		}()
	}
	var appendWG sync.WaitGroup
	for a := 0; a < appenders; a++ {
		appendWG.Add(1)
		go func(shift int) {
			defer appendWG.Done()
			for i := range stream {
				ev := stream[(i+shift)%len(stream)]
				if _, err := s.Append(ev); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a * 17)
	}
	appendWG.Wait()
	close(stop)
	wg.Wait()

	// Every appender replayed the same set: dedup must have collapsed
	// them to one copy each.
	if got, want := s.EventCount(), len(stream); got != want {
		t.Fatalf("EventCount = %d, want %d (dedup across concurrent appenders)", got, want)
	}
	// The serial oracle re-clusters both views from scratch in the
	// store's own arrival order and compares labels exactly.
	if err := s.RunOracle(); err != nil {
		t.Fatalf("oracle after concurrent load: %v", err)
	}
	// A full replay afterwards is all duplicates.
	res, err := s.AppendBatch(stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 0 || res.Duplicates != len(stream) {
		t.Fatalf("replay after load: %+v", res)
	}
}
