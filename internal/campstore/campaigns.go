package campstore

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/phash"
)

// Campaign is the triage outcome of one discovered campaign, registered
// by discovery so the live view can project it forward: the campaign's
// identity (ID, representative point, category) is fixed at discovery
// time, while its extent (domains, observations) tracks the live
// cluster that contains the representative as milking and API events
// arrive.
type Campaign struct {
	// ID is the discovery-view cluster id.
	ID int
	// Category is the triage verdict (core.Category as a string).
	Category string
	// RepHash and RepE2LD name the representative observation (the
	// cluster's first member at discovery time).
	RepHash phash.Hash
	RepE2LD string
	// Attacks is the SE-attack instance count at discovery time.
	Attacks int
	// ScamPhones are the distinct phone numbers harvested at triage.
	ScamPhones []string
}

type registeredCampaign struct {
	Campaign
	pid int32 // representative point id
}

// RegisterCampaign records (or overwrites, keyed on ID) a discovered
// campaign and republishes the read snapshot so /v1/campaigns reflects
// it immediately. The representative observation must already be in
// the store — discovery appends its events before triage.
func (s *Store) RegisterCampaign(c Campaign) error {
	s.stateMu.Lock()
	pid, ok := s.pointIdx[pointKey{c.RepHash, c.RepE2LD}]
	if !ok {
		s.stateMu.Unlock()
		return fmt.Errorf("campstore: campaign %d representative (%s, %s) not in store",
			c.ID, c.RepHash, c.RepE2LD)
	}
	c.ScamPhones = append([]string(nil), c.ScamPhones...)
	s.campaigns[c.ID] = registeredCampaign{Campaign: c, pid: pid}
	s.gen.Add(1)
	sn := s.buildSnapshotLocked()
	s.stateMu.Unlock()
	s.publish(sn)
	return nil
}

// CampaignView is one registered campaign projected onto the live
// incremental state.
type CampaignView struct {
	Campaign
	// Domains are the distinct e2LDs of the live cluster containing the
	// representative, sorted.
	Domains []string
	// Observations is the number of logged events supporting that
	// cluster's points.
	Observations int
	// Merged is set when another registered campaign now shares the
	// same live cluster (their ε-neighbourhoods grew together).
	Merged bool
}

// projectCampaignsLocked projects every registered campaign onto the
// live view at snapshot-build time, in ascending campaign id order.
// The result is immutable once published.
func (s *Store) projectCampaignsLocked(labels []int) []CampaignView {
	if len(s.campaigns) == 0 {
		return nil
	}
	vs := &s.views[viewLive]
	domains := map[int]map[string]bool{}
	events := map[int]int{}
	for vi, pid := range vs.pts {
		l := labels[vi]
		if l == cluster.Noise {
			continue
		}
		d := domains[l]
		if d == nil {
			d = map[string]bool{}
			domains[l] = d
		}
		d[s.pointE2LD[pid]] = true
		events[l] += int(s.pointEvents[pid])
	}
	ids := make([]int, 0, len(s.campaigns))
	uses := map[int]int{} // live label -> registered campaigns on it
	for id, rc := range s.campaigns {
		ids = append(ids, id)
		if l := labels[vs.idxOf[rc.pid]]; l != cluster.Noise {
			uses[l]++
		}
	}
	sort.Ints(ids)
	out := make([]CampaignView, 0, len(ids))
	for _, id := range ids {
		rc := s.campaigns[id]
		cv := CampaignView{Campaign: rc.Campaign}
		cv.ScamPhones = append([]string(nil), rc.ScamPhones...)
		if l := labels[vs.idxOf[rc.pid]]; l != cluster.Noise {
			for d := range domains[l] {
				cv.Domains = append(cv.Domains, d)
			}
			sort.Strings(cv.Domains)
			cv.Observations = events[l]
			cv.Merged = uses[l] > 1
		} else {
			// Defensive: a θc-filtered campaign's representative always
			// sits in a live cluster (live counts dominate crawl counts),
			// but degrade to the representative alone rather than panic.
			cv.Domains = []string{rc.RepE2LD}
			cv.Observations = int(s.pointEvents[rc.pid])
		}
		out = append(out, cv)
	}
	return out
}

// LiveCampaigns returns every registered campaign projected onto the
// live view, in ascending campaign id order — served from the
// published snapshot without taking any lock. The returned slice and
// its contents are shared and must not be modified.
func (s *Store) LiveCampaigns() []CampaignView {
	return s.snap.Load().campaigns
}
