package campstore

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/phash"
)

// runOracleLocked re-clusters both views from scratch with the batch
// pipeline (cluster.ClusterHashes — a fresh pigeonhole multi-index plus
// deterministic DBSCAN) and compares labels exactly against the
// incremental state. Any divergence is a bug in the incremental engine.
func (s *Store) runOracleLocked() error {
	s.oracleRuns++
	s.metOracleRuns.Inc()
	for v, name := range [numViews]string{viewDiscovery: "discovery", viewLive: "live"} {
		vs := &s.views[v]
		hashes := make([]phash.Hash, len(vs.pts))
		for i, pid := range vs.pts {
			hashes[i] = s.idx.Hash(s.pointHash[pid])
		}
		batch, _, err := cluster.ClusterHashes(hashes, s.params, 1)
		if err != nil {
			return fmt.Errorf("campstore oracle: batch recompute (%s view): %w", name, err)
		}
		inc, n := s.labelsLocked(v)
		if n != batch.NumClusters {
			return fmt.Errorf("campstore oracle: %s view has %d incremental clusters, batch found %d",
				name, n, batch.NumClusters)
		}
		for i := range inc {
			if inc[i] != batch.Labels[i] {
				return fmt.Errorf("campstore oracle: %s view point %d labelled %d incrementally, %d by batch",
					name, i, inc[i], batch.Labels[i])
			}
		}
	}
	return nil
}

// RunOracle triggers the batch-recompute oracle immediately, regardless
// of Config.OracleEvery. A divergence error poisons the store.
func (s *Store) RunOracle() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.oracleErrLocked(); err != nil {
		return err
	}
	if err := s.runOracleLocked(); err != nil {
		s.oracleFailure = err
		return err
	}
	return nil
}

// OracleRuns returns how many times the oracle has run.
func (s *Store) OracleRuns() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oracleRuns
}

func (s *Store) oracleErrLocked() error {
	if s.oracleFailure != nil {
		return fmt.Errorf("campstore: store poisoned by oracle divergence: %w", s.oracleFailure)
	}
	return nil
}
