package campstore

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/phash"
)

// oracleCompare re-clusters one view's hash sequence with the batch
// pipeline (cluster.ClusterHashes — a fresh pigeonhole multi-index plus
// deterministic DBSCAN) and compares labels exactly against the
// incremental ones. Any divergence is a bug in the incremental engine.
func (s *Store) oracleCompare(name string, hashes []phash.Hash, inc []int, n int) error {
	batch, _, err := cluster.ClusterHashes(hashes, s.params, 1)
	if err != nil {
		return fmt.Errorf("campstore oracle: batch recompute (%s view): %w", name, err)
	}
	if n != batch.NumClusters {
		return fmt.Errorf("campstore oracle: %s view has %d incremental clusters, batch found %d",
			name, n, batch.NumClusters)
	}
	for i := range inc {
		if inc[i] != batch.Labels[i] {
			return fmt.Errorf("campstore oracle: %s view point %d labelled %d incrementally, %d by batch",
				name, i, inc[i], batch.Labels[i])
		}
	}
	return nil
}

// runOracleLocked checks both views at the current commit point; it
// runs inside a commit (under stateMu) so the compared state is exactly
// the stream prefix that triggered the cadence.
func (s *Store) runOracleLocked() error {
	s.oracleRuns.Add(1)
	s.metOracleRuns.Inc()
	for v, name := range [numViews]string{viewDiscovery: "discovery", viewLive: "live"} {
		vs := &s.views[v]
		hashes := make([]phash.Hash, len(vs.pts))
		for i, pid := range vs.pts {
			hashes[i] = s.idx.Hash(s.pointHash[pid])
		}
		inc, n := s.labelsLocked(v)
		if err := s.oracleCompare(name, hashes, inc, n); err != nil {
			return err
		}
	}
	return nil
}

// RunOracle triggers the batch-recompute oracle immediately, regardless
// of Config.OracleEvery, against the published snapshot — it takes no
// store lock, so it can run alongside live ingest (checking the last
// published commit point rather than any in-flight tranche). A
// divergence error poisons the store.
func (s *Store) RunOracle() error {
	if err := s.poisonErr(); err != nil {
		return err
	}
	sn := s.snap.Load()
	s.oracleRuns.Add(1)
	s.metOracleRuns.Inc()
	for _, view := range []struct {
		name   string
		pts    []int32
		labels []int
		n      int
	}{
		{"discovery", sn.discPts, sn.discLabels, sn.discClusters},
		{"live", sn.livePts, sn.liveLabels, sn.liveClusters},
	} {
		hashes := make([]phash.Hash, len(view.pts))
		for i, pid := range view.pts {
			hashes[i] = s.idx.Hash(sn.pointHash[pid])
		}
		if err := s.oracleCompare(view.name, hashes, view.labels, view.n); err != nil {
			s.poison(err)
			return err
		}
	}
	return nil
}

// OracleRuns returns how many times the oracle has run.
func (s *Store) OracleRuns() int64 { return s.oracleRuns.Load() }
