// Package campstore is the incremental campaign store: an append-only
// observation event log feeding an incremental clustering engine that
// maintains DBSCAN-equivalent labels as events arrive (ROADMAP item 2,
// the paper's continuous 14-day milking deployment).
//
// # Event log
//
// Observations are (dhash, e2LD, virtual-tick, source) events. Append
// deduplicates on the full tuple, assigns a stable 1-based sequence
// number to each new event, and exposes the log through paginated
// reads (Events), so multiple clients replaying the same stream in any
// interleaving converge on the same store state.
//
// # Incremental clustering
//
// The engine never re-runs batch DBSCAN. Instead it maintains, per
// distinct hash, exactly the state from which the batch labels are a
// pure function:
//
//   - the ε-adjacency between distinct hashes, discovered by probing a
//     mutable pigeonhole multi-index (cluster.DynamicIndex) once per
//     new distinct hash — re-observations of a known hash cost zero
//     distance calls;
//   - per-view member lists and neighbourhood counts (a hash's count is
//     the number of view points within ε, its own members included),
//     from which core-point promotions fall out as counts cross MinPts;
//   - a union-find over core hashes (one union per core ε-edge), which
//     joins, extends and merges clusters without touching non-edges.
//
// Labels are derived on demand with zero distance calls: batch DBSCAN
// (internal/cluster, deterministic index-order seeding) assigns cluster
// ids in order of each component's minimal core point index, and gives
// a border point the id of the *first* cluster that expands into it —
// i.e. the minimum id among the core hashes adjacent to it. Both are
// pure functions of (adjacency, coreness, union-find), so incremental
// labels are *identical* to a from-scratch batch run over the same
// points — not merely equivalent up to relabeling. The property/fuzz
// tests and the periodic oracle (Config.OracleEvery) assert exactly
// that.
//
// Because the log is append-only, counts never decrease: core points
// are never demoted and clusters never split. The only merge-direction
// events are promotions and root-joins, which is what makes the
// union-find sufficient.
//
// # Views
//
// The store maintains two parallel views over the same log:
//
//   - the discovery view covers only SourceCrawl events — it is what
//     campaign discovery (core.Discover) clusters, and it depends only
//     on the crawl stream, so a daemon store that has absorbed prior
//     jobs' milking events still reproduces the one-shot report
//     byte-for-byte;
//   - the live view covers every event (crawl + milk + api) — it is
//     what /v1/campaigns serves.
//
// A Store is safe for concurrent use; all mutation is serialized under
// one mutex (appends are O(new work), so the critical sections are
// short).
package campstore

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/phash"
)

// Event sources. Any other non-empty string is accepted and clusters
// into the live view only.
const (
	// SourceCrawl marks crawl-time observations; only these feed the
	// discovery view.
	SourceCrawl = "crawl"
	// SourceMilk marks milking observations.
	SourceMilk = "milk"
	// SourceAPI marks observations appended through /v1/observations
	// (and is the default for an empty Source).
	SourceAPI = "api"
)

// Event is one observation: a hashed landing of e2LD at a virtual tick.
type Event struct {
	Hash   phash.Hash
	E2LD   string
	Tick   time.Time
	Source string
}

// LoggedEvent is an event as recorded: with its stable sequence number.
type LoggedEvent struct {
	Seq uint64
	Event
}

// Config configures a Store.
type Config struct {
	// Params are the DBSCAN parameters (zero value = cluster.PaperParams).
	Params cluster.Params
	// OracleEvery runs the full batch recompute oracle after every N
	// non-duplicate events (0 = never). The oracle re-clusters both
	// views from scratch and fails the triggering Append if the
	// incremental labels diverge.
	OracleEvery int
	// Obs receives the cluster_incremental_* counters and the
	// campstore_observations gauge. Nil = no-op.
	Obs *obs.Registry
}

// AppendResult reports what one Append did.
type AppendResult struct {
	// Seq is the event's stable sequence number (the prior one for a
	// duplicate).
	Seq       uint64
	Duplicate bool
	// NewPoint is set when the event introduced a new distinct
	// (hash, e2LD) pair.
	NewPoint bool
	// NewHash is set when the event introduced a new distinct hash
	// (the only case that pays distance calls).
	NewHash bool
	// DistanceCalls is the number of full Hamming verifications this
	// append performed.
	DistanceCalls int64
}

// BatchResult aggregates AppendBatch.
type BatchResult struct {
	Appended      int
	Duplicates    int
	NewPoints     int
	NewHashes     int
	DistanceCalls int64
	Probes        int64
	Candidates    int64
}

// View identifiers.
const (
	viewDiscovery = iota // crawl events only
	viewLive             // all events
	numViews
)

// viewState is the incremental clustering state of one view.
type viewState struct {
	pts   []int32 // global point ids in view arrival order
	idxOf []int32 // global point id -> view index (-1 = absent)

	members [][]int32 // hash id -> view indices (ascending)
	cnt     []int32   // hash id -> view points within ε (incl. own members)
	core    []bool    // hash id -> members are core points

	parent []int32 // union-find over core hash ids (-1 = not core)
	size   []int32 // union by size
	minVi  []int32 // root -> minimal core view index in the component

	merges int64 // unions that joined two distinct components
	cycles int64 // unions whose endpoints were already connected

	dirty     bool
	labels    []int
	nclusters int
}

func (vs *viewState) find(a int32) int32 {
	for vs.parent[a] != a {
		vs.parent[a] = vs.parent[vs.parent[a]] // path halving
		a = vs.parent[a]
	}
	return a
}

// union joins the components of core hashes a and b, keeping the
// minimal core view index at the surviving root. Reports whether two
// distinct components merged.
func (vs *viewState) union(a, b int32) bool {
	ra, rb := vs.find(a), vs.find(b)
	if ra == rb {
		vs.cycles++
		return false
	}
	if vs.size[ra] < vs.size[rb] {
		ra, rb = rb, ra
	}
	vs.parent[rb] = ra
	vs.size[ra] += vs.size[rb]
	if vs.minVi[rb] < vs.minVi[ra] {
		vs.minVi[ra] = vs.minVi[rb]
	}
	vs.merges++
	return true
}

type eventKey struct {
	h      phash.Hash
	e2ld   string
	tick   int64
	source string
}

type pointKey struct {
	h    phash.Hash
	e2ld string
}

// Store is the incremental campaign store. Zero value is not usable;
// call New.
type Store struct {
	mu          sync.Mutex
	params      cluster.Params
	oracleEvery int

	idx   *cluster.DynamicIndex
	log   []LoggedEvent
	dedup map[eventKey]uint64

	// points are the distinct (hash, e2LD) pairs, in first-seen order.
	pointHash   []int32
	pointE2LD   []string
	pointEvents []int32 // supporting (non-duplicate) events per point
	pointIdx    map[pointKey]int32

	// adj[h] lists the distinct hashes within ε of h (excluding h).
	adj [][]int32

	views [numViews]viewState

	campaigns map[int]registeredCampaign

	appended      uint64 // non-duplicate events (oracle cadence)
	oracleRuns    int64
	oracleFailure error // poisons the store once divergence is detected

	metEvents        *obs.Counter
	metMerges        *obs.Counter
	metSplitsAvoided *obs.Counter
	metOracleRuns    *obs.Counter
	metObservations  *obs.Gauge
}

// New builds an empty store.
func New(cfg Config) *Store {
	p := cfg.Params
	if p.MinPts == 0 {
		p = cluster.PaperParams
	}
	return &Store{
		params:      p,
		oracleEvery: cfg.OracleEvery,
		idx:         cluster.NewDynamicIndex(p.Eps),
		dedup:       map[eventKey]uint64{},
		pointIdx:    map[pointKey]int32{},
		campaigns:   map[int]registeredCampaign{},

		metEvents:        cfg.Obs.Counter("cluster_incremental_events_total"),
		metMerges:        cfg.Obs.Counter("cluster_incremental_merges_total"),
		metSplitsAvoided: cfg.Obs.Counter("cluster_incremental_splits_avoided_total"),
		metOracleRuns:    cfg.Obs.Counter("cluster_incremental_oracle_runs_total"),
		metObservations:  cfg.Obs.Gauge("campstore_observations"),
	}
}

// Params returns the DBSCAN parameters the store clusters under.
func (s *Store) Params() cluster.Params { return s.params }

// Append records one event and integrates it into both views. The
// returned error is non-nil only when the event's E2LD is empty or the
// periodic oracle detected divergence (a bug — the store is then
// poisoned and every later Append keeps failing).
func (s *Store) Append(ev Event) (AppendResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(ev)
}

// AppendBatch appends events in order under one lock acquisition.
func (s *Store) AppendBatch(events []Event) (BatchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st0 := s.idx.Stats()
	var out BatchResult
	for _, ev := range events {
		r, err := s.appendLocked(ev)
		if err != nil {
			return out, err
		}
		if r.Duplicate {
			out.Duplicates++
			continue
		}
		out.Appended++
		if r.NewPoint {
			out.NewPoints++
		}
		if r.NewHash {
			out.NewHashes++
		}
		out.DistanceCalls += r.DistanceCalls
	}
	st1 := s.idx.Stats()
	out.Probes = st1.Probes - st0.Probes
	out.Candidates = st1.Candidates - st0.Candidates
	return out, nil
}

func (s *Store) appendLocked(ev Event) (AppendResult, error) {
	if ev.E2LD == "" {
		return AppendResult{}, fmt.Errorf("campstore: event with empty e2LD")
	}
	if err := s.oracleErrLocked(); err != nil {
		return AppendResult{}, err
	}
	if ev.Source == "" {
		ev.Source = SourceAPI
	}
	k := eventKey{ev.Hash, ev.E2LD, ev.Tick.UnixNano(), ev.Source}
	if seq, ok := s.dedup[k]; ok {
		return AppendResult{Seq: seq, Duplicate: true}, nil
	}
	seq := uint64(len(s.log) + 1)
	s.log = append(s.log, LoggedEvent{Seq: seq, Event: ev})
	s.dedup[k] = seq
	s.appended++
	s.metEvents.Inc()
	s.metObservations.Set(int64(len(s.log)))

	res := AppendResult{Seq: seq}
	d0 := s.idx.DistanceCalls()
	pk := pointKey{ev.Hash, ev.E2LD}
	pid, known := s.pointIdx[pk]
	if !known {
		hid, isNewHash := s.ensureHash(ev.Hash)
		res.NewPoint, res.NewHash = true, isNewHash
		pid = int32(len(s.pointHash))
		s.pointHash = append(s.pointHash, hid)
		s.pointE2LD = append(s.pointE2LD, ev.E2LD)
		s.pointEvents = append(s.pointEvents, 0)
		s.pointIdx[pk] = pid
		for v := range s.views {
			s.views[v].idxOf = append(s.views[v].idxOf, -1)
		}
		s.addToView(&s.views[viewLive], pid)
	}
	s.pointEvents[pid]++
	if ev.Source == SourceCrawl && s.views[viewDiscovery].idxOf[pid] < 0 {
		s.addToView(&s.views[viewDiscovery], pid)
	}
	res.DistanceCalls = s.idx.DistanceCalls() - d0

	if s.oracleEvery > 0 && s.appended%uint64(s.oracleEvery) == 0 {
		if err := s.runOracleLocked(); err != nil {
			s.oracleFailure = err
			return res, err
		}
	}
	return res, nil
}

// ensureHash registers h as a distinct hash if unseen, wiring its
// ε-adjacency and per-view bookkeeping.
func (s *Store) ensureHash(h phash.Hash) (int32, bool) {
	if hid, ok := s.idx.Lookup(h); ok {
		return hid, false
	}
	hid, nbrs, _ := s.idx.Add(h)
	s.adj = append(s.adj, append([]int32(nil), nbrs...))
	for _, n := range nbrs {
		s.adj[n] = append(s.adj[n], hid)
	}
	for v := range s.views {
		vs := &s.views[v]
		// The new hash's count starts at the number of existing view
		// points within ε; its own (future) members and later arrivals
		// are added by addToView.
		var c int32
		for _, n := range nbrs {
			c += int32(len(vs.members[n]))
		}
		vs.members = append(vs.members, nil)
		vs.cnt = append(vs.cnt, c)
		vs.core = append(vs.core, false)
		vs.parent = append(vs.parent, -1)
		vs.size = append(vs.size, 0)
		vs.minVi = append(vs.minVi, -1)
	}
	return hid, true
}

// addToView appends point pid to the view: bump the ε-neighbourhood
// count of its hash and every adjacent hash, then fire any promotions
// those increments unlocked.
func (s *Store) addToView(vs *viewState, pid int32) {
	vi := int32(len(vs.pts))
	vs.pts = append(vs.pts, pid)
	vs.idxOf[pid] = vi
	hid := s.pointHash[pid]
	vs.members[hid] = append(vs.members[hid], vi)
	vs.cnt[hid]++
	for _, n := range s.adj[hid] {
		vs.cnt[n]++
	}
	live := vs == &s.views[viewLive]
	s.maybePromote(vs, hid, live)
	for _, n := range s.adj[hid] {
		s.maybePromote(vs, n, live)
	}
	vs.dirty = true
}

// maybePromote turns hid into a core hash once it has members in the
// view and its ε-neighbourhood reaches MinPts, joining it to every
// already-core neighbour. A hash whose count crossed MinPts while it
// had no view members is promoted later, when its first member arrives.
func (s *Store) maybePromote(vs *viewState, hid int32, live bool) {
	if vs.core[hid] || len(vs.members[hid]) == 0 || int(vs.cnt[hid]) < s.params.MinPts {
		return
	}
	vs.core[hid] = true
	vs.parent[hid] = hid
	vs.size[hid] = 1
	vs.minVi[hid] = vs.members[hid][0]
	for _, n := range s.adj[hid] {
		if !vs.core[n] {
			continue
		}
		merged := vs.union(hid, n)
		if live {
			if merged {
				s.metMerges.Inc()
			} else {
				s.metSplitsAvoided.Inc()
			}
		}
	}
}

// labelsLocked derives the view's labels from the incremental state —
// zero distance calls. Cluster ids are assigned in order of each
// component's minimal core view index (exactly batch DBSCAN's seeding
// order); border points take the minimum id among adjacent core hashes
// (exactly the first cluster that would have expanded into them).
func (s *Store) labelsLocked(v int) ([]int, int) {
	vs := &s.views[v]
	if !vs.dirty {
		return vs.labels, vs.nclusters
	}
	nh := s.idx.Len()
	// Rank the components by minimal core view index.
	type comp struct{ root, minVi int32 }
	var comps []comp
	rank := make(map[int32]int)
	for hid := int32(0); hid < int32(nh); hid++ {
		if !vs.core[hid] {
			continue
		}
		r := vs.find(hid)
		if _, seen := rank[r]; !seen {
			rank[r] = -1
			comps = append(comps, comp{r, vs.minVi[r]})
		}
	}
	// Insertion sort by minVi: component counts are small and mostly
	// already ordered (ids only churn on merges).
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j].minVi < comps[j-1].minVi; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	for i, c := range comps {
		rank[c.root] = i
	}
	labels := make([]int, len(vs.pts))
	for hid := int32(0); hid < int32(nh); hid++ {
		if len(vs.members[hid]) == 0 {
			continue
		}
		lbl := cluster.Noise
		if vs.core[hid] {
			lbl = rank[vs.find(hid)]
		} else {
			for _, g := range s.adj[hid] {
				if !vs.core[g] {
					continue
				}
				if id := rank[vs.find(g)]; lbl == cluster.Noise || id < lbl {
					lbl = id
				}
			}
		}
		for _, vi := range vs.members[hid] {
			labels[vi] = lbl
		}
	}
	vs.labels, vs.nclusters, vs.dirty = labels, len(comps), false
	return labels, len(comps)
}

// DiscoveryLabels returns the crawl-view labels (one per crawl point,
// in crawl-point arrival order) and the cluster count. The slice is a
// copy.
func (s *Store) DiscoveryLabels() ([]int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, n := s.labelsLocked(viewDiscovery)
	return append([]int(nil), l...), n
}

// LiveLabels returns the all-sources labels (one per point, in point
// arrival order) and the cluster count. The slice is a copy.
func (s *Store) LiveLabels() ([]int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, n := s.labelsLocked(viewLive)
	return append([]int(nil), l...), n
}

// DiscoveryIndex returns the discovery-view index of the (hash, e2LD)
// point, if it has one.
func (s *Store) DiscoveryIndex(h phash.Hash, e2ld string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pid, ok := s.pointIdx[pointKey{h, e2ld}]
	if !ok {
		return 0, false
	}
	vi := s.views[viewDiscovery].idxOf[pid]
	if vi < 0 {
		return 0, false
	}
	return int(vi), true
}

// DiscoveryMatches reports whether the discovery view is exactly the
// n-point sequence described by at (point i's hash and e2LD) — the
// coherence precondition for serving a run's discovery labels from a
// shared store: the store's crawl view must be the run's observation
// sequence, no more, no less, in the same order.
func (s *Store) DiscoveryMatches(n int, at func(int) (phash.Hash, string)) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := &s.views[viewDiscovery]
	if len(vs.pts) != n {
		return false
	}
	for i, pid := range vs.pts {
		h, e2ld := at(i)
		if s.idx.Hash(s.pointHash[pid]) != h || s.pointE2LD[pid] != e2ld {
			return false
		}
	}
	return true
}

// DiscoveryPoints returns the size of the discovery (crawl) view.
func (s *Store) DiscoveryPoints() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.views[viewDiscovery].pts)
}

// Points returns the number of distinct (hash, e2LD) pairs.
func (s *Store) Points() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pointHash)
}

// EventCount returns the number of logged (non-duplicate) events.
func (s *Store) EventCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// Events returns up to limit events with Seq > after, in sequence
// order — the pagination contract of GET /v1/observations. limit <= 0
// means no limit.
func (s *Store) Events(after uint64, limit int) []LoggedEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	if after >= uint64(len(s.log)) {
		return nil
	}
	tail := s.log[after:]
	if limit > 0 && len(tail) > limit {
		tail = tail[:limit]
	}
	return append([]LoggedEvent(nil), tail...)
}

// DistanceCalls returns the full Hamming verifications performed over
// the store's lifetime.
func (s *Store) DistanceCalls() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.DistanceCalls()
}

// Stats snapshots the store.
type Stats struct {
	Events          int
	Points          int
	DiscoveryPoints int
	LivePoints      int
	LiveClusters    int
	Merges          int64 // live-view component merges
	SplitsAvoided   int64 // live-view unions already connected
	OracleRuns      int64
	Index           cluster.DynamicIndexStats
}

// Stats returns a consistent snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, nLive := s.labelsLocked(viewLive)
	return Stats{
		Events:          len(s.log),
		Points:          len(s.pointHash),
		DiscoveryPoints: len(s.views[viewDiscovery].pts),
		LivePoints:      len(s.views[viewLive].pts),
		LiveClusters:    nLive,
		Merges:          s.views[viewLive].merges,
		SplitsAvoided:   s.views[viewLive].cycles,
		OracleRuns:      s.oracleRuns,
		Index:           s.idx.Stats(),
	}
}
