// Package campstore is the incremental campaign store: an append-only
// observation event log feeding an incremental clustering engine that
// maintains DBSCAN-equivalent labels as events arrive (ROADMAP item 2,
// the paper's continuous 14-day milking deployment).
//
// # Event log
//
// Observations are (dhash, e2LD, virtual-tick, source) events. Append
// deduplicates on the full tuple, assigns a stable 1-based sequence
// number to each new event, and exposes the log through paginated
// reads (Events), so multiple clients replaying the same stream in any
// interleaving converge on the same store state.
//
// # Incremental clustering
//
// The engine never re-runs batch DBSCAN. Instead it maintains, per
// distinct hash, exactly the state from which the batch labels are a
// pure function:
//
//   - the ε-adjacency between distinct hashes, discovered by probing a
//     mutable pigeonhole multi-index (cluster.DynamicIndex) once per
//     new distinct hash — re-observations of a known hash cost zero
//     distance calls;
//   - per-view member lists and neighbourhood counts (a hash's count is
//     the number of view points within ε, its own members included),
//     from which core-point promotions fall out as counts cross MinPts;
//   - a union-find over core hashes (one union per core ε-edge), which
//     joins, extends and merges clusters without touching non-edges.
//
// Labels are derived on demand with zero distance calls: batch DBSCAN
// (internal/cluster, deterministic index-order seeding) assigns cluster
// ids in order of each component's minimal core point index, and gives
// a border point the id of the *first* cluster that expands into it —
// i.e. the minimum id among the core hashes adjacent to it. Both are
// pure functions of (adjacency, coreness, union-find), so incremental
// labels are *identical* to a from-scratch batch run over the same
// points — not merely equivalent up to relabeling. The property/fuzz
// tests and the periodic oracle (Config.OracleEvery) assert exactly
// that.
//
// Because the log is append-only, counts never decrease: core points
// are never demoted and clusters never split. The only merge-direction
// events are promotions and root-joins, which is what makes the
// union-find sufficient.
//
// # Views
//
// The store maintains two parallel views over the same log:
//
//   - the discovery view covers only SourceCrawl events — it is what
//     campaign discovery (core.Discover) clusters, and it depends only
//     on the crawl stream, so a daemon store that has absorbed prior
//     jobs' milking events still reproduces the one-shot report
//     byte-for-byte;
//   - the live view covers every event (crawl + milk + api) — it is
//     what /v1/campaigns serves.
//
// # Concurrency
//
// A Store is safe for concurrent use, and writers no longer serialize
// on one store-wide mutex: AppendBatch stages each tranche through
// three short critical sections on independent locks, and the hot read
// endpoints take no lock at all. See DESIGN.md §10 for the full
// model; the shape is:
//
//   - logMu guards only dedup + sequence assignment + the chunked
//     append-only event log (readers of the log are lock-free);
//   - new distinct hashes are claimed, registered and probed against
//     the band-sharded cluster.DynamicIndex with no store-wide lock —
//     the index's per-band locks are the only serialization, and
//     Hamming verification holds no locks at all;
//   - stateMu guards the clustering state (adjacency, counts,
//     union-find, views) for two short sections per tranche: edge
//     wiring, then per-event commits in tranche order;
//   - every committed tranche publishes an immutable snapshot through
//     an atomic pointer; Events, LiveCampaigns, labels, Stats and the
//     on-demand oracle read the snapshot and never block appends.
//
// Label equivalence is preserved under concurrency because commits are
// still serialized (by stateMu) into *some* arrival order, and the
// incremental state is maintained exactly for that order — the batch
// oracle holds after every commit, whichever interleaving won.
package campstore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/phash"
)

// Event sources. Any other non-empty string is accepted and clusters
// into the live view only.
const (
	// SourceCrawl marks crawl-time observations; only these feed the
	// discovery view.
	SourceCrawl = "crawl"
	// SourceMilk marks milking observations.
	SourceMilk = "milk"
	// SourceAPI marks observations appended through /v1/observations
	// (and is the default for an empty Source).
	SourceAPI = "api"
)

// Event is one observation: a hashed landing of e2LD at a virtual tick.
type Event struct {
	Hash   phash.Hash
	E2LD   string
	Tick   time.Time
	Source string
}

// LoggedEvent is an event as recorded: with its stable sequence number.
type LoggedEvent struct {
	Seq uint64
	Event
}

// Config configures a Store.
type Config struct {
	// Params are the DBSCAN parameters (zero value = cluster.PaperParams).
	Params cluster.Params
	// OracleEvery runs the full batch recompute oracle after every N
	// non-duplicate events (0 = never). The oracle re-clusters both
	// views from scratch and fails the triggering Append if the
	// incremental labels diverge.
	OracleEvery int
	// Obs receives the cluster_incremental_* counters, the campstore_*
	// gauges/histograms and the index shard probe counter. Nil = no-op.
	Obs *obs.Registry
}

// AppendResult reports what one appended event did.
type AppendResult struct {
	// Seq is the event's stable sequence number (the prior one for a
	// duplicate).
	Seq       uint64
	Duplicate bool
	// NewPoint is set when the event introduced a new distinct
	// (hash, e2LD) pair.
	NewPoint bool
	// NewHash is set when the event introduced a new distinct hash
	// (the only case that pays distance calls).
	NewHash bool
	// DistanceCalls is the number of full Hamming verifications this
	// append performed.
	DistanceCalls int64
}

// BatchResult aggregates AppendBatch.
type BatchResult struct {
	Appended      int
	Duplicates    int
	NewPoints     int
	NewHashes     int
	DistanceCalls int64
	Probes        int64
	Candidates    int64
	// Results holds one entry per input event, in input order, up to
	// (and excluding) the first rejected event.
	Results []AppendResult
}

// View identifiers.
const (
	viewDiscovery = iota // crawl events only
	viewLive             // all events
	numViews
)

// viewState is the incremental clustering state of one view.
type viewState struct {
	pts   []int32 // global point ids in view arrival order
	idxOf []int32 // global point id -> view index (-1 = absent)

	members [][]int32 // hash id -> view indices (ascending)
	cnt     []int32   // hash id -> view points within ε (incl. own members)
	core    []bool    // hash id -> members are core points

	parent []int32 // union-find over core hash ids (-1 = not core)
	size   []int32 // union by size
	minVi  []int32 // root -> minimal core view index in the component

	merges int64 // unions that joined two distinct components
	cycles int64 // unions whose endpoints were already connected

	dirty     bool
	labels    []int
	nclusters int
}

func (vs *viewState) find(a int32) int32 {
	for vs.parent[a] != a {
		vs.parent[a] = vs.parent[vs.parent[a]] // path halving
		a = vs.parent[a]
	}
	return a
}

// union joins the components of core hashes a and b, keeping the
// minimal core view index at the surviving root. Reports whether two
// distinct components merged.
func (vs *viewState) union(a, b int32) bool {
	ra, rb := vs.find(a), vs.find(b)
	if ra == rb {
		vs.cycles++
		return false
	}
	if vs.size[ra] < vs.size[rb] {
		ra, rb = rb, ra
	}
	vs.parent[rb] = ra
	vs.size[ra] += vs.size[rb]
	if vs.minVi[rb] < vs.minVi[ra] {
		vs.minVi[ra] = vs.minVi[rb]
	}
	vs.merges++
	return true
}

type eventKey struct {
	h      phash.Hash
	e2ld   string
	tick   int64
	source string
}

type pointKey struct {
	h    phash.Hash
	e2ld string
}

// logChunkBits sizes the chunks of the append-only event log: 512
// events per chunk.
const logChunkBits = 9

type logChunk [1 << logChunkBits]LoggedEvent

// eventLog is a chunked append-only log. Appends are serialized by the
// store's logMu; reads are lock-free. Readers must load the length
// FIRST and the chunk directory second: the writer installs a grown
// directory before advancing the length, so a directory loaded after
// the length always covers every cell below it.
type eventLog struct {
	chunks atomic.Pointer[[]*logChunk]
	n      atomic.Int64
}

func (l *eventLog) len() int { return int(l.n.Load()) }

func (l *eventLog) at(chunks *[]*logChunk, i int64) *LoggedEvent {
	return &(*chunks)[i>>logChunkBits][i&(1<<logChunkBits-1)]
}

// append stores ev at the next slot. Caller must hold logMu.
func (l *eventLog) append(ev LoggedEvent) {
	i := l.n.Load()
	ci, off := int(i>>logChunkBits), i&(1<<logChunkBits-1)
	chunks := l.chunks.Load()
	if chunks == nil || ci == len(*chunks) {
		var next []*logChunk
		if chunks != nil {
			next = append(next, *chunks...)
		}
		next = append(next, new(logChunk))
		l.chunks.Store(&next)
		chunks = &next
	}
	(*chunks)[ci][off] = ev
	l.n.Store(i + 1)
}

// snapshot is one immutable published state: everything the read
// endpoints serve, captured at a commit boundary. Slices are either
// freshly built at publish time or append-only prefixes whose cells
// below the captured length never change, so sharing them is safe.
type snapshot struct {
	gen    uint64 // commit generation this snapshot reflects
	events int    // log length at publish

	pointHash []int32 // point id -> hash id (append-only prefix)

	discPts, livePts       []int32 // view point ids (append-only prefixes)
	discLabels, liveLabels []int
	discClusters, liveClusters int

	merges, cycles int64

	campaigns []CampaignView
}

// Store is the incremental campaign store. Zero value is not usable;
// call New.
type Store struct {
	params      cluster.Params
	oracleEvery int

	idx *cluster.DynamicIndex

	// logMu guards dedup and sequence assignment. Lock hierarchy:
	// logMu and stateMu are never held together; resolveMu is a leaf.
	logMu sync.Mutex
	dedup map[eventKey]uint64
	log   eventLog

	// resolveMu guards the in-flight hash registry: hashes claimed in
	// the index whose ε-adjacency is not wired into the store yet. A
	// tranche that needs a hash claimed by another in-flight tranche
	// waits on its channel (outside all locks) before committing.
	resolveMu sync.Mutex
	resolving map[phash.Hash]chan struct{}

	// stateMu guards the clustering state and the campaign registry.
	stateMu sync.Mutex
	// points are the distinct (hash, e2LD) pairs, in first-seen order.
	pointHash   []int32
	pointE2LD   []string
	pointEvents []int32 // supporting (non-duplicate) events per point
	pointIdx    map[pointKey]int32
	// adj[h] lists the distinct hashes within ε of h (excluding h).
	adj      [][]int32
	edgeSeen map[uint64]struct{} // packed (min,max) hash id pairs wired
	views    [numViews]viewState
	campaigns map[int]registeredCampaign
	appended  uint64 // non-duplicate events committed (oracle cadence)

	gen        atomic.Uint64 // commit generations (written under stateMu)
	snap       atomic.Pointer[snapshot]
	oracleRuns atomic.Int64
	poisoned   atomic.Pointer[poisonBox] // set once on oracle divergence

	metEvents        *obs.Counter
	metMerges        *obs.Counter
	metSplitsAvoided *obs.Counter
	metOracleRuns    *obs.Counter
	metObservations  *obs.Gauge
	metBatchSize     *obs.Histogram
	metSnapAge       *obs.Gauge
	metShardProbes   *obs.Counter
	metLogWait       *obs.Counter
	metStateWait     *obs.Counter
}

type poisonBox struct{ err error }

// New builds an empty store.
func New(cfg Config) *Store {
	p := cfg.Params
	if p.MinPts == 0 {
		p = cluster.PaperParams
	}
	s := &Store{
		params:      p,
		oracleEvery: cfg.OracleEvery,
		idx:         cluster.NewDynamicIndex(p.Eps),
		dedup:       map[eventKey]uint64{},
		resolving:   map[phash.Hash]chan struct{}{},
		pointIdx:    map[pointKey]int32{},
		edgeSeen:    map[uint64]struct{}{},
		campaigns:   map[int]registeredCampaign{},

		metEvents:        cfg.Obs.Counter("cluster_incremental_events_total"),
		metMerges:        cfg.Obs.Counter("cluster_incremental_merges_total"),
		metSplitsAvoided: cfg.Obs.Counter("cluster_incremental_splits_avoided_total"),
		metOracleRuns:    cfg.Obs.Counter("cluster_incremental_oracle_runs_total"),
		metObservations:  cfg.Obs.Gauge("campstore_observations"),
		metBatchSize:     cfg.Obs.Histogram("campstore_append_batch_size"),
		metSnapAge:       cfg.Obs.Gauge("campstore_snapshot_age_ticks"),
		metShardProbes:   cfg.Obs.Counter("cluster_index_shard_probes_total"),
		metLogWait:       cfg.Obs.Counter("campstore_log_lock_wait_ns_total"),
		metStateWait:     cfg.Obs.Counter("campstore_state_lock_wait_ns_total"),
	}
	s.snap.Store(&snapshot{})
	return s
}

// Params returns the DBSCAN parameters the store clusters under.
func (s *Store) Params() cluster.Params { return s.params }

// Append records one event and integrates it into both views. The
// returned error is non-nil only when the event's E2LD is empty or the
// periodic oracle detected divergence (a bug — the store is then
// poisoned and every later Append keeps failing).
func (s *Store) Append(ev Event) (AppendResult, error) {
	br, err := s.AppendBatch([]Event{ev})
	if len(br.Results) == 1 {
		return br.Results[0], err
	}
	return AppendResult{}, err
}

// pendingEvent is one accepted non-duplicate event of a tranche.
type pendingEvent struct {
	ev Event
	ri int // index into BatchResult.Results
}

// hashResolve tracks one distinct hash of a tranche through the claim/
// register/probe pipeline.
type hashResolve struct {
	h     phash.Hash
	id    int32
	owned bool            // this tranche claimed the hash
	wait  chan struct{}   // non-nil: another in-flight tranche owns it
	nbrs  []int32         // probe result (owned hashes only)
	stats cluster.ProbeStats
	spent bool // NewHash/DistanceCalls already attributed to an event
}

// AppendBatch appends a tranche of events. Events are deduplicated and
// sequenced in input order; the whole tranche then flows through the
// staged ingest (index claims/probes with no store lock, short wiring
// and commit sections under stateMu) and publishes one snapshot.
// Multiple AppendBatch calls run concurrently; each tranche's events
// commit contiguously in input order.
//
// On a rejected event (empty E2LD) the earlier events of the tranche
// are still appended and committed, Results covers exactly those, and
// the error describes the rejected one.
func (s *Store) AppendBatch(events []Event) (BatchResult, error) {
	var out BatchResult
	if err := s.poisonErr(); err != nil {
		return out, err
	}
	s.metBatchSize.Observe(int64(len(events)))

	// Stage 1 — log: dedup on the full tuple, assign sequence numbers.
	var pend []pendingEvent
	var firstErr error
	t0 := time.Now()
	s.logMu.Lock()
	s.metLogWait.Add(time.Since(t0).Nanoseconds())
	for _, ev := range events {
		if ev.E2LD == "" {
			firstErr = fmt.Errorf("campstore: event with empty e2LD")
			break
		}
		if ev.Source == "" {
			ev.Source = SourceAPI
		}
		k := eventKey{ev.Hash, ev.E2LD, ev.Tick.UnixNano(), ev.Source}
		if seq, ok := s.dedup[k]; ok {
			out.Results = append(out.Results, AppendResult{Seq: seq, Duplicate: true})
			out.Duplicates++
			continue
		}
		seq := uint64(s.log.len() + 1)
		s.log.append(LoggedEvent{Seq: seq, Event: ev})
		s.dedup[k] = seq
		out.Results = append(out.Results, AppendResult{Seq: seq})
		pend = append(pend, pendingEvent{ev: ev, ri: len(out.Results) - 1})
		out.Appended++
	}
	s.metEvents.Add(int64(out.Appended))
	s.metObservations.Set(int64(s.log.len()))
	s.logMu.Unlock()

	if len(pend) == 0 {
		if firstErr == nil && out.Duplicates > 0 {
			s.publishCurrent() // keep Stats().Events fresh for readers
		}
		return out, firstErr
	}

	// Stage 2 — resolve: claim each distinct hash of the tranche, and
	// register + probe the ones this tranche owns. No store locks held;
	// the band-sharded index is the only serialization.
	resolves := make(map[phash.Hash]*hashResolve, len(pend))
	var order []*hashResolve
	for _, pe := range pend {
		if _, ok := resolves[pe.ev.Hash]; ok {
			continue
		}
		hr := &hashResolve{h: pe.ev.Hash}
		hr.id, hr.owned, hr.wait = s.claimHash(pe.ev.Hash)
		resolves[pe.ev.Hash] = hr
		order = append(order, hr)
	}
	var owned []*hashResolve
	for _, hr := range order {
		if hr.owned {
			owned = append(owned, hr)
		}
	}
	s.probeOwned(owned)
	for _, hr := range owned {
		out.Probes += hr.stats.Probes
		out.Candidates += hr.stats.Candidates
	}
	s.metShardProbes.Add(out.Probes)

	// Stage 3 — wire: splice the owned hashes' ε-edges into the
	// adjacency and seed their counts, then release their pending
	// channels. This section never waits on other tranches, which is
	// what makes stage 4's cross-tranche waits deadlock-free.
	if len(owned) > 0 {
		t0 = time.Now()
		s.stateMu.Lock()
		s.metStateWait.Add(time.Since(t0).Nanoseconds())
		for _, hr := range owned {
			s.wireHashLocked(hr)
		}
		s.stateMu.Unlock()
		s.resolveMu.Lock()
		for _, hr := range owned {
			close(s.resolving[hr.h])
			delete(s.resolving, hr.h)
		}
		s.resolveMu.Unlock()
	}

	// Stage 4 — wait (outside all locks) for hashes owned by other
	// in-flight tranches to be wired, so commits below only ever add
	// members to fully wired hashes.
	for _, hr := range order {
		if hr.wait != nil {
			<-hr.wait
		}
	}

	// Stage 5 — commit: integrate the events into both views in
	// tranche order, firing promotions/unions and the oracle cadence
	// exactly as a serial append-by-append run would.
	t0 = time.Now()
	s.stateMu.Lock()
	s.metStateWait.Add(time.Since(t0).Nanoseconds())
	for _, pe := range pend {
		res := &out.Results[pe.ri]
		if err := s.commitLocked(pe.ev, resolves[pe.ev.Hash], res); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		if res.NewPoint {
			out.NewPoints++
		}
		if res.NewHash {
			out.NewHashes++
		}
		out.DistanceCalls += res.DistanceCalls
	}
	s.gen.Add(1)
	sn := s.buildSnapshotLocked()
	s.stateMu.Unlock()

	// Stage 6 — publish.
	s.publish(sn)
	return out, firstErr
}

// claimHash claims h in the index, registering it as in-flight when
// this caller wins the claim. Exactly one of three outcomes: owned
// (this tranche must register+probe+wire it), wait non-nil (another
// tranche is wiring it), or neither (already fully wired).
func (s *Store) claimHash(h phash.Hash) (id int32, owned bool, wait chan struct{}) {
	s.resolveMu.Lock()
	defer s.resolveMu.Unlock()
	id, isNew := s.idx.Claim(h)
	if isNew {
		s.resolving[h] = make(chan struct{})
		return id, true, nil
	}
	return id, false, s.resolving[h] // nil when already wired
}

// probeOwned registers and probes the tranche's owned hashes — in
// parallel when there is enough work and more than one CPU. Each hash
// is registered in every band before it is probed, which (with the
// index's per-band locks) guarantees that of any two concurrently
// inserted ε-close hashes, at least one probe discovers the other.
func (s *Store) probeOwned(owned []*hashResolve) {
	one := func(hr *hashResolve) {
		s.idx.Register(hr.id, hr.h)
		hr.nbrs, hr.stats = s.idx.ProbeNeighbours(hr.h, hr.id)
	}
	if len(owned) < 4 || runtime.GOMAXPROCS(0) == 1 {
		for _, hr := range owned {
			one(hr)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > len(owned) {
		workers = len(owned)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(owned)) {
					return
				}
				one(owned[i])
			}
		}()
	}
	wg.Wait()
}

// growHashLocked extends the per-hash arrays to cover hash id. New
// slots are inert (no members, no adjacency) until wired/committed.
func (s *Store) growHashLocked(id int32) {
	for int32(len(s.adj)) <= id {
		s.adj = append(s.adj, nil)
		for v := range s.views {
			vs := &s.views[v]
			vs.members = append(vs.members, nil)
			vs.cnt = append(vs.cnt, 0)
			vs.core = append(vs.core, false)
			vs.parent = append(vs.parent, -1)
			vs.size = append(vs.size, 0)
			vs.minVi = append(vs.minVi, -1)
		}
	}
}

// wireHashLocked splices one owned hash's probe result into the
// adjacency. The edge set dedups against the opposite endpoint having
// wired the same edge already (both probes of a concurrently inserted
// ε-pair may see each other). Counts are then seeded from the full
// current adjacency: the hash has no members yet, so neighbours' counts
// are untouched, and any member committed to a neighbour later bumps
// this hash's count through the now-wired edge — the count invariant
// (cnt = view points within ε, own members included) holds at every
// stateMu release.
func (s *Store) wireHashLocked(hr *hashResolve) {
	s.growHashLocked(hr.id)
	for _, n := range hr.nbrs {
		s.growHashLocked(n)
		a, b := hr.id, n
		if a > b {
			a, b = b, a
		}
		key := uint64(uint32(a))<<32 | uint64(uint32(b))
		if _, dup := s.edgeSeen[key]; dup {
			continue
		}
		s.edgeSeen[key] = struct{}{}
		s.adj[hr.id] = append(s.adj[hr.id], n)
		s.adj[n] = append(s.adj[n], hr.id)
	}
	for v := range s.views {
		vs := &s.views[v]
		var c int32
		for _, n := range s.adj[hr.id] {
			c += int32(len(vs.members[n]))
		}
		vs.cnt[hr.id] = c
	}
}

// commitLocked integrates one logged event into the views. hr is the
// event's hash resolution (its hash is fully wired by now).
func (s *Store) commitLocked(ev Event, hr *hashResolve, res *AppendResult) error {
	pk := pointKey{ev.Hash, ev.E2LD}
	pid, known := s.pointIdx[pk]
	if !known {
		res.NewPoint = true
		if hr.owned && !hr.spent {
			// First point of a hash this tranche introduced: the event
			// that paid the index probe.
			hr.spent = true
			res.NewHash = true
			res.DistanceCalls = hr.stats.DistanceCalls
		}
		pid = int32(len(s.pointHash))
		s.pointHash = append(s.pointHash, hr.id)
		s.pointE2LD = append(s.pointE2LD, ev.E2LD)
		s.pointEvents = append(s.pointEvents, 0)
		s.pointIdx[pk] = pid
		for v := range s.views {
			s.views[v].idxOf = append(s.views[v].idxOf, -1)
		}
		s.addToView(&s.views[viewLive], pid)
	}
	s.pointEvents[pid]++
	if ev.Source == SourceCrawl && s.views[viewDiscovery].idxOf[pid] < 0 {
		s.addToView(&s.views[viewDiscovery], pid)
	}
	s.appended++
	if s.oracleEvery > 0 && s.appended%uint64(s.oracleEvery) == 0 {
		if err := s.runOracleLocked(); err != nil {
			s.poison(err)
			return err
		}
	}
	return nil
}

// addToView appends point pid to the view: bump the ε-neighbourhood
// count of its hash and every adjacent hash, then fire any promotions
// those increments unlocked.
func (s *Store) addToView(vs *viewState, pid int32) {
	vi := int32(len(vs.pts))
	vs.pts = append(vs.pts, pid)
	vs.idxOf[pid] = vi
	hid := s.pointHash[pid]
	vs.members[hid] = append(vs.members[hid], vi)
	vs.cnt[hid]++
	for _, n := range s.adj[hid] {
		vs.cnt[n]++
	}
	live := vs == &s.views[viewLive]
	s.maybePromote(vs, hid, live)
	for _, n := range s.adj[hid] {
		s.maybePromote(vs, n, live)
	}
	vs.dirty = true
}

// maybePromote turns hid into a core hash once it has members in the
// view and its ε-neighbourhood reaches MinPts, joining it to every
// already-core neighbour. A hash whose count crossed MinPts while it
// had no view members is promoted later, when its first member arrives.
func (s *Store) maybePromote(vs *viewState, hid int32, live bool) {
	if vs.core[hid] || len(vs.members[hid]) == 0 || int(vs.cnt[hid]) < s.params.MinPts {
		return
	}
	vs.core[hid] = true
	vs.parent[hid] = hid
	vs.size[hid] = 1
	vs.minVi[hid] = vs.members[hid][0]
	for _, n := range s.adj[hid] {
		if !vs.core[n] {
			continue
		}
		merged := vs.union(hid, n)
		if live {
			if merged {
				s.metMerges.Inc()
			} else {
				s.metSplitsAvoided.Inc()
			}
		}
	}
}

// labelsLocked derives the view's labels from the incremental state —
// zero distance calls. Cluster ids are assigned in order of each
// component's minimal core view index (exactly batch DBSCAN's seeding
// order); border points take the minimum id among adjacent core hashes
// (exactly the first cluster that would have expanded into them).
// A fresh slice is built whenever the view changed, so previously
// returned label slices (and the snapshots holding them) are immutable.
func (s *Store) labelsLocked(v int) ([]int, int) {
	vs := &s.views[v]
	if !vs.dirty {
		return vs.labels, vs.nclusters
	}
	nh := int32(len(vs.members))
	// Rank the components by minimal core view index.
	type comp struct{ root, minVi int32 }
	var comps []comp
	rank := make(map[int32]int)
	for hid := int32(0); hid < nh; hid++ {
		if !vs.core[hid] {
			continue
		}
		r := vs.find(hid)
		if _, seen := rank[r]; !seen {
			rank[r] = -1
			comps = append(comps, comp{r, vs.minVi[r]})
		}
	}
	// Insertion sort by minVi: component counts are small and mostly
	// already ordered (ids only churn on merges).
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j].minVi < comps[j-1].minVi; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	for i, c := range comps {
		rank[c.root] = i
	}
	labels := make([]int, len(vs.pts))
	for hid := int32(0); hid < nh; hid++ {
		if len(vs.members[hid]) == 0 {
			continue
		}
		lbl := cluster.Noise
		if vs.core[hid] {
			lbl = rank[vs.find(hid)]
		} else {
			for _, g := range s.adj[hid] {
				if !vs.core[g] {
					continue
				}
				if id := rank[vs.find(g)]; lbl == cluster.Noise || id < lbl {
					lbl = id
				}
			}
		}
		for _, vi := range vs.members[hid] {
			labels[vi] = lbl
		}
	}
	vs.labels, vs.nclusters, vs.dirty = labels, len(comps), false
	return labels, len(comps)
}

// buildSnapshotLocked captures the current committed state. The label
// slices are the store's cached ones (rebuilt fresh whenever dirty, so
// never mutated after capture); the pts/pointHash slices are prefixes
// of append-only arrays whose captured cells never change.
func (s *Store) buildSnapshotLocked() *snapshot {
	dl, dn := s.labelsLocked(viewDiscovery)
	ll, ln := s.labelsLocked(viewLive)
	sn := &snapshot{
		gen:          s.gen.Load(),
		events:       s.log.len(),
		pointHash:    s.pointHash[:len(s.pointHash):len(s.pointHash)],
		discPts:      clipInt32(s.views[viewDiscovery].pts),
		livePts:      clipInt32(s.views[viewLive].pts),
		discLabels:   dl,
		liveLabels:   ll,
		discClusters: dn,
		liveClusters: ln,
		merges:       s.views[viewLive].merges,
		cycles:       s.views[viewLive].cycles,
	}
	sn.campaigns = s.projectCampaignsLocked(ll)
	return sn
}

func clipInt32(sl []int32) []int32 { return sl[:len(sl):len(sl)] }

// publish installs sn as the live snapshot unless a newer generation
// already is, and records how far behind the committed state the
// published snapshot runs (0 when no other tranche committed since sn
// was built — every tranche publishes, so the age is bounded by the
// number of concurrently in-flight tranches).
func (s *Store) publish(sn *snapshot) {
	for {
		cur := s.snap.Load()
		if cur != nil && cur.gen >= sn.gen {
			break
		}
		if s.snap.CompareAndSwap(cur, sn) {
			break
		}
	}
	s.metSnapAge.Set(int64(s.gen.Load() - s.snap.Load().gen))
}

// publishCurrent rebuilds and publishes a snapshot of the current
// state (used by mutations outside the batch path, e.g. campaign
// registration).
func (s *Store) publishCurrent() {
	s.stateMu.Lock()
	s.gen.Add(1)
	sn := s.buildSnapshotLocked()
	s.stateMu.Unlock()
	s.publish(sn)
}

func (s *Store) poison(err error) {
	s.poisoned.CompareAndSwap(nil, &poisonBox{err: err})
}

func (s *Store) poisonErr() error {
	if b := s.poisoned.Load(); b != nil {
		return fmt.Errorf("campstore: store poisoned by oracle divergence: %w", b.err)
	}
	return nil
}

// DiscoveryLabels returns the crawl-view labels (one per crawl point,
// in crawl-point arrival order) and the cluster count, from the
// published snapshot — no lock taken. The slice is a copy.
func (s *Store) DiscoveryLabels() ([]int, int) {
	sn := s.snap.Load()
	return append([]int(nil), sn.discLabels...), sn.discClusters
}

// LiveLabels returns the all-sources labels (one per point, in point
// arrival order) and the cluster count, from the published snapshot —
// no lock taken. The slice is a copy.
func (s *Store) LiveLabels() ([]int, int) {
	sn := s.snap.Load()
	return append([]int(nil), sn.liveLabels...), sn.liveClusters
}

// DiscoveryIndex returns the discovery-view index of the (hash, e2LD)
// point, if it has one.
func (s *Store) DiscoveryIndex(h phash.Hash, e2ld string) (int, bool) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	pid, ok := s.pointIdx[pointKey{h, e2ld}]
	if !ok {
		return 0, false
	}
	vi := s.views[viewDiscovery].idxOf[pid]
	if vi < 0 {
		return 0, false
	}
	return int(vi), true
}

// DiscoveryMatches reports whether the discovery view is exactly the
// n-point sequence described by at (point i's hash and e2LD) — the
// coherence precondition for serving a run's discovery labels from a
// shared store: the store's crawl view must be the run's observation
// sequence, no more, no less, in the same order.
func (s *Store) DiscoveryMatches(n int, at func(int) (phash.Hash, string)) bool {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	vs := &s.views[viewDiscovery]
	if len(vs.pts) != n {
		return false
	}
	for i, pid := range vs.pts {
		h, e2ld := at(i)
		if s.idx.Hash(s.pointHash[pid]) != h || s.pointE2LD[pid] != e2ld {
			return false
		}
	}
	return true
}

// DiscoveryPoints returns the size of the discovery (crawl) view in
// the published snapshot.
func (s *Store) DiscoveryPoints() int { return len(s.snap.Load().discPts) }

// Points returns the number of distinct (hash, e2LD) pairs in the
// published snapshot.
func (s *Store) Points() int { return len(s.snap.Load().pointHash) }

// EventCount returns the number of logged (non-duplicate) events.
func (s *Store) EventCount() int { return s.log.len() }

// Events returns up to limit events with Seq > after, in sequence
// order — the pagination contract of GET /v1/observations. limit <= 0
// means no limit. Lock-free: reads the chunked log directly.
func (s *Store) Events(after uint64, limit int) []LoggedEvent {
	n := int64(s.log.n.Load())
	chunks := s.log.chunks.Load() // after n: covers every cell below n
	if after >= uint64(n) {
		return nil
	}
	end := n
	if limit > 0 && end-int64(after) > int64(limit) {
		end = int64(after) + int64(limit)
	}
	out := make([]LoggedEvent, 0, end-int64(after))
	for i := int64(after); i < end; i++ {
		out = append(out, *s.log.at(chunks, i))
	}
	return out
}

// DistanceCalls returns the full Hamming verifications performed over
// the store's lifetime.
func (s *Store) DistanceCalls() int64 { return s.idx.DistanceCalls() }

// Stats snapshots the store.
type Stats struct {
	Events          int
	Points          int
	DiscoveryPoints int
	LivePoints      int
	LiveClusters    int
	Merges          int64 // live-view component merges
	SplitsAvoided   int64 // live-view unions already connected
	OracleRuns      int64
	SnapshotGen     uint64 // commit generation of the served snapshot
	Index           cluster.DynamicIndexStats
}

// Stats returns a read-side snapshot — served from the published
// snapshot plus the live atomics, without taking any lock.
func (s *Store) Stats() Stats {
	sn := s.snap.Load()
	return Stats{
		Events:          s.log.len(),
		Points:          len(sn.pointHash),
		DiscoveryPoints: len(sn.discPts),
		LivePoints:      len(sn.livePts),
		LiveClusters:    sn.liveClusters,
		Merges:          sn.merges,
		SplitsAvoided:   sn.cycles,
		OracleRuns:      s.oracleRuns.Load(),
		SnapshotGen:     sn.gen,
		Index:           s.idx.Stats(),
	}
}
