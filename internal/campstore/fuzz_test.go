package campstore_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/campstore"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/phash"
)

// Fuzz encoding: the input is a sequence of 18-byte records, each one
// observation event.
//
//	[0:16]  hash (big-endian Hi, Lo)
//	[16]    e2LD selector (mod 10)
//	[17]    flags: bit0 = milk source (else crawl)
//	               bit1 = derive the hash from the previous event's by
//	                      flipping two positions taken from bytes 0-1
//	                      (guarantees ε-density whatever the corpus)
//	               bit2 = reuse the previous tick (exercises dedup)
//
// The fuzzer mutates corpus entries freely; the derive flag means even
// random mutations keep producing near-duplicate hashes that land
// within eps of each other, which is where merges and promotions live.
const fuzzRecordSize = 18

func decodeFuzzStream(data []byte) []campstore.Event {
	var evs []campstore.Event
	prev := phash.Hash{}
	tick := int64(0)
	for len(data) >= fuzzRecordSize && len(evs) < 256 {
		rec := data[:fuzzRecordSize]
		data = data[fuzzRecordSize:]
		h := phash.Hash{Hi: binary.BigEndian.Uint64(rec[0:8]), Lo: binary.BigEndian.Uint64(rec[8:16])}
		if rec[17]&2 != 0 {
			h = prev.FlipBits(int(rec[0])%phash.Bits, int(rec[1])%phash.Bits)
		}
		prev = h
		src := campstore.SourceCrawl
		if rec[17]&1 != 0 {
			src = campstore.SourceMilk
		}
		if rec[17]&4 == 0 {
			tick++
		}
		evs = append(evs, campstore.Event{
			Hash:   h,
			E2LD:   fmt.Sprintf("site%d.example", rec[16]%10),
			Source: src,
			Tick:   time.Unix(tick, 0),
		})
	}
	return evs
}

func encodeFuzzRecord(h phash.Hash, dom, flags byte) []byte {
	rec := make([]byte, fuzzRecordSize)
	binary.BigEndian.PutUint64(rec[0:8], h.Hi)
	binary.BigEndian.PutUint64(rec[8:16], h.Lo)
	rec[16], rec[17] = dom, flags
	return rec
}

// worldgenCorpus runs the tiny-world crawl once and encodes its real
// observations — the (dhash, e2LD) pairs the paper pipeline actually
// clusters — as fuzz seed records.
var worldgenCorpus = sync.OnceValue(func() [][]byte {
	cfg := seacma.QuickExperimentConfig()
	cfg.SkipMilking = true
	cfg.MaxPublishers = 24
	cfg.Crawler.Workers = 1
	res, err := seacma.NewExperiment(cfg).Run()
	if err != nil {
		return nil
	}
	obs := core.CollectObservations(res.Sessions)
	var out [][]byte
	var stream []byte
	for i, o := range obs {
		if i >= 48 {
			break
		}
		rec := encodeFuzzRecord(o.Hash, byte(i), byte(i%2))
		out = append(out, rec)
		stream = append(stream, rec...)
	}
	if len(stream) > 0 {
		out = append(out, stream)
	}
	return out
})

// FuzzIncrementalLabels feeds arbitrary event streams — seeded from
// real worldgen crawl observations — through the incremental engine and
// asserts, via the batch-recompute oracle, that both views' labels are
// identical to a from-scratch DBSCAN over the same arrival order.
func FuzzIncrementalLabels(f *testing.F) {
	for _, seed := range worldgenCorpus() {
		f.Add(seed)
	}
	// Synthetic seeds: one dense chain (every hash 2 flips from the
	// previous), one crawl/milk alternation with dedup pressure.
	base := phash.Hash{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	var chain, alt []byte
	for i := 0; i < 24; i++ {
		chain = append(chain, encodeFuzzRecord(base.FlipBits(i, i+1), byte(i), 2)...)
		alt = append(alt, encodeFuzzRecord(base.FlipBits(i%5), byte(i%3), byte(i%8))...)
	}
	f.Add(chain)
	f.Add(alt)

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := decodeFuzzStream(data)
		if len(evs) == 0 {
			return
		}
		s := campstore.New(campstore.Config{Params: cluster.PaperParams})
		for i, ev := range evs {
			if _, err := s.Append(ev); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		if err := s.RunOracle(); err != nil {
			t.Fatalf("incremental labels diverged from batch: %v", err)
		}
	})
}
