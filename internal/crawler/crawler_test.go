package crawler

import (
	"testing"
	"time"

	"repro/internal/adblock"
	"repro/internal/urlx"
	"repro/internal/webtx"
	"repro/internal/worldgen"
)

func tinyWorld(t *testing.T) *worldgen.World {
	t.Helper()
	return worldgen.Build(worldgen.TinyConfig())
}

func fastCfg() Config {
	return Config{
		Workers:   4,
		FetchCost: time.Second,
	}
}

func tasksFor(w *worldgen.World, n int) []Task {
	var tasks []Task
	for _, p := range w.Publishers[:n] {
		tasks = append(tasks, Task{Host: p.Host, ClientIP: webtx.IPResidential})
	}
	return tasks
}

func TestConfigDefaults(t *testing.T) {
	c := New(nil, nil, Config{})
	cfg := c.Config()
	if len(cfg.UserAgents) != 4 {
		t.Fatalf("UAs = %d", len(cfg.UserAgents))
	}
	if cfg.Workers <= 0 || cfg.MaxClickTargets <= 0 || cfg.RepeatClicks <= 0 ||
		cfg.MaxAdsPerSession <= 0 || cfg.FetchCost == 0 || cfg.ViewportScale <= 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

func TestSingleSessionFindsAds(t *testing.T) {
	w := tinyWorld(t)
	c := New(w.Internet, w.Clock, fastCfg())
	// Crawl several publishers until one yields landings (ad fills are
	// stochastic but dense).
	var total int
	for _, task := range tasksFor(w, 25) {
		s := c.RunSession(task, webtx.UAChromeMac)
		if !s.PublisherOK {
			t.Fatalf("publisher %s did not load", task.Host)
		}
		total += len(s.Landings)
		if len(s.Events) == 0 {
			t.Fatal("no events recorded")
		}
	}
	if total == 0 {
		t.Fatal("25 sessions yielded no landings")
	}
}

func TestLandingsHaveHashesAndE2LD(t *testing.T) {
	w := tinyWorld(t)
	c := New(w.Internet, w.Clock, fastCfg())
	found := false
	for _, task := range tasksFor(w, 30) {
		s := c.RunSession(task, webtx.UAChromeMac)
		for _, l := range s.Landings {
			found = true
			if l.URL.IsZero() {
				t.Fatal("landing without URL")
			}
			if l.E2LD != urlx.E2LD(l.URL.Host) {
				t.Fatalf("e2LD mismatch: %s vs %s", l.E2LD, l.URL.Host)
			}
			if l.Status == webtx.StatusOK && !l.Hashed {
				t.Fatalf("OK landing %s not hashed", l.URL.String())
			}
		}
	}
	if !found {
		t.Skip("no landings in sample")
	}
}

func TestCrawlAllParallelMatchesOrder(t *testing.T) {
	w := tinyWorld(t)
	c := New(w.Internet, w.Clock, fastCfg())
	tasks := tasksFor(w, 6)
	sessions := c.CrawlAll(tasks)
	if len(sessions) != 6*4 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	for i, s := range sessions {
		if s == nil {
			t.Fatalf("session %d missing", i)
		}
		wantTask := tasks[i/4]
		wantUA := c.Config().UserAgents[i%4]
		if s.Publisher != wantTask.Host || s.UserAgent.Name != wantUA.Name {
			t.Fatalf("session %d out of order: %s/%s", i, s.Publisher, s.UserAgent.Name)
		}
	}
}

func TestDownloadsCollected(t *testing.T) {
	w := tinyWorld(t)
	c := New(w.Internet, w.Clock, fastCfg())
	// Desktop UAs hit fake-software campaigns that serve downloads on
	// interaction. Crawl broadly and look for at least one download.
	got := false
	for _, task := range tasksFor(w, 60) {
		if got {
			break
		}
		for _, ua := range []webtx.UserAgent{webtx.UAChromeMac, webtx.UAIE10Win} {
			s := c.RunSession(task, ua)
			for _, l := range s.Landings {
				if len(l.Downloads) > 0 {
					got = true
					if l.Downloads[0].SHA256 == "" {
						t.Fatal("download without hash")
					}
				}
			}
		}
	}
	if !got {
		t.Fatal("no downloads collected across 60 publishers")
	}
}

func TestAdblockCrawlYieldsNothingFromBlockedNetwork(t *testing.T) {
	w := tinyWorld(t)
	filter := adblock.EasyListLike()
	cfg := fastCfg()
	cfg.BlockFilter = filter.Match
	c := New(w.Internet, w.Clock, cfg)
	// Find a publisher using only Clicksor, if any; otherwise verify the
	// filter hit counter stays zero for rotating networks.
	for _, p := range w.Publishers[:40] {
		onlyClicksor := len(p.Networks) == 1 && p.Networks[0] == "Clicksor"
		s := c.RunSession(Task{Host: p.Host, ClientIP: webtx.IPResidential}, webtx.UAChromeMac)
		if onlyClicksor && len(s.Landings) > 0 {
			t.Fatalf("Clicksor-only publisher %s yielded ads under adblock", p.Host)
		}
	}
}

func TestVirtualTimeAdvancesDuringCrawl(t *testing.T) {
	w := tinyWorld(t)
	c := New(w.Internet, w.Clock, fastCfg())
	before := w.Clock.Now()
	c.CrawlAll(tasksFor(w, 3))
	if !w.Clock.Now().After(before) {
		t.Fatal("virtual clock did not advance")
	}
}

func TestMobileSessionsMarkLandings(t *testing.T) {
	w := tinyWorld(t)
	cfg := fastCfg()
	cfg.DeviceEmulation = true
	c := New(w.Internet, w.Clock, cfg)
	for _, task := range tasksFor(w, 30) {
		s := c.RunSession(task, webtx.UAChromeAndroid)
		for _, l := range s.Landings {
			if !l.Mobile {
				t.Fatal("mobile landing not marked")
			}
		}
	}
}

func TestDisableStealthReducesYield(t *testing.T) {
	// With the stealth patch off, webdriver-checking networks withhold
	// ads; total yield over the same publishers must not increase.
	w1 := tinyWorld(t)
	c1 := New(w1.Internet, w1.Clock, fastCfg())
	yield1 := 0
	for _, task := range tasksFor(w1, 40) {
		yield1 += len(c1.RunSession(task, webtx.UAChromeMac).Landings)
	}
	w2 := tinyWorld(t)
	cfg := fastCfg()
	cfg.DisableStealth = true
	c2 := New(w2.Internet, w2.Clock, cfg)
	yield2 := 0
	for _, task := range tasksFor(w2, 40) {
		yield2 += len(c2.RunSession(task, webtx.UAChromeMac).Landings)
	}
	if yield2 > yield1 {
		t.Fatalf("unstealthy yield %d > stealthy %d", yield2, yield1)
	}
}

func TestMaxAdsPerSessionBound(t *testing.T) {
	w := tinyWorld(t)
	cfg := fastCfg()
	cfg.MaxAdsPerSession = 1
	cfg.RepeatClicks = 3
	c := New(w.Internet, w.Clock, cfg)
	for _, task := range tasksFor(w, 15) {
		s := c.RunSession(task, webtx.UAChromeMac)
		// One budgeted ad plus at most the popups of the final click burst.
		if len(s.Landings) > 4 {
			t.Fatalf("session produced %d landings with MaxAdsPerSession=1", len(s.Landings))
		}
	}
}

func TestBehaviourSignalsPopulated(t *testing.T) {
	w := tinyWorld(t)
	c := New(w.Internet, w.Clock, fastCfg())
	sawDownload, sawNotif := false, false
	for _, task := range tasksFor(w, 60) {
		if sawDownload && sawNotif {
			break
		}
		s := c.RunSession(task, webtx.UAChromeMac)
		for _, l := range s.Landings {
			if l.Behaviour.Downloaded && len(l.Downloads) > 0 {
				sawDownload = true
			}
			if l.Behaviour.NotificationRequest {
				sawNotif = true
			}
		}
	}
	if !sawDownload {
		t.Error("no landing with download behaviour")
	}
	if !sawNotif {
		t.Error("no landing with notification behaviour")
	}
}

func TestParkedScoreOnLandings(t *testing.T) {
	w := tinyWorld(t)
	c := New(w.Internet, w.Clock, fastCfg())
	var parked, se int
	for _, task := range tasksFor(w, 50) {
		s := c.RunSession(task, webtx.UAChromeMac)
		for _, l := range s.Landings {
			if !l.Hashed {
				continue
			}
			isAttack := w.Truth.CampaignOfAttackDomain(l.URL.Host) != ""
			if l.ParkedScore >= 0.6 {
				parked++
				if isAttack {
					t.Fatalf("SE attack page %s scored parked %.2f", l.URL.String(), l.ParkedScore)
				}
			}
			if isAttack {
				se++
			}
		}
	}
	if se == 0 {
		t.Skip("no SE landings in sample")
	}
}
