package crawler

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/webtx"
)

// The farm's workers report into the registry concurrently; run with
// -race to exercise the hot path.
func TestCrawlAllReportsMetrics(t *testing.T) {
	w := tinyWorld(t)
	reg := obs.New()
	reg.SetVirtualNow(w.Clock.Now)
	w.Internet.SetObs(reg)
	cfg := fastCfg()
	cfg.Obs = reg
	c := New(w.Internet, w.Clock, cfg)

	tasks := tasksFor(w, 10)
	sessions := c.CrawlAll(tasks)

	wantSessions := int64(len(tasks) * len(c.Config().UserAgents))
	if got := reg.SumCounters("crawler_sessions_total"); got != wantSessions {
		t.Fatalf("sessions counter = %d, want %d", got, wantSessions)
	}
	if got := reg.CounterValue("crawler_clicks_total"); got == 0 {
		t.Fatal("clicks counter = 0")
	}
	var landings int64
	for _, s := range sessions {
		landings += int64(len(s.Landings))
	}
	if got := reg.CounterValue("crawler_ads_total"); got != landings {
		t.Fatalf("ads counter = %d, want %d landings", got, landings)
	}
	if got := reg.Histogram("crawler_landings_per_session").Count(); got != wantSessions {
		t.Fatalf("landings histogram count = %d, want %d", got, wantSessions)
	}
	// Every fetch the farm made shows up in the webtx request counters.
	if got := reg.CounterValue("webtx_requests_total", "ip=residential"); got == 0 {
		t.Fatal("webtx residential request counter = 0")
	}
}

// A publisher that refuses to serve (dead host) counts as a denial,
// and the failed fetch lands in webtx_nxdomain_total.
func TestDeniedSessionCounted(t *testing.T) {
	w := tinyWorld(t)
	reg := obs.New()
	w.Internet.SetObs(reg)
	cfg := fastCfg()
	cfg.Obs = reg
	c := New(w.Internet, w.Clock, cfg)

	s := c.RunSession(Task{Host: "no-such-host.example", ClientIP: webtx.IPDatacenter}, webtx.UAChromeMac)
	if s.PublisherOK {
		t.Fatal("dead publisher loaded")
	}
	if got := reg.CounterValue("crawler_denied_total"); got != 1 {
		t.Fatalf("denied counter = %d, want 1", got)
	}
	if got := reg.CounterValue("webtx_nxdomain_total"); got != 1 {
		t.Fatalf("nxdomain counter = %d, want 1", got)
	}
	if got := reg.CounterValue("webtx_requests_total", "ip=datacenter"); got != 1 {
		t.Fatalf("datacenter request counter = %d, want 1", got)
	}
}
