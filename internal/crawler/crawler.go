// Package crawler implements the paper's crawler farm (Section 3.2):
// parallel workers drive stealth-automated browsers through publisher
// websites, click the largest images/iframes (and transparent overlays)
// to trigger pop-up/pop-under ads, record screenshots and perceptual
// hashes of every third-party landing page, interact with landing pages
// to collect file downloads, and keep the full instrumentation log for
// ad-loading reconstruction.
package crawler

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/adscript"
	"repro/internal/browser"
	"repro/internal/devtools"
	"repro/internal/dom"
	"repro/internal/obs"
	"repro/internal/parking"
	"repro/internal/phash"
	"repro/internal/screenshot"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

// Config tunes the farm. Zero values get paper-flavoured defaults.
type Config struct {
	// UserAgents to rotate per publisher (default: the paper's four).
	UserAgents []webtx.UserAgent
	// Workers is the number of parallel crawler instances.
	Workers int
	// MaxClickTargets bounds how many candidate elements are clicked per
	// session.
	MaxClickTargets int
	// RepeatClicks re-clicks a productive element to trigger stacked ads
	// from co-installed networks.
	RepeatClicks int
	// MaxAdsPerSession stops a session once enough ads were exercised.
	MaxAdsPerSession int
	// FetchCost is the virtual time per fetch (paces the virtual crawl
	// window; the paper spent ~2 minutes per session).
	FetchCost time.Duration
	// StealthPatch / DialogBypass are the anti-cloaking instrumentations;
	// both default to on and exist as knobs for the ablation benches.
	StealthPatch bool
	DialogBypass bool
	// DisableStealth / DisableDialogBypass turn the instrumentations off
	// (needed because zero-value booleans default to on).
	DisableStealth      bool
	DisableDialogBypass bool
	// DeviceEmulation applies mobile screen metrics for mobile UAs.
	DeviceEmulation bool
	// ViewportScale reduces screenshot resolution (1 = native).
	ViewportScale int
	// BlockFilter simulates an ad-blocker extension.
	BlockFilter func(u urlx.URL) bool
	// InteractWithLandings clicks once inside each landing page (file
	// download collection). Default on.
	DisableLandingInteraction bool
	// Obs receives farm metrics (sessions per worker, clicks, ads
	// triggered, cloaking denials, screenshot hashes). Nil = no-op.
	Obs *obs.Registry
	// Capture is the shared content-addressed capture cache. All workers
	// may share one instance; landing hashes are byte-identical with or
	// without it. Nil disables memoization.
	Capture *screenshot.Cache
	// Scripts is the shared compile-once program cache. All workers may
	// share one instance; API-call traces are byte-identical with or
	// without it. Nil parses per script run.
	Scripts *adscript.ProgramCache
}

func (c *Config) fillDefaults() {
	if len(c.UserAgents) == 0 {
		c.UserAgents = webtx.AllUserAgents
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxClickTargets <= 0 {
		c.MaxClickTargets = 3
	}
	if c.RepeatClicks <= 0 {
		c.RepeatClicks = 2
	}
	if c.MaxAdsPerSession <= 0 {
		c.MaxAdsPerSession = 6
	}
	if c.FetchCost == 0 {
		c.FetchCost = 2 * time.Second
	}
	if c.ViewportScale <= 0 {
		c.ViewportScale = 4
	}
}

// Task is one publisher to crawl, with the IP vantage point to use (the
// paper crawled Propeller/Clickadu publishers from residential lines).
type Task struct {
	Host     string
	ClientIP webtx.IPClass
}

// Landing is one third-party landing page reached by clicking an ad.
type Landing struct {
	URL    urlx.URL
	E2LD   string
	Status int
	// Hash is the perceptual hash of the landing screenshot (zero when
	// the page could not be captured).
	Hash    phash.Hash
	Hashed  bool
	Mobile  bool
	Blocked bool // page wedged the tab (no bypass)
	// Title is the landing document title.
	Title string
	// ParkedScore is the parked-domain detector's score for the page
	// (the automated filter the paper leaves to future work).
	ParkedScore float64
	// Downloads collected by interacting with the page.
	Downloads []*webtx.Download
	// Behaviour holds the page's observed SE signals, derived from the
	// instrumentation log of the landing tab.
	Behaviour Behaviour
}

// Behaviour summarises the SE-relevant signals a landing page exhibited —
// the machine-readable form of the paper's triage inspection (Section
// 4.3).
type Behaviour struct {
	// Alerts counts modal dialogs the page raised (bypassed or not).
	Alerts int
	// BeforeUnload reports an onbeforeunload page-lock handler.
	BeforeUnload bool
	// NotificationRequest reports a push-notification permission ask.
	NotificationRequest bool
	// OpenedSignup reports a popup to a third-party signup/registration
	// page triggered by interaction.
	OpenedSignup bool
	// Downloaded reports a file download triggered by interaction.
	Downloaded bool
}

// Session is the record of one (publisher, UA) crawl.
type Session struct {
	Publisher string
	UserAgent webtx.UserAgent
	ClientIP  webtx.IPClass
	// PublisherOK reports whether the publisher page loaded.
	PublisherOK bool
	Landings    []Landing
	// Events is the merged instrumentation log of every browser used in
	// the session.
	Events []browser.Event
}

// Crawler runs sessions against one internet.
type Crawler struct {
	internet *webtx.Internet
	clock    *vclock.Clock
	cfg      Config
	met      farmMetrics
}

// farmMetrics are the farm's pre-resolved handles; all nil (one nil
// check per update) when cfg.Obs is nil.
type farmMetrics struct {
	clicks   *obs.Counter // crawler_clicks_total
	ads      *obs.Counter // crawler_ads_total: landings reached via ads
	denied   *obs.Counter // crawler_denied_total: publisher page refused/cloaked
	hashes   *obs.Counter // crawler_hashes_total: screenshots dhashed
	landings *obs.Histogram
}

// New builds a crawler farm front-end.
func New(internet *webtx.Internet, clock *vclock.Clock, cfg Config) *Crawler {
	cfg.fillDefaults()
	return &Crawler{internet: internet, clock: clock, cfg: cfg, met: farmMetrics{
		clicks:   cfg.Obs.Counter("crawler_clicks_total"),
		ads:      cfg.Obs.Counter("crawler_ads_total"),
		denied:   cfg.Obs.Counter("crawler_denied_total"),
		hashes:   cfg.Obs.Counter("crawler_hashes_total"),
		landings: cfg.Obs.Histogram("crawler_landings_per_session"),
	}}
}

// Config returns the effective configuration.
func (c *Crawler) Config() Config { return c.cfg }

// CrawlAll runs every (task, UA) session across the worker pool and
// returns all session records, in deterministic (task, UA) order.
func (c *Crawler) CrawlAll(tasks []Task) []*Session {
	out, _ := c.CrawlAllContext(context.Background(), tasks)
	return out
}

// CrawlAllContext is CrawlAll with cancellation: once ctx is done no new
// session is started (in-flight sessions finish — a session is seconds
// of virtual work, not wall time), the pool is drained, and ctx.Err() is
// returned alongside the sessions completed so far. Unstarted slots stay
// nil, so callers that keep a partial result must filter them.
func (c *Crawler) CrawlAllContext(ctx context.Context, tasks []Task) ([]*Session, error) {
	events, total := c.CrawlStream(ctx, tasks)
	out := make([]*Session, total)
	for ev := range events {
		out[ev.Index] = ev.Session
	}
	return out, ctx.Err()
}

// SessionEvent is one finished crawl session as emitted by CrawlStream.
// Index is the session's slot in the deterministic (task, UA) order that
// CrawlAll returns.
type SessionEvent struct {
	Index   int
	Session *Session
}

// CrawlStream runs every (task, UA) session across the worker pool and
// emits each session on the returned channel the moment its worker
// finishes it — in completion order, not slot order; consumers that need
// the deterministic ordering commit by Index. total is the number of
// session slots (len(tasks) × user agents). The channel is buffered for
// all slots (workers never block on a slow consumer) and is closed once
// the pool drains. Once ctx is done no new session starts, so a
// cancelled stream emits exactly the contiguous prefix of slots that
// were fed before cancellation.
func (c *Crawler) CrawlStream(ctx context.Context, tasks []Task) (<-chan SessionEvent, int) {
	type job struct {
		idx  int
		task Task
		ua   webtx.UserAgent
	}
	total := len(tasks) * len(c.cfg.UserAgents)
	jobs := make(chan job)
	events := make(chan SessionEvent, total)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		sessions := c.cfg.Obs.Counter("crawler_sessions_total", "worker="+strconv.Itoa(w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				events <- SessionEvent{Index: j.idx, Session: c.RunSession(j.task, j.ua)}
				sessions.Inc()
			}
		}()
	}
	go func() {
		i := 0
	feed:
		for _, t := range tasks {
			for _, ua := range c.cfg.UserAgents {
				if ctx.Err() != nil {
					break feed
				}
				jobs <- job{idx: i, task: t, ua: ua}
				i++
			}
		}
		close(jobs)
		wg.Wait()
		close(events)
	}()
	return events, total
}

// RunSession crawls one publisher with one UA.
func (c *Crawler) RunSession(task Task, ua webtx.UserAgent) *Session {
	s := &Session{Publisher: task.Host, UserAgent: ua, ClientIP: task.ClientIP}
	defer func() { c.met.landings.Observe(int64(len(s.Landings))) }()
	adsTriggered := 0
	targetIdx := 0

	for adsTriggered < c.cfg.MaxAdsPerSession {
		client := c.newClient(task, ua)
		tab, err := client.Navigate("http://" + task.Host + "/")
		if err != nil || tab.Status != webtx.StatusOK || tab.Doc == nil {
			// The publisher refused us: NXDOMAIN, error page, or an
			// IP-cloaking denial (the paper's residential-only networks).
			c.met.denied.Inc()
			s.Events = append(s.Events, client.Events()...)
			return s
		}
		s.PublisherOK = true
		clickables := tab.Doc.Clickables()
		if targetIdx >= len(clickables) || targetIdx >= c.cfg.MaxClickTargets {
			s.Events = append(s.Events, client.Events()...)
			return s
		}
		el := clickables[targetIdx]
		navigatedAway := false
		for r := 0; r < c.cfg.RepeatClicks && adsTriggered < c.cfg.MaxAdsPerSession; r++ {
			c.met.clicks.Inc()
			res, err := client.ClickElement(tab, el)
			if err != nil {
				break
			}
			for _, popup := range res.OpenedTabs {
				if popup.URL.Host == task.Host {
					continue // same-site popup is not an ad
				}
				s.Landings = append(s.Landings, c.recordLanding(client, popup, ua))
				adsTriggered++
				c.met.ads.Inc()
			}
			if res.Navigated {
				// The tab itself left the publisher: record it, then
				// restart the browser and move to the next target (the
				// paper re-opens the browser and reloads the page).
				if tab.URL.Host != task.Host {
					s.Landings = append(s.Landings, c.recordLanding(client, tab, ua))
					adsTriggered++
					c.met.ads.Inc()
				}
				navigatedAway = true
				break
			}
		}
		s.Events = append(s.Events, client.Events()...)
		targetIdx++
		if !navigatedAway && targetIdx >= min(len(clickables), c.cfg.MaxClickTargets) {
			return s
		}
	}
	return s
}

func (c *Crawler) newClient(task Task, ua webtx.UserAgent) *devtools.Client {
	return devtools.NewClient(c.internet, c.clock, devtools.ClientConfig{
		UserAgent:       ua,
		ClientIP:        task.ClientIP,
		StealthPatch:    !c.cfg.DisableStealth,
		DialogBypass:    !c.cfg.DisableDialogBypass,
		DeviceEmulation: c.cfg.DeviceEmulation && ua.Mobile,
		BlockFilter:     c.cfg.BlockFilter,
		FetchCost:       c.cfg.FetchCost,
		ViewportScale:   c.cfg.ViewportScale,
		Capture:         c.cfg.Capture,
		Scripts:         c.cfg.Scripts,
	})
}

// recordLanding captures a landing page: screenshot hash, downloads from
// one interaction, final URL.
func (c *Crawler) recordLanding(client *devtools.Client, tab *browser.Tab, ua webtx.UserAgent) Landing {
	l := Landing{
		URL:    tab.URL,
		E2LD:   urlx.E2LD(tab.URL.Host),
		Status: tab.Status,
		Mobile: ua.Mobile,
	}
	if tab.Blocked() {
		l.Blocked = true
		return l
	}
	if tab.Doc == nil {
		l.Downloads = tab.Downloads
		return l
	}
	l.Title = tab.Doc.Title
	_, l.ParkedScore = parking.NewDetector().Classify(tab.Doc)
	if h, err := client.CaptureScreenshotHash(tab); err == nil {
		l.Hash = h
		l.Hashed = true
		c.met.hashes.Inc()
	}
	if !c.cfg.DisableLandingInteraction {
		c.interact(client, tab)
	}
	l.Downloads = tab.Downloads
	l.Blocked = tab.Blocked()
	l.Behaviour = behaviourFromEvents(client.Events(), tab)
	return l
}

// behaviourFromEvents distils the landing tab's instrumentation log into
// SE signals.
func behaviourFromEvents(events []browser.Event, tab *browser.Tab) Behaviour {
	var bh Behaviour
	for _, e := range events {
		if e.Tab != tab.ID {
			continue
		}
		switch e.Kind {
		case browser.EvDialogBypass:
			if e.Detail == "alert" || e.Detail == "confirm" {
				bh.Alerts++
			}
			if e.Detail == "onbeforeunload" {
				bh.BeforeUnload = true
			}
		case browser.EvAPICall:
			switch e.API.Name {
			case "window.alert", "window.confirm":
				bh.Alerts++
			case "window.onbeforeunload":
				bh.BeforeUnload = true
			case "notification.request":
				bh.NotificationRequest = true
			case "window.open":
				if len(e.API.Args) > 0 && strings.Contains(e.API.Args[0], "signup") {
					bh.OpenedSignup = true
				}
			}
		case browser.EvDownload:
			bh.Downloaded = true
		}
	}
	// Alerts are double-counted when both the API call and its bypass are
	// logged; halve conservatively.
	if bh.Alerts > 1 {
		bh.Alerts = (bh.Alerts + 1) / 2
	}
	return bh
}

// interact performs the paper's "simple interactions" on an SE landing
// page: click the most prominent button, falling back to the page
// centre. This is what triggers fake-software downloads.
func (c *Crawler) interact(client *devtools.Client, tab *browser.Tab) {
	var target *dom.Element
	best := -1
	tab.Doc.Root.Walk(func(el *dom.Element) bool {
		if el.Tag == "button" && el.Area() > best {
			best = el.Area()
			target = el
		}
		return true
	})
	if target != nil {
		_, _ = client.ClickElement(tab, target)
		return
	}
	if tab.Doc.Root.W > 0 {
		_, _ = client.Click(tab, tab.Doc.Root.W/2, tab.Doc.Root.H/2)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
