package rng

// Seed-state memoization. Seeding math/rand's additive lagged-Fibonacci
// generator runs a 607-round multiplicative scramble (seedrand) and
// allocates its 607-word state vector — measurably the costliest part of
// Split on the pipeline's hot paths, where the same child seeds recur
// constantly (GSB polls per domain, campaign host streams, hour-bucketed
// capture draws). The memo removes both costs for repeated seeds:
//
//   - The freshly seeded generator state is recovered, without touching
//     math/rand internals, from its own first 607 outputs: each output
//     overwrites exactly the state word it was produced into (vec[feed] =
//     vec[feed] + vec[tap]), and 607 consecutive draws visit every feed
//     position exactly once, so after 607 draws the state vector IS the
//     output sequence laid out in feed order — with tap and feed back at
//     their post-seed positions.
//
//   - A memo hit returns a replaySource: a ~50-byte handle that serves
//     the first 607 draws straight out of the shared immutable snapshot
//     (during that window the generator's writes are identities, so no
//     private state is needed) and materializes a private copy of the
//     vector only if a caller ever draws past the replay window. Most
//     split streams draw far fewer than 607 values, so a hit costs two
//     small allocations instead of the 4.8 KB state vector plus the
//     seedrand rounds.
//
// Seeds are admitted to the memo on their second sighting: the pipeline
// derives many single-use seeds (per-request slot draws keyed on the
// virtual clock), and snapshotting those would trade one 4.8 KB
// allocation for two. First-sighting seeds pay exactly the status quo.
//
// Streams are bit-identical to rand.New(rand.NewSource(seed)) — enforced
// by property tests — so memoization can never move a report byte.

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

const (
	// rngLen and rngTap mirror math/rand's generator geometry: a 607-word
	// additive generator with taps 273 words apart. The feed index starts
	// rngLen-rngTap words in. These are fixed by the math/rand stream
	// compatibility promise (Go 1 keeps seeded sequences stable).
	rngLen  = 607
	rngTap  = 273
	rngFeed = rngLen - rngTap

	// Memo bounds. Snapshots cost 4856 bytes each; the default bound
	// keeps the memo under ~20 MB. The sighting filter is 8 bytes per
	// seed and gets a wider bound.
	defaultMaxSnapshots = 4096
	defaultMaxSeen      = 1 << 16

	// SnapshotBytes is the size of one memoized seed state, exported so
	// the observability layer can gauge memo memory without reaching
	// into the package.
	SnapshotBytes = rngLen * 8
)

// seedState is the canonical post-seed generator state: the value the
// 607-word vector holds immediately after seeding, which equals the
// generator's first 607 outputs laid out in feed order. Immutable once
// built; shared by every replaySource for its seed.
type seedState [rngLen]uint64

// buildSnapshot recovers the post-seed state of rand.NewSource(seed) by
// draining its first 607 outputs. Draw k lands in feed position
// (rngFeed - k) mod rngLen.
func buildSnapshot(seed int64) *seedState {
	src := rand.NewSource(seed).(rand.Source64)
	var st seedState
	for k := 1; k <= rngLen; k++ {
		st[(rngFeed-k+rngLen)%rngLen] = src.Uint64()
	}
	return &st
}

// replaySource is a rand.Source64 positioned at the start of a seed's
// stream, backed by a shared snapshot. The first rngLen draws replay the
// snapshot read-only; past that the additive recurrence needs writable
// state and the snapshot is copied once into vec.
type replaySource struct {
	snap      *seedState // shared, immutable
	vec       *seedState // private; nil until a draw passes the replay window
	tap, feed int
	replay    int // snapshot reads remaining before materialization
}

func newReplaySource(snap *seedState) *replaySource {
	return &replaySource{snap: snap, tap: 0, feed: rngFeed, replay: rngLen}
}

func (r *replaySource) Uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += rngLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += rngLen
	}
	if r.replay > 0 {
		// Within the replay window vec[feed] already holds the sum this
		// draw would store, so the state write is an identity and the
		// shared snapshot can be read directly.
		r.replay--
		return r.snap[r.feed]
	}
	if r.vec == nil {
		v := *r.snap
		r.vec = &v
	}
	x := r.vec[r.feed] + r.vec[r.tap]
	r.vec[r.feed] = x
	return x
}

func (r *replaySource) Int63() int64 {
	return int64(r.Uint64() &^ (1 << 63))
}

// Seed repositions the source at the start of the given seed's stream,
// going back through the memo like New.
func (r *replaySource) Seed(seed int64) {
	*r = *newReplaySource(snapshotFor(seed))
}

// seedMemo is the process-wide snapshot store. Both maps are FIFO-bounded.
type seedMemo struct {
	mu    sync.Mutex
	seen  map[int64]struct{}
	seenQ memoFifo
	snaps map[int64]*seedState
	snapQ memoFifo

	maxSeen, maxSnaps int

	hits, misses, stores, evictions atomic.Int64
}

// memoFifo is a slice-backed queue with amortised O(1) pops.
type memoFifo struct {
	items []int64
	head  int
}

func (q *memoFifo) push(v int64) { q.items = append(q.items, v) }

func (q *memoFifo) pop() (int64, bool) {
	if q.head >= len(q.items) {
		return 0, false
	}
	v := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

var memo = &seedMemo{
	seen:     map[int64]struct{}{},
	snaps:    map[int64]*seedState{},
	maxSeen:  defaultMaxSeen,
	maxSnaps: defaultMaxSnapshots,
}

// sourceFor returns a rand.Source positioned at the start of seed's
// stream: a snapshot replayer on a memo hit, a plain math/rand source on
// a first sighting. Second sightings build and store the snapshot.
func sourceFor(seed int64) rand.Source {
	memo.mu.Lock()
	if st, ok := memo.snaps[seed]; ok {
		memo.mu.Unlock()
		memo.hits.Add(1)
		return newReplaySource(st)
	}
	memo.misses.Add(1)
	if _, again := memo.seen[seed]; !again {
		memo.seen[seed] = struct{}{}
		memo.seenQ.push(seed)
		for len(memo.seen) > memo.maxSeen {
			old, ok := memo.seenQ.pop()
			if !ok {
				break
			}
			delete(memo.seen, old)
		}
		memo.mu.Unlock()
		return rand.NewSource(seed)
	}
	memo.mu.Unlock()

	// Second sighting: snapshot outside the lock (a racing builder for
	// the same seed produces an identical snapshot; last store wins).
	st := buildSnapshot(seed)
	memo.mu.Lock()
	if _, ok := memo.snaps[seed]; !ok {
		memo.snapQ.push(seed)
	}
	memo.snaps[seed] = st
	for len(memo.snaps) > memo.maxSnaps {
		old, ok := memo.snapQ.pop()
		if !ok {
			break
		}
		if _, present := memo.snaps[old]; present {
			delete(memo.snaps, old)
			memo.evictions.Add(1)
		}
	}
	memo.mu.Unlock()
	memo.stores.Add(1)
	return newReplaySource(st)
}

// snapshotFor returns the snapshot for seed, building (and memoizing) it
// if absent. Used by replaySource.Seed, which has already paid for a
// snapshot once and so skips the sighting filter.
func snapshotFor(seed int64) *seedState {
	memo.mu.Lock()
	if st, ok := memo.snaps[seed]; ok {
		memo.mu.Unlock()
		memo.hits.Add(1)
		return st
	}
	memo.mu.Unlock()
	memo.misses.Add(1)
	st := buildSnapshot(seed)
	memo.mu.Lock()
	if _, ok := memo.snaps[seed]; !ok {
		memo.snapQ.push(seed)
	}
	memo.snaps[seed] = st
	for len(memo.snaps) > memo.maxSnaps {
		old, ok := memo.snapQ.pop()
		if !ok {
			break
		}
		if _, present := memo.snaps[old]; present {
			delete(memo.snaps, old)
			memo.evictions.Add(1)
		}
	}
	memo.mu.Unlock()
	memo.stores.Add(1)
	return st
}

// MemoStats reports cumulative seed-memo traffic: hits (seedings served
// from a snapshot), misses, snapshots stored, and snapshots evicted.
func MemoStats() (hits, misses, stores, evictions int64) {
	return memo.hits.Load(), memo.misses.Load(), memo.stores.Load(), memo.evictions.Load()
}

// MemoBytes reports the memo's current snapshot memory.
func MemoBytes() int64 {
	memo.mu.Lock()
	n := len(memo.snaps)
	memo.mu.Unlock()
	return int64(n) * SnapshotBytes
}
