package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("adnet")
	c2 := root.Split("secamp")
	if c1.Seed() == c2.Seed() {
		t.Fatalf("children share seed %d", c1.Seed())
	}
	// Splitting is order-independent: a fresh root yields identical children.
	root2 := New(7)
	c2b := root2.Split("secamp")
	c1b := root2.Split("adnet")
	if c1.Seed() != c1b.Seed() || c2.Seed() != c2b.Seed() {
		t.Fatal("split seeds depend on call order")
	}
}

func TestSplitDiffersFromParent(t *testing.T) {
	root := New(99)
	child := root.Split("x")
	if child.Seed() == root.Seed() {
		t.Fatal("child seed equals parent seed")
	}
}

func TestIntRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if got := s.IntRange(3, 3); got != 3 {
		t.Fatalf("IntRange(3,3) = %d", got)
	}
}

func TestIntRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi < lo")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestBoolProbability(t *testing.T) {
	s := New(2)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("Bool(0.25) frequency = %.3f", frac)
	}
}

func TestWeighted(t *testing.T) {
	s := New(3)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, len(weights))
	for i := 0; i < 40000; i++ {
		counts[s.Weighted(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight index chosen: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestWeightedPanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for all-zero weights")
		}
	}()
	New(1).Weighted([]float64{0, 0})
}

func TestPick(t *testing.T) {
	s := New(4)
	items := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(s, items)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick covered %d of 3 items", len(seen))
	}
}

func TestTokenProperties(t *testing.T) {
	s := New(5)
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		tok := s.Token(n)
		if len(tok) != n {
			return false
		}
		for i := 0; i < len(tok); i++ {
			if tok[i] < 'a' || tok[i] > 'z' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlnumTokenStartsWithLetter(t *testing.T) {
	s := New(6)
	f := func(nRaw uint8) bool {
		n := int(nRaw%30) + 1
		tok := s.AlnumToken(n)
		if len(tok) != n {
			return false
		}
		c := tok[0]
		return c >= 'a' && c <= 'z'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.AlnumToken(0); got != "" {
		t.Fatalf("AlnumToken(0) = %q", got)
	}
}

func TestHexToken(t *testing.T) {
	s := New(7)
	tok := s.HexToken(32)
	if len(tok) != 32 {
		t.Fatalf("len = %d", len(tok))
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("non-hex byte %q", c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(8)
	z := s.Zipf(1.2, 1000)
	counts := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		counts[z.Uint64()]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[10]=%d", counts[0], counts[10])
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(10)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	mean := sum / float64(n)
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("Exp(5) mean = %.2f", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(12)
	vals := []int{1, 2, 3, 4, 5}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("elements changed: %v", vals)
	}
}
