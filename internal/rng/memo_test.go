package rng

import (
	"math/rand"
	"strconv"
	"testing"
)

// drainRef draws n values from a plain (memo-free) math/rand source.
func drainRef(seed int64, n int) []uint64 {
	src := rand.NewSource(seed).(rand.Source64)
	out := make([]uint64, n)
	for i := range out {
		out[i] = src.Uint64()
	}
	return out
}

// TestReplaySourceBitIdentical is the memo's core property: a
// replaySource must reproduce rand.NewSource's stream exactly — through
// the replay window (first 607 draws), across the materialization
// boundary, and deep into the private-state recurrence.
func TestReplaySourceBitIdentical(t *testing.T) {
	const draws = 3*rngLen + 17 // several windows past materialization
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40, -987654321, 7777777} {
		want := drainRef(seed, draws)
		rs := newReplaySource(buildSnapshot(seed))
		for i, w := range want {
			if got := rs.Uint64(); got != w {
				t.Fatalf("seed %d draw %d: got %#x want %#x", seed, i, got, w)
			}
		}
	}
}

func TestReplaySourceInt63Matches(t *testing.T) {
	seed := int64(12345)
	ref := rand.NewSource(seed)
	rs := newReplaySource(buildSnapshot(seed))
	for i := 0; i < 2*rngLen; i++ {
		if got, want := rs.Int63(), ref.Int63(); got != want {
			t.Fatalf("draw %d: got %d want %d", i, got, want)
		}
	}
}

// TestReplaySourcesShareSnapshot checks that two replayers on one
// snapshot do not perturb each other: the shared window is read-only and
// materialization is private.
func TestReplaySourcesShareSnapshot(t *testing.T) {
	seed := int64(555)
	snap := buildSnapshot(seed)
	a, b := newReplaySource(snap), newReplaySource(snap)
	want := drainRef(seed, 2*rngLen)
	// Interleave and run a past its window while b lags inside its own.
	for i := 0; i < 2*rngLen; i++ {
		if got := a.Uint64(); got != want[i] {
			t.Fatalf("a draw %d diverged", i)
		}
		if i%3 == 0 {
			if got := b.Uint64(); got != want[i/3] {
				t.Fatalf("b draw %d diverged", i/3)
			}
		}
	}
}

// TestNewThroughMemoBitIdentical exercises the full New path: first
// sighting (plain source), second (snapshot build), third (memo hit)
// must all produce the reference stream.
func TestNewThroughMemoBitIdentical(t *testing.T) {
	seed := int64(424242424242)
	want := drainRef(seed, rngLen+50)
	for round := 0; round < 3; round++ {
		s := New(seed)
		for i, w := range want {
			if got := s.Int63(); got != int64(w&^(1<<63)) {
				t.Fatalf("round %d draw %d diverged", round, i)
			}
		}
	}
}

// TestMemoSplitStreamsMatch drives the high-level Source API through the
// memo: repeated Splits of the same name must yield identical streams,
// and rand.Rand-derived values (Float64, Intn, Perm) must match a
// memo-free reference generator.
func TestMemoSplitStreamsMatch(t *testing.T) {
	root := New(987)
	a := root.Split("campaign/x")
	b := New(987).Split("campaign/x")
	ref := rand.New(rand.NewSource(a.Seed()))
	for i := 0; i < 100; i++ {
		av, bv, rv := a.Float64(), b.Float64(), ref.Float64()
		if av != bv || av != rv {
			t.Fatalf("draw %d: %v %v %v", i, av, bv, rv)
		}
	}
	p1 := a.Perm(17)
	p2 := b.Perm(17)
	rp := ref.Perm(17)
	for i := range p1 {
		if p1[i] != p2[i] || p1[i] != rp[i] {
			t.Fatalf("perm diverged at %d", i)
		}
	}
}

func TestMemoStatsMove(t *testing.T) {
	h0, _, _, _ := MemoStats()
	seed := int64(31337133713)
	New(seed) // first sighting
	New(seed) // builds snapshot
	New(seed) // hit
	h1, _, _, _ := MemoStats()
	if h1 <= h0 {
		t.Fatalf("expected memo hits to advance: %d -> %d", h0, h1)
	}
	if MemoBytes() <= 0 {
		t.Fatal("expected non-zero memo bytes after a store")
	}
}

func TestMemoEvictionBounds(t *testing.T) {
	m := &seedMemo{
		seen:     map[int64]struct{}{},
		snaps:    map[int64]*seedState{},
		maxSeen:  8,
		maxSnaps: 4,
	}
	old := memo
	memo = m
	defer func() { memo = old }()

	for seed := int64(0); seed < 16; seed++ {
		sourceFor(seed)
		sourceFor(seed) // second sighting stores a snapshot
	}
	if len(m.snaps) > m.maxSnaps {
		t.Fatalf("snapshot map over bound: %d > %d", len(m.snaps), m.maxSnaps)
	}
	if len(m.seen) > m.maxSeen {
		t.Fatalf("seen map over bound: %d > %d", len(m.seen), m.maxSeen)
	}
	if m.evictions.Load() == 0 {
		t.Fatal("expected evictions")
	}
	// Streams stay correct for evicted and resident seeds alike.
	for seed := int64(0); seed < 16; seed++ {
		want := drainRef(seed, 10)
		src := sourceFor(seed).(rand.Source64)
		for i, w := range want {
			if got := src.Uint64(); got != w {
				t.Fatalf("seed %d draw %d diverged after eviction", seed, i)
			}
		}
	}
}

func TestReplaySourceSeedRepositions(t *testing.T) {
	rs := newReplaySource(buildSnapshot(1))
	rs.Uint64()
	rs.Seed(2)
	want := drainRef(2, 20)
	for i, w := range want {
		if got := rs.Uint64(); got != w {
			t.Fatalf("draw %d after Seed: got %#x want %#x", i, got, w)
		}
	}
}

func BenchmarkRngSplit_Cold(b *testing.B) {
	// Unique names defeat the memo: every split pays the full math/rand
	// seeding scramble, the status-quo cost.
	root := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root.Split("cold/" + strconv.Itoa(i))
	}
}

func BenchmarkRngSplit_Memo(b *testing.B) {
	// One repeated name: after the warmup sightings every split is a
	// memo hit served from the shared snapshot.
	root := New(1)
	root.Split("gsb/domain")
	root.Split("gsb/domain")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root.Split("gsb/domain")
	}
}
