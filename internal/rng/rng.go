// Package rng provides deterministic, splittable random number generation
// for the SEACMA simulator.
//
// Every stochastic component of the synthetic web (ad networks, SE
// campaigns, publisher layouts, GSB lag draws, ...) derives its randomness
// from a single experiment seed through named sub-streams, so that the same
// seed always produces the same world regardless of the order in which
// components initialise or how many goroutines consume randomness.
package rng

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
)

// Source is a deterministic random stream. It wraps math/rand with a
// mutex so a single stream may be shared across goroutines, and supports
// splitting into independently-seeded named child streams.
type Source struct {
	mu   sync.Mutex
	r    *rand.Rand
	seed int64
}

// New returns a Source seeded with the given seed. Seeding goes through
// the process-wide seed memo (see memo.go): repeated seeds are served
// from a cached generator snapshot instead of re-running math/rand's
// 607-round seeding scramble, with a bit-identical stream either way.
func New(seed int64) *Source {
	return &Source{r: rand.New(sourceFor(seed)), seed: seed}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split derives an independent child stream identified by name. The child
// seed is a function of only (parent seed, name), so the derivation is
// stable across runs and call orders.
func (s *Source) Split(name string) *Source {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s.seed))
	h.Write(buf[:])
	h.Write([]byte(name))
	return New(int64(h.Sum64()))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Int63()
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Intn(n)
}

// IntRange returns a pseudo-random int in [lo, hi]. It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a pseudo-random float64 in [0.0, 1.0).
func (s *Source) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1.
func (s *Source) NormFloat64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.NormFloat64()
}

// LogNormal returns a sample from a log-normal distribution with the given
// parameters of the underlying normal (mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Exp returns an exponentially distributed sample with the given mean.
func (s *Source) Exp(mean float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.ExpFloat64() * mean
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (s *Source) Perm(n int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Perm(n)
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.Shuffle(n, swap)
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice.
func Pick[T any](s *Source, items []T) T {
	if len(items) == 0 {
		panic("rng: Pick from empty slice")
	}
	return items[s.Intn(len(items))]
}

// Weighted selects an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero.
// It panics if all weights are zero or the slice is empty.
func (s *Source) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Weighted with no positive weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("rng: unreachable")
}

// Zipf returns a sampler of values in [0, n) following a Zipf distribution
// with exponent sExp >= 1. Smaller indices are more likely, which models
// popularity skew (publisher traffic, ad-network market share).
func (s *Source) Zipf(sExp float64, n uint64) *Zipf {
	s.mu.Lock()
	z := rand.NewZipf(s.r, sExp, 1, n-1)
	s.mu.Unlock()
	return &Zipf{src: s, z: z}
}

// Zipf is a Zipf-distributed sampler bound to a Source.
type Zipf struct {
	src *Source
	z   *rand.Zipf
}

// Uint64 draws the next Zipf sample.
func (z *Zipf) Uint64() uint64 {
	z.src.mu.Lock()
	defer z.src.mu.Unlock()
	return z.z.Uint64()
}

// Letters used by random token generation; lowercase-only because the
// simulator mints domain labels from these tokens.
const letters = "abcdefghijklmnopqrstuvwxyz"
const alnum = "abcdefghijklmnopqrstuvwxyz0123456789"

// Token returns a random lowercase-letter string of length n.
func (s *Source) Token(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[s.Intn(len(letters))]
	}
	return string(b)
}

// AlnumToken returns a random lowercase alphanumeric string of length n
// whose first character is always a letter (valid as a DNS label or
// identifier).
func (s *Source) AlnumToken(n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	b[0] = letters[s.Intn(len(letters))]
	for i := 1; i < n; i++ {
		b[i] = alnum[s.Intn(len(alnum))]
	}
	return string(b)
}

// HexToken returns a random hex string of length n.
func (s *Source) HexToken(n int) string {
	const hexdigits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hexdigits[s.Intn(len(hexdigits))]
	}
	return string(b)
}
