package urlx

import (
	"testing"
	"testing/quick"
)

// Property: resolving any relative path against a parsed base yields a
// URL that re-parses to itself (round-trip stability), keeps the base
// host for non-absolute references, and always has a rooted path.
func TestResolveProperties(t *testing.T) {
	bases := []URL{
		MustParse("http://pub.com/dir/page"),
		MustParse("https://a.b.example.co.uk/x/y/z?q=1"),
		MustParse("http://host.club/"),
	}
	segs := []string{"a", "b9", "go.js", "serve", "x-y"}
	f := func(bi, s1, s2 uint8, absolute, withQuery bool) bool {
		base := bases[int(bi)%len(bases)]
		ref := segs[int(s1)%len(segs)] + "/" + segs[int(s2)%len(segs)]
		if absolute {
			ref = "/" + ref
		}
		if withQuery {
			ref += "?k=v"
		}
		got, err := base.Resolve(ref)
		if err != nil {
			return false
		}
		if got.Host != base.Host || got.Scheme != base.Scheme {
			return false
		}
		if len(got.Path) == 0 || got.Path[0] != '/' {
			return false
		}
		back, err := Parse(got.String())
		return err == nil && back == got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: String() of a parsed URL re-parses to an identical value.
func TestParseStringRoundTripProperty(t *testing.T) {
	hosts := []string{"a.com", "sub.b.co.uk", "x9.club"}
	f := func(hi uint8, p1, p2 uint8, q bool) bool {
		raw := "http://" + hosts[int(hi)%len(hosts)] + "/" +
			string(rune('a'+p1%26)) + "/" + string(rune('a'+p2%26))
		if q {
			raw += "?z=1&y=2"
		}
		u, err := Parse(raw)
		if err != nil {
			return false
		}
		u2, err := Parse(u.String())
		return err == nil && u == u2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
