package urlx

import "strings"

// The embedded public-suffix rule set. This is a curated subset of
// Mozilla's Public Suffix List sufficient for every TLD the simulator
// mints plus the multi-label and wildcard rules exercised by tests. The
// matching semantics follow publicsuffix.org/list: the longest matching
// rule wins, exception rules ("!") beat wildcard rules ("*").
var pslRules = []string{
	// Generic TLDs used by the synthetic web.
	"com", "net", "org", "info", "biz", "club", "online", "site", "xyz",
	"top", "live", "icu", "pro", "win", "bid", "stream", "download",
	"loan", "men", "work", "date", "racing", "party", "trade", "review",
	"accountant", "faith", "cricket", "science", "gdn", "mom", "lol",
	"io", "co", "me", "tv", "cc", "ws", "to", "li", "ly", "st", "app",
	"dev", "page", "cloud", "fun", "space", "website", "tech", "store",
	"press", "host", "pw", "link", "email",
	// Country TLDs with second-level registration structure.
	"uk", "co.uk", "org.uk", "gov.uk", "ac.uk", "net.uk",
	"jp", "co.jp", "ne.jp", "or.jp", "ac.jp",
	"au", "com.au", "net.au", "org.au", "edu.au",
	"br", "com.br", "net.br", "org.br",
	"in", "co.in", "net.in", "org.in", "firm.in",
	"ru", "com.ru", "net.ru", "org.ru",
	"cn", "com.cn", "net.cn", "org.cn",
	"nz", "co.nz", "net.nz", "org.nz",
	"za", "co.za", "net.za", "org.za",
	"es", "com.es", "org.es",
	"fr", "de", "it", "nl", "pl", "se", "no", "fi", "gr", "pt", "tr",
	"mx", "com.mx", "ar", "com.ar", "cl", "pe", "ve", "com.ve",
	"us", "ca", "eu",
	// Wildcard rules (every label directly under these is a suffix).
	"*.ck", "!www.ck",
	"*.bd",
	// Private-domain style suffixes: dynamic-DNS providers the paper's
	// Table 2 category "Dynamic DNS Host" relies on.
	"duckdns.org", "ddns.net", "dyndns.org", "no-ip.org", "hopto.org",
	"webhostapp.com", "000webhostapp.com", "blogspot.com", "github.io",
	"herokuapp.com", "netlify.app", "web.app",
}

type pslNode struct {
	children  map[string]*pslNode
	isRule    bool
	wildcard  bool // rule "*.<this>"
	exception bool // rule "!<child>.<this>" lives on the child with exception=true
}

var pslRoot = buildPSL(pslRules)

func buildPSL(rules []string) *pslNode {
	root := &pslNode{children: map[string]*pslNode{}}
	for _, rule := range rules {
		exception := strings.HasPrefix(rule, "!")
		rule = strings.TrimPrefix(rule, "!")
		labels := strings.Split(rule, ".")
		node := root
		// Insert labels right-to-left (TLD first).
		for i := len(labels) - 1; i >= 0; i-- {
			l := labels[i]
			if l == "*" {
				node.wildcard = true
				continue
			}
			child, ok := node.children[l]
			if !ok {
				child = &pslNode{children: map[string]*pslNode{}}
				node.children[l] = child
			}
			node = child
		}
		if exception {
			node.exception = true
		} else {
			node.isRule = true
		}
	}
	return root
}

// PublicSuffix returns the public suffix of host according to the embedded
// rule set. Hosts that match no rule use the default rule "*": the last
// label is the suffix. IP-literal hosts return themselves.
func PublicSuffix(host string) string {
	host = strings.Trim(strings.ToLower(host), ".")
	if host == "" || isIPLiteral(host) {
		return host
	}
	labels := strings.Split(host, ".")
	// Walk right-to-left collecting the longest match.
	node := pslRoot
	matched := 0 // number of labels in the matched suffix
	for i := len(labels) - 1; i >= 0; i-- {
		l := labels[i]
		child, ok := node.children[l]
		if ok {
			if child.exception {
				// Exception rule: suffix is one label shorter.
				matched = len(labels) - 1 - i
				break
			}
			if child.isRule {
				matched = len(labels) - i
			}
			node = child
			continue
		}
		if node.wildcard {
			matched = len(labels) - i
		}
		break
	}
	if matched == 0 {
		matched = 1 // default rule "*"
	}
	if matched >= len(labels) {
		matched = len(labels)
	}
	return strings.Join(labels[len(labels)-matched:], ".")
}

// E2LD returns the effective second-level domain of host: the public
// suffix plus one label. If the host IS a public suffix (or an IP
// literal), the host itself is returned.
func E2LD(host string) string {
	host = strings.Trim(strings.ToLower(host), ".")
	if host == "" || isIPLiteral(host) {
		return host
	}
	suffix := PublicSuffix(host)
	if host == suffix {
		return host
	}
	rest := strings.TrimSuffix(host, "."+suffix)
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		rest = rest[i+1:]
	}
	return rest + "." + suffix
}

func isIPLiteral(host string) bool {
	if host == "" {
		return false
	}
	for i := 0; i < len(host); i++ {
		c := host[i]
		if (c < '0' || c > '9') && c != '.' && c != ':' {
			return false
		}
	}
	return true
}
