package urlx

import (
	"fmt"
	"strings"
)

// Pattern is an invariant URL/code feature of the kind the paper derives
// per ad network (Section 3.1): "a specific URL path name, URL structure,
// or JS variable names that are reused across different versions of JS
// code snippets belonging to the same ad network".
//
// A pattern matches either a URL (host/path/query structure) or a source
// body (substring token), depending on Kind.
type Pattern struct {
	// Name identifies the pattern, conventionally "<network>/<n>".
	Name string
	// Kind selects what the pattern inspects.
	Kind PatternKind
	// HostSuffix, when non-empty, requires the URL host to equal the
	// suffix or end with "." + suffix.
	HostSuffix string
	// PathPrefix, when non-empty, requires the URL path to begin with it.
	PathPrefix string
	// PathGlob, when non-empty, matches the path against a glob where '*'
	// matches any run of non-'/' characters and "**" matches anything.
	PathGlob string
	// QueryKey, when non-empty, requires the raw query to contain the key
	// (as "key=" at a parameter boundary).
	QueryKey string
	// BodyToken, for KindSource, is a substring that must appear in the
	// page or script source (a JS variable name or structural artefact).
	BodyToken string
}

// PatternKind discriminates URL-matching from source-matching patterns.
type PatternKind int

const (
	// KindURL patterns inspect URL structure.
	KindURL PatternKind = iota
	// KindSource patterns inspect page/script bodies.
	KindSource
)

func (k PatternKind) String() string {
	switch k {
	case KindURL:
		return "url"
	case KindSource:
		return "source"
	default:
		return fmt.Sprintf("PatternKind(%d)", int(k))
	}
}

// MatchURL reports whether the pattern matches the URL. Source-kind
// patterns never match URLs.
func (p Pattern) MatchURL(u URL) bool {
	if p.Kind != KindURL {
		return false
	}
	if p.HostSuffix != "" && !hostHasSuffix(u.Host, p.HostSuffix) {
		return false
	}
	if p.PathPrefix != "" && !strings.HasPrefix(u.Path, p.PathPrefix) {
		return false
	}
	if p.PathGlob != "" && !GlobMatch(p.PathGlob, u.Path) {
		return false
	}
	if p.QueryKey != "" && !queryHasKey(u.Query, p.QueryKey) {
		return false
	}
	// An all-empty URL pattern matches nothing rather than everything.
	return p.HostSuffix != "" || p.PathPrefix != "" || p.PathGlob != "" || p.QueryKey != ""
}

// MatchSource reports whether the pattern matches a source body.
func (p Pattern) MatchSource(body string) bool {
	return p.Kind == KindSource && p.BodyToken != "" && strings.Contains(body, p.BodyToken)
}

func hostHasSuffix(host, suffix string) bool {
	return host == suffix || strings.HasSuffix(host, "."+suffix)
}

func queryHasKey(query, key string) bool {
	for query != "" {
		var part string
		part, query, _ = strings.Cut(query, "&")
		k, _, _ := strings.Cut(part, "=")
		if k == key {
			return true
		}
	}
	return false
}

// GlobMatch matches path against pattern where '*' matches any run of
// non-'/' characters and "**" matches any run of any characters.
func GlobMatch(pattern, path string) bool {
	return globMatch(pattern, path)
}

func globMatch(pat, s string) bool {
	for len(pat) > 0 {
		switch {
		case strings.HasPrefix(pat, "**"):
			rest := pat[2:]
			for i := len(s); i >= 0; i-- {
				if globMatch(rest, s[i:]) {
					return true
				}
			}
			return false
		case pat[0] == '*':
			rest := pat[1:]
			limit := strings.IndexByte(s, '/')
			if limit < 0 {
				limit = len(s)
			}
			for i := limit; i >= 0; i-- {
				if globMatch(rest, s[i:]) {
					return true
				}
			}
			return false
		default:
			if len(s) == 0 || s[0] != pat[0] {
				return false
			}
			pat, s = pat[1:], s[1:]
		}
	}
	return len(s) == 0
}

// PatternSet holds named patterns grouped by owner (ad network name) and
// answers "which owner does this URL / source belong to?".
type PatternSet struct {
	byOwner map[string][]Pattern
	order   []string
}

// NewPatternSet returns an empty set.
func NewPatternSet() *PatternSet {
	return &PatternSet{byOwner: map[string][]Pattern{}}
}

// Add registers patterns under an owner. Owners keep insertion order for
// deterministic attribution.
func (ps *PatternSet) Add(owner string, patterns ...Pattern) {
	if _, ok := ps.byOwner[owner]; !ok {
		ps.order = append(ps.order, owner)
	}
	ps.byOwner[owner] = append(ps.byOwner[owner], patterns...)
}

// Owners returns the owner names in insertion order.
func (ps *PatternSet) Owners() []string {
	out := make([]string, len(ps.order))
	copy(out, ps.order)
	return out
}

// Patterns returns the patterns registered for owner.
func (ps *PatternSet) Patterns(owner string) []Pattern {
	return ps.byOwner[owner]
}

// MatchURL returns the first owner (in insertion order) with a pattern
// matching the URL, or "" if none match.
func (ps *PatternSet) MatchURL(u URL) string {
	for _, owner := range ps.order {
		for _, p := range ps.byOwner[owner] {
			if p.MatchURL(u) {
				return owner
			}
		}
	}
	return ""
}

// MatchSource returns the first owner with a source pattern matching body,
// or "".
func (ps *PatternSet) MatchSource(body string) string {
	for _, owner := range ps.order {
		for _, p := range ps.byOwner[owner] {
			if p.MatchSource(body) {
				return owner
			}
		}
	}
	return ""
}
