package urlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	u, err := Parse("http://Example.COM/path/a?x=1&y=2")
	if err != nil {
		t.Fatal(err)
	}
	if u.Scheme != "http" || u.Host != "example.com" || u.Path != "/path/a" || u.Query != "x=1&y=2" {
		t.Fatalf("parsed %+v", u)
	}
}

func TestParseDefaultsPath(t *testing.T) {
	u, err := Parse("https://foo.net")
	if err != nil {
		t.Fatal(err)
	}
	if u.Path != "/" {
		t.Fatalf("path = %q", u.Path)
	}
}

func TestParseRejects(t *testing.T) {
	for _, raw := range []string{"ftp://x.com/", "/relative", "http://", "not a url at all://"} {
		if _, err := Parse(raw); err == nil {
			t.Errorf("Parse(%q) succeeded", raw)
		}
	}
}

func TestParsePort(t *testing.T) {
	u, err := Parse("http://host.com:8080/x")
	if err != nil {
		t.Fatal(err)
	}
	if u.Port != "8080" {
		t.Fatalf("port = %q", u.Port)
	}
	if got := u.String(); got != "http://host.com:8080/x" {
		t.Fatalf("String = %q", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, raw := range []string{
		"http://a.com/",
		"https://sub.b.co.uk/p/q?k=v",
		"http://c.net/x.js?cb=123&ref=z",
	} {
		u, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		u2, err := Parse(u.String())
		if err != nil {
			t.Fatal(err)
		}
		if u != u2 {
			t.Fatalf("round trip changed %v -> %v", u, u2)
		}
	}
}

func TestResolve(t *testing.T) {
	base := MustParse("http://pub.com/dir/page")
	cases := []struct{ ref, want string }{
		{"http://other.com/x", "http://other.com/x"},
		{"/abs", "http://pub.com/abs"},
		{"rel", "http://pub.com/dir/rel"},
		{"rel?a=1", "http://pub.com/dir/rel?a=1"},
		{"", "http://pub.com/dir/page"},
		{"/abs?q=2", "http://pub.com/abs?q=2"},
	}
	for _, c := range cases {
		got, err := base.Resolve(c.ref)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", c.ref, err)
		}
		if got.String() != c.want {
			t.Errorf("Resolve(%q) = %q, want %q", c.ref, got.String(), c.want)
		}
	}
}

func TestWithPathAndQuery(t *testing.T) {
	u := MustParse("http://x.com/a?q=1")
	if got := u.WithPath("b/c").String(); got != "http://x.com/b/c" {
		t.Fatalf("WithPath = %q", got)
	}
	if got := u.WithQuery("z=9").String(); got != "http://x.com/a?z=9" {
		t.Fatalf("WithQuery = %q", got)
	}
}

func TestSameHostSameE2LD(t *testing.T) {
	a := MustParse("http://ads.foo.com/x")
	b := MustParse("http://cdn.foo.com/y")
	if SameHost(a, b) {
		t.Fatal("different hosts reported same")
	}
	if !SameE2LD(a, b) {
		t.Fatal("same e2LD not detected")
	}
}

func TestPublicSuffix(t *testing.T) {
	cases := []struct{ host, want string }{
		{"example.com", "com"},
		{"a.b.example.co.uk", "co.uk"},
		{"foo.blogspot.com", "blogspot.com"},
		{"x.duckdns.org", "duckdns.org"},
		{"weird.unknowntld", "unknowntld"},
		{"b.anything.ck", "anything.ck"}, // wildcard *.ck
		{"www.ck", "ck"},                 // exception !www.ck
		{"com", "com"},
		{"192.168.1.1", "192.168.1.1"},
	}
	for _, c := range cases {
		if got := PublicSuffix(c.host); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestE2LD(t *testing.T) {
	cases := []struct{ host, want string }{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.c.example.co.uk", "example.co.uk"},
		{"myblog.blogspot.com", "myblog.blogspot.com"},
		{"host.duckdns.org", "host.duckdns.org"},
		{"com", "com"},
		{"single", "single"},
		{"x.single", "x.single"},
		{"deep.sub.anything.ck", "sub.anything.ck"},
		{"www.ck", "www.ck"},
		{"EXAMPLE.COM.", "example.com"},
		{"10.0.0.1", "10.0.0.1"},
	}
	for _, c := range cases {
		if got := E2LD(c.host); got != c.want {
			t.Errorf("E2LD(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

// Property: E2LD is idempotent and always a suffix of the input host.
func TestE2LDProperties(t *testing.T) {
	labels := []string{"www", "ads", "x9", "foo", "bar", "cdn", "a"}
	tlds := []string{"com", "net", "co.uk", "club", "info", "xyz", "unknowntld"}
	f := func(l1, l2, ti uint8) bool {
		host := labels[int(l1)%len(labels)] + "." + labels[int(l2)%len(labels)] + "." + tlds[int(ti)%len(tlds)]
		e := E2LD(host)
		if E2LD(e) != e {
			return false
		}
		return host == e || strings.HasSuffix(host, "."+e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"/watch/*", "/watch/abc", true},
		{"/watch/*", "/watch/a/b", false},
		{"/watch/**", "/watch/a/b", true},
		{"/*/go.js", "/v3/go.js", true},
		{"/*/go.js", "/v3/x/go.js", false},
		{"/**/go.js", "/v3/x/go.js", true},
		{"/exact", "/exact", true},
		{"/exact", "/exactly", false},
		{"**", "/anything/at/all", true},
		{"/a*b", "/ab", true},
		{"/a*b", "/axxxb", true},
	}
	for _, c := range cases {
		if got := GlobMatch(c.pat, c.s); got != c.want {
			t.Errorf("GlobMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestPatternMatchURL(t *testing.T) {
	p := Pattern{Name: "net/1", Kind: KindURL, PathPrefix: "/jsx/", QueryKey: "zid"}
	if !p.MatchURL(MustParse("http://abc.com/jsx/loader.js?zid=77&t=1")) {
		t.Fatal("expected match")
	}
	if p.MatchURL(MustParse("http://abc.com/jsx/loader.js?azid=77")) {
		t.Fatal("matched on wrong query key")
	}
	if p.MatchURL(MustParse("http://abc.com/other/loader.js?zid=77")) {
		t.Fatal("matched on wrong path")
	}
}

func TestPatternHostSuffix(t *testing.T) {
	p := Pattern{Kind: KindURL, HostSuffix: "popcash.net"}
	if !p.MatchURL(MustParse("http://cdn.popcash.net/pop.js")) {
		t.Fatal("subdomain should match")
	}
	if !p.MatchURL(MustParse("http://popcash.net/pop.js")) {
		t.Fatal("exact host should match")
	}
	if p.MatchURL(MustParse("http://notpopcash.net/pop.js")) {
		t.Fatal("suffix must respect label boundary")
	}
}

func TestEmptyURLPatternMatchesNothing(t *testing.T) {
	p := Pattern{Kind: KindURL}
	if p.MatchURL(MustParse("http://any.com/")) {
		t.Fatal("empty pattern matched")
	}
}

func TestPatternMatchSource(t *testing.T) {
	p := Pattern{Kind: KindSource, BodyToken: "var zoneNative ="}
	if !p.MatchSource("xx var zoneNative = 9; yy") {
		t.Fatal("expected source match")
	}
	if p.MatchSource("nothing here") {
		t.Fatal("unexpected source match")
	}
	if p.MatchURL(MustParse("http://a.com/")) {
		t.Fatal("source pattern matched URL")
	}
}

func TestPatternSetAttribution(t *testing.T) {
	ps := NewPatternSet()
	ps.Add("popads", Pattern{Kind: KindURL, PathGlob: "/*/show.js"})
	ps.Add("adsterra", Pattern{Kind: KindSource, BodyToken: "atAsyncContainers"})
	if got := ps.MatchURL(MustParse("http://r4nd0m.club/v2/show.js")); got != "popads" {
		t.Fatalf("MatchURL = %q", got)
	}
	if got := ps.MatchSource("window.atAsyncContainers=[]"); got != "adsterra" {
		t.Fatalf("MatchSource = %q", got)
	}
	if got := ps.MatchURL(MustParse("http://benign.com/index.html")); got != "" {
		t.Fatalf("unattributed URL matched %q", got)
	}
	owners := ps.Owners()
	if len(owners) != 2 || owners[0] != "popads" || owners[1] != "adsterra" {
		t.Fatalf("Owners = %v", owners)
	}
	if n := len(ps.Patterns("popads")); n != 1 {
		t.Fatalf("popads has %d patterns", n)
	}
}
