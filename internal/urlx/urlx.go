// Package urlx provides the URL model used throughout the SEACMA pipeline:
// parsing, canonicalisation, effective second-level domain (e2LD)
// extraction against an embedded public-suffix list, and the invariant
// pattern matching used for ad-network attribution.
//
// The paper extracts the e2LD of every screenshot's page URL using
// Mozilla's Public Suffix List (Section 3.3, footnote 4) and matches
// ad-network "invariant features, such as a specific URL path name, URL
// structure, or JS variable names" (Section 3.1) for attribution
// (Section 3.6).
package urlx

import (
	"fmt"
	"net/url"
	"strings"
)

// URL is a parsed absolute URL. It is immutable by convention: helpers
// return new values.
type URL struct {
	Scheme string // "http" or "https"
	Host   string // lowercase hostname, no port
	Port   string // "" when default
	Path   string // always begins with "/"
	Query  string // raw query without "?"
}

// Parse parses an absolute http(s) URL. It rejects relative references,
// other schemes, and empty hosts.
func Parse(raw string) (URL, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return URL{}, fmt.Errorf("urlx: parse %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return URL{}, fmt.Errorf("urlx: unsupported scheme %q in %q", u.Scheme, raw)
	}
	host := strings.ToLower(u.Hostname())
	if host == "" {
		return URL{}, fmt.Errorf("urlx: empty host in %q", raw)
	}
	path := u.EscapedPath()
	if path == "" {
		path = "/"
	}
	return URL{
		Scheme: u.Scheme,
		Host:   host,
		Port:   u.Port(),
		Path:   path,
		Query:  u.RawQuery,
	}, nil
}

// MustParse is Parse that panics on error; for literals in tests and
// generators.
func MustParse(raw string) URL {
	u, err := Parse(raw)
	if err != nil {
		panic(err)
	}
	return u
}

// String reassembles the URL.
func (u URL) String() string {
	var b strings.Builder
	b.WriteString(u.Scheme)
	b.WriteString("://")
	b.WriteString(u.Host)
	if u.Port != "" {
		b.WriteByte(':')
		b.WriteString(u.Port)
	}
	b.WriteString(u.Path)
	if u.Query != "" {
		b.WriteByte('?')
		b.WriteString(u.Query)
	}
	return b.String()
}

// IsZero reports whether u is the zero URL.
func (u URL) IsZero() bool { return u.Host == "" }

// WithPath returns a copy of u with the given path (and no query).
func (u URL) WithPath(path string) URL {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	u.Path = path
	u.Query = ""
	return u
}

// WithQuery returns a copy of u with the given raw query.
func (u URL) WithQuery(query string) URL {
	u.Query = query
	return u
}

// Resolve resolves a reference against u. Absolute references are parsed
// as-is; references beginning with "/" replace the path; anything else is
// joined to the directory of u's path.
func (u URL) Resolve(ref string) (URL, error) {
	if strings.Contains(ref, "://") {
		return Parse(ref)
	}
	if ref == "" {
		return u, nil
	}
	out := u
	out.Query = ""
	if i := strings.IndexByte(ref, '?'); i >= 0 {
		out.Query = ref[i+1:]
		ref = ref[:i]
	}
	switch {
	case ref == "":
		out.Path = u.Path
	case strings.HasPrefix(ref, "/"):
		out.Path = ref
	default:
		dir := u.Path[:strings.LastIndexByte(u.Path, '/')+1]
		out.Path = dir + ref
	}
	return out, nil
}

// SameHost reports whether two URLs share a hostname.
func SameHost(a, b URL) bool { return a.Host == b.Host }

// SameE2LD reports whether two URLs share an effective second-level
// domain.
func SameE2LD(a, b URL) bool { return E2LD(a.Host) == E2LD(b.Host) }
