package cluster

import (
	"repro/internal/phash"
)

// DynamicIndex is the mutable sibling of MultiIndex: the same
// pigeonhole-partitioned Hamming index over 128-bit perceptual hashes,
// but supporting one-at-a-time insertion so an incremental clustering
// engine (internal/campstore) can absorb new observations without a
// rebuild.
//
// The band layout is identical to MultiIndex (bandsFor bands at the
// given bit radius, tol = ⌊maxBits/bands⌋ flips per band), so a probe
// visits exactly the buckets a freshly built MultiIndex would. The
// difference is lifecycle: Add both probes the existing corpus for the
// new hash's ε-neighbourhood and registers the hash in every band
// bucket, paying one full Hamming verification per *distinct candidate*
// — so the marginal cost of an insert scales with the density around
// the new hash, not with the corpus.
//
// DynamicIndex is deliberately not safe for concurrent use: its only
// caller (the campaign store) already serializes all mutation under one
// lock and needs the counters to stay exact.
type DynamicIndex struct {
	maxBits int
	bands   []bandSpec
	tol     int

	distinct []phash.Hash
	byHash   map[phash.Hash]int32
	buckets  []map[uint64][]int32

	// probe scratch: stamp-based candidate dedup across bands.
	mark  []int64
	stamp int64

	probes, candidates, distCalls int64
}

// NewDynamicIndex builds an empty index for a normalised eps (fraction
// of the 128 hash bits), using the same automatic band selection as
// NewMultiIndex.
func NewDynamicIndex(eps float64) *DynamicIndex {
	maxBits := int(eps * float64(phash.Bits))
	bands := bandsFor(maxBits)
	x := &DynamicIndex{
		maxBits: maxBits,
		tol:     maxBits / bands,
		byHash:  map[phash.Hash]int32{},
		buckets: make([]map[uint64][]int32, bands),
	}
	base, extra := phash.Bits/bands, phash.Bits%bands
	off := uint(0)
	for b := 0; b < bands; b++ {
		w := uint(base)
		if b < extra {
			w++
		}
		x.bands = append(x.bands, bandSpec{Off: off, Width: w})
		off += w
		x.buckets[b] = map[uint64][]int32{}
	}
	return x
}

// MaxBits returns eps expressed in raw hash bits.
func (x *DynamicIndex) MaxBits() int { return x.maxBits }

// Len returns the number of distinct hashes indexed.
func (x *DynamicIndex) Len() int { return len(x.distinct) }

// Hash returns the distinct hash with id d.
func (x *DynamicIndex) Hash(d int32) phash.Hash { return x.distinct[d] }

// Lookup returns the id of h if it is already indexed.
func (x *DynamicIndex) Lookup(h phash.Hash) (int32, bool) {
	d, ok := x.byHash[h]
	return d, ok
}

// probe enumerates the band buckets of h and verifies each distinct
// candidate once, appending the ids within maxBits to out.
func (x *DynamicIndex) probe(h phash.Hash, out []int32) []int32 {
	x.stamp++
	for b, spec := range x.bands {
		v := bandValue(h, spec)
		enumBand(v, spec.Width, x.tol, func(pv uint64) {
			x.probes++
			for _, cd := range x.buckets[b][pv] {
				if x.mark[cd] == x.stamp {
					continue
				}
				x.mark[cd] = x.stamp
				x.candidates++
				x.distCalls++
				if phash.Distance(h, x.distinct[cd]) <= x.maxBits {
					out = append(out, cd)
				}
			}
		})
	}
	return out
}

// Add inserts h and returns its id plus the ids of every previously
// indexed distinct hash within maxBits (in deterministic band/bucket
// discovery order, excluding h itself). If h is already indexed the
// existing id is returned with a nil neighbour slice and isNew=false —
// re-observations of a known hash cost one map lookup and zero distance
// calls.
func (x *DynamicIndex) Add(h phash.Hash) (id int32, neighbours []int32, isNew bool) {
	if d, ok := x.byHash[h]; ok {
		return d, nil, false
	}
	neighbours = x.probe(h, nil)
	id = int32(len(x.distinct))
	x.distinct = append(x.distinct, h)
	x.byHash[h] = id
	x.mark = append(x.mark, 0)
	for b, spec := range x.bands {
		v := bandValue(h, spec)
		x.buckets[b][v] = append(x.buckets[b][v], id)
	}
	return id, neighbours, true
}

// DynamicIndexStats snapshots the index shape and query counters.
type DynamicIndexStats struct {
	Distinct      int
	Bands         int
	Tolerance     int
	Probes        int64 // bucket lookups performed
	Candidates    int64 // distinct candidates examined (pre-verification)
	DistanceCalls int64 // full Hamming verifications
}

// Stats returns the current counters.
func (x *DynamicIndex) Stats() DynamicIndexStats {
	return DynamicIndexStats{
		Distinct:      len(x.distinct),
		Bands:         len(x.bands),
		Tolerance:     x.tol,
		Probes:        x.probes,
		Candidates:    x.candidates,
		DistanceCalls: x.distCalls,
	}
}

// DistanceCalls reports the full Hamming verifications performed so far.
func (x *DynamicIndex) DistanceCalls() int64 { return x.distCalls }
