package cluster

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/phash"
)

// DynamicIndex is the mutable sibling of MultiIndex: the same
// pigeonhole-partitioned Hamming index over 128-bit perceptual hashes,
// but supporting insertion so an incremental clustering engine
// (internal/campstore) can absorb new observations without a rebuild.
//
// The band layout is identical to MultiIndex (bandsFor bands at the
// given bit radius, tol = ⌊maxBits/bands⌋ flips per band), so a probe
// visits exactly the buckets a freshly built MultiIndex would, paying
// one full Hamming verification per *distinct candidate* — the marginal
// cost of an insert scales with the density around the new hash, not
// with the corpus.
//
// # Concurrency
//
// Unlike its pre-sharded ancestor, DynamicIndex is safe for concurrent
// use, and its locking is band-sharded: every band owns an independent
// bucket map behind its own RWMutex, so concurrent probes share each
// shard read-locked and a registration write-locks one shard at a time.
// The remaining shared state is lock-free for readers:
//
//   - the distinct-hash table is a chunked append-only store — chunks
//     are fixed arrays, the chunk directory is swapped atomically, and
//     an id obtained from a bucket (or from byHash) is always safe to
//     dereference because the hash cell is written before the id is
//     published under the band lock (or the map's internal atomics);
//   - byHash is a sync.Map, so the known-hash fast path (Lookup — zero
//     distance calls) takes no lock at all;
//   - the query counters are atomics, with an extra per-shard probe
//     counter feeding cluster_index_shard_probes_total.
//
// Only id assignment (Claim) serializes on a mutex, and it is O(1).
//
// The split lifecycle — Claim (assign id), Register (publish into every
// band bucket), ProbeNeighbours (collect candidates across shards,
// dedup, verify once each) — is what the campaign store's staged ingest
// builds on. The discovery guarantee it relies on: if every caller
// completes Register(h) before calling ProbeNeighbours(h), then for any
// two hashes within maxBits at least one of the two probes finds the
// other, regardless of interleaving. Proof sketch: take any band b both
// hashes fall into within tol (pigeonhole: one exists). The band-b lock
// serializes each hash's insert-then-read; if neither probe saw the
// other, each read preceded the other's insert, giving the cycle
// read_a < insert_b < read_b < insert_a < read_a — impossible.
// The compatibility Add keeps the claim→register→probe order, so
// plain concurrent Adds inherit the guarantee.
type DynamicIndex struct {
	maxBits int
	tol     int
	specs   []bandSpec
	shards  []indexShard

	claimMu sync.Mutex // serializes id assignment + distinct append
	byHash  sync.Map   // phash.Hash -> int32
	hashes  hashTable

	candidates, distCalls atomic.Int64
}

// indexShard is one band's buckets plus its share of the probe counter.
type indexShard struct {
	mu      sync.RWMutex
	buckets map[uint64][]int32
	probes  atomic.Int64
}

// hashChunkBits sizes the chunks of the append-only distinct-hash
// table: 1024 hashes (16 KiB) per chunk.
const hashChunkBits = 10

type hashChunk [1 << hashChunkBits]phash.Hash

// hashTable is the chunked append-only distinct-hash store. Appends are
// serialized by the index's claimMu; reads are lock-free. A reader may
// only dereference ids it obtained from a published source (a band
// bucket or byHash) — publication orders the cell write before the id
// becomes visible.
type hashTable struct {
	chunks atomic.Pointer[[]*hashChunk]
	n      atomic.Int64
}

func (t *hashTable) at(i int32) phash.Hash {
	return (*t.chunks.Load())[i>>hashChunkBits][i&(1<<hashChunkBits-1)]
}

// append stores h and returns its id. Caller must hold claimMu.
func (t *hashTable) append(h phash.Hash) int32 {
	i := t.n.Load()
	ci, off := int(i>>hashChunkBits), i&(1<<hashChunkBits-1)
	chunks := t.chunks.Load()
	if chunks == nil || ci == len(*chunks) {
		var next []*hashChunk
		if chunks != nil {
			next = append(next, *chunks...)
		}
		next = append(next, new(hashChunk))
		t.chunks.Store(&next)
		chunks = &next
	}
	(*chunks)[ci][off] = h
	t.n.Store(i + 1)
	return int32(i)
}

// NewDynamicIndex builds an empty index for a normalised eps (fraction
// of the 128 hash bits), using the same automatic band selection as
// NewMultiIndex.
func NewDynamicIndex(eps float64) *DynamicIndex {
	maxBits := int(eps * float64(phash.Bits))
	bands := bandsFor(maxBits)
	x := &DynamicIndex{
		maxBits: maxBits,
		tol:     maxBits / bands,
		shards:  make([]indexShard, bands),
	}
	base, extra := phash.Bits/bands, phash.Bits%bands
	off := uint(0)
	for b := 0; b < bands; b++ {
		w := uint(base)
		if b < extra {
			w++
		}
		x.specs = append(x.specs, bandSpec{Off: off, Width: w})
		off += w
		x.shards[b].buckets = map[uint64][]int32{}
	}
	return x
}

// MaxBits returns eps expressed in raw hash bits.
func (x *DynamicIndex) MaxBits() int { return x.maxBits }

// Bands returns the number of band shards.
func (x *DynamicIndex) Bands() int { return len(x.shards) }

// Len returns the number of distinct hashes indexed (claimed ids;
// registration may still be in flight for the newest ones).
func (x *DynamicIndex) Len() int { return int(x.hashes.n.Load()) }

// Hash returns the distinct hash with id d. d must come from Lookup,
// Claim, Add or a probe result.
func (x *DynamicIndex) Hash(d int32) phash.Hash { return x.hashes.at(d) }

// Lookup returns the id of h if it is already claimed. Lock-free.
func (x *DynamicIndex) Lookup(h phash.Hash) (int32, bool) {
	if v, ok := x.byHash.Load(h); ok {
		return v.(int32), true
	}
	return 0, false
}

// Claim assigns an id to h if it has none, without touching the band
// buckets. The caller that wins the claim (isNew) must Register the
// hash before probing for it; losers share the winner's id.
func (x *DynamicIndex) Claim(h phash.Hash) (id int32, isNew bool) {
	if v, ok := x.byHash.Load(h); ok {
		return v.(int32), false
	}
	x.claimMu.Lock()
	defer x.claimMu.Unlock()
	if v, ok := x.byHash.Load(h); ok {
		return v.(int32), false
	}
	id = x.hashes.append(h)
	x.byHash.Store(h, id)
	return id, true
}

// Register publishes a claimed hash into every band bucket, one shard
// write-lock at a time. Must be called exactly once per claimed id, by
// the claim winner, before that caller probes for the hash.
func (x *DynamicIndex) Register(id int32, h phash.Hash) {
	for b := range x.shards {
		v := bandValue(h, x.specs[b])
		sh := &x.shards[b]
		sh.mu.Lock()
		sh.buckets[v] = append(sh.buckets[v], id)
		sh.mu.Unlock()
	}
}

// ProbeStats reports what one probe cost.
type ProbeStats struct {
	Probes        int64 // bucket lookups across shards
	Candidates    int64 // distinct candidates examined (self excluded)
	DistanceCalls int64 // full Hamming verifications
}

// probeScratch is pooled per-probe state: per-band candidate slots plus
// the merged id list.
type probeScratch struct {
	perBand [][]int32
	ids     []int32
}

var probePool = sync.Pool{New: func() any { return &probeScratch{} }}

// bandParallelMin gates the parallel band fan-out: below this many
// distinct hashes the per-band work is a handful of map lookups and
// goroutine dispatch would dominate, so the bands are walked serially
// on the calling goroutine.
const bandParallelMin = 4096

// ProbeNeighbours returns the ids of every registered distinct hash
// within maxBits of h, ascending, excluding self (pass self = -1 when h
// is not registered). Candidates are collected per band shard — in
// parallel across shards once the corpus is large enough (or whenever
// tol > 0 makes the per-band enumeration wide) — deduplicated across
// shards, and each verified with one full Hamming distance call.
func (x *DynamicIndex) ProbeNeighbours(h phash.Hash, self int32) ([]int32, ProbeStats) {
	sc := probePool.Get().(*probeScratch)
	if len(sc.perBand) < len(x.shards) {
		sc.perBand = make([][]int32, len(x.shards))
	}

	var st ProbeStats
	parallel := x.tol > 0 || int(x.hashes.n.Load()) >= bandParallelMin
	if parallel && runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		var probes atomic.Int64
		for b := range x.shards {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				n, out := x.collectBand(b, h, sc.perBand[b][:0])
				sc.perBand[b] = out
				probes.Add(n)
			}(b)
		}
		wg.Wait()
		st.Probes = probes.Load()
	} else {
		for b := range x.shards {
			n, out := x.collectBand(b, h, sc.perBand[b][:0])
			sc.perBand[b] = out
			st.Probes += n
		}
	}

	// Dedup across shards: merge, sort, unique, drop self.
	ids := sc.ids[:0]
	for b := range x.shards {
		ids = append(ids, sc.perBand[b]...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := 0
	for i, id := range ids {
		if id == self || (i > 0 && id == ids[i-1]) {
			continue
		}
		ids[w] = id
		w++
	}
	ids = ids[:w]

	// Verify each distinct candidate once. No locks held: candidate
	// cells are immutable once their ids were published.
	var nbrs []int32
	for _, cd := range ids {
		st.Candidates++
		st.DistanceCalls++
		if phash.Distance(h, x.hashes.at(cd)) <= x.maxBits {
			nbrs = append(nbrs, cd)
		}
	}
	sc.ids = ids[:0]
	probePool.Put(sc)

	x.candidates.Add(st.Candidates)
	x.distCalls.Add(st.DistanceCalls)
	return nbrs, st
}

// collectBand gathers the candidate ids of one band shard under its
// read lock, returning the bucket-lookup count (also recorded on the
// shard's probe counter).
func (x *DynamicIndex) collectBand(b int, h phash.Hash, out []int32) (int64, []int32) {
	spec := x.specs[b]
	v := bandValue(h, spec)
	sh := &x.shards[b]
	var lookups int64
	sh.mu.RLock()
	enumBand(v, spec.Width, x.tol, func(pv uint64) {
		lookups++
		out = append(out, sh.buckets[pv]...)
	})
	sh.mu.RUnlock()
	sh.probes.Add(lookups)
	return lookups, out
}

// Add inserts h and returns its id plus the ids of every previously
// registered distinct hash within maxBits (ascending, excluding h
// itself). If h is already claimed the existing id is returned with a
// nil neighbour slice and isNew=false — re-observations of a known hash
// cost a lock-free map lookup and zero distance calls. Concurrent Adds
// are safe; for hashes racing their registrations, at least one of the
// two overlapping Adds reports the other in its neighbour slice.
func (x *DynamicIndex) Add(h phash.Hash) (id int32, neighbours []int32, isNew bool) {
	id, isNew = x.Claim(h)
	if !isNew {
		return id, nil, false
	}
	x.Register(id, h)
	neighbours, _ = x.ProbeNeighbours(h, id)
	return id, neighbours, true
}

// DynamicIndexStats snapshots the index shape and query counters.
type DynamicIndexStats struct {
	Distinct      int
	Bands         int
	Tolerance     int
	Probes        int64   // bucket lookups performed (all shards)
	Candidates    int64   // distinct candidates examined (pre-verification)
	DistanceCalls int64   // full Hamming verifications
	ShardProbes   []int64 // bucket lookups per band shard
}

// Stats returns the current counters.
func (x *DynamicIndex) Stats() DynamicIndexStats {
	st := DynamicIndexStats{
		Distinct:      x.Len(),
		Bands:         len(x.shards),
		Tolerance:     x.tol,
		Candidates:    x.candidates.Load(),
		DistanceCalls: x.distCalls.Load(),
		ShardProbes:   make([]int64, len(x.shards)),
	}
	for b := range x.shards {
		p := x.shards[b].probes.Load()
		st.ShardProbes[b] = p
		st.Probes += p
	}
	return st
}

// DistanceCalls reports the full Hamming verifications performed so far.
func (x *DynamicIndex) DistanceCalls() int64 { return x.distCalls.Load() }
