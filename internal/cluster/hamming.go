package cluster

import (
	"repro/internal/phash"
)

// HashNeighbourIndex accelerates DBSCAN neighbour queries over perceptual
// hashes. Screenshot corpora contain many exact-duplicate hashes (the same
// SE template rendered on many domains), so the index groups points by
// exact hash and answers neighbourhood queries with one distance
// computation per distinct hash instead of per point.
type HashNeighbourIndex struct {
	hashes    []phash.Hash
	distinct  []phash.Hash
	members   [][]int // members[d] = point indices with distinct hash d
	ofPoint   []int   // ofPoint[i] = index into distinct for point i
	maxBits   int     // eps expressed in raw bits
	distCalls int64   // Hamming distance computations performed
}

// NewHashNeighbourIndex builds an index for the given hashes and a
// normalised eps (fraction of 128 bits).
func NewHashNeighbourIndex(hashes []phash.Hash, eps float64) *HashNeighbourIndex {
	idx := &HashNeighbourIndex{
		hashes:  hashes,
		ofPoint: make([]int, len(hashes)),
		maxBits: int(eps * float64(phash.Bits)),
	}
	seen := map[phash.Hash]int{}
	for i, h := range hashes {
		d, ok := seen[h]
		if !ok {
			d = len(idx.distinct)
			seen[h] = d
			idx.distinct = append(idx.distinct, h)
			idx.members = append(idx.members, nil)
		}
		idx.ofPoint[i] = d
		idx.members[d] = append(idx.members[d], i)
	}
	return idx
}

// Neighbours returns all point indices within eps of point i, including i.
func (idx *HashNeighbourIndex) Neighbours(i int) []int {
	h := idx.distinct[idx.ofPoint[i]]
	var out []int
	idx.distCalls += int64(len(idx.distinct))
	for d, other := range idx.distinct {
		if phash.Distance(h, other) <= idx.maxBits {
			out = append(out, idx.members[d]...)
		}
	}
	return out
}

// DistinctCount reports the number of distinct hashes in the corpus.
func (idx *HashNeighbourIndex) DistinctCount() int { return len(idx.distinct) }

// DistanceCalls reports the Hamming distance computations performed so
// far (one per distinct hash per neighbourhood query).
func (idx *HashNeighbourIndex) DistanceCalls() int64 { return idx.distCalls }

// DBSCANHashes clusters perceptual hashes with the paper's metric
// (normalised Hamming distance). Neighbour queries go through the
// pigeonhole multi-index (multiindex.go) instead of scanning every
// distinct hash; ClusterHashes exposes the same path with parallel
// neighbourhood precompute and index statistics.
func DBSCANHashes(hashes []phash.Hash, params Params) (Result, error) {
	res, _, err := ClusterHashes(hashes, params, 1)
	return res, err
}

// DBSCANHashesFlat is the previous clustering path — one distance
// computation per distinct hash per query — kept for ablations and as
// the reference implementation the multi-index is tested against.
func DBSCANHashesFlat(hashes []phash.Hash, params Params) (Result, error) {
	idx := NewHashNeighbourIndex(hashes, params.Eps)
	res, err := DBSCANIndexed(len(hashes), idx.Neighbours, params)
	res.DistanceCalls = idx.DistanceCalls()
	return res, err
}
