package cluster

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/phash"
)

func dynTestHashes(n int, seed int64) []phash.Hash {
	rng := rand.New(rand.NewSource(seed))
	base := make([]phash.Hash, n/4+1)
	for i := range base {
		base[i] = phash.Hash{Hi: rng.Uint64(), Lo: rng.Uint64()}
	}
	// Mix of fresh hashes and near-duplicates of earlier ones so the
	// index sees both isolated points and dense ε-neighbourhoods.
	out := make([]phash.Hash, 0, n)
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			out = append(out, base[i/4])
			continue
		}
		h := base[i/4]
		flips := rng.Intn(14) // 0..13 bits; eps=0.1 => maxBits=12
		for f := 0; f < flips; f++ {
			bit := uint(rng.Intn(phash.Bits))
			if bit < 64 {
				h.Lo ^= 1 << bit
			} else {
				h.Hi ^= 1 << (bit - 64)
			}
		}
		out = append(out, h)
	}
	return out
}

// TestDynamicIndexMatchesMultiIndex checks that incrementally adding a
// stream yields, for every distinct hash, exactly the neighbour set a
// freshly built MultiIndex reports, and that the final distinct-hash
// numbering matches first-appearance order.
func TestDynamicIndexMatchesMultiIndex(t *testing.T) {
	const eps = 0.1
	hashes := dynTestHashes(300, 7)

	dyn := NewDynamicIndex(eps)
	nbrs := map[int32][]int32{}
	for _, h := range hashes {
		id, nb, isNew := dyn.Add(h)
		if isNew {
			nbrs[id] = nb
			// Symmetric closure: later arrivals extend earlier sets.
			for _, n := range nb {
				nbrs[n] = append(nbrs[n], id)
			}
		}
	}

	mi := NewMultiIndex(hashes, eps, 0)
	if mi.DistinctCount() != dyn.Len() {
		t.Fatalf("distinct count: multi %d dyn %d", mi.DistinctCount(), dyn.Len())
	}
	// Map MultiIndex point-level neighbours onto distinct ids.
	seen := map[phash.Hash]int32{}
	order := []phash.Hash{}
	for _, h := range hashes {
		if _, ok := seen[h]; !ok {
			seen[h] = int32(len(order))
			order = append(order, h)
		}
	}
	for d, h := range order {
		id, ok := dyn.Lookup(h)
		if !ok || id != int32(d) {
			t.Fatalf("hash %d: lookup id %d ok=%v, want %d", d, id, ok, d)
		}
		if dyn.Hash(id) != h {
			t.Fatalf("hash %d: Hash() roundtrip mismatch", d)
		}
		want := map[int32]bool{}
		for e, g := range order {
			if e != d && phash.Distance(h, g) <= dyn.MaxBits() {
				want[int32(e)] = true
			}
		}
		got := nbrs[id]
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("hash %d: %d neighbours, want %d", d, len(got), len(want))
		}
		for _, n := range got {
			if !want[n] {
				t.Fatalf("hash %d: spurious neighbour %d", d, n)
			}
		}
	}
}

// TestDynamicIndexKnownHashFree: re-adding a known hash must cost zero
// distance calls and zero probes.
func TestDynamicIndexKnownHashFree(t *testing.T) {
	dyn := NewDynamicIndex(0.1)
	h := phash.Hash{Hi: 0xdead, Lo: 0xbeef}
	id0, _, isNew := dyn.Add(h)
	if !isNew {
		t.Fatal("first add not new")
	}
	st0 := dyn.Stats()
	id1, nb, isNew := dyn.Add(h)
	if isNew || id1 != id0 || nb != nil {
		t.Fatalf("re-add: id %d new %v nbrs %v", id1, isNew, nb)
	}
	st1 := dyn.Stats()
	if st1.DistanceCalls != st0.DistanceCalls || st1.Probes != st0.Probes {
		t.Fatalf("re-add cost: probes %d->%d distCalls %d->%d",
			st0.Probes, st1.Probes, st0.DistanceCalls, st1.DistanceCalls)
	}
}

// TestDynamicIndexStats sanity-checks the counter plumbing: shard
// probes sum to the global probe count, and candidates == distance
// calls (every distinct candidate is verified exactly once).
func TestDynamicIndexStats(t *testing.T) {
	dyn := NewDynamicIndex(0.1)
	for _, h := range dynTestHashes(100, 11) {
		dyn.Add(h)
	}
	st := dyn.Stats()
	if st.Bands != bandsFor(dyn.MaxBits()) {
		t.Fatalf("bands %d, want %d", st.Bands, bandsFor(dyn.MaxBits()))
	}
	if len(st.ShardProbes) != st.Bands {
		t.Fatalf("shard probe vector len %d, want %d", len(st.ShardProbes), st.Bands)
	}
	var sum int64
	for _, p := range st.ShardProbes {
		sum += p
	}
	if sum != st.Probes {
		t.Fatalf("shard probes sum %d != total %d", sum, st.Probes)
	}
	if st.Candidates != st.DistanceCalls {
		t.Fatalf("candidates %d != distance calls %d", st.Candidates, st.DistanceCalls)
	}
	if st.Probes == 0 || st.DistanceCalls == 0 {
		t.Fatal("expected non-zero probe/verification counters")
	}
	if dc := dyn.DistanceCalls(); dc != st.DistanceCalls {
		t.Fatalf("DistanceCalls() %d != Stats %d", dc, st.DistanceCalls)
	}
}

// TestDynamicIndexConcurrentAdds hammers Add from many goroutines and
// then verifies the edge-discovery guarantee: for every ε-pair of
// distinct hashes, at least one of the two Adds reported the other (the
// union of reported edges, symmetrized, equals the true ε-graph).
func TestDynamicIndexConcurrentAdds(t *testing.T) {
	const (
		eps     = 0.1
		workers = 8
	)
	hashes := dynTestHashes(400, 23)

	dyn := NewDynamicIndex(eps)
	var mu sync.Mutex
	edges := map[[2]int32]bool{}
	ids := map[phash.Hash]int32{}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Shifted replay: every worker adds the full stream from a
			// different start, so identical hashes race their claims
			// and near hashes race their registrations.
			for i := range hashes {
				h := hashes[(i+w*53)%len(hashes)]
				id, nb, isNew := dyn.Add(h)
				if !isNew {
					continue
				}
				mu.Lock()
				ids[h] = id
				for _, n := range nb {
					a, b := id, n
					if a > b {
						a, b = b, a
					}
					edges[[2]int32{a, b}] = true
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	distinct := map[phash.Hash]bool{}
	for _, h := range hashes {
		distinct[h] = true
	}
	if len(ids) != len(distinct) || dyn.Len() != len(distinct) {
		t.Fatalf("distinct: claimed %d indexed %d, want %d", len(ids), dyn.Len(), len(distinct))
	}
	uniq := make([]phash.Hash, 0, len(distinct))
	for h := range distinct {
		uniq = append(uniq, h)
	}
	for i := 0; i < len(uniq); i++ {
		for j := i + 1; j < len(uniq); j++ {
			within := phash.Distance(uniq[i], uniq[j]) <= dyn.MaxBits()
			a, b := ids[uniq[i]], ids[uniq[j]]
			if a > b {
				a, b = b, a
			}
			if got := edges[[2]int32{a, b}]; got != within {
				t.Fatalf("edge (%d,%d): reported %v, within ε %v", a, b, got, within)
			}
		}
	}
}

// TestDynamicIndexConcurrentProbeDuringRegister interleaves probes of a
// fixed hash with registrations of its neighbours: every probe must
// return a consistent (sorted, dedup'd) subset of the final neighbour
// set — no duplicates, no phantom ids.
func TestDynamicIndexConcurrentProbeDuringRegister(t *testing.T) {
	dyn := NewDynamicIndex(0.1)
	center := phash.Hash{Hi: 1 << 40, Lo: 1 << 20}
	cid, _, _ := dyn.Add(center)

	// 64 hashes within ε of center (flip ≤ 3 low bits).
	near := make([]phash.Hash, 64)
	for i := range near {
		h := center
		h.Lo ^= uint64(i & 7)
		h.Hi ^= uint64(i >> 3)
		near[i] = h
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, h := range near {
			dyn.Add(h)
		}
	}()
	for {
		nb, _ := dyn.ProbeNeighbours(center, cid)
		for i := 1; i < len(nb); i++ {
			if nb[i] <= nb[i-1] {
				t.Errorf("probe result not strictly ascending: %v", nb)
				break
			}
		}
		for _, n := range nb {
			if n == cid {
				t.Errorf("probe returned self")
			}
			if phash.Distance(center, dyn.Hash(n)) > dyn.MaxBits() {
				t.Errorf("probe returned non-neighbour %d", n)
			}
		}
		select {
		case <-done:
			nb, _ := dyn.ProbeNeighbours(center, cid)
			want := 0
			for _, h := range near {
				if h != center && phash.Distance(center, h) <= dyn.MaxBits() {
					want++
				}
			}
			if len(nb) != want {
				t.Fatalf("final probe: %d neighbours, want %d", len(nb), want)
			}
			return
		default:
		}
	}
}
