package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/phash"
	"repro/internal/rng"
)

type pt struct{ x, y float64 }

func euclid(a, b pt) float64 { return math.Hypot(a.x-b.x, a.y-b.y) }

func twoBlobsAndNoise() ([]pt, []string) {
	s := rng.New(1)
	var pts []pt
	var truth []string
	for i := 0; i < 30; i++ {
		pts = append(pts, pt{s.Float64() * 0.5, s.Float64() * 0.5})
		truth = append(truth, "A")
	}
	for i := 0; i < 30; i++ {
		pts = append(pts, pt{10 + s.Float64()*0.5, 10 + s.Float64()*0.5})
		truth = append(truth, "B")
	}
	pts = append(pts, pt{50, 50}, pt{-40, 90})
	truth = append(truth, "noise", "noise")
	return pts, truth
}

func TestDBSCANFindsTwoBlobs(t *testing.T) {
	pts, truth := twoBlobsAndNoise()
	res, err := DBSCAN(pts, euclid, Params{Eps: 1.0, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	noise := res.NoisePoints()
	if len(noise) != 2 {
		t.Fatalf("noise = %v", noise)
	}
	p, err := Purity(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1.0 {
		t.Fatalf("purity = %v", p)
	}
	comp, err := Completeness(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if comp < 0.9 {
		t.Fatalf("completeness = %v", comp)
	}
}

func TestDBSCANAllNoiseWhenSparse(t *testing.T) {
	pts := []pt{{0, 0}, {5, 5}, {10, 10}, {15, 15}}
	res, err := DBSCAN(pts, euclid, Params{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || len(res.NoisePoints()) != 4 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDBSCANSingleClusterChain(t *testing.T) {
	// A chain of points each within eps of the next must merge into one
	// cluster through density reachability.
	var pts []pt
	for i := 0; i < 20; i++ {
		pts = append(pts, pt{float64(i) * 0.9, 0})
	}
	res, err := DBSCAN(pts, euclid, Params{Eps: 1.0, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d", res.NumClusters)
	}
	if len(res.Members(0)) != 20 {
		t.Fatalf("members = %v", res.Members(0))
	}
}

func TestDBSCANBorderPointAdopted(t *testing.T) {
	// Three core points plus one border point within eps of a core point
	// but with a sparse own neighbourhood.
	pts := []pt{{0, 0}, {0.1, 0}, {0.2, 0}, {1.0, 0}}
	res, err := DBSCAN(pts, euclid, Params{Eps: 0.9, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[3] != res.Labels[0] {
		t.Fatalf("border point labelled %d, core %d", res.Labels[3], res.Labels[0])
	}
}

func TestDBSCANDeterministic(t *testing.T) {
	pts, _ := twoBlobsAndNoise()
	r1, err := DBSCAN(pts, euclid, Params{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DBSCAN(pts, euclid, Params{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Labels {
		if r1.Labels[i] != r2.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Eps: -1, MinPts: 3}).Validate(); err == nil {
		t.Fatal("negative eps accepted")
	}
	if err := (Params{Eps: 0.1, MinPts: 0}).Validate(); err == nil {
		t.Fatal("MinPts 0 accepted")
	}
	if err := PaperParams.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := DBSCAN([]pt{}, euclid, Params{Eps: -1, MinPts: 1}); err == nil {
		t.Fatal("DBSCAN accepted bad params")
	}
	if _, err := DBSCANIndexed(0, nil, Params{MinPts: 0}); err == nil {
		t.Fatal("DBSCANIndexed accepted bad params")
	}
}

func TestPurityErrors(t *testing.T) {
	if _, err := Purity([]int{0}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Purity([]int{Noise}, []string{"a"}); err == nil {
		t.Fatal("all-noise accepted")
	}
	if _, err := Completeness([]int{0}, []string{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPurityMixedCluster(t *testing.T) {
	// One cluster of 4 points: 3 of class A, 1 of class B -> purity 0.75.
	labels := []int{0, 0, 0, 0}
	truth := []string{"A", "A", "A", "B"}
	p, err := Purity(labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.75 {
		t.Fatalf("purity = %v", p)
	}
}

func TestCompletenessSplitClass(t *testing.T) {
	// Class A split across two clusters 3/2 -> completeness 3/5 for A; B
	// intact -> (3+2)/(5+2).
	labels := []int{0, 0, 0, 1, 1, 2, 2}
	truth := []string{"A", "A", "A", "A", "A", "B", "B"}
	c, err := Completeness(labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(3+2) / 7
	if math.Abs(c-want) > 1e-9 {
		t.Fatalf("completeness = %v, want %v", c, want)
	}
}

func TestSizeHistogram(t *testing.T) {
	r := Result{Labels: []int{0, 0, 1, Noise, 1, 1}, NumClusters: 2}
	h := SizeHistogram(r)
	if len(h) != 2 || h[0] != 3 || h[1] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestClustersAccessor(t *testing.T) {
	r := Result{Labels: []int{1, 0, 1, Noise}, NumClusters: 2}
	cs := r.Clusters()
	if len(cs) != 2 || len(cs[0]) != 1 || cs[0][0] != 1 || len(cs[1]) != 2 {
		t.Fatalf("clusters = %v", cs)
	}
}

// Property: every point within eps of a cluster's core structure shares its
// label; we check the weaker but universal invariant that labels are in
// [-1, NumClusters).
func TestDBSCANLabelRangeProperty(t *testing.T) {
	s := rng.New(3)
	f := func(n uint8) bool {
		count := int(n%40) + 1
		pts := make([]pt, count)
		for i := range pts {
			pts[i] = pt{s.Float64() * 5, s.Float64() * 5}
		}
		res, err := DBSCAN(pts, euclid, Params{Eps: 0.7, MinPts: 3})
		if err != nil {
			return false
		}
		for _, l := range res.Labels {
			if l < Noise || l >= res.NumClusters {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashIndexMatchesBruteForce(t *testing.T) {
	s := rng.New(9)
	// Corpus: 3 template hashes, each with many near-duplicates, plus
	// random noise hashes.
	base := []phash.Hash{
		{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210},
		{Hi: 0xffffffff00000000, Lo: 0x00000000ffffffff},
		{Hi: 0xaaaaaaaaaaaaaaaa, Lo: 0x5555555555555555},
	}
	var hashes []phash.Hash
	for _, b := range base {
		for i := 0; i < 15; i++ {
			h := b
			for f := 0; f < s.Intn(4); f++ {
				h = h.FlipBits(s.Intn(128))
			}
			hashes = append(hashes, h)
		}
	}
	for i := 0; i < 10; i++ {
		hashes = append(hashes, phash.Hash{Hi: uint64(s.Int63()), Lo: uint64(s.Int63())})
	}

	params := PaperParams
	fast, err := DBSCANHashes(hashes, params)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := DBSCAN(hashes, phash.NormDistance, params)
	if err != nil {
		t.Fatal(err)
	}
	if fast.NumClusters != slow.NumClusters {
		t.Fatalf("fast %d clusters vs slow %d", fast.NumClusters, slow.NumClusters)
	}
	// Labels must induce the same partition (ids may permute).
	mapping := map[int]int{}
	for i := range hashes {
		f, sl := fast.Labels[i], slow.Labels[i]
		if (f == Noise) != (sl == Noise) {
			t.Fatalf("point %d: fast %d vs slow %d", i, f, sl)
		}
		if f == Noise {
			continue
		}
		if m, ok := mapping[f]; ok {
			if m != sl {
				t.Fatalf("partition mismatch at %d", i)
			}
		} else {
			mapping[f] = sl
		}
	}
}

func TestHashIndexDistinctCount(t *testing.T) {
	h := phash.Hash{Hi: 1, Lo: 2}
	far := phash.Hash{Hi: ^uint64(0), Lo: ^uint64(0)}
	idx := NewHashNeighbourIndex([]phash.Hash{h, h, h, far}, 0.1)
	if idx.DistinctCount() != 2 {
		t.Fatalf("distinct = %d", idx.DistinctCount())
	}
	nb := idx.Neighbours(0)
	if len(nb) != 3 {
		t.Fatalf("neighbours of dup = %v", nb)
	}
}
