package cluster

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/phash"
)

// MultiIndex is a pigeonhole-partitioned Hamming index over perceptual
// hashes — the sub-quadratic replacement for scanning every distinct
// hash per neighbourhood query.
//
// The 128-bit dhash is split into m contiguous bands. For two hashes
// within maxBits of each other, at least one band must differ by at
// most tol = ⌊maxBits/m⌋ bits (pigeonhole: if every band differed by
// tol+1 or more, the total distance would be at least m·(tol+1) >
// maxBits). A neighbourhood query therefore probes, per band, the hash
// buckets of every band value within tol bit flips of the query's band
// value, and verifies only those candidates with a full Hamming
// distance computation. With the paper's eps=0.1 (12 bits) the index
// uses 13 bands with tol=0 — 13 exact bucket lookups per query.
//
// Like HashNeighbourIndex, points are first collapsed by exact hash, so
// all work is per distinct hash; neighbourhoods are additionally
// memoized per distinct hash, and Precompute fills the memo table in
// parallel (each entry depends only on read-only state, so the result
// is identical for any worker count).
type MultiIndex struct {
	hashes   []phash.Hash
	distinct []phash.Hash
	members  [][]int // members[d] = point indices with distinct hash d
	ofPoint  []int   // ofPoint[i] = index into distinct for point i
	maxBits  int     // eps expressed in raw bits

	bands   []bandSpec
	tol     int                   // per-band flip budget
	buckets []map[uint64][]int32  // buckets[b][value] = distinct ids
	linear  bool                  // probe enumeration wider than a scan

	memo     []atomic.Pointer[[]int] // memo[d] = neighbourhood of distinct d
	memoOnce []sync.Once

	probes, candidates, distCalls atomic.Int64
}

// bandSpec is one contiguous bit span [Off, Off+Width) of the 128-bit
// hash (bit i reads from Hi for i < 64, from Lo above).
type bandSpec struct{ Off, Width uint }

// IndexStats is a snapshot of the index's shape and query counters.
type IndexStats struct {
	Points        int
	Distinct      int
	Bands         int
	Tolerance     int
	Linear        bool
	Probes        int64 // bucket lookups performed
	Candidates    int64 // distinct candidates examined (pre-verification)
	DistanceCalls int64 // full Hamming verifications
}

// MaxBands caps the band count; beyond ~16 bands the per-band bucket
// values get too short and every bucket collides.
const MaxBands = 16

// bandsFor picks the band count for a bit radius: maxBits+1 bands give
// tol=0 (exact band probes); capped at MaxBands, floored at 2 so each
// band value fits a uint64.
func bandsFor(maxBits int) int {
	m := maxBits + 1
	if m > MaxBands {
		m = MaxBands
	}
	if m < 2 {
		m = 2
	}
	return m
}

// NewMultiIndex builds an index for the given hashes and a normalised
// eps (fraction of 128 bits). bands <= 0 selects the band count
// automatically from the bit radius.
func NewMultiIndex(hashes []phash.Hash, eps float64, bands int) *MultiIndex {
	idx := &MultiIndex{
		hashes:  hashes,
		ofPoint: make([]int, len(hashes)),
		maxBits: int(eps * float64(phash.Bits)),
	}
	seen := make(map[phash.Hash]int, len(hashes))
	for i, h := range hashes {
		d, ok := seen[h]
		if !ok {
			d = len(idx.distinct)
			seen[h] = d
			idx.distinct = append(idx.distinct, h)
			idx.members = append(idx.members, nil)
		}
		idx.ofPoint[i] = d
		idx.members[d] = append(idx.members[d], i)
	}

	if bands <= 0 {
		bands = bandsFor(idx.maxBits)
	}
	if bands < 2 {
		bands = 2
	}
	if bands > MaxBands {
		bands = MaxBands
	}
	idx.tol = idx.maxBits / bands
	base, extra := phash.Bits/bands, phash.Bits%bands
	off := uint(0)
	for b := 0; b < bands; b++ {
		w := uint(base)
		if b < extra {
			w++
		}
		idx.bands = append(idx.bands, bandSpec{Off: off, Width: w})
		off += w
	}

	// If enumerating flip patterns would probe more buckets than there
	// are distinct hashes, a linear scan is cheaper; keep the index
	// correct for any eps by falling back.
	if probeCount(idx.bands, idx.tol) > len(idx.distinct) {
		idx.linear = true
	} else {
		idx.buckets = make([]map[uint64][]int32, bands)
		for b := range idx.buckets {
			idx.buckets[b] = map[uint64][]int32{}
		}
		for d, h := range idx.distinct {
			for b, spec := range idx.bands {
				v := bandValue(h, spec)
				idx.buckets[b][v] = append(idx.buckets[b][v], int32(d))
			}
		}
	}

	idx.memo = make([]atomic.Pointer[[]int], len(idx.distinct))
	idx.memoOnce = make([]sync.Once, len(idx.distinct))
	return idx
}

// probeCount returns the number of bucket lookups one query costs:
// sum over bands of the ≤tol-flip enumeration size.
func probeCount(bands []bandSpec, tol int) int {
	total := 0
	for _, b := range bands {
		n, term := 1, 1
		for f := 1; f <= tol; f++ {
			term = term * (int(b.Width) - f + 1) / f // C(width, f)
			n += term
		}
		total += n
	}
	return total
}

// bandValue extracts the band's bits from the 128-bit concatenation
// Hi||Lo (bit 0 = lowest bit of Hi, bit 64 = lowest bit of Lo).
func bandValue(h phash.Hash, b bandSpec) uint64 {
	var v uint64
	if b.Off < 64 {
		v = h.Hi >> b.Off
		if b.Off+b.Width > 64 {
			v |= h.Lo << (64 - b.Off)
		}
	} else {
		v = h.Lo >> (b.Off - 64)
	}
	if b.Width < 64 {
		v &= (1 << b.Width) - 1
	}
	return v
}

// enumBand calls emit for every value within tol bit flips of v
// (including v itself), each exactly once.
func enumBand(v uint64, width uint, tol int, emit func(uint64)) {
	emit(v)
	if tol <= 0 {
		return
	}
	var rec func(v uint64, start uint, left int)
	rec = func(v uint64, start uint, left int) {
		for p := start; p < width; p++ {
			fv := v ^ (1 << p)
			emit(fv)
			if left > 1 {
				rec(fv, p+1, left-1)
			}
		}
	}
	rec(v, 0, tol)
}

// scratch is per-goroutine query state: a stamp array deduplicating the
// candidate set across bands without per-query allocation.
type scratch struct {
	mark  []int64
	stamp int64
}

func (x *MultiIndex) newScratch() *scratch {
	return &scratch{mark: make([]int64, len(x.distinct))}
}

// neighbourhood computes the point indices within maxBits of distinct
// hash d, in deterministic (band, probe, bucket) discovery order.
func (x *MultiIndex) neighbourhood(d int, sc *scratch) []int {
	h := x.distinct[d]
	sc.stamp++
	var pts []int
	var dist int64
	consider := func(cd int32) {
		if sc.mark[cd] == sc.stamp {
			return
		}
		sc.mark[cd] = sc.stamp
		dist++
		if phash.Distance(h, x.distinct[cd]) <= x.maxBits {
			pts = append(pts, x.members[cd]...)
		}
	}
	if x.linear {
		for cd := range x.distinct {
			consider(int32(cd))
		}
	} else {
		var probes int64
		for b, spec := range x.bands {
			v := bandValue(h, spec)
			enumBand(v, spec.Width, x.tol, func(pv uint64) {
				probes++
				for _, cd := range x.buckets[b][pv] {
					consider(cd)
				}
			})
		}
		x.probes.Add(probes)
	}
	x.candidates.Add(dist)
	x.distCalls.Add(dist)
	return pts
}

// neighboursOf returns (memoizing) the neighbourhood of distinct d.
func (x *MultiIndex) neighboursOf(d int, sc *scratch) []int {
	if p := x.memo[d].Load(); p != nil {
		return *p
	}
	x.memoOnce[d].Do(func() {
		nb := x.neighbourhood(d, sc)
		x.memo[d].Store(&nb)
	})
	return *x.memo[d].Load()
}

// Precompute fills every distinct hash's neighbourhood using the given
// number of workers. The memo contents are a pure function of the
// corpus, so any worker count yields identical neighbourhoods.
func (x *MultiIndex) Precompute(workers int) {
	n := len(x.distinct)
	if workers <= 1 || n < 2 {
		sc := x.newScratch()
		for d := 0; d < n; d++ {
			x.neighboursOf(d, sc)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := x.newScratch()
			for {
				d := int(next.Add(1)) - 1
				if d >= n {
					return
				}
				x.neighboursOf(d, sc)
			}
		}()
	}
	wg.Wait()
}

// Neighbours returns all point indices within eps of point i, including
// i. Callers sharing the index across goroutines must have called
// Precompute first (Neighbours itself memoizes with a private scratch
// only on the slow path).
func (x *MultiIndex) Neighbours(i int) []int {
	d := x.ofPoint[i]
	if p := x.memo[d].Load(); p != nil {
		return *p
	}
	return x.neighboursOf(d, x.newScratch())
}

// DistinctCount reports the number of distinct hashes in the corpus.
func (x *MultiIndex) DistinctCount() int { return len(x.distinct) }

// DistanceCalls reports the full Hamming verifications performed.
func (x *MultiIndex) DistanceCalls() int64 { return x.distCalls.Load() }

// Stats snapshots the index shape and counters.
func (x *MultiIndex) Stats() IndexStats {
	return IndexStats{
		Points:        len(x.hashes),
		Distinct:      len(x.distinct),
		Bands:         len(x.bands),
		Tolerance:     x.tol,
		Linear:        x.linear,
		Probes:        x.probes.Load(),
		Candidates:    x.candidates.Load(),
		DistanceCalls: x.distCalls.Load(),
	}
}

// ClusterHashes clusters perceptual hashes with the paper's metric
// (normalised Hamming distance) through the multi-index, precomputing
// neighbourhoods across workers, and returns the index for stats
// introspection. Results are identical for any worker count.
func ClusterHashes(hashes []phash.Hash, params Params, workers int) (Result, *MultiIndex, error) {
	if err := params.Validate(); err != nil {
		return Result{}, nil, err
	}
	idx := NewMultiIndex(hashes, params.Eps, 0)
	idx.Precompute(workers)
	res, err := DBSCANIndexed(len(hashes), idx.Neighbours, params)
	res.DistanceCalls = idx.DistanceCalls()
	return res, idx, err
}

// sortedCopy returns a sorted copy of a neighbourhood; test helper for
// order-insensitive comparisons.
func sortedCopy(nb []int) []int {
	out := append([]int(nil), nb...)
	sort.Ints(out)
	return out
}
