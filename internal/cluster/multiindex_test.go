package cluster

import (
	"math/bits"
	"reflect"
	"testing"

	"repro/internal/phash"
	"repro/internal/rng"
)

// bruteNeighbours is the reference neighbourhood: every point within
// maxBits of point i, in ascending index order.
func bruteNeighbours(hashes []phash.Hash, i, maxBits int) []int {
	var out []int
	for j, h := range hashes {
		if phash.Distance(hashes[i], h) <= maxBits {
			out = append(out, j)
		}
	}
	return out
}

func TestMultiIndexBandsCoverAllBits(t *testing.T) {
	for m := 2; m <= MaxBands; m++ {
		idx := NewMultiIndex(corpus(50, 5), 0.1, m)
		if len(idx.bands) != m {
			t.Fatalf("m=%d: got %d bands", m, len(idx.bands))
		}
		covered := uint(0)
		for i, b := range idx.bands {
			if b.Off != covered {
				t.Fatalf("m=%d: band %d starts at %d, want %d", m, i, b.Off, covered)
			}
			if b.Width == 0 || b.Width > 64 {
				t.Fatalf("m=%d: band %d width %d out of range", m, i, b.Width)
			}
			covered += b.Width
		}
		if covered != phash.Bits {
			t.Fatalf("m=%d: bands cover %d bits, want %d", m, covered, phash.Bits)
		}
	}
}

func TestBandValueMatchesBitExtraction(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 200; trial++ {
		h := phash.Hash{Hi: uint64(src.Int63()) | uint64(src.Intn(2))<<63, Lo: uint64(src.Int63()) | uint64(src.Intn(2))<<63}
		off := uint(src.Intn(120))
		width := uint(1 + src.Intn(int(min64(64, 128-int(off)))))
		var want uint64
		for b := uint(0); b < width; b++ {
			bit := off + b
			var v uint64
			if bit < 64 {
				v = (h.Hi >> bit) & 1
			} else {
				v = (h.Lo >> (bit - 64)) & 1
			}
			want |= v << b
		}
		got := bandValue(h, bandSpec{Off: off, Width: width})
		if got != want {
			t.Fatalf("bandValue(%v, off=%d, w=%d) = %x, want %x", h, off, width, got, want)
		}
	}
}

func min64(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestEnumBandEmitsExactlyWithinTol(t *testing.T) {
	const width, tol = 6, 2
	v := uint64(0b101100)
	seen := map[uint64]int{}
	enumBand(v, width, tol, func(pv uint64) { seen[pv]++ })
	// Every value within tol flips appears exactly once; none beyond.
	for cand := uint64(0); cand < 1<<width; cand++ {
		d := bits.OnesCount64(cand ^ v)
		n := seen[cand]
		if d <= tol && n != 1 {
			t.Fatalf("value %06b at distance %d emitted %d times", cand, d, n)
		}
		if d > tol && n != 0 {
			t.Fatalf("value %06b at distance %d emitted %d times, want 0", cand, d, n)
		}
	}
}

func TestMultiIndexNeighboursMatchBruteForce(t *testing.T) {
	for _, eps := range []float64{0.0, 0.1, 0.2, 0.35} {
		hashes := corpus(400, 12)
		idx := NewMultiIndex(hashes, eps, 0)
		maxBits := int(eps * float64(phash.Bits))
		for i := range hashes {
			got := sortedCopy(idx.Neighbours(i))
			want := bruteNeighbours(hashes, i, maxBits)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("eps=%v point %d: neighbours %v, want %v", eps, i, got, want)
			}
		}
	}
}

func TestMultiIndexLinearFallback(t *testing.T) {
	// A huge eps makes probe enumeration wider than the distinct count;
	// the index must fall back to scanning and stay correct.
	hashes := corpus(60, 6)
	idx := NewMultiIndex(hashes, 0.45, 0)
	if !idx.linear {
		t.Fatalf("eps=0.45 over %d distinct: expected linear fallback, stats %+v",
			idx.DistinctCount(), idx.Stats())
	}
	eps := 0.45
	maxBits := int(eps * float64(phash.Bits))
	for i := range hashes {
		got := sortedCopy(idx.Neighbours(i))
		want := bruteNeighbours(hashes, i, maxBits)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("point %d: neighbours %v, want %v", i, got, want)
		}
	}
}

func TestMultiIndexLabelsMatchFlatPath(t *testing.T) {
	hashes := corpus(800, 25)
	flat, err := DBSCANHashesFlat(hashes, PaperParams)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := DBSCANHashes(hashes, PaperParams)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flat.Labels, multi.Labels) {
		t.Fatal("multi-index labels differ from flat-scan labels")
	}
	if flat.NumClusters != multi.NumClusters {
		t.Fatalf("cluster counts differ: flat %d, multi %d", flat.NumClusters, multi.NumClusters)
	}
	if multi.DistanceCalls >= flat.DistanceCalls {
		t.Fatalf("multi-index DistanceCalls %d not below flat %d",
			multi.DistanceCalls, flat.DistanceCalls)
	}
	if flat.DistanceCalls < 5*multi.DistanceCalls {
		t.Fatalf("want >=5x distance-call reduction, got flat=%d multi=%d (%.1fx)",
			flat.DistanceCalls, multi.DistanceCalls,
			float64(flat.DistanceCalls)/float64(multi.DistanceCalls))
	}
}

func TestClusterHashesWorkerCountInvariance(t *testing.T) {
	hashes := corpus(600, 20)
	var ref Result
	for _, workers := range []int{1, 2, 8} {
		res, idx, err := ClusterHashes(hashes, PaperParams, workers)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Labels, ref.Labels) {
			t.Fatalf("workers=%d: labels differ from workers=1", workers)
		}
		if res.NumClusters != ref.NumClusters {
			t.Fatalf("workers=%d: %d clusters, want %d", workers, res.NumClusters, ref.NumClusters)
		}
		st := idx.Stats()
		if st.DistanceCalls != ref.DistanceCalls {
			t.Fatalf("workers=%d: %d distance calls, want %d (memoization must make totals worker-invariant)",
				workers, st.DistanceCalls, ref.DistanceCalls)
		}
	}
}

func TestMultiIndexParallelPrecomputeRace(t *testing.T) {
	// Exercised under -race: many goroutines racing on the memo table.
	hashes := corpus(500, 15)
	idx := NewMultiIndex(hashes, 0.1, 0)
	idx.Precompute(16)
	for i := range hashes {
		if idx.Neighbours(i) == nil {
			t.Fatalf("point %d: nil neighbourhood after precompute", i)
		}
	}
}

func TestMultiIndexMemoizationSharesDuplicates(t *testing.T) {
	// 100 points over 4 distinct hashes: one neighbourhood computation per
	// distinct, so distance calls are bounded by distinct^2.
	base := corpus(4, 4)
	hashes := make([]phash.Hash, 100)
	for i := range hashes {
		hashes[i] = base[i%len(base)]
	}
	idx := NewMultiIndex(hashes, 0.1, 0)
	for i := range hashes {
		idx.Neighbours(i)
	}
	if d := idx.DistanceCalls(); d > 16 {
		t.Fatalf("distance calls %d exceed distinct^2 = 16; memoization broken", d)
	}
}

func TestMultiIndexStats(t *testing.T) {
	hashes := corpus(300, 10)
	_, idx, err := ClusterHashes(hashes, PaperParams, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.Points != 300 {
		t.Fatalf("Points = %d, want 300", st.Points)
	}
	if st.Distinct != idx.DistinctCount() {
		t.Fatalf("Distinct = %d, want %d", st.Distinct, idx.DistinctCount())
	}
	if st.Bands != 13 || st.Tolerance != 0 {
		t.Fatalf("paper eps should yield 13 bands tol 0, got %d/%d", st.Bands, st.Tolerance)
	}
	if st.Linear {
		t.Fatal("paper eps on 300 points should not fall back to linear scan")
	}
	if st.Probes == 0 || st.Candidates == 0 || st.DistanceCalls == 0 {
		t.Fatalf("counters not populated: %+v", st)
	}
	if st.Candidates != st.DistanceCalls {
		t.Fatalf("each deduplicated candidate is verified once: candidates %d vs distance calls %d",
			st.Candidates, st.DistanceCalls)
	}
}

func BenchmarkDBSCANHashesFlat1k(b *testing.B) {
	hashes := corpus(1000, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DBSCANHashesFlat(hashes, PaperParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiIndexPrecompute10k(b *testing.B) {
	hashes := corpus(10000, 120)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := NewMultiIndex(hashes, PaperParams.Eps, 0)
		idx.Precompute(8)
	}
}
