// Package cluster implements the density-based clustering used to group
// SE-attack screenshots into campaigns (paper Section 3.3): DBSCAN over
// (dhash, e2LD) pairs with the normalised Hamming distance between the
// 128-bit dhash values, eps = 0.1 and MinPts = 3, followed by the
// θc-distinct-domain filter implemented in internal/core.
//
// The implementation is generic over the point type so the ablation
// benches can cluster raw hashes, (hash, domain) pairs, or synthetic
// points with the same code path.
package cluster

import (
	"fmt"
	"sort"
)

// DistanceFunc measures the distance between two points.
type DistanceFunc[P any] func(a, b P) float64

// Params configures DBSCAN.
type Params struct {
	// Eps is the neighbourhood radius (inclusive: d <= Eps).
	Eps float64
	// MinPts is the minimum neighbourhood size (including the point
	// itself) for a point to be a core point.
	MinPts int
}

// PaperParams are the parameters the paper tunes via pilot experiments.
var PaperParams = Params{Eps: 0.1, MinPts: 3}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Eps < 0 {
		return fmt.Errorf("cluster: negative eps %v", p.Eps)
	}
	if p.MinPts < 1 {
		return fmt.Errorf("cluster: MinPts %d < 1", p.MinPts)
	}
	return nil
}

// Noise is the label assigned to points in no cluster.
const Noise = -1

// Result holds a clustering outcome.
type Result struct {
	// Labels[i] is the cluster id of point i, or Noise.
	Labels []int
	// NumClusters is the number of clusters found (ids are 0..NumClusters-1).
	NumClusters int
	// DistanceCalls counts the pairwise distance computations performed —
	// the clustering cost driver the observability layer reports.
	DistanceCalls int64
}

// Members returns the point indices of cluster id, in ascending order.
func (r Result) Members(id int) []int {
	var out []int
	for i, l := range r.Labels {
		if l == id {
			out = append(out, i)
		}
	}
	return out
}

// Clusters returns all clusters as index slices, ordered by cluster id.
func (r Result) Clusters() [][]int {
	out := make([][]int, r.NumClusters)
	for i, l := range r.Labels {
		if l >= 0 {
			out[l] = append(out[l], i)
		}
	}
	return out
}

// NoisePoints returns the indices labelled Noise.
func (r Result) NoisePoints() []int {
	var out []int
	for i, l := range r.Labels {
		if l == Noise {
			out = append(out, i)
		}
	}
	return out
}

// DBSCAN clusters points with the classic algorithm (Ester et al. 1996).
// It is deterministic: points are seeded in index order and neighbourhood
// expansion proceeds in index order, so the same input always yields the
// same labels.
func DBSCAN[P any](points []P, dist DistanceFunc[P], params Params) (Result, error) {
	if err := params.Validate(); err != nil {
		return Result{}, err
	}
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	var distCalls int64
	neighbours := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			distCalls++
			if dist(points[i], points[j]) <= params.Eps {
				out = append(out, j)
			}
		}
		return out
	}
	next := 0
	for i := 0; i < n; i++ {
		if labels[i] != -2 {
			continue
		}
		nb := neighbours(i)
		if len(nb) < params.MinPts {
			labels[i] = Noise
			continue
		}
		id := next
		next++
		labels[i] = id
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = id // border point reached from a core point
			}
			if labels[j] != -2 {
				continue
			}
			labels[j] = id
			nbj := neighbours(j)
			if len(nbj) >= params.MinPts {
				queue = append(queue, nbj...)
			}
		}
	}
	return Result{Labels: labels, NumClusters: next, DistanceCalls: distCalls}, nil
}

// DBSCANIndexed is DBSCAN with a caller-provided neighbourhood index. The
// index function must return all points within Eps of i (including i).
// Use when a domain-specific index (e.g. the multi-probe Hamming index in
// this package) makes neighbour queries sub-quadratic.
func DBSCANIndexed(n int, index func(i int) []int, params Params) (Result, error) {
	if err := params.Validate(); err != nil {
		return Result{}, err
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -2
	}
	next := 0
	for i := 0; i < n; i++ {
		if labels[i] != -2 {
			continue
		}
		nb := index(i)
		if len(nb) < params.MinPts {
			labels[i] = Noise
			continue
		}
		id := next
		next++
		labels[i] = id
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = id
			}
			if labels[j] != -2 {
				continue
			}
			labels[j] = id
			nbj := index(j)
			if len(nbj) >= params.MinPts {
				queue = append(queue, nbj...)
			}
		}
	}
	return Result{Labels: labels, NumClusters: next}, nil
}

// Purity evaluates a clustering against ground-truth labels: for each
// cluster the fraction of members carrying the cluster's majority truth
// label, weighted by cluster size. 1.0 means every cluster is pure.
func Purity(labels []int, truth []string) (float64, error) {
	if len(labels) != len(truth) {
		return 0, fmt.Errorf("cluster: %d labels vs %d truth values", len(labels), len(truth))
	}
	counts := map[int]map[string]int{}
	sizes := map[int]int{}
	for i, l := range labels {
		if l == Noise {
			continue
		}
		if counts[l] == nil {
			counts[l] = map[string]int{}
		}
		counts[l][truth[i]]++
		sizes[l]++
	}
	var total, majSum int
	for id, byTruth := range counts {
		maj := 0
		for _, c := range byTruth {
			if c > maj {
				maj = c
			}
		}
		majSum += maj
		total += sizes[id]
	}
	if total == 0 {
		return 0, fmt.Errorf("cluster: no clustered points to evaluate")
	}
	return float64(majSum) / float64(total), nil
}

// Completeness measures, for each ground-truth class, how concentrated its
// members are in a single cluster (noise counts against it), weighted by
// class size.
func Completeness(labels []int, truth []string) (float64, error) {
	if len(labels) != len(truth) {
		return 0, fmt.Errorf("cluster: %d labels vs %d truth values", len(labels), len(truth))
	}
	byClass := map[string]map[int]int{}
	classSize := map[string]int{}
	for i, t := range truth {
		if byClass[t] == nil {
			byClass[t] = map[int]int{}
		}
		byClass[t][labels[i]]++
		classSize[t]++
	}
	var total, majSum int
	for class, byLabel := range byClass {
		maj := 0
		for l, c := range byLabel {
			if l == Noise {
				continue
			}
			if c > maj {
				maj = c
			}
		}
		majSum += maj
		total += classSize[class]
	}
	if total == 0 {
		return 0, fmt.Errorf("cluster: no points to evaluate")
	}
	return float64(majSum) / float64(total), nil
}

// SizeHistogram returns cluster sizes in descending order; handy for
// eyeballing parameter sweeps.
func SizeHistogram(r Result) []int {
	sizes := make([]int, r.NumClusters)
	for _, l := range r.Labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
