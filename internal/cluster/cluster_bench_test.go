package cluster

import (
	"testing"

	"repro/internal/phash"
	"repro/internal/rng"
)

// corpus builds n hashes over k templates with small in-template noise —
// the screenshot-hash workload the pipeline clusters.
func corpus(n, k int) []phash.Hash {
	src := rng.New(7)
	base := make([]phash.Hash, k)
	for i := range base {
		base[i] = phash.Hash{Hi: uint64(src.Int63()), Lo: uint64(src.Int63())}
	}
	out := make([]phash.Hash, n)
	for i := range out {
		h := base[i%k]
		for f := 0; f < src.Intn(4); f++ {
			h = h.FlipBits(src.Intn(128))
		}
		out[i] = h
	}
	return out
}

func BenchmarkDBSCANHashes1k(b *testing.B) {
	hashes := corpus(1000, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DBSCANHashes(hashes, PaperParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBSCANHashes10k(b *testing.B) {
	hashes := corpus(10000, 120)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DBSCANHashes(hashes, PaperParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBSCANBruteForce1k(b *testing.B) {
	hashes := corpus(1000, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DBSCAN(hashes, phash.NormDistance, PaperParams); err != nil {
			b.Fatal(err)
		}
	}
}
