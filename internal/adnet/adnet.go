// Package adnet simulates the low-tier ad networks at the centre of the
// paper's measurement: the 11 seed networks of Table 3 plus the three
// initially-unknown networks discovered in Section 4.4 (Ero Advertising,
// Yllix, Ad-Center).
//
// Each network reproduces the behaviours the pipeline must overcome:
//
//   - obfuscated publisher snippets whose only stable artefacts are the
//     invariant features the paper extracts (a JS variable name, a serve
//     URL path structure) — Section 3.1;
//   - many rotating script-hosting domains to evade ad blockers
//     (RevenueHits used 517, AdSterra 578 — Table 3);
//   - anti-automation checks on navigator.webdriver — Section 3.2;
//   - IP cloaking: Propeller and Clickadu serve only benign fills to
//     non-residential address space — Section 3.2;
//   - click-through indirection: clicks open a network click-tracker URL
//     that 302s to the advertiser (an SE campaign's TDS, or a benign
//     advertiser) — the middle hop of Figure 3's backtracking graph.
package adnet

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/adscript"
	"repro/internal/rng"
	"repro/internal/secamp"
	"repro/internal/urlx"
	"repro/internal/webtx"
)

// Spec is the static description of one ad network, calibrated to
// Table 3.
type Spec struct {
	Name string
	// Seed marks networks in the paper's initial seed list; the three
	// discovered networks are non-seed.
	Seed bool
	// ScriptDomainCount is how many domains host the network's JS
	// (Table 3 column 2).
	ScriptDomainCount int
	// SERate is the fraction of ad fills that lead to SE attacks
	// (Table 3 final column).
	SERate float64
	// MarketWeight controls how many publishers adopt the network,
	// proportional to Table 3's landing-page counts.
	MarketWeight float64
	// ChecksWebdriver guards ad delivery behind navigator.webdriver.
	ChecksWebdriver bool
	// ResidentialOnly cloaks SE fills away from non-residential IPs.
	ResidentialOnly bool
	// StaticDomains marks networks whose domains never rotate and are
	// consequently on ad-blocker filter lists (Clicksor in Section 4.4).
	StaticDomains bool
	// PathToken is the network-unique URL path component — the invariant
	// URL structure used for attribution.
	PathToken string
	// InvariantVar is the JS variable name reused across snippet
	// versions — the invariant source feature.
	InvariantVar string
}

// Specs lists all fourteen networks. Rates and domain counts follow
// Table 3; the three discovered networks get plausible values (the paper
// does not tabulate them).
var Specs = []Spec{
	{Name: "RevenueHits", Seed: true, ScriptDomainCount: 517, SERate: 0.1967, MarketWeight: 15635, PathToken: "rvh", InvariantVar: "_rhblk_q", ChecksWebdriver: true},
	{Name: "AdSterra", Seed: true, ScriptDomainCount: 578, SERate: 0.5062, MarketWeight: 15102, PathToken: "atg", InvariantVar: "atAsyncContainers"},
	{Name: "PopCash", Seed: true, ScriptDomainCount: 2, SERate: 0.6427, MarketWeight: 9734, PathToken: "pcash", InvariantVar: "_pcWidget"},
	{Name: "Propeller", Seed: true, ScriptDomainCount: 4, SERate: 0.4229, MarketWeight: 8206, PathToken: "prp", InvariantVar: "_pNativeZone", ResidentialOnly: true, ChecksWebdriver: true},
	{Name: "PopAds", Seed: true, ScriptDomainCount: 3, SERate: 0.1874, MarketWeight: 4658, PathToken: "pds", InvariantVar: "_pop_handler_v"},
	{Name: "Clickadu", Seed: true, ScriptDomainCount: 10, SERate: 0.3014, MarketWeight: 2814, PathToken: "cdu", InvariantVar: "_cduTag", ResidentialOnly: true},
	{Name: "AdCash", Seed: true, ScriptDomainCount: 14, SERate: 0.5624, MarketWeight: 1698, PathToken: "acsh", InvariantVar: "acZoneData"},
	{Name: "HilltopAds", Seed: true, ScriptDomainCount: 46, SERate: 0.0643, MarketWeight: 1198, PathToken: "hta", InvariantVar: "_htaOptions"},
	{Name: "PopMyAds", Seed: true, ScriptDomainCount: 1, SERate: 0.0863, MarketWeight: 1194, PathToken: "pma", InvariantVar: "pmaSettings"},
	{Name: "AdMaven", Seed: true, ScriptDomainCount: 39, SERate: 0.2460, MarketWeight: 496, PathToken: "amv", InvariantVar: "_mvnQueue", ChecksWebdriver: true},
	{Name: "Clicksor", Seed: true, ScriptDomainCount: 4, SERate: 0.0435, MarketWeight: 276, PathToken: "cks", InvariantVar: "clicksorParams", StaticDomains: true},
	// Discovered in Section 4.4 by analysing "unknown" SE attack logs.
	{Name: "EroAdvertising", Seed: false, ScriptDomainCount: 8, SERate: 0.45, MarketWeight: 900, PathToken: "eroa", InvariantVar: "_eroZoneCfg"},
	{Name: "Yllix", Seed: false, ScriptDomainCount: 5, SERate: 0.35, MarketWeight: 700, PathToken: "ylx", InvariantVar: "yllixPubData"},
	{Name: "AdCenter", Seed: false, ScriptDomainCount: 6, SERate: 0.40, MarketWeight: 600, PathToken: "adctr", InvariantVar: "_adcSlots"},
}

// SeedSpecs returns only the 11 seed networks, in Table 3 order.
func SeedSpecs() []Spec {
	var out []Spec
	for _, s := range Specs {
		if s.Seed {
			out = append(out, s)
		}
	}
	return out
}

// Fill is one ad destination choice.
type Fill struct {
	// URL is where the click redirect sends the browser.
	URL string
	// SE marks fills leading to SE attacks (ground truth).
	SE bool
	// CampaignID names the SE campaign for SE fills.
	CampaignID string
}

// Network is a live ad network on the synthetic web.
type Network struct {
	Spec          Spec
	ScriptDomains []string
	ClickDomains  []string

	obfKey byte
	src    *rng.Source

	mu        sync.Mutex
	campaigns []*secamp.Campaign
	benign    []*secamp.Advertiser
	families  []*secamp.BenignFamily
	clicks    int
	seFills   int
}

// New creates a network from its spec. The network is inert until
// Install.
func New(spec Spec, src *rng.Source) *Network {
	ns := src.Split("adnet/" + spec.Name)
	n := &Network{
		Spec:   spec,
		obfKey: byte(ns.IntRange(1, 250)),
		src:    ns,
	}
	lower := strings.ToLower(spec.Name)
	if spec.StaticDomains {
		// Static-domain networks use recognisable, filterable names.
		n.ScriptDomains = []string{
			lower + ".com", "static." + lower + ".com", "cdn." + lower + ".com", "js." + lower + ".com",
		}
		n.ScriptDomains = n.ScriptDomains[:spec.ScriptDomainCount]
		n.ClickDomains = []string{"click." + lower + ".com"}
		return n
	}
	for i := 0; i < spec.ScriptDomainCount; i++ {
		n.ScriptDomains = append(n.ScriptDomains, fmt.Sprintf("%s.%s", ns.Token(9), rng.Pick(ns, scriptTLDs)))
	}
	nClick := 1 + spec.ScriptDomainCount/50
	for i := 0; i < nClick; i++ {
		n.ClickDomains = append(n.ClickDomains, fmt.Sprintf("%s.%s", ns.Token(8), rng.Pick(ns, scriptTLDs)))
	}
	return n
}

var scriptTLDs = []string{"com", "net", "club", "online", "xyz", "bid", "pro", "site"}

// Name returns the network's name.
func (n *Network) Name() string { return n.Spec.Name }

// servePath is the network-invariant script path: /<tok>/v<NN>/serve.js.
func (n *Network) servePath() string {
	return fmt.Sprintf("/%s/v%d/serve.js", n.Spec.PathToken, n.src.IntRange(1, 9))
}

// clickPath is the network-invariant click-tracker path prefix.
func (n *Network) clickPath() string { return "/" + n.Spec.PathToken + "-c/go" }

// Patterns returns the invariant features an analyst derives for this
// network (Section 3.1): the serve/click URL structure and the snippet
// variable name.
func (n *Network) Patterns() []urlx.Pattern {
	return []urlx.Pattern{
		{Name: n.Spec.Name + "/serve-url", Kind: urlx.KindURL, PathGlob: "/" + n.Spec.PathToken + "/*/serve.js"},
		{Name: n.Spec.Name + "/click-url", Kind: urlx.KindURL, PathPrefix: "/" + n.Spec.PathToken + "-c/"},
		{Name: n.Spec.Name + "/snippet-var", Kind: urlx.KindSource, BodyToken: "let " + n.Spec.InvariantVar + " ="},
	}
}

// SearchSnippet returns the source fragment used to "reverse" the network
// into publisher lists on the source-code search engine.
func (n *Network) SearchSnippet() string { return "let " + n.Spec.InvariantVar + " =" }

// AddCampaign contracts an SE campaign to advertise through this network.
func (n *Network) AddCampaign(c *secamp.Campaign) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.campaigns = append(n.campaigns, c)
}

// AddAdvertiser adds a benign advertiser fill.
func (n *Network) AddAdvertiser(a *secamp.Advertiser) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.benign = append(n.benign, a)
}

// AddBenignFamily adds a benign multi-domain family (parked pages, adult
// stock pages, shortener interstitials) to the fill mix.
func (n *Network) AddBenignFamily(f *secamp.BenignFamily) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.families = append(n.families, f)
}

// SnippetCode builds the obfuscated inline snippet a publisher embeds.
// The snippet's only stable features are the invariant variable name and
// (at runtime) the serve-path URL structure; the script URL itself is
// encoded and rotates domains per publisher.
func (n *Network) SnippetCode(zone int) string {
	scriptDomain := rng.Pick(n.src, n.ScriptDomains)
	serveURL := fmt.Sprintf("http://%s%s?zid=%d", scriptDomain, n.servePath(), zone)
	enc := adscript.EncodeString(serveURL, n.obfKey)
	// Light per-snippet polymorphism around the invariant core.
	junk := n.src.Token(5)
	return fmt.Sprintf(
		"let %s = { z: %d, s: \"%s\" };\nlet _%s = dec(\"%s\", %d);\ndocument.loadScript(_%s);",
		n.Spec.InvariantVar, zone, junk, junk, enc, n.obfKey, junk)
}

// Install registers the network's script and click domains.
func (n *Network) Install(internet *webtx.Internet) {
	for _, d := range n.ScriptDomains {
		internet.Register(d, webtx.HandlerFunc(n.serveScript))
	}
	for _, d := range n.ClickDomains {
		internet.Register(d, webtx.HandlerFunc(n.serveClick))
	}
}

// serveScript returns the ad-delivery JS. The script installs a
// page-wide click listener that opens the network's click-tracker URL —
// the "transparent ad" behaviour of Section 2 — unless the
// anti-automation check trips.
func (n *Network) serveScript(req *webtx.Request) *webtx.Response {
	if !strings.HasSuffix(req.URL.Path, "/serve.js") || !strings.HasPrefix(req.URL.Path, "/"+n.Spec.PathToken+"/") {
		return webtx.NotFound()
	}
	zone := "0"
	for _, kv := range strings.Split(req.URL.Query, "&") {
		if v, ok := strings.CutPrefix(kv, "zid="); ok {
			zone = v
		}
	}
	clickDomain := rng.Pick(n.src, n.ClickDomains)
	clickBase := fmt.Sprintf("http://%s%s?z=%s", clickDomain, n.clickPath(), zone)
	enc := adscript.EncodeString(clickBase, n.obfKey)
	var b strings.Builder
	guard := ""
	if n.Spec.ChecksWebdriver {
		b.WriteString("if (navigator.webdriver) { let _x = 0; } else {\n")
		guard = "}"
	}
	fmt.Fprintf(&b, `
		document.addOverlay("__ovl_%s", 99999);
		let _n_%s = 0;
		window.addEventListener("click", function() {
			window.open(dec("%s", %d) + "&n=" + _n_%s);
			_n_%s = _n_%s + 1;
		});
	%s`, n.Spec.PathToken, n.Spec.PathToken, enc, n.obfKey, n.Spec.PathToken, n.Spec.PathToken, n.Spec.PathToken, guard)
	return webtx.Script(b.String())
}

// serveClick resolves a click-tracker hit to a fill and redirects. This
// is where IP cloaking happens.
func (n *Network) serveClick(req *webtx.Request) *webtx.Response {
	if !strings.HasPrefix(req.URL.Path, "/"+n.Spec.PathToken+"-c/") {
		return webtx.NotFound()
	}
	fill := n.ChooseFill(req.UserAgent, req.ClientIP)
	n.mu.Lock()
	n.clicks++
	if fill.SE {
		n.seFills++
	}
	n.mu.Unlock()
	return webtx.RedirectTo(fill.URL)
}

// ChooseFill picks the ad destination for one click. Exposed for direct
// use in unit tests and ablations.
func (n *Network) ChooseFill(ua webtx.UserAgent, ip webtx.IPClass) Fill {
	n.mu.Lock()
	defer n.mu.Unlock()
	cloaked := n.Spec.ResidentialOnly && ip != webtx.IPResidential
	if !cloaked && n.src.Bool(n.Spec.SERate) {
		// Pick an SE campaign compatible with the visitor's platform.
		var pool []*secamp.Campaign
		for _, c := range n.campaigns {
			if c.Targets(ua) {
				pool = append(pool, c)
			}
		}
		if len(pool) > 0 {
			c := rng.Pick(n.src, pool)
			return Fill{URL: c.EntryURL(), SE: true, CampaignID: c.ID}
		}
	}
	// Benign fill: mostly advertisers, occasionally a benign multi-domain
	// family page (parked domains, shortener interstitials, ...).
	if len(n.families) > 0 && n.src.Bool(0.12) {
		f := rng.Pick(n.src, n.families)
		return Fill{URL: f.URLFor(n.src.Intn(len(f.Domains)))}
	}
	if len(n.benign) > 0 {
		a := rng.Pick(n.src, n.benign)
		return Fill{URL: a.URL()}
	}
	return Fill{URL: "http://fallback-ad.com/"}
}

// Stats reports (clicks served, SE fills served).
func (n *Network) Stats() (clicks, seFills int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.clicks, n.seFills
}

// AllDomains returns every domain the network operates (ground truth for
// attribution evaluation).
func (n *Network) AllDomains() []string {
	out := append([]string(nil), n.ScriptDomains...)
	return append(out, n.ClickDomains...)
}

// ZoneFor derives a stable zone id for a publisher host.
func ZoneFor(host string) int {
	h := 0
	for i := 0; i < len(host); i++ {
		h = h*31 + int(host[i])
	}
	if h < 0 {
		h = -h
	}
	return 10000 + h%90000
}
