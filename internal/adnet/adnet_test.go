package adnet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/adscript"
	"repro/internal/rng"
	"repro/internal/secamp"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

func specByName(t *testing.T, name string) Spec {
	t.Helper()
	for _, s := range Specs {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no spec %q", name)
	return Spec{}
}

func newNetWithFills(t *testing.T, spec Spec) (*Network, *webtx.Internet, *secamp.Campaign) {
	t.Helper()
	src := rng.New(1)
	internet := webtx.NewInternet()
	clock := vclock.New()
	n := New(spec, src)
	n.Install(internet)
	camp := secamp.New("campX", secamp.FakeSoftware, 0,
		secamp.Config{RotationPeriod: time.Hour, Slots: 2, TTLFactor: 3, TDSCount: 1},
		clock, src, nil)
	camp.Install(internet)
	n.AddCampaign(camp)
	adv := secamp.NewAdvertiser("advX", src)
	adv.Install(internet)
	n.AddAdvertiser(adv)
	return n, internet, camp
}

func TestSpecsTableShape(t *testing.T) {
	if len(Specs) != 14 {
		t.Fatalf("specs = %d, want 11 seed + 3 discovered", len(Specs))
	}
	if len(SeedSpecs()) != 11 {
		t.Fatalf("seed specs = %d", len(SeedSpecs()))
	}
	seenTok := map[string]bool{}
	seenVar := map[string]bool{}
	for _, s := range Specs {
		if s.PathToken == "" || s.InvariantVar == "" {
			t.Fatalf("%s: missing invariants", s.Name)
		}
		if seenTok[s.PathToken] || seenVar[s.InvariantVar] {
			t.Fatalf("%s: invariant collision", s.Name)
		}
		seenTok[s.PathToken] = true
		seenVar[s.InvariantVar] = true
	}
	// Table 3 facts: RevenueHits and AdSterra use hundreds of domains;
	// PopCash/AdSterra/AdCash exceed 50% SE rate; Propeller and Clickadu
	// cloak on IP.
	if specByName(t, "RevenueHits").ScriptDomainCount != 517 || specByName(t, "AdSterra").ScriptDomainCount != 578 {
		t.Fatal("script domain counts drifted from Table 3")
	}
	over50 := 0
	for _, s := range SeedSpecs() {
		if s.SERate > 0.5 {
			over50++
		}
	}
	if over50 != 3 {
		t.Fatalf("%d seed networks above 50%% SE rate, Table 3 has 3", over50)
	}
	if !specByName(t, "Propeller").ResidentialOnly || !specByName(t, "Clickadu").ResidentialOnly {
		t.Fatal("cloaking networks not flagged")
	}
	if !specByName(t, "Clicksor").StaticDomains {
		t.Fatal("Clicksor should have static (blockable) domains")
	}
}

func TestDomainGeneration(t *testing.T) {
	src := rng.New(2)
	n := New(specByName(t, "AdSterra"), src)
	if len(n.ScriptDomains) != 578 {
		t.Fatalf("AdSterra domains = %d", len(n.ScriptDomains))
	}
	seen := map[string]bool{}
	for _, d := range n.ScriptDomains {
		if seen[d] {
			t.Fatalf("duplicate domain %s", d)
		}
		seen[d] = true
	}
	if len(n.ClickDomains) == 0 {
		t.Fatal("no click domains")
	}
	cks := New(specByName(t, "Clicksor"), src)
	for _, d := range cks.ScriptDomains {
		if !strings.Contains(d, "clicksor") {
			t.Fatalf("static network domain %q not recognisable", d)
		}
	}
}

func TestSnippetObfuscation(t *testing.T) {
	src := rng.New(3)
	n := New(specByName(t, "PopCash"), src)
	code := n.SnippetCode(12345)
	// The invariant survives obfuscation...
	if !strings.Contains(code, "let _pcWidget =") {
		t.Fatalf("snippet lost invariant: %s", code)
	}
	// ...but the script domain does not appear in cleartext.
	for _, d := range n.ScriptDomains {
		if strings.Contains(code, d) {
			t.Fatalf("script domain %s leaks in snippet", d)
		}
	}
	// The snippet must be valid adscript.
	if _, err := adscript.Parse(code); err != nil {
		t.Fatalf("snippet does not parse: %v\n%s", err, code)
	}
}

func TestSnippetsVaryButKeepInvariant(t *testing.T) {
	src := rng.New(4)
	n := New(specByName(t, "PopAds"), src)
	a, b := n.SnippetCode(1), n.SnippetCode(1)
	if a == b {
		t.Fatal("snippets not polymorphic")
	}
	for _, s := range []string{a, b} {
		if !strings.Contains(s, n.SearchSnippet()) {
			t.Fatal("invariant missing")
		}
	}
}

func TestServeScriptStructure(t *testing.T) {
	n, internet, _ := newNetWithFills(t, specByName(t, "PopCash"))
	raw := "http://" + n.ScriptDomains[0] + "/pcash/v3/serve.js?zid=777"
	resp, err := internet.RoundTrip(&webtx.Request{URL: urlx.MustParse(raw), UserAgent: webtx.UAChromeMac, ClientIP: webtx.IPResidential})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentType != webtx.ContentTypeJavaScript {
		t.Fatalf("content type = %s", resp.ContentType)
	}
	if _, err := adscript.Parse(resp.Body); err != nil {
		t.Fatalf("served script unparsable: %v", err)
	}
	if !strings.Contains(resp.Body, "addOverlay") || !strings.Contains(resp.Body, "window.open") {
		t.Fatalf("script lacks ad behaviour:\n%s", resp.Body)
	}
	// Wrong path 404s.
	bad := "http://" + n.ScriptDomains[0] + "/other/serve.js"
	resp, err = internet.RoundTrip(&webtx.Request{URL: urlx.MustParse(bad), UserAgent: webtx.UAChromeMac})
	if err != nil || resp.Status != webtx.StatusNotFound {
		t.Fatalf("bad path: %v %v", resp, err)
	}
}

func TestWebdriverGuardPresence(t *testing.T) {
	withGuard, internet, _ := newNetWithFills(t, specByName(t, "Propeller"))
	raw := "http://" + withGuard.ScriptDomains[0] + "/prp/v1/serve.js?zid=1"
	resp, _ := internet.RoundTrip(&webtx.Request{URL: urlx.MustParse(raw), UserAgent: webtx.UAChromeMac, ClientIP: webtx.IPResidential})
	if !strings.Contains(resp.Body, "navigator.webdriver") {
		t.Fatal("Propeller script lacks webdriver check")
	}
	noGuard, internet2, _ := newNetWithFills(t, specByName(t, "PopCash"))
	raw2 := "http://" + noGuard.ScriptDomains[0] + "/pcash/v1/serve.js?zid=1"
	resp2, _ := internet2.RoundTrip(&webtx.Request{URL: urlx.MustParse(raw2), UserAgent: webtx.UAChromeMac, ClientIP: webtx.IPResidential})
	if strings.Contains(resp2.Body, "navigator.webdriver") {
		t.Fatal("PopCash unexpectedly checks webdriver")
	}
}

func TestClickRedirectsAndSERate(t *testing.T) {
	n, internet, camp := newNetWithFills(t, specByName(t, "PopCash"))
	clickURL := "http://" + n.ClickDomains[0] + n.clickPath() + "?z=1"
	se := 0
	trials := 2000
	for i := 0; i < trials; i++ {
		resp, err := internet.RoundTrip(&webtx.Request{URL: urlx.MustParse(clickURL), UserAgent: webtx.UAChromeMac, ClientIP: webtx.IPResidential})
		if err != nil || !resp.Redirect() {
			t.Fatalf("click %d: %v %v", i, resp, err)
		}
		if strings.Contains(resp.Location, urlx.MustParse(camp.EntryURL()).Host) {
			se++
		}
	}
	rate := float64(se) / float64(trials)
	want := specByName(t, "PopCash").SERate
	if rate < want-0.05 || rate > want+0.05 {
		t.Fatalf("SE rate = %.3f, want ~%.3f", rate, want)
	}
	clicks, seFills := n.Stats()
	if clicks != trials || seFills != se {
		t.Fatalf("stats = %d/%d", clicks, seFills)
	}
}

func TestIPCloaking(t *testing.T) {
	n, internet, camp := newNetWithFills(t, specByName(t, "Propeller"))
	clickURL := "http://" + n.ClickDomains[0] + n.clickPath() + "?z=1"
	for i := 0; i < 500; i++ {
		resp, err := internet.RoundTrip(&webtx.Request{URL: urlx.MustParse(clickURL), UserAgent: webtx.UAChromeMac, ClientIP: webtx.IPDatacenter})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(resp.Location, urlx.MustParse(camp.EntryURL()).Host) {
			t.Fatal("SE fill served to datacenter IP despite cloaking")
		}
	}
	// Residential IPs do receive SE fills.
	got := false
	for i := 0; i < 500 && !got; i++ {
		resp, _ := internet.RoundTrip(&webtx.Request{URL: urlx.MustParse(clickURL), UserAgent: webtx.UAChromeMac, ClientIP: webtx.IPResidential})
		got = strings.Contains(resp.Location, urlx.MustParse(camp.EntryURL()).Host)
	}
	if !got {
		t.Fatal("no SE fill for residential IP in 500 clicks")
	}
}

func TestUATargetedFills(t *testing.T) {
	src := rng.New(5)
	internet := webtx.NewInternet()
	clock := vclock.New()
	n := New(specByName(t, "PopCash"), src)
	n.Install(internet)
	lottery := secamp.New("lot", secamp.Lottery, 0,
		secamp.Config{RotationPeriod: time.Hour, Slots: 1, TTLFactor: 3, TDSCount: 1}, clock, src, nil)
	lottery.Install(internet)
	n.AddCampaign(lottery)
	// Desktop UA: lottery (mobile-only) is the only campaign, so no SE
	// fills should ever be chosen.
	for i := 0; i < 300; i++ {
		f := n.ChooseFill(webtx.UAChromeMac, webtx.IPResidential)
		if f.SE {
			t.Fatal("mobile-only campaign served to desktop")
		}
	}
	se := false
	for i := 0; i < 300 && !se; i++ {
		se = n.ChooseFill(webtx.UAChromeAndroid, webtx.IPResidential).SE
	}
	if !se {
		t.Fatal("no SE fill for mobile UA")
	}
}

func TestBenignFamilyFills(t *testing.T) {
	src := rng.New(6)
	n := New(specByName(t, "HilltopAds"), src)
	fam := secamp.NewBenignFamily("parked", secamp.BenignParked, 6, src)
	n.AddBenignFamily(fam)
	adv := secamp.NewAdvertiser("adv", src)
	n.AddAdvertiser(adv)
	famHits := 0
	for i := 0; i < 1000; i++ {
		f := n.ChooseFill(webtx.UAChromeMac, webtx.IPResidential)
		if f.SE {
			continue
		}
		for _, d := range fam.Domains {
			if strings.Contains(f.URL, d) {
				famHits++
			}
		}
	}
	if famHits == 0 {
		t.Fatal("benign family never used as fill")
	}
}

func TestPatternsMatchOwnTraffic(t *testing.T) {
	src := rng.New(7)
	ps := urlx.NewPatternSet()
	var nets []*Network
	for _, spec := range Specs {
		n := New(spec, src)
		nets = append(nets, n)
		if spec.Seed {
			ps.Add(spec.Name, n.Patterns()...)
		}
	}
	for _, n := range nets {
		serveURL := urlx.MustParse("http://" + n.ScriptDomains[0] + n.servePath() + "?zid=5")
		clickURL := urlx.MustParse("http://" + n.ClickDomains[0] + n.clickPath() + "?z=5&n=0")
		snippet := n.SnippetCode(5)
		wantOwner := n.Spec.Name
		if !n.Spec.Seed {
			wantOwner = "" // unknown networks must NOT match seed patterns
		}
		if got := ps.MatchURL(serveURL); got != wantOwner {
			t.Errorf("%s serve URL attributed to %q", n.Spec.Name, got)
		}
		if got := ps.MatchURL(clickURL); got != wantOwner {
			t.Errorf("%s click URL attributed to %q", n.Spec.Name, got)
		}
		if got := ps.MatchSource(snippet); got != wantOwner {
			t.Errorf("%s snippet attributed to %q", n.Spec.Name, got)
		}
	}
}

func TestZoneForStable(t *testing.T) {
	a, b := ZoneFor("pub.com"), ZoneFor("pub.com")
	if a != b {
		t.Fatal("ZoneFor not deterministic")
	}
	if a < 10000 || a > 99999 {
		t.Fatalf("zone = %d", a)
	}
}

func TestAllDomains(t *testing.T) {
	n := New(specByName(t, "PopAds"), rng.New(8))
	all := n.AllDomains()
	if len(all) != len(n.ScriptDomains)+len(n.ClickDomains) {
		t.Fatalf("AllDomains = %d", len(all))
	}
}
