package adblock

import (
	"testing"

	"repro/internal/adnet"
	"repro/internal/rng"
	"repro/internal/urlx"
)

func TestRuleHostSuffix(t *testing.T) {
	r := Rule{HostSuffix: "clicksor.com"}
	if !r.Matches(urlx.MustParse("http://clicksor.com/x")) {
		t.Fatal("exact host not matched")
	}
	if !r.Matches(urlx.MustParse("http://cdn.clicksor.com/x")) {
		t.Fatal("subdomain not matched")
	}
	if r.Matches(urlx.MustParse("http://notclicksor.com/x")) {
		t.Fatal("label boundary violated")
	}
}

func TestRuleURLSubstring(t *testing.T) {
	r := Rule{URLSubstring: "/popunder/"}
	if !r.Matches(urlx.MustParse("http://x.com/popunder/a.js")) {
		t.Fatal("substring not matched")
	}
	if r.Matches(urlx.MustParse("http://x.com/other/a.js")) {
		t.Fatal("false match")
	}
}

func TestEmptyRuleMatchesNothing(t *testing.T) {
	if (Rule{}).Matches(urlx.MustParse("http://x.com/")) {
		t.Fatal("empty rule matched")
	}
}

func TestFilterHitsCounting(t *testing.T) {
	f := NewFilter(Rule{HostSuffix: "bad.com"})
	u := urlx.MustParse("http://bad.com/")
	for i := 0; i < 3; i++ {
		if !f.Match(u) {
			t.Fatal("no match")
		}
	}
	f.Match(urlx.MustParse("http://good.com/"))
	if f.Hits() != 3 {
		t.Fatalf("hits = %d", f.Hits())
	}
	f.Add(Rule{HostSuffix: "good.com"})
	if f.RuleCount() != 2 {
		t.Fatalf("rules = %d", f.RuleCount())
	}
}

// The paper's Section 4.4 result: the latest AdBlock Plus blocks only
// Clicksor because every other network hides behind rotating random
// domains.
func TestEasyListBlocksOnlyStaticNetworks(t *testing.T) {
	filter := EasyListLike()
	src := rng.New(1)
	blocked := map[string]bool{}
	for _, spec := range adnet.SeedSpecs() {
		n := adnet.New(spec, src)
		anyBlocked := false
		for _, d := range n.ScriptDomains {
			if filter.Match(urlx.MustParse("http://" + d + "/x/serve.js")) {
				anyBlocked = true
			}
		}
		blocked[spec.Name] = anyBlocked
	}
	if !blocked["Clicksor"] {
		t.Fatal("Clicksor not blocked")
	}
	for name, b := range blocked {
		if name != "Clicksor" && b {
			t.Fatalf("%s blocked despite rotating domains", name)
		}
	}
}
