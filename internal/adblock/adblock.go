// Package adblock simulates a filter-list ad blocker (AdBlock Plus with
// EasyList in the paper, Section 4.4). Filter lists block by known
// domains and URL fragments; the paper found that only Clicksor — whose
// serving domains are static and well-known — was blocked, while the ten
// other networks evaded the latest filter lists by rotating their
// script-hosting domains.
package adblock

import (
	"strings"
	"sync"

	"repro/internal/urlx"
)

// Rule is one filter entry.
type Rule struct {
	// HostSuffix blocks any URL whose host equals or ends with
	// "." + HostSuffix.
	HostSuffix string
	// URLSubstring blocks any URL containing the fragment.
	URLSubstring string
}

// Matches reports whether the rule blocks the URL.
func (r Rule) Matches(u urlx.URL) bool {
	if r.HostSuffix != "" {
		if u.Host == r.HostSuffix || strings.HasSuffix(u.Host, "."+r.HostSuffix) {
			return true
		}
	}
	if r.URLSubstring != "" && strings.Contains(u.String(), r.URLSubstring) {
		return true
	}
	return r.HostSuffix == "" && r.URLSubstring == "" && false
}

// Filter is a compiled filter list.
type Filter struct {
	mu    sync.RWMutex
	rules []Rule
	hits  int
}

// NewFilter builds a filter from rules.
func NewFilter(rules ...Rule) *Filter {
	return &Filter{rules: rules}
}

// EasyListLike returns the simulator's stand-in for a maintained public
// filter list: it knows the *brand-name* domains of the ad networks —
// exactly what a community list can enumerate — but cannot know the
// randomly rotating domains the other networks hide behind.
func EasyListLike() *Filter {
	return NewFilter(
		Rule{HostSuffix: "clicksor.com"},
		Rule{HostSuffix: "popads.net"},
		Rule{HostSuffix: "popcash.net"},
		Rule{HostSuffix: "revenuehits.com"},
		Rule{HostSuffix: "adsterra.com"},
		Rule{HostSuffix: "propellerads.com"},
		Rule{HostSuffix: "clickadu.com"},
		Rule{HostSuffix: "adcash.com"},
		Rule{HostSuffix: "hilltopads.net"},
		Rule{HostSuffix: "popmyads.com"},
		Rule{HostSuffix: "ad-maven.com"},
	)
}

// Add appends rules (filter-list update).
func (f *Filter) Add(rules ...Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, rules...)
}

// Match reports whether the URL is blocked, counting hits.
func (f *Filter) Match(u urlx.URL) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Matches(u) {
			f.hits++
			return true
		}
	}
	return false
}

// Hits returns how many fetches the filter has blocked.
func (f *Filter) Hits() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.hits
}

// RuleCount returns the number of rules.
func (f *Filter) RuleCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.rules)
}
