package phonebl

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vclock"
)

func TestExtractFormats(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"CALL NOW +1-800-555-0123", []string{"+1-800-555-0123"}},
		{"call 1 (844) 555-0199 today", []string{"+1-844-555-0199"}},
		{"dial 877.555.0100 immediately", []string{"+1-877-555-0100"}},
		{"support: 866-555-0142.", []string{"+1-866-555-0142"}},
		{"no numbers here", nil},
		{"two: +1-800-555-0001 and 1-888-555-0002", []string{"+1-800-555-0001", "+1-888-555-0002"}},
		{"dup: 800-555-0001 ... +1 800 555 0001", []string{"+1-800-555-0001"}},
	}
	for _, c := range cases {
		got := Extract(c.text)
		if len(got) != len(c.want) {
			t.Errorf("Extract(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Extract(%q)[%d] = %q, want %q", c.text, i, got[i], c.want[i])
			}
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"8005550123", "+1-800-555-0123"},
		{"18005550123", "+1-800-555-0123"},
		{"+1-800-555-0123", "+1-800-555-0123"},
		{"0123456789", ""},   // area code starts with 0
		{"1234567", ""},      // too short
		{"123456789012", ""}, // too long
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(a, b, c uint16) bool {
		digits := Normalize(
			string(rune('2'+a%8)) + pad(a%1000, 2) + pad(uint16(b%1000), 3) + pad(uint16(c%10000), 4))
		if digits == "" {
			return true
		}
		return Normalize(digits) == digits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func pad(v uint16, n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	return s
}

func TestBlacklistLifecycle(t *testing.T) {
	b := NewBlacklist()
	t0 := vclock.Epoch
	if !b.Add("+1-800-555-0123", "atk1.club", t0) {
		t.Fatal("first add reported as existing")
	}
	if b.Add("800-555-0123", "atk2.club", t0.Add(time.Hour)) {
		t.Fatal("re-add (different format) reported as new")
	}
	if !b.Contains("(800) 555 0123") || !b.Contains("+1-800-555-0123") {
		t.Fatal("format-insensitive lookup failed")
	}
	if b.Contains("+1-877-555-0000") {
		t.Fatal("unknown number listed")
	}
	entries := b.Entries()
	if len(entries) != 1 || b.Len() != 1 {
		t.Fatalf("entries = %v", entries)
	}
	e := entries[0]
	if e.Sightings != 2 || len(e.Sources) != 2 || !e.FirstSeen.Equal(t0) {
		t.Fatalf("entry = %+v", e)
	}
}

func TestBlacklistDuplicateSourceNotRepeated(t *testing.T) {
	b := NewBlacklist()
	b.Add("+1-800-555-0123", "same.club", vclock.Epoch)
	b.Add("+1-800-555-0123", "same.club", vclock.Epoch)
	if got := b.Entries()[0].Sources; len(got) != 1 {
		t.Fatalf("sources = %v", got)
	}
}

func TestHarvestText(t *testing.T) {
	b := NewBlacklist()
	text := `<p id="phone">CALL NOW +1-803-555-7712</p><title>Microsoft Support Alert +1-803-555-7712</title>`
	added := b.HarvestText(text, "atk.club", vclock.Epoch)
	if added != 1 || b.Len() != 1 {
		t.Fatalf("added = %d len = %d", added, b.Len())
	}
	if b.HarvestText("nothing", "x", vclock.Epoch) != 0 {
		t.Fatal("harvest of empty text added numbers")
	}
}

func TestEntriesSorted(t *testing.T) {
	b := NewBlacklist()
	b.Add("+1-900-555-0001", "a", vclock.Epoch)
	b.Add("+1-800-555-0001", "a", vclock.Epoch)
	e := b.Entries()
	if e[0].Number > e[1].Number {
		t.Fatal("entries unsorted")
	}
}
