// Package phonebl harvests scam telephone numbers from technical-support
// SE attack pages and maintains a phone blacklist — the defensive
// application the paper points out in Section 4.3: "Our system provides
// an automatic real-time way to collect these scam phone numbers and add
// to a blacklist to protect users." (Tech-support scams are
// cross-channel: the web page is only the lure; the monetisation happens
// over the phone, so phone blacklists complement URL blacklists.)
package phonebl

import (
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// nanpPattern matches North-American-style numbers in the forms scam
// pages render them: +1-800-555-0123, 1 (844) 555-0123, 877.555.0123.
var nanpPattern = regexp.MustCompile(
	`(?:\+?1[-. (]*)?(8\d{2}|\d{3})[-. )]+(\d{3})[-. ]+(\d{4})`)

// Extract returns the distinct phone numbers found in text, normalised
// to +1-NXX-NXX-XXXX form, in order of first appearance.
func Extract(text string) []string {
	matches := nanpPattern.FindAllStringSubmatch(text, -1)
	seen := map[string]bool{}
	var out []string
	for _, m := range matches {
		n := Normalize(m[1] + m[2] + m[3])
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// Normalize canonicalises a 10-digit NANP number; returns "" for
// implausible numbers (area code starting with 0/1).
func Normalize(digits string) string {
	var b strings.Builder
	for i := 0; i < len(digits); i++ {
		if digits[i] >= '0' && digits[i] <= '9' {
			b.WriteByte(digits[i])
		}
	}
	d := b.String()
	if len(d) == 11 && d[0] == '1' {
		d = d[1:]
	}
	if len(d) != 10 || d[0] < '2' {
		return ""
	}
	return "+1-" + d[0:3] + "-" + d[3:6] + "-" + d[6:10]
}

// Entry is one blacklisted number with provenance.
type Entry struct {
	Number    string
	FirstSeen time.Time
	// Sources are the attack hosts the number was harvested from.
	Sources []string
	// Sightings counts harvest events.
	Sightings int
}

// Blacklist accumulates harvested numbers. Safe for concurrent use.
type Blacklist struct {
	mu      sync.Mutex
	entries map[string]*Entry
}

// NewBlacklist returns an empty blacklist.
func NewBlacklist() *Blacklist {
	return &Blacklist{entries: map[string]*Entry{}}
}

// Add records a sighting of number on source at time t. Returns true if
// the number is new to the blacklist.
func (b *Blacklist) Add(number, source string, t time.Time) bool {
	n := Normalize(number)
	if n == "" {
		n = number // accept pre-normalised input verbatim
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[n]
	if !ok {
		e = &Entry{Number: n, FirstSeen: t}
		b.entries[n] = e
	}
	e.Sightings++
	for _, s := range e.Sources {
		if s == source {
			source = ""
			break
		}
	}
	if source != "" {
		e.Sources = append(e.Sources, source)
	}
	return !ok
}

// HarvestText extracts all numbers from text and records them.
func (b *Blacklist) HarvestText(text, source string, t time.Time) int {
	added := 0
	for _, n := range Extract(text) {
		if b.Add(n, source, t) {
			added++
		}
	}
	return added
}

// Contains reports whether a number (any common formatting) is listed.
func (b *Blacklist) Contains(number string) bool {
	n := Normalize(number)
	if n == "" {
		n = number
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.entries[n]
	return ok
}

// Len returns the number of distinct listed numbers.
func (b *Blacklist) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Entries returns a sorted snapshot.
func (b *Blacklist) Entries() []Entry {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Entry, 0, len(b.entries))
	for _, e := range b.entries {
		cp := *e
		cp.Sources = append([]string(nil), e.Sources...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}
