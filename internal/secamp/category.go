// Package secamp simulates the SE attack campaigns the pipeline is built
// to discover and track, plus the benign look-alike page families the
// paper's cluster triage separates out (Section 4.3).
//
// A campaign in the paper's terms is a set of SEACMA ads that point to
// the same SE attack content (Definition 2): visually near-identical
// landing pages hosted on frequently rotating throw-away domains behind a
// longer-lived upstream "milkable" URL (Section 3.5). This package
// implements those dynamics: per-campaign visual templates, lazy
// time-driven attack-domain rotation with expiry, traffic-distribution
// (TDS) upstream hosts, page-locking scripts, notification lures, and
// polymorphic file payloads.
package secamp

import "fmt"

// Category is one of the six SE-attack categories the paper reports in
// Tables 1 and 4.
type Category int

const (
	// FakeSoftware advertises fake Flash/Java updates and media players.
	FakeSoftware Category = iota
	// Scareware frightens the user into installing a "cleaner".
	Scareware
	// TechSupport shows fake system-lock pages with a scam phone number.
	TechSupport
	// Lottery promises prizes in exchange for personal details
	// (mobile-only in the paper's observations).
	Lottery
	// Notifications lures the user into granting browser push-notification
	// permission.
	Notifications
	// Registration drives sign-ups on scam media/streaming/dating sites
	// via fake video players.
	Registration

	numCategories
)

// Key returns the stable lowercase identifier used across the repository
// (GSB profiles, report rows).
func (c Category) Key() string {
	switch c {
	case FakeSoftware:
		return "fake-software"
	case Scareware:
		return "scareware"
	case TechSupport:
		return "tech-support"
	case Lottery:
		return "lottery"
	case Notifications:
		return "chrome-notifications"
	case Registration:
		return "registration"
	default:
		return fmt.Sprintf("category-%d", int(c))
	}
}

// DisplayName returns the Table 1 row label.
func (c Category) DisplayName() string {
	switch c {
	case FakeSoftware:
		return "Fake Software"
	case Scareware:
		return "Scareware"
	case TechSupport:
		return "Technical Support"
	case Lottery:
		return "Lottery/Gift"
	case Notifications:
		return "Chrome Notifications"
	case Registration:
		return "Registration"
	default:
		return c.Key()
	}
}

// AllCategories lists the six categories in Table 1 row order.
var AllCategories = []Category{FakeSoftware, Registration, Lottery, Notifications, Scareware, TechSupport}

// PaperCampaignCounts is the number of campaigns per category the paper
// discovered (Table 1, "# SE Campaigns"); the default world generates
// exactly these.
var PaperCampaignCounts = map[Category]int{
	FakeSoftware:  52,
	Registration:  36,
	Lottery:       9,
	Notifications: 3,
	Scareware:     5,
	TechSupport:   3,
}

// OffersDownload reports whether landing pages of this category serve
// file downloads when interacted with (Section 4.5: downloads come from
// Fake Software and Scareware).
func (c Category) OffersDownload() bool {
	return c == FakeSoftware || c == Scareware
}

// MobileOnly reports whether this category targets only mobile UAs (the
// paper observed Lottery attacks exclusively on mobile).
func (c Category) MobileOnly() bool { return c == Lottery }

// DesktopOnly reports whether this category targets only desktop UAs.
func (c Category) DesktopOnly() bool {
	return c == FakeSoftware || c == Scareware || c == TechSupport
}
