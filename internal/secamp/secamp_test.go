package secamp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/phash"
	"repro/internal/rng"
	"repro/internal/screenshot"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

type recordedDomain struct {
	campaign string
	cat      Category
	host     string
	born     time.Time
}

type testRecorder struct{ domains []recordedDomain }

func (r *testRecorder) RecordAttackDomain(id string, cat Category, host string, born time.Time) {
	r.domains = append(r.domains, recordedDomain{id, cat, host, born})
}

func newTestCampaign(t *testing.T, cat Category) (*Campaign, *webtx.Internet, *vclock.Clock, *testRecorder) {
	t.Helper()
	clock := vclock.New()
	internet := webtx.NewInternet()
	rec := &testRecorder{}
	cfg := Config{RotationPeriod: time.Hour, Slots: 2, TTLFactor: 3, TDSCount: 2}
	c := New("camp-1", cat, 0, cfg, clock, rng.New(42), rec)
	c.Install(internet)
	return c, internet, clock, rec
}

func get(t *testing.T, internet *webtx.Internet, raw string, ua webtx.UserAgent, at time.Time) *webtx.Response {
	t.Helper()
	resp, err := internet.RoundTrip(&webtx.Request{
		URL: urlx.MustParse(raw), UserAgent: ua, ClientIP: webtx.IPResidential, Time: at,
	})
	if err != nil {
		t.Fatalf("GET %s: %v", raw, err)
	}
	return resp
}

func TestCategoryKeysAndNames(t *testing.T) {
	if len(AllCategories) != 6 {
		t.Fatalf("categories = %d", len(AllCategories))
	}
	seen := map[string]bool{}
	for _, c := range AllCategories {
		if c.Key() == "" || c.DisplayName() == "" {
			t.Fatalf("category %d incomplete", c)
		}
		if seen[c.Key()] {
			t.Fatalf("duplicate key %q", c.Key())
		}
		seen[c.Key()] = true
	}
	total := 0
	for _, n := range PaperCampaignCounts {
		total += n
	}
	if total != 108 {
		t.Fatalf("paper campaign total = %d, want 108", total)
	}
}

func TestTDSRedirectsToAttackDomain(t *testing.T) {
	c, internet, clock, rec := newTestCampaign(t, FakeSoftware)
	resp := get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
	if !resp.Redirect() {
		t.Fatalf("TDS response = %+v", resp)
	}
	land := urlx.MustParse(resp.Location)
	if land.Host == urlx.MustParse(c.EntryURL()).Host {
		t.Fatal("redirect stayed on TDS host")
	}
	if len(rec.domains) != 1 || rec.domains[0].host != land.Host {
		t.Fatalf("recorder = %+v", rec.domains)
	}
	// The attack page must resolve and serve a document.
	page := get(t, internet, resp.Location, webtx.UAChromeMac, clock.Now())
	if page.Status != webtx.StatusOK || page.Doc == nil {
		t.Fatalf("attack page = %+v", page)
	}
	if !strings.Contains(page.Body, "install") {
		t.Fatal("fake-software page has no install button")
	}
}

func TestRotationMintsNewDomains(t *testing.T) {
	c, internet, clock, _ := newTestCampaign(t, FakeSoftware)
	hosts := map[string]bool{}
	for i := 0; i < 12; i++ {
		resp := get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
		hosts[urlx.MustParse(resp.Location).Host] = true
		clock.Advance(time.Hour)
	}
	if len(hosts) < 6 {
		t.Fatalf("only %d distinct attack hosts over 12 rotation periods", len(hosts))
	}
	_, minted, _ := c.Stats()
	if minted != len(hosts) {
		t.Fatalf("minted=%d, hosts seen=%d", minted, len(hosts))
	}
}

func TestSameEpochSameDomainPool(t *testing.T) {
	c, internet, clock, _ := newTestCampaign(t, FakeSoftware)
	hosts := map[string]bool{}
	for i := 0; i < 40; i++ {
		resp := get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
		hosts[urlx.MustParse(resp.Location).Host] = true
	}
	if len(hosts) > c.Cfg.Slots {
		t.Fatalf("%d hosts within one epoch, want <= %d slots", len(hosts), c.Cfg.Slots)
	}
}

func TestDomainExpiry(t *testing.T) {
	c, internet, clock, _ := newTestCampaign(t, FakeSoftware)
	resp := get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
	landURL := resp.Location
	// Within TTL: alive.
	page := get(t, internet, landURL, webtx.UAChromeMac, clock.Now())
	if page.Status != webtx.StatusOK {
		t.Fatalf("fresh domain status = %d", page.Status)
	}
	// After TTL (3 x 1h): gone.
	clock.Advance(5 * time.Hour)
	page = get(t, internet, landURL, webtx.UAChromeMac, clock.Now())
	if page.Status != webtx.StatusGone {
		t.Fatalf("expired domain status = %d", page.Status)
	}
}

func TestStableLandingPathPattern(t *testing.T) {
	// Figure 4: rotating domains keep the same URL pattern.
	c, internet, clock, _ := newTestCampaign(t, FakeSoftware)
	var paths []string
	for i := 0; i < 5; i++ {
		resp := get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
		paths = append(paths, urlx.MustParse(resp.Location).Path)
		clock.Advance(2 * time.Hour)
	}
	for _, p := range paths[1:] {
		if p[:len(c.landPrefix)] != c.landPrefix {
			t.Fatalf("path pattern changed: %v", paths)
		}
	}
}

func TestUATargeting(t *testing.T) {
	lottery, internet, clock, _ := newTestCampaign(t, Lottery)
	// Desktop UA bounces (lottery is mobile-only).
	resp := get(t, internet, lottery.EntryURL(), webtx.UAChromeMac, clock.Now())
	if resp.Redirect() {
		t.Fatal("lottery served to desktop UA")
	}
	resp = get(t, internet, lottery.EntryURL(), webtx.UAChromeAndroid, clock.Now())
	if !resp.Redirect() {
		t.Fatal("lottery not served to mobile UA")
	}
	if !lottery.Targets(webtx.UAChromeAndroid) || lottery.Targets(webtx.UAIE10Win) {
		t.Fatal("Targets inconsistent")
	}
}

func TestDownloadsArePolymorphic(t *testing.T) {
	c, internet, clock, _ := newTestCampaign(t, FakeSoftware)
	resp := get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
	host := urlx.MustParse(resp.Location).Host
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		dl := get(t, internet, "http://"+host+"/dl/x.bin", webtx.UAChromeMac, clock.Now())
		if dl.Download == nil {
			t.Fatalf("no download payload: %+v", dl)
		}
		if dl.Download.CampaignID != "camp-1" || dl.Download.SHA256 == "" {
			t.Fatalf("download = %+v", dl.Download)
		}
		if seen[dl.Download.SHA256] {
			t.Fatal("duplicate hash — binaries must be polymorphic")
		}
		seen[dl.Download.SHA256] = true
	}
}

func TestVisualClusteringProperties(t *testing.T) {
	// Same campaign, different domains -> near hashes; different
	// campaigns -> far hashes. This is the core invariant campaign
	// discovery rests on.
	src := rng.New(7)
	clock := vclock.New()
	cfg := Config{RotationPeriod: time.Hour, Slots: 2, TTLFactor: 3, TDSCount: 1}
	hashFor := func(c *Campaign, host string) phash.Hash {
		doc := c.Template.BuildDoc("http://"+host+"/l/index.html", hashHost(host))
		img := screenshot.Render(doc, screenshot.Options{NoiseAmp: 2, NoiseSeed: hashHost(host)})
		return phash.DHash(img)
	}
	var campaigns []*Campaign
	for i := 0; i < 6; i++ {
		campaigns = append(campaigns, New(
			"c"+string(rune('A'+i)), FakeSoftware, i, cfg, clock, src, nil))
	}
	// Intra-campaign: 4 domains each.
	for _, c := range campaigns {
		base := hashFor(c, "aaa1.club")
		for _, h := range []string{"bbb2.club", "ccc3.xyz", "ddd4.site"} {
			if d := phash.Distance(base, hashFor(c, h)); d > 12 {
				t.Fatalf("campaign %s: intra distance %d > 12", c.ID, d)
			}
		}
	}
	// Inter-campaign.
	for i := 0; i < len(campaigns); i++ {
		for j := i + 1; j < len(campaigns); j++ {
			a := hashFor(campaigns[i], "same-host.club")
			b := hashFor(campaigns[j], "same-host.club")
			if d := phash.Distance(a, b); d <= 12 {
				t.Fatalf("campaigns %s vs %s too close: %d bits", campaigns[i].ID, campaigns[j].ID, d)
			}
		}
	}
}

func TestCategoryPagesCarryBehaviourScripts(t *testing.T) {
	cases := []struct {
		cat  Category
		ua   webtx.UserAgent
		want string
	}{
		{FakeSoftware, webtx.UAChromeMac, "document.download"},
		{Scareware, webtx.UAIE10Win, "window.onbeforeunload"},
		{TechSupport, webtx.UAEdge12Win, "window.alert"},
		{Lottery, webtx.UAChromeAndroid, `document.listen("claim"`},
		{Notifications, webtx.UAChromeMac, "notification.request"},
		{Registration, webtx.UAChromeMac, "window.open"},
	}
	for _, cse := range cases {
		c, internet, clock, _ := newTestCampaign(t, cse.cat)
		resp := get(t, internet, c.EntryURL(), cse.ua, clock.Now())
		if !resp.Redirect() {
			t.Fatalf("%v: no redirect for %s", cse.cat, cse.ua.Name)
		}
		page := get(t, internet, resp.Location, cse.ua, clock.Now())
		if page.Doc == nil || len(page.Doc.Scripts) == 0 {
			t.Fatalf("%v: no scripts", cse.cat)
		}
		found := false
		for _, s := range page.Doc.Scripts {
			if strings.Contains(s.Code, cse.want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v: script missing %q", cse.cat, cse.want)
		}
	}
}

func TestTechSupportHasPhoneNumber(t *testing.T) {
	c, _, _, _ := newTestCampaign(t, TechSupport)
	if c.Template.PhoneNumber == "" {
		t.Fatal("no phone number")
	}
	doc := c.Template.BuildDoc("http://x.club/l", 1)
	if !strings.Contains(doc.Serialize(), c.Template.PhoneNumber) {
		t.Fatal("phone number not on page")
	}
}

func TestRegistrationCustomerSite(t *testing.T) {
	c, internet, _, _ := newTestCampaign(t, Registration)
	host := c.CustomerHost()
	if host == "" {
		t.Fatal("no customer host")
	}
	InstallCustomerSite(internet, host)
	InstallCustomerSite(internet, host) // idempotent
	if !internet.Registered(host) {
		t.Fatal("customer site not registered")
	}
	nonReg := New("x", FakeSoftware, 0, Config{RotationPeriod: time.Hour, Slots: 1, TTLFactor: 1, TDSCount: 1}, vclock.New(), rng.New(1), nil)
	if nonReg.CustomerHost() != "" {
		t.Fatal("non-registration campaign has customer host")
	}
}

func TestBenignFamilyClusters(t *testing.T) {
	src := rng.New(11)
	internet := webtx.NewInternet()
	fam := NewBenignFamily("parked-1", BenignParked, 8, src)
	fam.Install(internet)
	if len(fam.Domains) != 8 {
		t.Fatalf("domains = %d", len(fam.Domains))
	}
	// All domains serve visually near-identical pages.
	var base phash.Hash
	for i, d := range fam.Domains {
		resp := get(t, internet, "http://"+d+"/", webtx.UAChromeMac, vclock.Epoch)
		if resp.Doc == nil {
			t.Fatalf("no doc from %s", d)
		}
		h := phash.DHash(screenshot.Render(resp.Doc, screenshot.Options{}))
		if i == 0 {
			base = h
			continue
		}
		if dd := phash.Distance(base, h); dd > 12 {
			t.Fatalf("family page distance %d", dd)
		}
	}
}

func TestBenignFamiliesDistinct(t *testing.T) {
	src := rng.New(12)
	kinds := []BenignKind{BenignParked, BenignAdultStock, BenignShortener, BenignAdvertiser}
	var hashes []phash.Hash
	for i, k := range kinds {
		f := NewBenignFamily("fam"+string(rune('0'+i)), k, 2, src)
		doc := f.buildDoc("http://" + f.Domains[0] + "/")
		hashes = append(hashes, phash.DHash(screenshot.Render(doc, screenshot.Options{})))
	}
	for i := 0; i < len(hashes); i++ {
		for j := i + 1; j < len(hashes); j++ {
			if d := phash.Distance(hashes[i], hashes[j]); d <= 12 {
				t.Fatalf("kinds %v vs %v too close: %d", kinds[i], kinds[j], d)
			}
		}
	}
}

func TestBenignKindString(t *testing.T) {
	for _, k := range []BenignKind{BenignAdvertiser, BenignParked, BenignAdultStock, BenignShortener, BenignSpurious} {
		if k.String() == "" || strings.HasPrefix(k.String(), "BenignKind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestAdvertiser(t *testing.T) {
	internet := webtx.NewInternet()
	a := NewAdvertiser("adv-1", rng.New(13))
	a.Install(internet)
	resp := get(t, internet, a.URL(), webtx.UAChromeMac, vclock.Epoch)
	if resp.Status != webtx.StatusOK || resp.Doc == nil {
		t.Fatalf("advertiser page = %+v", resp)
	}
}

func TestOffTargetTDSDoesNotMint(t *testing.T) {
	c, internet, clock, rec := newTestCampaign(t, Lottery)
	get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now()) // desktop on mobile-only
	if len(rec.domains) != 0 {
		t.Fatalf("off-target visit minted %v", rec.domains)
	}
	sessions, minted, _ := c.Stats()
	if sessions != 0 || minted != 0 {
		t.Fatalf("stats = %d sessions %d minted", sessions, minted)
	}
}
