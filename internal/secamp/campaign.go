package secamp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/adscript"
	"repro/internal/dom"
	"repro/internal/rng"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

// Recorder receives ground-truth notifications from the world side: every
// attack domain a campaign mints. The world generator implements it to
// feed the GSB simulator and the evaluation oracle. The measurement
// pipeline never sees this interface.
type Recorder interface {
	RecordAttackDomain(campaignID string, cat Category, host string, born time.Time)
}

// Config tunes one campaign's dynamics.
type Config struct {
	// RotationPeriod is how often the campaign moves to fresh attack
	// domains (the paper observed lifetimes of hours to a few days).
	RotationPeriod time.Duration
	// Slots is how many attack domains are active in parallel.
	Slots int
	// TTLFactor: a minted domain answers for TTLFactor*RotationPeriod
	// after its nominal birth, then serves Gone ("after an hour, this URL
	// became unreachable").
	TTLFactor int
	// TDSCount is the number of upstream traffic-distribution hosts
	// (milkable URLs) the campaign operates.
	TDSCount int
	// Lifetime, when positive, retires the campaign that long after
	// Install: the TDS hosts stop resolving fresh attack domains and
	// serve Gone. Real campaigns are ephemeral; retired ones are what the
	// milkable-URL verification pass weeds out.
	Lifetime time.Duration
}

// DefaultConfig draws a plausible configuration from src.
func DefaultConfig(src *rng.Source) Config {
	return Config{
		RotationPeriod: time.Duration(src.IntRange(45, 240)) * time.Minute,
		Slots:          src.IntRange(2, 4),
		TTLFactor:      3,
		TDSCount:       src.IntRange(1, 2),
	}
}

// Campaign is one live SE attack campaign on the synthetic web.
type Campaign struct {
	ID       string
	Category Category
	Template Template
	Cfg      Config

	// TDSHosts are the campaign's upstream (milkable) hosts; TDSPath is
	// the entry path on each.
	TDSHosts []string
	TDSPath  string

	landPrefix string // constant landing-path prefix (Figure 4's stable URL pattern)
	tld        string
	dlKey      byte // obfuscation key for in-page URLs

	clock    *vclock.Clock
	src      *rng.Source
	internet *webtx.Internet
	recorder Recorder
	start    time.Time

	mu       sync.Mutex
	minted   map[string]mintInfo // attack host -> info
	pages    map[string]attackPage // attack host -> cached landing page
	fileSeq  int
	sessions int // TDS hits, for load stats
}

type mintInfo struct {
	idx  int
	slot int
	born time.Time
}

// attackPage is a cached landing-page response, valid for one path on
// one attack host. The page content is a pure function of (host, path)
// — templates, behaviour scripts, and download tokens all derive from
// host-keyed splits — so the document is built once, sealed, and the
// same Response served to every session until the domain's TTL burns
// it. Sealing lets the browser side memoize the render fingerprint and
// serialization instead of re-walking the tree per fetch.
type attackPage struct {
	path string
	resp *webtx.Response
}

// New creates a campaign. index distinguishes same-category campaigns for
// template derivation. The campaign is inert until Install is called.
func New(id string, cat Category, index int, cfg Config, clock *vclock.Clock, src *rng.Source, rec Recorder) *Campaign {
	csrc := src.Split("campaign/" + id)
	c := &Campaign{
		ID:         id,
		Category:   cat,
		Template:   NewTemplate(cat, index, csrc.Split("template")),
		Cfg:        cfg,
		TDSPath:    "/track/" + csrc.Token(6),
		landPrefix: "/" + csrc.Token(2) + fmt.Sprintf("%d/", csrc.Intn(10)),
		tld:        rng.Pick(csrc, []string{"club", "online", "xyz", "site", "top", "icu", "win", "stream"}),
		dlKey:      byte(csrc.IntRange(1, 250)),
		clock:      clock,
		src:        csrc,
		recorder:   rec,
		minted:     map[string]mintInfo{},
		pages:      map[string]attackPage{},
	}
	for i := 0; i < cfg.TDSCount; i++ {
		c.TDSHosts = append(c.TDSHosts, fmt.Sprintf("%s%d.info", csrc.Token(7), csrc.Intn(1000)))
	}
	return c
}

// Install registers the campaign's TDS hosts on the internet and records
// the start of its rotation timeline.
func (c *Campaign) Install(internet *webtx.Internet) {
	c.internet = internet
	c.start = c.clock.Now()
	for _, h := range c.TDSHosts {
		internet.Register(h, webtx.HandlerFunc(c.serveTDS))
	}
}

// TDSURLs returns the campaign's upstream entry URLs — what a backtracking
// graph exposes as candidate milkable URLs.
func (c *Campaign) TDSURLs() []string {
	out := make([]string, len(c.TDSHosts))
	for i, h := range c.TDSHosts {
		out[i] = "http://" + h + c.TDSPath
	}
	return out
}

// EntryURL returns the primary TDS URL; ad networks send clicks here.
func (c *Campaign) EntryURL() string { return c.TDSURLs()[0] }

// Targets reports whether the campaign serves content to the given UA
// (the paper's campaigns are platform-targeted; Section 3.2, 4.3).
func (c *Campaign) Targets(ua webtx.UserAgent) bool {
	if c.Category.MobileOnly() {
		return ua.Mobile
	}
	if c.Category.DesktopOnly() {
		return !ua.Mobile
	}
	return true
}

// rotationIndex returns the current rotation epoch at time t.
func (c *Campaign) rotationIndex(t time.Time) int {
	if t.Before(c.start) {
		return 0
	}
	return int(t.Sub(c.start) / c.Cfg.RotationPeriod)
}

// attackHost deterministically names the attack domain for (idx, slot).
func (c *Campaign) attackHost(idx, slot int) string {
	h := c.src.Split(fmt.Sprintf("host/%d/%d", idx, slot))
	return fmt.Sprintf("%s%d.%s", h.Token(8), h.Intn(100), c.tld)
}

// serveTDS is the upstream handler: it mints (or reuses) the current
// attack domain and redirects there. Re-visiting the same TDS URL later
// yields a fresh, not-yet-blacklisted attack domain — the "milkable"
// behaviour of Section 3.5.
func (c *Campaign) serveTDS(req *webtx.Request) *webtx.Response {
	now := req.Time
	if now.IsZero() {
		now = c.clock.Now()
	}
	if c.Cfg.Lifetime > 0 && now.After(c.start.Add(c.Cfg.Lifetime)) {
		return webtx.Gone() // campaign retired
	}
	if !c.Targets(req.UserAgent) {
		// Off-target traffic bounces to an empty page on the TDS itself.
		return webtx.HTMLPage("<html></html>")
	}
	idx := c.rotationIndex(now)
	// The slot draw is keyed to the request (epoch, UA, client class,
	// virtual second) rather than pulled from the shared sequential
	// stream: concurrent same-instant TDS hits must not perturb each
	// other's domain choice, or milking with more than one worker would
	// be schedule-dependent. The timestamp in the key keeps the draw
	// varying across a crawl (whose fetches are paced on the virtual
	// clock) the way the old per-request draw did.
	slot := c.src.Split(fmt.Sprintf("slot/%d/%s/%d/%d", idx, req.UserAgent.Name, req.ClientIP, now.Unix())).Intn(c.Cfg.Slots)
	host := c.mint(idx, slot, now)

	c.mu.Lock()
	c.sessions++
	c.mu.Unlock()

	land := fmt.Sprintf("http://%s%s%s?v=%d", host, c.landPrefix, "index.html", idx%7)
	return webtx.RedirectTo(land)
}

// mint ensures the attack domain for (idx, slot) exists and returns it.
func (c *Campaign) mint(idx, slot int, now time.Time) string {
	host := c.attackHost(idx, slot)
	c.mu.Lock()
	info, ok := c.minted[host]
	if !ok {
		born := c.start.Add(time.Duration(idx) * c.Cfg.RotationPeriod)
		if born.After(now) {
			born = now
		}
		info = mintInfo{idx: idx, slot: slot, born: born}
		c.minted[host] = info
	}
	c.mu.Unlock()
	if !ok {
		c.internet.Register(host, webtx.HandlerFunc(c.serveAttack))
		if c.recorder != nil {
			// The domain's life begins at its rotation epoch, not at the
			// first request that happens to reach it: blacklists race
			// against the rotation schedule, not against our crawler.
			c.recorder.RecordAttackDomain(c.ID, c.Category, host, info.born)
		}
	}
	return host
}

// serveAttack serves the SE landing page, its downloads, and expiry.
func (c *Campaign) serveAttack(req *webtx.Request) *webtx.Response {
	now := req.Time
	if now.IsZero() {
		now = c.clock.Now()
	}
	host := req.URL.Host
	c.mu.Lock()
	info, ok := c.minted[host]
	if !ok {
		c.mu.Unlock()
		return webtx.NotFound()
	}
	ttl := time.Duration(c.Cfg.TTLFactor) * c.Cfg.RotationPeriod
	if now.After(info.born.Add(ttl)) {
		// Throw-away domain burned; drop its cached page too — the host
		// never serves content again.
		delete(c.pages, host)
		c.mu.Unlock()
		return webtx.Gone()
	}
	if len(req.URL.Path) >= 4 && req.URL.Path[:4] == "/dl/" {
		c.mu.Unlock()
		return c.serveDownload()
	}
	if page, hit := c.pages[host]; hit && page.path == req.URL.Path {
		c.mu.Unlock()
		return page.resp
	}
	c.mu.Unlock()

	// Build outside the lock: BuildDoc walks template geometry and is the
	// expensive part. The page is a pure function of (host, path), so a
	// concurrent double build produces an identical document and either
	// copy may win the store below.
	pageURL := "http://" + host + req.URL.Path
	doc := c.Template.BuildDoc(pageURL, hashHost(host))
	c.attachBehaviour(doc, host)
	resp := webtx.DocumentPage(doc.Seal())
	c.mu.Lock()
	c.pages[host] = attackPage{path: req.URL.Path, resp: resp}
	c.mu.Unlock()
	return resp
}

// serveDownload mints a fresh polymorphic binary (Section 4.5: the
// binaries are highly polymorphic; almost every download has a new hash).
func (c *Campaign) serveDownload() *webtx.Response {
	c.mu.Lock()
	c.fileSeq++
	seq := c.fileSeq
	c.mu.Unlock()
	h := c.src.Split(fmt.Sprintf("file/%d", seq))
	format := "pe"
	if c.Category == FakeSoftware && h.Bool(0.35) {
		format = "dmg"
	}
	return &webtx.Response{
		Status:      webtx.StatusOK,
		ContentType: webtx.ContentTypeBinary,
		Download: &webtx.Download{
			Filename:   c.Template.Brand + "-setup." + format,
			SHA256:     h.HexToken(64),
			Size:       200000 + h.Intn(3000000),
			Format:     format,
			CampaignID: c.ID,
		},
	}
}

// attachBehaviour wires the landing page's scripts: page locking,
// download listeners, notification lures.
func (c *Campaign) attachBehaviour(doc *dom.Document, host string) {
	var code string
	// Download-URL tokens derive from the host so that rebuilding the same
	// page — in any order, on any goroutine — embeds the same URL.
	switch c.Category {
	case FakeSoftware:
		dl := adscript.EncodeString("http://"+host+"/dl/"+c.src.Split("dl/"+host).Token(6)+".bin", c.dlKey)
		code = fmt.Sprintf(`
			document.listen("install", "click", function() {
				document.download(dec("%s", %d));
			});
		`, dl, c.dlKey)
	case Scareware:
		dl := adscript.EncodeString("http://"+host+"/dl/"+c.src.Split("dl/"+host).Token(6)+".bin", c.dlKey)
		code = fmt.Sprintf(`
			window.onbeforeunload(function() { return "Your PC is at risk!"; });
			window.alert("WARNING! %s detected 12 threats on your system.");
			document.listen("install", "click", function() {
				document.download(dec("%s", %d));
			});
		`, c.Template.Brand, dl, c.dlKey)
	case TechSupport:
		// Aggressive page locking: modal loop + beforeunload (Section 3.2
		// "Implementation Challenges").
		code = fmt.Sprintf(`
			window.onbeforeunload(function() { return "locked"; });
			let i = 0;
			while (i < 3) {
				window.alert("Windows Security Alert! Call %s immediately.");
				i = i + 1;
			}
		`, c.Template.PhoneNumber)
	case Lottery:
		code = `
			document.listen("claim", "click", function() {
				window.alert("Enter your details to claim the prize!");
			});
		`
	case Notifications:
		code = `
			notification.request();
			document.listen("allow", "click", function() { notification.request(); });
			document.listen("deny", "click", function() { notification.request(); });
		`
	case Registration:
		cust := adscript.EncodeString("http://www."+sanitizeBrand(c.Template.Brand)+".com/signup?ref="+c.ID, c.dlKey)
		code = fmt.Sprintf(`
			document.listen("play", "click", function() {
				window.alert("Create a free account to continue watching.");
			});
			document.listen("signup", "click", function() {
				window.open(dec("%s", %d));
			});
		`, cust, c.dlKey)
	}
	if code != "" {
		doc.Scripts = append(doc.Scripts, dom.ScriptRef{Code: code})
	}
}

// CustomerHost returns the Registration campaign's customer site host (the
// scam site users are enticed to register on), empty otherwise.
func (c *Campaign) CustomerHost() string {
	if c.Category != Registration {
		return ""
	}
	return "www." + sanitizeBrand(c.Template.Brand) + ".com"
}

// Stats reports campaign-side load counters.
func (c *Campaign) Stats() (tdsSessions, mintedDomains, filesServed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions, len(c.minted), c.fileSeq
}

// MintedDomains returns all attack domains the campaign has registered so
// far (ground truth for coverage evaluation).
func (c *Campaign) MintedDomains() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.minted))
	for h := range c.minted {
		out = append(out, h)
	}
	return out
}

func sanitizeBrand(b string) string {
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); i++ {
		ch := b[i]
		switch {
		case ch >= 'a' && ch <= 'z':
			out = append(out, ch)
		case ch >= 'A' && ch <= 'Z':
			out = append(out, ch+'a'-'A')
		}
	}
	return string(out)
}

func hashHost(host string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(host); i++ {
		h ^= uint64(host[i])
		h *= 1099511628211
	}
	return h
}
