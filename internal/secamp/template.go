package secamp

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/rng"
)

// Template captures a campaign's visual identity: the layout skeleton of
// its category plus campaign-specific palette and geometry jitter. Pages
// built from the same Template render to near-identical screenshots
// (small dhash distance); distinct campaigns — even of the same category
// — render far apart, which is what lets DBSCAN recover one cluster per
// campaign.
type Template struct {
	Category Category
	// Palette (0xRRGGBB).
	BaseBG, Accent, Panel int
	// Layout jitter applied to the category skeleton.
	DX, DY int
	// PanelW/PanelH size the main dialog/panel box.
	PanelW, PanelH int
	// TextSeed drives deterministic text raggedness.
	TextSeed uint64
	// PhoneNumber is shown by TechSupport pages (the paper notes its
	// system can harvest these for blacklists).
	PhoneNumber string
	// Brand is the fake product name in FakeSoftware/Scareware pages.
	Brand string
}

// palettes per category: campaigns pick one base hue family and jitter
// channels, keeping categories visually coherent but campaigns distinct.
var categoryHues = map[Category][]int{
	FakeSoftware:  {0xb02020, 0x2050b0, 0x20a040, 0x806020, 0x602080, 0xc06010},
	Scareware:     {0xc02020, 0xd06000, 0x903030, 0xa01060, 0x702020, 0xb04010},
	TechSupport:   {0x0040a0, 0x003c78, 0x204080, 0x103060, 0x0a4aa0, 0x2a3a90},
	Lottery:       {0xf0c030, 0xe06090, 0x40b0d0, 0x80c040, 0xe08030, 0xc040c0},
	Notifications: {0x404040, 0x303848, 0x383030, 0x2f3f2f, 0x44303c, 0x2b2b3b},
	Registration:  {0x101418, 0x18232b, 0x201a26, 0x0e1e16, 0x26180e, 0x121212},
}

// NewTemplate derives a campaign's template from its category and a
// per-campaign random stream. The index spreads same-category campaigns
// across the hue table and the geometry grid so their dhashes land far
// apart.
func NewTemplate(cat Category, index int, src *rng.Source) Template {
	hues := categoryHues[cat]
	t := Template{
		Category: cat,
		BaseBG:   jitterColor(hues[index%len(hues)], src, 24),
		Accent:   jitterColor(hues[(index+3)%len(hues)], src, 40),
		Panel:    jitterColor(0xe8e8e8, src, 30),
		// Strong per-campaign geometry: position grid cells are far
		// enough apart to move dhash gradients decisively.
		DX:       (index % 5) * 70,
		DY:       ((index / 5) % 4) * 60,
		PanelW:   400 + (index%4)*90,
		PanelH:   220 + ((index+1)%3)*70,
		TextSeed: uint64(src.Int63()) | 1,
		Brand:    pickBrand(cat, src),
	}
	if cat == TechSupport {
		t.PhoneNumber = fmt.Sprintf("+1-8%02d-555-%04d", src.Intn(100), src.Intn(10000))
	}
	return t
}

func jitterColor(c int, src *rng.Source, amp int) int {
	j := func(v int) int {
		v += src.IntRange(-amp, amp)
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		return v
	}
	return j(c>>16&0xff)<<16 | j(c>>8&0xff)<<8 | j(c&0xff)
}

func pickBrand(cat Category, src *rng.Source) string {
	switch cat {
	case FakeSoftware:
		return rng.Pick(src, []string{"Flash Player", "Java Runtime", "MediaPlayerHD", "VideoCodecPro", "PlayerUpdate"})
	case Scareware:
		return rng.Pick(src, []string{"PC Defender", "MacCleaner Pro", "SpeedupMyPC", "AntivirusPlus", "SystemGuard"})
	case Registration:
		return rng.Pick(src, []string{"StreamVault", "MovieNest", "PlayPerks", "FunWraith", "GnomicFun"})
	default:
		return ""
	}
}

// BuildDoc renders the campaign's landing page DOM. pageSalt varies
// incidental content per attack domain (a dynamic token box) without
// moving the template's perceptual hash outside the cluster radius.
func (t Template) BuildDoc(pageURL string, pageSalt uint64) *dom.Document {
	root := dom.NewElement("body")
	root.W, root.H = 1024, 768
	root.Style.Background = t.BaseBG
	doc := &dom.Document{URL: pageURL, Root: root}

	panel := dom.NewElement("div").SetAttr("id", "panel")
	panel.X, panel.Y = 100+t.DX, 120+t.DY
	panel.W, panel.H = t.PanelW, t.PanelH
	panel.Style.Background = t.Panel
	panel.Style.ZIndex = 1

	switch t.Category {
	case FakeSoftware:
		doc.Title = t.Brand + " Update Required"
		header := block("header", 0, 0, 1024, 70, t.Accent)
		body := textBlock("msg", panel.X+20, panel.Y+30, panel.W-40, panel.H-120, t.TextSeed)
		install := button("install", panel.X+panel.W/2-90, panel.Y+panel.H-60, 180, 40, 0x30a030)
		root.Append(header, panel, body, install)
	case Scareware:
		doc.Title = "WARNING: Your computer is infected"
		alarm := block("alarm", 0, 0, 1024, 110, t.Accent)
		body := textBlock("threats", panel.X+20, panel.Y+20, panel.W-40, panel.H-110, t.TextSeed)
		clean := button("install", panel.X+panel.W/2-110, panel.Y+panel.H-55, 220, 38, 0xc03020)
		root.Append(alarm, panel, body, clean)
	case TechSupport:
		doc.Title = "Microsoft Support Alert " + t.PhoneNumber
		banner := block("banner", 0, 0, 1024, 90, t.Accent)
		warn := textBlock("warn", 60+t.DX, 170+t.DY, 700, 280, t.TextSeed)
		warn.Style.Ink = 0xffffff
		phone := dom.NewElement("p").SetAttr("id", "phone")
		phone.Text = "CALL NOW " + t.PhoneNumber
		phone.X, phone.Y, phone.W, phone.H = 60+t.DX, 480+t.DY, 500, 50
		phone.Style.Ink = 0xffff80
		root.Append(banner, warn, phone, panel)
	case Lottery:
		doc.Title = "Congratulations! You won"
		wheel := block("wheel", 300+t.DX/2, 150+t.DY/2, 380, 380, t.Accent)
		claim := button("claim", 380+t.DX/2, 560+t.DY/2, 240, 50, 0xd03060)
		msg := textBlock("prize", 60, 40, 880, 80, t.TextSeed)
		root.Append(msg, wheel, claim, panel)
	case Notifications:
		doc.Title = "Click Allow to continue"
		prompt := dom.NewElement("div").SetAttr("id", "notifprompt")
		prompt.X, prompt.Y = 40+t.DX/2, 40+t.DY/2
		prompt.W, prompt.H = 420, 140
		prompt.Style.Background = 0xf8f8f8
		prompt.Style.ZIndex = 5
		ptext := textBlock("ask", prompt.X+16, prompt.Y+16, prompt.W-32, 60, t.TextSeed)
		allow := button("allow", prompt.X+prompt.W-180, prompt.Y+prompt.H-44, 80, 30, 0x3070e0)
		deny := button("deny", prompt.X+prompt.W-90, prompt.Y+prompt.H-44, 70, 30, 0xb0b0b0)
		lure := textBlock("lure", 120+t.DX, 320+t.DY, 760, 300, t.TextSeed*3)
		lure.Style.Ink = 0xc0c0c0
		root.Append(lure, prompt, ptext, allow, deny)
	case Registration:
		doc.Title = t.Brand + " - Watch Free"
		player := block("player", 112+t.DX/2, 80+t.DY/2, 800, 450, 0x000000)
		playBtn := button("play", 472+t.DX/2, 270+t.DY/2, 80, 80, t.Accent)
		signup := button("signup", 350+t.DX/2, 560+t.DY/2, 320, 48, t.Accent)
		caption := textBlock("caption", 112, 550+t.DY/2+70, 800, 60, t.TextSeed)
		caption.Style.Ink = 0xe0e0e0
		root.Append(player, playBtn, signup, caption)
	}

	// Template signature strips: a low-fidelity renderer cannot express
	// the myriad small visual details that distinguish real page
	// templates, so each template carries a seeded "barcode" band whose
	// cell pattern is stable within the template and far apart between
	// templates — keeping same-campaign pages within the clustering
	// radius while separating campaigns.
	AddSignatureStrips(root, t.TextSeed, t.Accent, t.BaseBG)

	// Dynamic per-domain token box: small enough not to disturb the hash.
	tok := dom.NewElement("div").SetAttr("id", "dyn")
	tok.X, tok.Y, tok.W, tok.H = 960, 700, 30, 16
	tok.Style.Background = int(pageSalt % 0xffffff)
	tok.Style.ZIndex = 20
	root.Append(tok)
	return doc
}

// AddSignatureStrips appends the template barcode bands (bottom and left)
// to a page root. Exported for the benign-page generators, which need the
// same per-template visual identity.
//
// The bands are sized to the dhash sampling grid (9x8 / 8x9 cells over
// the page) with high-contrast cells, so each template pins its bottom
// and left gradient bits to a deterministic function of the seed: pages
// of the same template always agree on those bits, while two independent
// templates disagree on about half of them — far outside the clustering
// radius even when their palettes and layouts happen to be similar.
func AddSignatureStrips(root *dom.Element, seed uint64, on, off int) {
	w, h := root.W, root.H
	if w <= 0 || h <= 0 {
		w, h = 1024, 768
	}
	bright := brighten(on)
	dark := darkTone(off)
	s := seed
	bit := func() bool {
		s = s*6364136223846793005 + 1442695040888963407
		return s>>40&1 == 1
	}
	// Bottom band: 9 cells matching the 9 horizontal-gradient columns.
	const cols = 9
	for i := 0; i < cols; i++ {
		c := dom.NewElement("div")
		c.X = i * w / cols
		c.W = (i+1)*w/cols - c.X
		c.Y, c.H = h-h/8, h/8
		c.Style.ZIndex = 15
		if bit() {
			c.Style.Background = bright
		} else {
			c.Style.Background = dark
		}
		root.Append(c)
	}
	// Left band: 9 cells matching the 9 vertical-gradient rows.
	const rows = 9
	for i := 0; i < rows; i++ {
		c := dom.NewElement("div")
		c.Y = i * h / rows
		c.H = (i+1)*h/rows - c.Y
		c.X, c.W = 0, w/9
		c.Style.ZIndex = 14
		if bit() {
			c.Style.Background = bright
		} else {
			c.Style.Background = dark
		}
		root.Append(c)
	}
	// Right band.
	for i := 0; i < rows; i++ {
		c := dom.NewElement("div")
		c.Y = i * h / rows
		c.H = (i+1)*h/rows - c.Y
		c.X = w - w/9
		c.W = w / 9
		c.Style.ZIndex = 13
		if bit() {
			c.Style.Background = bright
		} else {
			c.Style.Background = dark
		}
		root.Append(c)
	}
	// Top band.
	for i := 0; i < cols; i++ {
		c := dom.NewElement("div")
		c.X = i * w / cols
		c.W = (i+1)*w/cols - c.X
		c.Y, c.H = 0, h/9
		c.Style.ZIndex = 12
		if bit() {
			c.Style.Background = bright
		} else {
			c.Style.Background = dark
		}
		root.Append(c)
	}
}

// brighten lifts a color toward white, keeping its hue recognisable.
func brighten(c int) int {
	r, g, b := (c>>16)&0xff, (c>>8)&0xff, c&0xff
	f := func(v int) int { return 190 + v/4 }
	return f(r)<<16 | f(g)<<8 | f(b)
}

// darkTone drops a color to a near-black tint.
func darkTone(c int) int {
	r, g, b := (c>>16)&0xff, (c>>8)&0xff, c&0xff
	return (r/6)<<16 | (g/6)<<8 | b/6
}

func block(id string, x, y, w, h, color int) *dom.Element {
	e := dom.NewElement("div").SetAttr("id", id)
	e.X, e.Y, e.W, e.H = x, y, w, h
	e.Style.Background = color
	return e
}

func button(id string, x, y, w, h, color int) *dom.Element {
	e := dom.NewElement("button").SetAttr("id", id)
	e.X, e.Y, e.W, e.H = x, y, w, h
	e.Style.Background = color
	e.Style.ZIndex = 10
	return e
}

func textBlock(id string, x, y, w, h int, seed uint64) *dom.Element {
	e := dom.NewElement("p").SetAttr("id", id)
	e.X, e.Y, e.W, e.H = x, y, w, h
	e.Style.Background = -1
	e.Style.Ink = 0x282828
	e.Style.TextSeed = seed
	return e
}
