package secamp

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/rng"
	"repro/internal/webtx"
)

// BenignKind enumerates the benign landing-page families the paper's
// triage found among its 130 clusters (Section 4.3): 11 parked-domain
// clusters, 6 stock-image adult clusters, 4 URL-shortener clusters and 1
// spurious cluster, plus ordinary benign advertisers that never cluster
// (too few domains for the θc filter).
type BenignKind int

const (
	// BenignAdvertiser is a legitimate advertiser: one stable domain, its
	// own page template.
	BenignAdvertiser BenignKind = iota
	// BenignParked is an expired/parked domain showing registrar
	// placeholder content shared across many unrelated domains.
	BenignParked
	// BenignAdultStock is a page reusing stock imagery across domains,
	// redirecting clicks to adult sites.
	BenignAdultStock
	// BenignShortener is an ad-based URL shortener interstitial shown on
	// many alias domains (adf.ly / shorte.st style).
	BenignShortener
	// BenignSpurious is a blank/improperly loaded page family.
	BenignSpurious
)

func (k BenignKind) String() string {
	switch k {
	case BenignAdvertiser:
		return "advertiser"
	case BenignParked:
		return "parked"
	case BenignAdultStock:
		return "adult-stock"
	case BenignShortener:
		return "shortener"
	case BenignSpurious:
		return "spurious"
	default:
		return fmt.Sprintf("BenignKind(%d)", int(k))
	}
}

// BenignFamily is a set of domains serving (near-)identical benign pages.
// Families with >= θc domains survive the paper's domain filter and show
// up as the 22 non-SEACMA clusters.
type BenignFamily struct {
	ID      string
	Kind    BenignKind
	Domains []string

	template benignTemplate
}

type benignTemplate struct {
	bg, accent int
	layout     int
	textSeed   uint64
}

// NewBenignFamily creates a family with n domains. Each family gets a
// distinct template so families form distinct clusters.
func NewBenignFamily(id string, kind BenignKind, n int, src *rng.Source) *BenignFamily {
	fs := src.Split("benign/" + id)
	f := &BenignFamily{
		ID:   id,
		Kind: kind,
		template: benignTemplate{
			bg:       0x606060 + fs.Intn(0x9f9f9f),
			accent:   fs.Intn(0xffffff),
			layout:   fs.Intn(5),
			textSeed: uint64(fs.Int63()) | 1,
		},
	}
	var tld string
	switch kind {
	case BenignParked:
		tld = rng.Pick(fs, []string{"com", "net", "org", "info"})
	case BenignAdultStock:
		tld = rng.Pick(fs, []string{"com", "net"})
	case BenignShortener:
		tld = rng.Pick(fs, []string{"ly", "st", "cc"})
	default:
		tld = "com"
	}
	for i := 0; i < n; i++ {
		f.Domains = append(f.Domains, fmt.Sprintf("%s%d.%s", fs.Token(7), fs.Intn(100), tld))
	}
	return f
}

// Install registers all family domains.
func (f *BenignFamily) Install(internet *webtx.Internet) {
	for _, d := range f.Domains {
		d := d
		internet.Register(d, webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
			return webtx.DocumentPage(f.buildDoc("http://" + d + req.URL.Path))
		}))
	}
}

// DocForTest builds the page served by the i-th domain, for offline
// classification experiments (e.g. the parked-domain detector) and tests.
func (f *BenignFamily) DocForTest(i int) *dom.Document {
	return f.buildDoc(f.URLFor(i))
}

// URLFor returns the landing URL for the i-th domain (wrapping), used by
// ad networks to route fills to this family.
func (f *BenignFamily) URLFor(i int) string {
	d := f.Domains[i%len(f.Domains)]
	return "http://" + d + "/"
}

func (f *BenignFamily) buildDoc(url string) *dom.Document {
	t := f.template
	root := dom.NewElement("body")
	root.W, root.H = 1024, 768
	doc := &dom.Document{URL: url, Root: root}
	switch f.Kind {
	case BenignParked:
		doc.Title = "This domain is for sale"
		root.Style.Background = 0xf4f4f0
		box := block("sale", 212+t.layout*20, 200, 600, 260, 0xffffff)
		msg := textBlock("msg", 240+t.layout*20, 230, 540, 160, t.textSeed)
		root.Append(box, msg)
	case BenignAdultStock:
		doc.Title = "Hot singles gallery"
		root.Style.Background = 0x201018
		for i := 0; i < 3; i++ {
			img := dom.NewElement("img").SetAttr("id", fmt.Sprintf("stock%d", i)).
				SetAttr("src", fmt.Sprintf("/stock%d.jpg", i))
			img.X, img.Y, img.W, img.H = 40+i*330, 180+t.layout*15, 300, 400
			img.Style.Background = t.accent - i*0x101010
			root.Append(img)
		}
	case BenignShortener:
		doc.Title = "Please wait..."
		root.Style.Background = 0xe8eef4
		frame := dom.NewElement("iframe").SetAttr("id", "adframe").SetAttr("src", "/framed-ad")
		frame.X, frame.Y, frame.W, frame.H = 112, 120, 800, 440
		frame.Style.Background = t.accent
		skip := button("skip", 824, 80, 120, 32, 0x3080d0)
		root.Append(frame, skip)
		doc.MetaRefresh = &dom.MetaRefresh{DelaySeconds: 5, Target: "http://example-target.com/"}
	case BenignSpurious:
		doc.Title = ""
		root.Style.Background = 0xffffff
		bar := block("bar", 0, 0, 1024, 8+t.layout, 0xdddddd)
		root.Append(bar)
	default: // BenignAdvertiser
		doc.Title = "Great product offer"
		root.Style.Background = t.bg
		// Advertiser landing pages are individually designed: derive a
		// multi-box layout from the family seed so no two advertisers
		// render alike.
		s := t.textSeed
		nBoxes := 3 + int(s%4)
		for i := 0; i < nBoxes; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			bx := int(s>>33) % 700
			s = s*6364136223846793005 + 1442695040888963407
			by := int(s>>33) % 500
			s = s*6364136223846793005 + 1442695040888963407
			bw := 150 + int(s>>33)%400
			s = s*6364136223846793005 + 1442695040888963407
			bh := 80 + int(s>>33)%260
			s = s*6364136223846793005 + 1442695040888963407
			col := int(s>>23) & 0xffffff
			root.Append(block(fmt.Sprintf("box%d", i), 80+bx, 60+by, bw, bh, col))
		}
		text := textBlock("pitch", 120, 580, 700, 120, t.textSeed)
		buy := button("buy", 400, 710, 220, 40, t.accent)
		root.Append(text, buy)
	}
	AddSignatureStrips(root, t.textSeed, t.accent, t.bg)
	return doc
}

// Advertiser is a single legitimate advertiser with one stable landing
// domain.
type Advertiser struct {
	Host   string
	family *BenignFamily
}

// NewAdvertiser creates a one-domain advertiser with its own template.
func NewAdvertiser(id string, src *rng.Source) *Advertiser {
	f := NewBenignFamily(id, BenignAdvertiser, 1, src)
	return &Advertiser{Host: f.Domains[0], family: f}
}

// Install registers the advertiser's domain.
func (a *Advertiser) Install(internet *webtx.Internet) { a.family.Install(internet) }

// URL returns the advertiser's landing URL.
func (a *Advertiser) URL() string { return a.family.URLFor(0) }

// DocForTest builds the advertiser's page, for offline classification
// experiments and tests.
func (a *Advertiser) DocForTest() *dom.Document { return a.family.DocForTest(0) }

// InstallCustomerSite registers the Registration-campaign customer site
// host with a trivial signup page; idempotent across campaigns sharing a
// brand.
func InstallCustomerSite(internet *webtx.Internet, host string) {
	if host == "" || internet.Registered(host) {
		return
	}
	internet.Register(host, webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		root := dom.NewElement("body")
		root.W, root.H = 1024, 768
		root.Style.Background = 0xfafafa
		form := block("form", 312, 180, 400, 360, 0xffffff)
		root.Append(form)
		return webtx.DocumentPage(&dom.Document{URL: "http://" + host + "/signup", Title: "Sign up", Root: root})
	}))
}
