package secamp

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

func TestCampaignLifetimeRetiresTDS(t *testing.T) {
	clock := vclock.New()
	internet := webtx.NewInternet()
	cfg := Config{
		RotationPeriod: time.Hour, Slots: 1, TTLFactor: 3, TDSCount: 1,
		Lifetime: 48 * time.Hour,
	}
	c := New("ephemeral", FakeSoftware, 0, cfg, clock, rng.New(9), nil)
	c.Install(internet)

	resp := get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
	if !resp.Redirect() {
		t.Fatal("live campaign does not redirect")
	}
	clock.Advance(47 * time.Hour)
	resp = get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
	if !resp.Redirect() {
		t.Fatal("campaign retired early")
	}
	clock.Advance(2 * time.Hour)
	resp = get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
	if resp.Status != webtx.StatusGone {
		t.Fatalf("retired TDS status = %d", resp.Status)
	}
}

func TestZeroLifetimeIsImmortal(t *testing.T) {
	clock := vclock.New()
	internet := webtx.NewInternet()
	c := New("forever", FakeSoftware, 0,
		Config{RotationPeriod: time.Hour, Slots: 1, TTLFactor: 3, TDSCount: 1},
		clock, rng.New(10), nil)
	c.Install(internet)
	clock.Advance(365 * 24 * time.Hour)
	resp := get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
	if !resp.Redirect() {
		t.Fatal("immortal campaign died")
	}
}

func TestRecorderGetsNominalBirth(t *testing.T) {
	clock := vclock.New()
	internet := webtx.NewInternet()
	rec := &testRecorder{}
	c := New("birth", FakeSoftware, 0,
		Config{RotationPeriod: time.Hour, Slots: 1, TTLFactor: 3, TDSCount: 1},
		clock, rng.New(11), rec)
	c.Install(internet)
	// Jump into epoch 5 and visit: the domain's recorded birth is the
	// epoch boundary, not the request time.
	clock.Advance(5*time.Hour + 30*time.Minute)
	get(t, internet, c.EntryURL(), webtx.UAChromeMac, clock.Now())
	if len(rec.domains) != 1 {
		t.Fatalf("recorded %d domains", len(rec.domains))
	}
	wantBirth := vclock.Epoch.Add(5 * time.Hour)
	if !rec.domains[0].born.Equal(wantBirth) {
		t.Fatalf("born = %v, want %v", rec.domains[0].born, wantBirth)
	}
}
