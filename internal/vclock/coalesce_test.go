package vclock

import (
	"reflect"
	"testing"
	"time"
)

// TestCoalescedGroupsAcrossInstants checks the multi-tick contract:
// consecutive instants fuse into one group while coalesce approves, and
// flush fires exactly at the boundaries — including the trailing one.
func TestCoalescedGroupsAcrossInstants(t *testing.T) {
	c := New()
	horizon := Epoch.Add(2 * time.Hour)
	var ran []string
	if err := c.Every(15*time.Minute, horizon, func(now time.Time) bool {
		ran = append(ran, "milk@"+now.Format("15:04"))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Every(30*time.Minute, horizon, func(now time.Time) bool {
		ran = append(ran, "poll@"+now.Format("15:04"))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// Groups break before every instant aligned to the 30-minute poll.
	pollAligned := func(at time.Time) bool {
		return at.Sub(Epoch)%(30*time.Minute) == 0
	}
	var groups [][]string
	mark := 0
	c.AdvanceToCoalesced(horizon,
		func(next time.Time) bool { return !pollAligned(next) },
		func() {
			groups = append(groups, append([]string(nil), ran[mark:]...))
			mark = len(ran)
		})
	// :15 alone (boundary before :30), then {:30, :45}, {1:00, 1:15}, ...
	// At shared instants the poll callback runs first: its timer event
	// was armed before the milk timer's re-arm, so it has the lower
	// scheduling sequence — the same order serial AdvanceTo produces.
	want := [][]string{
		{"milk@00:15"},
		{"poll@00:30", "milk@00:30", "milk@00:45"},
		{"poll@01:00", "milk@01:00", "milk@01:15"},
		{"poll@01:30", "milk@01:30", "milk@01:45"},
		{"poll@02:00", "milk@02:00"},
	}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups:\n  got  %v\n  want %v", groups, want)
	}
	if !c.Now().Equal(horizon) {
		t.Fatalf("clock at %v, want %v", c.Now(), horizon)
	}
}

// TestCoalescedMatchesSerialOrder runs the milker-shaped schedule
// through AdvanceTo and AdvanceToCoalesced and demands the identical
// callback sequence: coalescing changes flush placement, never the
// order events run in.
func TestCoalescedMatchesSerialOrder(t *testing.T) {
	build := func() (*Clock, *[]string) {
		c := New()
		var log []string
		horizon := Epoch.Add(3 * time.Hour)
		for _, spec := range []struct {
			name  string
			every time.Duration
		}{{"a", 15 * time.Minute}, {"b", 15 * time.Minute}, {"gsb", 30 * time.Minute}} {
			spec := spec
			if err := c.Every(spec.every, horizon, func(now time.Time) bool {
				log = append(log, spec.name+"@"+now.Format("15:04"))
				return true
			}); err != nil {
				t.Fatal(err)
			}
		}
		return c, &log
	}
	serialClock, serialLog := build()
	serialClock.AdvanceTo(Epoch.Add(4 * time.Hour))

	coClock, coLog := build()
	flushes := 0
	coClock.AdvanceToCoalesced(Epoch.Add(4*time.Hour),
		func(next time.Time) bool { return next.Sub(Epoch)%(30*time.Minute) != 0 },
		func() { flushes++ })

	if !reflect.DeepEqual(*serialLog, *coLog) {
		t.Fatalf("serial %v\ncoalesced %v", *serialLog, *coLog)
	}
	if flushes == 0 {
		t.Fatal("flush never ran")
	}
}

// TestCoalescedSameInstantFollowUp checks that events scheduled at the
// current instant stay inside the current group even when coalesce
// rejects everything.
func TestCoalescedSameInstantFollowUp(t *testing.T) {
	c := New()
	at := Epoch.Add(time.Minute)
	var order []string
	if err := c.At(at, func(now time.Time) {
		order = append(order, "first")
		_ = c.At(now, func(time.Time) { order = append(order, "follow-up") })
	}); err != nil {
		t.Fatal(err)
	}
	flushed := []int{}
	c.AdvanceToCoalesced(at.Add(time.Hour),
		func(next time.Time) bool { return false },
		func() { flushed = append(flushed, len(order)) })
	if !reflect.DeepEqual(order, []string{"first", "follow-up"}) {
		t.Fatalf("order %v", order)
	}
	// One flush, after both the event and its same-instant follow-up.
	if !reflect.DeepEqual(flushed, []int{2}) {
		t.Fatalf("flush marks %v, want [2]", flushed)
	}
}

// TestCoalescedFlushMaySchedule checks that events scheduled from
// inside flush are still picked up by the advancing loop.
func TestCoalescedFlushMaySchedule(t *testing.T) {
	c := New()
	var order []string
	if err := c.At(Epoch.Add(time.Minute), func(time.Time) { order = append(order, "tick") }); err != nil {
		t.Fatal(err)
	}
	armed := false
	c.AdvanceToCoalesced(Epoch.Add(time.Hour), nil, func() {
		order = append(order, "flush")
		if !armed {
			armed = true
			_ = c.At(c.Now().Add(time.Minute), func(time.Time) { order = append(order, "late") })
		}
	})
	want := []string{"tick", "flush", "late", "flush"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// TestCoalescedNoEventsNoFlush: advancing over an empty window must not
// call flush and must still move the clock.
func TestCoalescedNoEventsNoFlush(t *testing.T) {
	c := New()
	calls := 0
	c.AdvanceToCoalesced(Epoch.Add(time.Hour), nil, func() { calls++ })
	if calls != 0 {
		t.Fatalf("flush ran %d times on an empty queue", calls)
	}
	if !c.Now().Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("clock at %v", c.Now())
	}
}

// TestNextBatchPrimitive checks the popping primitive AdvanceToBatched
// is built on: same-instant grouping, clock movement, and the !ok
// leave-clock-alone contract.
func TestNextBatchPrimitive(t *testing.T) {
	c := New()
	at := Epoch.Add(time.Minute)
	for i := 0; i < 3; i++ {
		if err := c.At(at, func(time.Time) {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.At(at.Add(time.Second), func(time.Time) {}); err != nil {
		t.Fatal(err)
	}
	now, batch, ok := c.NextBatch(at.Add(time.Hour))
	if !ok || !now.Equal(at) || len(batch) != 3 {
		t.Fatalf("first pop: ok=%v now=%v len=%d", ok, now, len(batch))
	}
	if !c.Now().Equal(at) {
		t.Fatalf("clock at %v after pop, want %v", c.Now(), at)
	}
	now, batch, ok = c.NextBatch(at.Add(time.Hour))
	if !ok || !now.Equal(at.Add(time.Second)) || len(batch) != 1 {
		t.Fatalf("second pop: ok=%v now=%v len=%d", ok, now, len(batch))
	}
	before := c.Now()
	if _, _, ok := c.NextBatch(at.Add(time.Hour)); ok {
		t.Fatal("third pop should report no events")
	}
	if !c.Now().Equal(before) {
		t.Fatalf("failed pop moved the clock to %v", c.Now())
	}
}
