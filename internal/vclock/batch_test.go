package vclock

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestBatchedCollectsSameInstantEvents checks that every event due at
// one virtual instant arrives in a single batch, in scheduling order.
func TestBatchedCollectsSameInstantEvents(t *testing.T) {
	c := New()
	at := Epoch.Add(time.Minute)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := c.At(at, func(time.Time) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.At(at.Add(time.Second), func(time.Time) { order = append(order, 99) }); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	c.AdvanceToBatched(at.Add(time.Hour), func(now time.Time, batch []func(time.Time)) {
		sizes = append(sizes, len(batch))
		for _, fn := range batch {
			fn(now)
		}
	})
	if !reflect.DeepEqual(sizes, []int{5, 1}) {
		t.Fatalf("batch sizes %v, want [5 1]", sizes)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4, 99}) {
		t.Fatalf("order %v", order)
	}
}

// TestBatchedMatchesSerialAdvance runs the same interleaved Every
// schedule through AdvanceTo and through a batching runner and demands
// identical callback sequences — the equivalence the milking engine
// relies on.
func TestBatchedMatchesSerialAdvance(t *testing.T) {
	build := func() (*Clock, *[]string) {
		c := New()
		var log []string
		horizon := Epoch.Add(2 * time.Hour)
		for _, spec := range []struct {
			name  string
			every time.Duration
		}{{"a", 15 * time.Minute}, {"b", 15 * time.Minute}, {"gsb", 30 * time.Minute}} {
			spec := spec
			if err := c.Every(spec.every, horizon, func(now time.Time) bool {
				log = append(log, spec.name+"@"+now.Format("15:04"))
				return true
			}); err != nil {
				t.Fatal(err)
			}
		}
		return c, &log
	}

	serialClock, serialLog := build()
	serialClock.AdvanceTo(Epoch.Add(3 * time.Hour))

	batchClock, batchLog := build()
	batchClock.AdvanceToBatched(Epoch.Add(3*time.Hour), func(now time.Time, batch []func(time.Time)) {
		for _, fn := range batch {
			fn(now)
		}
	})

	if !reflect.DeepEqual(*serialLog, *batchLog) {
		t.Fatalf("serial %v\nbatched %v", *serialLog, *batchLog)
	}
}

// TestBatchedFollowUpSameInstant checks that events a batch schedules at
// the current instant run as a follow-up batch at the same now.
func TestBatchedFollowUpSameInstant(t *testing.T) {
	c := New()
	at := Epoch.Add(time.Minute)
	var order []string
	if err := c.At(at, func(now time.Time) {
		order = append(order, "first")
		if err := c.At(now, func(time.Time) { order = append(order, "follow-up") }); err != nil {
			t.Errorf("same-instant reschedule: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	batches := 0
	c.AdvanceToBatched(at, func(now time.Time, batch []func(time.Time)) {
		batches++
		if !now.Equal(at) {
			t.Fatalf("batch %d at %v, want %v", batches, now, at)
		}
		for _, fn := range batch {
			fn(now)
		}
	})
	if batches != 2 {
		t.Fatalf("ran %d batches, want 2", batches)
	}
	if !reflect.DeepEqual(order, []string{"first", "follow-up"}) {
		t.Fatalf("order %v", order)
	}
}

// TestBatchedRunnerMayFanOut checks the engine contract: a runner may
// execute a batch's callbacks concurrently, and the clock stays frozen
// (and readable) while it does.
func TestBatchedRunnerMayFanOut(t *testing.T) {
	c := New()
	at := Epoch.Add(time.Minute)
	var mu sync.Mutex
	seen := map[int]time.Time{}
	for i := 0; i < 8; i++ {
		i := i
		if err := c.At(at, func(now time.Time) {
			mu.Lock()
			seen[i] = c.Now() // concurrent Now() reads must be safe
			mu.Unlock()
			_ = now
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.AdvanceToBatched(at, func(now time.Time, batch []func(time.Time)) {
		var wg sync.WaitGroup
		for _, fn := range batch {
			fn := fn
			wg.Add(1)
			go func() {
				defer wg.Done()
				fn(now)
			}()
		}
		wg.Wait()
	})
	if len(seen) != 8 {
		t.Fatalf("ran %d callbacks, want 8", len(seen))
	}
	for i, now := range seen {
		if !now.Equal(at) {
			t.Fatalf("callback %d saw now=%v, want %v", i, now, at)
		}
	}
}
