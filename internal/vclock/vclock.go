// Package vclock implements a deterministic virtual clock and event
// scheduler.
//
// The paper's milking experiment runs 505 sources every 15 minutes for 14
// days with Safe-Browsing lookups every 30 minutes, followed by a final
// lookup two months later. Reproducing that on wall-clock time is
// impossible in a test run, so all time-dependent components of this
// repository (milker, GSB lag model, VirusTotal rescans, domain-rotation
// schedules) read time exclusively from a vclock.Clock, which the
// experiment driver advances explicitly.
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Epoch is the instant at which every simulation starts. The concrete date
// is arbitrary but fixed so logs and goldens are stable.
var Epoch = time.Date(2019, time.March, 1, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock with an attached event queue. The zero value is
// not usable; use New.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	events eventQueue
	seq    int64 // tie-breaker for events scheduled at the same instant
}

// New returns a Clock positioned at Epoch.
func New() *Clock {
	return &Clock{now: Epoch}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// event is a scheduled callback.
type event struct {
	at  time.Time
	seq int64
	fn  func(now time.Time)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// At schedules fn to run when virtual time reaches t. Scheduling in the
// past (relative to Now) is an error: virtual time never flows backwards.
func (c *Clock) At(t time.Time, fn func(now time.Time)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		return fmt.Errorf("vclock: schedule at %v before now %v", t, c.now)
	}
	c.seq++
	heap.Push(&c.events, &event{at: t, seq: c.seq, fn: fn})
	return nil
}

// After schedules fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, fn func(now time.Time)) error {
	return c.At(c.Now().Add(d), fn)
}

// Every schedules fn to run at each multiple of interval after the current
// time, until fn returns false or until the clock is advanced past horizon
// (zero horizon means no limit). The first run happens one interval from
// now.
func (c *Clock) Every(interval time.Duration, horizon time.Time, fn func(now time.Time) bool) error {
	if interval <= 0 {
		return fmt.Errorf("vclock: non-positive interval %v", interval)
	}
	var tick func(now time.Time)
	tick = func(now time.Time) {
		if !fn(now) {
			return
		}
		next := now.Add(interval)
		if !horizon.IsZero() && next.After(horizon) {
			return
		}
		// Re-arming cannot fail: next is strictly after now.
		_ = c.At(next, tick)
	}
	first := c.Now().Add(interval)
	if !horizon.IsZero() && first.After(horizon) {
		return nil
	}
	return c.At(first, tick)
}

// AdvanceTo runs all events scheduled up to and including t, in timestamp
// order, and leaves the clock at t. Events scheduled by running events are
// themselves run if they fall within the window.
func (c *Clock) AdvanceTo(t time.Time) {
	c.AdvanceToBatched(t, nil)
}

// BatchRunner executes one batch of same-instant callbacks. The batch is
// ordered by scheduling sequence — exactly the order AdvanceTo would have
// run the callbacks one by one — so a runner that invokes them serially
// in slice order reproduces AdvanceTo. A runner may instead stage or fan
// the callbacks out (the milking engine runs independent same-tick
// sessions on a worker pool), as long as every callback is invoked
// before it returns: the clock re-examines the queue only after the
// runner completes, so events scheduled by the batch (timer re-arms) are
// collected for the next batch.
type BatchRunner func(now time.Time, batch []func(now time.Time))

// AdvanceToBatched is AdvanceTo with same-instant batching: all queued
// events due at the same virtual instant are popped together and handed
// to run as one batch. A nil runner executes batches serially in
// schedule order (identical to AdvanceTo). Events scheduled by a batch
// at the same instant are run as a follow-up batch at the same now.
func (c *Clock) AdvanceToBatched(t time.Time, run BatchRunner) {
	var buf []func(now time.Time)
	for {
		now, batch, ok := c.nextBatch(t, buf)
		if !ok {
			c.finishAdvance(t)
			return
		}
		buf = batch
		if run == nil {
			for _, fn := range batch {
				fn(now)
			}
		} else {
			run(now, batch)
		}
	}
}

// NextBatch pops the earliest same-instant group of events due at or
// before limit, advances the clock to that instant, and returns the
// callbacks in scheduling order (the order AdvanceTo would have run
// them). ok is false — and the clock stays where it is — when nothing
// is due by limit; callers then advance the remaining gap themselves
// (AdvanceTo(limit) is a no-op pop plus the final move). The returned
// slice is owned by the caller. This is the popping primitive both
// batch advancers are built on.
func (c *Clock) NextBatch(limit time.Time) (now time.Time, batch []func(now time.Time), ok bool) {
	return c.nextBatch(limit, nil)
}

// nextBatch is NextBatch with caller-supplied slice capacity: buf is
// truncated and reused, so a driving loop pops every batch of a long
// run into one allocation.
func (c *Clock) nextBatch(limit time.Time, buf []func(now time.Time)) (time.Time, []func(now time.Time), bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) == 0 || c.events[0].at.After(limit) {
		return time.Time{}, buf, false
	}
	e := heap.Pop(&c.events).(*event)
	if e.at.After(c.now) {
		c.now = e.at
	}
	batch := append(buf[:0], e.fn)
	// Collect every other event due at the same instant, in seq order
	// (the heap pops equal timestamps by ascending seq).
	for len(c.events) > 0 && c.events[0].at.Equal(e.at) {
		batch = append(batch, heap.Pop(&c.events).(*event).fn)
	}
	return c.now, batch, true
}

// finishAdvance moves the clock to t once no events remain due.
func (c *Clock) finishAdvance(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}

// AdvanceToCoalesced is the multi-tick extension of AdvanceToBatched:
// it pops same-instant batches up to t and runs each batch's callbacks
// serially in schedule order (so self-re-arming timers enqueue their
// next instant before the queue is examined again), but instead of
// handing every instant to a runner it groups consecutive instants and
// calls flush at group boundaries. After an instant's callbacks have
// run, the next due instant extends the current group when
// coalesce(next) returns true; otherwise flush is called before that
// instant's callbacks run. Follow-up events scheduled at the current
// instant always stay in the group (matching AdvanceToBatched's
// same-instant follow-up batches). A trailing flush covers the final
// group, and events scheduled by flush itself are picked up by the
// loop. A nil coalesce never groups (flush after every instant).
//
// The milking engine drives its pipelined scheduler with this: timer
// callbacks only record what is due, coalesce fuses consecutive
// milking ticks that no blacklist-poll instant separates, and flush
// fans the recorded ticks out to the worker pool.
func (c *Clock) AdvanceToCoalesced(t time.Time, coalesce func(next time.Time) bool, flush func()) {
	var buf []func(now time.Time)
	open := false // a group has run callbacks and awaits flush
	for {
		now, batch, ok := c.nextBatch(t, buf)
		if !ok {
			if open {
				flush()
			}
			c.finishAdvance(t)
			return
		}
		buf = batch
		for _, fn := range batch {
			fn(now)
		}
		open = true
		if next, okNext := c.NextEvent(); okNext && !next.After(t) {
			if next.Equal(now) || (coalesce != nil && coalesce(next)) {
				continue
			}
		}
		flush()
		open = false
	}
}

// Advance moves the clock forward by d, running due events.
func (c *Clock) Advance(d time.Duration) {
	c.AdvanceTo(c.Now().Add(d))
}

// Pending reports the number of events still queued.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// NextEvent returns the timestamp of the earliest queued event, and false
// if the queue is empty.
func (c *Clock) NextEvent() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) == 0 {
		return time.Time{}, false
	}
	return c.events[0].at, true
}

// Drain advances the clock until no events remain or until limit events
// have run. It returns the number of events run. A limit <= 0 means no
// limit; callers use limits as a runaway-schedule guard in tests.
func (c *Clock) Drain(limit int) int {
	run := 0
	for {
		if limit > 0 && run >= limit {
			return run
		}
		next, ok := c.NextEvent()
		if !ok {
			return run
		}
		c.AdvanceTo(next)
		run++
	}
}
