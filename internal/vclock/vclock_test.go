package vclock

import (
	"testing"
	"time"
)

func TestNowStartsAtEpoch(t *testing.T) {
	c := New()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now = %v, want %v", c.Now(), Epoch)
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := New()
	c.Advance(90 * time.Minute)
	if got := c.Since(Epoch); got != 90*time.Minute {
		t.Fatalf("elapsed = %v", got)
	}
}

func TestAtRunsInOrder(t *testing.T) {
	c := New()
	var order []int
	mustAt := func(d time.Duration, id int) {
		if err := c.At(Epoch.Add(d), func(time.Time) { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	mustAt(3*time.Hour, 3)
	mustAt(1*time.Hour, 1)
	mustAt(2*time.Hour, 2)
	c.Advance(150 * time.Minute)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	c.Advance(time.Hour)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestAtSameInstantFIFO(t *testing.T) {
	c := New()
	var order []int
	at := Epoch.Add(time.Minute)
	for i := 0; i < 5; i++ {
		i := i
		if err := c.At(at, func(time.Time) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	c.Advance(2 * time.Minute)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestAtPastRejected(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	if err := c.At(Epoch, func(time.Time) {}); err == nil {
		t.Fatal("scheduling in the past succeeded")
	}
}

func TestAfter(t *testing.T) {
	c := New()
	fired := false
	if err := c.After(10*time.Minute, func(now time.Time) {
		fired = true
		if want := Epoch.Add(10 * time.Minute); !now.Equal(want) {
			t.Errorf("fired at %v, want %v", now, want)
		}
	}); err != nil {
		t.Fatal(err)
	}
	c.Advance(9 * time.Minute)
	if fired {
		t.Fatal("fired early")
	}
	c.Advance(2 * time.Minute)
	if !fired {
		t.Fatal("never fired")
	}
}

func TestEveryTicksAtInterval(t *testing.T) {
	c := New()
	var ticks []time.Duration
	err := c.Every(15*time.Minute, Epoch.Add(time.Hour), func(now time.Time) bool {
		ticks = append(ticks, now.Sub(Epoch))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(2 * time.Hour)
	want := []time.Duration{15 * time.Minute, 30 * time.Minute, 45 * time.Minute, 60 * time.Minute}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEveryStopsWhenFnReturnsFalse(t *testing.T) {
	c := New()
	n := 0
	if err := c.Every(time.Minute, time.Time{}, func(time.Time) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	c.Advance(time.Hour)
	if n != 3 {
		t.Fatalf("ran %d times, want 3", n)
	}
	if c.Pending() != 0 {
		t.Fatalf("%d events still pending", c.Pending())
	}
}

func TestEveryRejectsNonPositiveInterval(t *testing.T) {
	c := New()
	if err := c.Every(0, time.Time{}, func(time.Time) bool { return true }); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var fired []time.Duration
	if err := c.After(time.Minute, func(now time.Time) {
		fired = append(fired, c.Since(Epoch))
		_ = c.After(time.Minute, func(time.Time) {
			fired = append(fired, c.Since(Epoch))
		})
	}); err != nil {
		t.Fatal(err)
	}
	c.Advance(5 * time.Minute)
	if len(fired) != 2 || fired[0] != time.Minute || fired[1] != 2*time.Minute {
		t.Fatalf("fired = %v", fired)
	}
}

func TestDrainLimit(t *testing.T) {
	c := New()
	// A self-rescheduling event would run forever without the limit.
	var tick func(time.Time)
	tick = func(time.Time) { _ = c.After(time.Second, tick) }
	if err := c.After(time.Second, tick); err != nil {
		t.Fatal(err)
	}
	if ran := c.Drain(10); ran != 10 {
		t.Fatalf("Drain ran %d, want 10", ran)
	}
}

func TestNextEvent(t *testing.T) {
	c := New()
	if _, ok := c.NextEvent(); ok {
		t.Fatal("NextEvent on empty queue returned ok")
	}
	at := Epoch.Add(time.Hour)
	if err := c.At(at, func(time.Time) {}); err != nil {
		t.Fatal(err)
	}
	got, ok := c.NextEvent()
	if !ok || !got.Equal(at) {
		t.Fatalf("NextEvent = %v, %v", got, ok)
	}
}

func TestAdvanceToPastIsNoop(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	before := c.Now()
	c.AdvanceTo(Epoch) // earlier than now
	if !c.Now().Equal(before) {
		t.Fatalf("clock moved backwards to %v", c.Now())
	}
}
