package worldgen

import (
	"strings"
	"testing"

	"repro/internal/adnet"
	"repro/internal/secamp"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

func buildTiny(t *testing.T) *World {
	t.Helper()
	return Build(TinyConfig())
}

func TestBuildAssemblesEverything(t *testing.T) {
	w := buildTiny(t)
	if len(w.Networks) != 14 {
		t.Fatalf("networks = %d", len(w.Networks))
	}
	if len(w.Campaigns) != 15 {
		t.Fatalf("campaigns = %d", len(w.Campaigns))
	}
	if len(w.Publishers) != 132 {
		t.Fatalf("publishers = %d", len(w.Publishers))
	}
	if len(w.Families) != 22 {
		t.Fatalf("benign families = %d (paper triaged 22 benign clusters)", len(w.Families))
	}
	if w.Internet.HostCount() == 0 || w.Search.Size() != len(w.Publishers) {
		t.Fatal("hosts or index missing")
	}
}

func TestPublisherPagesServeSnippets(t *testing.T) {
	w := buildTiny(t)
	p := w.Publishers[0]
	resp, err := w.Internet.RoundTrip(&webtx.Request{
		URL: urlx.MustParse("http://" + p.Host + "/"), UserAgent: webtx.UAChromeMac, Time: vclock.Epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Doc == nil || len(resp.Doc.Scripts) != len(p.Networks) {
		t.Fatalf("publisher page scripts = %d, networks = %d", len(resp.Doc.Scripts), len(p.Networks))
	}
	// The page source carries each network's invariant.
	for _, name := range p.Networks {
		n := w.NetworkByName(name)
		if n == nil {
			t.Fatalf("unknown network %q", name)
		}
		if !strings.Contains(resp.Body, n.SearchSnippet()) {
			t.Fatalf("page lacks %s invariant", name)
		}
	}
}

func TestSearchReversesInvariants(t *testing.T) {
	// The paper's "reversing" step: searching a network's invariant
	// returns exactly the publishers embedding it.
	w := buildTiny(t)
	for _, n := range w.Networks {
		hosts := w.Search.Search(n.SearchSnippet())
		want := map[string]bool{}
		for _, p := range w.Publishers {
			for _, name := range p.Networks {
				if name == n.Name() {
					want[p.Host] = true
				}
			}
		}
		if len(hosts) != len(want) {
			t.Fatalf("%s: search found %d, truth %d", n.Name(), len(hosts), len(want))
		}
		for _, h := range hosts {
			if !want[h] {
				t.Fatalf("%s: false positive %s", n.Name(), h)
			}
		}
	}
}

func TestSeedPublisherHosts(t *testing.T) {
	w := buildTiny(t)
	seeds := w.SeedPublisherHosts()
	if len(seeds) != w.Cfg.SeedPublishers {
		t.Fatalf("seed hosts = %d, want %d", len(seeds), w.Cfg.SeedPublishers)
	}
}

func TestTruthRecordsAttackDomains(t *testing.T) {
	w := buildTiny(t)
	camp := w.Campaigns[0]
	resp, err := w.Internet.RoundTrip(&webtx.Request{
		URL: urlx.MustParse(camp.EntryURL()), UserAgent: uaFor(camp), ClientIP: webtx.IPResidential, Time: w.Clock.Now(),
	})
	if err != nil || !resp.Redirect() {
		t.Fatalf("TDS: %v %v", resp, err)
	}
	host := urlx.MustParse(resp.Location).Host
	if got := w.Truth.CampaignOfAttackDomain(host); got != camp.ID {
		t.Fatalf("truth campaign = %q", got)
	}
	if _, ok := w.Truth.BornAt(host); !ok {
		t.Fatal("no birth time")
	}
	if w.Truth.AttackDomainCount() == 0 {
		t.Fatal("no attack domains counted")
	}
	cat, ok := w.Truth.CategoryOfCampaign(camp.ID)
	if !ok || cat != camp.Category {
		t.Fatalf("category = %v %v", cat, ok)
	}
	// GSB observed the domain (lookup must not panic; listing may or may
	// not happen eventually).
	w.GSB.Lookup(host, w.Clock.Now())
}

func uaFor(c *secamp.Campaign) webtx.UserAgent {
	if c.Category.MobileOnly() {
		return webtx.UAChromeAndroid
	}
	return webtx.UAChromeMac
}

func TestTruthNetworkDomains(t *testing.T) {
	w := buildTiny(t)
	for _, n := range w.Networks {
		for _, d := range n.AllDomains() {
			if got := w.Truth.NetworkOfDomain(d); got != n.Name() {
				t.Fatalf("domain %s attributed to %q, want %s", d, got, n.Name())
			}
		}
	}
	if w.Truth.NetworkOfDomain("random.com") != "" {
		t.Fatal("unknown domain attributed")
	}
}

func TestDeterministicBuild(t *testing.T) {
	a, b := Build(TinyConfig()), Build(TinyConfig())
	if len(a.Publishers) != len(b.Publishers) {
		t.Fatal("publisher counts differ")
	}
	for i := range a.Publishers {
		if a.Publishers[i].Host != b.Publishers[i].Host {
			t.Fatalf("publisher %d differs: %s vs %s", i, a.Publishers[i].Host, b.Publishers[i].Host)
		}
	}
	for i := range a.Campaigns {
		if a.Campaigns[i].EntryURL() != b.Campaigns[i].EntryURL() {
			t.Fatal("campaign TDS URLs differ")
		}
	}
}

func TestAccessors(t *testing.T) {
	w := buildTiny(t)
	if w.NetworkByName("PopCash") == nil || w.NetworkByName("NoSuch") != nil {
		t.Fatal("NetworkByName wrong")
	}
	c := w.Campaigns[0]
	if w.CampaignByID(c.ID) != c || w.CampaignByID("nope") != nil {
		t.Fatal("CampaignByID wrong")
	}
	p := w.Publishers[0]
	if w.PublisherByHost(p.Host) != p || w.PublisherByHost("nope") != nil {
		t.Fatal("PublisherByHost wrong")
	}
}

func TestPublisherCategoriesAssigned(t *testing.T) {
	w := buildTiny(t)
	for _, p := range w.Publishers {
		if p.Category == "" || p.Category == "Uncategorized" {
			t.Fatalf("publisher %s category %q", p.Host, p.Category)
		}
		if w.Webcat.Lookup(p.Host) != p.Category {
			t.Fatal("categoriser out of sync")
		}
		if p.Rank <= 0 {
			t.Fatalf("publisher %s rank %d", p.Host, p.Rank)
		}
	}
}

func TestNewNetPublishersCarryOnlyDiscoveredNetworks(t *testing.T) {
	w := buildTiny(t)
	count := 0
	for _, p := range w.Publishers[w.Cfg.SeedPublishers:] {
		count++
		if len(p.Networks) != 1 {
			t.Fatalf("new-net publisher has %d networks", len(p.Networks))
		}
		if isSeedName(p.Networks[0]) {
			t.Fatalf("new-net publisher carries seed network %s", p.Networks[0])
		}
	}
	if count != w.Cfg.NewNetPublishers {
		t.Fatalf("new-net publishers = %d", count)
	}
}

func TestOverlapPublishersExist(t *testing.T) {
	w := buildTiny(t)
	overlap := 0
	for _, p := range w.Publishers[:w.Cfg.SeedPublishers] {
		hasSeed, hasNew := false, false
		for _, n := range p.Networks {
			if isSeedName(n) {
				hasSeed = true
			} else {
				hasNew = true
			}
		}
		if !hasSeed {
			t.Fatalf("seed publisher %s has no seed network", p.Host)
		}
		if hasNew {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("no overlap publishers — unknown attribution cannot occur")
	}
}

func TestDefaultConfigCampaignCountsArePaper(t *testing.T) {
	w := Build(Config{Seed: 5, SeedPublishers: 5, NewNetPublishers: 1, Advertisers: 5,
		ParkedFamilies: 1, AdultFamilies: 1, ShortenerFamilies: 1, SpuriousFamilies: 1, FamilyDomains: 5})
	if len(w.Campaigns) != 108 {
		t.Fatalf("campaigns = %d, want the paper's 108", len(w.Campaigns))
	}
	_ = adnet.Specs
}
