// Package worldgen assembles the complete synthetic web the SEACMA
// pipeline is evaluated against: ad networks, SE campaigns, benign
// advertisers and look-alike families, publisher websites, the
// source-code search index, the website categoriser, the Safe Browsing
// blacklist and the VirusTotal service — all derived deterministically
// from one seed.
//
// worldgen is the omniscient side of the experiment: it holds the ground
// truth (which campaign owns which attack domain, which network owns
// which serving domain) that the measurement pipeline in internal/core is
// later scored against. The pipeline itself only ever touches the
// Internet, the search engine, GSB lookups and VT submissions — the same
// interfaces the paper's system had.
package worldgen

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/adnet"
	"repro/internal/dom"
	"repro/internal/gsb"
	"repro/internal/rng"
	"repro/internal/secamp"
	"repro/internal/vclock"
	"repro/internal/vtsim"
	"repro/internal/webcat"
	"repro/internal/websearch"
	"repro/internal/webtx"
)

// Config sizes the world.
type Config struct {
	Seed int64
	// SeedPublishers is the number of publishers embedding seed-network
	// ads (the paper found 93,427); NewNetPublishers embed only the
	// three initially-unknown networks (the paper later found 8,981).
	SeedPublishers   int
	NewNetPublishers int
	// CampaignCounts per category; nil means the paper's Table 1 counts.
	CampaignCounts map[secamp.Category]int
	// Advertisers is the benign advertiser pool size.
	Advertisers int
	// Benign family counts (the paper's 22 benign clusters: 11 parked,
	// 6 adult-stock, 4 shortener, 1 spurious).
	ParkedFamilies, AdultFamilies, ShortenerFamilies, SpuriousFamilies int
	// FamilyDomains is how many domains each benign family spans.
	FamilyDomains int
	// OverlapRate is the fraction of seed publishers that additionally
	// carry a discovered-network snippet (how "unknown" SE attacks enter
	// the seed crawl).
	OverlapRate float64
	// EphemeralRate is the fraction of campaigns that retire mid-
	// experiment (their TDS goes dead); the milkable-URL verification
	// pass weeds their candidates out.
	EphemeralRate float64
	// GSBProfiles overrides the blacklist calibration (nil = default).
	GSBProfiles map[string]gsb.DetectionProfile
}

// DefaultConfig returns the bench-scale world: roughly 1% of the
// paper's publisher pool but the full 108 campaigns — big enough for
// every campaign to be discoverable, small enough for a minutes-long
// full pipeline run.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		SeedPublishers:    900,
		NewNetPublishers:  90,
		Advertisers:       120,
		ParkedFamilies:    11,
		AdultFamilies:     6,
		ShortenerFamilies: 4,
		SpuriousFamilies:  1,
		FamilyDomains:     8,
		OverlapRate:       0.15,
		EphemeralRate:     0.10,
	}
}

// TinyConfig is a fast smoke-test scale.
func TinyConfig() Config {
	c := DefaultConfig()
	c.SeedPublishers = 120
	c.NewNetPublishers = 12
	c.Advertisers = 30
	c.CampaignCounts = map[secamp.Category]int{
		secamp.FakeSoftware:  6,
		secamp.Registration:  4,
		secamp.Lottery:       2,
		secamp.Notifications: 1,
		secamp.Scareware:     1,
		secamp.TechSupport:   1,
	}
	return c
}

// Publisher is one ad-publishing website.
type Publisher struct {
	Host     string
	Rank     int // popularity rank (1 = most popular)
	Category string
	Networks []string // network names whose snippets the page embeds

	snippets []string
	layout   publisherLayout
}

type publisherLayout struct {
	bg       int
	nThumbs  int
	seed     uint64
	hasVideo bool
}

// Truth is the ground-truth oracle recorded during generation and
// updated live as campaigns mint domains.
type Truth struct {
	mu sync.Mutex
	// AttackDomainCampaign maps attack host -> campaign ID.
	attackDomainCampaign map[string]string
	// DomainBorn maps attack host -> birth time.
	domainBorn map[string]time.Time
	// NetworkOfDomain maps ad-network serving/click domains -> network.
	networkOfDomain map[string]string
	// CampaignCategory maps campaign ID -> category.
	campaignCategory map[string]secamp.Category
	// FamilyOfDomain maps benign-family/advertiser domains -> family ID.
	familyOfDomain map[string]string
	gsb            *gsb.Blacklist
}

// RecordAttackDomain implements secamp.Recorder: it stores ground truth
// and tells the GSB simulator a malicious domain was born.
func (t *Truth) RecordAttackDomain(campaignID string, cat secamp.Category, host string, born time.Time) {
	t.mu.Lock()
	t.attackDomainCampaign[host] = campaignID
	t.domainBorn[host] = born
	t.mu.Unlock()
	t.gsb.ObserveMaliciousDomain(host, cat.Key(), born)
}

// FamilyOfDomain returns the benign family or advertiser that owns a
// domain ("" if none) — the benign-side ground truth used to score
// clustering purity.
func (t *Truth) FamilyOfDomain(host string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.familyOfDomain[host]
}

// CampaignOfAttackDomain returns the owning campaign ("" if none).
func (t *Truth) CampaignOfAttackDomain(host string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attackDomainCampaign[host]
}

// NetworkOfDomain returns the ad network owning a domain ("" if none).
func (t *Truth) NetworkOfDomain(host string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.networkOfDomain[host]
}

// CategoryOfCampaign returns a campaign's category and whether it exists.
func (t *Truth) CategoryOfCampaign(id string) (secamp.Category, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.campaignCategory[id]
	return c, ok
}

// BornAt returns an attack domain's birth time.
func (t *Truth) BornAt(host string) (time.Time, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.domainBorn[host]
	return b, ok
}

// AttackDomainCount returns how many attack domains exist so far.
func (t *Truth) AttackDomainCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.attackDomainCampaign)
}

// World is the fully assembled synthetic web.
type World struct {
	Cfg      Config
	Clock    *vclock.Clock
	Internet *webtx.Internet
	Search   *websearch.Engine
	Webcat   *webcat.Service
	GSB      *gsb.Blacklist
	VT       *vtsim.Service
	Truth    *Truth

	Networks    []*adnet.Network
	Campaigns   []*secamp.Campaign
	Advertisers []*secamp.Advertiser
	Families    []*secamp.BenignFamily
	Publishers  []*Publisher

	src *rng.Source
}

// Build assembles a world from the config.
func Build(cfg Config) *World {
	if cfg.CampaignCounts == nil {
		cfg.CampaignCounts = secamp.PaperCampaignCounts
	}
	if cfg.FamilyDomains < 5 {
		cfg.FamilyDomains = 5
	}
	src := rng.New(cfg.Seed)
	w := &World{
		Cfg:      cfg,
		Clock:    vclock.New(),
		Internet: webtx.NewInternet(),
		Search:   websearch.NewEngine(),
		src:      src,
	}
	w.Internet.SetLogging(true)
	w.Webcat = webcat.NewService(src)
	w.GSB = gsb.NewBlacklist(cfg.GSBProfiles, src)
	w.VT = vtsim.NewService(vtsim.Profile{}, src)
	w.Truth = &Truth{
		attackDomainCampaign: map[string]string{},
		domainBorn:           map[string]time.Time{},
		networkOfDomain:      map[string]string{},
		campaignCategory:     map[string]secamp.Category{},
		familyOfDomain:       map[string]string{},
		gsb:                  w.GSB,
	}

	w.buildNetworks()
	w.buildCampaigns()
	w.buildBenign()
	w.buildPublishers()
	return w
}

func (w *World) buildNetworks() {
	for _, spec := range adnet.Specs {
		n := adnet.New(spec, w.src)
		n.Install(w.Internet)
		w.Networks = append(w.Networks, n)
		w.Truth.mu.Lock()
		for _, d := range n.AllDomains() {
			w.Truth.networkOfDomain[d] = spec.Name
		}
		w.Truth.mu.Unlock()
	}
}

func (w *World) buildCampaigns() {
	csrc := w.src.Split("campaigns")
	idx := 0
	for _, cat := range secamp.AllCategories {
		count := w.Cfg.CampaignCounts[cat]
		for i := 0; i < count; i++ {
			id := fmt.Sprintf("%s-%02d", cat.Key(), i)
			ccfg := secamp.DefaultConfig(csrc)
			if csrc.Bool(w.Cfg.EphemeralRate) {
				ccfg.Lifetime = time.Duration(csrc.IntRange(48, 120)) * time.Hour
			}
			c := secamp.New(id, cat, i, ccfg, w.Clock, w.src, w.Truth)
			c.Install(w.Internet)
			w.Truth.mu.Lock()
			w.Truth.campaignCategory[id] = cat
			w.Truth.mu.Unlock()
			w.Campaigns = append(w.Campaigns, c)
			secamp.InstallCustomerSite(w.Internet, c.CustomerHost())

			// Contract the campaign to 1-4 networks, weighted by market
			// share, compatible categories only.
			weights := make([]float64, len(w.Networks))
			for j, n := range w.Networks {
				weights[j] = n.Spec.MarketWeight
			}
			contracts := csrc.IntRange(1, 4)
			chosen := map[int]bool{}
			for k := 0; k < contracts; k++ {
				j := csrc.Weighted(weights)
				if chosen[j] {
					continue
				}
				chosen[j] = true
				w.Networks[j].AddCampaign(c)
			}
			idx++
		}
	}
}

func (w *World) buildBenign() {
	fsrc := w.src.Split("benign")
	addFamily := func(kind secamp.BenignKind, count int, prefix string) {
		for i := 0; i < count; i++ {
			n := w.Cfg.FamilyDomains
			if kind == secamp.BenignSpurious {
				n = 5
			}
			f := secamp.NewBenignFamily(fmt.Sprintf("%s-%d", prefix, i), kind, n, fsrc)
			f.Install(w.Internet)
			w.Families = append(w.Families, f)
			w.Truth.mu.Lock()
			for _, d := range f.Domains {
				w.Truth.familyOfDomain[d] = f.ID
			}
			w.Truth.mu.Unlock()
			for _, net := range w.Networks {
				net.AddBenignFamily(f)
			}
		}
	}
	addFamily(secamp.BenignParked, w.Cfg.ParkedFamilies, "parked")
	addFamily(secamp.BenignAdultStock, w.Cfg.AdultFamilies, "adult")
	addFamily(secamp.BenignShortener, w.Cfg.ShortenerFamilies, "shortener")
	addFamily(secamp.BenignSpurious, w.Cfg.SpuriousFamilies, "spurious")

	for i := 0; i < w.Cfg.Advertisers; i++ {
		a := secamp.NewAdvertiser(fmt.Sprintf("adv-%03d", i), fsrc)
		a.Install(w.Internet)
		w.Advertisers = append(w.Advertisers, a)
		w.Truth.mu.Lock()
		w.Truth.familyOfDomain[a.Host] = "adv-" + a.Host
		w.Truth.mu.Unlock()
	}
	// Every network gets a slice of the advertiser pool.
	for _, net := range w.Networks {
		count := fsrc.IntRange(10, 30)
		if count > len(w.Advertisers) {
			count = len(w.Advertisers)
		}
		for _, j := range fsrc.Perm(len(w.Advertisers))[:count] {
			net.AddAdvertiser(w.Advertisers[j])
		}
	}
}

var pubTLDs = []string{"com", "net", "org", "info", "to", "cc", "me", "tv", "io", "ws", "co.uk", "xyz"}

func (w *World) buildPublishers() {
	psrc := w.src.Split("publishers")
	seedNets := make([]*adnet.Network, 0, len(w.Networks))
	newNets := make([]*adnet.Network, 0, 3)
	for _, n := range w.Networks {
		if n.Spec.Seed {
			seedNets = append(seedNets, n)
		} else {
			newNets = append(newNets, n)
		}
	}
	seedWeights := make([]float64, len(seedNets))
	for i, n := range seedNets {
		seedWeights[i] = n.Spec.MarketWeight
	}

	makePublisher := func(i int, nets []*adnet.Network) *Publisher {
		host := fmt.Sprintf("%s%d.%s", psrc.Token(psrc.IntRange(5, 11)), psrc.Intn(1000), rng.Pick(psrc, pubTLDs))
		rank := 10001 + psrc.Intn(3000000)
		r := psrc.Float64()
		if r < 0.0001 {
			rank = 1 + psrc.Intn(999)
		} else if r < 0.0012 {
			rank = 1000 + psrc.Intn(9000)
		}
		p := &Publisher{
			Host:     host,
			Rank:     rank,
			Category: w.Webcat.AssignRandom(host),
			layout: publisherLayout{
				bg:       0x909090 + psrc.Intn(0x6f6f6f),
				nThumbs:  psrc.IntRange(2, 6),
				seed:     uint64(psrc.Int63()) | 1,
				hasVideo: psrc.Bool(0.4),
			},
		}
		zone := adnet.ZoneFor(host)
		for _, n := range nets {
			p.Networks = append(p.Networks, n.Name())
			p.snippets = append(p.snippets, n.SnippetCode(zone))
		}
		w.installPublisher(p)
		return p
	}

	for i := 0; i < w.Cfg.SeedPublishers; i++ {
		// 1-3 seed networks ("greedy" publishers stack several).
		count := 1 + psrc.Weighted([]float64{0.55, 0.3, 0.15})
		chosen := map[int]bool{}
		var nets []*adnet.Network
		for len(nets) < count {
			j := psrc.Weighted(seedWeights)
			if chosen[j] {
				continue
			}
			chosen[j] = true
			nets = append(nets, seedNets[j])
		}
		// Some seed publishers also carry an unknown network's snippet —
		// this is how "unknown" SE attacks reach the seed crawl.
		if psrc.Bool(w.Cfg.OverlapRate) && len(newNets) > 0 {
			nets = append(nets, rng.Pick(psrc, newNets))
		}
		w.Publishers = append(w.Publishers, makePublisher(i, nets))
	}
	for i := 0; i < w.Cfg.NewNetPublishers; i++ {
		nets := []*adnet.Network{rng.Pick(psrc, newNets)}
		w.Publishers = append(w.Publishers, makePublisher(w.Cfg.SeedPublishers+i, nets))
	}
}

// installPublisher registers the publisher's host and indexes its page
// source in the search engine.
func (w *World) installPublisher(p *Publisher) {
	doc := p.buildDoc()
	source := doc.Serialize()
	w.Search.Index(p.Host, source, p.Rank)
	w.Internet.Register(p.Host, webtx.HandlerFunc(func(req *webtx.Request) *webtx.Response {
		// Rebuild per request (documents are mutated by script execution
		// in each browsing session and must not be shared across visits).
		return webtx.DocumentPage(p.buildDoc())
	}))
}

// buildDoc builds the publisher's front page: thumbnails, an optional
// fake video player, and the ad-network snippets.
func (p *Publisher) buildDoc() *dom.Document {
	root := dom.NewElement("body")
	root.W, root.H = 1024, 768
	root.Style.Background = p.layout.bg
	doc := &dom.Document{URL: "http://" + p.Host + "/", Title: p.Host, Root: root}

	header := dom.NewElement("div").SetAttr("id", "header")
	header.W, header.H = 1024, 60
	header.Style.Background = p.layout.bg - 0x202020
	root.Append(header)

	if p.layout.hasVideo {
		player := dom.NewElement("img").SetAttr("id", "player").SetAttr("src", "/player.jpg")
		player.X, player.Y, player.W, player.H = 152, 100, 720, 405
		player.Style.Background = 0x101010
		root.Append(player)
	}
	for i := 0; i < p.layout.nThumbs; i++ {
		th := dom.NewElement("img").SetAttr("id", fmt.Sprintf("thumb%d", i)).
			SetAttr("src", fmt.Sprintf("/t%d.jpg", i))
		th.X = 40 + (i%3)*330
		th.Y = 540 + (i/3)*110
		th.W, th.H = 300, 100
		th.Style.Background = int(p.layout.seed>>uint(i*3)) % 0xffffff
		root.Append(th)
	}
	for _, sn := range p.snippets {
		doc.Scripts = append(doc.Scripts, dom.ScriptRef{Code: sn})
	}
	return doc
}

// SeedPublisherHosts returns the hosts of publishers that embed at least
// one seed network (ground truth; the pipeline derives its own list via
// the search engine).
func (w *World) SeedPublisherHosts() []string {
	var out []string
	for _, p := range w.Publishers {
		for _, n := range p.Networks {
			if isSeedName(n) {
				out = append(out, p.Host)
				break
			}
		}
	}
	return out
}

func isSeedName(name string) bool {
	for _, s := range adnet.Specs {
		if s.Name == name {
			return s.Seed
		}
	}
	return false
}

// NetworkByName returns the network with the given name, or nil.
func (w *World) NetworkByName(name string) *adnet.Network {
	for _, n := range w.Networks {
		if n.Name() == name {
			return n
		}
	}
	return nil
}

// CampaignByID returns the campaign with the given id, or nil.
func (w *World) CampaignByID(id string) *secamp.Campaign {
	for _, c := range w.Campaigns {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// PublisherByHost returns the publisher serving host, or nil.
func (w *World) PublisherByHost(host string) *Publisher {
	for _, p := range w.Publishers {
		if p.Host == host {
			return p
		}
	}
	return nil
}
