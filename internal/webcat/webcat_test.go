package webcat

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

func TestLookupUnknown(t *testing.T) {
	s := NewService(rng.New(1))
	if got := s.Lookup("x.com"); got != "Uncategorized" {
		t.Fatalf("Lookup = %q", got)
	}
}

func TestAssignAndLookup(t *testing.T) {
	s := NewService(rng.New(2))
	s.Assign("pirate.to", "Piracy/Copyright Concerns")
	if got := s.Lookup("pirate.to"); got != "Piracy/Copyright Concerns" {
		t.Fatalf("Lookup = %q", got)
	}
}

func TestAssignRandomFollowsDistribution(t *testing.T) {
	s := NewService(rng.New(3))
	counts := map[string]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[s.AssignRandom(fmt.Sprintf("h%d.com", i))]++
	}
	// Every Table 2 category should appear, and Suspicious should be the
	// most common (15.81% weight).
	for _, c := range Categories {
		if counts[c.Name] == 0 {
			t.Errorf("category %q never assigned", c.Name)
		}
	}
	max := ""
	for name, c := range counts {
		if max == "" || c > counts[max] {
			max = name
		}
	}
	if max != "Suspicious" {
		t.Fatalf("most common = %q", max)
	}
}

func TestAggregateOrderingAndPercent(t *testing.T) {
	s := NewService(rng.New(4))
	hosts := []string{"a.com", "b.com", "c.com", "d.com"}
	s.Assign("a.com", "Games")
	s.Assign("b.com", "Games")
	s.Assign("c.com", "Health")
	// d.com stays Uncategorized.
	rows := s.Aggregate(hosts)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Category != "Games" || rows[0].Count != 2 || rows[0].Percent != 50 {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	// Tie between Health and Uncategorized broken alphabetically.
	if rows[1].Category != "Health" || rows[2].Category != "Uncategorized" {
		t.Fatalf("tie order: %+v", rows[1:])
	}
}

func TestAggregateEmpty(t *testing.T) {
	s := NewService(rng.New(5))
	if rows := s.Aggregate(nil); len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestTableTwoHasTwentyCategories(t *testing.T) {
	if len(Categories) != 20 {
		t.Fatalf("Categories = %d, Table 2 lists 20", len(Categories))
	}
	// Weights should be descending as in the paper's table.
	for i := 1; i < len(Categories); i++ {
		if Categories[i].Weight > Categories[i-1].Weight {
			t.Fatalf("weights not descending at %d", i)
		}
	}
}
