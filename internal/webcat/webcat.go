// Package webcat simulates the website categorisation service (Symantec
// WebPulse in the paper) used to characterise the publisher sites that
// host SEACMA ads — Table 2 of the paper is a group-by over these
// categories.
package webcat

import (
	"sort"
	"sync"

	"repro/internal/rng"
)

// Categories, with Table 2's relative frequencies among SEACMA-hosting
// publishers. The generator assigns publisher categories from this
// distribution so the reproduced table keeps the paper's ordering.
var Categories = []struct {
	Name   string
	Weight float64
}{
	{"Suspicious", 15.81},
	{"Pornography", 13.52},
	{"Web Hosting", 8.85},
	{"Entertainment", 6.57},
	{"Personal Sites", 6.46},
	{"Malicious Sources/Malnets", 6.25},
	{"Dynamic DNS Host", 4.60},
	{"Technology/Internet", 4.02},
	{"Piracy/Copyright Concerns", 3.91},
	{"Games", 3.11},
	{"TV/Video Streams", 2.73},
	{"Phishing", 2.46},
	{"Business/Economy", 1.80},
	{"Adult/Mature Content", 1.72},
	{"Sports/Recreation", 1.52},
	{"Education", 1.49},
	{"Social Networking", 1.08},
	{"Placeholders", 1.05},
	{"Health", 1.01},
	{"Society/Daily Living", 0.98},
}

// Service is the category lookup API. The world generator registers each
// publisher's category at creation; the pipeline only calls Lookup.
type Service struct {
	mu     sync.RWMutex
	byHost map[string]string
	src    *rng.Source
}

// NewService returns an empty categoriser drawing assignment randomness
// from src.
func NewService(src *rng.Source) *Service {
	return &Service{byHost: map[string]string{}, src: src.Split("webcat")}
}

// AssignRandom draws a category from the Table 2 distribution, registers
// it for host, and returns it.
func (s *Service) AssignRandom(host string) string {
	weights := make([]float64, len(Categories))
	for i, c := range Categories {
		weights[i] = c.Weight
	}
	cat := Categories[s.src.Weighted(weights)].Name
	s.Assign(host, cat)
	return cat
}

// Assign registers an explicit category for host.
func (s *Service) Assign(host, category string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byHost[host] = category
}

// Lookup returns the category for host; unknown hosts report
// "Uncategorized", as the real service does.
func (s *Service) Lookup(host string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c, ok := s.byHost[host]; ok {
		return c
	}
	return "Uncategorized"
}

// CategoryCount is one row of a Table 2-style aggregation.
type CategoryCount struct {
	Category string
	Count    int
	Percent  float64
}

// Aggregate groups hosts by category and returns rows sorted by
// descending count (ties alphabetical), exactly the shape of Table 2.
func (s *Service) Aggregate(hosts []string) []CategoryCount {
	counts := map[string]int{}
	for _, h := range hosts {
		counts[s.Lookup(h)]++
	}
	out := make([]CategoryCount, 0, len(counts))
	for c, n := range counts {
		out = append(out, CategoryCount{Category: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Category < out[j].Category
	})
	total := len(hosts)
	if total > 0 {
		for i := range out {
			out[i].Percent = 100 * float64(out[i].Count) / float64(total)
		}
	}
	return out
}
