package adscript

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// The pure builtins are stateless, so every interpreter shares one
// frozen scope holding them instead of re-installing ~15 HostFuncs per
// page load. Env.set never writes a frozen scope (assignments shadow in
// the interpreter's own globals), which keeps the sharing invisible.
var (
	builtinOnce sync.Once
	builtinRoot *Env
)

func builtinEnv() *Env {
	builtinOnce.Do(func() {
		builtinRoot = NewEnv(nil)
		installPureBuiltins(builtinRoot)
		builtinRoot.frozen = true
	})
	return builtinRoot
}

// installPureBuiltins defines the environment-independent builtins every
// script context gets. Host-environment objects (window, document,
// navigator) are installed by the browser.
func installPureBuiltins(env *Env) {
	env.Define("dec", &HostFunc{Name: "dec", Fn: builtinDec})
	env.Define("enc", &HostFunc{Name: "enc", Fn: builtinEnc})
	env.Define("str", &HostFunc{Name: "str", Fn: func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errors.New("want 1 arg")
		}
		return Stringify(args[0]), nil
	}})
	env.Define("num", &HostFunc{Name: "num", Fn: func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errors.New("want 1 arg")
		}
		s, ok := args[0].(string)
		if !ok {
			if n, ok := args[0].(float64); ok {
				return n, nil
			}
			return nil, fmt.Errorf("cannot convert %s", typeName(args[0]))
		}
		n, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", s)
		}
		return n, nil
	}})
	env.Define("len", &HostFunc{Name: "len", Fn: func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errors.New("want 1 arg")
		}
		switch t := args[0].(type) {
		case string:
			return numValue(float64(len(t))), nil
		case *Array:
			return numValue(float64(len(t.Elems))), nil
		default:
			return nil, fmt.Errorf("len of %s", typeName(args[0]))
		}
	}})
	env.Define("push", &HostFunc{Name: "push", Fn: func(args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errors.New("want 2 args")
		}
		arr, ok := args[0].(*Array)
		if !ok {
			return nil, errors.New("first arg must be array")
		}
		arr.Elems = append(arr.Elems, args[1])
		return numValue(float64(len(arr.Elems))), nil
	}})
	env.Define("substr", &HostFunc{Name: "substr", Fn: func(args []Value) (Value, error) {
		if len(args) != 3 {
			return nil, errors.New("want 3 args")
		}
		s, ok1 := args[0].(string)
		from, ok2 := args[1].(float64)
		to, ok3 := args[2].(float64)
		if !ok1 || !ok2 || !ok3 {
			return nil, errors.New("want (string, number, number)")
		}
		f, t := int(from), int(to)
		if f < 0 || t > len(s) || f > t {
			return nil, fmt.Errorf("bad range [%d:%d] of %d", f, t, len(s))
		}
		return s[f:t], nil
	}})
	env.Define("indexOf", &HostFunc{Name: "indexOf", Fn: func(args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errors.New("want 2 args")
		}
		s, ok1 := args[0].(string)
		sub, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, errors.New("want (string, string)")
		}
		return numValue(float64(strings.Index(s, sub))), nil
	}})
	env.Define("split", &HostFunc{Name: "split", Fn: func(args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errors.New("want 2 args")
		}
		s, ok1 := args[0].(string)
		sep, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, errors.New("want (string, string)")
		}
		parts := strings.Split(s, sep)
		arr := &Array{Elems: make([]Value, len(parts))}
		for i, p := range parts {
			arr.Elems[i] = p
		}
		return arr, nil
	}})
	env.Define("join", &HostFunc{Name: "join", Fn: func(args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errors.New("want 2 args")
		}
		arr, ok1 := args[0].(*Array)
		sep, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, errors.New("want (array, string)")
		}
		parts := make([]string, len(arr.Elems))
		for i, e := range arr.Elems {
			parts[i] = Stringify(e)
		}
		return strings.Join(parts, sep), nil
	}})
	env.Define("charAt", &HostFunc{Name: "charAt", Fn: func(args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errors.New("want 2 args")
		}
		s, ok1 := args[0].(string)
		i, ok2 := args[1].(float64)
		if !ok1 || !ok2 || int(i) < 0 || int(i) >= len(s) {
			return nil, errors.New("bad charAt")
		}
		return charValue(s[int(i)]), nil
	}})
	env.Define("fromCharCode", &HostFunc{Name: "fromCharCode", Fn: func(args []Value) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			n, ok := a.(float64)
			if !ok {
				return nil, errors.New("want numbers")
			}
			b.WriteByte(byte(int(n)))
		}
		return b.String(), nil
	}})
	env.Define("charCodeAt", &HostFunc{Name: "charCodeAt", Fn: func(args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errors.New("want 2 args")
		}
		s, ok1 := args[0].(string)
		i, ok2 := args[1].(float64)
		if !ok1 || !ok2 || int(i) < 0 || int(i) >= len(s) {
			return nil, errors.New("bad charCodeAt")
		}
		return numValue(float64(s[int(i)])), nil
	}})
	env.Define("floor", &HostFunc{Name: "floor", Fn: func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errors.New("want 1 arg")
		}
		n, ok := args[0].(float64)
		if !ok {
			return nil, errors.New("want number")
		}
		return numValue(float64(int64(n))), nil
	}})
}

// EncodeString scrambles s with a rolling XOR keyed by key and returns the
// hex form. Ad-network generators use it to hide URLs from static
// inspection; the paired runtime builtin "dec" reverses it.
func EncodeString(s string, key byte) string {
	b := []byte(s)
	k := key
	for i := range b {
		b[i] ^= k
		k = k*31 + 7
	}
	return hex.EncodeToString(b)
}

// DecodeString reverses EncodeString; exported for tests and offline
// analysis tooling.
func DecodeString(encoded string, key byte) (string, error) {
	b, err := hex.DecodeString(encoded)
	if err != nil {
		return "", fmt.Errorf("adscript: decode: %w", err)
	}
	k := key
	for i := range b {
		b[i] ^= k
		k = k*31 + 7
	}
	return string(b), nil
}

func builtinDec(args []Value) (Value, error) {
	if len(args) != 2 {
		return nil, errors.New("want (string, number)")
	}
	s, ok1 := args[0].(string)
	key, ok2 := args[1].(float64)
	if !ok1 || !ok2 {
		return nil, errors.New("want (string, number)")
	}
	out, err := decodeMemoized(s, byte(int(key)))
	if err != nil {
		return nil, err
	}
	return out, nil
}

func builtinEnc(args []Value) (Value, error) {
	if len(args) != 2 {
		return nil, errors.New("want (string, number)")
	}
	s, ok1 := args[0].(string)
	key, ok2 := args[1].(float64)
	if !ok1 || !ok2 {
		return nil, errors.New("want (string, number)")
	}
	return EncodeString(s, byte(int(key))), nil
}
