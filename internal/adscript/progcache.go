package adscript

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// DefaultProgramCacheEntries bounds a program cache built with
// maxEntries <= 0. Ad-network snippets and campaign templates repeat
// heavily, so the working set is a few hundred distinct sources; the
// default leaves ample headroom at a few kilobytes per entry.
const DefaultProgramCacheEntries = 1 << 14

// SourceFingerprint is a 128-bit content address of a script source.
// Two lanes — FNV-1a and a golden-ratio multiplicative mix — keep
// accidental collisions below any realistic corpus size, matching the
// capture cache's DocFingerprint design.
type SourceFingerprint struct{ A, B uint64 }

const (
	srcFNVOffset = 14695981039346656037
	srcFNVPrime  = 1099511628211
	srcMixMult   = 0x9E3779B97F4A7C15
)

// FingerprintSource computes the content address of source.
func FingerprintSource(source string) SourceFingerprint {
	fp := SourceFingerprint{A: srcFNVOffset, B: 0x243F6A8885A308D3}
	for i := 0; i < len(source); i++ {
		fp.A = (fp.A ^ uint64(source[i])) * srcFNVPrime
		fp.B = (fp.B + uint64(source[i])) * srcMixMult
		fp.B ^= fp.B >> 29
	}
	fp.A = (fp.A ^ uint64(len(source))) * srcFNVPrime
	fp.B = (fp.B + fp.A) * srcMixMult
	fp.B ^= fp.B >> 31
	return fp
}

// ProgramCache is the compile-once memo: a bounded, content-addressed
// map from script source to its parsed *Program. Programs are immutable
// (the interpreter walks the AST read-only), so one cached Program is
// shared by every interpreter across the crawler farm and the milking
// worker pools. A hit returns exactly what a fresh Parse would, so the
// cache cannot perturb any deterministic pipeline output.
//
// Safe for concurrent use. A nil *ProgramCache is valid and parses on
// every Get. Parse failures are not cached: the error path is cold (a
// malformed script fails the page load once) and caching errors would
// complicate the bound for no measurable win.
type ProgramCache struct {
	mu       sync.Mutex
	programs map[SourceFingerprint]*Program
	order    fifoQ[SourceFingerprint]
	max      int

	hits, misses, evictions atomic.Int64

	// Pre-resolved obs handles; all nil (no-op) without a registry.
	obsHits, obsMisses, obsEvictions *obs.Counter
	obsEntries                       *obs.Gauge
	obsMemoHits, obsMemoMisses       *obs.Gauge
	obsMemoEntries                   *obs.Gauge
}

// fifoQ is a slice-backed queue with amortised O(1) pops.
type fifoQ[T any] struct {
	items []T
	head  int
}

func (q *fifoQ[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifoQ[T]) pop() (T, bool) {
	var zero T
	if q.head >= len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head > 64 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			var z T
			q.items[i] = z
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

// NewProgramCache builds a compile-once cache bounded to maxEntries
// programs (<= 0 selects DefaultProgramCacheEntries). reg, when
// non-nil, receives hit/miss/eviction counters and the decode-memo
// gauges under the script_ prefix.
func NewProgramCache(maxEntries int, reg *obs.Registry) *ProgramCache {
	if maxEntries <= 0 {
		maxEntries = DefaultProgramCacheEntries
	}
	return &ProgramCache{
		programs: map[SourceFingerprint]*Program{},
		max:      maxEntries,

		obsHits:        reg.Counter("script_parse_hits_total"),
		obsMisses:      reg.Counter("script_parse_misses_total"),
		obsEvictions:   reg.Counter("script_parse_evictions_total"),
		obsEntries:     reg.Gauge("script_cache_entries"),
		obsMemoHits:    reg.Gauge("script_decode_memo_hits"),
		obsMemoMisses:  reg.Gauge("script_decode_memo_misses"),
		obsMemoEntries: reg.Gauge("script_decode_memo_entries"),
	}
}

// Get returns the parsed program for source, compiling it at most once
// per content address. Concurrent misses on the same source may parse
// twice; the cache converges on one entry either way. A nil cache
// parses unconditionally.
func (c *ProgramCache) Get(source string) (*Program, error) {
	if c == nil {
		return Parse(source)
	}
	fp := FingerprintSource(source)

	c.mu.Lock()
	if prog, ok := c.programs[fp]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		c.obsHits.Inc()
		return prog, nil
	}
	c.mu.Unlock()

	c.misses.Add(1)
	c.obsMisses.Inc()
	prog, err := Parse(source)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if _, ok := c.programs[fp]; !ok {
		c.order.push(fp)
	}
	c.programs[fp] = prog
	for len(c.programs) > c.max {
		old, ok := c.order.pop()
		if !ok {
			break
		}
		if _, present := c.programs[old]; present {
			delete(c.programs, old)
			c.evictions.Add(1)
			c.obsEvictions.Inc()
		}
	}
	c.obsEntries.Set(int64(len(c.programs)))
	c.mu.Unlock()
	c.exportMemoStats()
	return prog, nil
}

// Stats reports cumulative cache traffic. Usable without a registry.
func (c *ProgramCache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// exportMemoStats publishes the process-wide decode-memo gauges through
// this cache's registry. Called on misses (steady state is all hits, so
// the gauges settle quickly and cheaply).
func (c *ProgramCache) exportMemoStats() {
	if c.obsMemoHits == nil && c.obsMemoEntries == nil {
		return
	}
	hits, misses, entries := DecodeMemoStats()
	c.obsMemoHits.Set(hits)
	c.obsMemoMisses.Set(misses)
	c.obsMemoEntries.Set(entries)
}

// --- decode memo ---
//
// adnet/secamp emit every URL through EncodeString, and the scripts
// call dec() on the same payloads on every page load across hundreds of
// thousands of virtual sessions. The decode is pure — (ciphertext, key)
// fully determines the plaintext — so it is memoized process-wide in a
// bounded FIFO table. Decode errors are not cached (cold path).

const decodeMemoMax = 1 << 14

type decodeKey struct {
	enc string
	key byte
}

var (
	decodeMu                 sync.Mutex
	decodeMemo               = map[decodeKey]string{}
	decodeOrder              fifoQ[decodeKey]
	decodeHits, decodeMisses atomic.Int64
)

// decodeMemoized is DecodeString behind the process-wide memo table;
// the dec() builtin routes through it.
func decodeMemoized(enc string, key byte) (string, error) {
	k := decodeKey{enc: enc, key: key}
	decodeMu.Lock()
	if out, ok := decodeMemo[k]; ok {
		decodeMu.Unlock()
		decodeHits.Add(1)
		return out, nil
	}
	decodeMu.Unlock()

	decodeMisses.Add(1)
	out, err := DecodeString(enc, key)
	if err != nil {
		return "", err
	}

	decodeMu.Lock()
	if _, ok := decodeMemo[k]; !ok {
		decodeOrder.push(k)
	}
	decodeMemo[k] = out
	for len(decodeMemo) > decodeMemoMax {
		old, ok := decodeOrder.pop()
		if !ok {
			break
		}
		delete(decodeMemo, old)
	}
	decodeMu.Unlock()
	return out, nil
}

// DecodeMemoStats reports the process-wide decode-memo traffic and
// current size.
func DecodeMemoStats() (hits, misses, entries int64) {
	decodeMu.Lock()
	entries = int64(len(decodeMemo))
	decodeMu.Unlock()
	return decodeHits.Load(), decodeMisses.Load(), entries
}
