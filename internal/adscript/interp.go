package adscript

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a runtime value: nil (null), bool, float64, string, *Array,
// *Object, *Closure, or *HostFunc.
type Value any

// Interned values for the interpreter hot loop. Boxing a float64 or a
// string into an interface heap-allocates on every conversion; ad
// snippets spend most of their steps on small loop counters, byte
// values (charCodeAt/fromCharCode decode loops) and single-character
// strings, so those are pre-boxed once and shared. Interning changes
// no observable behaviour: the boxed values compare and stringify
// exactly like freshly converted ones.
var (
	smallNumVals   [256]Value // float64(0) .. float64(255)
	singleCharVals [256]Value // "\x00" .. "\xff"
	valTrue        Value      = true
	valFalse       Value      = false
)

func init() {
	for i := range smallNumVals {
		smallNumVals[i] = float64(i)
		singleCharVals[i] = string(rune(byte(i)))
	}
}

// numValue boxes a float64, reusing the interned box for small
// non-negative integers (the overwhelmingly common case in ad-script
// loops and string/byte math).
func numValue(f float64) Value {
	if i := int(f); float64(i) == f && i >= 0 && i < 256 {
		return smallNumVals[i]
	}
	return f
}

// boolValue boxes a bool without allocating.
func boolValue(b bool) Value {
	if b {
		return valTrue
	}
	return valFalse
}

// charValue boxes a single-byte string, reusing the interned box.
func charValue(c byte) Value { return singleCharVals[c] }

// Array is a mutable value slice.
type Array struct{ Elems []Value }

// Object is a mutable string-keyed record. Host environments (window,
// navigator, document) are Objects whose fields include HostFuncs.
type Object struct{ Fields map[string]Value }

// NewObject returns an empty object.
func NewObject() *Object { return &Object{Fields: map[string]Value{}} }

// Set assigns a field and returns the object for chaining.
func (o *Object) Set(k string, v Value) *Object { o.Fields[k] = v; return o }

// Closure is a user-defined function bound to its defining environment.
type Closure struct {
	params []string
	body   []node
	env    *Env
}

// HostFunc is a builtin provided by the embedding environment. Name is
// the canonical dotted name used in traces ("window.open").
type HostFunc struct {
	Name string
	Fn   func(args []Value) (Value, error)
}

// Env is a lexical scope.
type Env struct {
	vars   map[string]Value
	parent *Env
	// frozen marks a shared, immutable scope (the process-wide builtin
	// root). Assignments never land in a frozen scope: they define in
	// the outermost mutable scope instead, shadowing the builtin — the
	// same observable behaviour as overwriting a per-interpreter global.
	frozen bool
}

// NewEnv returns a fresh scope with the given parent (nil for global).
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[string]Value{}, parent: parent}
}

// Define introduces a binding in this scope.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// Get resolves a name through the scope chain.
func (e *Env) Get(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// set assigns to an existing binding, or defines globally when absent
// (mirroring sloppy-mode JS, which ad snippets rely on). "Globally"
// means the outermost mutable scope: the frozen builtin root below it
// is shared by every interpreter and is never written.
func (e *Env) set(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if s.frozen {
			return
		}
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
		if s.parent == nil || s.parent.frozen {
			s.vars[name] = v
			return
		}
	}
}

// APICall is one traced host-API invocation.
type APICall struct {
	Name      string   // canonical host function name
	Args      []string // stringified arguments
	ScriptURL string   // URL of the script that made the call
	Line      int      // source line of the call site
}

// Tracer receives every host-API call made during execution.
type Tracer interface {
	TraceAPICall(call APICall)
}

// TracerFunc adapts a function to Tracer.
type TracerFunc func(call APICall)

// TraceAPICall implements Tracer.
func (f TracerFunc) TraceAPICall(call APICall) { f(call) }

// RuntimeError reports an execution failure.
type RuntimeError struct {
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("adscript: runtime error at line %d: %s", e.Line, e.Msg)
}

// control-flow signals. The return signal is a singleton: the returned
// value travels in Interp.retVal instead of a per-return allocation.
type returnSignal struct{}

func (returnSignal) Error() string { return "return outside function" }

var errReturn error = returnSignal{}

// Interp executes Programs against a global environment. One Interp
// corresponds to one page's script context; the browser creates one
// Interp per tab and resets it between page loads.
type Interp struct {
	Globals *Env
	tracer  Tracer
	// ScriptURL labels traces from the currently executing script; the
	// browser sets it before each Run.
	ScriptURL string

	steps    int
	maxSteps int
	depth    int
	maxDepth int

	// retVal carries the value of the pending return signal.
	retVal Value
	// closures counts Closure values created so far; block scopes are
	// recycled only when no closure was created during their execution
	// (a closure captures its whole defining scope chain).
	closures int
	// scopePool recycles block/call scopes (the interpreter is
	// single-threaded, so a plain freelist beats sync.Pool).
	scopePool []*Env
	// argArena is the call-argument scratch stack: arguments for nested
	// calls are appended and truncated LIFO, so steady-state calls
	// allocate no arg slices. Host functions must not retain the args
	// slice they receive (copy values out instead).
	argArena []Value
	// active tracks nesting into Run/Call; the browser uses it to tell
	// whether a script is mid-flight on this interpreter.
	active int
}

// NewInterp returns an interpreter with the default pure builtins
// installed and a generous-but-finite step budget. The builtins live in
// a shared immutable parent scope, so constructing an interpreter is
// cheap enough to do per page load.
func NewInterp() *Interp {
	return &Interp{
		Globals:  NewEnv(builtinEnv()),
		maxSteps: 200000,
		maxDepth: 64,
	}
}

// Reset clears the interpreter's page state — globals, budgets, scratch
// arenas — so one Interp can be reused across page loads in a tab. The
// tracer installed with SetTracer is retained.
func (in *Interp) Reset() {
	clear(in.Globals.vars)
	in.ScriptURL = ""
	in.steps, in.depth, in.closures = 0, 0, 0
	in.retVal = nil
	for i := range in.argArena {
		in.argArena[i] = nil
	}
	in.argArena = in.argArena[:0]
}

// Active reports whether the interpreter is currently executing (a Run
// or Call frame is on the stack). The browser checks it before reusing
// a tab's interpreter: a script-triggered navigation must not reset the
// environment out from under the still-running handler.
func (in *Interp) Active() bool { return in.active > 0 }

// newScope takes a scope from the freelist (or allocates one) and
// parents it.
func (in *Interp) newScope(parent *Env) *Env {
	if n := len(in.scopePool); n > 0 {
		e := in.scopePool[n-1]
		in.scopePool = in.scopePool[:n-1]
		e.parent = parent
		return e
	}
	return NewEnv(parent)
}

// releaseScope returns a scope to the freelist when it provably did not
// escape: closuresBefore is the closure counter captured before the
// scope's execution window; any closure created during the window has
// this scope on its chain, so an unchanged counter proves nothing
// retains it.
func (in *Interp) releaseScope(e *Env, closuresBefore int) {
	if in.closures != closuresBefore || len(e.vars) > 64 || len(in.scopePool) >= 64 {
		return
	}
	clear(e.vars)
	e.parent = nil
	in.scopePool = append(in.scopePool, e)
}

// SetTracer installs the API-call tracer.
func (in *Interp) SetTracer(t Tracer) { in.tracer = t }

// SetStepBudget overrides the execution step budget (for tests).
func (in *Interp) SetStepBudget(n int) { in.maxSteps = n }

// ResetBudget restores the step counter; the browser calls this per
// dispatched event so a page cannot starve later handlers.
func (in *Interp) ResetBudget() { in.steps = 0 }

// Run executes a program's top-level statements in the global scope.
// Programs are immutable: one parsed Program may be run concurrently by
// any number of interpreters (the compile-once cache relies on this).
func (in *Interp) Run(prog *Program) error {
	in.active++
	err := in.execBlock(prog.stmts, in.Globals)
	in.active--
	if err == errReturn {
		in.retVal = nil
		return nil // top-level return: tolerated
	}
	return err
}

// RunSource parses and runs source in one call.
func (in *Interp) RunSource(source string) error {
	prog, err := Parse(source)
	if err != nil {
		return err
	}
	return in.Run(prog)
}

// RunCached runs source through the given compile-once cache (nil cache
// = parse per call) — the browser's fast path for repeated ad snippets.
func (in *Interp) RunCached(cache *ProgramCache, source string) error {
	prog, err := cache.Get(source)
	if err != nil {
		return err
	}
	return in.Run(prog)
}

// Call invokes a callable Value (Closure or HostFunc) with arguments; the
// browser uses it to dispatch event handlers and timer callbacks.
func (in *Interp) Call(fn Value, args ...Value) (Value, error) {
	in.active++
	v, err := in.callValue(fn, args, 0)
	in.active--
	return v, err
}

func (in *Interp) rerr(line int, format string, args ...any) error {
	return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (in *Interp) step(line int) error {
	in.steps++
	if in.steps > in.maxSteps {
		return &RuntimeError{Line: line, Msg: "step budget exhausted (possible page-locking loop)"}
	}
	return nil
}

func (in *Interp) execBlock(stmts []node, env *Env) error {
	for _, s := range stmts {
		if err := in.exec(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) exec(s node, env *Env) error {
	if err := in.step(s.nodeLine()); err != nil {
		return err
	}
	switch st := s.(type) {
	case *letStmt:
		v, err := in.eval(st.val, env)
		if err != nil {
			return err
		}
		env.Define(st.name, v)
		return nil
	case *assignStmt:
		v, err := in.eval(st.val, env)
		if err != nil {
			return err
		}
		return in.assign(st.target, v, env)
	case *ifStmt:
		cond, err := in.eval(st.cond, env)
		if err != nil {
			return err
		}
		if truthy(cond) {
			return in.execScoped(st.then, env)
		}
		if st.alt != nil {
			if st.altIsBlock {
				return in.execScoped(st.alt, env)
			}
			return in.exec(st.alt[0], env)
		}
		return nil
	case *whileStmt:
		for {
			cond, err := in.eval(st.cond, env)
			if err != nil {
				return err
			}
			if !truthy(cond) {
				return nil
			}
			if err := in.execScoped(st.body, env); err != nil {
				return err
			}
			if err := in.step(st.line); err != nil {
				return err
			}
		}
	case *returnStmt:
		var v Value
		if st.val != nil {
			var err error
			v, err = in.eval(st.val, env)
			if err != nil {
				return err
			}
		}
		in.retVal = v
		return errReturn
	case *exprStmt:
		_, err := in.eval(st.x, env)
		return err
	default:
		return in.rerr(s.nodeLine(), "unknown statement %T", s)
	}
}

// execScoped runs a block in a fresh child scope, recycling the scope
// when nothing escaped it.
func (in *Interp) execScoped(stmts []node, parent *Env) error {
	scope := in.newScope(parent)
	before := in.closures
	err := in.execBlock(stmts, scope)
	in.releaseScope(scope, before)
	return err
}

func (in *Interp) assign(target node, v Value, env *Env) error {
	switch t := target.(type) {
	case *ident:
		env.set(t.name, v)
		return nil
	case *memberExpr:
		obj, err := in.eval(t.obj, env)
		if err != nil {
			return err
		}
		o, ok := obj.(*Object)
		if !ok {
			return in.rerr(t.line, "cannot set property %q on %s", t.name, typeName(obj))
		}
		o.Fields[t.name] = v
		return nil
	case *indexExpr:
		obj, err := in.eval(t.obj, env)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.idx, env)
		if err != nil {
			return err
		}
		switch o := obj.(type) {
		case *Array:
			i, ok := idx.(float64)
			if !ok || int(i) < 0 || int(i) >= len(o.Elems) {
				return in.rerr(t.line, "bad array index %v", idx)
			}
			o.Elems[int(i)] = v
			return nil
		case *Object:
			k, ok := idx.(string)
			if !ok {
				return in.rerr(t.line, "object index must be string")
			}
			o.Fields[k] = v
			return nil
		default:
			return in.rerr(t.line, "cannot index %s", typeName(obj))
		}
	default:
		return in.rerr(target.nodeLine(), "invalid assignment target")
	}
}

func (in *Interp) eval(x node, env *Env) (Value, error) {
	if err := in.step(x.nodeLine()); err != nil {
		return nil, err
	}
	switch e := x.(type) {
	case *numLit:
		return e.boxed, nil
	case *strLit:
		return e.boxed, nil
	case *boolLit:
		return boolValue(e.val), nil
	case *nullLit:
		return nil, nil
	case *ident:
		v, ok := env.Get(e.name)
		if !ok {
			return nil, in.rerr(e.line, "undefined variable %q", e.name)
		}
		return v, nil
	case *arrayLit:
		arr := &Array{}
		if len(e.elems) > 0 {
			arr.Elems = make([]Value, 0, len(e.elems))
		}
		for _, el := range e.elems {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil
	case *objectLit:
		obj := NewObject()
		for i, k := range e.keys {
			v, err := in.eval(e.vals[i], env)
			if err != nil {
				return nil, err
			}
			obj.Fields[k] = v
		}
		return obj, nil
	case *funcLit:
		in.closures++
		return &Closure{params: e.params, body: e.body, env: env}, nil
	case *unaryExpr:
		v, err := in.eval(e.x, env)
		if err != nil {
			return nil, err
		}
		switch e.op {
		case "!":
			return boolValue(!truthy(v)), nil
		case "-":
			n, ok := v.(float64)
			if !ok {
				return nil, in.rerr(e.line, "cannot negate %s", typeName(v))
			}
			return numValue(-n), nil
		}
		return nil, in.rerr(e.line, "unknown unary %q", e.op)
	case *binaryExpr:
		return in.evalBinary(e, env)
	case *memberExpr:
		obj, err := in.eval(e.obj, env)
		if err != nil {
			return nil, err
		}
		switch o := obj.(type) {
		case *Object:
			return o.Fields[e.name], nil
		case *Array:
			if e.name == "length" {
				return numValue(float64(len(o.Elems))), nil
			}
		case string:
			if e.name == "length" {
				return numValue(float64(len(o))), nil
			}
		}
		return nil, in.rerr(e.line, "no property %q on %s", e.name, typeName(obj))
	case *indexExpr:
		obj, err := in.eval(e.obj, env)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(e.idx, env)
		if err != nil {
			return nil, err
		}
		switch o := obj.(type) {
		case *Array:
			i, ok := idx.(float64)
			if !ok || int(i) < 0 || int(i) >= len(o.Elems) {
				return nil, in.rerr(e.line, "bad array index %v", idx)
			}
			return o.Elems[int(i)], nil
		case string:
			i, ok := idx.(float64)
			if !ok || int(i) < 0 || int(i) >= len(o) {
				return nil, in.rerr(e.line, "bad string index %v", idx)
			}
			return charValue(o[int(i)]), nil
		case *Object:
			k, ok := idx.(string)
			if !ok {
				return nil, in.rerr(e.line, "object index must be string")
			}
			return o.Fields[k], nil
		default:
			return nil, in.rerr(e.line, "cannot index %s", typeName(obj))
		}
	case *callExpr:
		fn, err := in.eval(e.fn, env)
		if err != nil {
			return nil, err
		}
		// Arguments live in the LIFO arg arena: nested calls push past
		// this call's window and truncate back on return, so the hot
		// path allocates no arg slices.
		base := len(in.argArena)
		for _, a := range e.args {
			v, err := in.eval(a, env)
			if err != nil {
				in.argArena = in.argArena[:base]
				return nil, err
			}
			in.argArena = append(in.argArena, v)
		}
		v, err := in.callValue(fn, in.argArena[base:], e.line)
		in.argArena = in.argArena[:base]
		return v, err
	default:
		return nil, in.rerr(x.nodeLine(), "unknown expression %T", x)
	}
}

func (in *Interp) callValue(fn Value, args []Value, line int) (Value, error) {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > in.maxDepth {
		return nil, in.rerr(line, "call depth exceeded")
	}
	switch f := fn.(type) {
	case *HostFunc:
		if in.tracer != nil {
			strArgs := make([]string, len(args))
			for i, a := range args {
				strArgs[i] = Stringify(a)
			}
			in.tracer.TraceAPICall(APICall{Name: f.Name, Args: strArgs, ScriptURL: in.ScriptURL, Line: line})
		}
		v, err := f.Fn(args)
		if err != nil {
			return nil, &RuntimeError{Line: line, Msg: f.Name + ": " + err.Error()}
		}
		return v, nil
	case *Closure:
		env := in.newScope(f.env)
		before := in.closures
		for i, p := range f.params {
			if i < len(args) {
				env.Define(p, args[i])
			} else {
				env.Define(p, nil)
			}
		}
		err := in.execBlock(f.body, env)
		in.releaseScope(env, before)
		if err == errReturn {
			v := in.retVal
			in.retVal = nil
			return v, nil
		}
		return nil, err
	default:
		return nil, in.rerr(line, "%s is not callable", typeName(fn))
	}
}

func (in *Interp) evalBinary(e *binaryExpr, env *Env) (Value, error) {
	// Short-circuit logical operators.
	if e.op == "&&" || e.op == "||" {
		l, err := in.eval(e.l, env)
		if err != nil {
			return nil, err
		}
		if e.op == "&&" && !truthy(l) {
			return l, nil
		}
		if e.op == "||" && truthy(l) {
			return l, nil
		}
		return in.eval(e.r, env)
	}
	l, err := in.eval(e.l, env)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(e.r, env)
	if err != nil {
		return nil, err
	}
	switch e.op {
	case "==":
		return boolValue(valueEqual(l, r)), nil
	case "!=":
		return boolValue(!valueEqual(l, r)), nil
	case "+":
		// String concatenation when either side is a string.
		if ls, ok := l.(string); ok {
			return ls + Stringify(r), nil
		}
		if rs, ok := r.(string); ok {
			return Stringify(l) + rs, nil
		}
		ln, lok := l.(float64)
		rn, rok := r.(float64)
		if lok && rok {
			return numValue(ln + rn), nil
		}
		return nil, in.rerr(e.line, "cannot add %s and %s", typeName(l), typeName(r))
	case "-", "*", "/", "%", "<", ">", "<=", ">=":
		ln, lok := l.(float64)
		rn, rok := r.(float64)
		if !lok || !rok {
			// String ordering comparisons.
			if ls, ok := l.(string); ok {
				if rs, ok := r.(string); ok {
					switch e.op {
					case "<":
						return boolValue(ls < rs), nil
					case ">":
						return boolValue(ls > rs), nil
					case "<=":
						return boolValue(ls <= rs), nil
					case ">=":
						return boolValue(ls >= rs), nil
					}
				}
			}
			return nil, in.rerr(e.line, "numeric op %q on %s and %s", e.op, typeName(l), typeName(r))
		}
		switch e.op {
		case "-":
			return numValue(ln - rn), nil
		case "*":
			return numValue(ln * rn), nil
		case "/":
			if rn == 0 {
				return nil, in.rerr(e.line, "division by zero")
			}
			return numValue(ln / rn), nil
		case "%":
			if rn == 0 {
				return nil, in.rerr(e.line, "modulo by zero")
			}
			return numValue(float64(int64(ln) % int64(rn))), nil
		case "<":
			return boolValue(ln < rn), nil
		case ">":
			return boolValue(ln > rn), nil
		case "<=":
			return boolValue(ln <= rn), nil
		case ">=":
			return boolValue(ln >= rn), nil
		}
	}
	return nil, in.rerr(e.line, "unknown operator %q", e.op)
}

func truthy(v Value) bool {
	switch t := v.(type) {
	case nil:
		return false
	case bool:
		return t
	case float64:
		return t != 0
	case string:
		return t != ""
	default:
		return true
	}
}

func valueEqual(a, b Value) bool {
	switch av := a.(type) {
	case nil:
		return b == nil
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case float64:
		bv, ok := b.(float64)
		return ok && av == bv
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	default:
		return a == b // reference equality for arrays/objects/functions
	}
}

func typeName(v Value) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "bool"
	case float64:
		return "number"
	case string:
		return "string"
	case *Array:
		return "array"
	case *Object:
		return "object"
	case *Closure:
		return "function"
	case *HostFunc:
		return "hostfunc"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// Stringify renders a value the way traces and string concatenation see
// it.
func Stringify(v Value) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case bool:
		if t {
			return "true"
		}
		return "false"
	case float64:
		if t == float64(int64(t)) {
			return strconv.FormatInt(int64(t), 10)
		}
		return strconv.FormatFloat(t, 'g', -1, 64)
	case string:
		return t
	case *Array:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = Stringify(e)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case *Object:
		keys := make([]string, 0, len(t.Fields))
		for k := range t.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + ":" + Stringify(t.Fields[k])
		}
		return "{" + strings.Join(parts, ",") + "}"
	case *Closure:
		return "function"
	case *HostFunc:
		return "[native " + t.Name + "]"
	default:
		return fmt.Sprintf("%v", v)
	}
}
