package adscript

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string) (*Interp, []APICall) {
	t.Helper()
	in := NewInterp()
	var calls []APICall
	in.SetTracer(TracerFunc(func(c APICall) { calls = append(calls, c) }))
	if err := in.RunSource(src); err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return in, calls
}

func evalExpr(t *testing.T, expr string) Value {
	t.Helper()
	in := NewInterp()
	var got Value
	in.Globals.Define("sink", &HostFunc{Name: "sink", Fn: func(args []Value) (Value, error) {
		got = args[0]
		return nil, nil
	}})
	if err := in.RunSource("sink(" + expr + ");"); err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return got
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		{"1 + 2 * 3", 7.0},
		{"(1 + 2) * 3", 9.0},
		{"10 / 4", 2.5},
		{"7 % 3", 1.0},
		{"-5 + 2", -3.0},
		{"2 < 3", true},
		{"2 >= 3", false},
		{"'a' + 'b'", "ab"},
		{"'n=' + 42", "n=42"},
		{"1 + 2 == 3", true},
		{"'x' != 'y'", true},
		{"!false", true},
		{"true && false", false},
		{"false || 'fallback'", "fallback"},
		{"'abc' < 'abd'", true},
	}
	for _, c := range cases {
		if got := evalExpr(t, c.expr); got != c.want {
			t.Errorf("%s = %v (%T), want %v", c.expr, got, got, c.want)
		}
	}
}

func TestVariablesAndScopes(t *testing.T) {
	in, _ := run(t, `
		let x = 1;
		let f = function() { x = x + 10; return x; };
		f();
		f();
	`)
	v, ok := in.Globals.Get("x")
	if !ok || v != 21.0 {
		t.Fatalf("x = %v", v)
	}
}

func TestClosureCapture(t *testing.T) {
	in := NewInterp()
	src := `
		let make = function(n) { return function() { n = n + 1; return n; }; };
		let c = make(100);
	`
	if err := in.RunSource(src); err != nil {
		t.Fatal(err)
	}
	c, _ := in.Globals.Get("c")
	v1, err := in.Call(c)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := in.Call(c)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 101.0 || v2 != 102.0 {
		t.Fatalf("counter = %v, %v", v1, v2)
	}
}

func TestIfElseChain(t *testing.T) {
	in, _ := run(t, `
		let classify = function(n) {
			if (n < 0) { return "neg"; }
			else if (n == 0) { return "zero"; }
			else { return "pos"; }
		};
		let a = classify(0 - 5);
		let b = classify(0);
		let c = classify(5);
	`)
	for name, want := range map[string]string{"a": "neg", "b": "zero", "c": "pos"} {
		if v, _ := in.Globals.Get(name); v != want {
			t.Errorf("%s = %v, want %q", name, v, want)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	in, _ := run(t, `
		let sum = 0;
		let i = 0;
		while (i < 10) { sum = sum + i; i = i + 1; }
	`)
	if v, _ := in.Globals.Get("sum"); v != 45.0 {
		t.Fatalf("sum = %v", v)
	}
}

func TestStepBudgetStopsInfiniteLoop(t *testing.T) {
	in := NewInterp()
	in.SetStepBudget(1000)
	err := in.RunSource(`while (true) { let x = 1; }`)
	var re *RuntimeError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "step budget") {
		t.Fatalf("err = %v", err)
	}
	// Budget resets allow further work.
	in.ResetBudget()
	if err := in.RunSource(`let y = 2;`); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

func TestArraysAndObjects(t *testing.T) {
	in, _ := run(t, `
		let a = [1, 2, 3];
		push(a, 4);
		let n = a.length;
		let second = a[1];
		a[0] = 99;
		let o = {name: "pop", zid: 7};
		let z = o.zid;
		o.extra = "x";
		let e = o["extra"];
	`)
	checks := map[string]Value{"n": 4.0, "second": 2.0, "z": 7.0, "e": "x"}
	for name, want := range checks {
		if v, _ := in.Globals.Get(name); v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
	av, _ := in.Globals.Get("a")
	if av.(*Array).Elems[0] != 99.0 {
		t.Fatal("array element assignment failed")
	}
}

func TestStringBuiltins(t *testing.T) {
	in, _ := run(t, `
		let s = "hello.world";
		let i = indexOf(s, ".");
		let head = substr(s, 0, i);
		let parts = split(s, ".");
		let joined = join(parts, "-");
		let c = charAt(s, 0);
		let code = charCodeAt(s, 0);
		let ch = fromCharCode(104, 105);
		let f = floor(3.9);
		let n = num("42");
		let st = str(3.5);
		let l = len("abc");
	`)
	checks := map[string]Value{
		"i": 5.0, "head": "hello", "joined": "hello-world",
		"c": "h", "code": 104.0, "ch": "hi", "f": 3.0,
		"n": 42.0, "st": "3.5", "l": 3.0,
	}
	for name, want := range checks {
		if v, _ := in.Globals.Get(name); v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
}

func TestObfuscationRoundTrip(t *testing.T) {
	f := func(s string, key byte) bool {
		enc := EncodeString(s, key)
		dec, err := DecodeString(enc, key)
		return err == nil && dec == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObfuscationHidesPlaintext(t *testing.T) {
	url := "http://attacker.club/land?cid=42"
	enc := EncodeString(url, 7)
	if strings.Contains(enc, "attacker") || strings.Contains(enc, "club") {
		t.Fatalf("plaintext leaks into %q", enc)
	}
}

func TestDecBuiltinRevealsURL(t *testing.T) {
	url := "http://hidden.example.club/pop"
	src := `let u = dec("` + EncodeString(url, 13) + `", 13);`
	in, _ := run(t, src)
	if v, _ := in.Globals.Get("u"); v != url {
		t.Fatalf("decoded = %v", v)
	}
}

func TestDecRejectsBadHex(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource(`dec("zz", 1);`); err == nil {
		t.Fatal("bad hex accepted")
	}
}

func TestHostCallTracing(t *testing.T) {
	in := NewInterp()
	var calls []APICall
	in.SetTracer(TracerFunc(func(c APICall) { calls = append(calls, c) }))
	opened := ""
	win := NewObject().Set("open", &HostFunc{Name: "window.open", Fn: func(args []Value) (Value, error) {
		opened = Stringify(args[0])
		return nil, nil
	}})
	in.Globals.Define("window", win)
	in.ScriptURL = "http://adnet.com/serve.js"
	enc := EncodeString("http://land.club/x", 9)
	if err := in.RunSource(`window.open(dec("` + enc + `", 9));`); err != nil {
		t.Fatal(err)
	}
	if opened != "http://land.club/x" {
		t.Fatalf("opened = %q", opened)
	}
	// Trace must contain both the dec call and the window.open call with
	// the *decoded* argument and the originating script URL.
	var names []string
	for _, c := range calls {
		names = append(names, c.Name)
		if c.ScriptURL != "http://adnet.com/serve.js" {
			t.Errorf("call %s attributed to %q", c.Name, c.ScriptURL)
		}
	}
	if len(calls) != 2 || names[0] != "dec" || names[1] != "window.open" {
		t.Fatalf("calls = %v", names)
	}
	if calls[1].Args[0] != "http://land.club/x" {
		t.Fatalf("traced arg = %v", calls[1].Args)
	}
}

func TestCallDepthLimit(t *testing.T) {
	in := NewInterp()
	err := in.RunSource(`
		let f = function(n) { return f(n + 1); };
		f(0);
	`)
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`undefinedVar;`,
		`let x = 1; x();`,
		`let a = [1]; let b = a[5];`,
		`let o = {}; o.missing.deep;`,
		`1 / 0;`,
		`"a" - "b";`,
		`let n = num("not a number");`,
	}
	for _, src := range cases {
		in := NewInterp()
		if err := in.RunSource(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`let = 5;`,
		`let x 5;`,
		`if true {}`,
		`let s = "unterminated;`,
		`function(;`,
		`let x = 1 +;`,
		`@`,
		`let x = 1; /* unclosed`,
		`1 = 2;`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no syntax error for %q", src)
		}
	}
}

func TestCommentsAndStringEscapes(t *testing.T) {
	in, _ := run(t, `
		// line comment
		let a = "tab\tnewline\nquote\"done"; /* block
		comment */ let b = 'single \' quote';
	`)
	if v, _ := in.Globals.Get("a"); v != "tab\tnewline\nquote\"done" {
		t.Fatalf("a = %q", v)
	}
	if v, _ := in.Globals.Get("b"); v != "single ' quote" {
		t.Fatalf("b = %q", v)
	}
}

func TestStrictEqualityAliases(t *testing.T) {
	if got := evalExpr(t, "1 === 1"); got != true {
		t.Fatalf("=== broken: %v", got)
	}
	if got := evalExpr(t, "1 !== 2"); got != true {
		t.Fatalf("!== broken: %v", got)
	}
}

func TestTopLevelReturnTolerated(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource(`let x = 1; return; let y = 2;`); err != nil {
		t.Fatal(err)
	}
}

func TestStringifyForms(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "null"},
		{true, "true"},
		{false, "false"},
		{3.0, "3"},
		{3.25, "3.25"},
		{"s", "s"},
		{&Array{Elems: []Value{1.0, "a"}}, "[1,a]"},
		{NewObject().Set("b", 1.0).Set("a", 2.0), "{a:2,b:1}"},
	}
	for _, c := range cases {
		if got := Stringify(c.v); got != c.want {
			t.Errorf("Stringify(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestMemberOnStringLength(t *testing.T) {
	if got := evalExpr(t, `"hello".length`); got != 5.0 {
		t.Fatalf("length = %v", got)
	}
}

func TestNavigatorWebdriverPattern(t *testing.T) {
	// The exact anti-bot check ad networks run (paper Section 3.2).
	mk := func(webdriver bool) string {
		in := NewInterp()
		in.Globals.Define("navigator", NewObject().Set("webdriver", webdriver))
		in.Globals.Define("result", "")
		err := in.RunSource(`
			if (navigator.webdriver) { result = "bot"; } else { result = "human"; }
		`)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := in.Globals.Get("result")
		return v.(string)
	}
	if mk(true) != "bot" || mk(false) != "human" {
		t.Fatal("webdriver check misbehaves")
	}
}
