// Package adscript implements the miniature scripting language executed
// by pages in the synthetic web, standing in for the JavaScript that real
// ad networks and SE attack pages run.
//
// The language is deliberately small — variables, functions/closures,
// conditionals, bounded loops, strings, numbers, objects and arrays — but
// the *runtime* mirrors what the paper's instrumented Chromium logs: every
// host-API call (window.open, location.assign, addEventListener,
// setTimeout, history.pushState, alert, ...) is traced with its arguments
// and originating script URL. Those traces are exactly what
// internal/btgraph consumes to rebuild ad-loading chains (paper Sections
// 3.2 and 3.4: "deep code instrumentation to accurately track JS code
// execution ... tracking all JS API calls across the entire Blink-JS
// bindings").
//
// Ad networks obfuscate their snippets; the package provides a string
// scrambler (EncodeString) paired with a runtime decoder builtin ("dec"),
// so URLs are invisible to static inspection but revealed — and traced —
// during execution.
package adscript

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct   // single or multi-char operator/punctuation
	tokKeyword // let if else function return true false null while
)

var keywords = map[string]bool{
	"let": true, "if": true, "else": true, "function": true,
	"return": true, "true": true, "false": true, "null": true,
	"while": true,
}

type token struct {
	kind tokenKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// SyntaxError reports a lexing or parsing failure with a line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("adscript: line %d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-char punctuation, longest first
var puncts = []string{
	"===", "!==", "==", "!=", "<=", ">=", "&&", "||",
	"(", ")", "{", "}", "[", "]", ",", ";", ".", "=", "+", "-", "*", "/", "%", "<", ">", "!", ":",
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	start := l.pos
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil
	case isDigit(c):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		text := l.src[start:l.pos]
		var n float64
		if _, err := fmt.Sscanf(text, "%g", &n); err != nil {
			return token{}, l.errf("bad number %q", text)
		}
		return token{kind: tokNumber, text: text, num: n, line: l.line}, nil
	case c == '"' || c == '\'':
		quote := c
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated string")
			}
			ch := l.src[l.pos]
			if ch == quote {
				l.pos++
				return token{kind: tokString, text: b.String(), line: l.line}, nil
			}
			if ch == '\n' {
				return token{}, l.errf("newline in string")
			}
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case '\'':
					b.WriteByte('\'')
				default:
					b.WriteByte(l.src[l.pos])
				}
				l.pos++
				continue
			}
			b.WriteByte(ch)
			l.pos++
		}
	default:
		for _, p := range puncts {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.pos += len(p)
				// Normalise JS-style strict operators.
				text := p
				if text == "===" {
					text = "=="
				} else if text == "!==" {
					text = "!="
				}
				return token{kind: tokPunct, text: text, line: l.line}, nil
			}
		}
		return token{}, l.errf("unexpected character %q", c)
	}
}
