package adscript_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/adnet"
	"repro/internal/adscript"
	"repro/internal/rng"
)

// scriptCorpus builds obfuscated sources in the shapes the synthetic web
// actually serves: real adnet publisher snippets plus the serve-script
// and secamp behaviour templates (overlay + click-listener closures,
// page locking, download listeners, notification lures).
func scriptCorpus() []string {
	var out []string
	src := rng.New(11)
	for _, spec := range adnet.SeedSpecs() {
		n := adnet.New(spec, src)
		for zone := 0; zone < 3; zone++ {
			out = append(out, n.SnippetCode(zone))
		}
	}
	click := adscript.EncodeString("http://trk-x1.club/tok-c/c.js?z=4", 41)
	dl := adscript.EncodeString("http://x9f2.club/dl/abcdef.bin", 73)
	out = append(out,
		// adnet serve-script shape.
		fmt.Sprintf(`
			document.addOverlay("__ovl_t", 99999);
			let _n_t = 0;
			window.addEventListener("click", function() {
				window.open(dec("%s", 41) + "&n=" + _n_t);
				_n_t = _n_t + 1;
			});
		`, click),
		// Webdriver-checking variant.
		fmt.Sprintf(`
			if (navigator.webdriver) { let _x = 0; } else {
				document.addOverlay("__ovl_w", 99999);
				window.addEventListener("click", function() { window.open(dec("%s", 41)); });
			}
		`, click),
		// secamp fake-software / scareware download listeners.
		fmt.Sprintf(`
			document.listen("install", "click", function() {
				document.download(dec("%s", 73));
			});
		`, dl),
		fmt.Sprintf(`
			window.onbeforeunload(function() { return "Your PC is at risk!"; });
			window.alert("WARNING! GuardPro detected 12 threats on your system.");
			document.listen("install", "click", function() {
				document.download(dec("%s", 73));
			});
		`, dl),
		// secamp tech-support page locking.
		`
			window.onbeforeunload(function() { return "locked"; });
			let i = 0;
			while (i < 3) {
				window.alert("Windows Security Alert! Call 1-800-555-0199 immediately.");
				i = i + 1;
			}
		`,
		// secamp notification lure.
		`
			notification.request();
			document.listen("allow", "click", function() { notification.request(); });
		`,
	)
	return out
}

// installStubHost defines the host objects the corpus touches, with
// every function traced through the interpreter's tracer exactly like
// the browser's host env. Handlers registered via listeners are
// collected so the caller can dispatch them.
func installStubHost(in *adscript.Interp, handlers *[]adscript.Value) {
	sink := func(name string) *adscript.HostFunc {
		return &adscript.HostFunc{Name: name, Fn: func(args []adscript.Value) (adscript.Value, error) { return nil, nil }}
	}
	capture := func(name string, at int) *adscript.HostFunc {
		return &adscript.HostFunc{Name: name, Fn: func(args []adscript.Value) (adscript.Value, error) {
			if at < len(args) {
				if _, ok := args[at].(*adscript.Closure); ok {
					*handlers = append(*handlers, args[at])
				}
			}
			return nil, nil
		}}
	}
	in.Globals.Define("window", adscript.NewObject().
		Set("addEventListener", capture("window.addEventListener", 1)).
		Set("open", sink("window.open")).
		Set("alert", sink("window.alert")).
		Set("onbeforeunload", capture("window.onbeforeunload", 0)))
	in.Globals.Define("document", adscript.NewObject().
		Set("addOverlay", sink("document.addOverlay")).
		Set("loadScript", sink("document.loadScript")).
		Set("listen", capture("document.listen", 2)).
		Set("download", sink("document.download")))
	in.Globals.Define("navigator", adscript.NewObject().Set("webdriver", false))
	in.Globals.Define("notification", adscript.NewObject().Set("request", sink("notification.request")))
}

// traceCorpus executes the whole corpus `passes` times through exec on
// one reused interpreter (the browser's per-tab pattern) and returns
// every traced API call serialized.
func traceCorpus(t *testing.T, passes int, exec func(in *adscript.Interp, source string) error) []string {
	t.Helper()
	var trace []string
	in := adscript.NewInterp()
	in.SetTracer(adscript.TracerFunc(func(c adscript.APICall) {
		trace = append(trace, fmt.Sprintf("%s|%v|%s|%d", c.Name, c.Args, c.ScriptURL, c.Line))
	}))
	corpus := scriptCorpus()
	for p := 0; p < passes; p++ {
		for i, src := range corpus {
			in.Reset()
			var handlers []adscript.Value
			installStubHost(in, &handlers)
			in.ScriptURL = fmt.Sprintf("http://scripts.test/%d-%d.js", p, i)
			if err := exec(in, src); err != nil {
				t.Fatalf("pass %d script %d: %v\nsource:\n%s", p, i, err, src)
			}
			// Dispatch registered handlers twice, like click replays.
			for _, h := range handlers {
				for n := 0; n < 2; n++ {
					if _, err := in.Call(h); err != nil {
						t.Fatalf("pass %d script %d handler: %v", p, i, err)
					}
				}
			}
		}
	}
	return trace
}

// TestCachedTraceBitIdentical is the behaviour-invariance contract of
// the compile-once cache: for the obfuscated adnet/secamp corpus, the
// API-call trace of cached-program execution is byte-equal to the
// parse-per-run path — including warm passes that run shared Programs.
func TestCachedTraceBitIdentical(t *testing.T) {
	plain := traceCorpus(t, 3, func(in *adscript.Interp, source string) error {
		return in.RunSource(source)
	})
	cache := adscript.NewProgramCache(0, nil)
	cached := traceCorpus(t, 3, func(in *adscript.Interp, source string) error {
		return in.RunCached(cache, source)
	})
	if len(plain) == 0 {
		t.Fatal("corpus produced no API calls")
	}
	if len(plain) != len(cached) {
		t.Fatalf("trace length diverged: parse-per-run %d calls, cached %d", len(plain), len(cached))
	}
	for i := range plain {
		if plain[i] != cached[i] {
			t.Fatalf("trace diverges at call %d:\n  parse-per-run: %s\n  cached:        %s", i, plain[i], cached[i])
		}
	}
	hits, misses, _ := cache.Stats()
	if misses != int64(len(scriptCorpus())) {
		t.Errorf("expected one parse per distinct source, got %d misses for %d sources", misses, len(scriptCorpus()))
	}
	if hits == 0 {
		t.Error("warm passes produced no cache hits")
	}
}

// TestProgramCacheConcurrent runs the corpus on many interpreters
// sharing one cache (and the process-wide decode memo) — the crawler
// farm + milking pool shape; primarily a -race target.
func TestProgramCacheConcurrent(t *testing.T) {
	cache := adscript.NewProgramCache(0, nil)
	corpus := scriptCorpus()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := adscript.NewInterp()
			for p := 0; p < 3; p++ {
				for _, src := range corpus {
					in.Reset()
					var handlers []adscript.Value
					installStubHost(in, &handlers)
					if err := in.RunCached(cache, src); err != nil {
						errs <- err
						return
					}
					for _, h := range handlers {
						if _, err := in.Call(h); err != nil {
							errs <- err
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses, _ := cache.Stats()
	if hits+misses != int64(8*3*len(corpus)) {
		t.Errorf("cache traffic mismatch: hits %d + misses %d != %d", hits, misses, 8*3*len(corpus))
	}
}

// TestScopePoolingClosureCapture pins the correctness condition of the
// scope freelist: a closure created inside a loop body captures that
// iteration's scope, so recycled scopes must never be ones a closure
// still references.
func TestScopePoolingClosureCapture(t *testing.T) {
	in := adscript.NewInterp()
	err := in.RunSource(`
		let fs = [];
		let i = 0;
		while (i < 3) {
			let x = i;
			push(fs, function() { return x; });
			i = i + 1;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := in.Globals.Get("fs")
	if !ok {
		t.Fatal("fs not defined")
	}
	arr := v.(*adscript.Array)
	if len(arr.Elems) != 3 {
		t.Fatalf("want 3 closures, got %d", len(arr.Elems))
	}
	for want, fn := range arr.Elems {
		got, err := in.Call(fn)
		if err != nil {
			t.Fatal(err)
		}
		if got != float64(want) {
			t.Errorf("closure %d returned %v, want %d (captured scope was recycled)", want, got, want)
		}
	}
}

// TestBuiltinShadowingStaysLocal pins the frozen-builtin-root contract:
// a script overwriting a builtin name shadows it in its own globals and
// never leaks into other interpreters.
func TestBuiltinShadowingStaysLocal(t *testing.T) {
	a := adscript.NewInterp()
	if err := a.RunSource(`len = 42; let x = len;`); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Globals.Get("x"); v != float64(42) {
		t.Fatalf("shadowed builtin not visible locally: got %v", v)
	}
	b := adscript.NewInterp()
	if err := b.RunSource(`let n = len("abcd");`); err != nil {
		t.Fatalf("builtin polluted across interpreters: %v", err)
	}
	if v, _ := b.Globals.Get("n"); v != float64(4) {
		t.Fatalf("len builtin broken after shadowing elsewhere: got %v", v)
	}
	a.Reset()
	if err := a.RunSource(`let n = len("ab");`); err != nil {
		t.Fatalf("builtin not restored by Reset: %v", err)
	}
}

// TestDecodeMemoMatchesDecodeString cross-checks the memoized decode
// against the pure function, including repeat hits.
func TestDecodeMemoMatchesDecodeString(t *testing.T) {
	in := adscript.NewInterp()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 20; i++ {
			plain := fmt.Sprintf("http://host-%d.club/p/%d?q=%d", i, i*7, i)
			key := byte(3 + i*5)
			enc := adscript.EncodeString(plain, key)
			if err := in.RunSource(fmt.Sprintf(`let out = dec("%s", %d);`, enc, key)); err != nil {
				t.Fatal(err)
			}
			v, _ := in.Globals.Get("out")
			if v != plain {
				t.Fatalf("dec(%q, %d) = %v, want %q", enc, key, v, plain)
			}
			in.Reset()
		}
	}
}
