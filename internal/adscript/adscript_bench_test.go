package adscript

import "testing"

const benchSnippet = `
	let _pcWidget = { z: 12345, s: "abcde" };
	let _x = dec("` + "4c4f" + `", 7);
	let total = 0;
	let i = 0;
	while (i < 50) {
		total = total + i;
		i = i + 1;
	}
	let f = function(n) { return n * 2; };
	let doubled = f(total);
`

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSnippet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRun(b *testing.B) {
	prog, err := Parse(benchSnippet)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInterp()
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObfuscationRoundTrip(b *testing.B) {
	const url = "http://some-rotating-domain.club/pcash/v3/serve.js?zid=12345"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := EncodeString(url, 17)
		if _, err := DecodeString(enc, 17); err != nil {
			b.Fatal(err)
		}
	}
}
