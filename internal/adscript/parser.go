package adscript

import "fmt"

// AST node types. The interpreter walks these directly.

type node interface{ nodeLine() int }

type baseNode struct{ line int }

func (b baseNode) nodeLine() int { return b.line }

type (
	numLit struct {
		baseNode
		val float64
		// boxed is the literal pre-converted to a Value at parse time, so
		// evaluation never re-boxes it into an interface (Programs are
		// immutable and shared, so one box serves every run).
		boxed Value
	}
	strLit struct {
		baseNode
		val   string
		boxed Value
	}
	boolLit struct {
		baseNode
		val bool
	}
	nullLit struct{ baseNode }
	ident   struct {
		baseNode
		name string
	}
	arrayLit struct {
		baseNode
		elems []node
	}
	objectLit struct {
		baseNode
		keys []string
		vals []node
	}
	funcLit struct {
		baseNode
		params []string
		body   []node
	}
	unaryExpr struct {
		baseNode
		op string
		x  node
	}
	binaryExpr struct {
		baseNode
		op   string
		l, r node
	}
	callExpr struct {
		baseNode
		fn   node
		args []node
	}
	memberExpr struct {
		baseNode
		obj  node
		name string
	}
	indexExpr struct {
		baseNode
		obj, idx node
	}
	letStmt struct {
		baseNode
		name string
		val  node
	}
	assignStmt struct {
		baseNode
		target node // ident, memberExpr or indexExpr
		val    node
	}
	ifStmt struct {
		baseNode
		cond       node
		then, alt  []node
		altIsBlock bool
	}
	whileStmt struct {
		baseNode
		cond node
		body []node
	}
	returnStmt struct {
		baseNode
		val node // may be nil
	}
	exprStmt struct {
		baseNode
		x node
	}
)

// Program is a parsed script ready for execution.
type Program struct {
	stmts []node
	// Source is retained for source-pattern matching and diagnostics.
	Source string
}

// Parse compiles source into a Program.
func Parse(source string) (*Program, error) {
	toks, err := lex(source)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []node
	for !p.at(tokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Program{stmts: stmts, Source: source}, nil
}

// MustParse panics on parse errors; for generator-built literals.
func MustParse(source string) *Program {
	p, err := Parse(source)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) line() int  { return p.cur().line }
func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.line(), Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, p.errf("expected %q, found %q", text, p.cur().String())
	}
	t := p.cur()
	p.advance()
	return t, nil
}

func (p *parser) statement() (node, error) {
	switch {
	case p.at(tokKeyword, "let"):
		line := p.line()
		p.advance()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &letStmt{baseNode{line}, name.text, val}, nil

	case p.at(tokKeyword, "if"):
		return p.ifStatement()

	case p.at(tokKeyword, "while"):
		line := p.line()
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{baseNode{line}, cond, body}, nil

	case p.at(tokKeyword, "return"):
		line := p.line()
		p.advance()
		var val node
		if !p.at(tokPunct, ";") {
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			val = v
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &returnStmt{baseNode{line}, val}, nil

	default:
		line := p.line()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		// Assignment: expr "=" expr when expr is assignable.
		if p.at(tokPunct, "=") {
			p.advance()
			switch x.(type) {
			case *ident, *memberExpr, *indexExpr:
			default:
				return nil, p.errf("invalid assignment target")
			}
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &assignStmt{baseNode{line}, x, val}, nil
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &exprStmt{baseNode{line}, x}, nil
	}
}

func (p *parser) ifStatement() (node, error) {
	line := p.line()
	p.advance() // "if"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &ifStmt{baseNode{line}, cond, then, nil, false}
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			alt, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			st.alt = []node{alt}
		} else {
			alt, err := p.block()
			if err != nil {
				return nil, err
			}
			st.alt = alt
			st.altIsBlock = true
		}
	}
	return st, nil
}

func (p *parser) block() ([]node, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []node
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.advance() // "}"
	return stmts, nil
}

// Precedence-climbing expression parser.

func (p *parser) expression() (node, error) { return p.binary(0) }

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) binary(minPrec int) (node, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return left, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{baseNode{t.line}, t.text, left, right}
	}
}

func (p *parser) unary() (node, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "!" || t.text == "-") {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{baseNode{t.line}, t.text, x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokPunct, "("):
			line := p.line()
			p.advance()
			var args []node
			for !p.at(tokPunct, ")") {
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			x = &callExpr{baseNode{line}, x, args}
		case p.at(tokPunct, "."):
			line := p.line()
			p.advance()
			name := p.cur()
			if name.kind != tokIdent && name.kind != tokKeyword {
				return nil, p.errf("expected property name, found %q", name.String())
			}
			p.advance()
			x = &memberExpr{baseNode{line}, x, name.text}
		case p.at(tokPunct, "["):
			line := p.line()
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = &indexExpr{baseNode{line}, x, idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (node, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &numLit{baseNode{t.line}, t.num, numValue(t.num)}, nil
	case t.kind == tokString:
		p.advance()
		return &strLit{baseNode{t.line}, t.text, t.text}, nil
	case t.kind == tokKeyword && t.text == "true":
		p.advance()
		return &boolLit{baseNode{t.line}, true}, nil
	case t.kind == tokKeyword && t.text == "false":
		p.advance()
		return &boolLit{baseNode{t.line}, false}, nil
	case t.kind == tokKeyword && t.text == "null":
		p.advance()
		return &nullLit{baseNode{t.line}}, nil
	case t.kind == tokKeyword && t.text == "function":
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var params []string
		for !p.at(tokPunct, ")") {
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, name.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &funcLit{baseNode{t.line}, params, body}, nil
	case t.kind == tokIdent:
		p.advance()
		return &ident{baseNode{t.line}, t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tokPunct && t.text == "[":
		p.advance()
		var elems []node
		for !p.at(tokPunct, "]") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		return &arrayLit{baseNode{t.line}, elems}, nil
	case t.kind == tokPunct && t.text == "{":
		p.advance()
		ol := &objectLit{baseNode: baseNode{t.line}}
		for !p.at(tokPunct, "}") {
			key := p.cur()
			if key.kind != tokIdent && key.kind != tokString && key.kind != tokKeyword {
				return nil, p.errf("expected object key, found %q", key.String())
			}
			p.advance()
			if _, err := p.expect(tokPunct, ":"); err != nil {
				return nil, err
			}
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			ol.keys = append(ol.keys, key.text)
			ol.vals = append(ol.vals, val)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, "}"); err != nil {
			return nil, err
		}
		return ol, nil
	default:
		return nil, p.errf("unexpected token %q", t.String())
	}
}
