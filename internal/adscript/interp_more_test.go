package adscript

import (
	"errors"
	"strings"
	"testing"
)

// Additional interpreter edge cases beyond the core language tests.

func TestObjectLiteralsAndNestedAccess(t *testing.T) {
	in, _ := run(t, `
		let cfg = {zone: 12, nested: {deep: "v"}, "quoted": true};
		let a = cfg.zone;
		let b = cfg.nested.deep;
		let c = cfg["quoted"];
		cfg.nested.deep = "w";
		let d = cfg.nested.deep;
	`)
	for name, want := range map[string]Value{"a": 12.0, "b": "v", "c": true, "d": "w"} {
		if v, _ := in.Globals.Get(name); v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
}

func TestMissingObjectFieldIsNull(t *testing.T) {
	in, _ := run(t, `let o = {a: 1}; let missing = o.b; let isNull = missing == null;`)
	if v, _ := in.Globals.Get("isNull"); v != true {
		t.Fatal("missing field not null")
	}
}

func TestKeywordAsPropertyName(t *testing.T) {
	in, _ := run(t, `let o = {"return": 1}; let v = o.return;`)
	if v, _ := in.Globals.Get("v"); v != 1.0 {
		t.Fatalf("v = %v", v)
	}
}

func TestAssignmentToObjectIndexAndArray(t *testing.T) {
	in, _ := run(t, `
		let o = {};
		o["k"] = 5;
		let arr = [0, 0];
		arr[1] = 9;
		let sum = o["k"] + arr[1];
	`)
	if v, _ := in.Globals.Get("sum"); v != 14.0 {
		t.Fatalf("sum = %v", v)
	}
}

func TestAssignErrors(t *testing.T) {
	cases := []string{
		`let n = 5; n.field = 1;`,  // set property on number
		`let a = [1]; a[9] = 1;`,   // index out of range
		`let a = [1]; a["x"] = 1;`, // non-numeric array index
		`let o = {}; o[5] = 1;`,    // non-string object index
		`let n = 1; n[0] = 2;`,     // index into number
	}
	for _, src := range cases {
		in := NewInterp()
		if err := in.RunSource(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestIndexErrors(t *testing.T) {
	cases := []string{
		`let a = [1]; let x = a["k"];`,
		`let s = "ab"; let x = s[9];`,
		`let o = {}; let x = o[1];`,
		`let n = 4; let x = n[0];`,
	}
	for _, src := range cases {
		in := NewInterp()
		if err := in.RunSource(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestStringIndexAndComparisons(t *testing.T) {
	in, _ := run(t, `
		let s = "abc";
		let ch = s[1];
		let ge = "b" >= "a";
		let le = "a" <= "a";
	`)
	if v, _ := in.Globals.Get("ch"); v != "b" {
		t.Fatalf("ch = %v", v)
	}
	if v, _ := in.Globals.Get("ge"); v != true {
		t.Fatal("string >= broken")
	}
	if v, _ := in.Globals.Get("le"); v != true {
		t.Fatal("string <= broken")
	}
}

func TestModuloAndDivisionErrors(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource(`let x = 5 % 0;`); err == nil {
		t.Fatal("modulo by zero allowed")
	}
}

func TestWhileConditionError(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource(`while (missing) { let x = 1; }`); err == nil {
		t.Fatal("undefined condition allowed")
	}
}

func TestCallNonCallable(t *testing.T) {
	in := NewInterp()
	err := in.RunSource(`let obj = {}; obj();`)
	var re *RuntimeError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "not callable") {
		t.Fatalf("err = %v", err)
	}
}

func TestHostFuncErrorWrapped(t *testing.T) {
	in := NewInterp()
	in.Globals.Define("boom", &HostFunc{Name: "boom", Fn: func([]Value) (Value, error) {
		return nil, errors.New("kapow")
	}})
	err := in.RunSource(`boom();`)
	if err == nil || !strings.Contains(err.Error(), "boom: kapow") {
		t.Fatalf("err = %v", err)
	}
}

func TestCallWithMissingArgsGivesNull(t *testing.T) {
	in, _ := run(t, `
		let f = function(a, b) { return b == null; };
		let missing = f(1);
	`)
	if v, _ := in.Globals.Get("missing"); v != true {
		t.Fatal("missing arg not null")
	}
}

func TestLogicalOperatorValues(t *testing.T) {
	cases := map[string]Value{
		`0 || "x"`:   "x",
		`"a" || "b"`: "a",
		`0 && "x"`:   0.0,
		`"a" && "b"`: "b",
		`null || 7`:  7.0,
	}
	for expr, want := range cases {
		if got := evalExpr(t, expr); got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestTruthiness(t *testing.T) {
	cases := map[string]Value{
		`!0`:    true,
		`!1`:    false,
		`!""`:   true,
		`!"x"`:  false,
		`!null`: true,
		`![]`:   false, // arrays are truthy
		`!{}`:   false, // objects are truthy
	}
	for expr, want := range cases {
		if got := evalExpr(t, expr); got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestEqualityAcrossTypes(t *testing.T) {
	cases := map[string]Value{
		`1 == "1"`:     false,
		`null == null`: true,
		`null == 0`:    false,
		`true == 1`:    false,
	}
	for expr, want := range cases {
		if got := evalExpr(t, expr); got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
	// Reference equality for arrays.
	in, _ := run(t, `let a = [1]; let b = [1]; let same = a == a; let diff = a == b;`)
	if v, _ := in.Globals.Get("same"); v != true {
		t.Fatal("self-equality broken")
	}
	if v, _ := in.Globals.Get("diff"); v != false {
		t.Fatal("distinct arrays equal")
	}
}

func TestNegateNonNumber(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource(`let x = -"s";`); err == nil {
		t.Fatal("negating string allowed")
	}
}

func TestAddIncompatible(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource(`let x = [1] + 2;`); err == nil {
		t.Fatal("array + number allowed")
	}
}

func TestArrayLengthAndPushSemantics(t *testing.T) {
	in, _ := run(t, `
		let a = [];
		push(a, "x");
		push(a, "y");
		let n = a.length;
		let j = join(a, ",");
	`)
	if v, _ := in.Globals.Get("n"); v != 2.0 {
		t.Fatalf("n = %v", v)
	}
	if v, _ := in.Globals.Get("j"); v != "x,y" {
		t.Fatalf("j = %v", v)
	}
}

func TestBuiltinArgErrors(t *testing.T) {
	cases := []string{
		`len(5);`, `len();`,
		`push(5, 1);`, `push([1]);`,
		`substr("abc", 0);`, `substr("abc", 2, 1);`, `substr(1, 0, 1);`,
		`indexOf("a", 5);`, `split(5, ",");`, `join(5, ",");`,
		`charAt("a", 5);`, `charCodeAt("a", 9);`, `fromCharCode("x");`,
		`floor("x");`, `str();`, `num([1]);`, `dec("00");`, `enc("x");`,
	}
	for _, src := range cases {
		in := NewInterp()
		if err := in.RunSource(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestEncBuiltinRoundTrips(t *testing.T) {
	in, _ := run(t, `let e = enc("secret", 9); let d = dec(e, 9);`)
	if v, _ := in.Globals.Get("d"); v != "secret" {
		t.Fatalf("d = %v", v)
	}
}

func TestParserEdgeCases(t *testing.T) {
	good := []string{
		`let f = function() { return; };`, // bare return
		`if (1) {} else if (0) {} else {}`,
		`let o = {a: 1,};`, // trailing handled? — no trailing comma support
	}
	// The first two must parse; trailing comma in object must fail.
	if _, err := Parse(good[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(good[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(`let a = [1, 2,];`); err != nil {
		t.Fatal("trailing comma in array should be tolerated (parsed as end)")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse(`let = ;`)
}

func TestSyntaxErrorMessageHasLine(t *testing.T) {
	_, err := Parse("let a = 1;\nlet b = ;\n")
	var se *SyntaxError
	if !errors.As(err, &se) || se.Line != 2 {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(se.Error(), "line 2") {
		t.Fatalf("message = %q", se.Error())
	}
}
