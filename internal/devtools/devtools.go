// Package devtools is the custom browser-automation client of Section
// 3.2: the paper drives its instrumented Chromium through the DevTools
// protocol instead of Selenium/PhantomJS because those tools are trivially
// fingerprinted by anti-bot JS. Even DevTools sets navigator.webdriver
// while automating; the paper patched the browser to remove the flag.
//
// This package mirrors that architecture over the simulated browser: a
// command-oriented client that owns a Browser instance, with the stealth
// patch (webdriver flag removal) and page-lock bypass modelled as client
// capabilities. The crawler farm talks only to this client.
package devtools

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/adscript"
	"repro/internal/browser"
	"repro/internal/dom"
	"repro/internal/imaging"
	"repro/internal/phash"
	"repro/internal/screenshot"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

// ClientConfig selects the automation profile.
type ClientConfig struct {
	UserAgent webtx.UserAgent
	ClientIP  webtx.IPClass
	// StealthPatch removes navigator.webdriver (the paper's source-level
	// Chromium patch). Off = stock DevTools behaviour, detectable by ad
	// networks.
	StealthPatch bool
	// DialogBypass neutralises page-locking dialogs (the paper's second
	// instrumentation).
	DialogBypass bool
	// DeviceEmulation enables Chrome device mode for mobile UAs.
	DeviceEmulation bool
	// BlockFilter simulates an ad-blocker extension.
	BlockFilter func(u urlx.URL) bool
	// FetchCost paces sessions on the virtual clock.
	FetchCost time.Duration
	// ViewportScale divides screenshot resolution (1 = native).
	ViewportScale int
	// Capture shares a content-addressed capture cache across clients;
	// nil leaves captures unmemoized (identical output either way).
	Capture *screenshot.Cache
	// Scripts shares a compile-once program cache across clients; nil
	// parses per script run (identical traces either way).
	Scripts *adscript.ProgramCache
}

// Client is one automation session over one browser.
type Client struct {
	cfg ClientConfig
	b   *browser.Browser
}

// NewClient opens a browser with the configured automation profile.
func NewClient(internet *webtx.Internet, clock *vclock.Clock, cfg ClientConfig) *Client {
	return &Client{cfg: cfg, b: browser.New(internet, clock, optsFor(cfg))}
}

func optsFor(cfg ClientConfig) browser.Options {
	return browser.Options{
		UserAgent:       cfg.UserAgent,
		ClientIP:        cfg.ClientIP,
		Stealth:         cfg.StealthPatch,
		BypassDialogs:   cfg.DialogBypass,
		DeviceEmulation: cfg.DeviceEmulation,
		BlockFilter:     cfg.BlockFilter,
		FetchCost:       cfg.FetchCost,
		ViewportScale:   cfg.ViewportScale,
		Capture:         cfg.Capture,
		Scripts:         cfg.Scripts,
	}
}

// Reset re-arms the client for a new session under a (possibly
// different) automation profile, reusing the underlying browser's
// buffers and interpreter state. Pooled clients call this between
// sessions instead of paying NewClient per session.
func (c *Client) Reset(cfg ClientConfig) {
	c.cfg = cfg
	c.b.Reset(optsFor(cfg))
}

// PinTime fixes the session-visible time (zero unpins); see
// browser.Browser.PinTime. Schedulers that overlap sessions with clock
// advancement pin each session to its nominal instant.
func (c *Client) PinTime(t time.Time) { c.b.PinTime(t) }

// Navigate loads a URL in a new tab ("Page.navigate").
func (c *Client) Navigate(url string) (*browser.Tab, error) {
	return c.b.Visit(url)
}

// Click dispatches a trusted input event ("Input.dispatchMouseEvent").
func (c *Client) Click(tab *browser.Tab, x, y int) (browser.ClickResult, error) {
	return c.b.ClickAt(tab, x, y)
}

// ClickElement clicks an element's centre.
func (c *Client) ClickElement(tab *browser.Tab, el *dom.Element) (browser.ClickResult, error) {
	return c.b.ClickElement(tab, el)
}

// CaptureScreenshot rasterises a tab ("Page.captureScreenshot").
func (c *Client) CaptureScreenshot(tab *browser.Tab) (*imaging.Image, error) {
	return c.b.Screenshot(tab)
}

// CaptureScreenshotHash returns the perceptual hash of the tab's
// capture without materialising pixels — the capture fast path for
// callers that only cluster on hashes.
func (c *Client) CaptureScreenshotHash(tab *browser.Tab) (phash.Hash, error) {
	return c.b.ScreenshotHash(tab)
}

// Events returns the instrumentation log collected so far.
func (c *Client) Events() []browser.Event { return c.b.Events() }

// Tabs returns the session's open tabs.
func (c *Client) Tabs() []*browser.Tab { return c.b.Tabs() }

// Browser exposes the underlying browser for advanced callers.
func (c *Client) Browser() *browser.Browser { return c.b }

// WebdriverVisible reports whether page JS can detect the automation: the
// anti-bot check succeeds exactly when the stealth patch is off.
func (c *Client) WebdriverVisible() bool { return !c.cfg.StealthPatch }

// ErrNoTab is returned by helpers that need an open tab.
var ErrNoTab = errors.New("devtools: no open tab")

// FrontTab returns the most recently opened tab.
func (c *Client) FrontTab() (*browser.Tab, error) {
	tabs := c.b.Tabs()
	if len(tabs) == 0 {
		return nil, ErrNoTab
	}
	return tabs[len(tabs)-1], nil
}

// String describes the client profile for logs.
func (c *Client) String() string {
	return fmt.Sprintf("devtools{ua=%s ip=%s stealth=%v bypass=%v}",
		c.cfg.UserAgent.Name, c.cfg.ClientIP, c.cfg.StealthPatch, c.cfg.DialogBypass)
}
