package devtools

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/vclock"
	"repro/internal/webtx"
)

func simplePage() webtx.Handler {
	return webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		root := dom.NewElement("body")
		root.W, root.H = 1024, 768
		btn := dom.NewElement("button").SetAttr("id", "go")
		btn.X, btn.Y, btn.W, btn.H = 10, 10, 100, 30
		root.Append(btn)
		doc := &dom.Document{Root: root, Title: "x",
			Scripts: []dom.ScriptRef{{Code: `document.listen("go", "click", function() { window.open("http://other.com/"); });`}}}
		return webtx.DocumentPage(doc)
	})
}

func TestClientNavigateAndClick(t *testing.T) {
	internet := webtx.NewInternet()
	internet.Register("a.com", simplePage())
	internet.Register("other.com", webtx.HandlerFunc(func(*webtx.Request) *webtx.Response {
		return webtx.DocumentPage(&dom.Document{Root: dom.NewElement("body")})
	}))
	c := NewClient(internet, vclock.New(), ClientConfig{
		UserAgent: webtx.UAChromeMac, StealthPatch: true, DialogBypass: true,
	})
	tab, err := c.Navigate("http://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.ClickElement(tab, tab.Doc.Root.Find("go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OpenedTabs) != 1 {
		t.Fatalf("popups = %d", len(res.OpenedTabs))
	}
	front, err := c.FrontTab()
	if err != nil || front.URL.Host != "other.com" {
		t.Fatalf("front tab = %v %v", front, err)
	}
	if len(c.Tabs()) != 2 {
		t.Fatalf("tabs = %d", len(c.Tabs()))
	}
	if len(c.Events()) == 0 {
		t.Fatal("no events")
	}
	img, err := c.CaptureScreenshot(tab)
	if err != nil || img == nil {
		t.Fatalf("screenshot: %v", err)
	}
	if _, err := c.Click(tab, 60, 25); err != nil {
		t.Fatal(err)
	}
}

func TestWebdriverVisible(t *testing.T) {
	internet := webtx.NewInternet()
	stealthy := NewClient(internet, vclock.New(), ClientConfig{StealthPatch: true})
	if stealthy.WebdriverVisible() {
		t.Fatal("stealth client detectable")
	}
	stock := NewClient(internet, vclock.New(), ClientConfig{})
	if !stock.WebdriverVisible() {
		t.Fatal("stock client undetectable")
	}
}

func TestFrontTabNoTab(t *testing.T) {
	c := NewClient(webtx.NewInternet(), vclock.New(), ClientConfig{})
	if _, err := c.FrontTab(); err != ErrNoTab {
		t.Fatalf("err = %v", err)
	}
}

func TestStringDescribesProfile(t *testing.T) {
	c := NewClient(webtx.NewInternet(), vclock.New(), ClientConfig{
		UserAgent: webtx.UAChromeAndroid, ClientIP: webtx.IPResidential,
		StealthPatch: true, DialogBypass: true,
	})
	s := c.String()
	for _, want := range []string{"chrome65-android", "residential", "stealth=true"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if c.Browser() == nil {
		t.Fatal("Browser() nil")
	}
}
