// Package vtsim simulates the VirusTotal service the paper submits milked
// binaries to (Section 4.5): hash lookups against a known-sample database,
// first-time scans, and rescans months later after AV signatures have
// caught up.
//
// The paper's findings this must reproduce in shape: only ~13% of the
// 9,476 milked files were previously known (campaign binaries are highly
// polymorphic); after a three-month rescan more than 95% were flagged
// malicious, over 40% by at least 15 of the AV fleet; Trojan, Adware and
// PUP dominate the labels.
package vtsim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
)

// FleetSize is the number of simulated anti-virus engines.
const FleetSize = 60

// Labels the fleet assigns, in paper-reported popularity order.
var Labels = []string{"Trojan", "Adware", "PUP", "Downloader", "Riskware"}

// Report is a scan result for one file hash.
type Report struct {
	SHA256          string
	FirstSeen       time.Time
	LastScan        time.Time
	Positives       int // engines flagging the file at the last scan
	Total           int // engines consulted
	Label           string
	PreviouslyKnown bool // hash was in the DB before the pipeline submitted it
}

// Malicious reports whether the scan flags the file at all.
func (r Report) Malicious() bool { return r.Positives > 0 }

// Profile tunes the simulated fleet.
type Profile struct {
	// PrevKnownProb is the chance a freshly milked binary already sits in
	// the database (the paper saw 1203/9476 ≈ 12.7%).
	PrevKnownProb float64
	// MaliciousProb is the chance the fleet ever converges on flagging a
	// (truly malicious) sample.
	MaliciousProb float64
	// CatchupDays is how long signatures take to converge; scans before
	// FirstSeen+CatchupDays see partial detection.
	CatchupDays float64
}

// DefaultProfile matches the Section 4.5 shape.
var DefaultProfile = Profile{PrevKnownProb: 0.127, MaliciousProb: 0.96, CatchupDays: 45}

type sample struct {
	firstSeen  time.Time
	prevKnown  bool
	willDetect bool
	finalPos   int
	label      string
	campaignID string
	lastScan   time.Time
}

// Service is the simulated VirusTotal endpoint. Safe for concurrent use.
type Service struct {
	mu      sync.Mutex
	profile Profile
	src     *rng.Source
	salt    uint64
	samples map[string]*sample
	scans   int
}

// NewService builds a Service with the given profile (zero Profile means
// DefaultProfile).
func NewService(profile Profile, src *rng.Source) *Service {
	if profile == (Profile{}) {
		profile = DefaultProfile
	}
	s := src.Split("vtsim")
	return &Service{profile: profile, src: s, salt: uint64(s.Int63()), samples: map[string]*sample{}}
}

// prevKnownFor decides, deterministically per hash, whether the sample
// predates this experiment. A pure function of the hash so that a Known
// lookup and a later Submit agree regardless of call order.
func (s *Service) prevKnownFor(sha256 string) bool {
	h := s.salt
	for i := 0; i < len(sha256); i++ {
		h ^= uint64(sha256[i])
		h *= 1099511628211
	}
	return float64(h>>11)/float64(1<<53) < s.profile.PrevKnownProb
}

// Known reports whether the hash is already in the database — the
// pipeline's first, cheap check before uploading.
func (s *Service) Known(sha256 string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if smp, ok := s.samples[sha256]; ok {
		return smp.prevKnown
	}
	return s.prevKnownFor(sha256)
}

// Submit uploads a file for scanning at virtual time now. CampaignID is
// carried opaquely for ground-truth evaluation. Resubmitting the same
// hash rescans it.
func (s *Service) Submit(sha256, campaignID string, now time.Time) Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scans++
	smp, ok := s.samples[sha256]
	if !ok {
		smp = &sample{firstSeen: now, campaignID: campaignID}
		smp.prevKnown = s.prevKnownFor(sha256)
		if smp.prevKnown {
			// Previously-known samples were first seen some time ago.
			ago := time.Duration(s.src.Float64() * 60 * 24 * float64(time.Hour))
			smp.firstSeen = now.Add(-ago)
		}
		smp.willDetect = s.src.Bool(s.profile.MaliciousProb)
		if smp.willDetect {
			// Final positives: bimodal-ish spread so that a large
			// minority exceeds 15 engines.
			smp.finalPos = 5 + s.src.Intn(35)
			smp.label = pickLabel(s.src)
		}
		s.samples[sha256] = smp
	}
	smp.lastScan = now
	return s.reportLocked(sha256, smp, now)
}

// Rescan re-evaluates a previously submitted hash at a later time — the
// paper waits three months and rescans everything.
func (s *Service) Rescan(sha256 string, now time.Time) (Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	smp, ok := s.samples[sha256]
	if !ok {
		return Report{}, fmt.Errorf("vtsim: unknown hash %s", sha256)
	}
	s.scans++
	smp.lastScan = now
	return s.reportLocked(sha256, smp, now), nil
}

func (s *Service) reportLocked(sha256 string, smp *sample, now time.Time) Report {
	pos := 0
	if smp.willDetect {
		// Signature catch-up: detection ramps linearly from ~5% of the
		// fleet's final verdict at first-seen to 100% after CatchupDays.
		age := now.Sub(smp.firstSeen).Hours() / 24
		frac := age / s.profile.CatchupDays
		if frac > 1 {
			frac = 1
		}
		if frac < 0.05 {
			frac = 0.05
		}
		pos = int(float64(smp.finalPos) * frac)
		if pos < 1 {
			pos = 1
		}
	}
	return Report{
		SHA256:          sha256,
		FirstSeen:       smp.firstSeen,
		LastScan:        now,
		Positives:       pos,
		Total:           FleetSize,
		Label:           smp.label,
		PreviouslyKnown: smp.prevKnown,
	}
}

func pickLabel(src *rng.Source) string {
	// Zipf-ish label popularity: Trojan, Adware, PUP dominate.
	weights := []float64{0.34, 0.28, 0.22, 0.1, 0.06}
	return Labels[src.Weighted(weights)]
}

// ScanCount returns how many scans the service has performed.
func (s *Service) ScanCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scans
}

// SampleCount returns how many distinct hashes the service has seen.
func (s *Service) SampleCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Hashes returns all known hashes, sorted; for the end-of-experiment
// rescan sweep.
func (s *Service) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.samples))
	for h := range s.samples {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
