package vtsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/vclock"
)

func TestPreviouslyKnownFraction(t *testing.T) {
	s := NewService(Profile{}, rng.New(1))
	src := rng.New(2)
	n, known := 5000, 0
	for i := 0; i < n; i++ {
		r := s.Submit(src.HexToken(64), "c1", vclock.Epoch)
		if r.PreviouslyKnown {
			known++
		}
	}
	frac := float64(known) / float64(n)
	if frac < 0.10 || frac > 0.16 {
		t.Fatalf("previously-known fraction = %.3f, want ~0.127", frac)
	}
}

func TestRescanCatchUp(t *testing.T) {
	s := NewService(Profile{}, rng.New(3))
	src := rng.New(4)
	n := 4000
	hashes := make([]string, n)
	initMal, finalMal, strong := 0, 0, 0
	for i := 0; i < n; i++ {
		hashes[i] = src.HexToken(64)
		r := s.Submit(hashes[i], "c", vclock.Epoch)
		if r.Positives >= 15 {
			initMal++
		}
	}
	threeMonths := vclock.Epoch.Add(90 * 24 * time.Hour)
	for _, h := range hashes {
		r, err := s.Rescan(h, threeMonths)
		if err != nil {
			t.Fatal(err)
		}
		if r.Malicious() {
			finalMal++
		}
		if r.Positives >= 15 {
			strong++
		}
	}
	// Paper shape: >95% malicious after rescan, >40% flagged by >=15 AVs,
	// and the initial scan is much weaker than the final one.
	if f := float64(finalMal) / float64(n); f < 0.9 {
		t.Fatalf("final malicious fraction = %.3f", f)
	}
	if f := float64(strong) / float64(n); f < 0.40 {
		t.Fatalf(">=15-AV fraction = %.3f", f)
	}
	if initMal >= strong {
		t.Fatalf("no signature catch-up: init strong %d vs final strong %d", initMal, strong)
	}
}

func TestRescanUnknownHash(t *testing.T) {
	s := NewService(Profile{}, rng.New(5))
	if _, err := s.Rescan("deadbeef", vclock.Epoch); err == nil {
		t.Fatal("rescan of unknown hash succeeded")
	}
}

func TestKnownOnlyForPreviouslyKnown(t *testing.T) {
	s := NewService(Profile{PrevKnownProb: 1.0, MaliciousProb: 1, CatchupDays: 10}, rng.New(6))
	r := s.Submit("h1", "c", vclock.Epoch)
	if !r.PreviouslyKnown || !s.Known("h1") {
		t.Fatal("prob-1 prevKnown not honoured")
	}
	s2 := NewService(Profile{PrevKnownProb: 0.0000001, MaliciousProb: 1, CatchupDays: 10}, rng.New(7))
	s2.Submit("h2", "c", vclock.Epoch)
	if s2.Known("h2") {
		t.Fatal("fresh sample reported known")
	}
	if s2.Known("never-submitted") {
		t.Fatal("unsubmitted hash known")
	}
}

func TestLabelsArePlausible(t *testing.T) {
	s := NewService(Profile{PrevKnownProb: 0, MaliciousProb: 1, CatchupDays: 1}, rng.New(8))
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		r := s.Submit(fmt.Sprintf("%064d", i), "c", vclock.Epoch)
		if r.Label != "" {
			counts[r.Label]++
		}
	}
	if counts["Trojan"] == 0 || counts["Adware"] == 0 || counts["PUP"] == 0 {
		t.Fatalf("label counts = %v", counts)
	}
	if counts["Trojan"] < counts["Riskware"] {
		t.Fatalf("label skew wrong: %v", counts)
	}
}

func TestScanAndSampleCounts(t *testing.T) {
	s := NewService(Profile{}, rng.New(9))
	s.Submit("a", "c", vclock.Epoch)
	s.Submit("a", "c", vclock.Epoch.Add(time.Hour)) // resubmit = rescan
	s.Submit("b", "c", vclock.Epoch)
	if s.ScanCount() != 3 {
		t.Fatalf("scans = %d", s.ScanCount())
	}
	if s.SampleCount() != 2 {
		t.Fatalf("samples = %d", s.SampleCount())
	}
	h := s.Hashes()
	if len(h) != 2 || h[0] != "a" || h[1] != "b" {
		t.Fatalf("hashes = %v", h)
	}
}

func TestReportFields(t *testing.T) {
	s := NewService(Profile{PrevKnownProb: 0, MaliciousProb: 1, CatchupDays: 30}, rng.New(10))
	r := s.Submit("x", "campaign-7", vclock.Epoch)
	if r.SHA256 != "x" || r.Total != FleetSize || !r.LastScan.Equal(vclock.Epoch) {
		t.Fatalf("report = %+v", r)
	}
	if !r.Malicious() || r.Positives < 1 {
		t.Fatalf("fresh malicious sample has %d positives", r.Positives)
	}
}
