package btgraph

import (
	"strings"
	"testing"

	"repro/internal/browser"
)

// figure3Events reproduces the paper's Figure 3 chain:
// publisher → adnet JS → click URL → TDS → attack page.
func figure3Events() []browser.Event {
	pub := "http://verbeinlaliga.com/"
	js := "http://nsvf17p9.com/atg/v3/serve.js?zid=7"
	click := "http://nsvf17p9.com/atg-c/go?z=7&n=0"
	tds := "http://findglo210.info/track/abc"
	attack := "http://live6nmld10.club/es7/index.html?v=3"
	return []browser.Event{
		{Kind: browser.EvNavigation, From: "", To: pub, Cause: browser.CauseInitial},
		{Kind: browser.EvScriptFetch, From: pub, To: js},
		{Kind: browser.EvPopup, From: pub, To: click, Cause: browser.CauseWindowOpen},
		{Kind: browser.EvNavigation, From: click, To: tds, Cause: browser.CauseRedirect},
		{Kind: browser.EvNavigation, From: tds, To: attack, Cause: browser.CauseRedirect},
	}
}

const attackURL = "http://live6nmld10.club/es7/index.html?v=3"

func TestFromEventsBuildsChain(t *testing.T) {
	g := FromEvents(figure3Events())
	if !g.Has(attackURL) {
		t.Fatal("attack URL missing")
	}
	if g.EdgeCount() != 4 {
		t.Fatalf("edges = %d", g.EdgeCount())
	}
	path, err := g.BacktrackPath(attackURL)
	if err != nil {
		t.Fatal(err)
	}
	// Linear chain: publisher -> click URL -> TDS -> attack (the script
	// fetch is a branch off the publisher node, not on the path).
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
	if path[0] != "http://verbeinlaliga.com/" || path[len(path)-1] != attackURL {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	if !g.Has("http://nsvf17p9.com/atg/v3/serve.js?zid=7") {
		t.Fatal("script node missing from graph")
	}
}

func TestMilkingCandidates(t *testing.T) {
	g := FromEvents(figure3Events())
	cands, err := g.MilkingCandidates(attackURL)
	if err != nil {
		t.Fatal(err)
	}
	// The first off-domain upstream node is the TDS URL — the milkable
	// candidate. The walk must NOT continue past it to the click URL.
	if len(cands) != 1 || !strings.Contains(cands[0], "findglo210.info") {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestMilkingCandidatesSameDomainHopsSkipped(t *testing.T) {
	// attack page redirected internally first: /a -> /b on same domain.
	g := NewGraph()
	g.AddEdge("http://up.info/x", "http://atk.club/a", "http-redirect")
	g.AddEdge("http://atk.club/a", "http://atk.club/b", "http-redirect")
	cands, err := g.MilkingCandidates("http://atk.club/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0] != "http://up.info/x" {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestMilkingCandidatesSubdomainsCollapse(t *testing.T) {
	// www.atk.club and cdn.atk.club share an e2LD: not candidates.
	g := NewGraph()
	g.AddEdge("http://tds.info/t", "http://cdn.atk.club/r", "http-redirect")
	g.AddEdge("http://cdn.atk.club/r", "http://www.atk.club/land", "http-redirect")
	cands, err := g.MilkingCandidates("http://www.atk.club/land")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0] != "http://tds.info/t" {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestMilkingCandidatesErrors(t *testing.T) {
	g := NewGraph()
	if _, err := g.MilkingCandidates("http://unknown.com/"); err == nil {
		t.Fatal("unknown URL accepted")
	}
	if _, err := g.MilkingCandidates(":::"); err == nil {
		t.Fatal("bad URL accepted")
	}
}

func TestBacktrackUnknown(t *testing.T) {
	g := NewGraph()
	if _, err := g.BacktrackPath("http://x.com/"); err == nil {
		t.Fatal("unknown URL accepted")
	}
}

func TestCycleTerminates(t *testing.T) {
	g := NewGraph()
	g.AddEdge("http://a.com/", "http://b.com/", "x")
	g.AddEdge("http://b.com/", "http://a.com/", "x")
	path, err := g.BacktrackPath("http://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("path = %v", path)
	}
}

func TestSelfLoopAndDuplicateDropped(t *testing.T) {
	g := NewGraph()
	g.AddEdge("http://a.com/", "http://a.com/", "x")
	if g.EdgeCount() != 0 {
		t.Fatal("self loop kept")
	}
	g.AddEdge("http://a.com/", "http://b.com/", "x")
	g.AddEdge("http://a.com/", "http://b.com/", "x")
	if g.EdgeCount() != 1 {
		t.Fatalf("duplicate edge kept: %d", g.EdgeCount())
	}
	// Same pair with different cause is a distinct edge.
	g.AddEdge("http://a.com/", "http://b.com/", "y")
	if g.EdgeCount() != 2 {
		t.Fatal("distinct-cause edge dropped")
	}
}

func TestRenderShowsChainWithCauses(t *testing.T) {
	g := FromEvents(figure3Events())
	out := g.Render(attackURL)
	for _, want := range []string{"verbeinlaliga.com", "findglo210.info", "live6nmld10.club", "[http-redirect]", "[window.open]"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if g.Render("http://nope.com/") != "(unknown URL)" {
		t.Fatal("unknown render wrong")
	}
}

func TestIncomingOutgoing(t *testing.T) {
	g := FromEvents(figure3Events())
	if len(g.Incoming(attackURL)) != 1 {
		t.Fatal("incoming wrong")
	}
	if len(g.Outgoing("http://verbeinlaliga.com/")) != 2 {
		t.Fatalf("outgoing = %v", g.Outgoing("http://verbeinlaliga.com/"))
	}
	if len(g.Nodes()) != 5 {
		t.Fatalf("nodes = %v", g.Nodes())
	}
}

func TestDownloadEdge(t *testing.T) {
	events := []browser.Event{
		{Kind: browser.EvDownload, From: "http://atk.club/land", To: "http://atk.club/dl/f.bin"},
	}
	g := FromEvents(events)
	if g.EdgeCount() != 1 {
		t.Fatal("download edge missing")
	}
}
