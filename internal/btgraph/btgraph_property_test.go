package btgraph

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/urlx"
)

// randomGraph builds an arbitrary URL multigraph.
func randomGraph(seed int64) (*Graph, []string) {
	src := rng.New(seed)
	n := src.IntRange(2, 20)
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://%s%d.com/p%d", src.Token(4), i, src.Intn(5))
	}
	g := NewGraph()
	edges := src.IntRange(1, 40)
	causes := []string{"http-redirect", "window.open", "script-src", "meta-refresh"}
	for i := 0; i < edges; i++ {
		from := urls[src.Intn(n)]
		to := urls[src.Intn(n)]
		g.AddEdge(from, to, rng.Pick(src, causes))
	}
	return g, urls
}

// Property: BacktrackPath terminates, ends at the target, has no
// duplicate nodes, and every consecutive pair is a real edge.
func TestBacktrackPathProperties(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		g, urls := randomGraph(seed)
		target := urls[int(pick)%len(urls)]
		if !g.Has(target) {
			_, err := g.BacktrackPath(target)
			return err != nil
		}
		path, err := g.BacktrackPath(target)
		if err != nil || len(path) == 0 {
			return false
		}
		if path[len(path)-1] != target {
			return false
		}
		seen := map[string]bool{}
		for _, u := range path {
			if seen[u] {
				return false
			}
			seen[u] = true
		}
		for i := 1; i < len(path); i++ {
			ok := false
			for _, e := range g.Outgoing(path[i-1]) {
				if e.To == path[i] {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every milking candidate is off the target's e2LD and
// reachable upstream of it.
func TestMilkingCandidatesProperties(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		g, urls := randomGraph(seed)
		target := urls[int(pick)%len(urls)]
		if !g.Has(target) {
			return true
		}
		cands, err := g.MilkingCandidates(target)
		if err != nil {
			return false
		}
		tu, err := urlx.Parse(target)
		if err != nil {
			return false
		}
		te := urlx.E2LD(tu.Host)
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				return false // duplicates
			}
			seen[c] = true
			cu, err := urlx.Parse(c)
			if err != nil {
				return false
			}
			if urlx.E2LD(cu.Host) == te {
				return false // candidate on the attack domain
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
