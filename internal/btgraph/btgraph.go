// Package btgraph rebuilds the ad-loading process from browser
// instrumentation logs as a backtracking graph of URLs (paper Sections
// 3.4 and 3.5, Figure 3): for a given SE-attack landing page it answers
// "which URLs were involved in publishing the ad and reaching this
// page?", even across obfuscated, referrer-suppressing JS redirections —
// because the edges come from in-browser events (redirect hops, script
// fetches, window.open and JS navigations), not from HTTP headers.
//
// The graph's backtracking walk also yields the candidate milkable URLs
// of Section 3.5: walking upstream from the attack page, the first URLs
// not hosted on the attack page's domain.
package btgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/browser"
	"repro/internal/urlx"
)

// Edge is one directed load relationship: From participated in causing
// To to load.
type Edge struct {
	From  string
	To    string
	Cause string
}

// Graph is a URL-node multigraph with reverse adjacency for backtracking.
type Graph struct {
	nodes map[string]bool
	fwd   map[string][]Edge
	rev   map[string][]Edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{nodes: map[string]bool{}, fwd: map[string][]Edge{}, rev: map[string][]Edge{}}
}

// AddEdge inserts an edge, creating nodes as needed. Self-loops and
// duplicate edges are dropped.
func (g *Graph) AddEdge(from, to, cause string) {
	if from == "" || to == "" || from == to {
		return
	}
	for _, e := range g.fwd[from] {
		if e.To == to && e.Cause == cause {
			return
		}
	}
	e := Edge{From: from, To: to, Cause: cause}
	g.nodes[from] = true
	g.nodes[to] = true
	g.fwd[from] = append(g.fwd[from], e)
	g.rev[to] = append(g.rev[to], e)
}

// Nodes returns all URLs, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the graph contains the URL.
func (g *Graph) Has(url string) bool { return g.nodes[url] }

// Incoming returns the edges pointing at url.
func (g *Graph) Incoming(url string) []Edge { return g.rev[url] }

// Outgoing returns the edges leaving url.
func (g *Graph) Outgoing(url string) []Edge { return g.fwd[url] }

// FromEvents builds the graph for one browsing session. The edge set
// mirrors the paper's reconstruction: HTTP redirect hops, script fetches,
// window.open popups, JS navigations (location / pushState), meta
// refreshes, and initial navigations chained from the previous page.
func FromEvents(events []browser.Event) *Graph {
	g := NewGraph()
	for _, e := range events {
		switch e.Kind {
		case browser.EvNavigation:
			if e.From != "" && e.To != "" {
				g.AddEdge(e.From, e.To, e.Cause)
			}
		case browser.EvScriptFetch:
			g.AddEdge(e.From, e.To, browser.CauseScriptSrc)
		case browser.EvPopup:
			g.AddEdge(e.From, e.To, browser.CauseWindowOpen)
		case browser.EvDownload:
			if e.From != "" && e.To != "" {
				g.AddEdge(e.From, e.To, "download")
			}
		}
	}
	return g
}

// BacktrackPath walks upstream from the target URL to a root (a node
// with no incoming edges), preferring the earliest-added incoming edge —
// reproducing Figure 3's publisher → ad network → TDS → attack chain in
// reverse. Returns the path root-first.
func (g *Graph) BacktrackPath(target string) ([]string, error) {
	if !g.nodes[target] {
		return nil, fmt.Errorf("btgraph: unknown URL %s", target)
	}
	path := []string{target}
	seen := map[string]bool{target: true}
	cur := target
	for {
		in := g.rev[cur]
		if len(in) == 0 {
			break
		}
		next := ""
		for _, e := range in {
			if !seen[e.From] {
				next = e.From
				break
			}
		}
		if next == "" {
			break
		}
		seen[next] = true
		path = append(path, next)
		cur = next
	}
	// Reverse to root-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// MilkingCandidates walks upstream from the attack page URL and returns
// the first URLs encountered that are NOT hosted on the attack page's
// e2LD — the paper's candidate milkable URLs (Section 3.5). Candidates
// are returned in upstream order (nearest first) without duplicates.
func (g *Graph) MilkingCandidates(attackURL string) ([]string, error) {
	u, err := urlx.Parse(attackURL)
	if err != nil {
		return nil, fmt.Errorf("btgraph: %w", err)
	}
	if !g.nodes[attackURL] {
		return nil, fmt.Errorf("btgraph: unknown URL %s", attackURL)
	}
	attackE2LD := urlx.E2LD(u.Host)

	var out []string
	seenURL := map[string]bool{attackURL: true}
	added := map[string]bool{}
	frontier := []string{attackURL}
	for len(frontier) > 0 {
		var next []string
		for _, cur := range frontier {
			for _, e := range g.rev[cur] {
				if seenURL[e.From] {
					continue
				}
				seenURL[e.From] = true
				fu, err := urlx.Parse(e.From)
				if err != nil {
					continue
				}
				if urlx.E2LD(fu.Host) != attackE2LD {
					// First off-domain hop: a candidate; do not walk past it
					// for this branch (the paper stops at the first
					// off-domain node).
					if !added[e.From] {
						added[e.From] = true
						out = append(out, e.From)
					}
					continue
				}
				next = append(next, e.From)
			}
		}
		frontier = next
	}
	return out, nil
}

// Render prints the graph rooted at target as an indented upstream tree
// (a textual Figure 3).
func (g *Graph) Render(target string) string {
	var b strings.Builder
	path, err := g.BacktrackPath(target)
	if err != nil {
		return "(unknown URL)"
	}
	for i, url := range path {
		indent := strings.Repeat("  ", i)
		arrow := ""
		if i > 0 {
			// Find the cause of the edge path[i-1] -> path[i].
			for _, e := range g.fwd[path[i-1]] {
				if e.To == url {
					arrow = " [" + e.Cause + "]"
					break
				}
			}
		}
		fmt.Fprintf(&b, "%s%s%s\n", indent, url, arrow)
	}
	return b.String()
}

// EdgeCount returns the total number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, es := range g.fwd {
		n += len(es)
	}
	return n
}
