package dataset

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/imaging"
	"repro/internal/worldgen"
)

var (
	runOnce sync.Once
	runSess []*crawler.Session
	runDisc *core.DiscoveryResult
	runMilk *core.MilkingResult
	runErr  error
)

func fixture(t *testing.T) ([]*crawler.Session, *core.DiscoveryResult, *core.MilkingResult) {
	t.Helper()
	runOnce.Do(func() {
		w := worldgen.Build(worldgen.TinyConfig())
		var seeds []core.SeedNetwork
		for _, n := range w.Networks {
			if n.Spec.Seed {
				seeds = append(seeds, core.SeedNetwork{
					Name: n.Name(), Patterns: n.Patterns(), SearchSnippet: n.SearchSnippet(),
					ResidentialRequired: n.Spec.ResidentialOnly,
				})
			}
		}
		p := core.NewPipeline(core.PipelineConfig{
			Seeds: seeds,
			Milker: core.MilkerConfig{
				Duration: 24 * time.Hour, GSBExtra: 24 * time.Hour, MaxSources: 20,
			},
		}, w.Internet, w.Clock, w.Search, w.GSB, w.VT, w.Webcat)
		_, byHost := p.Reverse()
		runSess = p.Crawl(byHost)
		runDisc, runErr = p.Discover(runSess)
		if runErr != nil {
			return
		}
		_, runMilk, runErr = p.Milk(runSess, runDisc)
	})
	if runErr != nil {
		t.Fatalf("fixture: %v", runErr)
	}
	return runSess, runDisc, runMilk
}

func TestExportWritesEverything(t *testing.T) {
	sessions, disc, milk := fixture(t)
	dir := t.TempDir()
	shots := 0
	sum, err := Export(dir, sessions, disc, milk, Options{
		MaxSessions: 10,
		Screenshots: func(campaignID int) (*imaging.Image, bool) {
			shots++
			return imaging.New(32, 24), true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Campaigns == 0 || sum.SessionLogs == 0 || sum.Domains == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Screenshots != shots || shots != sum.Campaigns {
		t.Fatalf("screenshots = %d, campaigns = %d", sum.Screenshots, sum.Campaigns)
	}

	// campaigns.json parses and matches the discovery.
	var campaigns []map[string]any
	readJSON(t, filepath.Join(dir, "campaigns.json"), &campaigns)
	if len(campaigns) != len(disc.Campaigns()) {
		t.Fatalf("campaigns.json has %d entries", len(campaigns))
	}
	for _, c := range campaigns {
		if c["category"] == "" || c["rep_dhash"] == "" {
			t.Fatalf("incomplete campaign record %v", c)
		}
	}

	// Each log file is valid JSONL with known event kinds.
	logs, err := filepath.Glob(filepath.Join(dir, "logs", "session-*.jsonl"))
	if err != nil || len(logs) != sum.SessionLogs {
		t.Fatalf("log files = %d, want %d (%v)", len(logs), sum.SessionLogs, err)
	}
	checkJSONL(t, logs[0], func(m map[string]any) {
		if m["kind"] == "" {
			t.Fatal("event without kind")
		}
	})

	// Milked inventories.
	checkJSONL(t, filepath.Join(dir, "milked_domains.jsonl"), func(m map[string]any) {
		if m["host"] == "" || m["category"] == "" {
			t.Fatalf("bad domain record %v", m)
		}
	})
	checkJSONL(t, filepath.Join(dir, "milked_files.jsonl"), func(m map[string]any) {
		if m["sha256"] == "" {
			t.Fatalf("bad file record %v", m)
		}
	})

	// Screenshot PNGs exist.
	pngs, _ := filepath.Glob(filepath.Join(dir, "screenshots", "*.png"))
	if len(pngs) != sum.Screenshots {
		t.Fatalf("pngs = %d", len(pngs))
	}
	data, err := os.ReadFile(pngs[0])
	if err != nil || !strings.HasPrefix(string(data), "\x89PNG") {
		t.Fatal("not a PNG")
	}
}

func TestExportWithoutMilkingOrScreenshots(t *testing.T) {
	sessions, disc, _ := fixture(t)
	dir := t.TempDir()
	sum, err := Export(dir, sessions, disc, nil, Options{MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Domains != 0 || sum.Files != 0 || sum.Screenshots != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.SessionLogs != 2 {
		t.Fatalf("session logs = %d, want bounded 2", sum.SessionLogs)
	}
	if _, err := os.Stat(filepath.Join(dir, "milked_domains.jsonl")); !os.IsNotExist(err) {
		t.Fatal("milking files written without milking")
	}
}

func TestExportBadDir(t *testing.T) {
	sessions, disc, milk := fixture(t)
	if _, err := Export("/proc/definitely/not/writable", sessions, disc, milk, Options{}); err == nil {
		t.Fatal("export into unwritable dir succeeded")
	}
}

func readJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
}

func checkJSONL(t *testing.T, path string, check func(map[string]any)) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lines := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("%s line %d: %v", path, lines+1, err)
		}
		check(m)
		lines++
	}
	if lines == 0 {
		t.Fatalf("%s is empty", path)
	}
}
