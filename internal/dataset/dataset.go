// Package dataset exports the artefacts the paper releases to the
// community (Section 4): "we are releasing all browser logs and
// screenshots related to the SE attacks that we collected during our
// experiments" — a campaign index, per-session instrumentation logs for
// every session that reached an SE attack, the milked domain and binary
// inventories, the harvested scam-phone blacklist, and (when a live
// screenshot provider is available) one exemplar screenshot per
// campaign.
package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/imaging"
)

// ScreenshotFunc renders an exemplar screenshot for a discovered
// campaign; ok=false when the campaign cannot be reached anymore.
type ScreenshotFunc func(campaignID int) (img *imaging.Image, ok bool)

// Options configure an export.
type Options struct {
	// Screenshots, when non-nil, is used to render one PNG per campaign.
	Screenshots ScreenshotFunc
	// MaxSessions bounds how many SE-session logs are written (0 = all).
	MaxSessions int
}

// Summary describes what an export wrote.
type Summary struct {
	Campaigns   int
	SessionLogs int
	Screenshots int
	Domains     int
	Files       int
	Phones      int
}

type campaignRecord struct {
	ID         int      `json:"id"`
	Category   string   `json:"category"`
	Attacks    int      `json:"attacks"`
	Domains    []string `json:"domains"`
	RepHash    string   `json:"rep_dhash"`
	ScamPhones []string `json:"scam_phones,omitempty"`
}

type eventRecord struct {
	Kind   string    `json:"kind"`
	Tab    int       `json:"tab"`
	Time   time.Time `json:"time"`
	From   string    `json:"from,omitempty"`
	To     string    `json:"to,omitempty"`
	Cause  string    `json:"cause,omitempty"`
	API    string    `json:"api,omitempty"`
	Args   []string  `json:"args,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

type domainRecord struct {
	Host      string    `json:"host"`
	Category  string    `json:"category"`
	Campaign  int       `json:"campaign"`
	FirstSeen time.Time `json:"first_seen"`
	GSBInit   bool      `json:"gsb_init"`
	GSBFinal  bool      `json:"gsb_final"`
}

type fileRecord struct {
	SHA256    string `json:"sha256"`
	Category  string `json:"category"`
	Campaign  int    `json:"campaign"`
	Known     bool   `json:"previously_known"`
	Positives int    `json:"final_positives"`
	Label     string `json:"label,omitempty"`
}

// Export writes the dataset under dir. The directory is created; files
// are overwritten.
func Export(dir string, sessions []*crawler.Session, disc *core.DiscoveryResult,
	milk *core.MilkingResult, opts Options) (Summary, error) {
	var sum Summary
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return sum, fmt.Errorf("dataset: %w", err)
	}

	// 1. Campaign index.
	var campaigns []campaignRecord
	seSessions := map[int]bool{}
	for _, c := range disc.Campaigns() {
		rec := campaignRecord{
			ID:         c.ID,
			Category:   string(c.Category),
			Attacks:    c.AttackCount(disc.Observations),
			Domains:    c.Domains,
			RepHash:    c.Rep.String(),
			ScamPhones: c.Signals.ScamPhones,
		}
		campaigns = append(campaigns, rec)
		for _, m := range c.Members {
			for _, ref := range disc.Observations[m].Refs {
				seSessions[ref.Session] = true
			}
		}
	}
	if err := writeJSON(filepath.Join(dir, "campaigns.json"), campaigns); err != nil {
		return sum, err
	}
	sum.Campaigns = len(campaigns)

	// 2. Browser logs of every session that reached an SE attack.
	logsDir := filepath.Join(dir, "logs")
	if err := os.MkdirAll(logsDir, 0o755); err != nil {
		return sum, fmt.Errorf("dataset: %w", err)
	}
	for si := range sessions {
		if !seSessions[si] {
			continue
		}
		if opts.MaxSessions > 0 && sum.SessionLogs >= opts.MaxSessions {
			break
		}
		if err := writeSessionLog(logsDir, si, sessions[si]); err != nil {
			return sum, err
		}
		sum.SessionLogs++
	}

	// 3. Exemplar screenshots.
	if opts.Screenshots != nil {
		shotsDir := filepath.Join(dir, "screenshots")
		if err := os.MkdirAll(shotsDir, 0o755); err != nil {
			return sum, fmt.Errorf("dataset: %w", err)
		}
		for _, c := range disc.Campaigns() {
			img, ok := opts.Screenshots(c.ID)
			if !ok {
				continue
			}
			name := filepath.Join(shotsDir, fmt.Sprintf("campaign-%03d-%s.png", c.ID, c.Category))
			f, err := os.Create(name)
			if err != nil {
				return sum, fmt.Errorf("dataset: %w", err)
			}
			err = img.EncodePNG(f)
			f.Close()
			if err != nil {
				return sum, fmt.Errorf("dataset: %w", err)
			}
			sum.Screenshots++
		}
	}

	// 4. Milking inventories.
	if milk != nil {
		var domains []domainRecord
		for _, d := range milk.Domains {
			domains = append(domains, domainRecord{
				Host: d.Host, Category: string(d.Category), Campaign: d.CampaignID,
				FirstSeen: d.FirstSeen, GSBInit: d.GSBInit, GSBFinal: d.GSBFinal,
			})
		}
		if err := writeJSONL(filepath.Join(dir, "milked_domains.jsonl"), len(domains), func(i int) any { return domains[i] }); err != nil {
			return sum, err
		}
		sum.Domains = len(domains)

		var files []fileRecord
		for _, f := range milk.Files {
			files = append(files, fileRecord{
				SHA256: f.SHA256, Category: string(f.Category), Campaign: f.CampaignID,
				Known: f.Known, Positives: f.Final.Positives, Label: f.Final.Label,
			})
		}
		if err := writeJSONL(filepath.Join(dir, "milked_files.jsonl"), len(files), func(i int) any { return files[i] }); err != nil {
			return sum, err
		}
		sum.Files = len(files)

		if milk.Phones != nil {
			if err := writeJSON(filepath.Join(dir, "scam_phones.json"), milk.Phones.Entries()); err != nil {
				return sum, err
			}
			sum.Phones = milk.Phones.Len()
		}
	}
	return sum, nil
}

func writeSessionLog(dir string, idx int, s *crawler.Session) error {
	name := filepath.Join(dir, fmt.Sprintf("session-%05d-%s-%s.jsonl", idx, s.Publisher, s.UserAgent.Name))
	return writeJSONL(name, len(s.Events), func(i int) any {
		e := s.Events[i]
		rec := eventRecord{
			Kind: e.Kind.String(), Tab: e.Tab, Time: e.Time,
			From: e.From, To: e.To, Cause: e.Cause, Detail: e.Detail,
		}
		if e.Kind == browser.EvAPICall {
			rec.API = e.API.Name
			rec.Args = e.API.Args
		}
		return rec
	})
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("dataset: encode %s: %w", path, err)
	}
	return nil
}

func writeJSONL(path string, n int, item func(i int) any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for i := 0; i < n; i++ {
		if err := enc.Encode(item(i)); err != nil {
			return fmt.Errorf("dataset: encode %s: %w", path, err)
		}
	}
	return nil
}
