// Package profiling backs the -cpuprofile/-memprofile flags the seacma
// binaries expose, so pipeline hot spots (rendering, hashing,
// clustering) can be profiled on real runs rather than only through the
// bench harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap (allocs)
// profile at memPath; an empty path disables that profile. The returned
// stop function is idempotent and must run before process exit for the
// profiles to be complete — defer it from the command's run function.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // settle allocation stats before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
