package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabledIsNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have content.
	buf := make([]byte, 1<<16)
	for i := range buf {
		buf[i] = byte(i * i)
	}
	_ = buf
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s: empty profile", p)
		}
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("expected error for unwritable cpu profile path")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("expected error for unwritable mem profile path")
	}
}
