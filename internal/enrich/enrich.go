// Package enrich quantifies the paper's defensive claim (Sections 1 and
// 6): "our results provide valuable information that could be used to
// improve defense systems ... existing URL blacklists can be enriched to
// include and protect from many new web pages that contain SE attacks."
//
// The enrichment model: every domain the milker harvests is pushed to a
// blacklist feed after a propagation delay (minutes, not the days GSB
// needs). The package then replays synthetic victim traffic against the
// milked domains' lifetimes and measures how many visits each defence
// would have blocked:
//
//   - GSB alone (the paper's baseline, Table 4's detection rates), and
//   - GSB + the milking feed.
//
// The gap is the protection gained by running the paper's system as a
// live defence.
package enrich

import (
	"sort"
	"sync"
	"time"

	"repro/internal/gsb"
	"repro/internal/rng"
)

// Feed is the milking-driven blacklist: domains become blocked
// PropagationDelay after the milker first sees them.
type Feed struct {
	mu    sync.Mutex
	delay time.Duration
	at    map[string]time.Time // domain -> effective blocking time
}

// NewFeed creates a feed with the given propagation delay (how long it
// takes a harvested domain to reach subscribers).
func NewFeed(propagationDelay time.Duration) *Feed {
	return &Feed{delay: propagationDelay, at: map[string]time.Time{}}
}

// Publish adds a harvested domain first seen at t.
func (f *Feed) Publish(domain string, firstSeen time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	eff := firstSeen.Add(f.delay)
	if old, ok := f.at[domain]; !ok || eff.Before(old) {
		f.at[domain] = eff
	}
}

// Blocks reports whether the feed blocks domain at time t.
func (f *Feed) Blocks(domain string, t time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	eff, ok := f.at[domain]
	return ok && !t.Before(eff)
}

// Len returns the number of published domains.
func (f *Feed) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.at)
}

// DomainWindow is one attack domain's victim-exposure window.
type DomainWindow struct {
	Domain string
	// From is when victims start reaching the domain (its first
	// observation); To ends the exposure (domain burned/expired).
	From, To time.Time
}

// TrafficModel shapes the synthetic victim traffic.
type TrafficModel struct {
	// VisitsPerDomain is the mean number of victim visits per attack
	// domain over its window.
	VisitsPerDomain float64
	// Seed drives the deterministic visit sampling.
	Seed int64
}

// Outcome summarises a protection replay.
type Outcome struct {
	Visits        int
	BlockedGSB    int
	BlockedEnrich int // blocked by GSB or the feed
	FeedOnlySaves int // visits only the feed blocked
}

// GSBRate returns the baseline protection rate.
func (o Outcome) GSBRate() float64 { return rate(o.BlockedGSB, o.Visits) }

// EnrichedRate returns the protection rate with the milking feed.
func (o Outcome) EnrichedRate() float64 { return rate(o.BlockedEnrich, o.Visits) }

func rate(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// Replay samples victim visits over each domain's window and scores both
// defences. The GSB lookups use the same API the pipeline polls, so the
// baseline reflects the simulated blacklist's real lag behaviour.
func Replay(windows []DomainWindow, bl *gsb.Blacklist, feed *Feed, model TrafficModel) Outcome {
	if model.VisitsPerDomain <= 0 {
		model.VisitsPerDomain = 20
	}
	src := rng.New(model.Seed).Split("enrich-replay")
	// Deterministic order regardless of caller's map iteration.
	ws := append([]DomainWindow(nil), windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Domain < ws[j].Domain })

	var out Outcome
	for _, w := range ws {
		span := w.To.Sub(w.From)
		if span <= 0 {
			continue
		}
		visits := int(model.VisitsPerDomain/2) + src.Intn(int(model.VisitsPerDomain)+1)
		for v := 0; v < visits; v++ {
			at := w.From.Add(time.Duration(src.Float64() * float64(span)))
			out.Visits++
			g := bl.Lookup(w.Domain, at)
			e := feed.Blocks(w.Domain, at)
			if g {
				out.BlockedGSB++
			}
			if g || e {
				out.BlockedEnrich++
			}
			if e && !g {
				out.FeedOnlySaves++
			}
		}
	}
	return out
}
