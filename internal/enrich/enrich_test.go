package enrich

import (
	"testing"
	"time"

	"repro/internal/gsb"
	"repro/internal/rng"
	"repro/internal/vclock"
)

func TestFeedPropagationDelay(t *testing.T) {
	f := NewFeed(30 * time.Minute)
	t0 := vclock.Epoch
	f.Publish("atk.club", t0)
	if f.Blocks("atk.club", t0.Add(29*time.Minute)) {
		t.Fatal("blocked before propagation")
	}
	if !f.Blocks("atk.club", t0.Add(30*time.Minute)) {
		t.Fatal("not blocked after propagation")
	}
	if f.Blocks("other.club", t0.Add(time.Hour)) {
		t.Fatal("unpublished domain blocked")
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d", f.Len())
	}
}

func TestFeedKeepsEarliest(t *testing.T) {
	f := NewFeed(0)
	t0 := vclock.Epoch
	f.Publish("a.club", t0.Add(time.Hour))
	f.Publish("a.club", t0) // earlier sighting wins
	if !f.Blocks("a.club", t0) {
		t.Fatal("earlier publication ignored")
	}
}

func TestReplayEnrichedBeatsGSB(t *testing.T) {
	// GSB that never detects anything vs an instant feed.
	bl := gsb.NewBlacklist(map[string]gsb.DetectionProfile{}, rng.New(1))
	feed := NewFeed(15 * time.Minute)
	t0 := vclock.Epoch
	var windows []DomainWindow
	for i := 0; i < 50; i++ {
		d := rng.New(int64(i)).Token(10) + ".club"
		bl.ObserveMaliciousDomain(d, "nocat", t0)
		feed.Publish(d, t0)
		windows = append(windows, DomainWindow{Domain: d, From: t0, To: t0.Add(12 * time.Hour)})
	}
	out := Replay(windows, bl, feed, TrafficModel{VisitsPerDomain: 20, Seed: 7})
	if out.Visits == 0 {
		t.Fatal("no traffic sampled")
	}
	if out.BlockedGSB != 0 {
		t.Fatalf("GSB blocked %d with empty profiles", out.BlockedGSB)
	}
	if out.EnrichedRate() < 0.9 {
		t.Fatalf("enriched rate %.2f, want ~ (12h-15m)/12h", out.EnrichedRate())
	}
	if out.FeedOnlySaves != out.BlockedEnrich {
		t.Fatal("feed-only accounting wrong with silent GSB")
	}
}

func TestReplayGSBSubsetOfEnriched(t *testing.T) {
	bl := gsb.NewBlacklist(map[string]gsb.DetectionProfile{
		"cat": {DetectProb: 1.0, LagMeanDays: 0.1, LagSigma: 0.2},
	}, rng.New(2))
	feed := NewFeed(time.Hour)
	t0 := vclock.Epoch
	var windows []DomainWindow
	for i := 0; i < 30; i++ {
		d := rng.New(int64(100+i)).Token(10) + ".xyz"
		bl.ObserveMaliciousDomain(d, "cat", t0)
		feed.Publish(d, t0)
		windows = append(windows, DomainWindow{Domain: d, From: t0, To: t0.Add(24 * time.Hour)})
	}
	out := Replay(windows, bl, feed, TrafficModel{VisitsPerDomain: 30, Seed: 9})
	if out.BlockedEnrich < out.BlockedGSB {
		t.Fatal("enriched blocked fewer than GSB alone")
	}
	if out.GSBRate() > out.EnrichedRate() {
		t.Fatal("rates inconsistent")
	}
}

func TestReplayDeterministic(t *testing.T) {
	bl := gsb.NewBlacklist(map[string]gsb.DetectionProfile{}, rng.New(3))
	feed := NewFeed(0)
	t0 := vclock.Epoch
	windows := []DomainWindow{{Domain: "a.club", From: t0, To: t0.Add(time.Hour)}}
	feed.Publish("a.club", t0)
	a := Replay(windows, bl, feed, TrafficModel{VisitsPerDomain: 10, Seed: 5})
	b := Replay(windows, bl, feed, TrafficModel{VisitsPerDomain: 10, Seed: 5})
	if a != b {
		t.Fatalf("replays differ: %+v vs %+v", a, b)
	}
}

func TestReplayEmptyWindowSkipped(t *testing.T) {
	bl := gsb.NewBlacklist(map[string]gsb.DetectionProfile{}, rng.New(4))
	feed := NewFeed(0)
	t0 := vclock.Epoch
	out := Replay([]DomainWindow{{Domain: "a.club", From: t0, To: t0}}, bl, feed, TrafficModel{})
	if out.Visits != 0 {
		t.Fatalf("visits = %d for zero-length window", out.Visits)
	}
	if out.GSBRate() != 0 || out.EnrichedRate() != 0 {
		t.Fatal("rates on empty outcome nonzero")
	}
}
