package gsb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/vclock"
)

// TestConcurrentObserveAndLookup hammers the sharded entry table from
// many goroutines — observations and lookups interleaved on overlapping
// domains — and checks that every domain ends with the same detection
// fate a serial blacklist assigns. Run under -race this is the shard
// index's safety contract for the pipelined milker (probe-side mints
// observing domains while the poll fan-out looks others up).
func TestConcurrentObserveAndLookup(t *testing.T) {
	const domains = 200
	const workers = 8
	born := vclock.Epoch
	late := born.Add(365 * 24 * time.Hour)

	concurrent := NewBlacklist(nil, rng.New(7))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < domains; i++ {
				d := fmt.Sprintf("host%d.club", i)
				// Every worker observes every domain (idempotence under
				// contention) and looks it up at a far-future instant.
				concurrent.ObserveMaliciousDomain(d, "tech-support", born)
				concurrent.Lookup(d, late)
				_ = w
			}
		}()
	}
	wg.Wait()

	serial := NewBlacklist(nil, rng.New(7))
	for i := 0; i < domains; i++ {
		d := fmt.Sprintf("host%d.club", i)
		serial.ObserveMaliciousDomain(d, "tech-support", born)
	}

	for i := 0; i < domains; i++ {
		d := fmt.Sprintf("host%d.club", i)
		if got, want := concurrent.Lookup(d, late), serial.Lookup(d, late); got != want {
			t.Fatalf("%s: concurrent verdict %v, serial %v", d, got, want)
		}
		gl, gok := concurrent.DetectionLag(d)
		sl, sok := serial.DetectionLag(d)
		if gok != sok || gl != sl {
			t.Fatalf("%s: lag %v/%v, serial %v/%v", d, gl, gok, sl, sok)
		}
	}
	if got := concurrent.LookupCount(); got < workers*domains {
		t.Fatalf("lookup count %d, want >= %d", got, workers*domains)
	}
	if got, want := len(concurrent.ObservedDomains()), domains; got != want {
		t.Fatalf("observed %d domains, want %d", got, want)
	}
}

// TestShardsSpreadDomains guards against a degenerate shard function:
// a realistic domain population must not collapse into one shard.
func TestShardsSpreadDomains(t *testing.T) {
	b := NewBlacklist(nil, rng.New(9))
	used := map[*shard]bool{}
	for i := 0; i < 256; i++ {
		used[b.shardFor(fmt.Sprintf("host%d.online", i))] = true
	}
	if len(used) < shardCount/2 {
		t.Fatalf("256 domains landed in only %d/%d shards", len(used), shardCount)
	}
}
