// Package gsb simulates the Google Safe Browsing URL blacklist the paper
// measures SEACMA campaigns against (Sections 4.3 and 4.5).
//
// The real GSB detects malicious domains on its own schedule; the paper's
// headline findings are that (1) many SEACMA categories evade it entirely,
// (2) detection, when it happens, lags domain birth by more than 7 days on
// average, and (3) initially only ~1.4% of freshly milked domains are
// blacklisted, rising to ~16% months later (Table 4).
//
// The simulator reproduces those dynamics with a per-category detection
// model: when a malicious domain is born, the blacklist draws whether it
// will ever be detected (per-category probability) and, if so, after what
// lag (log-normal, mean above 7 days). Lookups are then a pure function of
// virtual time. Benign domains are never listed — the paper reports no
// false positives in its GSB interactions.
package gsb

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// DetectionProfile describes how the blacklist treats one category of
// SE-attack domain.
type DetectionProfile struct {
	// DetectProb is the probability a domain of this category is ever
	// added to the blacklist.
	DetectProb float64
	// LagMeanDays and LagSigma parameterise the log-normal detection lag
	// (in days) for detected domains.
	LagMeanDays float64
	LagSigma    float64
	// FastProb is the fraction of detected domains caught quickly (an
	// exponential tail with mean FastLagHours) — what makes a small
	// percentage of freshly milked domains already listed at discovery
	// (Table 4's GSB-init ≈ 1.4%).
	FastProb     float64
	FastLagHours float64
}

// DefaultProfiles calibrates detection to the paper's Tables 1 and 4:
// Fake Software and Lottery domains are sometimes caught, Technical
// Support eventually often is, and Registration / Chrome Notifications /
// Scareware evade GSB completely.
var DefaultProfiles = map[string]DetectionProfile{
	"fake-software":        {DetectProb: 0.20, LagMeanDays: 13, LagSigma: 0.6, FastProb: 0.20, FastLagHours: 2},
	"lottery":              {DetectProb: 0.18, LagMeanDays: 13, LagSigma: 0.5, FastProb: 0.25, FastLagHours: 2},
	"registration":         {DetectProb: 0.0},
	"chrome-notifications": {DetectProb: 0.03, LagMeanDays: 20, LagSigma: 0.4},
	"scareware":            {DetectProb: 0.0},
	"tech-support":         {DetectProb: 0.60, LagMeanDays: 14, LagSigma: 0.7, FastProb: 0.08, FastLagHours: 3},
}

type entry struct {
	category   string
	born       time.Time
	detected   bool
	detectedAt time.Time
}

// shardCount divides the domain space; a power of two so the shard
// index is a mask of the domain hash. 16 shards cut lock contention
// well below the milker's worker counts without bloating the struct.
const shardCount = 16

// shard holds one partition of the entry table. Entries are immutable
// after insertion (the detection draw is fixed at observation), so
// lookups take only the read lock.
type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// Blacklist is the simulated Safe Browsing service. It is safe for
// concurrent use: the entry table is sharded by domain hash so the
// milker's parallel poll fan-out and concurrent probe-side
// observations stop serializing on one mutex, and the load counter is
// atomic.
type Blacklist struct {
	profiles map[string]DetectionProfile
	src      *rng.Source
	shards   [shardCount]shard
	lookups  atomic.Int64
}

// NewBlacklist returns a blacklist with the given per-category profiles
// (nil means DefaultProfiles) drawing randomness from src.
func NewBlacklist(profiles map[string]DetectionProfile, src *rng.Source) *Blacklist {
	if profiles == nil {
		profiles = DefaultProfiles
	}
	b := &Blacklist{
		profiles: profiles,
		src:      src.Split("gsb"),
	}
	for i := range b.shards {
		b.shards[i].entries = map[string]*entry{}
	}
	return b
}

// shardFor returns the shard owning domain (FNV-1a of the name).
func (b *Blacklist) shardFor(domain string) *shard {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= 1099511628211
	}
	return &b.shards[h&(shardCount-1)]
}

// ObserveMaliciousDomain tells the simulator a malicious domain of the
// given category came into existence at born. Idempotent per domain: the
// first observation fixes the detection draw. This is called by the world
// generator (the omniscient side), never by the pipeline.
func (b *Blacklist) ObserveMaliciousDomain(domain, category string, born time.Time) {
	s := b.shardFor(domain)
	s.mu.RLock()
	_, ok := s.entries[domain]
	s.mu.RUnlock()
	if ok {
		return
	}
	e := &entry{category: category, born: born}
	p := b.profiles[category]
	// The detection draw is keyed per domain, not pulled from the shared
	// sequential stream: domains can be observed in any order (parallel
	// milking mints them concurrently) and must still receive the same
	// detection fate and lag. The draw happens outside the shard lock —
	// it is a pure function of (seed, domain), so a concurrent double
	// observation computes the identical entry and first-write-wins
	// below changes nothing.
	src := b.src.Split(domain)
	if src.Bool(p.DetectProb) {
		e.detected = true
		if p.FastProb > 0 && src.Bool(p.FastProb) {
			lagHours := src.Exp(p.FastLagHours)
			e.detectedAt = born.Add(time.Duration(lagHours * float64(time.Hour)))
		} else {
			lagDays := src.LogNormal(logMeanFor(p.LagMeanDays, p.LagSigma), p.LagSigma)
			e.detectedAt = born.Add(time.Duration(lagDays * 24 * float64(time.Hour)))
		}
	}
	s.mu.Lock()
	if _, ok := s.entries[domain]; !ok {
		s.entries[domain] = e
	}
	s.mu.Unlock()
}

// logMeanFor converts a desired arithmetic mean of a log-normal with the
// given sigma into the underlying normal's mu: mean = exp(mu + sigma^2/2).
func logMeanFor(mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	return math.Log(mean) - sigma*sigma/2
}

// Lookup reports whether domain is blacklisted at virtual time t. This is
// the pipeline-facing API (the paper polls it every 30 minutes during
// milking).
func (b *Blacklist) Lookup(domain string, t time.Time) bool {
	b.lookups.Add(1)
	s := b.shardFor(domain)
	s.mu.RLock()
	e, ok := s.entries[domain]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	return e.detected && !t.Before(e.detectedAt)
}

// DetectionLag returns, for a domain the blacklist eventually detects, the
// lag between birth and listing. ok is false for unknown or never-detected
// domains. Used by the measurement layer to reproduce the "GSB is more
// than 7 days slower" result.
func (b *Blacklist) DetectionLag(domain string) (time.Duration, bool) {
	s := b.shardFor(domain)
	s.mu.RLock()
	e, ok := s.entries[domain]
	s.mu.RUnlock()
	if !ok || !e.detected {
		return 0, false
	}
	return e.detectedAt.Sub(e.born), true
}

// LookupCount returns the number of Lookup calls served (load accounting).
func (b *Blacklist) LookupCount() int {
	return int(b.lookups.Load())
}

// ObservedDomains returns all observed domains, sorted; for tests.
func (b *Blacklist) ObservedDomains() []string {
	var out []string
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.RLock()
		for d := range s.entries {
			out = append(out, d)
		}
		s.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// EventualDetectionRate returns the fraction of observed domains in
// category that the blacklist will ever detect. Ground-truth metric for
// calibration tests.
func (b *Blacklist) EventualDetectionRate(category string) (float64, int) {
	var total, detected int
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.RLock()
		for _, e := range s.entries {
			if e.category != category {
				continue
			}
			total++
			if e.detected {
				detected++
			}
		}
		s.mu.RUnlock()
	}
	if total == 0 {
		return 0, 0
	}
	return float64(detected) / float64(total), total
}
