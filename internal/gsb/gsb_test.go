package gsb

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/vclock"
)

func TestUnknownDomainNotListed(t *testing.T) {
	b := NewBlacklist(nil, rng.New(1))
	if b.Lookup("benign.com", vclock.Epoch) {
		t.Fatal("unknown domain blacklisted")
	}
}

func TestZeroProbCategoriesNeverDetected(t *testing.T) {
	b := NewBlacklist(nil, rng.New(2))
	for i := 0; i < 500; i++ {
		b.ObserveMaliciousDomain(
			rng.New(int64(i)).Token(10)+".club", "registration", vclock.Epoch)
	}
	rate, total := b.EventualDetectionRate("registration")
	if total != 500 || rate != 0 {
		t.Fatalf("rate = %v over %d", rate, total)
	}
	// Even a year later nothing is listed.
	later := vclock.Epoch.Add(365 * 24 * time.Hour)
	for _, d := range b.ObservedDomains() {
		if b.Lookup(d, later) {
			t.Fatalf("registration domain %s listed", d)
		}
	}
}

func TestDetectionRateMatchesProfile(t *testing.T) {
	b := NewBlacklist(nil, rng.New(3))
	src := rng.New(99)
	for i := 0; i < 2000; i++ {
		b.ObserveMaliciousDomain(src.Token(12)+".xyz", "tech-support", vclock.Epoch)
	}
	rate, total := b.EventualDetectionRate("tech-support")
	if total != 2000 {
		t.Fatalf("total = %d", total)
	}
	want := DefaultProfiles["tech-support"].DetectProb
	if rate < want-0.05 || rate > want+0.05 {
		t.Fatalf("rate = %v, want ~%v", rate, want)
	}
}

func TestDetectionLagExceedsSevenDays(t *testing.T) {
	b := NewBlacklist(nil, rng.New(4))
	src := rng.New(7)
	var lags []time.Duration
	for i := 0; i < 3000; i++ {
		d := src.Token(12) + ".club"
		b.ObserveMaliciousDomain(d, "fake-software", vclock.Epoch)
		if lag, ok := b.DetectionLag(d); ok {
			lags = append(lags, lag)
		}
	}
	if len(lags) < 100 {
		t.Fatalf("only %d detections", len(lags))
	}
	var sum time.Duration
	for _, l := range lags {
		sum += l
	}
	mean := sum / time.Duration(len(lags))
	if mean < 7*24*time.Hour {
		t.Fatalf("mean lag %v < 7 days — the paper's headline would not reproduce", mean)
	}
}

func TestLookupTransitionsAtDetectionTime(t *testing.T) {
	b := NewBlacklist(map[string]DetectionProfile{
		"cat": {DetectProb: 1.0, LagMeanDays: 5, LagSigma: 0.3},
	}, rng.New(5))
	b.ObserveMaliciousDomain("x.club", "cat", vclock.Epoch)
	lag, ok := b.DetectionLag("x.club")
	if !ok {
		t.Fatal("prob-1 domain not detected")
	}
	justBefore := vclock.Epoch.Add(lag - time.Second)
	atTime := vclock.Epoch.Add(lag)
	if b.Lookup("x.club", justBefore) {
		t.Fatal("listed before detection time")
	}
	if !b.Lookup("x.club", atTime) {
		t.Fatal("not listed at detection time")
	}
}

func TestObserveIdempotent(t *testing.T) {
	b := NewBlacklist(map[string]DetectionProfile{
		"cat": {DetectProb: 1.0, LagMeanDays: 5, LagSigma: 0.3},
	}, rng.New(6))
	b.ObserveMaliciousDomain("x.club", "cat", vclock.Epoch)
	lag1, _ := b.DetectionLag("x.club")
	b.ObserveMaliciousDomain("x.club", "cat", vclock.Epoch.Add(time.Hour))
	lag2, _ := b.DetectionLag("x.club")
	if lag1 != lag2 {
		t.Fatal("re-observation changed detection draw")
	}
	if len(b.ObservedDomains()) != 1 {
		t.Fatal("duplicate entries")
	}
}

func TestLookupCount(t *testing.T) {
	b := NewBlacklist(nil, rng.New(8))
	for i := 0; i < 5; i++ {
		b.Lookup("a.com", vclock.Epoch)
	}
	if b.LookupCount() != 5 {
		t.Fatalf("lookups = %d", b.LookupCount())
	}
}

func TestDetectionLagUnknownDomain(t *testing.T) {
	b := NewBlacklist(nil, rng.New(9))
	if _, ok := b.DetectionLag("never-seen.com"); ok {
		t.Fatal("lag for unknown domain")
	}
}
