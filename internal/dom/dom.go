// Package dom models the document trees the synthetic web serves and the
// browser renders: elements with tags, attributes, box geometry, and
// visual style. The crawler's click heuristics (paper Section 3.2: sort
// images and iframes by rendered size, click the largest first) and the
// screenshot renderer both consume this geometry.
//
// Layout is explicit rather than computed: page generators place boxes
// directly, which is all the pipeline needs — it never inspects CSS, only
// rendered geometry and page source.
package dom

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Element is a node in a document tree.
type Element struct {
	Tag      string
	Attrs    map[string]string
	Children []*Element
	Text     string // inline text content (leaf convenience)

	// Box geometry in page coordinates.
	X, Y, W, H int

	// Style captures the visual properties the renderer and click
	// heuristics care about.
	Style Style
}

// Style is the subset of visual style the simulator models.
type Style struct {
	// Background fill as 0xRRGGBB; -1 means transparent/no fill.
	Background int
	// Foreground ("ink") color for text blocks, 0xRRGGBB.
	Ink int
	// Transparent marks fully invisible overlay elements — the paper's
	// "transparent ad" <div> covering the entire page (Section 2).
	Transparent bool
	// ZIndex orders overlapping elements; higher paints later and
	// receives clicks first.
	ZIndex int
	// TextSeed makes text-block rendering deterministic per template.
	TextSeed uint64
}

// NewElement builds an element with an attribute map ready for use.
func NewElement(tag string) *Element {
	return &Element{Tag: tag, Attrs: map[string]string{}, Style: Style{Background: -1}}
}

// Append adds children and returns the element for chaining.
func (e *Element) Append(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// SetAttr sets an attribute and returns the element for chaining.
func (e *Element) SetAttr(k, v string) *Element {
	if e.Attrs == nil {
		e.Attrs = map[string]string{}
	}
	e.Attrs[k] = v
	return e
}

// Attr returns an attribute value ("" when absent).
func (e *Element) Attr(k string) string { return e.Attrs[k] }

// ID returns the element's id attribute.
func (e *Element) ID() string { return e.Attrs["id"] }

// Area returns the rendered area in square pixels.
func (e *Element) Area() int { return e.W * e.H }

// Contains reports whether the point (x, y) lies inside the element box.
func (e *Element) Contains(x, y int) bool {
	return x >= e.X && x < e.X+e.W && y >= e.Y && y < e.Y+e.H
}

// Center returns the box centre, where the crawler aims its clicks.
func (e *Element) Center() (int, int) { return e.X + e.W/2, e.Y + e.H/2 }

// Walk visits the element and all descendants in depth-first pre-order.
// Returning false from visit prunes the subtree.
func (e *Element) Walk(visit func(*Element) bool) {
	if !visit(e) {
		return
	}
	for _, c := range e.Children {
		c.Walk(visit)
	}
}

// Find returns the first descendant (or the element itself) with the
// given id, or nil.
func (e *Element) Find(id string) *Element {
	var out *Element
	e.Walk(func(el *Element) bool {
		if out != nil {
			return false
		}
		if el.ID() == id {
			out = el
			return false
		}
		return true
	})
	return out
}

// FindAll returns all descendants (and possibly the element itself) with
// the given tag, in document order.
func (e *Element) FindAll(tag string) []*Element {
	var out []*Element
	e.Walk(func(el *Element) bool {
		if el.Tag == tag {
			out = append(out, el)
		}
		return true
	})
	return out
}

// Document is a parsed page: the element tree plus the script references
// and navigation hints the browser acts on.
type Document struct {
	URL   string // source URL (informational)
	Title string
	Root  *Element
	// Scripts lists script sources in document order: external
	// (Src != "") or inline (Code != "").
	Scripts []ScriptRef
	// MetaRefresh, when non-nil, instructs the browser to navigate after
	// a delay (the paper lists Meta Refresh among the ad-load redirect
	// mechanisms, Section 3.4).
	MetaRefresh *MetaRefresh
	// Links are plain anchor targets on the page.
	Links []string

	// sealed marks the document immutable: a generator that builds a
	// page once and shares it across concurrent sessions promises never
	// to mutate the tree afterwards. Sealing lets consumers memoize
	// values derived from the whole tree (the serialized source below,
	// the render fingerprint via MemoFingerprint) instead of re-walking
	// it on every visit.
	sealed  bool
	serOnce sync.Once
	ser     string
	fpOnce  sync.Once
	fpA     uint64
	fpB     uint64
}

// Seal marks the document immutable and returns it. Safe to call more
// than once; there is no unseal.
func (d *Document) Seal() *Document {
	d.sealed = true
	return d
}

// Sealed reports whether the document was sealed.
func (d *Document) Sealed() bool { return d.sealed }

// MemoFingerprint returns the (a, b) words computed by compute, cached
// on the document after the first call when it is sealed. Unsealed
// documents recompute every time. compute must be a pure function of
// the document tree; internal/screenshot keys its capture cache on
// this. Safe for concurrent use on sealed documents.
func (d *Document) MemoFingerprint(compute func() (a, b uint64)) (a, b uint64) {
	if !d.sealed {
		return compute()
	}
	d.fpOnce.Do(func() { d.fpA, d.fpB = compute() })
	return d.fpA, d.fpB
}

// ScriptRef points at script code to execute in the document's context.
type ScriptRef struct {
	Src  string // external script URL (fetched by the browser)
	Code string // inline code
}

// MetaRefresh is an HTML meta-refresh directive.
type MetaRefresh struct {
	DelaySeconds int
	Target       string
}

// Clickables returns the elements the crawler considers click candidates
// — images and iframes plus explicit overlay divs — sorted by descending
// rendered area (ties broken by document order), per the paper's
// heuristic.
func (d *Document) Clickables() []*Element {
	type cand struct {
		el    *Element
		order int
	}
	var cands []cand
	order := 0
	d.Root.Walk(func(el *Element) bool {
		switch el.Tag {
		case "img", "iframe":
			if el.Area() > 0 {
				cands = append(cands, cand{el, order})
			}
		case "div":
			if el.Style.Transparent && el.Area() > 0 {
				cands = append(cands, cand{el, order})
			}
		}
		order++
		return true
	})
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].el.Area() != cands[j].el.Area() {
			return cands[i].el.Area() > cands[j].el.Area()
		}
		return cands[i].order < cands[j].order
	})
	out := make([]*Element, len(cands))
	for i, c := range cands {
		out[i] = c.el
	}
	return out
}

// HitTest returns the topmost element containing (x, y): among containing
// elements the one with the highest ZIndex wins, with later document
// order breaking ties. Returns nil when the point is outside every box.
func (d *Document) HitTest(x, y int) *Element {
	var best *Element
	bestZ := 0
	order, bestOrder := 0, -1
	d.Root.Walk(func(el *Element) bool {
		if el.Contains(x, y) {
			if best == nil || el.Style.ZIndex > bestZ || (el.Style.ZIndex == bestZ && order > bestOrder) {
				best, bestZ, bestOrder = el, el.Style.ZIndex, order
			}
		}
		order++
		return true
	})
	return best
}

// Serialize renders the document as HTML-ish source. The websearch index
// and the attribution source patterns match against this text, so the
// serialisation must include script code and attribute values verbatim.
// Sealed documents serialize once and return the cached string.
func (d *Document) Serialize() string {
	if !d.sealed {
		return d.serialize()
	}
	d.serOnce.Do(func() { d.ser = d.serialize() })
	return d.ser
}

func (d *Document) serialize() string {
	var b strings.Builder
	b.WriteString("<!doctype html><html><head><title>")
	b.WriteString(d.Title)
	b.WriteString("</title>")
	if d.MetaRefresh != nil {
		fmt.Fprintf(&b, `<meta http-equiv="refresh" content="%d;url=%s">`, d.MetaRefresh.DelaySeconds, d.MetaRefresh.Target)
	}
	b.WriteString("</head><body>")
	serializeElement(&b, d.Root)
	for _, s := range d.Scripts {
		if s.Src != "" {
			fmt.Fprintf(&b, `<script src="%s"></script>`, s.Src)
		} else {
			b.WriteString("<script>")
			b.WriteString(s.Code)
			b.WriteString("</script>")
		}
	}
	for _, l := range d.Links {
		fmt.Fprintf(&b, `<a href="%s"></a>`, l)
	}
	b.WriteString("</body></html>")
	return b.String()
}

func serializeElement(b *strings.Builder, e *Element) {
	if e == nil {
		return
	}
	b.WriteByte('<')
	b.WriteString(e.Tag)
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, ` %s="%s"`, k, e.Attrs[k])
	}
	b.WriteByte('>')
	if e.Text != "" {
		b.WriteString(e.Text)
	}
	for _, c := range e.Children {
		serializeElement(b, c)
	}
	b.WriteString("</" + e.Tag + ">")
}

// CountElements returns the total number of elements in the document.
func (d *Document) CountElements() int {
	n := 0
	d.Root.Walk(func(*Element) bool { n++; return true })
	return n
}
