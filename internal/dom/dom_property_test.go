package dom

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomDoc builds an arbitrary document tree from a seed.
func randomDoc(seed int64) *Document {
	src := rng.New(seed)
	root := NewElement("body")
	root.W, root.H = 200+src.Intn(900), 200+src.Intn(700)
	n := src.IntRange(1, 25)
	parents := []*Element{root}
	tags := []string{"div", "img", "iframe", "p", "button"}
	for i := 0; i < n; i++ {
		el := NewElement(rng.Pick(src, tags))
		el.X = src.Intn(root.W)
		el.Y = src.Intn(root.H)
		el.W = src.Intn(root.W / 2)
		el.H = src.Intn(root.H / 2)
		el.Style.ZIndex = src.Intn(10)
		el.Style.Transparent = src.Bool(0.1)
		parent := rng.Pick(src, parents)
		parent.Append(el)
		parents = append(parents, el)
	}
	return &Document{Root: root, Title: "t"}
}

// Property: Clickables returns img/iframe/transparent-div elements with
// positive area, in non-increasing area order.
func TestClickablesProperties(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed)
		cs := d.Clickables()
		for i, el := range cs {
			if el.Area() <= 0 {
				return false
			}
			switch el.Tag {
			case "img", "iframe":
			case "div":
				if !el.Style.Transparent {
					return false
				}
			default:
				return false
			}
			if i > 0 && cs[i-1].Area() < el.Area() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: HitTest returns an element containing the point, and no
// containing element has a strictly higher z-index.
func TestHitTestProperties(t *testing.T) {
	f := func(seed int64, px, py uint16) bool {
		d := randomDoc(seed)
		x := int(px) % d.Root.W
		y := int(py) % d.Root.H
		hit := d.HitTest(x, y)
		maxZ := -1 << 30
		found := false
		d.Root.Walk(func(el *Element) bool {
			if el.Contains(x, y) {
				found = true
				if el.Style.ZIndex > maxZ {
					maxZ = el.Style.ZIndex
				}
			}
			return true
		})
		if !found {
			return hit == nil
		}
		return hit != nil && hit.Contains(x, y) && hit.Style.ZIndex == maxZ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization is deterministic and contains every element's
// tag.
func TestSerializeProperties(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed)
		a, b := d.Serialize(), d.Serialize()
		if a != b {
			return false
		}
		count := 0
		d.Root.Walk(func(*Element) bool { count++; return true })
		return d.CountElements() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
